// Multi-class validation: three traffic classes share one link under EDF
// / SP; the per-class probabilistic bounds of sched/single_node_bound.h
// must dominate the per-class empirical delay quantiles of a simulation
// running the actual discipline.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "sched/delta.h"
#include "sched/single_node_bound.h"
#include "sim/mmoo_source.h"
#include "sim/node.h"
#include "sim/stats.h"
#include "traffic/mmoo.h"

namespace deltanc {
namespace {

constexpr double kCapacity = 100.0;
constexpr int kFlows[3] = {150, 200, 120};

std::vector<traffic::StatEnvelope> analytic_envelopes(double s,
                                                      double gamma) {
  const auto model = traffic::MmooSource::paper_source();
  std::vector<traffic::StatEnvelope> env;
  for (int n : kFlows) {
    env.push_back(
        traffic::EbbTraffic(1.0, n * model.effective_bandwidth(s), s)
            .sample_path_envelope(gamma));
  }
  return env;
}

/// Simulates the three-class node and returns per-class delay recorders.
std::array<sim::DelayRecorder, 3> simulate(
    std::unique_ptr<sim::Discipline> discipline, int slots,
    std::uint64_t seed) {
  const auto model = traffic::MmooSource::paper_source();
  sim::Xoshiro256ss rng(seed);
  std::vector<sim::Xoshiro256ss> rngs;
  std::vector<sim::MmooAggregateSim> sources;
  rngs.reserve(3);
  sources.reserve(3);
  for (int f = 0; f < 3; ++f) {
    rng.jump();
    rngs.push_back(rng);
    sources.emplace_back(model, kFlows[f], rngs.back());
  }
  sim::Node node(kCapacity, std::move(discipline));
  std::array<sim::DelayRecorder, 3> delays;
  std::vector<sim::Chunk> done;
  std::uint64_t seq = 0;
  for (int t = 0; t < slots; ++t) {
    for (int f = 0; f < 3; ++f) {
      const double kb = sources[f].step(rngs[f]);
      if (kb > 0.0) node.arrive(sim::Chunk{f, kb, kb, t, t, 0.0, seq++});
    }
    done.clear();
    node.advance(&done);
    for (const auto& c : done) {
      if (c.origin_slot > 1000) {
        delays[static_cast<std::size_t>(c.flow)].add(
            static_cast<double>(t + 1 - c.origin_slot));
      }
    }
  }
  return delays;
}

TEST(MultiClassValidation, EdfBoundsDominatePerClassQuantiles) {
  // EDF deadlines (slots): class 0 tight, class 1 medium, class 2 loose.
  const std::vector<double> deadlines{5.0, 25.0, 120.0};
  const sched::DeltaMatrix dm = sched::DeltaMatrix::edf(deadlines);
  const double s = 0.01, gamma = 0.2, eps = 1e-3;
  const auto env = analytic_envelopes(s, gamma);

  const auto delays = simulate(sim::make_edf(deadlines), 200000, 17);
  for (std::size_t f = 0; f < 3; ++f) {
    const double bound =
        sched::single_node_delay_bound(kCapacity, dm, env, f, eps);
    ASSERT_TRUE(std::isfinite(bound)) << "class " << f;
    const double empirical = delays[f].quantile(1.0 - eps);
    EXPECT_LE(empirical, bound) << "class " << f;
  }
}

TEST(MultiClassValidation, EdfAnalyticOrderMatchesEmpiricalOrder) {
  const std::vector<double> deadlines{5.0, 25.0, 120.0};
  const sched::DeltaMatrix dm = sched::DeltaMatrix::edf(deadlines);
  const double s = 0.01, gamma = 0.2, eps = 1e-3;
  const auto env = analytic_envelopes(s, gamma);
  const auto delays = simulate(sim::make_edf(deadlines), 200000, 23);
  // Both the analytic bounds and the empirical tails must respect the
  // deadline ordering: tighter deadline -> smaller delay.
  double prev_bound = 0.0, prev_emp = 0.0;
  for (std::size_t f = 0; f < 3; ++f) {
    const double bound =
        sched::single_node_delay_bound(kCapacity, dm, env, f, eps);
    const double emp = delays[f].quantile(0.999);
    EXPECT_GE(bound, prev_bound) << "class " << f;
    EXPECT_GE(emp, prev_emp - 1.0) << "class " << f;
    prev_bound = bound;
    prev_emp = emp;
  }
}

TEST(MultiClassValidation, StaticPriorityBoundsDominate) {
  // Class 2 highest, class 0 lowest.
  const std::vector<int> priority{0, 1, 2};
  const sched::DeltaMatrix dm = sched::DeltaMatrix::static_priority(priority);
  const double s = 0.01, gamma = 0.2, eps = 1e-3;
  const auto env = analytic_envelopes(s, gamma);
  const auto delays =
      simulate(sim::make_static_priority(priority), 200000, 29);
  for (std::size_t f = 0; f < 3; ++f) {
    const double bound =
        sched::single_node_delay_bound(kCapacity, dm, env, f, eps);
    ASSERT_TRUE(std::isfinite(bound)) << "class " << f;
    EXPECT_LE(delays[f].quantile(1.0 - eps), bound) << "class " << f;
  }
}

}  // namespace
}  // namespace deltanc
