#include "nc/curve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "test_util.h"

namespace deltanc::nc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CurveFactories, ZeroIsIdenticallyZero) {
  const Curve z = Curve::zero();
  EXPECT_DOUBLE_EQ(z.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(z.eval(100.0), 0.0);
  EXPECT_DOUBLE_EQ(z.eval(-3.0), 0.0);
}

TEST(CurveFactories, RateCurve) {
  const Curve r = Curve::rate(2.5);
  EXPECT_DOUBLE_EQ(r.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.eval(4.0), 10.0);
  EXPECT_THROW((void)Curve::rate(-1.0), std::invalid_argument);
}

TEST(CurveFactories, RateLatency) {
  const Curve s = Curve::rate_latency(10.0, 2.0);
  EXPECT_DOUBLE_EQ(s.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(3.5), 15.0);
  EXPECT_TRUE(s.is_convex());
  EXPECT_TRUE(s.is_nondecreasing());
  EXPECT_FALSE(s.is_concave());
}

TEST(CurveFactories, LeakyBucket) {
  const Curve e = Curve::leaky_bucket(1.5, 4.0);
  EXPECT_DOUBLE_EQ(e.eval(0.0), 4.0);  // E(0+) convention
  EXPECT_DOUBLE_EQ(e.eval(2.0), 7.0);
  EXPECT_DOUBLE_EQ(e.eval(-1.0), 0.0);
  EXPECT_TRUE(e.is_concave());
}

TEST(CurveFactories, DeltaCurve) {
  const Curve d = Curve::delta(3.0);
  EXPECT_DOUBLE_EQ(d.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.eval(3.0), 0.0);
  EXPECT_EQ(d.eval(3.0001), kInf);
  EXPECT_TRUE(d.has_infinite_tail());
  EXPECT_EQ(d.inf_from(), std::optional<double>(3.0));
  EXPECT_THROW((void)d.final_slope(), std::logic_error);
}

TEST(CurveFactories, MultiLeakyBucketIsConcaveMin) {
  const std::vector<std::pair<double, double>> buckets{
      {10.0, 0.0},   // peak-rate segment
      {2.0, 12.0}};  // sustained-rate segment
  const Curve e = Curve::multi_leaky_bucket(buckets);
  // min(10 t, 12 + 2 t): crossover at t = 1.5.
  EXPECT_DOUBLE_EQ(e.eval(1.0), 10.0);
  EXPECT_DOUBLE_EQ(e.eval(1.5), 15.0);
  EXPECT_DOUBLE_EQ(e.eval(3.0), 18.0);
  EXPECT_TRUE(e.is_concave());
  EXPECT_THROW(
      Curve::multi_leaky_bucket(std::span<const std::pair<double, double>>()),
      std::invalid_argument);
}

TEST(CurveValidation, RejectsMalformedKnots) {
  EXPECT_THROW(Curve(std::vector<Knot>{}), std::invalid_argument);
  EXPECT_THROW(Curve({{1.0, 0.0, 0.0}}), std::invalid_argument);  // x0 != 0
  EXPECT_THROW(Curve({{0.0, 0.0, 1.0}, {0.0, 1.0, 1.0}}),
               std::invalid_argument);  // non-increasing x
  EXPECT_THROW(Curve({{0.0, 0.0, 1.0}, {2.0, 1.0, 1.0}}, 1.0),
               std::invalid_argument);  // inf_from before last knot
  EXPECT_THROW(Curve({{0.0, kInf, 0.0}}), std::invalid_argument);
}

TEST(CurveEval, RightContinuousAtKnots) {
  const Curve c({{0.0, 0.0, 1.0}, {2.0, 5.0, 0.5}});  // jump at x=2
  EXPECT_DOUBLE_EQ(c.eval(1.9999), 1.9999);
  EXPECT_DOUBLE_EQ(c.eval(2.0), 5.0);
  EXPECT_DOUBLE_EQ(c.eval(4.0), 6.0);
}

TEST(CurveTransforms, HshiftMatchesShiftedEval) {
  const Curve s = Curve::rate_latency(4.0, 1.0);
  const Curve shifted = s.hshift(2.5);
  for (double t : {0.0, 1.0, 2.5, 3.0, 3.5, 7.0}) {
    EXPECT_DOUBLE_EQ(shifted.eval(t), s.eval(t - 2.5)) << "t = " << t;
  }
  EXPECT_THROW((void)s.hshift(-1.0), std::invalid_argument);
}

TEST(CurveTransforms, HshiftMovesInfiniteTail) {
  const Curve d = Curve::delta(1.0).hshift(2.0);
  EXPECT_EQ(d.inf_from(), std::optional<double>(3.0));
}

TEST(CurveTransforms, GatedZeroesBeforeCut) {
  const Curve c = Curve::affine(2.0, 3.0);
  const Curve g = c.gated(4.0);
  EXPECT_DOUBLE_EQ(g.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.eval(3.999), 0.0);
  EXPECT_DOUBLE_EQ(g.eval(4.0), 14.0);  // right-continuous at the gate
  EXPECT_DOUBLE_EQ(g.eval(5.0), 17.0);
}

TEST(CurveTransforms, GatedPastInfiniteTailIsDelta) {
  const Curve d = Curve::delta(1.0);
  const Curve g = d.gated(5.0);
  EXPECT_DOUBLE_EQ(g.eval(5.0), 0.0);
  EXPECT_EQ(g.eval(5.1), kInf);
}

TEST(CurveTransforms, ScaledAndVshift) {
  const Curve c = Curve::leaky_bucket(2.0, 1.0);
  EXPECT_DOUBLE_EQ(c.scaled(3.0).eval(2.0), 15.0);
  EXPECT_DOUBLE_EQ(c.vshift(-0.5).eval(2.0), 4.5);
  EXPECT_THROW((void)c.scaled(-1.0), std::invalid_argument);
}

TEST(CurveTransforms, ClampNonnegative) {
  const Curve c = Curve::affine(-4.0, 2.0);  // negative until t = 2
  const Curve clamped = c.clamp_nonnegative();
  EXPECT_DOUBLE_EQ(clamped.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(3.0), 2.0);
}

TEST(CurveSimplify, MergesCollinearKnots) {
  Curve c({{0.0, 0.0, 1.0}, {2.0, 2.0, 1.0}, {5.0, 5.0, 1.0}});
  c.simplify();
  EXPECT_EQ(c.knots().size(), 1u);
  EXPECT_DOUBLE_EQ(c.eval(7.0), 7.0);
}

TEST(CurveShape, MonotonicityDetectsDownwardJump) {
  const Curve down({{0.0, 5.0, 0.0}, {1.0, 3.0, 0.0}});
  EXPECT_FALSE(down.is_nondecreasing());
  const Curve up({{0.0, 1.0, 0.0}, {1.0, 3.0, 0.0}});
  EXPECT_TRUE(up.is_nondecreasing());
}

TEST(PointwiseOps, MinOfCrossingLines) {
  const Curve a = Curve::affine(0.0, 2.0);
  const Curve b = Curve::affine(3.0, 1.0);  // crosses a at t = 3
  const Curve m = pointwise_min(a, b);
  EXPECT_DOUBLE_EQ(m.eval(1.0), 2.0);
  EXPECT_DOUBLE_EQ(m.eval(3.0), 6.0);
  EXPECT_DOUBLE_EQ(m.eval(5.0), 8.0);
  EXPECT_TRUE(m.is_concave());
}

TEST(PointwiseOps, MaxOfCrossingLines) {
  const Curve a = Curve::affine(0.0, 2.0);
  const Curve b = Curve::affine(3.0, 1.0);
  const Curve m = pointwise_max(a, b);
  EXPECT_DOUBLE_EQ(m.eval(1.0), 4.0);
  EXPECT_DOUBLE_EQ(m.eval(5.0), 10.0);
  EXPECT_TRUE(m.is_convex());
}

TEST(PointwiseOps, AddCombinesSlopes) {
  const Curve a = Curve::rate_latency(3.0, 1.0);
  const Curve b = Curve::leaky_bucket(1.0, 2.0);
  const Curve s = pointwise_add(a, b);
  for (double t : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(s.eval(t), a.eval(t) + b.eval(t), 1e-12) << "t = " << t;
  }
}

TEST(PointwiseOps, SubtractionAndValidation) {
  const Curve a = Curve::affine(5.0, 3.0);
  const Curve b = Curve::affine(1.0, 1.0);
  const Curve d = pointwise_sub(a, b);
  EXPECT_DOUBLE_EQ(d.eval(2.0), 8.0);  // (5 + 3*2) - (1 + 2)
  EXPECT_THROW(pointwise_sub(a, Curve::delta(1.0)), std::invalid_argument);
}

TEST(PointwiseOps, MinWithDeltaFollowsFiniteCurve) {
  const Curve d = Curve::delta(2.0);
  const Curve r = Curve::rate(1.0);
  const Curve m = pointwise_min(d, r);
  EXPECT_DOUBLE_EQ(m.eval(1.0), 0.0);   // delta side is 0
  EXPECT_DOUBLE_EQ(m.eval(3.0), 3.0);   // delta side infinite -> rate side
  EXPECT_FALSE(m.has_infinite_tail());
}

TEST(PointwiseOps, MaxWithDeltaTruncates) {
  const Curve d = Curve::delta(2.0);
  const Curve r = Curve::rate(1.0);
  const Curve m = pointwise_max(d, r);
  EXPECT_DOUBLE_EQ(m.eval(1.5), 1.5);
  EXPECT_EQ(m.eval(2.5), kInf);
  EXPECT_EQ(m.inf_from(), std::optional<double>(2.0));
}

TEST(PointwiseOps, AddWithDeltaTruncates) {
  const Curve d = Curve::delta(2.0);
  const Curve r = Curve::rate(2.0);
  const Curve s = pointwise_add(d, r);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 4.0);
  EXPECT_EQ(s.eval(2.1), kInf);
}

// ---------------------------------------------------------------------
// Property sweep: pointwise ops agree with direct evaluation on a grid
// for random monotone curves.
// ---------------------------------------------------------------------

class PointwisePropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(PointwisePropertyTest, OpsMatchSampleEvaluation) {
  const auto f =
      deltanc::testing::random_monotone_curve(GetParam(), 5);
  const auto g =
      deltanc::testing::random_monotone_curve(GetParam() + 1000, 4);
  const Curve mn = pointwise_min(f, g);
  const Curve mx = pointwise_max(f, g);
  const Curve sm = pointwise_add(f, g);
  const double horizon = f.last_knot_x() + g.last_knot_x() + 5.0;
  for (int i = 0; i <= 400; ++i) {
    const double t = horizon * static_cast<double>(i) / 400.0 + 1e-7;
    const double fv = f.eval(t);
    const double gv = g.eval(t);
    ASSERT_NEAR(mn.eval(t), std::min(fv, gv), 1e-8) << "t = " << t;
    ASSERT_NEAR(mx.eval(t), std::max(fv, gv), 1e-8) << "t = " << t;
    ASSERT_NEAR(sm.eval(t), fv + gv, 1e-8) << "t = " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointwisePropertyTest,
                         ::testing::Range<std::uint32_t>(1, 30));

}  // namespace
}  // namespace deltanc::nc
