#include "e2e/network_epsilon.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace deltanc::e2e {
namespace {

PathParams base_params(int hops) {
  return PathParams{100.0, hops, 20.0, 30.0, 0.5, 1.0, 0.0};
}

TEST(NetworkEpsilon, ClosedFormMatchesGenericConstruction) {
  // Homogeneous per-node bounds M/(1-q) e^{-alpha sigma} combined by
  // Eq. (31) must equal the closed form of Eq. (34).
  const double gamma = 0.8;
  for (int hops : {1, 2, 5, 10, 17}) {
    const PathParams p = base_params(hops);
    const double q = std::exp(-p.alpha * gamma);
    std::vector<nc::ExpBound> node_bounds(
        static_cast<std::size_t>(hops),
        nc::ExpBound(p.m / (1.0 - q), p.alpha));
    const nc::ExpBound generic =
        network_service_bound_generic(node_bounds, gamma);
    const nc::ExpBound closed = network_service_bound(p, gamma);
    EXPECT_NEAR(generic.prefactor(), closed.prefactor(),
                1e-9 * closed.prefactor())
        << "H = " << hops;
    EXPECT_NEAR(generic.decay(), closed.decay(), 1e-12) << "H = " << hops;
  }
}

TEST(NetworkEpsilon, DelayBoundIsInfConvOfEnvelopeAndNet) {
  const double gamma = 0.5;
  const PathParams p = base_params(4);
  const double q = std::exp(-p.alpha * gamma);
  const nc::ExpBound eps_g(p.m / (1.0 - q), p.alpha);
  const nc::ExpBound manual =
      nc::inf_convolution(eps_g, network_service_bound(p, gamma));
  const nc::ExpBound closed = delay_violation_bound(p, gamma);
  EXPECT_NEAR(manual.prefactor(), closed.prefactor(),
              1e-9 * closed.prefactor());
  EXPECT_NEAR(manual.decay(), closed.decay(), 1e-12);
}

TEST(NetworkEpsilon, SigmaInversionRoundTrips) {
  const PathParams p = base_params(6);
  const double gamma = 0.3;
  const double eps = 1e-9;
  const double sigma = sigma_for_epsilon(p, gamma, eps);
  EXPECT_NEAR(delay_violation_bound(p, gamma).eval(sigma), eps, 1e-12);
}

TEST(NetworkEpsilon, SigmaGrowsWithPathLength) {
  // The decay alpha/(H+1) weakens with H, so the same epsilon needs a
  // larger sigma on longer paths.
  const double gamma = 0.3;
  double prev = 0.0;
  for (int hops : {1, 2, 4, 8, 16}) {
    const double sigma = sigma_for_epsilon(base_params(hops), gamma, 1e-9);
    EXPECT_GT(sigma, prev);
    prev = sigma;
  }
}

TEST(NetworkEpsilon, SigmaScalesThetaHLogHStyle) {
  // sigma(eps) = (H+1)/alpha * [ln(H+1) + 2H/(H+1) ln(1/(1-q)) + ln(1/eps)]
  // -- superlinear in H (the ln(H+1) term) but subquadratic.  A large
  // ln(1/eps) masks the log factor at small H, so probe with eps = 0.5.
  const double gamma = 0.3;
  const double s8 = sigma_for_epsilon(base_params(8), gamma, 0.5);
  const double s64 = sigma_for_epsilon(base_params(64), gamma, 0.5);
  EXPECT_GT(s64 / 64.0, s8 / 8.0);
  EXPECT_LT(s64 / (64.0 * 64.0), s8 / (8.0 * 8.0));
}

TEST(NetworkEpsilon, Validation) {
  const PathParams p = base_params(3);
  EXPECT_THROW((void)network_service_bound(p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)sigma_for_epsilon(p, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)sigma_for_epsilon(p, 0.5, 1.5), std::invalid_argument);
  EXPECT_THROW(
      (void)network_service_bound_generic(std::span<const nc::ExpBound>(),
                                          0.5),
      std::invalid_argument);
  PathParams bad = p;
  bad.hops = 0;
  EXPECT_THROW((void)network_service_bound(bad, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::e2e
