// The parallel sweep engine (core/sweep.h) and its thread pool
// (core/thread_pool.h): grid enumeration order, 1-thread vs N-thread
// determinism, unstable/failing-point isolation, progress-callback
// contract, and degenerate (empty / single-point) grids.
#include "core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/scenario.h"
#include "core/selfcheck.h"
#include "core/thread_pool.h"
#include "e2e/solver.h"

namespace deltanc {
namespace {

// A grid small enough for test time but heterogeneous enough to catch
// ordering bugs: 2 hops values x 3 schedulers x 2 cross loads = 12
// points.  A loose epsilon keeps each solve fast.
SweepGrid small_grid() {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.hops_axis({2, 5})
      .scheduler_axis({sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo,
                       sched::SchedulerKind::kBmux})
      .cross_utilization_axis({0.30, 0.60});
  return grid;
}

TEST(SweepGridTest, SizeIsCrossProductAndNoAxesMeansBaseOnly) {
  const SweepGrid grid = small_grid();
  EXPECT_EQ(grid.axes(), 3u);
  EXPECT_EQ(grid.axis_size(0), 2u);
  EXPECT_EQ(grid.axis_size(1), 3u);
  EXPECT_EQ(grid.axis_size(2), 2u);
  EXPECT_EQ(grid.size(), 12u);

  e2e::Scenario base;
  base.hops = 7;
  const SweepGrid trivial(base);
  ASSERT_EQ(trivial.size(), 1u);
  EXPECT_EQ(trivial.scenario_at(0).hops, 7);
}

TEST(SweepGridTest, EmptyAxisMakesGridEmpty) {
  SweepGrid grid;
  grid.hops_axis({});
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.scenarios().empty());
  EXPECT_THROW((void)grid.scenario_at(0), std::out_of_range);
}

TEST(SweepGridTest, RowMajorOrderFirstAxisOutermost) {
  const SweepGrid grid = small_grid();
  // i = hops_index * 6 + scheduler_index * 2 + load_index.
  const e2e::Scenario p0 = grid.scenario_at(0);
  EXPECT_EQ(p0.hops, 2);
  EXPECT_EQ(p0.scheduler, sched::SchedulerKind::kEdf);
  const e2e::Scenario p1 = grid.scenario_at(1);
  EXPECT_EQ(p1.hops, 2);
  EXPECT_EQ(p1.scheduler, sched::SchedulerKind::kEdf);
  EXPECT_GT(p1.n_cross, p0.n_cross);
  const e2e::Scenario p2 = grid.scenario_at(2);
  EXPECT_EQ(p2.scheduler, sched::SchedulerKind::kFifo);
  const e2e::Scenario p6 = grid.scenario_at(6);
  EXPECT_EQ(p6.hops, 5);
  EXPECT_EQ(p6.scheduler, sched::SchedulerKind::kEdf);
  // Axis values never leak between points.
  EXPECT_EQ(grid.scenario_at(11).hops, 5);
  EXPECT_EQ(grid.scenario_at(5).hops, 2);
}

TEST(SweepGridTest, UtilizationAxisMatchesScenarioBuilderConversion) {
  e2e::Scenario base;
  SweepGrid grid(base);
  grid.cross_utilization_axis({0.35});
  // 0.35 * 100 Mbps / mean_rate, rounded -- same as ScenarioBuilder.
  EXPECT_EQ(grid.scenario_at(0).n_cross, flows_for_utilization(base, 0.35));
}

TEST(SweepGridTest, LinspaceEndpointsAndSinglePoint) {
  const auto v = SweepGrid::linspace(0.2, 0.95, 16);
  ASSERT_EQ(v.size(), 16u);
  EXPECT_DOUBLE_EQ(v.front(), 0.2);
  EXPECT_DOUBLE_EQ(v.back(), 0.95);
  const auto one = SweepGrid::linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
  EXPECT_THROW((void)SweepGrid::linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(SweepGridTest, RejectsMalformedAxisValues) {
  SweepGrid grid;
  EXPECT_THROW(grid.hops_axis({0}), std::invalid_argument);
  EXPECT_THROW(grid.epsilon_axis({0.0}), std::invalid_argument);
  EXPECT_THROW(grid.through_flows_axis({0}), std::invalid_argument);
  EXPECT_THROW(grid.cross_utilization_axis({-0.1}), std::invalid_argument);
  EXPECT_THROW(
      grid.delta_axis({std::numeric_limits<double>::quiet_NaN()}),
      std::invalid_argument);
}

TEST(SweepGridTest, DeltaAxisMakesExplicitFixedDeltaSchedulers) {
  const double inf = std::numeric_limits<double>::infinity();
  e2e::Scenario base;
  base.scheduler = sched::SchedulerSpec::edf(2.0, 5.0);
  SweepGrid grid(base);
  grid.delta_axis({0.0, 1.5, inf, -inf});  // +/-inf are legal endpoints
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid.scenario_at(0).scheduler,
            sched::SchedulerSpec::fixed_delta(0.0));
  EXPECT_EQ(grid.scenario_at(1).scheduler,
            sched::SchedulerSpec::fixed_delta(1.5));
  EXPECT_EQ(grid.scenario_at(2).scheduler,
            sched::SchedulerSpec::fixed_delta(inf));
  EXPECT_EQ(grid.scenario_at(3).scheduler,
            sched::SchedulerSpec::fixed_delta(-inf));
  // The raw values are recorded for the codec under the "delta" name.
  ASSERT_EQ(grid.axes(), 1u);
  EXPECT_EQ(grid.axis_name(0), "delta");
  EXPECT_EQ(grid.axis_spec(0).numeric.size(), 4u);
}

TEST(SweepGridTest, CurveBackedSchedulerAxisCarriesTheFullSpec) {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.scheduler_axis(std::vector<sched::SchedulerSpec>{
      sched::SchedulerSpec::gps(3.0, 1.0),
      sched::SchedulerSpec::drr(2.0, 0.5), sched::SchedulerSpec::sced()});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.scenario_at(0).scheduler, sched::SchedulerSpec::gps(3.0, 1.0));
  EXPECT_EQ(grid.scenario_at(1).scheduler,
            sched::SchedulerSpec::drr(2.0, 0.5));
  EXPECT_EQ(grid.scenario_at(2).scheduler, sched::SchedulerSpec::sced());

  // And the runner solves them like any other point: finite bound, NaN
  // Delta (curve-backed specs have no Delta coordinate).
  SweepOptions options;
  options.threads = 2;
  const SweepReport report = SweepRunner(options).run(grid);
  ASSERT_EQ(report.points.size(), 3u);
  for (const SweepPoint& p : report.points) {
    EXPECT_TRUE(p.ok) << p.error;
    EXPECT_TRUE(std::isfinite(p.bound.delay_ms));
    EXPECT_TRUE(std::isnan(p.bound.delta));
  }
}

TEST(SweepRunnerTest, OneThreadAndEightThreadsAreBitIdentical) {
  const SweepGrid grid = small_grid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;
  const SweepReport a = SweepRunner(serial).run(grid);
  const SweepReport b = SweepRunner(parallel).run(grid);
  EXPECT_EQ(a.threads, 1);
  // Warm chaining (the default) decomposes the 12-point grid into 6
  // chains along the innermost numeric axis (uc, 2 values); the worker
  // count is capped by the chain count, not the point count.
  EXPECT_EQ(b.threads, 6);
  ASSERT_EQ(a.points.size(), grid.size());
  ASSERT_EQ(b.points.size(), grid.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE(i);
    // Bit-identical: the chain decomposition is a function of the grid
    // alone, so thread count never changes which state seeds which point.
    EXPECT_EQ(a.points[i].bound.delay_ms, b.points[i].bound.delay_ms);
    EXPECT_EQ(a.points[i].bound.gamma, b.points[i].bound.gamma);
    EXPECT_EQ(a.points[i].bound.s, b.points[i].bound.s);
    EXPECT_EQ(a.points[i].bound.sigma, b.points[i].bound.sigma);
    EXPECT_EQ(a.points[i].bound.delta, b.points[i].bound.delta);
    EXPECT_TRUE(a.points[i].ok);
  }
}

TEST(SweepRunnerTest, Fig2GridIsBitIdenticalAcrossThreadCounts) {
  // The actual Fig. 2 grid at H = 2 (16 total-utilization points x
  // {EDF, FIFO, BMUX} at eps = 1e-9), the acceptance workload for the
  // sweep engine's determinism guarantee.
  std::vector<double> cross_utils;
  for (int u_pct = 20; u_pct <= 95; u_pct += 5) {
    cross_utils.push_back(u_pct / 100.0 - 0.15);
  }
  e2e::Scenario base;
  base.hops = 2;
  base.n_through = 100;
  base.epsilon = 1e-9;
  SweepGrid grid(base);
  grid.cross_utilization_axis(cross_utils)
      .scheduler_axis({sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo,
                       sched::SchedulerKind::kBmux});
  ASSERT_EQ(grid.size(), 48u);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;  // whatever this machine offers
  parallel.threads = static_cast<int>(ThreadPool::default_thread_count());
  const SweepReport a = SweepRunner(serial).run(grid);
  const SweepReport b = SweepRunner(parallel).run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.points[i].bound.delay_ms, b.points[i].bound.delay_ms);
    EXPECT_EQ(a.points[i].bound.gamma, b.points[i].bound.gamma);
    EXPECT_EQ(a.points[i].bound.s, b.points[i].bound.s);
    EXPECT_EQ(a.points[i].bound.sigma, b.points[i].bound.sigma);
    EXPECT_EQ(a.points[i].bound.delta, b.points[i].bound.delta);
  }
}

TEST(SweepRunnerTest, ColdResultsMatchDirectSolvesInInputOrder) {
  // kCold reproduces the historical semantics: every point is a pure
  // function of its scenario, bit-identical to a stateless solve.
  const SweepGrid grid = small_grid();
  SweepOptions opts;
  opts.threads = 4;
  opts.warm_start = e2e::WarmStart::kCold;
  const SweepReport report = SweepRunner(opts).run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    const e2e::BoundResult direct = deltanc::Solver().solve(grid.scenario_at(i));
    EXPECT_EQ(report.points[i].bound.delay_ms, direct.delay_ms);
    EXPECT_EQ(report.points[i].scenario.hops, grid.scenario_at(i).hops);
  }
}

TEST(SweepRunnerTest, WarmResultsStayWithinToleranceOfDirectSolves) {
  // The warm default may stop at a slightly different optimum; the
  // deviation from the cold solve is bounded by the selfcheck-enforced
  // warm-start tolerance contract (core/selfcheck.h).
  const SweepGrid grid = small_grid();
  SweepOptions opts;
  opts.threads = 4;
  const SweepReport report = SweepRunner(opts).run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    const e2e::BoundResult direct = deltanc::Solver().solve(grid.scenario_at(i));
    ASSERT_TRUE(std::isfinite(direct.delay_ms) ==
                std::isfinite(report.points[i].bound.delay_ms));
    if (!std::isfinite(direct.delay_ms)) continue;
    EXPECT_NEAR(report.points[i].bound.delay_ms, direct.delay_ms,
                kWarmStartRelTol * std::max(direct.delay_ms, 1.0));
  }
}

TEST(SweepRunnerTest, UnstablePointsReportInfWithoutPoisoningNeighbors) {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  // 1.2 total utilization is unstable; its neighbors are fine.
  grid.cross_utilization_axis({0.30, 1.20, 0.40});
  const SweepReport report = SweepRunner().run(grid);
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_TRUE(std::isfinite(report.points[0].bound.delay_ms));
  EXPECT_TRUE(std::isinf(report.points[1].bound.delay_ms));
  EXPECT_TRUE(report.points[1].ok);  // unstable is a result, not an error
  EXPECT_TRUE(std::isfinite(report.points[2].bound.delay_ms));
  EXPECT_EQ(report.unstable(), 1u);
  EXPECT_EQ(report.failures(), 0u);
}

TEST(SweepRunnerTest, ThrowingSolverIsCapturedPerPoint) {
  const SweepGrid grid = small_grid();
  SweepOptions opts;
  opts.threads = 4;
  opts.solver = [](const e2e::Scenario& sc, e2e::Method m) {
    if (sc.scheduler == sched::SchedulerKind::kFifo) {
      throw std::runtime_error("synthetic failure");
    }
    return deltanc::Solver(m).solve(sc);
  };
  const SweepReport report = SweepRunner(opts).run(grid);
  ASSERT_EQ(report.points.size(), 12u);
  EXPECT_EQ(report.failures(), 4u);  // 2 hops x 2 loads with FIFO
  for (const SweepPoint& p : report.points) {
    if (p.scenario.scheduler == sched::SchedulerKind::kFifo) {
      EXPECT_FALSE(p.ok);
      EXPECT_EQ(p.error, "synthetic failure");
      EXPECT_TRUE(std::isinf(p.bound.delay_ms));
    } else {
      EXPECT_TRUE(p.ok);
      EXPECT_TRUE(std::isfinite(p.bound.delay_ms));
    }
  }
}

TEST(SweepRunnerTest, PerKindCountsSurviveTheThreadPool) {
  // A list mixing healthy, unstable, invalid, and throwing-solver points,
  // solved on several threads: counts_by_kind() must classify each point
  // independently of which worker handled it.
  e2e::Scenario healthy;      // ~30% load, solves fine
  healthy.epsilon = 1e-6;
  e2e::Scenario unstable = healthy;
  unstable.n_cross = 800;     // ~134% load
  e2e::Scenario invalid = healthy;
  invalid.capacity = -1.0;    // malformed: skipped before the solver runs
  invalid.hops = 0;
  std::vector<e2e::Scenario> scenarios;
  for (int i = 0; i < 4; ++i) {
    scenarios.push_back(healthy);
    scenarios.push_back(unstable);
    scenarios.push_back(invalid);
  }
  SweepOptions opts;
  opts.threads = 6;
  const SweepReport report =
      SweepRunner(opts).run(std::span<const e2e::Scenario>(scenarios));
  ASSERT_EQ(report.points.size(), 12u);
  const diag::ErrorCounts counts = report.counts_by_kind();
  using K = diag::SolveErrorKind;
  EXPECT_EQ(counts.errors[static_cast<std::size_t>(K::kInvalidScenario)], 4u);
  EXPECT_EQ(counts.errors[static_cast<std::size_t>(K::kUnstable)], 4u);
  EXPECT_EQ(counts.total_errors(), 8u);
  EXPECT_EQ(report.failures(), 4u);  // only the invalid points fail
  EXPECT_EQ(report.unstable(), 4u);
  // Invalid points carry the full multi-violation message.
  for (const SweepPoint& p : report.points) {
    if (p.scenario.hops == 0) {
      EXPECT_FALSE(p.ok);
      EXPECT_NE(p.error.find("capacity"), std::string::npos) << p.error;
      EXPECT_NE(p.error.find("hops"), std::string::npos) << p.error;
    }
  }
  // A solver that throws is classified kNumericalDomain.
  SweepOptions throwing;
  throwing.threads = 4;
  throwing.solver = [](const e2e::Scenario&,
                       e2e::Method) -> e2e::BoundResult {
    throw std::runtime_error("synthetic failure");
  };
  const std::vector<e2e::Scenario> two = {healthy, healthy};
  const SweepReport broken =
      SweepRunner(throwing).run(std::span<const e2e::Scenario>(two));
  const diag::ErrorCounts broken_counts = broken.counts_by_kind();
  EXPECT_EQ(
      broken_counts.errors[static_cast<std::size_t>(K::kNumericalDomain)],
      2u);
}

TEST(SweepReportTest, StatusColumnMarksWarnedPoints) {
  // An ok point with a diagnostics warning gets a "warn: <kind>" status
  // in the table, and warned()/recovered() expose the tallies.
  SweepOptions opts;
  opts.solver = [](const e2e::Scenario& sc, e2e::Method m) {
    e2e::BoundResult r = deltanc::Solver(m).solve(sc);
    r.diagnostics.warn(diag::SolveErrorKind::kNoConvergence, "synthetic");
    r.stats.retries = 1;
    return r;
  };
  e2e::Scenario base;
  base.epsilon = 1e-6;
  const std::vector<e2e::Scenario> one = {base};
  const SweepReport report =
      SweepRunner(opts).run(std::span<const e2e::Scenario>(one));
  EXPECT_EQ(report.warned(), 1u);
  EXPECT_EQ(report.recovered(), 1u);
  std::ostringstream csv;
  report.write_csv(csv);
  EXPECT_NE(csv.str().find("warn: no-convergence"), std::string::npos)
      << csv.str();
  const diag::ErrorCounts counts = report.counts_by_kind();
  EXPECT_EQ(counts.warnings[static_cast<std::size_t>(
                diag::SolveErrorKind::kNoConvergence)],
            1u);
}

TEST(SweepRunnerTest, ProgressIsStrictlyIncreasingAndCompleteUnderThreads) {
  const SweepGrid grid = small_grid();
  SweepOptions opts;
  opts.threads = 8;
  std::vector<std::size_t> seen;
  opts.progress = [&](std::size_t got_done, std::size_t total) {
    EXPECT_EQ(total, 12u);
    seen.push_back(got_done);
  };
  const SweepReport report = SweepRunner(opts).run(grid);
  (void)report;
  ASSERT_EQ(seen.size(), 12u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(SweepRunnerTest, EmptyAndSinglePointSweeps) {
  SweepOptions opts;
  std::size_t calls = 0;
  opts.progress = [&](std::size_t, std::size_t) { ++calls; };
  const SweepRunner runner(opts);

  const SweepReport empty = runner.run(std::span<const e2e::Scenario>{});
  EXPECT_TRUE(empty.points.empty());
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(empty.failures(), 0u);

  SweepGrid empty_grid;
  empty_grid.hops_axis({});
  EXPECT_TRUE(runner.run(empty_grid).points.empty());

  e2e::Scenario base;
  base.epsilon = 1e-6;
  const SweepReport single = runner.run(SweepGrid(base));
  ASSERT_EQ(single.points.size(), 1u);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(single.points[0].bound.delay_ms,
            deltanc::Solver().solve(base).delay_ms);
}

TEST(SweepRunnerTest, ExplicitScenarioListKeepsListOrder) {
  std::vector<e2e::Scenario> list(3);
  list[0].hops = 1;
  list[1].hops = 4;
  list[2].hops = 2;
  for (e2e::Scenario& sc : list) sc.epsilon = 1e-6;
  SweepOptions opts;
  opts.threads = 3;
  const SweepReport report =
      SweepRunner(opts).run(std::span<const e2e::Scenario>(list));
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_EQ(report.points[0].scenario.hops, 1);
  EXPECT_EQ(report.points[1].scenario.hops, 4);
  EXPECT_EQ(report.points[2].scenario.hops, 2);
}

TEST(SweepRunnerTest, ThreadResolutionClampsToTaskCount) {
  SweepOptions opts;
  opts.threads = 16;
  const SweepRunner runner(opts);
  EXPECT_EQ(runner.resolved_threads(4), 4);
  EXPECT_EQ(runner.resolved_threads(100), 16);
  EXPECT_EQ(runner.resolved_threads(0), 1);
}

TEST(SweepReportTest, TableAndCsvCarryOneRowPerPoint) {
  const SweepGrid grid = small_grid();
  const SweepReport report = SweepRunner().run(grid);
  const Table table = report.to_table();
  EXPECT_EQ(table.rows(), grid.size());
  std::ostringstream csv;
  report.write_csv(csv);
  // Header + one line per point.
  std::size_t lines = 0;
  for (char c : csv.str()) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, grid.size() + 1);
  EXPECT_NE(csv.str().find("delay [ms]"), std::string::npos);
}

TEST(SweepReportTest, CsvQuotesErrorMessagesRfc4180) {
  // A solver whose exception message contains the CSV separator, quotes
  // and a newline: the emitted CSV must still parse into exactly one
  // record of 13 fields per point.
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.cross_utilization_axis({0.30, 0.40});
  SweepOptions opts;
  opts.solver = [](const e2e::Scenario& sc, e2e::Method) -> e2e::BoundResult {
    (void)sc;
    throw std::runtime_error("bad, \"worse\",\nworst");
  };
  const SweepReport report = SweepRunner(opts).run(grid);
  ASSERT_EQ(report.failures(), 2u);
  std::ostringstream csv;
  report.write_csv(csv);
  const std::string text = csv.str();

  // Minimal RFC-4180 reader: split into records honoring quoted fields.
  std::vector<std::vector<std::string>> records(1);
  records.back().emplace_back();
  bool in_quotes = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"' && i + 1 < text.size() && text[i + 1] == '"') {
        records.back().back().push_back('"');
        ++i;
      } else if (c == '"') {
        in_quotes = false;
      } else {
        records.back().back().push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      records.back().emplace_back();
    } else if (c == '\n') {
      if (i + 1 < text.size()) records.emplace_back(1);
    } else {
      records.back().back().push_back(c);
    }
  }
  EXPECT_FALSE(in_quotes);  // every quote closed
  ASSERT_EQ(records.size(), 3u);  // header + 2 points
  for (const auto& record : records) {
    EXPECT_EQ(record.size(), 13u);
  }
  // The status field round-trips the exception text verbatim.
  EXPECT_EQ(records[1].back(), "error: bad, \"worse\",\nworst");
  EXPECT_EQ(records[2].back(), "error: bad, \"worse\",\nworst");
}

TEST(SweepReportTest, StatsAggregateAcrossPoints) {
  const SweepGrid grid = small_grid();
  const SweepReport report = SweepRunner().run(grid);
  e2e::SolveStats expected;
  for (const SweepPoint& p : report.points) expected += p.bound.stats;
  EXPECT_EQ(report.stats.optimize_evals, expected.optimize_evals);
  EXPECT_EQ(report.stats.eb_evals, expected.eb_evals);
  EXPECT_EQ(report.stats.sigma_evals, expected.sigma_evals);
  EXPECT_EQ(report.stats.edf_iterations, expected.edf_iterations);
  EXPECT_GT(report.stats.optimize_evals, 0);
  // The grid includes EDF points, so fixed-point iterations accumulate.
  EXPECT_GT(report.stats.edf_iterations, 0);
  EXPECT_TRUE(report.stats.edf_converged);
}

TEST(SweepProfileTest, ProfilesAttachToEveryPointAndAggregate) {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.cross_utilization_axis({0.30, 0.60});
  SweepOptions opts;
  opts.profile_epsilons = {1e-3, 1e-6, 1e-9};
  const SweepReport report = SweepRunner(opts).run(grid);

  e2e::SolveStats expected;
  for (const SweepPoint& p : report.points) {
    ASSERT_TRUE(p.ok);
    ASSERT_TRUE(p.profile.has_value());
    ASSERT_EQ(p.profile->levels.size(), 3u);
    expected += p.bound.stats;
    expected += p.profile->stats;
    // The scalar bound stays the solve at the scenario's own epsilon,
    // untouched by the profile ride-along.
    EXPECT_TRUE(std::isfinite(p.bound.delay_ms));
  }
  EXPECT_EQ(report.stats.optimize_evals, expected.optimize_evals);
  EXPECT_EQ(report.stats.profile_levels,
            static_cast<std::int64_t>(3 * report.points.size()));
  // The default warm sweep chains profile levels off the scalar solve.
  EXPECT_GT(report.stats.profile_chain_hits, 0);
}

TEST(SweepProfileTest, ColdSweepProfilesArePinnedToScalarSolves) {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.cross_utilization_axis({0.30, 0.60});
  SweepOptions opts;
  opts.warm_start = e2e::WarmStart::kCold;
  opts.profile_epsilons = {1e-3, 1e-8};
  const SweepReport report = SweepRunner(opts).run(grid);
  EXPECT_EQ(report.stats.profile_chain_hits, 0);
  for (const SweepPoint& p : report.points) {
    ASSERT_TRUE(p.profile.has_value());
    for (std::size_t i = 0; i < opts.profile_epsilons.size(); ++i) {
      e2e::Scenario level = p.scenario;
      level.epsilon = opts.profile_epsilons[i];
      const e2e::BoundResult scalar = deltanc::Solver().solve(level);
      EXPECT_EQ(p.profile->levels[i].delay_ms, scalar.delay_ms);
      EXPECT_EQ(p.profile->levels[i].gamma, scalar.gamma);
      EXPECT_EQ(p.profile->levels[i].s, scalar.s);
      EXPECT_EQ(p.profile->levels[i].sigma, scalar.sigma);
    }
  }
}

TEST(SweepProfileTest, CustomSolverDisablesProfiles) {
  // A caller-supplied solver produces BoundResults only -- there is no
  // profile entry point to call, so the ride-along is skipped.
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  grid.cross_utilization_axis({0.30, 0.40});
  SweepOptions opts;
  opts.profile_epsilons = {1e-3, 1e-9};
  opts.solver = [](const e2e::Scenario& sc, e2e::Method method) {
    return deltanc::Solver(method).solve(sc);
  };
  const SweepReport report = SweepRunner(opts).run(grid);
  for (const SweepPoint& p : report.points) {
    EXPECT_TRUE(p.ok);
    EXPECT_FALSE(p.profile.has_value());
  }
  EXPECT_EQ(report.stats.profile_levels, 0);
}

TEST(SweepProfileTest, ProfileCsvIsDeterministicShapedAndQuoted) {
  e2e::Scenario base;
  base.epsilon = 1e-6;
  SweepGrid grid(base);
  // A curve-backed scheduler whose name contains the CSV separator
  // ("gps:1,2"): the cell must be RFC-4180 quoted.
  grid.scheduler_axis(std::vector<sched::SchedulerSpec>{
      sched::SchedulerSpec(sched::SchedulerKind::kFifo),
      sched::SchedulerSpec::gps(1.0, 2.0)});
  SweepOptions opts;
  opts.warm_start = e2e::WarmStart::kCold;
  opts.profile_epsilons = {1e-3, 1e-9};

  std::ostringstream first, second;
  SweepRunner(opts).run(grid).write_profile_csv(first);
  SweepRunner(opts).run(grid).write_profile_csv(second);
  EXPECT_EQ(first.str(), second.str());

  const std::string text = first.str();
  EXPECT_EQ(text.rfind("point,hops,scheduler,n0,nc,u_pct,epsilon,delay_ms,"
                       "gamma,s,sigma,delta\n",
                       0),
            0u);
  EXPECT_NE(text.find("\"gps:1,2\""), std::string::npos);
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, grid.size() * opts.profile_epsilons.size() + 1);
}

TEST(SweepReportTest, TimingFieldsArePopulated) {
  const SweepReport report = SweepRunner().run(small_grid());
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.solve_ms, 0.0);
  for (const SweepPoint& p : report.points) EXPECT_GE(p.solve_ms, 0.0);
}

TEST(SchedulerNameTest, RoundTripsAllSchedulers) {
  for (sched::SchedulerKind s :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux, sched::SchedulerKind::kSpHigh,
        sched::SchedulerKind::kEdf}) {
    sched::SchedulerKind parsed{};
    ASSERT_TRUE(scheduler_from_name(scheduler_name(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  sched::SchedulerKind unused{};
  EXPECT_FALSE(scheduler_from_name("wfq", unused));
}

TEST(ThreadPoolTest, RunsAllSubmittedTasksAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("DELTANC_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ::setenv("DELTANC_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ::unsetenv("DELTANC_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPoolTest, DefaultThreadCountRejectsTrailingGarbage) {
  // strtol would happily parse "5x" as 5; the override must instead be
  // ignored unless the whole value is a positive integer.
  const unsigned hw_fallback = [] {
    ::unsetenv("DELTANC_THREADS");
    return ThreadPool::default_thread_count();
  }();
  for (const char* bad : {"5x", "2 threads", "1.5", "+", "-3", "0", ""}) {
    SCOPED_TRACE(bad);
    ::setenv("DELTANC_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::default_thread_count(), hw_fallback);
  }
  ::setenv("DELTANC_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 7u);
  ::unsetenv("DELTANC_THREADS");
}

}  // namespace
}  // namespace deltanc
