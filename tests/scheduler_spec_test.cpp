// The one scheduler identity: SchedulerSpec semantics, the canonical
// name registry (round-trips over every registered name), and the
// lowering adapters into both simulators -- including the deliberate
// "not lowerable" refusals for GPS and SCFQ.
#include "sched/scheduler_spec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "evsim/network.h"
#include "sim/tandem.h"

namespace deltanc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SchedulerSpec, FactoriesCarryTheDefinitionOneDeltas) {
  EXPECT_EQ(SchedulerSpec::fifo().static_delta(), 0.0);
  EXPECT_EQ(SchedulerSpec::bmux().static_delta(), kInf);
  EXPECT_EQ(SchedulerSpec::sp_high().static_delta(), -kInf);
  EXPECT_EQ(SchedulerSpec::fixed_delta(2.5).static_delta(), 2.5);
  EXPECT_FALSE(SchedulerSpec::edf().static_delta().has_value());
  // SP with the through class low *is* blind multiplexing (Sec. III).
  EXPECT_EQ(SchedulerSpec::sp(false), SchedulerSpec::bmux());
  EXPECT_EQ(SchedulerSpec::sp(true), SchedulerSpec::sp_high());
}

TEST(SchedulerSpec, DeltaTermResolvesEdfAgainstTheUnit) {
  EXPECT_EQ(SchedulerSpec::fifo().delta_term(123.0), 0.0);
  EXPECT_EQ(SchedulerSpec::fixed_delta(-3.0).delta_term(123.0), -3.0);
  // EDF: Delta = d*_0 - d*_c = (own - cross) * unit.
  const SchedulerSpec edf = SchedulerSpec::edf(1.0, 10.0);
  EXPECT_TRUE(edf.needs_fixed_point());
  EXPECT_DOUBLE_EQ(edf.delta_term(2.0), (1.0 - 10.0) * 2.0);
}

TEST(SchedulerSpec, KindAssignmentKeepsEdfFactorsButResetsDelta) {
  SchedulerSpec s = SchedulerSpec::edf(2.0, 5.0);
  s = SchedulerKind::kFifo;
  EXPECT_EQ(s, SchedulerKind::kFifo);
  EXPECT_EQ(s.edf_factors(), (EdfFactors{2.0, 5.0}));
  s = SchedulerKind::kEdf;  // toggling back is lossless
  EXPECT_EQ(s, SchedulerSpec::edf(2.0, 5.0));

  SchedulerSpec d = SchedulerSpec::fixed_delta(7.0);
  d = SchedulerKind::kDelta;  // a bare kind never means "old Delta"
  EXPECT_EQ(d.delta(), 0.0);
}

TEST(SchedulerSpec, EqualityComparesAllCarriedParameters) {
  EXPECT_EQ(SchedulerSpec::fifo(), SchedulerSpec(SchedulerKind::kFifo));
  EXPECT_NE(SchedulerSpec::fixed_delta(1.0), SchedulerSpec::fixed_delta(2.0));
  EXPECT_NE(SchedulerSpec::edf(1.0, 10.0), SchedulerSpec::edf(1.0, 20.0));
  // Kind-only comparison keeps the deprecated enum spelling working.
  EXPECT_TRUE(SchedulerSpec::edf(3.0, 4.0) == SchedulerKind::kEdf);
}

TEST(SchedulerSpec, ToDeltaMatrixMatchesTheNamedConstructions) {
  const std::size_t n = 3, analyzed = 0;
  const DeltaMatrix fifo = SchedulerSpec::fifo().to_delta_matrix(n, analyzed);
  const DeltaMatrix bmux = SchedulerSpec::bmux().to_delta_matrix(n, analyzed);
  const DeltaMatrix sp = SchedulerSpec::sp_high().to_delta_matrix(n, analyzed);
  const DeltaMatrix off =
      SchedulerSpec::fixed_delta(4.0).to_delta_matrix(n, analyzed);
  const DeltaMatrix edf =
      SchedulerSpec::edf(1.0, 10.0).to_delta_matrix(n, analyzed, 2.0);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_EQ(fifo.at(analyzed, k), 0.0);
    EXPECT_EQ(bmux.at(analyzed, k), kInf);
    EXPECT_EQ(sp.at(analyzed, k), -kInf);
    EXPECT_EQ(off.at(analyzed, k), 4.0);
    // Delta_{0,k} = d*_0 - d*_k = (1 - 10) * 2.
    EXPECT_DOUBLE_EQ(edf.at(analyzed, k), -18.0);
  }
  EXPECT_EQ(fifo.at(analyzed, analyzed), 0.0);  // locally FIFO diagonal
}

// ----- name registry -------------------------------------------------------

TEST(SchedulerRegistry, EveryRegisteredNameRoundTrips) {
  // Every kind: name -> kind -> name, and spec -> string -> spec.
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kBmux, SchedulerKind::kSpHigh,
        SchedulerKind::kEdf, SchedulerKind::kDelta}) {
    const std::string_view name = scheduler_kind_name(kind);
    EXPECT_FALSE(name.empty());
    SchedulerKind back{};
    ASSERT_TRUE(scheduler_kind_from_name(name, back)) << name;
    EXPECT_EQ(back, kind);
  }
  for (const SchedulerSpec spec :
       {SchedulerSpec::fifo(), SchedulerSpec::bmux(), SchedulerSpec::sp_high(),
        SchedulerSpec::edf(), SchedulerSpec::fixed_delta(0.0),
        SchedulerSpec::fixed_delta(2.5), SchedulerSpec::fixed_delta(kInf),
        SchedulerSpec::fixed_delta(-kInf)}) {
    const std::string text = to_string(spec);
    SchedulerSpec back;
    ASSERT_TRUE(parse_scheduler(text, back)) << text;
    EXPECT_EQ(back, spec) << text;
  }
  // The usage string mentions every registered family.
  const std::string usage = scheduler_usage_names();
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kBmux, SchedulerKind::kSpHigh,
        SchedulerKind::kEdf}) {
    EXPECT_NE(usage.find(scheduler_kind_name(kind)), std::string::npos);
  }
}

TEST(SchedulerRegistry, ParseRejectsUnknownAndMalformedNames) {
  SchedulerSpec out = SchedulerSpec::bmux();
  EXPECT_FALSE(parse_scheduler("gps", out));
  EXPECT_FALSE(parse_scheduler("scfq", out));
  EXPECT_FALSE(parse_scheduler("FIFO", out));
  EXPECT_FALSE(parse_scheduler("", out));
  EXPECT_FALSE(parse_scheduler("delta", out));       // bare: no offset
  EXPECT_FALSE(parse_scheduler("delta:", out));
  EXPECT_FALSE(parse_scheduler("delta:nan", out));   // NaN never compares
  EXPECT_FALSE(parse_scheduler("delta:1x", out));
  EXPECT_EQ(out, SchedulerSpec::bmux());  // rejects leave `out` untouched
}

TEST(SchedulerRegistry, DescriptionsNameTheFamily) {
  EXPECT_NE(scheduler_description(SchedulerSpec::edf(1.0, 10.0)).find("EDF"),
            std::string::npos);
  EXPECT_NE(scheduler_description(SchedulerSpec::fixed_delta(2.0)).find("2"),
            std::string::npos);
}

// ----- simulator lowering adapters -----------------------------------------

TEST(SchedulerLowering, TandemAdapterRoundTripsEveryKind) {
  struct Case {
    SchedulerSpec spec;
    sim::DisciplineKind expected;
  };
  for (const Case& c :
       {Case{SchedulerSpec::fifo(), sim::DisciplineKind::kFifo},
        Case{SchedulerSpec::bmux(), sim::DisciplineKind::kSpThroughLow},
        Case{SchedulerSpec::sp_high(), sim::DisciplineKind::kSpThroughHigh},
        Case{SchedulerSpec::edf(1.0, 10.0), sim::DisciplineKind::kEdf}}) {
    sim::TandemConfig config;
    sim::lower_scheduler(c.spec, 5.0, config);
    EXPECT_EQ(config.discipline, c.expected) << to_string(c.spec);
    const SchedulerSpec back = sim::scheduler_spec_of(config);
    // EDF raises to the fixed-Delta spec carrying the deadline
    // difference (absolute deadlines hold more than Def. 1 keeps).
    if (c.spec.needs_fixed_point()) {
      EXPECT_EQ(back,
                SchedulerSpec::fixed_delta(c.spec.delta_term(5.0)));
    } else {
      EXPECT_EQ(back, c.spec) << to_string(c.spec);
    }
  }
}

TEST(SchedulerLowering, FixedDeltaLowersToEdfWithTheExactOffset) {
  sim::TandemConfig config;
  sim::lower_scheduler(SchedulerSpec::fixed_delta(3.5), 1.0, config);
  EXPECT_EQ(config.discipline, sim::DisciplineKind::kEdf);
  EXPECT_DOUBLE_EQ(
      config.edf_through_deadline - config.edf_cross_deadline, 3.5);
  EXPECT_EQ(sim::scheduler_spec_of(config), SchedulerSpec::fixed_delta(3.5));

  evsim::EvNetworkConfig ev;
  evsim::lower_scheduler(SchedulerSpec::fixed_delta(-1.25), 1.0, ev);
  EXPECT_EQ(ev.policy, evsim::PolicyKind::kEdf);
  EXPECT_DOUBLE_EQ(
      ev.edf_through_deadline_ms - ev.edf_cross_deadline_ms, -1.25);
  EXPECT_EQ(evsim::scheduler_spec_of(ev), SchedulerSpec::fixed_delta(-1.25));
}

TEST(SchedulerLowering, EdfWithoutAUnitIsAnError) {
  sim::TandemConfig config;
  EXPECT_THROW(sim::lower_scheduler(SchedulerSpec::edf(), 0.0, config),
               std::invalid_argument);
  EXPECT_THROW(sim::lower_scheduler(SchedulerSpec::edf(), kInf, config),
               std::invalid_argument);
  evsim::EvNetworkConfig ev;
  EXPECT_THROW(evsim::lower_scheduler(SchedulerSpec::edf(), -1.0, ev),
               std::invalid_argument);
}

TEST(SchedulerLowering, GpsAndScfqAreExplicitlyNotLowerable) {
  // GPS and SCFQ exist only at the simulator layer: their precedence
  // horizon depends on the backlog process, so no constants Delta_{j,k}
  // exist (they are not Delta-schedulers) and the reverse adapters
  // refuse rather than guess.
  sim::TandemConfig gps;
  gps.discipline = sim::DisciplineKind::kGps;
  EXPECT_THROW((void)sim::scheduler_spec_of(gps), std::invalid_argument);

  evsim::EvNetworkConfig scfq;
  scfq.policy = evsim::PolicyKind::kScfq;
  EXPECT_THROW((void)evsim::scheduler_spec_of(scfq), std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::sched
