// The one scheduler identity: SchedulerSpec semantics, the canonical
// name registry (round-trips over every registered name), and the
// lowering adapters into both simulators -- including the curve-backed
// kinds (GPS/DRR/SCED), whose Delta observers refuse by design.
#include "sched/scheduler_spec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "evsim/network.h"
#include "sim/tandem.h"

namespace deltanc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SchedulerSpec, FactoriesCarryTheDefinitionOneDeltas) {
  EXPECT_EQ(SchedulerSpec::fifo().static_delta(), 0.0);
  EXPECT_EQ(SchedulerSpec::bmux().static_delta(), kInf);
  EXPECT_EQ(SchedulerSpec::sp_high().static_delta(), -kInf);
  EXPECT_EQ(SchedulerSpec::fixed_delta(2.5).static_delta(), 2.5);
  EXPECT_FALSE(SchedulerSpec::edf().static_delta().has_value());
  // SP with the through class low *is* blind multiplexing (Sec. III).
  EXPECT_EQ(SchedulerSpec::sp(false), SchedulerSpec::bmux());
  EXPECT_EQ(SchedulerSpec::sp(true), SchedulerSpec::sp_high());
}

TEST(SchedulerSpec, DeltaTermResolvesEdfAgainstTheUnit) {
  EXPECT_EQ(SchedulerSpec::fifo().delta_term(123.0), 0.0);
  EXPECT_EQ(SchedulerSpec::fixed_delta(-3.0).delta_term(123.0), -3.0);
  // EDF: Delta = d*_0 - d*_c = (own - cross) * unit.
  const SchedulerSpec edf = SchedulerSpec::edf(1.0, 10.0);
  EXPECT_TRUE(edf.needs_fixed_point());
  EXPECT_DOUBLE_EQ(edf.delta_term(2.0), (1.0 - 10.0) * 2.0);
}

TEST(SchedulerSpec, KindAssignmentKeepsEdfFactorsButResetsDelta) {
  SchedulerSpec s = SchedulerSpec::edf(2.0, 5.0);
  s = SchedulerKind::kFifo;
  EXPECT_EQ(s, SchedulerKind::kFifo);
  EXPECT_EQ(s.edf_factors(), (EdfFactors{2.0, 5.0}));
  s = SchedulerKind::kEdf;  // toggling back is lossless
  EXPECT_EQ(s, SchedulerSpec::edf(2.0, 5.0));

  SchedulerSpec d = SchedulerSpec::fixed_delta(7.0);
  d = SchedulerKind::kDelta;  // a bare kind never means "old Delta"
  EXPECT_EQ(d.delta(), 0.0);
}

TEST(SchedulerSpec, EqualityComparesAllCarriedParameters) {
  EXPECT_EQ(SchedulerSpec::fifo(), SchedulerSpec(SchedulerKind::kFifo));
  EXPECT_NE(SchedulerSpec::fixed_delta(1.0), SchedulerSpec::fixed_delta(2.0));
  EXPECT_NE(SchedulerSpec::edf(1.0, 10.0), SchedulerSpec::edf(1.0, 20.0));
  // Kind-only comparison keeps the deprecated enum spelling working.
  EXPECT_TRUE(SchedulerSpec::edf(3.0, 4.0) == SchedulerKind::kEdf);
}

TEST(SchedulerSpec, ToDeltaMatrixMatchesTheNamedConstructions) {
  const std::size_t n = 3, analyzed = 0;
  const DeltaMatrix fifo = SchedulerSpec::fifo().to_delta_matrix(n, analyzed);
  const DeltaMatrix bmux = SchedulerSpec::bmux().to_delta_matrix(n, analyzed);
  const DeltaMatrix sp = SchedulerSpec::sp_high().to_delta_matrix(n, analyzed);
  const DeltaMatrix off =
      SchedulerSpec::fixed_delta(4.0).to_delta_matrix(n, analyzed);
  const DeltaMatrix edf =
      SchedulerSpec::edf(1.0, 10.0).to_delta_matrix(n, analyzed, 2.0);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_EQ(fifo.at(analyzed, k), 0.0);
    EXPECT_EQ(bmux.at(analyzed, k), kInf);
    EXPECT_EQ(sp.at(analyzed, k), -kInf);
    EXPECT_EQ(off.at(analyzed, k), 4.0);
    // Delta_{0,k} = d*_0 - d*_k = (1 - 10) * 2.
    EXPECT_DOUBLE_EQ(edf.at(analyzed, k), -18.0);
  }
  EXPECT_EQ(fifo.at(analyzed, analyzed), 0.0);  // locally FIFO diagonal
}

// ----- name registry -------------------------------------------------------

TEST(SchedulerRegistry, EveryRegisteredNameRoundTrips) {
  // Every kind: name -> kind -> name, and spec -> string -> spec.
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kBmux, SchedulerKind::kSpHigh,
        SchedulerKind::kEdf, SchedulerKind::kDelta, SchedulerKind::kGps,
        SchedulerKind::kDrr, SchedulerKind::kSced}) {
    const std::string_view name = scheduler_kind_name(kind);
    EXPECT_FALSE(name.empty());
    SchedulerKind back{};
    ASSERT_TRUE(scheduler_kind_from_name(name, back)) << name;
    EXPECT_EQ(back, kind);
  }
  for (const SchedulerSpec& spec :
       {SchedulerSpec::fifo(), SchedulerSpec::bmux(), SchedulerSpec::sp_high(),
        SchedulerSpec::edf(), SchedulerSpec::fixed_delta(0.0),
        SchedulerSpec::fixed_delta(2.5), SchedulerSpec::fixed_delta(kInf),
        SchedulerSpec::fixed_delta(-kInf), SchedulerSpec::gps(),
        SchedulerSpec::gps(3.0, 1.0), SchedulerSpec::drr(),
        SchedulerSpec::drr(2.0, 0.5),
        SchedulerSpec::gps(ClassWeights::of({1.0, 2.0, 3.0})),
        SchedulerSpec::sced()}) {
    const std::string text = to_string(spec);
    SchedulerSpec back;
    ASSERT_TRUE(parse_scheduler(text, back)) << text;
    EXPECT_EQ(back, spec) << text;
  }
  // The usage string mentions every registered family.
  const std::string usage = scheduler_usage_names();
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kBmux, SchedulerKind::kSpHigh,
        SchedulerKind::kEdf, SchedulerKind::kGps, SchedulerKind::kDrr,
        SchedulerKind::kSced}) {
    EXPECT_NE(usage.find(scheduler_kind_name(kind)), std::string::npos);
  }
}

TEST(SchedulerRegistry, ParseRejectsUnknownAndMalformedNames) {
  SchedulerSpec out = SchedulerSpec::bmux();
  EXPECT_FALSE(parse_scheduler("scfq", out));  // lowers via gps weights
  EXPECT_FALSE(parse_scheduler("FIFO", out));
  EXPECT_FALSE(parse_scheduler("", out));
  EXPECT_FALSE(parse_scheduler("delta", out));       // bare: no offset
  EXPECT_FALSE(parse_scheduler("delta:", out));
  EXPECT_FALSE(parse_scheduler("delta:nan", out));   // NaN never compares
  EXPECT_FALSE(parse_scheduler("delta:1x", out));
  EXPECT_FALSE(parse_scheduler("gps:", out));
  EXPECT_FALSE(parse_scheduler("gps:1", out));       // one class is no split
  EXPECT_FALSE(parse_scheduler("gps:0,1", out));     // weights must be > 0
  EXPECT_FALSE(parse_scheduler("gps:-1,1", out));
  EXPECT_FALSE(parse_scheduler("gps:1,nan", out));
  EXPECT_FALSE(parse_scheduler("gps:1,inf", out));
  EXPECT_FALSE(parse_scheduler("drr:1,2,", out));    // trailing comma
  EXPECT_FALSE(parse_scheduler("drr:1,2x", out));
  EXPECT_FALSE(parse_scheduler("gps:1,2,3,4,5,6,7,8,9", out));  // > max
  EXPECT_FALSE(parse_scheduler("sced:1", out));      // sced has no params
  EXPECT_FALSE(parse_scheduler("fifo:1", out));
  EXPECT_EQ(out, SchedulerSpec::bmux());  // rejects leave `out` untouched
}

TEST(SchedulerRegistry, NumberGrammarIsStrictAndLocaleIndependent) {
  // The spec grammar is exactly what std::from_chars accepts: no
  // leading whitespace, no '+' sign, no hexfloat -- the lenient strtod
  // grammar silently read "gps: 2,1" as 2 and "gps:0x2,1" as 2.
  SchedulerSpec out = SchedulerSpec::bmux();
  EXPECT_FALSE(parse_scheduler("gps: 2,1", out));
  EXPECT_FALSE(parse_scheduler("gps:2, 1", out));
  EXPECT_FALSE(parse_scheduler("gps:+2,1", out));
  EXPECT_FALSE(parse_scheduler("gps:0x2,1", out));
  EXPECT_FALSE(parse_scheduler("drr:0X1p2,1", out));
  EXPECT_FALSE(parse_scheduler("delta: 1", out));
  EXPECT_FALSE(parse_scheduler("delta:0x10", out));
  EXPECT_FALSE(parse_scheduler("delta:+1", out));
  EXPECT_EQ(out, SchedulerSpec::bmux());
  ASSERT_TRUE(parse_scheduler("gps:1.5,1", out));
  EXPECT_EQ(out, SchedulerSpec::gps(1.5, 1.0));
  ASSERT_TRUE(parse_scheduler("drr:2e-1,1", out));
  EXPECT_EQ(out, SchedulerSpec::drr(0.2, 1.0));
  ASSERT_TRUE(parse_scheduler("delta:-2.5", out));
  EXPECT_EQ(out, SchedulerSpec::fixed_delta(-2.5));
}

TEST(SchedulerRegistry, ListParseRejectsStrictGrammarViolationsToo) {
  // --sweep axis lists route through parse_scheduler_list; a sloppy
  // token must fail the whole list, not silently mis-parse.
  std::vector<SchedulerSpec> specs;
  EXPECT_FALSE(parse_scheduler_list("fifo,gps: 2,1", specs));
  EXPECT_FALSE(parse_scheduler_list("fifo,gps:0x2,1", specs));
  EXPECT_FALSE(parse_scheduler_list("delta:+1,fifo", specs));
  ASSERT_TRUE(parse_scheduler_list("fifo,gps:1.5,1,drr:2e-1,1,sced", specs));
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[1], SchedulerSpec::gps(1.5, 1.0));
  EXPECT_EQ(specs[2], SchedulerSpec::drr(0.2, 1.0));
}

TEST(SchedulerRegistry, ParseStrictDoubleMatchesTheFromCharsGrammar) {
  double v = 0.0;
  EXPECT_TRUE(parse_strict_double("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(parse_strict_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(parse_strict_double("inf", v));  // callers range-check
  EXPECT_FALSE(parse_strict_double("", v));
  EXPECT_FALSE(parse_strict_double(" 2", v));
  EXPECT_FALSE(parse_strict_double("2 ", v));
  EXPECT_FALSE(parse_strict_double("+2", v));
  EXPECT_FALSE(parse_strict_double("0x2", v));
  EXPECT_FALSE(parse_strict_double("1,5", v));  // no locale decimal comma
  EXPECT_FALSE(parse_strict_double("2abc", v));
}

TEST(SchedulerRegistry, BareGpsAndDrrMeanTheEqualTwoClassSplit) {
  SchedulerSpec out;
  ASSERT_TRUE(parse_scheduler("gps", out));
  EXPECT_EQ(out, SchedulerSpec::gps(1.0, 1.0));
  ASSERT_TRUE(parse_scheduler("drr", out));
  EXPECT_EQ(out, SchedulerSpec::drr(1.0, 1.0));
  ASSERT_TRUE(parse_scheduler("sced", out));
  EXPECT_EQ(out, SchedulerSpec::sced());
}

TEST(SchedulerRegistry, ListParseUsesMaximalMunchAcrossWeightCommas) {
  std::vector<SchedulerSpec> specs;
  ASSERT_TRUE(parse_scheduler_list("fifo,gps:1,2,edf", specs));
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], SchedulerSpec::fifo());
  EXPECT_EQ(specs[1], SchedulerSpec::gps(1.0, 2.0));
  EXPECT_EQ(specs[2], SchedulerSpec::edf());

  ASSERT_TRUE(parse_scheduler_list("gps,drr:4,2,1,sced", specs));
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], SchedulerSpec::gps());
  EXPECT_EQ(specs[1], SchedulerSpec::drr(ClassWeights::of({4.0, 2.0, 1.0})));
  EXPECT_EQ(specs[2], SchedulerSpec::sced());

  const std::vector<SchedulerSpec> before = specs;
  EXPECT_FALSE(parse_scheduler_list("fifo,,bmux", specs));
  EXPECT_FALSE(parse_scheduler_list("gps:1,nope", specs));
  EXPECT_FALSE(parse_scheduler_list("", specs));
  EXPECT_EQ(specs, before);  // rejects leave `out` untouched
}

TEST(SchedulerRegistry, DescriptionsNameTheFamily) {
  EXPECT_NE(scheduler_description(SchedulerSpec::edf(1.0, 10.0)).find("EDF"),
            std::string::npos);
  EXPECT_NE(scheduler_description(SchedulerSpec::fixed_delta(2.0)).find("2"),
            std::string::npos);
}

// ----- simulator lowering adapters -----------------------------------------

TEST(SchedulerLowering, TandemAdapterRoundTripsEveryKind) {
  struct Case {
    SchedulerSpec spec;
    sim::DisciplineKind expected;
  };
  for (const Case& c :
       {Case{SchedulerSpec::fifo(), sim::DisciplineKind::kFifo},
        Case{SchedulerSpec::bmux(), sim::DisciplineKind::kSpThroughLow},
        Case{SchedulerSpec::sp_high(), sim::DisciplineKind::kSpThroughHigh},
        Case{SchedulerSpec::edf(1.0, 10.0), sim::DisciplineKind::kEdf}}) {
    sim::TandemConfig config;
    sim::lower_scheduler(c.spec, 5.0, config);
    EXPECT_EQ(config.discipline, c.expected) << to_string(c.spec);
    const SchedulerSpec back = sim::scheduler_spec_of(config);
    // EDF raises to the fixed-Delta spec carrying the deadline
    // difference (absolute deadlines hold more than Def. 1 keeps).
    if (c.spec.needs_fixed_point()) {
      EXPECT_EQ(back,
                SchedulerSpec::fixed_delta(c.spec.delta_term(5.0)));
    } else {
      EXPECT_EQ(back, c.spec) << to_string(c.spec);
    }
  }
}

TEST(SchedulerLowering, FixedDeltaLowersToEdfWithTheExactOffset) {
  sim::TandemConfig config;
  sim::lower_scheduler(SchedulerSpec::fixed_delta(3.5), 1.0, config);
  EXPECT_EQ(config.discipline, sim::DisciplineKind::kEdf);
  EXPECT_DOUBLE_EQ(
      config.edf_through_deadline - config.edf_cross_deadline, 3.5);
  EXPECT_EQ(sim::scheduler_spec_of(config), SchedulerSpec::fixed_delta(3.5));

  evsim::EvNetworkConfig ev;
  evsim::lower_scheduler(SchedulerSpec::fixed_delta(-1.25), 1.0, ev);
  EXPECT_EQ(ev.policy, evsim::PolicyKind::kEdf);
  EXPECT_DOUBLE_EQ(
      ev.edf_through_deadline_ms - ev.edf_cross_deadline_ms, -1.25);
  EXPECT_EQ(evsim::scheduler_spec_of(ev), SchedulerSpec::fixed_delta(-1.25));
}

TEST(SchedulerLowering, EdfWithoutAUnitIsAnError) {
  sim::TandemConfig config;
  EXPECT_THROW(sim::lower_scheduler(SchedulerSpec::edf(), 0.0, config),
               std::invalid_argument);
  EXPECT_THROW(sim::lower_scheduler(SchedulerSpec::edf(), kInf, config),
               std::invalid_argument);
  evsim::EvNetworkConfig ev;
  EXPECT_THROW(evsim::lower_scheduler(SchedulerSpec::edf(), -1.0, ev),
               std::invalid_argument);
}

TEST(SchedulerLowering, GpsLowersToBothSimulatorsAndRaisesBack) {
  // GPS is curve-backed, not a Delta-scheduler, but it *is* lowerable:
  // the tandem simulator has a fluid GPS discipline and the event
  // simulator approximates it with SCFQ.  The configs keep the full
  // weight list (the simulators collapse the cross classes internally),
  // so the raise is lossless even for >= 3-class specs.
  sim::TandemConfig config;
  sim::lower_scheduler(SchedulerSpec::gps(3.0, 1.0), 1.0, config);
  EXPECT_EQ(config.discipline, sim::DisciplineKind::kGps);
  EXPECT_EQ(config.class_weights, ClassWeights::of({3.0, 1.0}));
  EXPECT_EQ(sim::scheduler_spec_of(config), SchedulerSpec::gps(3.0, 1.0));

  evsim::EvNetworkConfig ev;
  evsim::lower_scheduler(SchedulerSpec::gps(ClassWeights::of({2.0, 1.0, 1.0})),
                         1.0, ev);
  EXPECT_EQ(ev.policy, evsim::PolicyKind::kScfq);
  EXPECT_EQ(ev.class_weights, ClassWeights::of({2.0, 1.0, 1.0}));
  // Lossless: gps:2,1,1 round-trips as itself, not as the collapsed
  // gps:2,2 the two-class simulation actually runs.
  EXPECT_EQ(evsim::scheduler_spec_of(ev),
            SchedulerSpec::gps(ClassWeights::of({2.0, 1.0, 1.0})));
  EXPECT_NE(evsim::scheduler_spec_of(ev), SchedulerSpec::gps(2.0, 2.0));

  sim::TandemConfig config3;
  sim::lower_scheduler(SchedulerSpec::gps(ClassWeights::of({2.0, 1.0, 1.0})),
                       1.0, config3);
  EXPECT_EQ(sim::scheduler_spec_of(config3),
            SchedulerSpec::gps(ClassWeights::of({2.0, 1.0, 1.0})));
}

TEST(SchedulerLowering, DrrLowersToBothSimulatorsAndRaisesBack) {
  // The slot simulator gets a fluid deficit-counter discipline, the
  // event simulator the classic packetized one; quanta travel through
  // class_weights and raise back losslessly.
  sim::TandemConfig config;
  sim::lower_scheduler(SchedulerSpec::drr(4.5, 1.5), 1.0, config);
  EXPECT_EQ(config.discipline, sim::DisciplineKind::kDrr);
  EXPECT_EQ(config.class_weights, ClassWeights::of({4.5, 1.5}));
  EXPECT_EQ(sim::scheduler_spec_of(config), SchedulerSpec::drr(4.5, 1.5));

  evsim::EvNetworkConfig ev;
  evsim::lower_scheduler(SchedulerSpec::drr(ClassWeights::of({3.0, 1.0, 2.0})),
                         1.0, ev);
  EXPECT_EQ(ev.policy, evsim::PolicyKind::kDrr);
  EXPECT_EQ(evsim::scheduler_spec_of(ev),
            SchedulerSpec::drr(ClassWeights::of({3.0, 1.0, 2.0})));
}

TEST(SchedulerLowering, ScedLowersToBothSimulatorsParameterlessly) {
  // SCED carries no parameters: the disciplines derive load-proportional
  // rates from the configured flow counts at run time.
  sim::TandemConfig config;
  sim::lower_scheduler(SchedulerSpec::sced(), 1.0, config);
  EXPECT_EQ(config.discipline, sim::DisciplineKind::kSced);
  EXPECT_EQ(sim::scheduler_spec_of(config), SchedulerSpec::sced());

  evsim::EvNetworkConfig ev;
  evsim::lower_scheduler(SchedulerSpec::sced(), 1.0, ev);
  EXPECT_EQ(ev.policy, evsim::PolicyKind::kSced);
  EXPECT_EQ(evsim::scheduler_spec_of(ev), SchedulerSpec::sced());
}

TEST(SchedulerLowering, EveryRegisteredNameLowersIntoBothSimulators) {
  // The bug this guards against: a registry name that parses fine but
  // throws at simulation time.  EDF-like kinds get a unit of 1.0.
  for (const char* name : {"fifo", "bmux", "sp-high", "edf", "delta:2.5",
                           "gps:2,1", "drr:1.5,1.5", "sced"}) {
    SchedulerSpec spec;
    ASSERT_TRUE(parse_scheduler(name, spec)) << name;
    sim::TandemConfig config;
    evsim::EvNetworkConfig ev;
    EXPECT_NO_THROW(sim::lower_scheduler(spec, 1.0, config)) << name;
    EXPECT_NO_THROW(evsim::lower_scheduler(spec, 1.0, ev)) << name;
  }
}

TEST(SchedulerSpec, CurveBackedKindsRefuseTheDeltaObservers) {
  for (const SchedulerSpec& spec :
       {SchedulerSpec::gps(), SchedulerSpec::drr(), SchedulerSpec::sced()}) {
    EXPECT_TRUE(spec.is_curve_backed()) << to_string(spec);
    EXPECT_FALSE(spec.needs_fixed_point()) << to_string(spec);
    EXPECT_FALSE(spec.static_delta().has_value()) << to_string(spec);
    EXPECT_TRUE(std::isnan(spec.delta_term(1.0))) << to_string(spec);
    EXPECT_THROW((void)spec.to_delta_matrix(2, 0), std::invalid_argument);
  }
  EXPECT_FALSE(SchedulerSpec::fifo().is_curve_backed());
  EXPECT_FALSE(SchedulerSpec::edf().is_curve_backed());
}

TEST(SchedulerSpec, ClassWeightsClampInvalidListsToTheDefaultSplit) {
  EXPECT_EQ(ClassWeights::of({2.0}), ClassWeights{});
  EXPECT_EQ(ClassWeights::of({0.0, 1.0}), ClassWeights{});
  EXPECT_EQ(ClassWeights::of({1.0, kInf}), ClassWeights{});
  const ClassWeights w = ClassWeights::of({4.0, 2.0, 2.0});
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.through(), 4.0);
  EXPECT_DOUBLE_EQ(w.total(), 8.0);
  EXPECT_DOUBLE_EQ(w.cross_total(), 4.0);
  EXPECT_DOUBLE_EQ(w.through_share(), 0.5);
}

}  // namespace
}  // namespace deltanc::sched
