#include "core/selfcheck.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/scenario.h"

namespace deltanc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SelfCheckOptions quiet_options() {
  SelfCheckOptions options;
  options.threads = 2;
  return options;
}

TEST(SelfCheck, Fig2OperatingPointsPassAllInvariants) {
  // A slice of the Fig. 2 grid: utilization axis x all four schedulers.
  // Ordering, monotonicity in the load, method agreement, finiteness.
  SweepGrid grid(ScenarioBuilder()
                     .hops(5)
                     .through_flows(100)
                     .violation_probability(1e-9)
                     .edf_deadlines(1.0, 10.0)
                     .build());
  grid.cross_utilization_axis({0.05, 0.35, 0.65})
      .scheduler_axis({sched::SchedulerKind::kSpHigh, sched::SchedulerKind::kEdf,
                       sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux});
  const SelfCheckReport report = self_check(grid, quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
  EXPECT_EQ(report.points, 24u);  // 12 scenarios x 2 methods
  EXPECT_GT(report.checks, 24u);
}

TEST(SelfCheck, Fig3MixPointsOrderTheEdfVariants) {
  // The Fig. 3 columns at one mix point: the two EDF deadline settings
  // must slot between SP-high and BMUX in resolved-Delta order.
  std::vector<e2e::Scenario> scenarios;
  struct Column {
    sched::SchedulerKind sched;
    double own, cross;
  };
  for (const Column& col : {Column{sched::SchedulerKind::kEdf, 1.0, 2.0},
                            Column{sched::SchedulerKind::kFifo, 1.0, 1.0},
                            Column{sched::SchedulerKind::kEdf, 1.0, 0.5},
                            Column{sched::SchedulerKind::kBmux, 1.0, 1.0}}) {
    scenarios.push_back(ScenarioBuilder()
                            .hops(2)
                            .through_utilization(0.25)
                            .cross_utilization(0.25)
                            .violation_probability(1e-9)
                            .scheduler(col.sched)
                            .edf_deadlines(col.own, col.cross)
                            .build());
  }
  const SelfCheckReport report =
      self_check(std::span<const e2e::Scenario>(scenarios), quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
}

TEST(SelfCheck, MonotoneInEpsilonAndHops) {
  SweepGrid grid(ScenarioBuilder()
                     .hops(2)
                     .through_flows(100)
                     .cross_flows(200)
                     .build());
  grid.hops_axis({1, 3, 6}).epsilon_axis({1e-9, 1e-6, 1e-3});
  const SelfCheckReport report = self_check(grid, quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
}

TEST(SelfCheck, SingleScenarioExpandsAllSchedulers) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(4)
                               .through_flows(150)
                               .cross_flows(150)
                               .build();
  const SelfCheckReport report = self_check(sc, quiet_options());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.points, 8u);  // 4 schedulers x 2 methods
}

TEST(SelfCheck, UnstablePointsPassWhenClassified) {
  // Overloaded scenarios must report +inf (classified kUnstable), which
  // satisfies the finiteness check rather than tripping it.
  SweepGrid grid(ScenarioBuilder().through_flows(100).build());
  grid.cross_utilization_axis({0.5, 0.9, 1.3});
  const SelfCheckReport report = self_check(grid, quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
}

TEST(SelfCheck, DetectsOrderingViolation) {
  // A broken solver whose bounds *decrease* with Delta: SP-high above
  // FIFO above BMUX.  The ordering check must flag it.
  SelfCheckOptions options = quiet_options();
  options.solver = [](const e2e::Scenario& sc, e2e::Method) {
    double delta = 0.0, delay = 5.0;
    if (sc.scheduler == sched::SchedulerKind::kSpHigh) delta = -kInf, delay = 10.0;
    if (sc.scheduler == sched::SchedulerKind::kBmux) delta = kInf, delay = 1.0;
    return e2e::BoundResult{delay, 0.5, 0.5, 1.0, delta};
  };
  const e2e::Scenario sc = ScenarioBuilder().build();
  const SelfCheckReport report = self_check(sc, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().check, "ordering");
}

TEST(SelfCheck, DetectsNaNResults) {
  SelfCheckOptions options = quiet_options();
  options.solver = [](const e2e::Scenario&, e2e::Method) {
    return e2e::BoundResult{std::nan(""), 0.5, 0.5, 1.0, 0.0};
  };
  const SelfCheckReport report =
      self_check(ScenarioBuilder().build(), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().check, "finiteness");
}

TEST(SelfCheck, DetectsMonotonicityViolation) {
  // Delay shrinking as the path grows is impossible; inject it.
  SelfCheckOptions options = quiet_options();
  options.solver = [](const e2e::Scenario& sc, e2e::Method) {
    return e2e::BoundResult{100.0 / sc.hops, 0.5, 0.5, 1.0, 0.0};
  };
  SweepGrid grid(ScenarioBuilder().build());
  grid.hops_axis({1, 2, 4});
  const SelfCheckReport report = self_check(grid, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().check, "monotonicity");
}

TEST(SelfCheck, CurveBackedBatteryPasses) {
  // GPS/DRR/SCED orderings + the isolation pair; all invariants hold on
  // the real solver.
  const SelfCheckReport report = self_check_curve_backed(quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
  EXPECT_GT(report.points, 0u);
  EXPECT_GT(report.checks, report.points);
}

TEST(SelfCheck, CurveBackedPointsPassTheGenericChecks) {
  // A mixed grid: curve-backed specs carry a NaN Delta by contract, and
  // GPS isolation keeps bounds finite at overload -- the point checks
  // must accept both, and the Delta-ordering check must skip the specs
  // that have no Delta coordinate.
  SweepGrid grid(ScenarioBuilder().through_flows(100).build());
  grid.cross_utilization_axis({0.5, 0.9, 1.3})
      .scheduler_axis(std::vector<sched::SchedulerSpec>{
          sched::SchedulerSpec(sched::SchedulerKind::kFifo),
          sched::SchedulerSpec::gps(3.0, 1.0), sched::SchedulerSpec::sced()});
  const SelfCheckReport report = self_check(grid, quiet_options());
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
}

TEST(SelfCheck, ReportsMergeWithPlusEquals) {
  SelfCheckReport a, b;
  a.points = 3;
  a.checks = 10;
  b.points = 2;
  b.checks = 4;
  b.issues.push_back(SelfCheckIssue{"ordering", "x"});
  a += b;
  EXPECT_EQ(a.points, 5u);
  EXPECT_EQ(a.checks, 14u);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.summary(), "5 points, 14 checks, 1 issue(s)");
}

}  // namespace
}  // namespace deltanc
