// Tests for the simulator extensions: packetized emission (the paper's
// "packet sizes are small" assumption) and per-node backlog recording
// with an analytic backlog-bound validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/tandem.h"
#include "traffic/mmoo.h"

namespace deltanc::sim {
namespace {

TandemConfig base_config() {
  TandemConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  c.seed = 5;
  return c;
}

TEST(Packetization, ConservesTraffic) {
  TandemConfig fluid = base_config();
  TandemConfig pkt = base_config();
  pkt.packet_kb = 1.5;
  const TandemResult rf = run_tandem(fluid);
  const TandemResult rp = run_tandem(pkt);
  // Same offered load (up to the residual fraction of one packet per
  // source), hence near-identical utilization.
  EXPECT_NEAR(rp.mean_utilization, rf.mean_utilization,
              0.02 * rf.mean_utilization);
}

TEST(Packetization, RecordsPerPacketDelays) {
  TandemConfig pkt = base_config();
  pkt.packet_kb = 1.5;
  const TandemResult r = run_tandem(pkt);
  // Many more samples than slots: one per packet, not one per aggregate.
  EXPECT_GT(r.through_delay.count(),
            static_cast<std::size_t>(pkt.slots));
}

TEST(Packetization, SmallPacketsMatchFluidDelays) {
  // The paper ignores packetization, arguing packets are small relative
  // to the link rate.  With 1.5 kb packets on a 100 kb/slot link the
  // per-packet tail delay must track the fluid tail within ~1 slot.
  TandemConfig fluid = base_config();
  TandemConfig pkt = base_config();
  pkt.packet_kb = 1.5;
  const double fluid_q = run_tandem(fluid).through_delay.quantile(0.99);
  const double pkt_q = run_tandem(pkt).through_delay.quantile(0.99);
  EXPECT_NEAR(pkt_q, fluid_q, 2.0);
}

TEST(Packetization, RejectsNegativePacketSize) {
  TandemConfig c = base_config();
  c.packet_kb = -1.0;
  EXPECT_THROW((void)run_tandem(c), std::invalid_argument);
}

TEST(BacklogRecording, DisabledByDefault) {
  const TandemResult r = run_tandem(base_config());
  EXPECT_TRUE(r.node_backlog.empty());
}

TEST(BacklogRecording, SamplesEveryStride) {
  TandemConfig c = base_config();
  c.backlog_stride = 16;
  const TandemResult r = run_tandem(c);
  ASSERT_EQ(r.node_backlog.size(), 2u);
  const auto expected =
      static_cast<std::size_t>((c.slots - c.warmup_slots) / 16);
  EXPECT_NEAR(static_cast<double>(r.node_backlog[0].count()),
              static_cast<double>(expected), 3.0);
  // Heavier-loaded node 1 must show nonzero backlog sometimes at U~75%.
  EXPECT_GT(r.node_backlog[0].max(), 0.0);
}

TEST(BacklogRecording, AnalyticBoundDominatesEmpiricalQuantile) {
  // Single node, aggregate of N0 + Nc MMOO flows at rate C: the EBB
  // backlog bound P(B > sigma) <= e^{-s sigma} / (1 - e^{-s gamma})
  // (sample-path envelope vs. the full-rate service), minimized over
  // (s, gamma), must dominate the empirical 0.999-quantile.
  TandemConfig c = base_config();
  c.hops = 1;
  c.slots = 200000;
  c.backlog_stride = 4;
  const TandemResult r = run_tandem(c);
  ASSERT_EQ(r.node_backlog.size(), 1u);
  const double empirical = r.node_backlog[0].quantile(0.999);

  const auto model = traffic::MmooSource::paper_source();
  const int n = c.n_through + c.n_cross;
  const double eps = 1e-3;
  double bound = std::numeric_limits<double>::infinity();
  for (double s = 0.01; s <= 2.0; s *= 1.3) {
    const double rho = n * model.effective_bandwidth(s);
    if (rho >= c.capacity_kb_per_slot) continue;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double gamma = frac * (c.capacity_kb_per_slot - rho);
      const double m = 1.0 / (1.0 - std::exp(-s * gamma));
      bound = std::min(bound, std::log(m / eps) / s);
    }
  }
  ASSERT_TRUE(std::isfinite(bound));
  EXPECT_LE(empirical, bound);
}

TEST(BacklogRecording, BurstinessAccumulatesDownstream) {
  // Chunks delayed at node 1 are released in batches and hit node 2
  // together with fresh cross traffic, so the tail backlog downstream is
  // *worse* than at the entry node -- the output-burstiness growth that
  // makes the additive node-by-node analysis (Fig. 4) so loose.
  TandemConfig c = base_config();
  c.hops = 3;
  c.backlog_stride = 8;
  c.slots = 120000;
  const TandemResult r = run_tandem(c);
  ASSERT_EQ(r.node_backlog.size(), 3u);
  EXPECT_GE(r.node_backlog[2].quantile(0.999),
            r.node_backlog[0].quantile(0.999));
}

}  // namespace
}  // namespace deltanc::sim
