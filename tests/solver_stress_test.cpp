// Seeded randomized stress harness (tentpole part 4): samples scenarios
// across the valid parameter space -- capacities, path lengths, loads up
// to and beyond instability, epsilons, all four schedulers, random MMOO
// sources -- and asserts the structural invariants the theory guarantees:
// every solve is NaN-free and either finite or loudly classified, overload
// is equivalent to a kUnstable +inf, exact <= paper-K, the scheduler
// ordering holds, and the sweep engine's per-kind aggregation matches a
// manual recount.  The seed is fixed for reproducibility and overridable
// via the DELTANC_STRESS_SEED environment variable (ctest registers it
// with the default seed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/selfcheck.h"
#include "core/sweep.h"
#include "e2e/param_search.h"
#include "e2e/solver.h"
#include "traffic/mmoo.h"

namespace deltanc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int kScenarios = 220;  // >= 200 per the acceptance criteria

std::uint64_t stress_seed() {
  if (const char* env = std::getenv("DELTANC_STRESS_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return 20260806ull;
}

/// One random but *valid* scenario: validate() must come back ok()
/// (possibly unstable -- loads are sampled up to 115% on purpose).
e2e::Scenario random_scenario(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  e2e::Scenario sc;
  sc.capacity = std::pow(10.0, 1.0 + 1.5 * unit(rng));  // 10 .. ~316 Mbps
  sc.hops = 1 + static_cast<int>(16.0 * unit(rng));
  if (unit(rng) < 0.3) {
    // A non-paper source: p11, p22 >= 0.5 guarantees p12 + p21 <= 1.
    sc.source = traffic::MmooSource(0.5 + 4.0 * unit(rng),
                                    0.5 + 0.49 * unit(rng),
                                    0.5 + 0.49 * unit(rng));
  }
  const double total_u = 0.05 + 1.10 * unit(rng);  // spans the instability
  const double through_share = 0.1 + 0.8 * unit(rng);
  const double flows = sc.capacity * total_u / sc.source.mean_rate();
  sc.n_through = std::max(1, static_cast<int>(flows * through_share));
  sc.n_cross = std::max(0, static_cast<int>(flows * (1.0 - through_share)));
  sc.epsilon = std::pow(10.0, -12.0 + 10.0 * unit(rng));
  const double pick = unit(rng);
  sc.scheduler = pick < 0.25   ? sched::SchedulerKind::kFifo
                 : pick < 0.5  ? sched::SchedulerKind::kBmux
                 : pick < 0.75 ? sched::SchedulerKind::kSpHigh
                               : sched::SchedulerKind::kEdf;
  sc.scheduler.set_edf_factors(
      sched::EdfFactors{std::pow(10.0, -1.0 + 2.0 * unit(rng)),
                        std::pow(10.0, -1.0 + 2.3 * unit(rng))});
  return sc;
}

class SolverStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::mt19937_64 rng(stress_seed());
    scenarios_ = new std::vector<e2e::Scenario>();
    for (int i = 0; i < kScenarios; ++i) {
      scenarios_->push_back(random_scenario(rng));
    }
    SweepOptions options;
    report_ = new SweepReport(
        SweepRunner(options).run(std::span<const e2e::Scenario>(*scenarios_)));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete scenarios_;
    report_ = nullptr;
    scenarios_ = nullptr;
  }

  static std::vector<e2e::Scenario>* scenarios_;
  static SweepReport* report_;
};

std::vector<e2e::Scenario>* SolverStressTest::scenarios_ = nullptr;
SweepReport* SolverStressTest::report_ = nullptr;

TEST_F(SolverStressTest, GeneratedScenariosAreValid) {
  for (const e2e::Scenario& sc : *scenarios_) {
    const diag::ValidationReport vr = sc.validate();
    EXPECT_TRUE(vr.ok()) << vr.message();
  }
}

TEST_F(SolverStressTest, EverySolveIsFiniteOrClassified) {
  ASSERT_EQ(report_->points.size(), static_cast<std::size_t>(kScenarios));
  for (std::size_t i = 0; i < report_->points.size(); ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i) +
                 " seed=" + std::to_string(stress_seed()));
    const SweepPoint& p = report_->points[i];
    ASSERT_TRUE(p.ok) << p.error;
    const e2e::BoundResult& r = p.bound;
    EXPECT_FALSE(std::isnan(r.delay_ms));
    EXPECT_FALSE(std::isnan(r.gamma));
    EXPECT_FALSE(std::isnan(r.s));
    EXPECT_FALSE(std::isnan(r.sigma));
    EXPECT_FALSE(std::isnan(r.delta));
    const double u = p.scenario.utilization();
    if (u >= 1.0) {
      // Overload <=> classified kUnstable with a +inf bound.
      EXPECT_EQ(r.delay_ms, kInf);
      EXPECT_EQ(r.diagnostics.error, diag::SolveErrorKind::kUnstable);
    } else if (std::isfinite(r.delay_ms)) {
      EXPECT_GE(r.delay_ms, 0.0);
      EXPECT_GT(r.s, 0.0);
      EXPECT_TRUE(std::isfinite(r.gamma));
    } else {
      // A +inf bound below the stability limit must be *loudly*
      // classified -- zero unclassified failures is the contract.
      EXPECT_NE(r.diagnostics.error, diag::SolveErrorKind::kNone)
          << "unclassified +inf at U = " << u;
    }
    for (const diag::Warning& w : r.diagnostics.warnings) {
      EXPECT_EQ(w.kind, diag::SolveErrorKind::kNoConvergence);
    }
    if (!r.stats.edf_converged) {
      EXPECT_FALSE(r.diagnostics.warnings.empty())
          << "exhausted EDF fixed point without a warning";
    }
  }
}

TEST_F(SolverStressTest, PerKindCountsMatchManualRecount) {
  const diag::ErrorCounts counts = report_->counts_by_kind();
  diag::ErrorCounts manual;
  for (const SweepPoint& p : report_->points) {
    manual.record(p.bound.diagnostics);
  }
  // All stress scenarios are valid and the default solver classifies
  // every +inf itself, so the sweep's aggregation must equal a plain
  // per-point recount.
  for (std::size_t k = 0; k < diag::kSolveErrorKinds; ++k) {
    EXPECT_EQ(counts.errors[k], manual.errors[k]) << "kind " << k;
    EXPECT_EQ(counts.warnings[k], manual.warnings[k]) << "kind " << k;
  }
  EXPECT_EQ(counts.errors[static_cast<std::size_t>(
                diag::SolveErrorKind::kInvalidScenario)],
            0u);
}

TEST_F(SolverStressTest, ExactNeverExceedsPaperK) {
  // The K-procedure restricts the exact search, so exact <= paper-K up
  // to search tolerance; +inf on the paper-K side is acceptable.
  for (std::size_t i = 0; i < report_->points.size(); i += 9) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const double exact = report_->points[i].bound.delay_ms;
    const double paperk =
        deltanc::Solver(e2e::Method::kPaperK).solve((*scenarios_)[i]).delay_ms;
    if (paperk == kInf) continue;
    EXPECT_LE(exact, paperk * (1.0 + 1e-3));
  }
}

TEST_F(SolverStressTest, SchedulerOrderingHoldsOnStressPoints) {
  // Expand a deterministic subset into all four schedulers and run the
  // full invariant battery (Delta-ordering, finiteness, classification).
  SelfCheckOptions options;
  options.check_methods = false;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < scenarios_->size(); i += 23) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const SelfCheckReport report = self_check((*scenarios_)[i], options);
    EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                     ? ""
                                     : report.issues.front().detail);
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

TEST(SolverStressInvalid, DeliberatelyInvalidScenariosAreClassified) {
  // Malformed inputs mixed into a sweep must come back as per-point
  // kInvalidScenario classifications with multi-violation messages --
  // never a bare exception or an aborted sweep.
  e2e::Scenario broken;  // three violations at once
  broken.capacity = -1.0;
  broken.hops = 0;
  broken.epsilon = 7.0;
  const diag::ValidationReport vr = broken.validate();
  EXPECT_FALSE(vr.ok());
  EXPECT_GE(vr.error_count(), 3u);
  EXPECT_THROW((void)deltanc::Solver().solve(broken), std::invalid_argument);

  std::vector<e2e::Scenario> scenarios = {e2e::Scenario{}, broken,
                                          e2e::Scenario{}};
  const SweepReport report =
      SweepRunner().run(std::span<const e2e::Scenario>(scenarios));
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_TRUE(report.points[0].ok);
  EXPECT_TRUE(report.points[2].ok);
  const SweepPoint& bad = report.points[1];
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.bound.diagnostics.error,
            diag::SolveErrorKind::kInvalidScenario);
  EXPECT_NE(bad.error.find("capacity"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("hops"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("epsilon"), std::string::npos) << bad.error;
  EXPECT_EQ(report.failures(), 1u);
  const diag::ErrorCounts counts = report.counts_by_kind();
  EXPECT_EQ(counts.errors[static_cast<std::size_t>(
                diag::SolveErrorKind::kInvalidScenario)],
            1u);
}

}  // namespace
}  // namespace deltanc
