#include "core/report.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.h"
#include "e2e/solver.h"

namespace deltanc {
namespace {

e2e::Scenario scenario() {
  return ScenarioBuilder()
      .hops(3)
      .through_flows(100)
      .cross_flows(150)
      .scheduler(sched::SchedulerKind::kFifo)
      .build();
}

TEST(DelayCcdfBound, MonotoneInEpsilon) {
  // Smaller violation probability -> larger delay bound.
  const std::vector<double> eps{1e-3, 1e-6, 1e-9, 1e-12};
  const e2e::DelayProfile profile = Solver().solve_profile(scenario(), eps);
  ASSERT_EQ(profile.levels.size(), 4u);
  for (std::size_t i = 1; i < profile.levels.size(); ++i) {
    EXPECT_GT(profile.levels[i].delay_ms, profile.levels[i - 1].delay_ms);
  }
}

TEST(DelayCcdfBound, LogarithmicGrowthInOneOverEps) {
  // d(eps) ~ sigma(eps)/rate with sigma linear in ln(1/eps): halving the
  // exponent roughly halves the increment, never explodes.
  const std::vector<double> eps{1e-3, 1e-6, 1e-9};
  const e2e::DelayProfile profile = Solver().solve_profile(scenario(), eps);
  const double inc1 = profile.levels[1].delay_ms - profile.levels[0].delay_ms;
  const double inc2 = profile.levels[2].delay_ms - profile.levels[1].delay_ms;
  EXPECT_NEAR(inc2, inc1, 0.5 * inc1);
}

TEST(RenderReport, ContainsAllSections) {
  const std::string md = render_report(scenario());
  EXPECT_NE(md.find("# deltanc path analysis"), std::string::npos);
  EXPECT_NE(md.find("## Scenario"), std::string::npos);
  EXPECT_NE(md.find("## End-to-end delay bound"), std::string::npos);
  EXPECT_NE(md.find("## Scheduler comparison"), std::string::npos);
  EXPECT_NE(md.find("## Delay CCDF bound"), std::string::npos);
  EXPECT_NE(md.find("FIFO"), std::string::npos);
  // No simulation section without simulate_slots.
  EXPECT_EQ(md.find("Simulation cross-check"), std::string::npos);
}

TEST(RenderReport, IncludesSimulationWhenRequested) {
  ReportOptions options;
  options.simulate_slots = 20000;
  const std::string md = render_report(scenario(), options);
  EXPECT_NE(md.find("## Simulation cross-check"), std::string::npos);
  EXPECT_NE(md.find("bound dominates | yes"), std::string::npos);
}

TEST(RenderReport, UnstableScenarioIsCalledOut) {
  const e2e::Scenario overload = ScenarioBuilder()
                                     .hops(2)
                                     .through_flows(400)
                                     .cross_flows(400)
                                     .build();
  const std::string md = render_report(overload);
  EXPECT_NE(md.find("unstable"), std::string::npos);
}

}  // namespace
}  // namespace deltanc
