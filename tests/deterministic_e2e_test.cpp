#include "e2e/deterministic_e2e.h"

#include "nc/minplus_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sched/delta.h"
#include "sched/schedulability.h"

namespace deltanc::e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

DetPath path(int hops, double delta, double r0 = 10.0, double b0 = 20.0,
             double rc = 30.0, double bc = 40.0) {
  return DetPath{100.0, hops, nc::Curve::leaky_bucket(r0, b0),
                 nc::Curve::leaky_bucket(rc, bc), delta};
}

TEST(DetPathValidation, RejectsMalformedInput) {
  DetPath p = path(2, 0.0);
  p.capacity = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = path(0, 0.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = path(2, 0.0);
  p.through_envelope = nc::Curve::delta(1.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(DetE2e, BmuxClosedForm) {
  // BMUX leftover at each node: beta_{C-rc, Bc/(C-rc)}; the convolution
  // of H copies gives latency H*Bc/(C-rc), so
  // d = (B0 + H*Bc) / (C - rc) with theta = 0.
  for (int hops : {1, 2, 4, 7}) {
    const DetPath p = path(hops, kInf);
    const double expected = (20.0 + hops * 40.0) / (100.0 - 30.0);
    EXPECT_NEAR(det_e2e_delay(p, 0.0), expected, 1e-6) << "H = " << hops;
  }
}

TEST(DetE2e, SpHighFullLink) {
  // Delta = -inf: the cross traffic never precedes; the through flow sees
  // the full link at every node: d = B0 / C independent of H.
  for (int hops : {1, 3, 6}) {
    const DetPath p = path(hops, -kInf);
    EXPECT_NEAR(det_e2e_delay(p, 0.0), 20.0 / 100.0, 1e-6);
  }
}

TEST(DetE2e, SingleNodeMatchesSchedulabilityBound) {
  // H = 1 with the optimal theta must reproduce the tight Eq. (24) bound.
  const std::vector<nc::Curve> env{nc::Curve::leaky_bucket(10.0, 20.0),
                                   nc::Curve::leaky_bucket(30.0, 40.0)};
  for (double delta : {-5.0, 0.0, 3.0, kInf}) {
    const DetPath p = path(1, delta);
    const double back = std::isfinite(delta) ? -delta : -kInf;
    const sched::DeltaMatrix dm({{0.0, delta}, {back, 0.0}});
    const double tight = sched::min_delay_bound(100.0, dm, env, 0);
    const double e2e = det_e2e_best_delay(p);
    EXPECT_NEAR(e2e, tight, 1e-4 * tight) << "delta = " << delta;
  }
}

TEST(DetE2e, FifoBeatsBlindMultiplexingOnShortPaths) {
  const DetPath fifo = path(2, 0.0);
  const DetPath bmux = path(2, kInf);
  const double d_fifo = det_e2e_best_delay(fifo);
  const double d_bmux = det_e2e_best_delay(bmux);
  EXPECT_LT(d_fifo, d_bmux);
}

TEST(DetE2e, MonotoneInDelta) {
  double prev = 0.0;
  for (double delta : {-kInf, -3.0, 0.0, 3.0, kInf}) {
    const double d = det_e2e_best_delay(path(3, delta));
    EXPECT_GE(d, prev - 1e-6) << "delta = " << delta;
    prev = d;
  }
}

TEST(DetE2e, UnstableIsInfinite) {
  const DetPath p = path(2, 0.0, /*r0=*/40.0, /*b0=*/10.0, /*rc=*/70.0,
                         /*bc=*/10.0);
  EXPECT_EQ(det_e2e_best_delay(p), kInf);
}

TEST(DetE2e, DelayGrowsLinearlyInPathLength) {
  // Network-service-curve scaling: the deterministic bound grows linearly
  // in H (Bc/(C-rc) per node for BMUX), never quadratically.
  const double d2 = det_e2e_best_delay(path(2, kInf));
  const double d8 = det_e2e_best_delay(path(8, kInf));
  EXPECT_LT(d8, 4.5 * d2);
  EXPECT_GT(d8, 2.0 * d2);
}

TEST(DetE2e, GateParameterTradeoffForEdf) {
  // For a favoured through flow (Delta < 0), a positive theta shifts the
  // cross envelope further out and can beat theta = 0.
  const DetPath p = path(3, -2.0);
  const double at_zero = det_e2e_delay(p, 0.0);
  double best_theta = 0.0;
  const double best = det_e2e_best_delay(p, &best_theta);
  EXPECT_LE(best, at_zero + 1e-9);
  EXPECT_TRUE(std::isfinite(best));
}

TEST(DetE2e, NetworkCurveIsConvolutionOfPerNodeCurves) {
  const DetPath p = path(3, 0.0);
  const double theta = 0.7;
  const nc::Curve net = det_network_service_curve(p, theta);
  // Spot-check against a brute-force two-stage numeric convolution.
  const nc::Curve one = det_network_service_curve(path(1, 0.0), theta);
  const nc::Curve two = nc::minplus_conv(one, one);
  const nc::Curve three = nc::minplus_conv(two, one);
  for (double t : {0.5, 1.0, 2.5, 5.0, 9.0}) {
    EXPECT_NEAR(net.eval(t), three.eval(t), 1e-6) << "t = " << t;
  }
}

TEST(DetE2e, MultiSegmentEnvelopes) {
  // T-SPEC style dual-bucket envelopes work through the whole pipeline.
  const std::vector<std::pair<double, double>> through{{50.0, 0.0},
                                                       {10.0, 15.0}};
  const std::vector<std::pair<double, double>> cross{{80.0, 0.0},
                                                     {25.0, 60.0}};
  DetPath p{100.0, 3, nc::Curve::multi_leaky_bucket(through),
            nc::Curve::multi_leaky_bucket(cross), 0.0};
  const double d = det_e2e_best_delay(p);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
  // Dual-bucket envelopes are tighter than their leaky-bucket relaxation.
  DetPath loose{100.0, 3, nc::Curve::leaky_bucket(10.0, 15.0),
                nc::Curve::leaky_bucket(25.0, 60.0), 0.0};
  EXPECT_LE(d, det_e2e_best_delay(loose) + 1e-6);
}

}  // namespace
}  // namespace deltanc::e2e
