#include "traffic/tspec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace deltanc::traffic {
namespace {

TEST(TSpec, ConstructionValidates) {
  EXPECT_NO_THROW(TSpec(10.0, 1.5, 2.0, 12.0));
  EXPECT_THROW(TSpec(1.0, 1.5, 2.0, 12.0), std::invalid_argument);  // p < r
  EXPECT_THROW(TSpec(10.0, 15.0, 2.0, 12.0), std::invalid_argument);  // M > b
  EXPECT_THROW(TSpec(10.0, -1.0, 2.0, 12.0), std::invalid_argument);
}

TEST(TSpec, EnvelopeIsDualBucketMinimum) {
  const TSpec spec(10.0, 1.0, 2.0, 12.0);
  const nc::Curve e = spec.envelope();
  // Before the crossover the peak segment governs, after it the
  // sustained segment does.
  EXPECT_NEAR(e.eval(0.5), 1.0 + 10.0 * 0.5, 1e-12);
  EXPECT_NEAR(e.eval(5.0), 12.0 + 2.0 * 5.0, 1e-12);
  EXPECT_TRUE(e.is_concave());
}

TEST(TSpec, CrossoverTime) {
  const TSpec spec(10.0, 1.0, 2.0, 12.0);
  EXPECT_NEAR(spec.crossover_time(), (12.0 - 1.0) / 8.0, 1e-12);
  const TSpec cbr(5.0, 1.0, 5.0, 2.0);
  EXPECT_EQ(cbr.crossover_time(),
            std::numeric_limits<double>::infinity());
}

TEST(TSpec, AggregateScalesLinearly) {
  const TSpec spec(10.0, 1.0, 2.0, 12.0);
  const TSpec agg = spec.aggregate(5);
  EXPECT_DOUBLE_EQ(agg.peak_rate(), 50.0);
  EXPECT_DOUBLE_EQ(agg.burst_kb(), 60.0);
  EXPECT_THROW((void)spec.aggregate(0), std::invalid_argument);
}

TEST(TSpec, MaxBacklogAgainstServiceRate) {
  const TSpec spec(10.0, 1.0, 2.0, 12.0);
  // Backlog peaks at the envelope crossover for r < R < p:
  // E(t*) - R t* with t* = 11/8.
  const double t_star = spec.crossover_time();
  const double expected = (1.0 + 10.0 * t_star) - 5.0 * t_star;
  EXPECT_NEAR(spec.max_backlog_against(5.0), expected, 1e-9);
  EXPECT_THROW((void)spec.max_backlog_against(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::traffic
