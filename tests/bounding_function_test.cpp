#include "nc/bounding_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace deltanc::nc {
namespace {

TEST(ExpBound, ConstructionValidatesParameters) {
  EXPECT_NO_THROW(ExpBound(1.0, 0.5));
  EXPECT_THROW(ExpBound(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ExpBound(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ExpBound(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ExpBound(1.0, -2.0), std::invalid_argument);
  EXPECT_THROW(ExpBound(std::numeric_limits<double>::infinity(), 1.0),
               std::invalid_argument);
}

TEST(ExpBound, EvalSaturatesAtOne) {
  const ExpBound b(10.0, 2.0);
  EXPECT_DOUBLE_EQ(b.eval(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(b.eval(0.0), 1.0);  // M > 1 at sigma 0
  const double s = std::log(10.0) / 2.0;
  EXPECT_NEAR(b.eval(s), 1.0, 1e-12);
  EXPECT_NEAR(b.eval(s + 1.0), std::exp(-2.0), 1e-12);
}

TEST(ExpBound, EvalDecaysExponentially) {
  const ExpBound b(1.0, 0.7);
  EXPECT_NEAR(b.eval(1.0), std::exp(-0.7), 1e-15);
  EXPECT_NEAR(b.eval(3.0) / b.eval(2.0), std::exp(-0.7), 1e-12);
}

TEST(ExpBound, SigmaForInvertsEval) {
  const ExpBound b(4.0, 1.3);
  const double eps = 1e-9;
  const double sigma = b.sigma_for(eps);
  EXPECT_NEAR(b.eval(sigma), eps, 1e-15);
}

TEST(ExpBound, SigmaForClampsAtZero) {
  const ExpBound b(0.5, 1.0);
  // Already below epsilon at sigma = 0.
  EXPECT_DOUBLE_EQ(b.sigma_for(0.9), 0.0);
}

TEST(ExpBound, SigmaForRejectsNonPositiveEpsilon) {
  const ExpBound b(1.0, 1.0);
  EXPECT_THROW((void)b.sigma_for(0.0), std::invalid_argument);
  EXPECT_THROW((void)b.sigma_for(-1.0), std::invalid_argument);
}

TEST(ExpBound, ScaledMultipliesPrefactor) {
  const ExpBound b(2.0, 1.0);
  const ExpBound s = b.scaled(3.0);
  EXPECT_DOUBLE_EQ(s.prefactor(), 6.0);
  EXPECT_DOUBLE_EQ(s.decay(), 1.0);
}

TEST(GeometricTail, MatchesNumericSeries) {
  const ExpBound b(2.0, 0.9);
  const double gamma = 0.4;
  const ExpBound tail = geometric_tail(b, gamma);
  const double sigma = 3.0;
  double series = 0.0;
  for (int j = 0; j < 4000; ++j) {
    series += b.prefactor() * std::exp(-b.decay() * (sigma + j * gamma));
  }
  EXPECT_NEAR(tail.prefactor() * std::exp(-tail.decay() * sigma), series,
              1e-10);
}

TEST(GeometricTail, RejectsNonPositiveGamma) {
  const ExpBound b(1.0, 1.0);
  EXPECT_THROW((void)geometric_tail(b, 0.0), std::invalid_argument);
  EXPECT_THROW((void)geometric_tail(b, -0.1), std::invalid_argument);
}

TEST(InfConvolution, SingleTermIsIdentity) {
  const ExpBound b(3.0, 0.8);
  const ExpBound r = inf_convolution(std::span<const ExpBound>(&b, 1));
  EXPECT_DOUBLE_EQ(r.prefactor(), 3.0);
  EXPECT_DOUBLE_EQ(r.decay(), 0.8);
}

TEST(InfConvolution, EmptyThrows) {
  EXPECT_THROW((void)inf_convolution(std::span<const ExpBound>()),
               std::invalid_argument);
}

TEST(InfConvolution, EqualDecayTwoTerms) {
  // For M1 = M2 = M and alpha1 = alpha2 = a: w = 2/a, and the closed form
  // gives 2 M e^{-a sigma / 2}.
  const ExpBound b(1.5, 1.0);
  const ExpBound r = inf_convolution(b, b);
  EXPECT_NEAR(r.prefactor(), 2.0 * 1.5, 1e-12);
  EXPECT_NEAR(r.decay(), 0.5, 1e-12);
}

TEST(InfConvolution, PaperEq34NetworkFormula) {
  // eps_net over H nodes: one term M/(1-q) and (H-1) terms M/(1-q)^2,
  // all with decay alpha, must combine to
  //   M * H * (1-q)^{-(2H-1)/H} * exp(-alpha sigma / H).
  const double m = 1.0, alpha = 0.37, gamma = 0.21;
  const double q = std::exp(-alpha * gamma);
  for (int h = 1; h <= 12; ++h) {
    std::vector<ExpBound> terms;
    terms.emplace_back(m / (1.0 - q), alpha);  // last node, single union term
    for (int i = 0; i < h - 1; ++i) {
      terms.emplace_back(m / ((1.0 - q) * (1.0 - q)), alpha);
    }
    const ExpBound net = inf_convolution(terms);
    const double expected_m =
        m * h * std::pow(1.0 - q, -(2.0 * h - 1.0) / h);
    EXPECT_NEAR(net.prefactor(), expected_m, 1e-9 * expected_m)
        << "H = " << h;
    EXPECT_NEAR(net.decay(), alpha / h, 1e-12) << "H = " << h;
  }
}

TEST(InfConvolution, PaperEq34DelayFormula) {
  // Adding the arrival-envelope term M/(1-q) with decay alpha to eps_net
  // must give M (H+1) (1-q)^{-2H/(H+1)} exp(-alpha sigma/(H+1)).
  const double m = 1.0, alpha = 0.5, gamma = 0.3;
  const double q = std::exp(-alpha * gamma);
  for (int h = 1; h <= 10; ++h) {
    const ExpBound eps_net(m * h * std::pow(1.0 - q, -(2.0 * h - 1.0) / h),
                           alpha / h);
    const ExpBound eps_g(m / (1.0 - q), alpha);
    const ExpBound total = inf_convolution(eps_g, eps_net);
    const double expected_m =
        m * (h + 1) * std::pow(1.0 - q, -2.0 * h / (h + 1.0));
    EXPECT_NEAR(total.prefactor(), expected_m, 1e-9 * expected_m);
    EXPECT_NEAR(total.decay(), alpha / (h + 1.0), 1e-12);
  }
}

// ---------------------------------------------------------------------
// Property sweep: the closed form of Eq. (33) must agree with numeric
// constrained minimization whenever the unconstrained optimum is feasible
// (all sigma_j >= 0), and must lower-bound it otherwise.
// ---------------------------------------------------------------------

class InfConvolutionProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(InfConvolutionProperty, ClosedFormMatchesNumericOptimum) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> m_dist(0.5, 20.0);
  std::uniform_real_distribution<double> a_dist(0.2, 3.0);
  std::uniform_int_distribution<int> n_dist(2, 6);

  const int n = n_dist(rng);
  std::vector<ExpBound> terms;
  terms.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    terms.emplace_back(m_dist(rng), a_dist(rng));
  }
  const ExpBound closed = inf_convolution(terms);

  for (double sigma : {5.0, 15.0, 40.0}) {
    const double closed_value =
        closed.prefactor() * std::exp(-closed.decay() * sigma);
    const double numeric = constrained_split_minimum(terms, sigma);
    // The closed form allows negative splits, so it can only be smaller.
    EXPECT_LE(closed_value, numeric * (1.0 + 1e-9)) << "sigma = " << sigma;
    // For sigma large enough the KKT optimum is interior and they agree.
    if (sigma >= 15.0) {
      EXPECT_NEAR(closed_value, numeric, 1e-6 * numeric)
          << "sigma = " << sigma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InfConvolutionProperty,
                         ::testing::Range<std::uint32_t>(1, 25));

TEST(ConstrainedSplitMinimum, NonPositiveSigmaReturnsSumOfPrefactors) {
  const std::vector<ExpBound> terms{ExpBound(2.0, 1.0), ExpBound(3.0, 0.5)};
  EXPECT_DOUBLE_EQ(constrained_split_minimum(terms, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(constrained_split_minimum(terms, -1.0), 5.0);
}

TEST(ConstrainedSplitMinimum, BeatsAnyManualSplit) {
  const std::vector<ExpBound> terms{ExpBound(1.0, 1.0), ExpBound(5.0, 0.3)};
  const double sigma = 10.0;
  const double opt = constrained_split_minimum(terms, sigma);
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double manual = terms[0].prefactor() *
                              std::exp(-terms[0].decay() * f * sigma) +
                          terms[1].prefactor() *
                              std::exp(-terms[1].decay() * (1.0 - f) * sigma);
    EXPECT_LE(opt, manual * (1.0 + 1e-9)) << "split fraction " << f;
  }
}

}  // namespace
}  // namespace deltanc::nc
