#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace deltanc::diag {
namespace {

TEST(Diagnostics, DefaultIsClean) {
  const Diagnostics d;
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.clean());
  EXPECT_EQ(d.error, SolveErrorKind::kNone);
}

TEST(Diagnostics, FailAndWarnClassify) {
  Diagnostics d;
  d.warn(SolveErrorKind::kNoConvergence, "fixed point stalled");
  EXPECT_TRUE(d.ok());       // warnings keep the result usable
  EXPECT_FALSE(d.clean());
  d.fail(SolveErrorKind::kUnstable, "load >= capacity");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.error, SolveErrorKind::kUnstable);
  EXPECT_EQ(d.message, "load >= capacity");
  ASSERT_EQ(d.warnings.size(), 1u);
  EXPECT_EQ(d.warnings[0].kind, SolveErrorKind::kNoConvergence);
}

TEST(Diagnostics, ErrorNamesAreStable) {
  EXPECT_STREQ(solve_error_name(SolveErrorKind::kNone), "none");
  EXPECT_STREQ(solve_error_name(SolveErrorKind::kInvalidScenario),
               "invalid-scenario");
  EXPECT_STREQ(solve_error_name(SolveErrorKind::kUnstable), "unstable");
  EXPECT_STREQ(solve_error_name(SolveErrorKind::kNoConvergence),
               "no-convergence");
  EXPECT_STREQ(solve_error_name(SolveErrorKind::kNumericalDomain),
               "numerical-domain");
}

TEST(ValidationReport, CollectsMultipleViolations) {
  ValidationReport report;
  report.add(SolveErrorKind::kInvalidScenario, "capacity", "must be > 0");
  report.add(SolveErrorKind::kInvalidScenario, "epsilon",
             "must lie in (0, 1)");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 2u);
  ASSERT_EQ(report.violations().size(), 2u);
  EXPECT_EQ(report.message(),
            "capacity: must be > 0; epsilon: must lie in (0, 1)");
  try {
    report.throw_if_invalid("test");
    FAIL() << "throw_if_invalid did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "test: capacity: must be > 0; epsilon: must lie in (0, 1)");
  }
}

TEST(ValidationReport, UnstableDoesNotInvalidate) {
  // kUnstable marks a well-formed but overloaded scenario: the report
  // stays ok() (solvable) and throw_if_invalid is a no-op.
  ValidationReport report;
  report.add(SolveErrorKind::kUnstable, "utilization", "offered load 120%");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.stable());
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_NO_THROW(report.throw_if_invalid("test"));
}

TEST(ErrorCounts, TalliesPerKindAndMerges) {
  Diagnostics unstable;
  unstable.fail(SolveErrorKind::kUnstable, "overload");
  Diagnostics warned;
  warned.warn(SolveErrorKind::kNoConvergence, "stalled");
  warned.warn(SolveErrorKind::kNoConvergence, "stalled again");

  ErrorCounts counts;
  counts.record(unstable);
  counts.record(unstable);
  counts.record(warned);
  counts.record(Diagnostics{});  // clean: contributes nothing
  counts.record_error(SolveErrorKind::kInvalidScenario);
  counts.record_error(SolveErrorKind::kNone);  // ignored

  EXPECT_EQ(counts.errors[static_cast<std::size_t>(SolveErrorKind::kUnstable)],
            2u);
  EXPECT_EQ(counts.errors[static_cast<std::size_t>(
                SolveErrorKind::kInvalidScenario)],
            1u);
  EXPECT_EQ(counts.warnings[static_cast<std::size_t>(
                SolveErrorKind::kNoConvergence)],
            2u);
  EXPECT_EQ(counts.total_errors(), 3u);
  EXPECT_EQ(counts.total_warnings(), 2u);
  EXPECT_EQ(counts.summary(),
            "invalid-scenario=1 unstable=2 no-convergence(warn)=2");

  ErrorCounts other;
  other.record_error(SolveErrorKind::kNumericalDomain);
  counts += other;
  EXPECT_EQ(counts.total_errors(), 4u);
}

TEST(ErrorCounts, CleanSummaryIsEmpty) {
  EXPECT_EQ(ErrorCounts{}.summary(), "");
  EXPECT_EQ(ErrorCounts{}.total_errors(), 0u);
  EXPECT_EQ(ErrorCounts{}.total_warnings(), 0u);
}

}  // namespace
}  // namespace deltanc::diag
