#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "traffic/ebb.h"
#include "traffic/mmoo.h"

namespace deltanc::traffic {
namespace {

TEST(EbbTraffic, ConstructionValidates) {
  EXPECT_NO_THROW(EbbTraffic(1.0, 0.5, 2.0));
  EXPECT_THROW(EbbTraffic(0.5, 0.5, 2.0), std::invalid_argument);  // M < 1
  EXPECT_THROW(EbbTraffic(1.0, -0.1, 2.0), std::invalid_argument);
  EXPECT_THROW(EbbTraffic(1.0, 0.5, 0.0), std::invalid_argument);
}

TEST(EbbTraffic, IntervalTailIsChernoffBound) {
  const EbbTraffic a(2.0, 1.0, 0.5);
  EXPECT_NEAR(a.interval_tail(10.0), 2.0 * std::exp(-5.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.interval_tail(-1.0), 1.0);  // probabilities cap at 1
}

TEST(EbbTraffic, SamplePathEnvelopeUnionBound) {
  const EbbTraffic a(1.0, 2.0, 0.7);
  const double gamma = 0.3;
  const StatEnvelope env = a.sample_path_envelope(gamma);
  EXPECT_DOUBLE_EQ(env.g.eval(10.0), (2.0 + gamma) * 10.0);
  const double q = std::exp(-0.7 * gamma);
  EXPECT_NEAR(env.eps.prefactor(), 1.0 / (1.0 - q), 1e-12);
  EXPECT_DOUBLE_EQ(env.eps.decay(), 0.7);
  EXPECT_THROW((void)a.sample_path_envelope(0.0), std::invalid_argument);
}

TEST(EbbTraffic, AggregationAddsRatesMultipliesPrefactors) {
  const EbbTraffic a(2.0, 1.0, 0.5);
  const EbbTraffic b(3.0, 2.5, 0.5);
  const EbbTraffic s = a.aggregate_with(b);
  EXPECT_DOUBLE_EQ(s.m(), 6.0);
  EXPECT_DOUBLE_EQ(s.rho(), 3.5);
  EXPECT_DOUBLE_EQ(s.alpha(), 0.5);
  EXPECT_THROW((void)a.aggregate_with(EbbTraffic(1.0, 1.0, 0.9)),
               std::invalid_argument);
}

TEST(EbbTraffic, DeterministicEnvelopeIsLeakyBucketLimit) {
  // M = e^{B alpha} corresponds to burst B.
  const double burst = 4.0, alpha = 2.0, rho = 1.5;
  const EbbTraffic a(std::exp(burst * alpha), rho, alpha);
  const nc::Curve e = a.deterministic_envelope();
  EXPECT_NEAR(e.eval(0.0), burst, 1e-12);
  EXPECT_NEAR(e.eval(3.0), burst + rho * 3.0, 1e-12);
}

TEST(MmooSource, ConstructionValidates) {
  EXPECT_NO_THROW(MmooSource(1.5, 0.989, 0.9));
  EXPECT_THROW(MmooSource(0.0, 0.9, 0.9), std::invalid_argument);
  EXPECT_THROW(MmooSource(1.0, 0.0, 0.9), std::invalid_argument);
  EXPECT_THROW(MmooSource(1.0, 1.0, 0.9), std::invalid_argument);
  // p12 + p21 = 0.6 + 0.6 > 1 violates the paper's assumption.
  EXPECT_THROW(MmooSource(1.0, 0.4, 0.4), std::invalid_argument);
}

TEST(MmooSource, PaperSourceRates) {
  const MmooSource src = MmooSource::paper_source();
  EXPECT_DOUBLE_EQ(src.peak_rate(), 1.5);
  // "peak rate of 1.5 Mbps and an average rate of 0.15 Mbps" (Sec. V).
  EXPECT_NEAR(src.mean_rate(), 0.15, 0.002);
  EXPECT_NEAR(src.stationary_on(), 0.011 / 0.111, 1e-12);
}

TEST(MmooSource, EffectiveBandwidthLimits) {
  const MmooSource src = MmooSource::paper_source();
  // s -> 0: mean rate; s -> infinity: peak rate.
  EXPECT_NEAR(src.effective_bandwidth(1e-7), src.mean_rate(), 1e-3);
  EXPECT_NEAR(src.effective_bandwidth(200.0), src.peak_rate(), 1e-2);
  EXPECT_THROW((void)src.effective_bandwidth(0.0), std::invalid_argument);
}

TEST(MmooSource, EffectiveBandwidthMonotoneAndBounded) {
  const MmooSource src = MmooSource::paper_source();
  double prev = 0.0;
  for (double s = 0.01; s <= 64.0; s *= 2.0) {
    const double eb = src.effective_bandwidth(s);
    EXPECT_GE(eb, prev - 1e-12) << "s = " << s;
    EXPECT_GE(eb, src.mean_rate() - 1e-9);
    EXPECT_LE(eb, src.peak_rate() + 1e-9);
    prev = eb;
  }
}

TEST(MmooSource, EffectiveBandwidthStableForLargeS) {
  const MmooSource src = MmooSource::paper_source();
  // The large-s branch must join the direct branch continuously.
  const double below = src.effective_bandwidth(29.9 / 1.5);
  const double above = src.effective_bandwidth(30.1 / 1.5);
  EXPECT_NEAR(below, above, 1e-3);
  EXPECT_TRUE(std::isfinite(src.effective_bandwidth(1e4)));
}

TEST(MmooSource, EffectiveBandwidthMatchesMonteCarloMgf) {
  // Verify the spectral-radius bound: (1/(s t)) log E[e^{s A(t)}] <= eb(s)
  // estimated over many sampled trajectories of the chain.
  const MmooSource src(1.0, 0.8, 0.7);
  const double s = 0.9;
  const int t_len = 60;
  const int trials = 20000;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  double sum_exp = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    bool on = unif(rng) < src.stationary_on();
    double a = 0.0;
    for (int step = 0; step < t_len; ++step) {
      if (on) a += src.peak_kb();
      on = on ? (unif(rng) < src.p22()) : (unif(rng) < src.p12());
    }
    sum_exp += std::exp(s * a);
  }
  const double empirical_eb =
      std::log(sum_exp / trials) / (s * t_len);
  EXPECT_LE(empirical_eb, src.effective_bandwidth(s) + 0.02);
}

TEST(MmooSource, AggregateEbbScalesRate) {
  const MmooSource src = MmooSource::paper_source();
  const double s = 1.3;
  const EbbTraffic agg = src.aggregate_ebb(100, s);
  EXPECT_DOUBLE_EQ(agg.m(), 1.0);
  EXPECT_DOUBLE_EQ(agg.alpha(), s);
  EXPECT_NEAR(agg.rho(), 100.0 * src.effective_bandwidth(s), 1e-12);
  EXPECT_THROW((void)src.aggregate_ebb(0, s), std::invalid_argument);
}

TEST(MmooSource, UtilizationMapping) {
  // Section V: U = (N0 + Nc) * 0.15 / 100 -- N = 100 flows is ~15% of a
  // 100 Mbps link.
  const MmooSource src = MmooSource::paper_source();
  const double u = 100.0 * src.mean_rate() / 100.0;
  EXPECT_NEAR(u, 0.15, 0.002);
}

}  // namespace
}  // namespace deltanc::traffic
