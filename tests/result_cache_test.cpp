// The persistent result cache: content addressing, hit/miss/stale/
// corrupt classification, atomic stores, and recovery by overwrite.
#include "e2e/solver.h"
#include "io/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "deltanc/version.h"

namespace deltanc::io {
namespace {

e2e::Scenario small_scenario(int n_cross = 50) {
  e2e::Scenario sc;
  sc.hops = 3;
  sc.n_through = 80;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched::SchedulerKind::kFifo;
  return sc;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

class ResultCacheTest : public ::testing::Test {
 protected:
  std::filesystem::path cache_dir() const {
    return std::filesystem::path(::testing::TempDir()) /
           ("deltanc_cache_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
  }

  void SetUp() override { std::filesystem::remove_all(cache_dir()); }
  void TearDown() override { std::filesystem::remove_all(cache_dir()); }
};

TEST_F(ResultCacheTest, Fnv1a64MatchesKnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST_F(ResultCacheTest, MissThenStoreThenBitExactHit) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::string key = solve_cache_key(sc, SolveOptions{});

  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kMiss);

  const e2e::BoundResult solved = deltanc::Solver().solve(sc);
  cache.store(key, solved);
  ASSERT_EQ(cache.lookup(key, out), CacheLookup::kHit);
  EXPECT_EQ(out.delay_ms, solved.delay_ms);
  EXPECT_EQ(out.gamma, solved.gamma);
  EXPECT_EQ(out.s, solved.s);
  EXPECT_EQ(out.sigma, solved.sigma);
  EXPECT_EQ(out.delta, solved.delta);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().stores, 1);

  // A second ResultCache over the same directory sees the entry too.
  ResultCache reopened(cache_dir());
  EXPECT_EQ(reopened.lookup(key, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, VersionDriftClassifiesAsStaleAndIsOverwritten) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::string key = solve_cache_key(sc, SolveOptions{});
  cache.store(key, deltanc::Solver().solve(sc));

  // Doctor the stored entry to look like an older library release.
  const std::filesystem::path path = cache.entry_path(key);
  std::string text = read_file(path);
  const std::string current = std::string("\"") + DELTANC_VERSION_STRING + "\"";
  const std::size_t at = text.find(current);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, current.size(), "\"0.0.1\"");
  write_file(path, text);

  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kStale);
  EXPECT_EQ(cache.stats().stale, 1);

  // solve_through re-solves, tags the result stale, and overwrites the
  // entry so the next lookup hits again.
  CacheLookup outcome{};
  const e2e::BoundResult solved = cache.solve_through(
      sc, SolveOptions{}, [&] { return deltanc::Solver().solve(sc); },
      &outcome);
  EXPECT_EQ(outcome, CacheLookup::kStale);
  EXPECT_EQ(solved.stats.cache_stale, 1);
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, SchemaDriftIsStaleToo) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::string key = solve_cache_key(sc, SolveOptions{});
  cache.store(key, deltanc::Solver().solve(sc));

  // The schema version lives in the entry, not in the hashed key, so a
  // schema bump is observable as staleness instead of a silent miss.
  EXPECT_EQ(key.find("\"schema\""), std::string::npos);
  std::string text = read_file(cache.entry_path(key));
  const std::string current =
      "{\"schema\":" + std::to_string(kSchemaVersion) + ",";
  ASSERT_EQ(text.rfind(current, 0), 0u);
  text.replace(0, current.size(), "{\"schema\":0,");
  write_file(cache.entry_path(key), text);

  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kStale);
}

TEST_F(ResultCacheTest, PreRefactorEntryClassifiesStaleNeverWrongHit) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const SolveOptions options{};

  // Schema-1 keys hashed the schema and spelled the scheduler as a bare
  // name, so the same solve lived in a different slot.  Fabricate such
  // an entry the way a pre-refactor build would have left it.
  const std::optional<std::string> legacy =
      legacy_v1_solve_cache_key(sc, options);
  ASSERT_TRUE(legacy.has_value());
  const std::string key = solve_cache_key(sc, options);
  ASSERT_NE(*legacy, key);
  write_file(cache.entry_path(*legacy),
             "{\"schema\":1,\"version\":\"1.0.0\",\"key\":\"x\","
             "\"result\":{}}\n");

  // The scenario-level lookup reports it stale -- and never serves bits
  // from it.
  e2e::BoundResult out;
  out.delay_ms = -1.0;
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kStale);
  EXPECT_EQ(out.delay_ms, -1.0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().stale, 1);

  // solve_through re-solves, tags the answer stale, and stores it under
  // the *current* key, so the next lookup is a plain hit.
  CacheLookup outcome{};
  const e2e::BoundResult solved = cache.solve_through(
      sc, options, [&] { return deltanc::Solver().solve(sc); }, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kStale);
  EXPECT_EQ(solved.stats.cache_stale, 1);
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kHit);
  EXPECT_EQ(out.delay_ms, solved.delay_ms);
}

TEST_F(ResultCacheTest, SchemaTwoEntryClassifiesStaleNeverWrongHit) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const SolveOptions options{};

  // Schema-2 scheduler objects carried no "params" array, so the same
  // solve hashed to a different slot.  Fabricate the entry a schema-2
  // build would have written there.
  const std::optional<std::string> legacy =
      legacy_v2_solve_cache_key(sc, options);
  ASSERT_TRUE(legacy.has_value());
  const std::string key = solve_cache_key(sc, options);
  ASSERT_NE(*legacy, key);
  // The v2 key is the v3 key minus the scheduler "params" field.
  EXPECT_EQ(legacy->find("\"params\""), std::string::npos);
  EXPECT_NE(key.find("\"params\""), std::string::npos);
  write_file(cache.entry_path(*legacy),
             "{\"schema\":2,\"version\":\"1.0.0\",\"key\":\"x\","
             "\"result\":{}}\n");

  e2e::BoundResult out;
  out.delay_ms = -1.0;
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kStale);
  EXPECT_EQ(out.delay_ms, -1.0);  // never serves bits from the old slot

  // Re-solve lands under the current key; the old slot stops mattering.
  CacheLookup outcome{};
  (void)cache.solve_through(sc, options,
                            [&] { return deltanc::Solver().solve(sc); },
                            &outcome);
  EXPECT_EQ(outcome, CacheLookup::kStale);
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, CurveBackedSchedulersHaveNoLegacySlots) {
  // gps/drr/sced did not exist before schema 3: both legacy key probes
  // must decline rather than fabricate a key that could alias another
  // solve's slot.
  e2e::Scenario sc = small_scenario();
  sc.scheduler = sched::SchedulerSpec::gps(2.0, 1.0);
  EXPECT_FALSE(legacy_v1_solve_cache_key(sc, SolveOptions{}).has_value());
  EXPECT_FALSE(legacy_v2_solve_cache_key(sc, SolveOptions{}).has_value());

  // And the curve-backed solve (NaN delta on the wire) round-trips
  // through store + hit like any other result.
  ResultCache cache(cache_dir());
  const std::string key = solve_cache_key(sc, SolveOptions{});
  const e2e::BoundResult solved = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isnan(solved.delta));
  cache.store(key, solved);
  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(sc, SolveOptions{}, out), CacheLookup::kHit);
  EXPECT_EQ(out.delay_ms, solved.delay_ms);
  EXPECT_TRUE(std::isnan(out.delta));
}

TEST_F(ResultCacheTest, SchemaFourEntryClassifiesStaleNeverWrongHit) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const SolveOptions options{};

  // Schema-4 keys carried no "kind" discriminator, so the same solve
  // hashed to a different slot.  Fabricate the entry a schema-4 build
  // would have written there.
  const std::optional<std::string> legacy =
      legacy_v4_solve_cache_key(sc, options);
  ASSERT_TRUE(legacy.has_value());
  const std::string key = solve_cache_key(sc, options);
  ASSERT_NE(*legacy, key);
  // The discriminator leads the v5 key; the v4 spelling starts straight
  // at the scenario.  (The scheduler object nests its own "kind" field,
  // so only the leading member distinguishes the two.)
  EXPECT_EQ(key.rfind("{\"kind\":\"solve\",", 0), 0u);
  EXPECT_EQ(legacy->rfind("{\"scenario\":", 0), 0u);
  write_file(cache.entry_path(*legacy),
             "{\"schema\":4,\"version\":\"1.0.0\",\"key\":\"x\","
             "\"result\":{}}\n");

  e2e::BoundResult out;
  out.delay_ms = -1.0;
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kStale);
  EXPECT_EQ(out.delay_ms, -1.0);  // never serves bits from the old slot
  EXPECT_EQ(cache.stats().hits, 0);

  // Re-solve lands under the current (kind-tagged) key.
  CacheLookup outcome{};
  (void)cache.solve_through(sc, options,
                            [&] { return deltanc::Solver().solve(sc); },
                            &outcome);
  EXPECT_EQ(outcome, CacheLookup::kStale);
  EXPECT_EQ(cache.lookup(sc, options, out), CacheLookup::kHit);
}

// ----- delay-profile entries ---------------------------------------------

TEST_F(ResultCacheTest, ProfileMissStoreThenBitExactHit) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::vector<double> grid = {1e-3, 1e-6, 1e-9};
  const SolveOptions options{};

  e2e::DelayProfile out;
  EXPECT_EQ(cache.lookup_profile(sc, grid, options, out), CacheLookup::kMiss);

  const e2e::DelayProfile solved =
      deltanc::Solver().solve_profile(sc, grid);
  cache.store_profile(profile_cache_key(sc, grid, options), solved);
  ASSERT_EQ(cache.lookup_profile(sc, grid, options, out), CacheLookup::kHit);
  ASSERT_EQ(out.levels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.epsilons[i], solved.epsilons[i]);
    EXPECT_EQ(out.levels[i].delay_ms, solved.levels[i].delay_ms);
    EXPECT_EQ(out.levels[i].s, solved.levels[i].s);
    EXPECT_EQ(out.levels[i].sigma, solved.levels[i].sigma);
  }

  // Disjoint keyspaces: the profile entry is invisible to the scalar
  // lookup of the same scenario, and vice versa.
  e2e::BoundResult scalar;
  EXPECT_EQ(cache.lookup(sc, options, scalar), CacheLookup::kMiss);

  ResultCache reopened(cache_dir());
  EXPECT_EQ(reopened.lookup_profile(sc, grid, options, out),
            CacheLookup::kHit);
}

TEST_F(ResultCacheTest, ProfileEntriesClassifyStaleAndCorrupt) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::vector<double> grid = {1e-4, 1e-8};
  const SolveOptions options{};
  const std::string key = profile_cache_key(sc, grid, options);
  cache.store_profile(key, deltanc::Solver().solve_profile(sc, grid));

  // Version drift -> stale, no bits served.
  std::string text = read_file(cache.entry_path(key));
  const std::string current = std::string("\"") + DELTANC_VERSION_STRING + "\"";
  const std::size_t at = text.find(current);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, current.size(), "\"0.0.1\"");
  write_file(cache.entry_path(key), text);
  e2e::DelayProfile out;
  EXPECT_EQ(cache.lookup_profile(key, out), CacheLookup::kStale);

  // Unreadable bytes -> corrupt; solve_profile_through recovers by
  // overwrite and counts the episode as a miss.
  write_file(cache.entry_path(key), "{\"schema\": truncated garba");
  EXPECT_EQ(cache.lookup_profile(key, out), CacheLookup::kCorrupt);
  CacheLookup outcome{};
  const e2e::DelayProfile solved = cache.solve_profile_through(
      sc, grid, options,
      [&] { return deltanc::Solver().solve_profile(sc, grid); }, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kCorrupt);
  EXPECT_EQ(solved.stats.cache_misses, 1);
  EXPECT_EQ(solved.stats.cache_hits, 0);
  EXPECT_EQ(cache.lookup_profile(key, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, SolveProfileThroughCountsExactlyOneOutcome) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::vector<double> grid = {1e-3, 1e-6};
  const SolveOptions options{};
  const auto solve = [&] { return deltanc::Solver().solve_profile(sc, grid); };

  CacheLookup outcome{};
  const e2e::DelayProfile first =
      cache.solve_profile_through(sc, grid, options, solve, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kMiss);
  EXPECT_EQ(first.stats.cache_misses, 1);
  EXPECT_EQ(first.stats.cache_hits + first.stats.cache_stale, 0);

  const e2e::DelayProfile second =
      cache.solve_profile_through(sc, grid, options, solve, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kHit);
  EXPECT_EQ(second.stats.cache_hits, 1);
  EXPECT_EQ(second.stats.cache_misses + second.stats.cache_stale, 0);
  ASSERT_EQ(second.levels.size(), first.levels.size());
  for (std::size_t i = 0; i < first.levels.size(); ++i) {
    EXPECT_EQ(second.levels[i].delay_ms, first.levels[i].delay_ms);
  }
}

TEST_F(ResultCacheTest, TryStoreProfileSurvivesInjectedFailures) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::vector<double> grid = {1e-3, 1e-9};
  const std::string key = profile_cache_key(sc, grid, SolveOptions{});
  const e2e::DelayProfile solved = deltanc::Solver().solve_profile(sc, grid);

  cache.fail_next_stores(1);
  EXPECT_FALSE(cache.try_store_profile(key, solved));
  EXPECT_EQ(cache.stats().store_failures, 1);
  e2e::DelayProfile out;
  EXPECT_EQ(cache.lookup_profile(key, out), CacheLookup::kMiss);

  EXPECT_TRUE(cache.try_store_profile(key, solved));
  EXPECT_EQ(cache.lookup_profile(key, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, SimulationLoweringsDoNotPerturbSolverKeys) {
  // The DRR/SCED simulation lowerings added sim-side config fields only;
  // the solver cache key is a function of the *scenario*, so those
  // lowerings did not bump the schema.  Solver-side fields do: the
  // warm-start policy in SolveOptions took the schema from 3 to 4, and
  // the "kind"-discriminated cache keys plus delay-profile documents
  // took it from 4 to 5, each with a byte-exact legacy probe
  // (legacy_v3 / legacy_v4) for stale-schema hits (see io/codec.h).
  static_assert(kSchemaVersion == 5,
                "sim-side config fields must not bump the cache schema; "
                "the schema-5 bump came from the kind-tagged keys and "
                "delay-profile documents");
  ResultCache cache(cache_dir());
  for (const sched::SchedulerSpec& spec :
       {sched::SchedulerSpec::drr(2.0, 1.0), sched::SchedulerSpec::sced(),
        sched::SchedulerSpec::gps(2.0, 1.0)}) {
    e2e::Scenario sc = small_scenario();
    sc.scheduler = spec;
    const std::string key = solve_cache_key(sc, SolveOptions{});
    cache.store(key, deltanc::Solver().solve(sc));
    e2e::BoundResult out;
    EXPECT_EQ(cache.lookup(sc, SolveOptions{}, out), CacheLookup::kHit)
        << sched::to_string(spec);
    // The key must also be reproducible from an identical scenario
    // value (content addressing, not object identity).
    e2e::Scenario again = small_scenario();
    again.scheduler = spec;
    EXPECT_EQ(solve_cache_key(again, SolveOptions{}), key)
        << sched::to_string(spec);
  }
  EXPECT_EQ(cache.stats().hits, 3);
  EXPECT_EQ(cache.stats().stale, 0);
}

TEST_F(ResultCacheTest, CorruptEntryIsDetectedAndRecoverable) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::string key = solve_cache_key(sc, SolveOptions{});
  cache.store(key, deltanc::Solver().solve(sc));

  write_file(cache.entry_path(key), "{\"schema\":2, truncated garba");
  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kCorrupt);
  EXPECT_EQ(cache.stats().corrupt, 1);

  // Well-formed JSON of the current schema that is not a valid entry is
  // corrupt as well (an *older* schema would be stale instead).
  write_file(cache.entry_path(key),
             "{\"schema\":" + std::to_string(kSchemaVersion) +
                 ",\"version\":3}");
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kCorrupt);

  // Recovery: solve_through overwrites the damaged entry.
  CacheLookup outcome{};
  (void)cache.solve_through(sc, SolveOptions{},
                            [&] { return deltanc::Solver().solve(sc); },
                            &outcome);
  EXPECT_EQ(outcome, CacheLookup::kCorrupt);
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, HashCollisionDegradesToMissNotWrongAnswer) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  const std::string key = solve_cache_key(sc, SolveOptions{});
  cache.store(key, deltanc::Solver().solve(sc));

  // Simulate a colliding key by doctoring the stored key string (it is
  // embedded JSON, so its quotes appear escaped): the file is present
  // and decodable, but it belongs to someone else.
  std::string text = read_file(cache.entry_path(key));
  const std::string mine = R"(\"n_cross\":50)";
  const std::size_t at = text.find(mine);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, mine.size(), R"(\"n_cross\":51)");
  write_file(cache.entry_path(key), text);

  e2e::BoundResult out;
  EXPECT_EQ(cache.lookup(key, out), CacheLookup::kMiss);
}

TEST_F(ResultCacheTest, SolveThroughCountsOneOutcomePerResult) {
  ResultCache cache(cache_dir());
  const e2e::Scenario sc = small_scenario();
  int solves = 0;
  const auto solve = [&] {
    ++solves;
    return deltanc::Solver().solve(sc);
  };
  const e2e::BoundResult first =
      cache.solve_through(sc, SolveOptions{}, solve);
  EXPECT_EQ(first.stats.cache_misses, 1);
  EXPECT_EQ(first.stats.cache_hits, 0);
  const e2e::BoundResult second =
      cache.solve_through(sc, SolveOptions{}, solve);
  EXPECT_EQ(second.stats.cache_hits, 1);
  EXPECT_EQ(second.stats.cache_misses, 0);
  EXPECT_EQ(second.delay_ms, first.delay_ms);
  EXPECT_EQ(solves, 1);  // the hit never invoked the solver
}

TEST_F(ResultCacheTest, DirectoryFromEnvPrefersTheVariable) {
  ASSERT_EQ(::setenv("DELTANC_CACHE_DIR", "/tmp/deltanc-env-cache", 1), 0);
  EXPECT_EQ(ResultCache::directory_from_env("/fallback"),
            std::filesystem::path("/tmp/deltanc-env-cache"));
  ASSERT_EQ(::setenv("DELTANC_CACHE_DIR", "", 1), 0);
  EXPECT_EQ(ResultCache::directory_from_env("/fallback"),
            std::filesystem::path("/fallback"));
  ASSERT_EQ(::unsetenv("DELTANC_CACHE_DIR"), 0);
  EXPECT_EQ(ResultCache::directory_from_env("/fallback"),
            std::filesystem::path("/fallback"));
}

TEST_F(ResultCacheTest, ShardOfPartitionsTheKeyspaceContiguously) {
  // Every key lands in exactly one shard, every count: a partition.
  const std::string keys[] = {"", "a", "foobar", "scenario-ish{\"x\":1}",
                              "another key", "yet another"};
  for (const int count : {1, 2, 3, 4, 7, 8, 256}) {
    for (const std::string& key : keys) {
      const int shard = ResultCache::shard_of(key, count);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, count);
    }
  }
  // Contiguity: the shard index is monotone in the top hash byte, so
  // shard i owns one contiguous prefix range of the directory listing.
  int previous = 0;
  for (int prefix = 0; prefix < 256; ++prefix) {
    const int shard =
        static_cast<int>(static_cast<unsigned>(prefix) * 4u / 256u);
    EXPECT_GE(shard, previous);
    previous = shard;
  }
  // Degenerate counts collapse to the single shard.
  EXPECT_EQ(ResultCache::shard_of("anything", 1), 0);
  EXPECT_EQ(ResultCache::shard_of("anything", 0), 0);
}

TEST_F(ResultCacheTest, ShardedHandlesShareOneDirectoryWithUnshardedReaders) {
  const auto dir = cache_dir();
  const e2e::Scenario sc = small_scenario(64);
  const std::string key = solve_cache_key(sc, SolveOptions{});
  const int owner = ResultCache::shard_of(key, 4);

  ResultCache shard(dir, CacheShard{owner, 4});
  EXPECT_TRUE(shard.owns(key));
  EXPECT_EQ(shard.shard().index, owner);
  e2e::BoundResult stored;
  stored.delay_ms = 21.5;
  shard.store(key, stored);

  // The sharded store is a plain entry: an unsharded reader of the same
  // directory hits it bit-exactly (what keeps --serve's cache directory
  // compatible with one-shot --batch runs).
  ResultCache plain(dir);
  e2e::BoundResult found;
  EXPECT_EQ(plain.lookup(key, found), CacheLookup::kHit);
  EXPECT_EQ(found.delay_ms, 21.5);

  EXPECT_THROW(ResultCache(dir, CacheShard{4, 4}), std::invalid_argument);
  EXPECT_THROW(ResultCache(dir, CacheShard{-1, 4}), std::invalid_argument);
  EXPECT_THROW(ResultCache(dir, CacheShard{0, 0}), std::invalid_argument);
}

TEST_F(ResultCacheTest, TryStoreCountsFailuresAndKeepsServing) {
  ResultCache cache(cache_dir());
  cache.fail_next_stores(2);
  e2e::BoundResult result;
  result.delay_ms = 10.0;
  EXPECT_FALSE(cache.try_store("key-a", result));
  EXPECT_FALSE(cache.try_store("key-b", result));
  EXPECT_TRUE(cache.try_store("key-c", result));  // budget drained
  EXPECT_EQ(cache.stats().store_failures, 2);
  EXPECT_EQ(cache.stats().stores, 1);
  // The failed keys never landed; the successful one did.
  e2e::BoundResult found;
  EXPECT_EQ(cache.lookup("key-a", found), CacheLookup::kMiss);
  EXPECT_EQ(cache.lookup("key-c", found), CacheLookup::kHit);
}

TEST_F(ResultCacheTest, ConcurrentHammerNeverServesWrongBytes) {
  // Satellite guard for the persistent service: N threads, each with
  // its own handle on ONE directory, store and look up overlapping
  // keys while one entry is corrupted mid-flight.  The contract under
  // fire: a lookup returns kHit only with the exact stored result --
  // wrong hits and crashes are the failure modes, kMiss/kStale/
  // kCorrupt are all acceptable transients.
  const auto dir = cache_dir();
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 60;

  const auto expected_delay = [](int k) { return 100.0 + k; };
  std::vector<std::string> keys;
  for (int k = 0; k < kKeys; ++k) {
    keys.push_back("hammer-key-" + std::to_string(k));
  }

  ResultCache seed(dir);
  for (int k = 0; k < kKeys; ++k) {
    e2e::BoundResult r;
    r.delay_ms = expected_delay(k);
    seed.store(keys[k], r);
  }
  // One entry starts corrupt; workers re-store over it as they go.
  write_file(seed.entry_path(keys[3]), "NOT JSON {{{");

  std::atomic<int> wrong_hits{0};
  std::atomic<long long> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ResultCache cache(dir);  // per-thread handle, shared directory
      for (int round = 0; round < kRounds; ++round) {
        const int k = (t + round) % kKeys;
        e2e::BoundResult found;
        const CacheLookup outcome = cache.lookup(keys[k], found);
        if (outcome == CacheLookup::kHit &&
            found.delay_ms != expected_delay(k)) {
          ++wrong_hits;
        }
        if (outcome == CacheLookup::kHit) ++hits;
        if (outcome != CacheLookup::kHit || round % 7 == t % 7) {
          e2e::BoundResult fresh;
          fresh.delay_ms = expected_delay(k);
          (void)cache.try_store(keys[k], fresh);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong_hits, 0);
  EXPECT_GT(hits, 0);
  // The corrupted entry healed: every key reads back bit-exactly.
  ResultCache verify(dir);
  for (int k = 0; k < kKeys; ++k) {
    e2e::BoundResult found;
    EXPECT_EQ(verify.lookup(keys[k], found), CacheLookup::kHit) << keys[k];
    EXPECT_EQ(found.delay_ms, expected_delay(k));
  }
}

}  // namespace
}  // namespace deltanc::io
