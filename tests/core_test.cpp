#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "core/table.h"
#include "e2e/solver.h"

namespace deltanc {
namespace {

TEST(ScenarioBuilder, FluentConstruction) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .capacity_mbps(100.0)
                               .hops(5)
                               .through_flows(100)
                               .cross_flows(200)
                               .violation_probability(1e-6)
                               .scheduler(sched::SchedulerKind::kEdf)
                               .edf_deadlines(1.0, 10.0)
                               .build();
  EXPECT_EQ(sc.hops, 5);
  EXPECT_EQ(sc.n_through, 100);
  EXPECT_EQ(sc.n_cross, 200);
  EXPECT_DOUBLE_EQ(sc.epsilon, 1e-6);
  EXPECT_EQ(sc.scheduler, sched::SchedulerKind::kEdf);
  EXPECT_DOUBLE_EQ(sc.scheduler.edf_factors().cross_factor, 10.0);
}

TEST(ScenarioBuilder, UtilizationToFlowCount) {
  // The paper: N = 100 paper flows is ~15% of a 100 Mbps link.
  const e2e::Scenario sc =
      ScenarioBuilder().through_utilization(0.15).cross_utilization(0.35).build();
  EXPECT_NEAR(sc.n_through, 100, 2);
  EXPECT_NEAR(sc.n_cross, 235, 3);
  EXPECT_NEAR(sc.utilization(), 0.50, 0.01);
}

TEST(ScenarioBuilder, Validation) {
  // Setters only store; build() validates everything in one pass.
  EXPECT_THROW((void)ScenarioBuilder().capacity_mbps(0.0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioBuilder().hops(0).build(), std::invalid_argument);
  EXPECT_THROW((void)ScenarioBuilder().through_flows(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioBuilder().cross_flows(-1).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioBuilder().violation_probability(1.0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioBuilder().edf_deadlines(0.0, 1.0).build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, BuildErrorNamesEveryBadField) {
  const ScenarioBuilder builder = ScenarioBuilder()
                                      .capacity_mbps(-5.0)
                                      .hops(0)
                                      .violation_probability(2.0);
  try {
    (void)builder.build();
    FAIL() << "build() accepted a triply-malformed scenario";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("hops"), std::string::npos) << what;
    EXPECT_NE(what.find("epsilon"), std::string::npos) << what;
  }
  const diag::ValidationReport report = builder.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 3u);
}

TEST(ScenarioBuilder, FlowsForUtilizationRejectsNonFinite) {
  const e2e::Scenario sc = ScenarioBuilder().build();
  EXPECT_THROW((void)flows_for_utilization(sc, -0.1), std::invalid_argument);
  EXPECT_THROW(
      (void)flows_for_utilization(sc, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      (void)flows_for_utilization(sc, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW((void)flows_for_utilization(sc, 1e18), std::invalid_argument);
  EXPECT_EQ(flows_for_utilization(sc, 0.0), 0);
}

TEST(TableFormat, AlignedAndCsv) {
  Table t({"H", "FIFO", "BMUX"});
  t.add_row("2", {33.20, 52.65});
  t.add_row({"5", "x", "y"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream aligned;
  t.print(aligned);
  EXPECT_NE(aligned.str().find("FIFO"), std::string::npos);
  EXPECT_NE(aligned.str().find("33.20"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("2,33.20,52.65"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "short"}), std::invalid_argument);
  EXPECT_EQ(Table::format(std::numeric_limits<double>::infinity()), "inf");
}

TEST(TableFormat, NonFiniteValuesAreNamedCorrectly) {
  EXPECT_EQ(Table::format(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(Table::format(-std::numeric_limits<double>::infinity()), "-inf");
  // Regression: NaN compares false against everything, so the old sign
  // test printed it as "-inf".
  EXPECT_EQ(Table::format(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(Table::format(-std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(TableFormat, CsvQuotesSeparatorsQuotesAndNewlines) {
  Table t({"name", "value"});
  t.add_row({"plain", "1.0"});
  t.add_row({"with, comma", "a\"b"});
  t.add_row({"multi\nline", "cr\rcell"});
  std::ostringstream csv;
  t.print_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("plain,1.0\n"), std::string::npos);        // untouched
  EXPECT_NE(text.find("\"with, comma\",\"a\"\"b\"\n"), std::string::npos);
  EXPECT_NE(text.find("\"multi\nline\",\"cr\rcell\"\n"), std::string::npos);
}

TEST(PathAnalyzer, BoundMatchesDirectCall) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(3)
                               .through_flows(100)
                               .cross_flows(150)
                               .scheduler(sched::SchedulerKind::kFifo)
                               .build();
  const PathAnalyzer analyzer(sc);
  const e2e::BoundResult direct = deltanc::Solver().solve(sc);
  const e2e::BoundResult via = analyzer.bound();
  EXPECT_DOUBLE_EQ(via.delay_ms, direct.delay_ms);
}

TEST(PathAnalyzer, AdditiveBoundIsLooser) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(6)
                               .through_flows(150)
                               .cross_flows(150)
                               .scheduler(sched::SchedulerKind::kBmux)
                               .build();
  const PathAnalyzer analyzer(sc);
  EXPECT_GT(analyzer.additive_bound().delay_ms, analyzer.bound().delay_ms);
}

TEST(PathAnalyzer, SimulationRespectsScheduler) {
  const auto base = ScenarioBuilder().hops(2).through_flows(250).cross_flows(
      250);
  PathAnalyzer low(ScenarioBuilder(base).scheduler(sched::SchedulerKind::kBmux)
                       .build());
  PathAnalyzer high(
      ScenarioBuilder(base).scheduler(sched::SchedulerKind::kSpHigh).build());
  const auto r_low = low.simulate(60000, 3);
  const auto r_high = high.simulate(60000, 3);
  EXPECT_GT(r_low.through_delay.quantile(0.999),
            r_high.through_delay.quantile(0.999));
}

// ---------------------------------------------------------------------
// The headline integration check: the analytic bound must dominate the
// simulated delay quantile at the same violation level, for every
// scheduler.
// ---------------------------------------------------------------------

class BoundDominatesSimulation
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(BoundDominatesSimulation, EmpiricalQuantileBelowBound) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(3)
                               .through_flows(250)
                               .cross_flows(250)
                               .scheduler(GetParam())
                               .build();
  const PathAnalyzer analyzer(sc);
  const ValidationReport report = analyzer.validate(250000, 11);
  ASSERT_GT(report.samples, 10000u);
  EXPECT_TRUE(report.bound_holds)
      << "empirical " << report.empirical_quantile << " vs bound at eps="
      << report.epsilon_sim;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, BoundDominatesSimulation,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kBmux,
                                           sched::SchedulerKind::kSpHigh,
                                           sched::SchedulerKind::kEdf));

TEST(PathAnalyzer, ValidationReportIsCoherent) {
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(2)
                               .through_flows(100)
                               .cross_flows(100)
                               .scheduler(sched::SchedulerKind::kFifo)
                               .build();
  const ValidationReport r = PathAnalyzer(sc).validate(50000, 5);
  EXPECT_GE(r.empirical_max, r.empirical_quantile);
  EXPECT_GT(r.epsilon_sim, 0.0);
  EXPECT_LE(r.epsilon_sim, 0.5);
  EXPECT_TRUE(std::isfinite(r.bound.delay_ms));
}

}  // namespace
}  // namespace deltanc
