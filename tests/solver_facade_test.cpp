// The deltanc::Solver facade must be a pure repackaging of the free
// functions it consolidates: bit-identical results against the PR 2
// hexfloat goldens and against the (deprecated) free entry points, with
// the SolveOptions knobs (scheduler override, fixed delta, retry
// policy, workspace reuse) behaving as documented.
#include "e2e/solver.h"

#include <gtest/gtest.h>

#include <limits>

namespace deltanc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

e2e::Scenario fig2_scenario(int n_cross, sched::SchedulerKind sched) {
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched;
  return sc;
}

e2e::PathParams path_params(double delta) {
  return e2e::PathParams{100.0, 4, 20.0, 30.0, 0.5, 1.0, delta};
}

TEST(SolverFacade, MatchesPinnedHexfloatGoldens) {
  // Two operating points of the PR 2 golden table
  // (tests/param_search_test.cpp): the facade must reproduce the exact
  // bits, not just close values.
  const e2e::BoundResult fifo =
      Solver().solve(fig2_scenario(67, sched::SchedulerKind::kFifo));
  EXPECT_EQ(fifo.delay_ms, 0x1.6126458d64984p+4);
  EXPECT_EQ(fifo.gamma, 0x1.8ceaed36017b9p-1);
  EXPECT_EQ(fifo.s, 0x1.7f822a740c65ap-4);
}

TEST(SolverFacade, SolveIsBitIdenticalToFreeFunction) {
  const struct {
    int n_cross;
    sched::SchedulerKind sched;
    e2e::Method method;
  } cases[] = {{67, sched::SchedulerKind::kFifo, e2e::Method::kExactOpt},
               {268, sched::SchedulerKind::kBmux, e2e::Method::kExactOpt},
               {538, sched::SchedulerKind::kSpHigh, e2e::Method::kPaperK},
               {168, sched::SchedulerKind::kEdf, e2e::Method::kExactOpt}};
  for (const auto& c : cases) {
    const e2e::Scenario sc = fig2_scenario(c.n_cross, c.sched);
    SolveOptions options;
    options.method = c.method;
    const e2e::BoundResult facade = Solver(options).solve(sc);
    const e2e::BoundResult direct = deltanc::Solver(c.method).solve(sc);
    EXPECT_EQ(facade.delay_ms, direct.delay_ms);
    EXPECT_EQ(facade.gamma, direct.gamma);
    EXPECT_EQ(facade.s, direct.s);
    EXPECT_EQ(facade.sigma, direct.sigma);
    EXPECT_EQ(facade.delta, direct.delta);
    EXPECT_EQ(facade.stats.optimize_evals, direct.stats.optimize_evals);
  }
}

TEST(SolverFacade, SchedulerOverrideEqualsEditedScenario) {
  const e2e::Scenario fifo = fig2_scenario(168, sched::SchedulerKind::kFifo);
  SolveOptions options;
  options.scheduler = sched::SchedulerKind::kEdf;
  const Solver solver(options);
  EXPECT_EQ(solver.effective_scenario(fifo).scheduler, sched::SchedulerKind::kEdf);

  e2e::Scenario edf = fifo;
  edf.scheduler = sched::SchedulerKind::kEdf;
  const e2e::BoundResult overridden = solver.solve(fifo);
  const e2e::BoundResult direct = Solver().solve(edf);
  EXPECT_EQ(overridden.delay_ms, direct.delay_ms);
  EXPECT_EQ(overridden.delta, direct.delta);
}

TEST(SolverFacade, FixedDeltaMatchesDeprecatedEntryPoint) {
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kFifo);
  for (const double delta : {0.0, 5.0, -kInf, kInf}) {
    const e2e::BoundResult via_at = Solver().solve_at(sc, delta);
    SolveOptions options;
    options.delta = delta;
    const e2e::BoundResult via_options = Solver(options).solve(sc);
    const e2e::BoundResult direct =
        deltanc::Solver(e2e::Method::kExactOpt).solve_at(sc, delta);
    EXPECT_EQ(via_at.delay_ms, direct.delay_ms);
    EXPECT_EQ(via_options.delay_ms, direct.delay_ms);
    EXPECT_EQ(via_at.gamma, direct.gamma);
    EXPECT_EQ(via_at.s, direct.s);
  }
}

TEST(SolverFacade, OptimizeIsBitIdenticalWithAndWithoutWorkspace) {
  const e2e::PathParams p = path_params(2.0);
  for (const e2e::Method method :
       {e2e::Method::kExactOpt, e2e::Method::kPaperK}) {
    SolveOptions reuse;
    reuse.method = method;
    SolveOptions fresh;
    fresh.method = method;
    fresh.reuse_workspace = false;
    const Solver with_ws(reuse);
    const Solver without_ws(fresh);
    for (const double gamma : {0.5, 1.0, 2.0}) {
      const e2e::DelayResult a = with_ws.optimize(p, gamma, 40.0);
      const e2e::DelayResult b = without_ws.optimize(p, gamma, 40.0);
      const e2e::DelayResult direct =
          method == e2e::Method::kExactOpt
              ? deltanc::Solver().optimize(p, gamma, 40.0)
              : deltanc::Solver(deltanc::e2e::Method::kPaperK).optimize(p, gamma, 40.0);
      EXPECT_EQ(a.delay, direct.delay);
      EXPECT_EQ(b.delay, direct.delay);
      EXPECT_EQ(a.x, direct.x);
      EXPECT_EQ(a.theta, direct.theta);
    }
  }
}

TEST(SolverFacade, RetryPolicyCapsEdfRestarts) {
  // Default (-1) runs the historical full damping schedule; 0 forbids
  // restarts entirely.  Whatever the scenario needed, the capped run
  // must never report more retries than allowed.
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kEdf);
  SolveOptions none;
  none.max_edf_restarts = 0;
  const e2e::BoundResult capped = Solver(none).solve(sc);
  EXPECT_EQ(capped.stats.retries, 0);

  const e2e::BoundResult full = Solver().solve(sc);
  const e2e::BoundResult direct = deltanc::Solver().solve(sc);
  EXPECT_EQ(full.delay_ms, direct.delay_ms);
  EXPECT_EQ(full.stats.retries, direct.stats.retries);
}

TEST(SolverFacade, UnstableScenarioStillClassified) {
  const e2e::BoundResult r =
      Solver().solve(fig2_scenario(800, sched::SchedulerKind::kBmux));
  EXPECT_EQ(r.delay_ms, kInf);
  EXPECT_FALSE(r.diagnostics.ok());
}

}  // namespace
}  // namespace deltanc
