// The deltanc::Solver facade must be a pure repackaging of the free
// functions it consolidates: bit-identical results against the PR 2
// hexfloat goldens and against the (deprecated) free entry points, with
// the SolveOptions knobs (scheduler override, fixed delta, retry
// policy, workspace reuse) behaving as documented.
#include "e2e/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace deltanc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

e2e::Scenario fig2_scenario(int n_cross, sched::SchedulerKind sched) {
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched;
  return sc;
}

e2e::PathParams path_params(double delta) {
  return e2e::PathParams{100.0, 4, 20.0, 30.0, 0.5, 1.0, delta};
}

TEST(SolverFacade, MatchesPinnedHexfloatGoldens) {
  // Two operating points of the PR 2 golden table
  // (tests/param_search_test.cpp): the facade must reproduce the exact
  // bits, not just close values.
  const e2e::BoundResult fifo =
      Solver().solve(fig2_scenario(67, sched::SchedulerKind::kFifo));
  EXPECT_EQ(fifo.delay_ms, 0x1.6126458d64984p+4);
  EXPECT_EQ(fifo.gamma, 0x1.8ceaed36017b9p-1);
  EXPECT_EQ(fifo.s, 0x1.7f822a740c65ap-4);
}

TEST(SolverFacade, SolveIsBitIdenticalToFreeFunction) {
  const struct {
    int n_cross;
    sched::SchedulerKind sched;
    e2e::Method method;
  } cases[] = {{67, sched::SchedulerKind::kFifo, e2e::Method::kExactOpt},
               {268, sched::SchedulerKind::kBmux, e2e::Method::kExactOpt},
               {538, sched::SchedulerKind::kSpHigh, e2e::Method::kPaperK},
               {168, sched::SchedulerKind::kEdf, e2e::Method::kExactOpt}};
  for (const auto& c : cases) {
    const e2e::Scenario sc = fig2_scenario(c.n_cross, c.sched);
    SolveOptions options;
    options.method = c.method;
    const e2e::BoundResult facade = Solver(options).solve(sc);
    const e2e::BoundResult direct = deltanc::Solver(c.method).solve(sc);
    EXPECT_EQ(facade.delay_ms, direct.delay_ms);
    EXPECT_EQ(facade.gamma, direct.gamma);
    EXPECT_EQ(facade.s, direct.s);
    EXPECT_EQ(facade.sigma, direct.sigma);
    EXPECT_EQ(facade.delta, direct.delta);
    EXPECT_EQ(facade.stats.optimize_evals, direct.stats.optimize_evals);
  }
}

TEST(SolverFacade, SchedulerOverrideEqualsEditedScenario) {
  const e2e::Scenario fifo = fig2_scenario(168, sched::SchedulerKind::kFifo);
  SolveOptions options;
  options.scheduler = sched::SchedulerKind::kEdf;
  const Solver solver(options);
  EXPECT_EQ(solver.effective_scenario(fifo).scheduler, sched::SchedulerKind::kEdf);

  e2e::Scenario edf = fifo;
  edf.scheduler = sched::SchedulerKind::kEdf;
  const e2e::BoundResult overridden = solver.solve(fifo);
  const e2e::BoundResult direct = Solver().solve(edf);
  EXPECT_EQ(overridden.delay_ms, direct.delay_ms);
  EXPECT_EQ(overridden.delta, direct.delta);
}

TEST(SolverFacade, FixedDeltaMatchesDeprecatedEntryPoint) {
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kFifo);
  for (const double delta : {0.0, 5.0, -kInf, kInf}) {
    const e2e::BoundResult via_at = Solver().solve_at(sc, delta);
    SolveOptions options;
    options.delta = delta;
    const e2e::BoundResult via_options = Solver(options).solve(sc);
    const e2e::BoundResult direct =
        deltanc::Solver(e2e::Method::kExactOpt).solve_at(sc, delta);
    EXPECT_EQ(via_at.delay_ms, direct.delay_ms);
    EXPECT_EQ(via_options.delay_ms, direct.delay_ms);
    EXPECT_EQ(via_at.gamma, direct.gamma);
    EXPECT_EQ(via_at.s, direct.s);
  }
}

TEST(SolverFacade, OptimizeIsBitIdenticalWithAndWithoutWorkspace) {
  const e2e::PathParams p = path_params(2.0);
  for (const e2e::Method method :
       {e2e::Method::kExactOpt, e2e::Method::kPaperK}) {
    SolveOptions reuse;
    reuse.method = method;
    SolveOptions fresh;
    fresh.method = method;
    fresh.reuse_workspace = false;
    const Solver with_ws(reuse);
    const Solver without_ws(fresh);
    for (const double gamma : {0.5, 1.0, 2.0}) {
      const e2e::DelayResult a = with_ws.optimize(p, gamma, 40.0);
      const e2e::DelayResult b = without_ws.optimize(p, gamma, 40.0);
      const e2e::DelayResult direct =
          method == e2e::Method::kExactOpt
              ? deltanc::Solver().optimize(p, gamma, 40.0)
              : deltanc::Solver(deltanc::e2e::Method::kPaperK).optimize(p, gamma, 40.0);
      EXPECT_EQ(a.delay, direct.delay);
      EXPECT_EQ(b.delay, direct.delay);
      EXPECT_EQ(a.x, direct.x);
      EXPECT_EQ(a.theta, direct.theta);
    }
  }
}

TEST(SolverFacade, RetryPolicyCapsEdfRestarts) {
  // Default (-1) runs the historical full damping schedule; 0 forbids
  // restarts entirely.  Whatever the scenario needed, the capped run
  // must never report more retries than allowed.
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kEdf);
  SolveOptions none;
  none.max_edf_restarts = 0;
  const e2e::BoundResult capped = Solver(none).solve(sc);
  EXPECT_EQ(capped.stats.retries, 0);

  const e2e::BoundResult full = Solver().solve(sc);
  const e2e::BoundResult direct = deltanc::Solver().solve(sc);
  EXPECT_EQ(full.delay_ms, direct.delay_ms);
  EXPECT_EQ(full.stats.retries, direct.stats.retries);
}

TEST(SolverFacade, UnstableScenarioStillClassified) {
  const e2e::BoundResult r =
      Solver().solve(fig2_scenario(800, sched::SchedulerKind::kBmux));
  EXPECT_EQ(r.delay_ms, kInf);
  EXPECT_FALSE(r.diagnostics.ok());
}

// ----- delay profiles ----------------------------------------------------

const std::vector<double> kProfileGrid = {1e-3, 1e-5, 1e-7, 1e-9};

TEST(SolverProfile, ColdLevelsAreBitIdenticalToScalarSolves) {
  // The pinning contract: with warm_start == kCold (the default) every
  // profile level IS the scalar solve of the same scenario at that
  // epsilon -- identical bits, identical work counters.  This holds in
  // either SIMD mode (the whole profile and the scalar baseline follow
  // the same DELTANC_SIMD path).
  for (const sched::SchedulerKind sched :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kEdf,
        sched::SchedulerKind::kSpHigh}) {
    const e2e::Scenario sc = fig2_scenario(168, sched);
    const e2e::DelayProfile profile =
        Solver().solve_profile(sc, kProfileGrid);
    ASSERT_EQ(profile.levels.size(), kProfileGrid.size());
    EXPECT_EQ(profile.stats.profile_levels,
              static_cast<std::int64_t>(kProfileGrid.size()));
    EXPECT_EQ(profile.stats.profile_chain_hits, 0);
    for (std::size_t i = 0; i < kProfileGrid.size(); ++i) {
      e2e::Scenario level = sc;
      level.epsilon = kProfileGrid[i];
      const e2e::BoundResult scalar = Solver().solve(level);
      EXPECT_EQ(profile.levels[i].delay_ms, scalar.delay_ms);
      EXPECT_EQ(profile.levels[i].gamma, scalar.gamma);
      EXPECT_EQ(profile.levels[i].s, scalar.s);
      EXPECT_EQ(profile.levels[i].sigma, scalar.sigma);
      EXPECT_EQ(profile.levels[i].delta, scalar.delta);
      EXPECT_EQ(profile.levels[i].stats.optimize_evals,
                scalar.stats.optimize_evals);
    }
  }
}

TEST(SolverProfile, WarmChainWithinToleranceAndCheaperThanCold) {
  SolveOptions warm_options;
  warm_options.warm_start = e2e::WarmStart::kWarm;
  for (const sched::SchedulerKind sched :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kEdf}) {
    const e2e::Scenario sc = fig2_scenario(168, sched);
    const e2e::DelayProfile cold = Solver().solve_profile(sc, kProfileGrid);
    const e2e::DelayProfile warm =
        Solver(warm_options).solve_profile(sc, kProfileGrid);
    ASSERT_EQ(warm.levels.size(), cold.levels.size());
    for (std::size_t i = 0; i < cold.levels.size(); ++i) {
      // Same tolerance the self-check battery enforces
      // (deltanc::kWarmStartRelTol in core/selfcheck.h).
      EXPECT_NEAR(warm.levels[i].delay_ms, cold.levels[i].delay_ms,
                  1e-4 * cold.levels[i].delay_ms);
    }
    // The chain must actually pay off: every post-seed level reuses
    // context, and the total search work shrinks.
    EXPECT_EQ(warm.stats.profile_chain_hits,
              static_cast<std::int64_t>(kProfileGrid.size()) - 1);
    EXPECT_LT(warm.stats.optimize_evals, cold.stats.optimize_evals);
    // d(epsilon) is non-increasing in epsilon under either policy.
    for (std::size_t i = 1; i < warm.levels.size(); ++i) {
      EXPECT_LE(warm.levels[i - 1].delay_ms, warm.levels[i].delay_ms);
      EXPECT_LE(cold.levels[i - 1].delay_ms, cold.levels[i].delay_ms);
    }
  }
}

TEST(SolverProfile, LevelsFollowCallerOrderNotSolveOrder) {
  // The warm chain visits levels in descending epsilon internally, but
  // the artifact reports them in the caller's order.
  const e2e::Scenario sc = fig2_scenario(67, sched::SchedulerKind::kFifo);
  SolveOptions warm_options;
  warm_options.warm_start = e2e::WarmStart::kWarm;
  const std::vector<double> shuffled = {1e-7, 1e-3, 1e-9, 1e-5};
  const e2e::DelayProfile p = Solver(warm_options).solve_profile(sc, shuffled);
  ASSERT_EQ(p.epsilons.size(), shuffled.size());
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    EXPECT_EQ(p.epsilons[i], shuffled[i]);
  }
  // Deeper epsilon -> larger delay, whatever the visit order was.
  EXPECT_LT(p.levels[1].delay_ms, p.levels[3].delay_ms);
  EXPECT_LT(p.levels[3].delay_ms, p.levels[0].delay_ms);
  EXPECT_LT(p.levels[0].delay_ms, p.levels[2].delay_ms);
}

TEST(SolverProfile, ValidatesTheEpsilonGrid) {
  const e2e::Scenario sc = fig2_scenario(67, sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)Solver().solve_profile(sc, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)Solver().solve_profile(sc, std::vector<double>{0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)Solver().solve_profile(sc, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Solver().solve_profile(sc, std::vector<double>{1e-3, -1e-6}),
      std::invalid_argument);
}

TEST(SolverProfile, CurveBackedSchedulerProfilesCarryNaNDelta) {
  e2e::Scenario sc = fig2_scenario(67, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::gps(2.0, 1.0);
  SolveOptions warm_options;
  warm_options.warm_start = e2e::WarmStart::kWarm;
  const e2e::DelayProfile p =
      Solver(warm_options).solve_profile(sc, kProfileGrid);
  for (const e2e::BoundResult& level : p.levels) {
    EXPECT_TRUE(std::isfinite(level.delay_ms));
    EXPECT_TRUE(std::isnan(level.delta));
  }
}

}  // namespace
}  // namespace deltanc
