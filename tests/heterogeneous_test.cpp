#include "e2e/heterogeneous.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "e2e/delay_bound.h"
#include "e2e/network_epsilon.h"
#include "e2e/solver.h"
#include "sched/single_node_bound.h"

namespace deltanc::e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

HeteroPath homogeneous_as_hetero(const PathParams& p) {
  HeteroPath hp;
  hp.rho = p.rho;
  hp.alpha = p.alpha;
  hp.m = p.m;
  for (int h = 0; h < p.hops; ++h) {
    hp.nodes.push_back({p.capacity, p.rho_cross, p.m, p.delta});
  }
  return hp;
}

TEST(HeteroPath, Validation) {
  HeteroPath hp;
  EXPECT_THROW(hp.validate(), std::invalid_argument);  // no nodes
  hp.nodes.push_back({100.0, 30.0, 1.0, 0.0});
  hp.rho = 20.0;
  hp.alpha = 0.5;
  hp.m = 1.0;
  EXPECT_NO_THROW(hp.validate());
  hp.alpha = 0.0;
  EXPECT_THROW(hp.validate(), std::invalid_argument);
}

TEST(HeteroPath, GammaLimitIsBottleneckDriven) {
  HeteroPath hp;
  hp.rho = 10.0;
  hp.alpha = 0.5;
  hp.m = 1.0;
  hp.nodes.push_back({100.0, 30.0, 1.0, 0.0});  // slack 60
  hp.nodes.push_back({50.0, 20.0, 1.0, 0.0});   // slack 20 <- bottleneck
  EXPECT_NEAR(hp.gamma_limit(), 20.0 / 3.0, 1e-12);
}

TEST(HeteroDelay, ReducesToHomogeneousClosedForm) {
  // A homogeneous path expressed heterogeneously must reproduce both the
  // Eq. (34) violation bound and the optimized delay.
  for (double delta : {-kInf, -5.0, 0.0, 5.0, kInf}) {
    const PathParams p{100.0, 5, 20.0, 30.0, 0.5, 1.0, delta};
    const HeteroPath hp = homogeneous_as_hetero(p);
    const double gamma = 0.3 * p.gamma_limit();

    const nc::ExpBound homo = delay_violation_bound(p, gamma);
    const nc::ExpBound hetero = hetero_delay_violation_bound(hp, gamma);
    EXPECT_NEAR(hetero.prefactor(), homo.prefactor(),
                1e-9 * homo.prefactor())
        << "delta = " << delta;
    EXPECT_NEAR(hetero.decay(), homo.decay(), 1e-12);

    const double sigma = sigma_for_epsilon(p, gamma, 1e-9);
    EXPECT_NEAR(hetero_optimize_delay(hp, gamma, sigma).delay,
                deltanc::Solver().optimize(p, gamma, sigma).delay, 1e-9)
        << "delta = " << delta;
  }
}

TEST(HeteroDelay, BottleneckDominates) {
  // Shrinking one node's capacity can only increase the bound.
  HeteroPath hp;
  hp.rho = 15.0;
  hp.alpha = 0.05;
  hp.m = 1.0;
  for (int h = 0; h < 4; ++h) hp.nodes.push_back({100.0, 35.0, 1.0, 0.0});
  const double base = hetero_best_delay_bound(hp, 1e-9);
  hp.nodes[2].capacity = 70.0;
  const double squeezed = hetero_best_delay_bound(hp, 1e-9);
  EXPECT_GT(squeezed, base);
  hp.nodes[2].capacity = 51.0;  // barely above rho + rho_c
  const double tight = hetero_best_delay_bound(hp, 1e-9);
  EXPECT_GT(tight, squeezed * 1.2);
}

TEST(HeteroDelay, UnstableNodeGivesInfiniteBound) {
  HeteroPath hp;
  hp.rho = 15.0;
  hp.alpha = 0.05;
  hp.m = 1.0;
  hp.nodes.push_back({100.0, 35.0, 1.0, 0.0});
  hp.nodes.push_back({45.0, 35.0, 1.0, 0.0});  // 15 + 35 > 45
  EXPECT_EQ(hetero_best_delay_bound(hp, 1e-9), kInf);
}

TEST(HeteroDelay, MixedSchedulersAlongThePath) {
  // A path where only the bottleneck runs EDF: upgrading that single node
  // from FIFO must reduce the end-to-end bound noticeably.
  HeteroPath hp;
  hp.rho = 15.0;
  hp.alpha = 0.05;
  hp.m = 1.0;
  for (int h = 0; h < 4; ++h) hp.nodes.push_back({100.0, 55.0, 1.0, 0.0});
  const double all_fifo = hetero_best_delay_bound(hp, 1e-9);
  hp.nodes[1].delta = -50.0;  // EDF favouring the through flow there
  const double edf_at_bottleneck = hetero_best_delay_bound(hp, 1e-9);
  EXPECT_LT(edf_at_bottleneck, all_fifo);
  // And penalizing it there must do the opposite.
  hp.nodes[1].delta = kInf;
  EXPECT_GE(hetero_best_delay_bound(hp, 1e-9), all_fifo - 1e-9);
}

TEST(HeteroDelay, CurveBackedSpecsAreRejectedWithAPointer) {
  // gps/drr/sced carry no per-node Delta term; the heterogeneous path
  // must refuse them and name the provider interface that does lower
  // them, rather than produce a bogus Delta.
  for (const sched::SchedulerSpec& spec :
       {sched::SchedulerSpec::gps(1.0, 1.0), sched::SchedulerSpec::drr(2.0, 1.0),
        sched::SchedulerSpec::sced()}) {
    try {
      (void)node_params_for(spec, 100.0, 50.0, 1.0);
      FAIL() << "accepted curve-backed spec " << sched::to_string(spec);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("make_service_curve_provider"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(HeteroDelay, PerNodeDeltaMonotonicity) {
  HeteroPath hp;
  hp.rho = 15.0;
  hp.alpha = 0.05;
  hp.m = 1.0;
  for (int h = 0; h < 3; ++h) hp.nodes.push_back({100.0, 40.0, 1.0, 0.0});
  double prev = 0.0;
  for (double delta : {-kInf, -20.0, 0.0, 20.0, kInf}) {
    for (auto& n : hp.nodes) n.delta = delta;
    const double d = hetero_best_delay_bound(hp, 1e-9);
    EXPECT_GE(d, prev - 1e-6) << "delta = " << delta;
    prev = d;
  }
}

TEST(HeteroDelay, SingleHopMatchesSingleNodeMachinery) {
  // A 1-node heterogeneous path must agree with the direct Section-III-B
  // single-node analysis at the same sigma.
  const double gamma = 0.5, alpha = 0.5, sigma = 60.0;
  for (double delta : {-10.0, 0.0, 4.0, kInf}) {
    HeteroPath hp;
    hp.rho = 20.0;
    hp.alpha = alpha;
    hp.m = 1.0;
    hp.nodes.push_back({100.0, 30.0, 1.0, delta});
    const double hetero = hetero_optimize_delay(hp, gamma, sigma).delay;

    const std::vector<traffic::StatEnvelope> env{
        traffic::EbbTraffic(1.0, 20.0, alpha).sample_path_envelope(gamma),
        traffic::EbbTraffic(1.0, 30.0, alpha).sample_path_envelope(gamma)};
    const double back = std::isfinite(delta) ? -delta : -kInf;
    const sched::DeltaMatrix dm({{0.0, delta}, {back, 0.0}});
    const double node =
        sched::single_node_delay_for_sigma(100.0, dm, env, 0, sigma);
    EXPECT_NEAR(hetero, node, 1e-5 * (1.0 + node)) << "delta = " << delta;
  }
}

TEST(HeteroDelay, ThetaSolverValidation) {
  HeteroPath hp;
  hp.rho = 15.0;
  hp.alpha = 0.05;
  hp.m = 1.0;
  hp.nodes.push_back({100.0, 40.0, 1.0, 0.0});
  EXPECT_THROW((void)hetero_theta_h(hp, 0.5, 10.0, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)hetero_theta_h(hp, 0.5, 10.0, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)hetero_theta_h(hp, 0.5, 10.0, 1, -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)hetero_sigma_for_epsilon(hp, 0.5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::e2e
