// The persistent solve service: fault-plan grammar, bounded-queue
// backpressure, warm-layer behavior, and every robustness path --
// timeout, crashed-worker requeue/retry-exhaustion, store-failure
// solve-through, corrupt-load recovery, reload, and drain -- each
// driven deterministically via serve::FaultPlan.
#include "e2e/solver.h"
#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/batch.h"
#include "io/codec.h"
#include "serve/bounded_queue.h"
#include "serve/fault_plan.h"

namespace deltanc::serve {
namespace {

using io::json::Value;

e2e::Scenario small_scenario(int n_cross) {
  e2e::Scenario sc;
  sc.hops = 3;
  sc.n_through = 80;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched::SchedulerKind::kFifo;
  return sc;
}

std::string request_line(const e2e::Scenario& sc, int id) {
  Value req = Value::object();
  req.set("schema", Value::number(io::kSchemaVersion))
      .set("id", Value::number(id))
      .set("scenario", io::encode_scenario(sc));
  return req.dump();
}

std::filesystem::path fresh_cache_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Thread-safe response collector; tests block until N answers arrive.
class Collector {
 public:
  SolveService::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
      cv_.notify_all();
    };
  }

  std::vector<Value> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::seconds(30),
                 [&] { return lines_.size() >= n; });
    std::vector<Value> out;
    for (const std::string& line : lines_) out.push_back(Value::parse(line));
    return out;
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

/// Finds the response whose "id" is `id`; fails the test when absent.
const Value* find_id(const std::vector<Value>& responses, double id) {
  for (const Value& r : responses) {
    const Value* rid = r.find("id");
    if (rid != nullptr && rid->is_number() && rid->as_number() == id) {
      return &r;
    }
  }
  return nullptr;
}

// ----- FaultPlan grammar ---------------------------------------------------

TEST(FaultPlan, ParsesEveryEntryKindAndRoundTrips) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(
      "kill:0:3;delay:7:250;store-fail:2;load-corrupt:1", plan, error))
      << error;
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].worker, 0);
  EXPECT_EQ(plan.kills[0].at, 3u);
  ASSERT_EQ(plan.delays.size(), 1u);
  EXPECT_EQ(plan.delays[0].id, 7.0);
  EXPECT_EQ(plan.delays[0].ms, 250.0);
  EXPECT_EQ(plan.store_failures, 2);
  EXPECT_EQ(plan.load_corrupts, 1);

  // The canonical spelling parses back to the same plan.
  FaultPlan again;
  ASSERT_TRUE(FaultPlan::parse(plan.to_string(), again, error)) << error;
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, EmptySpecIsEmptyPlanAndBadSpecsAreRejected) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("", plan, error));
  EXPECT_TRUE(plan.empty());

  for (const char* bad :
       {"kill:0", "kill:a:1", "kill:0:0", "delay:1", "nap:1:2",
        "store-fail:-1", "store-fail:1.5", "load-corrupt:x",
        "kill:0:1;bogus"}) {
    EXPECT_FALSE(FaultPlan::parse(bad, plan, error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(FaultPlan, KillsFireOncePerEntryAndDelaysAreNotConsumed) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("kill:1:2;delay:5:10;load-corrupt:2", plan,
                               error));
  FaultClock clock(plan);
  EXPECT_FALSE(clock.should_kill(0, 2));  // wrong worker
  EXPECT_FALSE(clock.should_kill(1, 1));  // wrong count
  EXPECT_TRUE(clock.should_kill(1, 2));
  EXPECT_FALSE(clock.should_kill(1, 2));  // one-shot

  // A requeued request is delayed again (delays never deplete).
  EXPECT_EQ(clock.delay_ms_for(5.0), 10.0);
  EXPECT_EQ(clock.delay_ms_for(5.0), 10.0);
  EXPECT_EQ(clock.delay_ms_for(6.0), 0.0);

  EXPECT_TRUE(clock.corrupt_next_load());
  EXPECT_TRUE(clock.corrupt_next_load());
  EXPECT_FALSE(clock.corrupt_next_load());  // budget drained
}

// ----- BoundedQueue --------------------------------------------------------

TEST(BoundedQueue, FullQueueRejectsButRequeueJumpsTheBound) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));     // backpressure
  EXPECT_TRUE(queue.push_front(99));   // accepted work never bounces
  EXPECT_EQ(queue.pop().value(), 99);  // and jumps the line
  EXPECT_EQ(queue.pop().value(), 1);
  queue.close();
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_EQ(queue.pop().value(), 2);        // close() still drains
  EXPECT_FALSE(queue.pop().has_value());    // then signals shutdown
}

// ----- SolveService --------------------------------------------------------

TEST(SolveServiceTest, SolvesParsesAndIgnoresBlankLines) {
  ServeOptions options;
  options.workers = 2;
  SolveService service(options);
  Collector collector;
  service.submit(request_line(small_scenario(60), 0), collector.sink());
  service.submit("   ", collector.sink());  // ignored, no response
  service.submit("{\"schema\":3,\"id\":7,\"scenario\":42}",
                 collector.sink());  // undecodable, answered in place
  const std::vector<Value> responses = collector.wait_for(2);
  ASSERT_EQ(responses.size(), 2u);

  const Value* solved = find_id(responses, 0.0);
  ASSERT_NE(solved, nullptr);
  EXPECT_TRUE(solved->at("ok").as_bool());
  // No cache directory attached: no "cache" tag, like cache-less batch.
  EXPECT_EQ(solved->find("cache"), nullptr);
  const e2e::BoundResult direct = deltanc::Solver().solve(small_scenario(60));
  EXPECT_EQ(io::decode_bound_result(solved->at("result")).delay_ms,
            direct.delay_ms);

  const Value* bad = find_id(responses, 7.0);
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->at("ok").as_bool());
  EXPECT_EQ(bad->find("kind"), nullptr);  // plain parse error, no kind

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.received, 2);
  EXPECT_EQ(stats.answered, 2);
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.parse_errors, 1);
}

TEST(SolveServiceTest, WarmLayersServeRepeatsAndReloadDropsMemory) {
  ServeOptions options;
  options.workers = 1;
  options.cache_dir = fresh_cache_dir("serve_warm");
  SolveService service(options);
  Collector collector;
  const std::string line = request_line(small_scenario(50), 0);

  service.submit(line, collector.sink());
  collector.wait_for(1);
  service.submit(line, collector.sink());  // memory hit
  collector.wait_for(2);
  service.reload();                        // drops the memory layer
  service.submit(line, collector.sink());  // disk hit
  const std::vector<Value> responses = collector.wait_for(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].at("cache").as_string(), "miss");
  EXPECT_EQ(responses[1].at("cache").as_string(), "hit");
  EXPECT_EQ(responses[2].at("cache").as_string(), "hit");
  // Both warm responses are byte-identical to each other, and identical
  // to the cold one except for the cache-outcome counters the hit path
  // annotates (exactly what one-shot --batch emits on a warm run).
  EXPECT_EQ(responses[2].at("result").dump(),
            responses[1].at("result").dump());
  for (int i : {1, 2}) {
    EXPECT_EQ(responses[i].at("result").at("delay_ms").dump(),
              responses[0].at("result").at("delay_ms").dump());
    EXPECT_EQ(
        responses[i].at("result").at("stats").at("cache_hits").as_number(),
        1.0);
  }
  EXPECT_EQ(
      responses[0].at("result").at("stats").at("cache_misses").as_number(),
      1.0);

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.memory_hits, 1);  // the post-reload hit came from disk
  EXPECT_EQ(stats.reloads, 1);
  // Cache traffic survives the reload (retired + live handles).
  EXPECT_EQ(stats.cache.stores, 1);
  EXPECT_EQ(stats.cache.hits, 1);
}

TEST(SolveServiceTest, DeadlineOverrunAnswersClassifiedTimeout) {
  ServeOptions options;
  options.workers = 1;
  options.deadline_ms = 60;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("delay:5:2000", options.faults, error));
  SolveService service(options);
  Collector collector;
  service.submit(request_line(small_scenario(45), 5), collector.sink());
  const std::vector<Value> responses = collector.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[0].at("kind").as_string(), "timeout");

  // The replacement worker keeps serving after the zombie is abandoned.
  service.submit(request_line(small_scenario(46), 6), collector.sink());
  const std::vector<Value> more = collector.wait_for(2);
  const Value* next = find_id(more, 6.0);
  ASSERT_NE(next, nullptr);
  EXPECT_TRUE(next->at("ok").as_bool());

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.answered, 2);
}

TEST(SolveServiceTest, CrashedWorkerRequeuesAndStillAnswers) {
  ServeOptions options;
  options.workers = 1;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("kill:0:1", options.faults, error));
  SolveService service(options);
  Collector collector;
  service.submit(request_line(small_scenario(44), 3), collector.sink());
  const std::vector<Value> responses = collector.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  // The crash is invisible to the client: the retry answered normally.
  EXPECT_TRUE(responses[0].at("ok").as_bool());

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.worker_losses, 1);
  EXPECT_EQ(stats.requeues, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.exhausted, 0);
}

TEST(SolveServiceTest, RetryExhaustionClassifiesWorkerLost) {
  ServeOptions options;
  options.workers = 1;
  options.max_requeues = 2;
  std::string error;
  // Every incumbent dies on its first dequeue: initial try + 2 retries.
  ASSERT_TRUE(FaultPlan::parse("kill:0:1;kill:0:1;kill:0:1", options.faults,
                               error));
  SolveService service(options);
  Collector collector;
  service.submit(request_line(small_scenario(43), 9), collector.sink());
  const std::vector<Value> responses = collector.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[0].at("kind").as_string(), "worker-lost");

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.worker_losses, 3);
  EXPECT_EQ(stats.requeues, 2);
  EXPECT_EQ(stats.exhausted, 1);
  EXPECT_EQ(stats.answered, 1);  // classified, never silently dropped
}

TEST(SolveServiceTest, StoreFailureDegradesToCountedSolveThrough) {
  ServeOptions options;
  options.workers = 1;
  options.memory_entries = 0;  // force every repeat through the disk
  options.cache_dir = fresh_cache_dir("serve_store_fail");
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("store-fail:1", options.faults, error));
  SolveService service(options);
  Collector collector;
  const std::string line = request_line(small_scenario(42), 0);

  service.submit(line, collector.sink());  // solves; store fails
  collector.wait_for(1);
  service.submit(line, collector.sink());  // still a miss; store succeeds
  collector.wait_for(2);
  service.submit(line, collector.sink());  // now a disk hit
  const std::vector<Value> responses = collector.wait_for(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].at("cache").as_string(), "miss");
  EXPECT_EQ(responses[1].at("cache").as_string(), "miss");
  EXPECT_EQ(responses[2].at("cache").as_string(), "hit");
  for (const Value& r : responses) EXPECT_TRUE(r.at("ok").as_bool());

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.cache.store_failures, 1);
  EXPECT_EQ(stats.cache.stores, 1);
  EXPECT_EQ(stats.solved, 2);
  EXPECT_EQ(stats.served, 1);
}

TEST(SolveServiceTest, FailedStoreLeavesMemoryLayerCold) {
  ServeOptions options;
  options.workers = 1;  // memory layer stays at its default (enabled)
  options.cache_dir = fresh_cache_dir("serve_store_fail_memory");
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("store-fail:1", options.faults, error));
  SolveService service(options);
  Collector collector;
  const std::string line = request_line(small_scenario(44), 0);

  service.submit(line, collector.sink());  // solves; store fails
  collector.wait_for(1);
  service.submit(line, collector.sink());
  const std::vector<Value> responses = collector.wait_for(2);
  ASSERT_EQ(responses.size(), 2u);
  // The failed store must leave the memory layer cold too: a --batch
  // run over the same directory would miss and re-solve, so a memory
  // hit here would report cache:"hit" for an entry the disk never
  // recorded.  The second request re-solves (miss) and stores.
  EXPECT_EQ(responses[0].at("cache").as_string(), "miss");
  EXPECT_EQ(responses[1].at("cache").as_string(), "miss");

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.memory_hits, 0);
  EXPECT_EQ(stats.solved, 2);
  EXPECT_EQ(stats.cache.store_failures, 1);
  EXPECT_EQ(stats.cache.stores, 1);
}

TEST(SolveServiceTest, InjectedCorruptLoadRecoversLikeBatch) {
  ServeOptions options;
  options.workers = 1;
  options.memory_entries = 0;
  options.cache_dir = fresh_cache_dir("serve_corrupt");
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("load-corrupt:1", options.faults, error));
  SolveService service(options);
  Collector collector;
  const std::string line = request_line(small_scenario(41), 0);

  service.submit(line, collector.sink());  // cold solve + store
  collector.wait_for(1);
  service.submit(line, collector.sink());  // hit forced corrupt: re-solve
  collector.wait_for(2);
  service.submit(line, collector.sink());  // clean hit again
  const std::vector<Value> responses = collector.wait_for(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[1].at("cache").as_string(), "corrupt");
  EXPECT_EQ(responses[2].at("cache").as_string(), "hit");
  // The recovery carries the same warning the batch path emits.
  const std::string warnings =
      responses[1].at("result").at("diagnostics").dump();
  EXPECT_NE(warnings.find("unreadable"), std::string::npos);
  service.drain();
}

TEST(SolveServiceTest, FullQueueAndDrainingAnswerClassifiedOverload) {
  ServeOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  std::string error;
  // Hold the single worker busy so follow-ups pile into the queue.
  ASSERT_TRUE(FaultPlan::parse("delay:0:400", options.faults, error));
  SolveService service(options);
  Collector collector;
  const auto submit_id = [&](int id) {
    service.submit(request_line(small_scenario(40 + id), id),
                   collector.sink());
  };
  submit_id(0);  // occupies the worker (delayed 400 ms)
  // Give the worker a beat to dequeue id 0 before filling the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  submit_id(1);  // fills the depth-1 queue (or is itself rejected on a
  submit_id(2);  // slow machine where id 0 is still queued)
  submit_id(3);
  const std::vector<Value> responses = collector.wait_for(4);
  ASSERT_EQ(responses.size(), 4u);
  // id 0 was accepted first and must be answered; of ids 1-3, at least
  // two bounce off the depth-1 queue with a classified overload.
  const Value* first = find_id(responses, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->at("ok").as_bool());
  int overloads = 0;
  for (const int id : {1, 2, 3}) {
    const Value* r = find_id(responses, id);
    ASSERT_NE(r, nullptr);
    if (!r->at("ok").as_bool()) {
      EXPECT_EQ(r->at("kind").as_string(), "overload");
      ++overloads;
    }
  }
  EXPECT_GE(overloads, 2);

  service.drain();
  // Post-drain submissions are refused with the same classification.
  Collector late;
  service.submit(request_line(small_scenario(39), 8), late.sink());
  const std::vector<Value> refused = late.wait_for(1);
  ASSERT_EQ(refused.size(), 1u);
  EXPECT_FALSE(refused[0].at("ok").as_bool());
  EXPECT_EQ(refused[0].at("kind").as_string(), "overload");
  EXPECT_EQ(service.stats().overloads, overloads + 1);
}

TEST(SolveServiceTest, DrainAnswersEverythingAcceptedExactlyOnce) {
  ServeOptions options;
  options.workers = 4;
  options.cache_dir = fresh_cache_dir("serve_drain");
  SolveService service(options);
  Collector collector;
  constexpr int kRequests = 48;
  for (int i = 0; i < kRequests; ++i) {
    // 12 distinct keys cycled 4x: exercises all shards plus warm hits.
    service.submit(request_line(small_scenario(30 + (i % 12)), i),
                   collector.sink());
  }
  service.drain();  // must block until every request is answered
  EXPECT_EQ(collector.count(), static_cast<std::size_t>(kRequests));
  const std::vector<Value> responses = collector.wait_for(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    const Value* r = find_id(responses, i);
    ASSERT_NE(r, nullptr) << "request " << i << " was never answered";
    EXPECT_TRUE(r->at("ok").as_bool());
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.received, kRequests);
  EXPECT_EQ(stats.answered, kRequests);
  EXPECT_EQ(stats.solved, 12);
  EXPECT_EQ(stats.served, kRequests - 12);
}

TEST(SolveServiceTest, ProfileRequestsAnswerThroughEveryWarmLayer) {
  // A profile request must flow through the same three layers as a
  // scalar one -- solve+store, in-memory warm hit, disk hit after a
  // reload -- and every answer must carry identical profile bits.
  ServeOptions options;
  options.workers = 1;
  options.cache_dir = fresh_cache_dir("serve_profile_warm");
  SolveService service(options);
  Collector collector;
  Value eps = Value::array();
  eps.push_back(io::encode_double(1e-3));
  eps.push_back(io::encode_double(1e-9));
  Value req = Value::object();
  req.set("schema", Value::number(io::kSchemaVersion))
      .set("id", Value::number(0))
      .set("scenario", io::encode_scenario(small_scenario(50)))
      .set("epsilons", std::move(eps));
  const std::string line = req.dump();

  service.submit(line, collector.sink());
  collector.wait_for(1);
  service.submit(line, collector.sink());  // memory hit
  collector.wait_for(2);
  service.reload();                        // drops the memory layer
  service.submit(line, collector.sink());  // disk hit
  const std::vector<Value> responses = collector.wait_for(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].at("cache").as_string(), "miss");
  EXPECT_EQ(responses[1].at("cache").as_string(), "hit");
  EXPECT_EQ(responses[2].at("cache").as_string(), "hit");
  EXPECT_EQ(responses[2].at("profile").dump(),
            responses[1].at("profile").dump());
  const e2e::DelayProfile cold =
      io::decode_delay_profile(responses[0].at("profile"));
  const e2e::DelayProfile warm =
      io::decode_delay_profile(responses[1].at("profile"));
  ASSERT_EQ(warm.levels.size(), cold.levels.size());
  for (std::size_t i = 0; i < cold.levels.size(); ++i) {
    EXPECT_EQ(warm.levels[i].delay_ms, cold.levels[i].delay_ms);
    EXPECT_EQ(warm.levels[i].sigma, cold.levels[i].sigma);
  }
  EXPECT_EQ(warm.stats.cache_hits, 1);
  EXPECT_EQ(cold.stats.cache_misses, 1);

  service.drain();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.memory_hits, 1);
  EXPECT_EQ(stats.cache.stores, 1);
  EXPECT_EQ(stats.cache.hits, 1);
}

TEST(SolveServiceTest, ProfileAnswersMatchBatchBytesModuloTimings) {
  // The serve path must answer a profile request with run_batch's exact
  // response document (scripts/check_serve.sh diffs the two after
  // normalizing the wall-clock stats fields; here we do the same).
  const std::string line = [&] {
    Value eps = Value::array();
    eps.push_back(io::encode_double(1e-4));
    eps.push_back(io::encode_double(1e-7));
    Value req = Value::object();
    req.set("schema", Value::number(io::kSchemaVersion))
        .set("id", Value::number(3))
        .set("scenario", io::encode_scenario(small_scenario(45)))
        .set("epsilons", std::move(eps));
    return req.dump();
  }();

  ServeOptions options;
  options.workers = 1;
  SolveService service(options);
  Collector collector;
  service.submit(line, collector.sink());
  const std::vector<Value> served = collector.wait_for(1);
  ASSERT_EQ(served.size(), 1u);
  service.drain();

  std::stringstream in(line + "\n");
  std::ostringstream out;
  (void)io::run_batch(in, out, io::BatchOptions{});
  const std::vector<Value> batched = {Value::parse(
      out.str().substr(0, out.str().find('\n')))};

  const auto normalize = [](std::string text) {
    for (const char* field : {"\"scan_ms\":", "\"refine_ms\":"}) {
      std::size_t at = 0;
      while ((at = text.find(field, at)) != std::string::npos) {
        const std::size_t start = at + std::string(field).size();
        std::size_t end = start;
        while (end < text.size() && text[end] != ',' && text[end] != '}') {
          ++end;
        }
        text.replace(start, end - start, "0");
        at = start;
      }
    }
    return text;
  };
  EXPECT_EQ(normalize(served[0].dump()), normalize(batched[0].dump()));
}

}  // namespace
}  // namespace deltanc::serve
