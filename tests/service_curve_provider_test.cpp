// The service-curve-provider lowering contract: Delta-backed specs must
// reproduce Theorem 1 exactly, curve-backed specs must produce their
// published rate-latency constructions (GPS arXiv:1804.08034, fluid DRR
// arXiv:2503.23366, fluid SCED arXiv:1804.08040), and the factory must
// cover every registered kind.
#include "sched/service_curve_provider.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "traffic/ebb.h"

namespace deltanc::sched {
namespace {

std::vector<traffic::StatEnvelope> two_flow_envelopes() {
  const traffic::EbbTraffic flow(1.0, 1.0, 0.5);
  return {flow.sample_path_envelope(0.2), flow.sample_path_envelope(0.2)};
}

TEST(ServiceCurveProvider, DeltaBackedSpecsReproduceTheorem1) {
  const std::vector<traffic::StatEnvelope> envelopes = two_flow_envelopes();
  for (const SchedulerSpec& spec :
       {SchedulerSpec(SchedulerKind::kFifo), SchedulerSpec(SchedulerKind::kBmux),
        SchedulerSpec(SchedulerKind::kSpHigh),
        SchedulerSpec::fixed_delta(2.5)}) {
    const auto provider = make_service_curve_provider(spec);
    ASSERT_NE(provider, nullptr);
    // Delta-backed: no closed-form rate-latency pair (the leftover
    // depends on the cross envelopes and theta).
    EXPECT_FALSE(provider->rate_latency(10.0, ClassLoads{}).has_value())
        << to_string(spec);

    NodeContext context;
    context.capacity = 10.0;
    context.envelopes = envelopes;
    context.flow = 0;
    context.theta = 1.0;
    const StatServiceCurve got = provider->leftover(context);
    const StatServiceCurve want = theorem1_service_curve(
        10.0, spec.to_delta_matrix(envelopes.size(), 0, 1.0), envelopes, 0,
        1.0);
    for (double t : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0}) {
      EXPECT_EQ(got.s.eval(t), want.s.eval(t)) << to_string(spec) << " t=" << t;
    }
    ASSERT_EQ(got.eps.has_value(), want.eps.has_value());
    if (got.eps.has_value()) {
      EXPECT_EQ(got.eps->prefactor(), want.eps->prefactor());
      EXPECT_EQ(got.eps->decay(), want.eps->decay());
    }
  }
}

TEST(ServiceCurveProvider, GpsIsTheWeightShareOfTheLink) {
  const auto provider = make_service_curve_provider(SchedulerSpec::gps(3.0, 1.0));
  const auto rl = provider->rate_latency(100.0, ClassLoads{});
  ASSERT_TRUE(rl.has_value());
  EXPECT_DOUBLE_EQ(rl->rate, 75.0);
  EXPECT_EQ(rl->latency, 0.0);

  // Multi-class: the through class is always index 0 of the weight list.
  const auto three = make_service_curve_provider(
      SchedulerSpec::gps(ClassWeights::of({1.0, 2.0, 1.0})));
  const auto rl3 = three->rate_latency(100.0, ClassLoads{});
  ASSERT_TRUE(rl3.has_value());
  EXPECT_DOUBLE_EQ(rl3->rate, 25.0);
  EXPECT_EQ(rl3->latency, 0.0);
}

TEST(ServiceCurveProvider, DrrAddsOneRoundOfCrossQuantaAsLatency) {
  const auto provider = make_service_curve_provider(SchedulerSpec::drr(2.0, 1.0));
  const auto rl = provider->rate_latency(100.0, ClassLoads{});
  ASSERT_TRUE(rl.has_value());
  EXPECT_DOUBLE_EQ(rl->rate, 100.0 * 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(rl->latency, 1.0 / 100.0);

  const auto three = make_service_curve_provider(
      SchedulerSpec::drr(ClassWeights::of({2.0, 1.0, 1.0})));
  const auto rl3 = three->rate_latency(100.0, ClassLoads{});
  ASSERT_TRUE(rl3.has_value());
  EXPECT_DOUBLE_EQ(rl3->rate, 50.0);
  EXPECT_DOUBLE_EQ(rl3->latency, 2.0 / 100.0);
}

TEST(ServiceCurveProvider, ScedIsLoadProportionalAndFullLinkWhenIdle) {
  const auto provider = make_service_curve_provider(SchedulerSpec::sced());
  const auto rl = provider->rate_latency(100.0, ClassLoads{30.0, 70.0});
  ASSERT_TRUE(rl.has_value());
  EXPECT_DOUBLE_EQ(rl->rate, 30.0);
  EXPECT_EQ(rl->latency, 0.0);

  // Nothing competes: the whole link is the guarantee.
  const auto idle = provider->rate_latency(100.0, ClassLoads{});
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(idle->rate, 100.0);

  EXPECT_THROW((void)provider->rate_latency(100.0, ClassLoads{-1.0, 1.0}),
               std::invalid_argument);
}

TEST(ServiceCurveProvider, CurveBackedLeftoverIsTheDeterministicRateLatency) {
  for (const SchedulerSpec& spec :
       {SchedulerSpec::gps(3.0, 1.0), SchedulerSpec::drr(2.0, 1.0),
        SchedulerSpec::sced()}) {
    const auto provider = make_service_curve_provider(spec);
    NodeContext context;
    context.capacity = 100.0;
    context.loads = ClassLoads{30.0, 70.0};
    const StatServiceCurve curve = provider->leftover(context);
    // Deterministic guarantee: no bounding function.
    EXPECT_FALSE(curve.eps.has_value()) << to_string(spec);
    const auto rl = provider->rate_latency(context.capacity, context.loads);
    ASSERT_TRUE(rl.has_value());
    for (double t : {0.0, 0.005, 0.02, 1.0, 10.0}) {
      const double want = rl->rate * std::max(0.0, t - rl->latency);
      EXPECT_DOUBLE_EQ(curve.s.eval(t), want) << to_string(spec) << " t=" << t;
    }
  }
}

TEST(ServiceCurveProvider, MalformedCapacityIsRejected) {
  const auto provider = make_service_curve_provider(SchedulerSpec::gps(1.0, 1.0));
  NodeContext context;
  context.capacity = 0.0;
  EXPECT_THROW((void)provider->leftover(context), std::invalid_argument);
  EXPECT_THROW((void)provider->rate_latency(-5.0, ClassLoads{}),
               std::invalid_argument);
}

TEST(ServiceCurveProvider, FactoryCoversEveryRegisteredKind) {
  for (const SchedulerSpec& spec :
       {SchedulerSpec(SchedulerKind::kFifo), SchedulerSpec(SchedulerKind::kBmux),
        SchedulerSpec(SchedulerKind::kSpHigh),
        SchedulerSpec(SchedulerKind::kEdf), SchedulerSpec::fixed_delta(1.0),
        SchedulerSpec::gps(1.0, 1.0), SchedulerSpec::drr(1.0, 1.0),
        SchedulerSpec::sced()}) {
    EXPECT_NE(make_service_curve_provider(spec), nullptr) << to_string(spec);
  }
}

}  // namespace
}  // namespace deltanc::sched
