#include "e2e/delay_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"
#include "e2e/solver.h"
#include "e2e/theta_solver.h"

namespace deltanc::e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

PathParams params(int hops, double delta, double rho = 20.0,
                  double rho_c = 30.0) {
  return PathParams{100.0, hops, rho, rho_c, 0.5, 1.0, delta};
}

TEST(ThetaSolver, FifoMatchesPaperFormula) {
  // FIFO (Delta = 0) with X from Eq. (41):
  // theta_h = (h - K) gamma X / (C - (h-1) gamma) for h > K.
  const int hops = 6;
  const PathParams p = params(hops, 0.0);
  const double gamma = 0.9;
  const double sigma = 40.0;
  const int k = 3;
  const double x = sigma / (p.capacity - p.rho_cross - k * gamma);
  for (int h = k + 1; h <= hops; ++h) {
    const double expected =
        (h - k) * gamma * x / (p.capacity - (h - 1) * gamma);
    EXPECT_NEAR(theta_h(p, gamma, sigma, h, x), expected, 1e-9)
        << "h = " << h;
  }
  // For h <= K the constraint already holds at theta = 0.
  for (int h = 1; h <= k; ++h) {
    EXPECT_DOUBLE_EQ(theta_h(p, gamma, sigma, h, x), 0.0) << "h = " << h;
  }
}

TEST(ThetaSolver, BmuxThetaIsRegimeAOnly) {
  const PathParams p = params(4, kInf);
  const double gamma = 0.5, sigma = 25.0;
  for (int h = 1; h <= 4; ++h) {
    const double slack = p.capacity - p.rho_cross - h * gamma;
    EXPECT_NEAR(theta_h(p, gamma, sigma, h, 0.0), sigma / slack, 1e-9);
    // Large X drives theta to zero.
    EXPECT_DOUBLE_EQ(theta_h(p, gamma, sigma, h, sigma), 0.0);
  }
}

TEST(ThetaSolver, SpHighIgnoresCrossRate) {
  const PathParams p = params(4, -kInf);
  const double gamma = 0.5, sigma = 25.0;
  for (int h = 1; h <= 4; ++h) {
    const double ch = p.capacity - (h - 1) * gamma;
    EXPECT_NEAR(theta_h(p, gamma, sigma, h, 0.0), sigma / ch, 1e-9);
  }
}

TEST(ThetaSolver, PositiveDeltaRegimeTransitionIsContinuous) {
  // As X decreases, theta crosses from regime A (theta <= Delta) into
  // regime B; the function of X must be continuous at the switch.
  const PathParams p = params(3, 2.0);
  const double gamma = 0.4, sigma = 200.0;
  const int h = 2;
  const double slack = p.capacity - p.rho_cross - h * gamma;
  const double x_switch = sigma / slack - p.delta;  // theta_a == Delta
  ASSERT_GT(x_switch, 0.0);
  const double below = theta_h(p, gamma, sigma, h, x_switch - 1e-7);
  const double above = theta_h(p, gamma, sigma, h, x_switch + 1e-7);
  EXPECT_NEAR(below, above, 1e-4);
  EXPECT_NEAR(below, p.delta, 1e-4);
}

TEST(ThetaSolver, NegativeDeltaBracketKink) {
  // For Delta < 0 the bracket [X + Delta]_+ vanishes when X < -Delta.
  const PathParams p = params(3, -5.0);
  const double gamma = 0.4, sigma = 30.0;
  const int h = 1;
  const double ch = p.capacity;
  // X below the kink: cross traffic does not appear at all.
  EXPECT_NEAR(theta_h(p, gamma, sigma, h, 0.1), (sigma / ch) - 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(theta_h(p, gamma, sigma, h, 1.0), 0.0);  // clamped
  // X above the kink: the bracket contributes rc (X + Delta).
  const double x = 8.0;
  const double rc = p.rho_cross + gamma;
  EXPECT_NEAR(theta_h(p, gamma, sigma, h, x),
              std::max(0.0, (sigma + rc * (x + p.delta)) / ch - x), 1e-9);
}

TEST(ThetaSolver, SolutionSatisfiesConstraintWithEquality) {
  // Wherever theta_h > 0, the Eq. (38) constraint must bind.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> delta_dist(-10.0, 10.0);
  std::uniform_real_distribution<double> x_dist(0.0, 3.0);
  for (int trial = 0; trial < 60; ++trial) {
    const PathParams p = params(5, delta_dist(rng));
    const double gamma = 0.5, sigma = 35.0;
    const double x = x_dist(rng);
    for (int h = 1; h <= 5; ++h) {
      const double th = theta_h(p, gamma, sigma, h, x);
      const double ch = p.capacity - (h - 1) * gamma;
      const double rc = p.rho_cross + gamma;
      const double lhs =
          ch * (x + th) - rc * std::max(0.0, x + std::min(p.delta, th));
      EXPECT_GE(lhs, sigma - 1e-7);
      if (th > 1e-12) {
        EXPECT_NEAR(lhs, sigma, 1e-6) << "delta=" << p.delta << " h=" << h;
      }
    }
  }
}

TEST(ThetaSolver, ValidatesArguments) {
  const PathParams p = params(3, 0.0);
  EXPECT_THROW((void)theta_h(p, 0.5, 10.0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)theta_h(p, 0.5, 10.0, 4, 0.0), std::invalid_argument);
  EXPECT_THROW((void)theta_h(p, 0.5, 10.0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)theta_h(p, -0.5, 10.0, 1, 0.0), std::invalid_argument);
  // Unstable: C - rho_c - h gamma <= 0.
  const PathParams tight = params(3, 0.0, 20.0, 99.8);
  EXPECT_THROW((void)theta_h(tight, 0.5, 10.0, 1, 0.0),
               std::invalid_argument);
}

TEST(OptimizeDelay, BmuxMatchesEq43) {
  for (int hops : {1, 3, 8}) {
    const PathParams p = params(hops, kInf);
    const double gamma = 0.4, sigma = 50.0;
    const DelayResult r = deltanc::Solver().optimize(p, gamma, sigma);
    EXPECT_NEAR(r.delay, bmux_delay(p, gamma, sigma), 1e-9) << "H=" << hops;
    // Paper: optimal solution is theta_1 = ... = theta_H = 0.
    for (double th : r.theta) EXPECT_NEAR(th, 0.0, 1e-9);
  }
}

TEST(OptimizeDelay, FifoMatchesEq44) {
  for (int hops : {1, 2, 5, 10}) {
    for (double rho_c : {5.0, 30.0, 60.0}) {
      const PathParams p = params(hops, 0.0, 20.0, rho_c);
      const double gamma = 0.25 * p.gamma_limit();
      const double sigma = 50.0;
      const DelayResult r = deltanc::Solver().optimize(p, gamma, sigma);
      const double eq44 = fifo_delay(p, gamma, sigma);
      // The exact optimum can only be at or below the paper's choice.
      EXPECT_LE(r.delay, eq44 + 1e-9) << "H=" << hops << " rho_c=" << rho_c;
      EXPECT_NEAR(r.delay, eq44, 0.02 * eq44)
          << "H=" << hops << " rho_c=" << rho_c;
    }
  }
}

TEST(OptimizeDelay, SpHighMatchesClosedForm) {
  for (int hops : {1, 4, 9}) {
    const PathParams p = params(hops, -kInf);
    const double gamma = 0.3, sigma = 42.0;
    const DelayResult r = deltanc::Solver().optimize(p, gamma, sigma);
    EXPECT_NEAR(r.delay, sp_high_delay(p, gamma, sigma), 1e-9);
  }
}

TEST(OptimizeDelay, ResultIsFeasible) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> delta_dist(-20.0, 20.0);
  for (int trial = 0; trial < 40; ++trial) {
    const PathParams p = params(6, delta_dist(rng));
    const double gamma = 0.5, sigma = 60.0;
    const DelayResult r = deltanc::Solver().optimize(p, gamma, sigma);
    EXPECT_TRUE(feasible(p, gamma, sigma, r.x, r.theta))
        << "delta = " << p.delta;
    EXPECT_NEAR(r.delay, r.x + std::accumulate(r.theta.begin(),
                                               r.theta.end(), 0.0),
                1e-9);
  }
}

TEST(OptimizeDelay, MonotoneInDelta) {
  // A scheduler that gives cross traffic more precedence (larger Delta)
  // can only worsen the through flow's bound.
  const double gamma = 0.5, sigma = 60.0;
  double prev = 0.0;
  for (double delta : {-kInf, -30.0, -5.0, 0.0, 2.0, 10.0, 50.0, kInf}) {
    const PathParams p = params(5, delta);
    const double d = deltanc::Solver().optimize(p, gamma, sigma).delay;
    EXPECT_GE(d, prev - 1e-9) << "delta = " << delta;
    prev = d;
  }
}

TEST(OptimizeDelay, SingleNodeFifoIsSigmaOverC) {
  // Section III-B consistency: for H = 1 and FIFO, the bound collapses
  // to sigma / C (the stable single-node FIFO result).
  const PathParams p = params(1, 0.0);
  const double gamma = 0.5, sigma = 33.0;
  EXPECT_NEAR(deltanc::Solver().optimize(p, gamma, sigma).delay, sigma / p.capacity,
              1e-9);
}

class OptimizeDelayGridProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OptimizeDelayGridProperty, BreakpointEnumerationBeatsFineGrid) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> delta_dist(-15.0, 15.0);
  std::uniform_int_distribution<int> hop_dist(1, 12);
  std::uniform_real_distribution<double> sigma_dist(5.0, 120.0);

  const int hops = hop_dist(rng);
  const PathParams p = params(hops, delta_dist(rng));
  const double gamma = 0.3 * p.gamma_limit();
  const double sigma = sigma_dist(rng);

  const DelayResult r = deltanc::Solver().optimize(p, gamma, sigma);
  // Fine grid over X: the enumerated optimum must be at least as good.
  const double x_hi = 2.0 * sigma / (p.capacity - p.rho_cross -
                                     hops * gamma);
  double grid_best = kInf;
  for (int i = 0; i <= 4000; ++i) {
    const double x = x_hi * static_cast<double>(i) / 4000.0;
    grid_best = std::min(grid_best, objective(p, gamma, sigma, x));
  }
  EXPECT_LE(r.delay, grid_best + 1e-7);
  EXPECT_NEAR(r.delay, grid_best, 1e-3 * grid_best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeDelayGridProperty,
                         ::testing::Range<std::uint32_t>(1, 30));

TEST(KProcedure, NeverBeatsExactOptimum) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> delta_dist(-15.0, 15.0);
  for (int trial = 0; trial < 50; ++trial) {
    const PathParams p = params(7, delta_dist(rng));
    const double gamma = 0.4 * p.gamma_limit();
    const double sigma = 70.0;
    const DelayResult exact = deltanc::Solver().optimize(p, gamma, sigma);
    const DelayResult paper = deltanc::Solver(deltanc::e2e::Method::kPaperK).optimize(p, gamma, sigma);
    EXPECT_GE(paper.delay, exact.delay - 1e-7) << "delta = " << p.delta;
    // The paper claims near-optimality; allow a modest gap.
    EXPECT_LE(paper.delay, 1.25 * exact.delay) << "delta = " << p.delta;
    EXPECT_TRUE(feasible(p, gamma, sigma, paper.x, paper.theta))
        << "delta = " << p.delta;
  }
}

TEST(KProcedure, IndexIsUsuallyCloseToH) {
  // The paper: "in practice, K is usually close to H, resulting in a
  // near-optimal choice".  Verify on a Fig-2-like operating grid.
  for (int hops : {5, 10, 20}) {
    for (double rho_c : {35.0, 60.0}) {
      const PathParams p = params(hops, 0.0, 15.0, rho_c);
      const double gamma = 0.4 * p.gamma_limit();
      const double sigma = sigma_for_epsilon(p, gamma, 1e-9);
      const int k = k_procedure_index(p, gamma, sigma);
      EXPECT_GE(k, hops - 4) << "H=" << hops << " rho_c=" << rho_c;
      EXPECT_LE(k, hops);
    }
  }
}

TEST(KProcedure, BmuxSelectsAllZeroTheta) {
  const PathParams p = params(6, kInf);
  const double gamma = 0.3, sigma = 45.0;
  const DelayResult r = deltanc::Solver(deltanc::e2e::Method::kPaperK).optimize(p, gamma, sigma);
  EXPECT_NEAR(r.delay, bmux_delay(p, gamma, sigma), 1e-6);
}

TEST(ClosedForms, RejectWrongDelta) {
  const PathParams fifo = params(3, 0.0);
  EXPECT_THROW((void)bmux_delay(fifo, 0.3, 10.0), std::invalid_argument);
  const PathParams bmux = params(3, kInf);
  EXPECT_THROW((void)fifo_delay(bmux, 0.3, 10.0), std::invalid_argument);
  EXPECT_THROW((void)sp_high_delay(bmux, 0.3, 10.0), std::invalid_argument);
}

TEST(OptimizeDelay, RejectsGammaOutsideEq32) {
  const PathParams p = params(4, 0.0);
  EXPECT_THROW((void)deltanc::Solver().optimize(p, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)deltanc::Solver().optimize(p, p.gamma_limit(), 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::e2e
