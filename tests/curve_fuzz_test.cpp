// Robustness fuzzing of the curve algebra: long random chains of
// operations must preserve the structural invariants (finite knots,
// strictly increasing x, monotonicity closure under monotone ops) and
// never crash or produce NaNs.  This is the regression net for the
// coordinate-blowup class of bugs (see the far-cap guards in curve.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nc/minplus_ops.h"
#include "test_util.h"

namespace deltanc::nc {
namespace {

void check_invariants(const Curve& c, const char* context) {
  ASSERT_FALSE(c.knots().empty()) << context;
  ASSERT_DOUBLE_EQ(c.knots().front().x, 0.0) << context;
  double prev_x = -1.0;
  for (const Knot& k : c.knots()) {
    ASSERT_TRUE(std::isfinite(k.x) && std::isfinite(k.y) &&
                std::isfinite(k.slope))
        << context;
    ASSERT_GT(k.x, prev_x) << context;
    prev_x = k.x;
  }
}

class CurveFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CurveFuzz, RandomOperationChainsKeepInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> op_dist(0, 6);
  std::uniform_real_distribution<double> shift_dist(0.0, 3.0);

  Curve acc = deltanc::testing::random_monotone_curve(GetParam(), 4);
  for (int step = 0; step < 24; ++step) {
    const auto fresh = deltanc::testing::random_monotone_curve(
        GetParam() * 131 + step, 3);
    switch (op_dist(rng)) {
      case 0:
        acc = pointwise_min(acc, fresh);
        break;
      case 1:
        acc = pointwise_max(acc, fresh);
        break;
      case 2:
        acc = pointwise_add(acc, fresh);
        break;
      case 3:
        acc = minplus_conv(acc, fresh);
        break;
      case 4:
        acc = acc.hshift(shift_dist(rng));
        break;
      case 5:
        acc = acc.gated(shift_dist(rng));
        break;
      default:
        acc = acc.clamp_nonnegative();
        break;
    }
    check_invariants(acc, "after op chain step");
    // Sampled values stay finite and non-negative (all inputs are).
    for (double t : {0.0, 1.0, 7.7, 31.0}) {
      const double v = acc.eval(t);
      ASSERT_TRUE(std::isfinite(v)) << "t = " << t;
      ASSERT_GE(v, -1e-9) << "t = " << t;
    }
  }
}

TEST_P(CurveFuzz, ConvOfMonotoneStaysMonotone) {
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 5);
  const auto g =
      deltanc::testing::random_monotone_curve(GetParam() + 999, 4);
  const Curve c = minplus_conv(f, g);
  check_invariants(c, "conv");
  EXPECT_TRUE(c.is_nondecreasing(1e-6));
}

TEST_P(CurveFuzz, RepeatedSelfConvolutionStaysBounded) {
  // The closure-style iteration that used to overflow coordinates.
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 4);
  Curve acc = f;
  for (int i = 0; i < 10; ++i) {
    acc = pointwise_min(acc, minplus_conv(acc, f));
    check_invariants(acc, "self conv");
  }
  EXPECT_LE(acc.eval(5.0), f.eval(5.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveFuzz,
                         ::testing::Range<std::uint32_t>(1, 25));

}  // namespace
}  // namespace deltanc::nc
