#include "nc/minplus_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "test_util.h"

namespace deltanc::nc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(MinplusConv, RateLatencyComposition) {
  // Classic: beta_{R1,T1} * beta_{R2,T2} = beta_{min(R1,R2), T1+T2}.
  const Curve a = Curve::rate_latency(10.0, 1.0);
  const Curve b = Curve::rate_latency(6.0, 2.5);
  const Curve c = minplus_conv(a, b);
  EXPECT_DOUBLE_EQ(c.eval(3.5), 0.0);
  EXPECT_NEAR(c.eval(4.5), 6.0, 1e-9);
  EXPECT_NEAR(c.eval(10.0), 6.0 * 6.5, 1e-9);
  EXPECT_TRUE(c.is_convex());
}

TEST(MinplusConv, LeakyBucketComposition) {
  // Classic: concave curves passing through the origin convolve to their
  // pointwise minimum, so gamma_{r1,b1} * gamma_{r2,b2} = min of the two.
  const Curve a = Curve::leaky_bucket(2.0, 3.0);
  const Curve b = Curve::leaky_bucket(5.0, 1.0);
  const Curve c = minplus_conv(a, b);
  for (double t : {0.25, 0.5, 2.0 / 3.0, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(c.eval(t), std::min(3.0 + 2.0 * t, 1.0 + 5.0 * t), 1e-9)
        << "t = " << t;
  }
}

TEST(MinplusConv, DeltaShifts) {
  const Curve s = Curve::rate(4.0);
  const Curve c = minplus_conv(s, Curve::delta(2.0));
  EXPECT_DOUBLE_EQ(c.eval(2.0), 0.0);
  EXPECT_NEAR(c.eval(3.0), 4.0, 1e-12);
  const Curve c2 = minplus_conv(Curve::delta(2.0), s);
  EXPECT_NEAR(c2.eval(5.0), 12.0, 1e-12);
}

TEST(MinplusConv, DeltaWithDeltaAddsDelays) {
  const Curve c = minplus_conv(Curve::delta(1.5), Curve::delta(2.0));
  EXPECT_DOUBLE_EQ(c.eval(3.5), 0.0);
  EXPECT_EQ(c.eval(3.6), kInf);
}

TEST(MinplusConv, ZeroIsAbsorbing) {
  // 0(t) = 0 everywhere, so f * 0 = 0 for any f with f >= 0.
  const Curve f = Curve::rate_latency(3.0, 1.0);
  const Curve c = minplus_conv(f, Curve::zero());
  for (double t : {0.0, 1.0, 5.0}) EXPECT_DOUBLE_EQ(c.eval(t), 0.0);
}

TEST(MinplusConv, NonMonotoneOperandIsHandledExactly) {
  // Theorem-1 leftover curves can jump downward; the convolution must
  // still match the brute-force infimum.
  const Curve dippy({{0.0, 0.0, 3.0}, {2.0, 1.0, 3.0}});  // drop at t = 2
  const Curve s = Curve::rate_latency(2.0, 0.5);
  const Curve c = minplus_conv(dippy, s);
  for (double t : {0.3, 1.0, 2.0, 2.4, 3.0, 5.0}) {
    EXPECT_NEAR(c.eval(t), minplus_conv_numeric_at(dippy, s, t, 20000), 1e-3)
        << "t = " << t;
  }
}

TEST(MinplusConv, FoldOverSpan) {
  const std::vector<Curve> path{Curve::rate_latency(10.0, 1.0),
                                Curve::rate_latency(8.0, 0.5),
                                Curve::rate_latency(12.0, 2.0)};
  const Curve net = minplus_conv(std::span<const Curve>(path));
  EXPECT_DOUBLE_EQ(net.eval(3.5), 0.0);
  EXPECT_NEAR(net.eval(4.5), 8.0, 1e-9);
  EXPECT_THROW(minplus_conv(std::span<const Curve>()), std::invalid_argument);
}

TEST(MinplusConv, GatedServiceCurveConvolution) {
  // Curves of the Theorem-1 shape: zero up to theta, then affine with a
  // jump -- convolving two of them must match brute force.
  const Curve s1 = Curve::affine(5.0, 3.0).gated(2.0);
  const Curve s2 = Curve::affine(2.0, 4.0).gated(1.0);
  const Curve c = minplus_conv(s1, s2);
  for (double t : {0.0, 1.0, 2.9, 3.0, 3.5, 5.0, 8.0}) {
    EXPECT_NEAR(c.eval(t), minplus_conv_numeric_at(s1, s2, t, 20000), 2e-3)
        << "t = " << t;
  }
}

class ConvPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ConvPropertyTest, ExactMatchesNumericGrid) {
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 4);
  const auto g = deltanc::testing::random_monotone_curve(GetParam() + 500, 3);
  const Curve c = minplus_conv(f, g);
  const double horizon = f.last_knot_x() + g.last_knot_x() + 4.0;
  // Start just above 0: at t = 0 exactly the representation shows the
  // right-limit (0+) value while the true convolution is 0 there.
  for (int i = 1; i <= 60; ++i) {
    const double t = horizon * static_cast<double>(i) / 60.0;
    const double exact = c.eval(t);
    const double numeric = minplus_conv_numeric_at(f, g, t, 6000);
    // The numeric grid can only overshoot the true infimum.
    ASSERT_LE(exact, numeric + 1e-9) << "t = " << t;
    ASSERT_NEAR(exact, numeric, 5e-3 * (1.0 + std::abs(numeric)))
        << "t = " << t;
  }
}

TEST_P(ConvPropertyTest, Commutativity) {
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 4);
  const auto g = deltanc::testing::random_monotone_curve(GetParam() + 500, 3);
  const Curve fg = minplus_conv(f, g);
  const Curve gf = minplus_conv(g, f);
  const double horizon = f.last_knot_x() + g.last_knot_x() + 4.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = horizon * static_cast<double>(i) / 100.0 + 1e-7;
    ASSERT_NEAR(fg.eval(t), gf.eval(t), 1e-8) << "t = " << t;
  }
}

TEST_P(ConvPropertyTest, AssociativityOnSamples) {
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 3);
  const auto g = deltanc::testing::random_monotone_curve(GetParam() + 500, 3);
  const auto h = deltanc::testing::random_monotone_curve(GetParam() + 900, 2);
  const Curve left = minplus_conv(minplus_conv(f, g), h);
  const Curve right = minplus_conv(f, minplus_conv(g, h));
  const double horizon =
      f.last_knot_x() + g.last_knot_x() + h.last_knot_x() + 4.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = horizon * static_cast<double>(i) / 100.0 + 1e-7;
    ASSERT_NEAR(left.eval(t), right.eval(t), 1e-7) << "t = " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvPropertyTest,
                         ::testing::Range<std::uint32_t>(1, 20));

TEST(PseudoInverse, BasicLevels) {
  const Curve s = Curve::rate_latency(2.0, 1.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 4.0), 3.0);
}

TEST(PseudoInverse, PlateauJumpsOver) {
  // s has a plateau at value 2 on [1,3], then resumes.
  const Curve s({{0.0, 0.0, 2.0}, {1.0, 2.0, 0.0}, {3.0, 2.0, 1.0}});
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 2.5), 3.5);
}

TEST(PseudoInverse, UpwardJumpIsInverted) {
  const Curve s({{0.0, 0.0, 0.0}, {2.0, 5.0, 1.0}});  // jump to 5 at t=2
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(s, 6.0), 3.0);
}

TEST(PseudoInverse, DeltaTailReachesEverything) {
  const Curve d = Curve::delta(4.0);
  EXPECT_DOUBLE_EQ(pseudo_inverse_at(d, 100.0), 4.0);
}

TEST(PseudoInverse, BoundedCurveNeverReaches) {
  const Curve s({{0.0, 0.0, 1.0}, {2.0, 2.0, 0.0}});  // saturates at 2
  EXPECT_EQ(pseudo_inverse_at(s, 3.0), kInf);
}

TEST(HorizontalDeviation, LeakyBucketVsRateLatency) {
  // Classic single-node bound: d = T + B / R for r <= R.
  const Curve e = Curve::leaky_bucket(2.0, 6.0);
  const Curve s = Curve::rate_latency(3.0, 1.5);
  EXPECT_NEAR(horizontal_deviation(e, s), 1.5 + 6.0 / 3.0, 1e-9);
}

TEST(HorizontalDeviation, UnstableIsInfinite) {
  const Curve e = Curve::leaky_bucket(5.0, 1.0);
  const Curve s = Curve::rate(3.0);
  EXPECT_EQ(horizontal_deviation(e, s), kInf);
}

TEST(HorizontalDeviation, DeltaServiceGivesItsDelay) {
  const Curve e = Curve::leaky_bucket(1.0, 2.0);
  EXPECT_DOUBLE_EQ(horizontal_deviation(e, Curve::delta(3.0)), 3.0);
}

TEST(HorizontalDeviation, ZeroWhenServiceDominates) {
  const Curve e = Curve::rate(1.0);
  const Curve s = Curve::rate(2.0);
  EXPECT_DOUBLE_EQ(horizontal_deviation(e, s), 0.0);
}

TEST(HorizontalDeviation, ConcaveEnvelopeInteriorMaximum) {
  // Multi-segment envelope whose critical time is at the segment change.
  const std::vector<std::pair<double, double>> buckets{{10.0, 0.0},
                                                       {1.0, 9.0}};
  const Curve e = Curve::multi_leaky_bucket(buckets);
  const Curve s = Curve::rate(4.0);
  // Crossover at t=1: E(1) = 10; needed service time = 10/4 = 2.5;
  // deviation = 2.5 - 1 = 1.5 (maximal there).
  EXPECT_NEAR(horizontal_deviation(e, s), 1.5, 1e-9);
}

TEST(VerticalDeviation, BacklogBoundClassic) {
  // v(E, beta_{R,T}) = E(T) for concave E with rate <= R: B + r T.
  const Curve e = Curve::leaky_bucket(2.0, 6.0);
  const Curve s = Curve::rate_latency(3.0, 1.5);
  EXPECT_NEAR(vertical_deviation(e, s), 6.0 + 2.0 * 1.5, 1e-9);
}

TEST(VerticalDeviation, UnstableIsInfinite) {
  EXPECT_EQ(vertical_deviation(Curve::leaky_bucket(5.0, 0.0), Curve::rate(1.0)),
            kInf);
}

TEST(MinplusDeconv, LeakyBucketThroughRateLatency) {
  // gamma_{r,b} o/ beta_{R,T} = gamma_{r, b + r T} for r <= R.
  const Curve e = Curve::leaky_bucket(2.0, 3.0);
  const Curve s = Curve::rate_latency(5.0, 2.0);
  const Curve out = minplus_deconv(e, s);
  for (double t : {0.0, 1.0, 4.0}) {
    EXPECT_NEAR(out.eval(t), 3.0 + 2.0 * (t + 2.0), 1e-9) << "t = " << t;
  }
}

TEST(MinplusDeconv, UnstableThrows) {
  EXPECT_THROW(
      minplus_deconv(Curve::leaky_bucket(5.0, 0.0), Curve::rate(1.0)),
      std::domain_error);
}

TEST(MinplusDeconvAt, MatchesBruteForce) {
  const Curve e = Curve::multi_leaky_bucket(
      std::vector<std::pair<double, double>>{{8.0, 0.0}, {2.0, 5.0}});
  const Curve s = Curve::rate_latency(4.0, 1.0);
  for (double t : {0.0, 0.5, 2.0, 6.0}) {
    double brute = -kInf;
    for (int i = 0; i <= 40000; ++i) {
      const double u = 20.0 * static_cast<double>(i) / 40000.0;
      brute = std::max(brute, e.eval(t + u) - s.eval(u));
    }
    EXPECT_NEAR(minplus_deconv_at(e, s, t), brute, 1e-3) << "t = " << t;
  }
}

TEST(MinplusConvServiceProperty, ConvolutionIsBelowBothWhenPassingZero) {
  // For service curves with S(0) = 0, S1 * S2 <= min(S1, S2).
  const Curve s1 = Curve::rate_latency(7.0, 1.0);
  const Curve s2 = Curve::rate_latency(4.0, 0.5);
  const Curve c = minplus_conv(s1, s2);
  for (double t : {0.5, 1.0, 2.0, 5.0, 8.0}) {
    EXPECT_LE(c.eval(t), std::min(s1.eval(t), s2.eval(t)) + 1e-12);
  }
}

}  // namespace
}  // namespace deltanc::nc
