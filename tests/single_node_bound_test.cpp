#include "e2e/solver.h"
#include "sched/single_node_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "e2e/delay_bound.h"
#include "e2e/network_epsilon.h"
#include "sim/mmoo_source.h"
#include "sim/node.h"
#include "sim/stats.h"

namespace deltanc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kC = 100.0;

/// Two linear EBB-style envelopes: through (rate 20) and cross (rate 30),
/// both with unit prefactor and the given decay.
std::vector<traffic::StatEnvelope> linear_envelopes(double gamma,
                                                    double alpha) {
  const auto env = [&](double rate) {
    return traffic::EbbTraffic(1.0, rate, alpha).sample_path_envelope(gamma);
  };
  return {env(20.0), env(30.0)};
}

TEST(SingleNodeBound, FifoIsSigmaOverC) {
  // Linear envelopes and FIFO: d(sigma) = sigma / C (Section III-B).
  const auto env = linear_envelopes(0.5, 0.5);
  for (double sigma : {10.0, 40.0, 120.0}) {
    EXPECT_NEAR(single_node_delay_for_sigma(kC, DeltaMatrix::fifo(2), env, 0,
                                            sigma),
                sigma / kC, 1e-6);
  }
}

TEST(SingleNodeBound, BmuxIsSigmaOverLeftover) {
  // Blind multiplexing: d(sigma) = sigma / (C - rho_c - gamma).
  const double gamma = 0.5;
  const auto env = linear_envelopes(gamma, 0.5);
  const double sigma = 50.0;
  EXPECT_NEAR(single_node_delay_for_sigma(kC, DeltaMatrix::bmux(2, 0), env, 0,
                                          sigma),
              sigma / (kC - 30.0 - gamma), 1e-6);
}

TEST(SingleNodeBound, MatchesEndToEndMachineryAtH1) {
  // The H = 1 end-to-end solve and the direct single-node analysis must
  // coincide for the same (gamma, sigma).
  const double gamma = 0.5, alpha = 0.5;
  const auto env = linear_envelopes(gamma, alpha);
  for (double delta : {-10.0, -2.0, 0.0, 3.0, kInf}) {
    const e2e::PathParams p{kC, 1, 20.0, 30.0, alpha, 1.0, delta};
    const double sigma = 60.0;
    const double e2e_d = deltanc::Solver().optimize(p, gamma, sigma).delay;
    const double back = std::isfinite(delta) ? -delta : -kInf;
    const DeltaMatrix dm({{0.0, delta}, {back, 0.0}});
    const double node_d =
        single_node_delay_for_sigma(kC, dm, env, 0, sigma);
    EXPECT_NEAR(node_d, e2e_d, 1e-5 * (1.0 + e2e_d)) << "delta = " << delta;
  }
}

TEST(SingleNodeBound, EpsilonPathUsesInfConvolution) {
  // d at target epsilon = d at sigma(epsilon) of the combined bound.
  const double gamma = 0.5, alpha = 0.5;
  const auto env = linear_envelopes(gamma, alpha);
  const DeltaMatrix dm = DeltaMatrix::fifo(2);
  const double eps = 1e-6;
  const double sigma =
      nc::inf_convolution(env[0].eps, env[1].eps).sigma_for(eps);
  EXPECT_NEAR(single_node_delay_bound(kC, dm, env, 0, eps),
              single_node_delay_for_sigma(kC, dm, env, 0, sigma), 1e-9);
}

TEST(SingleNodeBound, EdfOrderingAcrossThreeFlows) {
  // Three flows with EDF: tighter own deadline -> smaller bound.
  const double gamma = 0.5, alpha = 0.5;
  const auto mk = [&](double rate) {
    return traffic::EbbTraffic(1.0, rate, alpha).sample_path_envelope(gamma);
  };
  const std::vector<traffic::StatEnvelope> env{mk(20.0), mk(25.0), mk(15.0)};
  const DeltaMatrix dm = DeltaMatrix::edf(std::vector<double>{2.0, 8.0, 20.0});
  const double d0 = single_node_delay_bound(kC, dm, env, 0, 1e-9);
  const double d1 = single_node_delay_bound(kC, dm, env, 1, 1e-9);
  const double d2 = single_node_delay_bound(kC, dm, env, 2, 1e-9);
  EXPECT_LT(d0, d1);
  EXPECT_LT(d1, d2);
}

TEST(SingleNodeBound, OverloadIsInfinite) {
  const auto mk = [&](double rate) {
    return traffic::EbbTraffic(1.0, rate, 0.5).sample_path_envelope(0.5);
  };
  const std::vector<traffic::StatEnvelope> env{mk(60.0), mk(50.0)};
  EXPECT_EQ(single_node_delay_for_sigma(kC, DeltaMatrix::fifo(2), env, 0,
                                        10.0),
            kInf);
}

TEST(SingleNodeBound, Validation) {
  const auto env = linear_envelopes(0.5, 0.5);
  EXPECT_THROW((void)single_node_delay_bound(0.0, DeltaMatrix::fifo(2), env,
                                             0, 1e-9),
               std::invalid_argument);
  EXPECT_THROW((void)single_node_delay_bound(kC, DeltaMatrix::fifo(3), env, 0,
                                             1e-9),
               std::invalid_argument);
  EXPECT_THROW((void)single_node_delay_bound(kC, DeltaMatrix::fifo(2), env, 0,
                                             0.0),
               std::invalid_argument);
  EXPECT_THROW((void)single_node_delay_for_sigma(kC, DeltaMatrix::fifo(2),
                                                 env, 0, -1.0),
               std::invalid_argument);
}

TEST(SingleNodeBound, DominatesSimulatedDelayQuantile) {
  // Monte-Carlo anchor: the bound at epsilon = 1e-3 must dominate the
  // empirical 99.9th-percentile delay of a single FIFO node.
  const auto model = traffic::MmooSource::paper_source();
  const int n_thr = 250, n_cross = 250;
  // Analytic side: EBB envelopes from the effective bandwidth.
  const double s = 0.1, gamma = 1.0;
  const auto mk = [&](int n) {
    return traffic::EbbTraffic(1.0, n * model.effective_bandwidth(s), s)
        .sample_path_envelope(gamma);
  };
  const std::vector<traffic::StatEnvelope> env{mk(n_thr), mk(n_cross)};
  const double bound =
      single_node_delay_bound(kC, DeltaMatrix::fifo(2), env, 0, 1e-3);

  // Simulation side.
  sim::Xoshiro256ss rng(31);
  sim::MmooAggregateSim thr(model, n_thr, rng);
  sim::Xoshiro256ss crng = rng;
  crng.jump();
  sim::MmooAggregateSim cross(model, n_cross, crng);
  sim::Node node(kC, sim::make_fifo());
  sim::DelayRecorder delays;
  std::vector<sim::Chunk> done;
  std::uint64_t seq = 0;
  for (int t = 0; t < 150000; ++t) {
    const double a = thr.step(rng);
    if (a > 0.0) node.arrive(sim::Chunk{0, a, a, t, t, 0.0, seq++});
    const double c = cross.step(crng);
    if (c > 0.0) node.arrive(sim::Chunk{1, c, c, t, t, 0.0, seq++});
    done.clear();
    node.advance(&done);
    for (const auto& chunk : done) {
      if (chunk.flow == 0 && chunk.origin_slot > 1000) {
        delays.add(static_cast<double>(t + 1 - chunk.origin_slot));
      }
    }
  }
  EXPECT_LE(delays.quantile(0.999), bound);
}

}  // namespace
}  // namespace deltanc::sched
