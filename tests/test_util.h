// Shared helpers for the deltanc test suite: deterministic random curve
// generators used by the property-based sweeps.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "nc/curve.h"

namespace deltanc::testing {

/// Deterministically generates a non-negative, non-decreasing piecewise
/// linear curve with `segments` random segments (random slopes, lengths,
/// and occasional upward jumps).  Suitable as an envelope or service curve
/// in property tests.
inline nc::Curve random_monotone_curve(std::uint32_t seed, int segments,
                                       double max_slope = 5.0,
                                       double max_len = 4.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> slope_dist(0.0, max_slope);
  std::uniform_real_distribution<double> len_dist(0.1, max_len);
  std::uniform_real_distribution<double> jump_dist(0.0, 2.0);
  std::bernoulli_distribution do_jump(0.3);

  std::vector<nc::Knot> knots;
  double x = 0.0;
  double y = do_jump(rng) ? jump_dist(rng) : 0.0;
  for (int i = 0; i < segments; ++i) {
    const double slope = slope_dist(rng);
    knots.push_back({x, y, slope});
    const double len = len_dist(rng);
    y += slope * len;
    if (do_jump(rng)) y += jump_dist(rng);
    x += len;
  }
  return nc::Curve(std::move(knots));
}

/// A random concave curve through the origin region (value 0 at x=0 is not
/// required; envelopes may jump at 0): slopes strictly decreasing.
inline nc::Curve random_concave_curve(std::uint32_t seed, int segments,
                                      double start_slope = 8.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> len_dist(0.2, 3.0);
  std::uniform_real_distribution<double> burst_dist(0.0, 3.0);
  std::uniform_real_distribution<double> frac(0.4, 0.9);

  std::vector<nc::Knot> knots;
  double x = 0.0;
  double y = burst_dist(rng);
  double slope = start_slope;
  for (int i = 0; i < segments; ++i) {
    knots.push_back({x, y, slope});
    const double len = len_dist(rng);
    y += slope * len;
    x += len;
    slope *= frac(rng);
  }
  return nc::Curve(std::move(knots));
}

}  // namespace deltanc::testing
