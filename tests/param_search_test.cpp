#include "e2e/param_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "e2e/additive_baseline.h"
#include "e2e/delay_bound.h"
#include "e2e/network_epsilon.h"
#include "e2e/solver.h"

namespace deltanc::e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Scenario paper_scenario(int hops, int n_through, int n_cross,
                        sched::SchedulerKind sched) {
  Scenario sc;
  sc.hops = hops;
  sc.n_through = n_through;
  sc.n_cross = n_cross;
  sc.scheduler = sched;
  return sc;
}

TEST(ParamSearch, MaxStableSBehaviour) {
  // 100 + 100 paper flows at ~0.149 Mbps each on 100 Mbps: stable, and
  // there is a finite s beyond which eb exceeds the fair share.
  Scenario sc = paper_scenario(2, 100, 100, sched::SchedulerKind::kFifo);
  const double s_max = max_stable_s(sc);
  EXPECT_TRUE(std::isfinite(s_max));
  EXPECT_GT(s_max, 0.0);
  const double at_limit =
      (sc.n_through + sc.n_cross) * sc.source.effective_bandwidth(s_max);
  EXPECT_LT(at_limit, sc.capacity);
  // Overload: mean rate alone exceeds capacity.
  sc.n_through = 400;
  sc.n_cross = 400;
  EXPECT_EQ(max_stable_s(sc), 0.0);
  // Peak rate fits entirely: every s is stable.
  sc.n_through = 2;
  sc.n_cross = 2;
  EXPECT_EQ(max_stable_s(sc), kInf);
}

TEST(ParamSearch, UnstableScenarioGivesInfiniteBound) {
  const Scenario sc = paper_scenario(3, 400, 400, sched::SchedulerKind::kBmux);
  const BoundResult r = deltanc::Solver().solve(sc);
  EXPECT_EQ(r.delay_ms, kInf);
}

TEST(ParamSearch, BoundsArePositiveFiniteAndOrdered) {
  // At moderate utilization: SP-high <= EDF-favoured <= FIFO <= BMUX.
  const int n = 168;  // ~50% total with N0 = Nc
  const BoundResult bmux =
      deltanc::Solver().solve(paper_scenario(4, n, n, sched::SchedulerKind::kBmux));
  const BoundResult fifo =
      deltanc::Solver().solve(paper_scenario(4, n, n, sched::SchedulerKind::kFifo));
  const BoundResult sp =
      deltanc::Solver().solve(paper_scenario(4, n, n, sched::SchedulerKind::kSpHigh));
  const BoundResult edf =
      deltanc::Solver().solve(paper_scenario(4, n, n, sched::SchedulerKind::kEdf));
  ASSERT_TRUE(std::isfinite(bmux.delay_ms));
  EXPECT_GT(sp.delay_ms, 0.0);
  EXPECT_LE(sp.delay_ms, edf.delay_ms + 1e-6);
  EXPECT_LE(edf.delay_ms, fifo.delay_ms + 1e-6);
  EXPECT_LE(fifo.delay_ms, bmux.delay_ms + 1e-6);
}

TEST(ParamSearch, FifoApproachesBmuxOnLongPaths) {
  // The paper's headline observation (Fig. 2): FIFO bounds become
  // indistinguishable from BMUX already at H = 5.
  const int n_cross = 236;  // U ~ 50% with N0 = 100
  const double f2 =
      deltanc::Solver().solve(paper_scenario(2, 100, n_cross, sched::SchedulerKind::kFifo))
          .delay_ms;
  const double b2 =
      deltanc::Solver().solve(paper_scenario(2, 100, n_cross, sched::SchedulerKind::kBmux))
          .delay_ms;
  const double f5 =
      deltanc::Solver().solve(paper_scenario(5, 100, n_cross, sched::SchedulerKind::kFifo))
          .delay_ms;
  const double b5 =
      deltanc::Solver().solve(paper_scenario(5, 100, n_cross, sched::SchedulerKind::kBmux))
          .delay_ms;
  EXPECT_LT(f2, 0.75 * b2);             // visibly different at H = 2
  EXPECT_GT(f5, 0.95 * b5);             // indistinguishable at H = 5
}

TEST(ParamSearch, EdfKeepsItsAdvantageOnLongPaths) {
  // EDF with d*_c = 10 d*_0 stays well below BMUX even at H = 10 --
  // scheduling *does* matter on long paths.
  const int n_cross = 236;
  const double e10 =
      deltanc::Solver().solve(paper_scenario(10, 100, n_cross, sched::SchedulerKind::kEdf))
          .delay_ms;
  const double b10 =
      deltanc::Solver().solve(paper_scenario(10, 100, n_cross, sched::SchedulerKind::kBmux))
          .delay_ms;
  ASSERT_TRUE(std::isfinite(e10));
  EXPECT_LT(e10, 0.6 * b10);
}

TEST(ParamSearch, EdfFixedPointIsSelfConsistent) {
  // Re-solving with the resolved Delta must reproduce the fixed point.
  const Scenario sc = paper_scenario(5, 150, 150, sched::SchedulerKind::kEdf);
  const BoundResult r = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(r.delay_ms));
  const sched::EdfFactors& edf = sc.scheduler.edf_factors();
  const double factor_gap = edf.own_factor - edf.cross_factor;
  EXPECT_NEAR(r.delta, factor_gap * r.delay_ms / sc.hops,
              1e-4 * std::abs(r.delta));
  const BoundResult again =
      deltanc::Solver(Method::kExactOpt).solve_at(sc, r.delta);
  EXPECT_NEAR(again.delay_ms, r.delay_ms, 5e-3 * r.delay_ms);
}

TEST(ParamSearch, BestForDeltaNeverWorseThanDenseScan) {
  // Regression for the refinement bug: the final re-solve used to happen
  // at the *refined* s even when the coarse scan had already found a
  // better point, so the returned bound could exceed the scan optimum.
  // A dense brute-force (s, gamma) grid built from the public primitives
  // must never beat the search by more than grid resolution.
  const Scenario sc = paper_scenario(3, 100, 200, sched::SchedulerKind::kFifo);
  for (double delta : {0.0, kInf, -kInf}) {
    SCOPED_TRACE(delta);
    const BoundResult r = deltanc::Solver(Method::kExactOpt).solve_at(sc, delta);
    ASSERT_TRUE(std::isfinite(r.delay_ms));
    const double s_lo = 1e-4;
    const double s_hi = max_stable_s(sc) * 0.999;
    double dense_best = kInf;
    for (int i = 0; i <= 160; ++i) {
      const double s = s_lo * std::pow(s_hi / s_lo, i / 160.0);
      const double eb = sc.source.effective_bandwidth(s);
      const PathParams p{sc.capacity, sc.hops, sc.n_through * eb,
                         sc.n_cross * eb, s, 1.0, delta};
      const double glim = p.gamma_limit();
      if (!(glim > 0.0)) continue;
      for (int j = 1; j <= 120; ++j) {
        const double gamma = glim * j / 121.0;
        const double sigma = sigma_for_epsilon(p, gamma, sc.epsilon);
        dense_best = std::min(dense_best,
                              deltanc::Solver().optimize(p, gamma, sigma).delay);
      }
    }
    EXPECT_LE(r.delay_ms, dense_best * 1.001);
    // The returned tuple is the point the search actually evaluated:
    // re-solving at (s, gamma, sigma) reproduces delay_ms exactly.
    const double eb = sc.source.effective_bandwidth(r.s);
    const PathParams p{sc.capacity, sc.hops, sc.n_through * eb,
                       sc.n_cross * eb, r.s, 1.0, delta};
    EXPECT_EQ(sigma_for_epsilon(p, r.gamma, sc.epsilon), r.sigma);
    EXPECT_EQ(deltanc::Solver().optimize(p, r.gamma, r.sigma).delay, r.delay_ms);
  }
}

TEST(ParamSearch, EdfReturnsConsistentTuple) {
  // Regression for the fixed-point bug: delay_ms used to be the damped
  // average while gamma/s/sigma came from the last solve at a different
  // Delta.  After the final re-solve, every field describes one solve.
  const Scenario sc = paper_scenario(5, 150, 150, sched::SchedulerKind::kEdf);
  const BoundResult r = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(r.delay_ms));
  EXPECT_TRUE(r.stats.edf_converged);
  EXPECT_GT(r.stats.edf_iterations, 0);
  const double eb = sc.source.effective_bandwidth(r.s);
  const PathParams p{sc.capacity, sc.hops, sc.n_through * eb,
                     sc.n_cross * eb, r.s, 1.0, r.delta};
  EXPECT_EQ(sigma_for_epsilon(p, r.gamma, sc.epsilon), r.sigma);
  EXPECT_EQ(deltanc::Solver().optimize(p, r.gamma, r.sigma).delay, r.delay_ms);
  // And the resolved Delta agrees with the returned delay to the fixed
  // point's own tolerance.
  const sched::EdfFactors& edf = sc.scheduler.edf_factors();
  const double factor_gap = edf.own_factor - edf.cross_factor;
  EXPECT_NEAR(r.delta, factor_gap * r.delay_ms / sc.hops,
              1e-5 * std::abs(r.delta));
}

TEST(ParamSearch, SolveStatsCountTheWork) {
  const Scenario sc = paper_scenario(4, 100, 200, sched::SchedulerKind::kFifo);
  const BoundResult r = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(r.delay_ms));
  EXPECT_GT(r.stats.optimize_evals, 0);
  // One sigma evaluation per optimizer evaluation (both happen inside
  // the gamma inner loop).
  EXPECT_EQ(r.stats.sigma_evals, r.stats.optimize_evals);
  // Memoization: distinct eb(s) computations are one-per-s-probe, far
  // fewer than the per-gamma optimizer evaluations.
  EXPECT_GT(r.stats.eb_evals, 0);
  EXPECT_LT(r.stats.eb_evals * 10, r.stats.optimize_evals);
  EXPECT_EQ(r.stats.edf_iterations, 0);  // no fixed point for FIFO
  EXPECT_TRUE(r.stats.edf_converged);
  EXPECT_GE(r.stats.scan_ms, 0.0);
  EXPECT_GE(r.stats.refine_ms, 0.0);

  SolveStats sum;
  sum += r.stats;
  sum += r.stats;
  EXPECT_EQ(sum.optimize_evals, 2 * r.stats.optimize_evals);
  EXPECT_EQ(sum.edf_iterations, 0);
  EXPECT_TRUE(sum.edf_converged);
}

TEST(ParamSearch, Fig2NonEdfBoundsArePinned) {
  // The exact doubles of the Fig. 2 (H = 5, eps = 1e-6) grid for the
  // delta-independent schedulers, pinned bit-for-bit: the hot-path
  // refactoring (workspace reuse, eb memoization, hoisted sigma) must
  // not perturb any non-EDF result.  Regenerate only for an intentional
  // algorithm change (print with %a).
  struct Golden {
    int n_cross;
    sched::SchedulerKind sched;
    double delay_ms, gamma, s;
  };
  const Golden goldens[] = {
      {67, sched::SchedulerKind::kFifo, 0x1.6126458d64984p+4, 0x1.8ceaed36017b9p-1,
       0x1.7f822a740c65ap-4},
      {67, sched::SchedulerKind::kBmux, 0x1.62f9aace0d634p+4, 0x1.73257fd5cbeb3p-1,
       0x1.80af0e1516472p-4},
      {67, sched::SchedulerKind::kSpHigh, 0x1.a80e65f9ad2c8p+3, 0x1.7f877ff7d2f14p-1,
       0x1.801e6bab8aa78p-4},
      {202, sched::SchedulerKind::kFifo, 0x1.184f61904a5b3p+6, 0x1.75cc06e469a8cp-1,
       0x1.7afa88467c891p-5},
      {202, sched::SchedulerKind::kBmux, 0x1.1bf9a680e7466p+6, 0x1.35bbf06189289p-1,
       0x1.78367fc1ae58fp-5},
      {202, sched::SchedulerKind::kSpHigh, 0x1.8b064d292a4p+4, 0x1.4e0269a4f6d63p-1,
       0x1.b2412245fae83p-5},
      {404, sched::SchedulerKind::kFifo, 0x1.49503568d5f88p+8, 0x1.d911a18f66e76p-2,
       0x1.5215bca99053ep-6},
      {404, sched::SchedulerKind::kBmux, 0x1.548cb87dd5bafp+8, 0x1.2372bd72b0a24p-2,
       0x1.51150d427a48cp-6},
      {404, sched::SchedulerKind::kSpHigh, 0x1.113af9313e434p+6, 0x1.103e84dabccdap-2,
       0x1.604ba6698ff01p-6},
      {538, sched::SchedulerKind::kFifo, 0x1.053936dc61ecp+11, 0x1.6b2a8a7ee6f0ep-5,
       0x1.1968dc51fd566p-8},
      {538, sched::SchedulerKind::kBmux, 0x1.4cf730845299bp+11, 0x1.7220150ed15c7p-5,
       0x1.19211a78e7816p-8},
      {538, sched::SchedulerKind::kSpHigh, 0x1.a25363d608cdcp+8, 0x1.657bb90fb379ep-5,
       0x1.19a3740923946p-8},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(testing::Message() << "Nc=" << g.n_cross << " sched="
                                    << static_cast<int>(g.sched));
    Scenario sc = paper_scenario(5, 100, g.n_cross, g.sched);
    sc.epsilon = 1e-6;
    const BoundResult r = deltanc::Solver().solve(sc);
    EXPECT_EQ(r.delay_ms, g.delay_ms);
    EXPECT_EQ(r.gamma, g.gamma);
    EXPECT_EQ(r.s, g.s);
  }
}

TEST(ParamSearch, PaperKMethodIsCloseToExact) {
  const Scenario sc = paper_scenario(5, 100, 236, sched::SchedulerKind::kFifo);
  const BoundResult exact = deltanc::Solver(Method::kExactOpt).solve(sc);
  const BoundResult paper = deltanc::Solver(Method::kPaperK).solve(sc);
  EXPECT_GE(paper.delay_ms, exact.delay_ms - 1e-6);
  EXPECT_LE(paper.delay_ms, 1.1 * exact.delay_ms);
}

TEST(ParamSearch, DelayGrowsWithUtilization) {
  double prev = 0.0;
  for (int n_cross : {50, 150, 250, 350}) {
    const double d =
        deltanc::Solver().solve(paper_scenario(3, 100, n_cross, sched::SchedulerKind::kFifo))
            .delay_ms;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ParamSearch, DelayGrowsWithPathLength) {
  double prev = 0.0;
  for (int hops : {1, 2, 4, 8}) {
    const double d =
        deltanc::Solver().solve(paper_scenario(hops, 100, 200, sched::SchedulerKind::kBmux))
            .delay_ms;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ParamSearch, NearlyLinearScalingInH) {
  // Theta(H log H): between H = 4 and H = 16 the bound grows by a factor
  // well below quadratic scaling (16x would be quadratic: ratio 16).
  const double d4 =
      deltanc::Solver().solve(paper_scenario(4, 100, 100, sched::SchedulerKind::kBmux))
          .delay_ms;
  const double d16 =
      deltanc::Solver().solve(paper_scenario(16, 100, 100, sched::SchedulerKind::kBmux))
          .delay_ms;
  EXPECT_GT(d16 / d4, 3.5);   // superlinear-ish (H log H)
  EXPECT_LT(d16 / d4, 8.0);   // far from quadratic
}

TEST(ParamSearch, ValidatesScenario) {
  Scenario sc = paper_scenario(0, 100, 100, sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)deltanc::Solver().solve(sc), std::invalid_argument);
  sc.hops = 2;
  sc.epsilon = 0.0;
  EXPECT_THROW((void)deltanc::Solver().solve(sc), std::invalid_argument);
}

TEST(ParamSearch, ValidateCollectsEveryViolation) {
  Scenario sc = paper_scenario(0, 0, -1, sched::SchedulerKind::kFifo);
  sc.epsilon = 2.0;
  const diag::ValidationReport report = sc.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 4u);  // hops, n_through, n_cross, epsilon
  const std::string msg = report.message();
  for (const char* field : {"hops", "n_through", "n_cross", "epsilon"}) {
    EXPECT_NE(msg.find(field), std::string::npos) << msg;
  }
  // And Solver::solve surfaces the same multi-field message.
  try {
    (void)deltanc::Solver().solve(sc);
    FAIL() << "accepted an invalid scenario";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("epsilon"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hops"), std::string::npos);
  }
}

TEST(ParamSearch, UnstableScenarioIsClassified) {
  // Overload is not an error: the solve succeeds with a +inf bound, and
  // the diagnostics channel says why.
  const Scenario sc = paper_scenario(3, 400, 400, sched::SchedulerKind::kBmux);
  const diag::ValidationReport report = sc.validate();
  EXPECT_TRUE(report.ok());        // well-formed...
  EXPECT_FALSE(report.stable());   // ...but overloaded
  const BoundResult r = deltanc::Solver().solve(sc);
  EXPECT_EQ(r.delay_ms, kInf);
  EXPECT_EQ(r.diagnostics.error, diag::SolveErrorKind::kUnstable);
  EXPECT_FALSE(r.diagnostics.message.empty());
}

TEST(ParamSearch, ConvergedSolveHasCleanDiagnostics) {
  // A healthy EDF solve: no error, no warnings, no recoveries recorded.
  const BoundResult r =
      deltanc::Solver().solve(paper_scenario(5, 150, 150, sched::SchedulerKind::kEdf));
  ASSERT_TRUE(std::isfinite(r.delay_ms));
  EXPECT_TRUE(r.diagnostics.clean());
  EXPECT_EQ(r.stats.retries, 0);
  EXPECT_EQ(r.stats.fallbacks, 0);
}

TEST(ParamSearch, GpsBoundIsSelfConsistentAndPaysBurstsOnce) {
  Scenario sc = paper_scenario(5, 168, 168, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
  const BoundResult r = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(r.delay_ms));
  EXPECT_TRUE(std::isnan(r.delta));  // no Delta coordinate by contract
  // Tuple self-consistency against the closed-form 1-D objective: the
  // guaranteed rate is the weight share of the link, gamma its slack over
  // the through aggregate's effective bandwidth at the returned s, sigma
  // the union-bound backlog for the target epsilon.
  const double rate = 0.5 * sc.capacity;
  ASSERT_GT(r.s, 0.0);
  EXPECT_DOUBLE_EQ(r.gamma,
                   rate - sc.n_through * sc.source.effective_bandwidth(r.s));
  const double sigma =
      std::log(1.0 / ((1.0 - std::exp(-r.s * r.gamma)) * sc.epsilon)) / r.s;
  EXPECT_DOUBLE_EQ(r.sigma, sigma);
  EXPECT_DOUBLE_EQ(r.delay_ms, sigma / rate);
  // Pay-bursts-once: the GPS leftover has zero latency, so the e2e bound
  // does not grow with the hop count (unlike every Delta-backed bound).
  Scenario longer = sc;
  longer.hops = 20;
  EXPECT_EQ(deltanc::Solver().solve(longer).delay_ms, r.delay_ms);
}

TEST(ParamSearch, DrrIsGpsPlusTheRoundRobinLatency) {
  // Equal quanta give DRR the same guaranteed rate as GPS(1,1); the only
  // difference is the deterministic one-round latency (sum Q - Q_0)/C
  // per hop, which shifts the bound by exactly H/C here.
  Scenario sc = paper_scenario(5, 168, 168, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
  const BoundResult gps = deltanc::Solver().solve(sc);
  sc.scheduler = sched::SchedulerSpec::drr(1.0, 1.0);
  const BoundResult drr = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(gps.delay_ms));
  EXPECT_DOUBLE_EQ(drr.delay_ms,
                   sc.hops * (1.0 / sc.capacity) + gps.delay_ms);
}

TEST(ParamSearch, ScedEqualsGpsOnSymmetricLoads) {
  // Load-proportional sharing with N0 = Nc is the equal two-class split.
  Scenario sc = paper_scenario(4, 200, 200, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::sced();
  const BoundResult sced = deltanc::Solver().solve(sc);
  sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
  const BoundResult gps = deltanc::Solver().solve(sc);
  ASSERT_TRUE(std::isfinite(gps.delay_ms));
  EXPECT_DOUBLE_EQ(sced.delay_ms, gps.delay_ms);
}

TEST(ParamSearch, GpsIsolationSurvivesTotalOverload) {
  // Total utilization above 1, but the through class's guaranteed share
  // 0.75 C still exceeds its own load: GPS keeps a finite bound where
  // the aggregate-facing BMUX diverges.
  Scenario sc = paper_scenario(5, 310, 410, sched::SchedulerKind::kBmux);
  ASSERT_GE(sc.utilization(), 1.0);
  const BoundResult bmux = deltanc::Solver().solve(sc);
  EXPECT_EQ(bmux.delay_ms, kInf);
  sc.scheduler = sched::SchedulerSpec::gps(3.0, 1.0);
  ASSERT_LT(sc.n_through * sc.source.mean_rate(), 0.75 * sc.capacity);
  const BoundResult gps = deltanc::Solver().solve(sc);
  EXPECT_TRUE(std::isfinite(gps.delay_ms));
  EXPECT_TRUE(gps.diagnostics.ok());
}

TEST(ParamSearch, UnstableThroughClassIsClassifiedForCurveBacked) {
  // The through load alone exceeds the GPS(1,1) guarantee of half the
  // link: +inf with the same kUnstable classification as the Delta path.
  Scenario sc = paper_scenario(3, 400, 10, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
  ASSERT_GT(sc.n_through * sc.source.mean_rate(), 0.5 * sc.capacity);
  const BoundResult r = deltanc::Solver().solve(sc);
  EXPECT_EQ(r.delay_ms, kInf);
  EXPECT_EQ(r.diagnostics.error, diag::SolveErrorKind::kUnstable);
  EXPECT_FALSE(r.diagnostics.message.empty());
}

TEST(ParamSearch, ValidateRejectsMalformedClassWeights) {
  // set_weights is the only way to smuggle a malformed weight list past
  // the factories (the codec uses it); validate() must name the field.
  Scenario sc = paper_scenario(3, 100, 100, sched::SchedulerKind::kFifo);
  sc.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
  sched::ClassWeights bad;
  bad.count = 1;
  sc.scheduler.set_weights(bad);
  const diag::ValidationReport report = sc.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.message().find("scheduler.weights"), std::string::npos)
      << report.message();
}

TEST(AdditiveBaseline, PerNodeDelaysGrowAlongThePath) {
  const PathParams p{100.0, 8, 20.0, 30.0, 0.5, 1.0, kInf};
  const auto per_node = additive_bmux_per_node(p, 0.5, 1e-9);
  ASSERT_EQ(per_node.size(), 8u);
  for (std::size_t h = 1; h < per_node.size(); ++h) {
    EXPECT_GT(per_node[h], per_node[h - 1]) << "h = " << h;
  }
}

TEST(AdditiveBaseline, SumOfPerNodeEqualsTotal) {
  const PathParams p{100.0, 5, 20.0, 30.0, 0.5, 1.0, kInf};
  const auto per_node = additive_bmux_per_node(p, 0.4, 1e-9);
  double sum = 0.0;
  for (double d : per_node) sum += d;
  EXPECT_NEAR(additive_bmux_delay(p, 0.4, 1e-9), sum, 1e-9);
}

TEST(AdditiveBaseline, MuchLooserThanNetworkServiceCurve) {
  // Fig. 4: adding per-node bounds is loose and gets relatively worse
  // with H.
  const Scenario sc5 = paper_scenario(5, 168, 168, sched::SchedulerKind::kBmux);
  const Scenario sc10 = paper_scenario(10, 168, 168, sched::SchedulerKind::kBmux);
  const double net5 = deltanc::Solver().solve(sc5).delay_ms;
  const double add5 = best_additive_bmux_bound(sc5).delay_ms;
  const double net10 = deltanc::Solver().solve(sc10).delay_ms;
  const double add10 = best_additive_bmux_bound(sc10).delay_ms;
  EXPECT_GT(add5, 1.5 * net5);
  EXPECT_GT(add10, 3.0 * net10);
  EXPECT_GT(add10 / add5, net10 / net5);  // relative gap widens
}

TEST(AdditiveBaseline, SuperlinearGrowth) {
  // O(H^3 log H)-style growth: doubling H should much more than double
  // the additive bound.
  const double a5 =
      best_additive_bmux_bound(paper_scenario(5, 168, 168, sched::SchedulerKind::kBmux))
          .delay_ms;
  const double a10 =
      best_additive_bmux_bound(paper_scenario(10, 168, 168, sched::SchedulerKind::kBmux))
          .delay_ms;
  EXPECT_GT(a10 / a5, 3.0);
}

TEST(AdditiveBaseline, Validation) {
  const PathParams p{100.0, 3, 20.0, 30.0, 0.5, 1.0, kInf};
  EXPECT_THROW((void)additive_bmux_delay(p, 0.0, 1e-9),
               std::invalid_argument);
  EXPECT_THROW((void)additive_bmux_delay(p, 0.5, 0.0), std::invalid_argument);
  // Unstable gamma: per-node envelope rate reaches the leftover rate.
  const PathParams tight{100.0, 3, 45.0, 45.0, 0.5, 1.0, kInf};
  EXPECT_EQ(additive_bmux_delay(tight, 4.0, 1e-9), kInf);
}

}  // namespace
}  // namespace deltanc::e2e
