// The JSONL batch service: ordered responses, cache integration
// (hit/stale/corrupt outcomes surfaced per response and in the
// summary), and graceful handling of malformed request lines.
#include "e2e/solver.h"
#include "io/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace deltanc::io {
namespace {

using json::Value;

e2e::Scenario small_scenario(int n_cross) {
  e2e::Scenario sc;
  sc.hops = 3;
  sc.n_through = 80;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched::SchedulerKind::kFifo;
  return sc;
}

std::string request_line(const e2e::Scenario& sc, int id) {
  Value req = Value::object();
  req.set("schema", Value::number(kSchemaVersion))
      .set("id", Value::number(id))
      .set("scenario", encode_scenario(sc));
  return req.dump();
}

std::string profile_request_line(const e2e::Scenario& sc, int id,
                                 const std::vector<double>& epsilons) {
  Value eps = Value::array();
  for (double e : epsilons) eps.push_back(encode_double(e));
  Value req = Value::object();
  req.set("schema", Value::number(kSchemaVersion))
      .set("id", Value::number(id))
      .set("scenario", encode_scenario(sc))
      .set("epsilons", std::move(eps));
  return req.dump();
}

std::vector<Value> parse_responses(const std::string& text) {
  std::vector<Value> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) out.push_back(Value::parse(line));
  }
  return out;
}

std::filesystem::path fresh_cache_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Batch, ResponsesArriveInInputOrderAndMatchDirectSolves) {
  std::stringstream in;
  in << request_line(small_scenario(60), 0) << "\n";
  in << "\n";  // blank lines are skipped, not answered
  in << request_line(small_scenario(40), 1) << "\n";
  std::ostringstream out;

  BatchOptions options;
  options.threads = 2;
  const BatchSummary summary = run_batch(in, out, options);
  EXPECT_EQ(summary.requests, 2);
  EXPECT_EQ(summary.responses, 2);
  EXPECT_EQ(summary.solved, 2);
  EXPECT_EQ(summary.cached, 0);
  EXPECT_EQ(summary.parse_errors, 0);
  EXPECT_EQ(summary.failed, 0);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 2u);
  const int n_cross[] = {60, 40};
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(responses[i].at("id").as_number(), static_cast<double>(i));
    EXPECT_TRUE(responses[i].at("ok").as_bool());
    EXPECT_EQ(responses[i].find("cache"), nullptr);  // no cache attached
    const e2e::BoundResult direct = deltanc::Solver().solve(small_scenario(n_cross[i]));
    const e2e::BoundResult got =
        decode_bound_result(responses[i].at("result"));
    EXPECT_EQ(got.delay_ms, direct.delay_ms);
    EXPECT_EQ(got.gamma, direct.gamma);
    EXPECT_EQ(got.s, direct.s);
  }
}

TEST(Batch, MalformedLinesAnswerInPlaceWithoutAbortingTheBatch) {
  std::stringstream in;
  in << request_line(small_scenario(60), 0) << "\n";
  in << "{\"schema\":1, not json\n";
  in << "{\"schema\":99,\"scenario\":{}}\n";  // wrong schema
  in << request_line(small_scenario(40), 3) << "\n";
  std::ostringstream out;

  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.requests, 4);
  EXPECT_EQ(summary.parse_errors, 2);
  EXPECT_EQ(summary.solved, 2);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_FALSE(responses[2].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("error").as_string().empty());
  EXPECT_TRUE(responses[3].at("ok").as_bool());
  EXPECT_EQ(responses[3].at("id").as_number(), 3.0);
}

TEST(Batch, UnknownSchedulerNameIsAnsweredInPlace) {
  // A request naming a scheduler this build does not register (another
  // producer's vocabulary -- a SchemaError out of the codec) is an
  // error *response*, never an exception out of the batch loop, and the
  // surrounding requests still solve.
  Value req = Value::object();
  req.set("schema", Value::number(kSchemaVersion))
      .set("id", Value::number(1))
      .set("scenario", encode_scenario(small_scenario(50)));
  std::string bad = req.dump();
  const std::string mine = "\"fifo\"";
  const std::size_t at = bad.find(mine);
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, mine.size(), "\"round-robin\"");

  std::stringstream in;
  in << request_line(small_scenario(60), 0) << "\n";
  in << bad << "\n";
  in << request_line(small_scenario(40), 2) << "\n";
  std::ostringstream out;

  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.requests, 3);
  EXPECT_EQ(summary.parse_errors, 1);
  EXPECT_EQ(summary.solved, 2);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_NE(responses[1].at("error").as_string().find("round-robin"),
            std::string::npos);
  EXPECT_TRUE(responses[2].at("ok").as_bool());
}

TEST(Batch, SecondRunAnswersFromCacheBitExactly) {
  ResultCache cache(fresh_cache_dir("deltanc_batch_cache"));
  const std::string requests = request_line(small_scenario(60), 0) + "\n" +
                               request_line(small_scenario(40), 1) + "\n";

  BatchOptions options;
  options.cache = &cache;

  std::stringstream cold_in(requests);
  std::ostringstream cold_out;
  const BatchSummary cold = run_batch(cold_in, cold_out, options);
  EXPECT_EQ(cold.solved, 2);
  EXPECT_EQ(cold.cached, 0);
  EXPECT_EQ(cold.cache_stats.misses, 2);
  EXPECT_EQ(cold.cache_stats.stores, 2);
  EXPECT_EQ(cold.stats.cache_misses, 2);

  std::stringstream warm_in(requests);
  std::ostringstream warm_out;
  const BatchSummary warm = run_batch(warm_in, warm_out, options);
  EXPECT_EQ(warm.solved, 0);
  EXPECT_EQ(warm.cached, 2);
  EXPECT_EQ(warm.cache_stats.hits, 2);
  EXPECT_EQ(warm.stats.cache_hits, 2);

  const std::vector<Value> a = parse_responses(cold_out.str());
  const std::vector<Value> b = parse_responses(warm_out.str());
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a[i].at("cache").as_string(), "miss");
    EXPECT_EQ(b[i].at("cache").as_string(), "hit");
    const e2e::BoundResult cold_r = decode_bound_result(a[i].at("result"));
    const e2e::BoundResult warm_r = decode_bound_result(b[i].at("result"));
    EXPECT_EQ(cold_r.delay_ms, warm_r.delay_ms);
    EXPECT_EQ(cold_r.gamma, warm_r.gamma);
    EXPECT_EQ(cold_r.s, warm_r.s);
    EXPECT_EQ(cold_r.sigma, warm_r.sigma);
    EXPECT_EQ(cold_r.delta, warm_r.delta);
  }
}

TEST(Batch, CorruptEntryRecoversWithWarningAndOverwrite) {
  ResultCache cache(fresh_cache_dir("deltanc_batch_corrupt"));
  const e2e::Scenario sc = small_scenario(60);
  const std::string requests = request_line(sc, 0) + "\n";

  BatchOptions options;
  options.cache = &cache;

  std::stringstream cold_in(requests);
  std::ostringstream cold_out;
  (void)run_batch(cold_in, cold_out, options);

  // Damage the entry on disk, then rerun: the batch must classify the
  // entry as corrupt, re-solve, warn, and repair the cache.
  const std::string key = solve_cache_key(sc, SolveOptions{});
  std::ofstream(cache.entry_path(key), std::ios::trunc) << "not json";

  std::stringstream in(requests);
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, options);
  EXPECT_EQ(summary.solved, 1);
  EXPECT_EQ(summary.cache_stats.corrupt, 1);
  EXPECT_EQ(summary.cache_stats.stores, 1);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].at("cache").as_string(), "corrupt");
  const e2e::BoundResult r = decode_bound_result(responses[0].at("result"));
  ASSERT_EQ(r.diagnostics.warnings.size(), 1u);
  EXPECT_EQ(r.diagnostics.warnings[0].kind,
            diag::SolveErrorKind::kCorruptCache);

  // Third run: fully healed, answered from cache.
  std::stringstream healed_in(requests);
  std::ostringstream healed_out;
  const BatchSummary healed = run_batch(healed_in, healed_out, options);
  EXPECT_EQ(healed.cached, 1);
  EXPECT_EQ(healed.cache_stats.hits, 1);
}

TEST(Batch, PerRequestOptionsGroupAndSolveCorrectly) {
  // Same scenario under two option sets in one batch: a scheduler
  // override and the paper's K-procedure must each match their direct
  // solve, and grouping must not reorder responses.
  const e2e::Scenario sc = small_scenario(60);
  Value with_sched = Value::object();
  SolveOptions edf_opt;
  edf_opt.scheduler = sched::SchedulerKind::kEdf;
  with_sched.set("schema", Value::number(kSchemaVersion))
      .set("id", Value::number(0.0))
      .set("scenario", encode_scenario(sc))
      .set("options", encode_solve_options(edf_opt));
  SolveOptions paper_opt;
  paper_opt.method = e2e::Method::kPaperK;
  Value with_method = Value::object();
  with_method.set("schema", Value::number(kSchemaVersion))
      .set("id", Value::number(1.0))
      .set("scenario", encode_scenario(sc))
      .set("options", encode_solve_options(paper_opt));

  std::stringstream in(with_sched.dump() + "\n" + with_method.dump() + "\n");
  std::ostringstream out;
  (void)run_batch(in, out, BatchOptions{});

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 2u);
  e2e::Scenario edf_sc = sc;
  edf_sc.scheduler = sched::SchedulerKind::kEdf;
  const e2e::BoundResult edf_direct = deltanc::Solver().solve(edf_sc);
  const e2e::BoundResult paper_direct =
      deltanc::Solver(e2e::Method::kPaperK).solve(sc);
  EXPECT_EQ(responses[0].at("id").as_number(), 0.0);
  EXPECT_EQ(decode_bound_result(responses[0].at("result")).delay_ms,
            edf_direct.delay_ms);
  EXPECT_EQ(decode_bound_result(responses[1].at("result")).delay_ms,
            paper_direct.delay_ms);
}

TEST(Batch, FinalLineWithoutTrailingNewlineIsAnswered) {
  // A request file truncated mid-stream (`emit-batch | head -c`, a
  // client hanging up after an unterminated write) still ends in a
  // valid request -- it must be answered, not silently dropped.
  std::stringstream in(request_line(small_scenario(60), 0) + "\n" +
                       request_line(small_scenario(40), 1));  // no '\n'
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.requests, 2);
  EXPECT_EQ(summary.responses, 2);
  EXPECT_FALSE(summary.output_failed);
  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[1].at("id").as_number(), 1.0);
  EXPECT_TRUE(responses[1].at("ok").as_bool());
}

TEST(Batch, OutputFailureIsReportedNotFatal) {
  // The consumer of the response stream hanging up (SIGPIPE is ignored
  // in the CLI; the stream just goes bad) must stop emission and be
  // reported via BatchSummary::output_failed, never crash the batch.
  class FailAfter : public std::streambuf {
   public:
    explicit FailAfter(std::size_t limit) : limit_(limit) {}

   protected:
    int overflow(int ch) override {
      if (written_ >= limit_) return traits_type::eof();  // "EPIPE"
      ++written_;
      return ch;
    }

   private:
    std::size_t limit_;
    std::size_t written_ = 0;
  };

  std::stringstream in(request_line(small_scenario(60), 0) + "\n" +
                       request_line(small_scenario(40), 1) + "\n");
  FailAfter buffer(10);  // dies mid-first-response
  std::ostream out(&buffer);
  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_TRUE(summary.output_failed);
  EXPECT_EQ(summary.requests, 2);
  EXPECT_LT(summary.responses, 2);
}

TEST(Batch, StoreFailureDegradesToCountedSolveThrough) {
  // A full disk (simulated via the deterministic fault hook) must not
  // stop the batch: the result is still answered, the failure counted.
  ResultCache cache(fresh_cache_dir("deltanc_batch_store_fail"));
  cache.fail_next_stores(1);
  const std::string requests = request_line(small_scenario(60), 0) + "\n";

  BatchOptions options;
  options.cache = &cache;
  std::stringstream in(requests);
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, options);
  EXPECT_EQ(summary.solved, 1);
  EXPECT_EQ(summary.cache_stats.stores, 0);
  EXPECT_EQ(summary.cache_stats.store_failures, 1);
  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());

  // The entry never landed, so a rerun is a miss -- and this store
  // succeeds, healing the cache.
  std::stringstream again_in(requests);
  std::ostringstream again_out;
  const BatchSummary again = run_batch(again_in, again_out, options);
  EXPECT_EQ(again.solved, 1);
  EXPECT_EQ(again.cache_stats.stores, 1);
  EXPECT_EQ(again.cache_stats.store_failures, 0);
}

// ----- delay-profile requests --------------------------------------------

TEST(Batch, ProfileRequestsAnswerFullArtifactsInOrder) {
  // A profile request rides in the same stream as scalar ones; its
  // response carries the whole d(epsilon) artifact under "profile", and
  // each level matches the direct cold solve_profile bit-for-bit.
  const e2e::Scenario sc = small_scenario(60);
  const std::vector<double> grid = {1e-3, 1e-6, 1e-9};
  std::stringstream in;
  in << profile_request_line(sc, 0, grid) << "\n";
  in << request_line(small_scenario(40), 1) << "\n";
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.requests, 2);
  EXPECT_EQ(summary.solved, 2);
  EXPECT_EQ(summary.failed, 0);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].at("id").as_number(), 0.0);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[0].find("result"), nullptr);
  const e2e::DelayProfile got =
      decode_delay_profile(responses[0].at("profile"));
  const e2e::DelayProfile direct =
      deltanc::Solver().solve_profile(sc, grid);
  ASSERT_EQ(got.levels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got.epsilons[i], direct.epsilons[i]);
    EXPECT_EQ(got.levels[i].delay_ms, direct.levels[i].delay_ms);
    EXPECT_EQ(got.levels[i].s, direct.levels[i].s);
  }
  // The scalar neighbor is unaffected.
  EXPECT_NE(responses[1].find("result"), nullptr);
  EXPECT_EQ(responses[1].find("profile"), nullptr);
  // Aggregate stats count the profile's levels.
  EXPECT_EQ(summary.stats.profile_levels, 3);
}

TEST(Batch, ProfileSecondRunAnswersFromCacheBitExactly) {
  ResultCache cache(fresh_cache_dir("deltanc_batch_profile_cache"));
  const e2e::Scenario sc = small_scenario(60);
  const std::vector<double> grid = {1e-3, 1e-8};
  // A scalar request of the *same* scenario shares the batch: the two
  // keyspaces must not collide.
  const std::string requests = profile_request_line(sc, 0, grid) + "\n" +
                               request_line(sc, 1) + "\n";
  BatchOptions options;
  options.cache = &cache;

  std::stringstream cold_in(requests);
  std::ostringstream cold_out;
  const BatchSummary cold = run_batch(cold_in, cold_out, options);
  EXPECT_EQ(cold.solved, 2);
  EXPECT_EQ(cold.cache_stats.stores, 2);

  std::stringstream warm_in(requests);
  std::ostringstream warm_out;
  const BatchSummary warm = run_batch(warm_in, warm_out, options);
  EXPECT_EQ(warm.solved, 0);
  EXPECT_EQ(warm.cached, 2);
  EXPECT_EQ(warm.cache_stats.hits, 2);

  const std::vector<Value> a = parse_responses(cold_out.str());
  const std::vector<Value> b = parse_responses(warm_out.str());
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].at("cache").as_string(), "hit");
  const e2e::DelayProfile cold_p = decode_delay_profile(a[0].at("profile"));
  const e2e::DelayProfile warm_p = decode_delay_profile(b[0].at("profile"));
  ASSERT_EQ(warm_p.levels.size(), cold_p.levels.size());
  for (std::size_t i = 0; i < cold_p.levels.size(); ++i) {
    EXPECT_EQ(warm_p.levels[i].delay_ms, cold_p.levels[i].delay_ms);
    EXPECT_EQ(warm_p.levels[i].sigma, cold_p.levels[i].sigma);
  }
  // Exactly one cache counter per response, on the aggregate stats.
  EXPECT_EQ(warm_p.stats.cache_hits, 1);
  EXPECT_EQ(warm_p.stats.cache_misses + warm_p.stats.cache_stale, 0);
}

TEST(Batch, ProfileEpsilonGridIsValidatedAtParseTime) {
  // An empty grid and an out-of-range level are malformed requests,
  // answered in place without aborting the batch.
  const e2e::Scenario sc = small_scenario(60);
  std::stringstream in;
  in << profile_request_line(sc, 0, {}) << "\n";
  in << profile_request_line(sc, 1, {2.0}) << "\n";
  in << profile_request_line(sc, 2, {1e-3}) << "\n";  // valid
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.parse_errors, 2);
  EXPECT_EQ(summary.solved, 1);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_TRUE(responses[2].at("ok").as_bool());
  // The error responses still echo the ids they managed to read.
  EXPECT_EQ(responses[0].at("id").as_number(), 0.0);
  EXPECT_EQ(responses[1].at("id").as_number(), 1.0);
}

TEST(Batch, ProfileCorruptEntryRecoversWithWarningAndOverwrite) {
  ResultCache cache(fresh_cache_dir("deltanc_batch_profile_corrupt"));
  const e2e::Scenario sc = small_scenario(60);
  const std::vector<double> grid = {1e-3, 1e-9};
  const std::string requests = profile_request_line(sc, 0, grid) + "\n";
  BatchOptions options;
  options.cache = &cache;

  std::stringstream cold_in(requests);
  std::ostringstream cold_out;
  (void)run_batch(cold_in, cold_out, options);

  const std::string key = profile_cache_key(sc, grid, SolveOptions{});
  std::ofstream(cache.entry_path(key), std::ios::trunc) << "not json";

  std::stringstream in(requests);
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, options);
  EXPECT_EQ(summary.solved, 1);
  EXPECT_EQ(summary.cache_stats.corrupt, 1);

  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].at("cache").as_string(), "corrupt");
  const e2e::DelayProfile p = decode_delay_profile(responses[0].at("profile"));
  // The recovery warning lands on the first level's diagnostics.
  ASSERT_FALSE(p.levels.empty());
  ASSERT_EQ(p.levels.front().diagnostics.warnings.size(), 1u);
  EXPECT_EQ(p.levels.front().diagnostics.warnings[0].kind,
            diag::SolveErrorKind::kCorruptCache);

  std::stringstream healed_in(requests);
  std::ostringstream healed_out;
  const BatchSummary healed = run_batch(healed_in, healed_out, options);
  EXPECT_EQ(healed.cached, 1);
}

TEST(Batch, UnstableProfileAnswersOkWithClassifiedInfLevels) {
  // An unstable scenario is a *solved* profile whose every level is the
  // classified +inf bound -- same discipline as the scalar path.
  const e2e::Scenario sc = small_scenario(800);
  std::stringstream in(profile_request_line(sc, 0, {1e-3, 1e-9}) + "\n");
  std::ostringstream out;
  const BatchSummary summary = run_batch(in, out, BatchOptions{});
  EXPECT_EQ(summary.solved, 1);
  EXPECT_EQ(summary.failed, 0);
  const std::vector<Value> responses = parse_responses(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  const e2e::DelayProfile p = decode_delay_profile(responses[0].at("profile"));
  ASSERT_EQ(p.levels.size(), 2u);
  for (const e2e::BoundResult& level : p.levels) {
    EXPECT_TRUE(std::isinf(level.delay_ms));
    EXPECT_FALSE(level.diagnostics.ok());
  }
}

}  // namespace
}  // namespace deltanc::io
