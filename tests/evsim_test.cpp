#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "evsim/network.h"
#include "sim/tandem.h"
#include "evsim/server.h"

namespace deltanc::evsim {
namespace {

Packet pkt(int flow, double kb, std::uint64_t seq) {
  return Packet{flow, kb, 0.0, 0.0, 0.0, seq};
}

TEST(EvServer, TransmitsAtConfiguredRate) {
  Server s(10.0, make_fifo_policy());
  s.arrive(pkt(0, 25.0, 0), 0.0);
  EXPECT_TRUE(s.busy());
  EXPECT_DOUBLE_EQ(s.next_completion(), 2.5);
  const Departure d = s.complete_one();
  EXPECT_DOUBLE_EQ(d.time, 2.5);
  EXPECT_FALSE(s.busy());
  EXPECT_DOUBLE_EQ(s.transmitted_kb(), 25.0);
}

TEST(EvServer, BackToBackService) {
  Server s(10.0, make_fifo_policy());
  s.arrive(pkt(0, 10.0, 0), 0.0);
  s.arrive(pkt(0, 20.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.backlog_kb(), 30.0);
  EXPECT_DOUBLE_EQ(s.complete_one().time, 1.0);
  EXPECT_DOUBLE_EQ(s.complete_one().time, 3.0);  // starts at 1.0
  EXPECT_THROW((void)s.complete_one(), std::logic_error);
}

TEST(EvServer, IdlePeriodThenRestart) {
  Server s(10.0, make_fifo_policy());
  s.arrive(pkt(0, 10.0, 0), 0.0);
  (void)s.complete_one();  // done at 1.0
  s.arrive(pkt(0, 10.0, 1), 5.0);
  EXPECT_DOUBLE_EQ(s.next_completion(), 6.0);
}

TEST(EvServer, RejectsTimeTravel) {
  Server s(10.0, make_fifo_policy());
  s.arrive(pkt(0, 1.0, 0), 5.0);
  EXPECT_THROW(s.arrive(pkt(0, 1.0, 1), 2.0), std::logic_error);
  EXPECT_THROW(Server(0.0, make_fifo_policy()), std::invalid_argument);
  EXPECT_THROW(Server(1.0, nullptr), std::invalid_argument);
}

TEST(EvPolicy, NonPreemptivePriorityInversion) {
  // A big low-priority packet enters service first; the high-priority
  // packet arriving just after must wait the full residual transmission
  // -- the blocking term the fluid model ignores.
  Server s(10.0, make_sp_policy({0, 1}));  // flow 1 = high priority
  s.arrive(pkt(0, 50.0, 0), 0.0);          // 5 ms transmission
  s.arrive(pkt(1, 1.0, 1), 0.1);
  const Departure first = s.complete_one();
  EXPECT_EQ(first.packet.flow, 0);  // cannot be preempted
  const Departure second = s.complete_one();
  EXPECT_EQ(second.packet.flow, 1);
  EXPECT_NEAR(second.time, 5.1, 1e-12);  // blocked 4.9 ms + own 0.1
}

TEST(EvPolicy, SpServesHighFirstWhenQueued) {
  Server s(10.0, make_sp_policy({0, 1}));
  s.arrive(pkt(0, 1.0, 0), 0.0);  // in service
  s.arrive(pkt(0, 1.0, 1), 0.0);
  s.arrive(pkt(1, 1.0, 2), 0.0);
  (void)s.complete_one();
  EXPECT_EQ(s.complete_one().packet.flow, 1);  // high priority jumps queue
  EXPECT_EQ(s.complete_one().packet.flow, 0);
}

TEST(EvPolicy, EdfPicksEarliestDeadline) {
  Server s(10.0, make_edf_policy({10.0, 2.0}));
  s.arrive(pkt(0, 1.0, 0), 0.0);  // deadline 10, in service
  s.arrive(pkt(0, 1.0, 1), 0.0);  // deadline 10
  s.arrive(pkt(1, 1.0, 2), 0.5);  // deadline 2.5 -> earliest
  (void)s.complete_one();
  EXPECT_EQ(s.complete_one().packet.flow, 1);
}

TEST(EvPolicy, ScfqSharesByWeight) {
  // Saturate the server with both flows backlogged; throughput over a
  // busy period must split ~2:1 by weight.
  Server s(10.0, make_scfq_policy({2.0, 1.0}));
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    s.arrive(pkt(0, 1.0, seq++), 0.0);
    s.arrive(pkt(1, 1.0, seq++), 0.0);
  }
  double served0 = 0.0, served1 = 0.0;
  // Drain 30 packets (3 ms of a saturated 10 kb/ms server).
  for (int i = 0; i < 30; ++i) {
    const Departure d = s.complete_one();
    (d.packet.flow == 0 ? served0 : served1) += d.packet.size_kb;
  }
  EXPECT_NEAR(served0 / served1, 2.0, 0.25);
}

TEST(EvPolicy, ValidatesConfiguration) {
  EXPECT_THROW((void)make_scfq_policy({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)make_sp_policy({}), std::invalid_argument);
  EXPECT_THROW((void)make_edf_policy({}), std::invalid_argument);
  EXPECT_THROW((void)make_drr_policy({}), std::invalid_argument);
  EXPECT_THROW((void)make_drr_policy({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)make_sced_policy({}), std::invalid_argument);
  EXPECT_THROW((void)make_sced_policy({1.0, -1.0}), std::invalid_argument);
  Server s(1.0, make_sp_policy({0, 1}));
  EXPECT_THROW(s.arrive(pkt(5, 1.0, 0), 0.0), std::out_of_range);
  // A zero SCED rate is legal only for a class that never sends.
  Server z(1.0, make_sced_policy({1.0, 0.0}));
  z.arrive(pkt(0, 1.0, 0), 0.0);
  EXPECT_THROW(z.arrive(pkt(1, 1.0, 1), 0.0), std::invalid_argument);
}

TEST(EvNetwork, LightLoadDelayIsTransmissionOnly) {
  EvNetworkConfig c;
  c.hops = 3;
  c.n_through = 5;
  c.n_cross = 5;
  c.slots = 20000;
  const EvNetworkResult r = run_event_network(c);
  ASSERT_GT(r.through_delay_ms.count(), 0u);
  // Three hops, each 1.5 kb / 100 kb/ms = 0.015 ms, plus in-slot queueing
  // of the handful of same-slot packets.
  EXPECT_LT(r.through_delay_ms.quantile(0.5), 1.0);
  EXPECT_GE(r.through_delay_ms.quantile(0.0), 3 * 0.015 - 1e-9);
}

TEST(EvNetwork, UtilizationMatchesOfferedLoad) {
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 100;
  c.n_cross = 100;
  c.slots = 50000;
  const EvNetworkResult r = run_event_network(c);
  const double load = 200.0 * c.source.mean_rate() / c.capacity_kb_per_ms;
  EXPECT_NEAR(r.mean_utilization, load, 0.1 * load);
}

TEST(EvNetwork, SchedulerOrderingUnderLoad) {
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  c.edf_through_deadline_ms = 3.0;
  c.edf_cross_deadline_ms = 30.0;
  const auto tail = [&](PolicyKind kind) {
    EvNetworkConfig cc = c;
    cc.policy = kind;
    return run_event_network(cc).through_delay_ms.quantile(0.999);
  };
  const double hi = tail(PolicyKind::kSpThroughHigh);
  const double edf = tail(PolicyKind::kEdf);
  const double fifo = tail(PolicyKind::kFifo);
  const double lo = tail(PolicyKind::kSpThroughLow);
  EXPECT_LE(hi, edf + 0.5);
  EXPECT_LE(edf, fifo + 0.5);
  EXPECT_LE(fifo, lo + 0.5);
  EXPECT_LT(hi, lo);
}

TEST(EvNetwork, AgreesWithSlottedSimulatorOnSmallPackets) {
  // With 1.5 kb packets the non-preemptive event simulation and the
  // slotted fluid simulation must tell the same story at the tail.  The
  // slotted model quantizes every hop up to one full slot, so its delay
  // overstates the event-driven one by at most ~(hops + 1) slots.
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  const double ev_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  sim::TandemConfig sc;
  sc.hops = c.hops;
  sc.n_through = c.n_through;
  sc.n_cross = c.n_cross;
  sc.slots = c.slots;
  const double slotted_tail =
      sim::run_tandem(sc).through_delay.quantile(0.99);
  EXPECT_LE(ev_tail, slotted_tail);
  EXPECT_GE(ev_tail + c.hops + 1.5, slotted_tail);
}

TEST(EvNetwork, ScfqTracksFluidGpsTail) {
  // Packetized fair queueing (SCFQ) must land near the slotted fluid GPS
  // tail with equal weights -- the two fair-sharing implementations agree
  // when packets are small.
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  c.policy = PolicyKind::kScfq;
  const double scfq_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  sim::TandemConfig sc;
  sc.hops = c.hops;
  sc.n_through = c.n_through;
  sc.n_cross = c.n_cross;
  sc.slots = c.slots;
  sc.discipline = sim::DisciplineKind::kGps;
  const double gps_tail =
      sim::run_tandem(sc).through_delay.quantile(0.99);
  EXPECT_LE(scfq_tail, gps_tail);  // slotted model adds hop quantization
  EXPECT_GE(scfq_tail + c.hops + 1.5, gps_tail);
}

TEST(EvNetwork, ScfqWeightsShiftTheThroughTail) {
  // Giving the through class 4x the weight must not increase (and under
  // load should reduce) its tail delay relative to the 1:4 setting.
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 300;
  c.n_cross = 300;
  c.slots = 60000;
  c.policy = PolicyKind::kScfq;
  c.class_weights = sched::ClassWeights::of({4.0, 1.0});
  const double favoured =
      run_event_network(c).through_delay_ms.quantile(0.999);
  c.class_weights = sched::ClassWeights::of({1.0, 4.0});
  const double penalized =
      run_event_network(c).through_delay_ms.quantile(0.999);
  EXPECT_LE(favoured, penalized + 1e-9);
}

TEST(EvPolicy, DrrSharesByQuantum) {
  // Saturated server, 3:1 quanta: a full round serves 3 kb of flow 0 and
  // 1 kb of flow 1, so throughput over whole rounds splits exactly 3:1.
  Server s(10.0, make_drr_policy({3.0, 1.0}));
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    s.arrive(pkt(0, 1.0, seq++), 0.0);
    s.arrive(pkt(1, 1.0, seq++), 0.0);
  }
  double served0 = 0.0, served1 = 0.0;
  for (int i = 0; i < 40; ++i) {  // ~10 rounds of 4 packets
    const Departure d = s.complete_one();
    (d.packet.flow == 0 ? served0 : served1) += d.packet.size_kb;
  }
  EXPECT_NEAR(served0 / served1, 3.0, 0.5);
}

TEST(EvPolicy, DrrDeficitAccumulatesAcrossRounds) {
  // Quantum smaller than the packet: a class must bank its deficit over
  // several rounds before it may send (Shreedhar & Varghese, Sec. 3).
  // Flow 1 arrives first so its backlog is what the banking rounds
  // serve in the meantime.
  Server s(10.0, make_drr_policy({1.0, 4.0}));
  std::uint64_t seq = 0;
  for (int i = 0; i < 6; ++i) s.arrive(pkt(1, 2.0, seq++), 0.0);
  s.arrive(pkt(0, 3.0, seq++), 0.0);  // needs 3 visits of quantum 1
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) order.push_back(s.complete_one().packet.flow);
  // Visits 1-2 grant flow 0 only deficit 1 then 2 (< 3 kb); visit 3
  // finally releases it, after five of flow 1's packets.
  EXPECT_EQ(order, (std::vector<int>{1, 1, 1, 1, 1, 0}));
}

TEST(EvPolicy, ScedOrdersByDeadlineCurves) {
  // Rate split 9:1 -- flow 0's deadlines advance 9x slower, so with both
  // backlogged at t=0 flow 0's first packets beat flow 1's second.
  Server s(10.0, make_sced_policy({9.0, 1.0}));
  std::uint64_t seq = 0;
  for (int i = 0; i < 3; ++i) {
    s.arrive(pkt(0, 1.0, seq++), 0.0);  // deadlines 1/9, 2/9, 3/9
    s.arrive(pkt(1, 1.0, seq++), 0.0);  // deadlines 1, 2, 3
  }
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) order.push_back(s.complete_one().packet.flow);
  EXPECT_EQ(order, (std::vector<int>{0, 0, 0, 1}));
}

TEST(EvNetwork, DrrDegeneratesToFifoWithoutCrossTraffic) {
  // With no cross traffic there is only one backlogged class, so DRR is
  // work-conserving single-queue service: delays match FIFO exactly.
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 200;
  c.n_cross = 0;
  c.slots = 20000;
  c.policy = PolicyKind::kFifo;
  const EvNetworkResult fifo = run_event_network(c);
  c.policy = PolicyKind::kDrr;
  c.class_weights = sched::ClassWeights::of({1.0, 1.0});
  const EvNetworkResult drr = run_event_network(c);
  ASSERT_EQ(drr.through_delay_ms.count(), fifo.through_delay_ms.count());
  EXPECT_DOUBLE_EQ(drr.through_delay_ms.quantile(0.5),
                   fifo.through_delay_ms.quantile(0.5));
  EXPECT_DOUBLE_EQ(drr.through_delay_ms.quantile(1.0),
                   fifo.through_delay_ms.quantile(1.0));
}

TEST(EvNetwork, EqualQuantaDrrTracksTheFifoTail) {
  // Equal quanta under symmetric load approximate per-class fair
  // sharing of a fair workload: the DRR tail must land near FIFO's
  // (statistical agreement, not exact -- service order differs).
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  c.policy = PolicyKind::kFifo;
  const double fifo_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  c.policy = PolicyKind::kDrr;
  c.class_weights = sched::ClassWeights::of({1.5, 1.5});
  const double drr_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  EXPECT_NEAR(drr_tail, fifo_tail, 0.5 * fifo_tail + 1.0);
}

TEST(EvNetwork, ScedAgreesWithEqualWeightScfqOnSymmetricLoads) {
  // Load-proportional SCED rates with n_through == n_cross give each
  // class half the link -- the same virtual-time sharing SCFQ(1,1)
  // implements, so the two tails must agree statistically.
  EvNetworkConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 60000;
  c.policy = PolicyKind::kScfq;
  c.class_weights = sched::ClassWeights::of({1.0, 1.0});
  const double scfq_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  c.policy = PolicyKind::kSced;
  const double sced_tail =
      run_event_network(c).through_delay_ms.quantile(0.99);
  EXPECT_NEAR(sced_tail, scfq_tail, 0.5 * scfq_tail + 1.0);
}

TEST(EvNetwork, ValidatesConfig) {
  EvNetworkConfig c;
  c.packet_kb = 0.0;
  EXPECT_THROW((void)run_event_network(c), std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::evsim
