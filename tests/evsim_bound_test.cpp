// Cross-model validation: the analytic end-to-end bounds (derived under
// the fluid assumption) must dominate the NON-PREEMPTIVE packet
// simulation's delay quantiles too, once the per-hop blocking allowance
// of one packet transmission (L / C per node) is added.  With the paper's
// 1.5 kb packets the allowance is 0.015 ms per hop -- the fluid bounds
// effectively hold as-is.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "e2e/solver.h"
#include "evsim/network.h"

namespace deltanc {
namespace {

class EvsimBoundDomination : public ::testing::TestWithParam<sched::SchedulerKind> {
};

TEST_P(EvsimBoundDomination, FluidBoundPlusBlockingDominatesPacketSim) {
  const int hops = 3;
  const double packet_kb = 1.5;
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(hops)
                               .through_flows(250)
                               .cross_flows(250)
                               .scheduler(GetParam())
                               .build();
  const PathAnalyzer analyzer(sc);

  evsim::EvNetworkConfig c;
  c.hops = hops;
  c.n_through = sc.n_through;
  c.n_cross = sc.n_cross;
  c.packet_kb = packet_kb;
  c.slots = 200000;
  c.seed = 41;
  // Lower through the one adapter every layer shares; EDF deadlines
  // resolve against the analytic bound's unit d_e2e / H.
  double edf_unit = 1.0;
  if (sc.scheduler.needs_fixed_point()) {
    edf_unit = analyzer.bound().delay_ms / hops;
  }
  evsim::lower_scheduler(sc.scheduler, edf_unit, c);
  const evsim::EvNetworkResult r = evsim::run_event_network(c);
  ASSERT_GT(r.through_delay_ms.count(), 100000u);

  const double eps_sim =
      std::max(100.0 / static_cast<double>(r.through_delay_ms.count()),
               1e-4);
  e2e::Scenario at_eps = sc;
  at_eps.epsilon = eps_sim;
  const double bound = deltanc::Solver().solve(at_eps).delay_ms;
  const double blocking_allowance =
      hops * packet_kb / sc.capacity;  // one packet transmission per hop
  EXPECT_LE(r.through_delay_ms.quantile(1.0 - eps_sim),
            bound + blocking_allowance)
      << "bound " << bound << " at eps " << eps_sim;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EvsimBoundDomination,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kBmux,
                                           sched::SchedulerKind::kSpHigh,
                                           sched::SchedulerKind::kEdf));

// Both static-priority lowerings (kSpThroughLow from bmux, kSpThroughHigh
// from sp-high) must keep the packet simulator's delay quantiles under
// the matching analytic bound at several tail depths.  Seeded, and
// tolerance-gated by the non-preemptive blocking allowance of one packet
// transmission per hop.
TEST(EvsimSpQuantiles, SpLoweringsStayBelowAnalyticBounds) {
  const int hops = 2;
  const double packet_kb = 1.5;
  struct Case {
    sched::SchedulerSpec spec;
    evsim::PolicyKind expected;
  };
  for (const Case& test_case :
       {Case{sched::SchedulerSpec::bmux(), evsim::PolicyKind::kSpThroughLow},
        Case{sched::SchedulerSpec::sp_high(),
             evsim::PolicyKind::kSpThroughHigh}}) {
    const e2e::Scenario sc = ScenarioBuilder()
                                 .hops(hops)
                                 .through_flows(200)
                                 .cross_flows(200)
                                 .scheduler(test_case.spec)
                                 .build();
    evsim::EvNetworkConfig c;
    c.hops = hops;
    c.n_through = sc.n_through;
    c.n_cross = sc.n_cross;
    c.packet_kb = packet_kb;
    c.slots = 150000;
    c.seed = 7;
    evsim::lower_scheduler(test_case.spec, 1.0, c);
    ASSERT_EQ(c.policy, test_case.expected)
        << sched::to_string(test_case.spec);
    ASSERT_EQ(evsim::scheduler_spec_of(c), test_case.spec);
    const evsim::EvNetworkResult r = evsim::run_event_network(c);
    ASSERT_GT(r.through_delay_ms.count(), 50000u);
    const double blocking_allowance = hops * packet_kb / sc.capacity;
    for (const double eps : {1e-2, 1e-3}) {
      e2e::Scenario at_eps = sc;
      at_eps.epsilon = eps;
      const double bound = deltanc::Solver().solve(at_eps).delay_ms;
      ASSERT_TRUE(std::isfinite(bound));
      EXPECT_LE(r.through_delay_ms.quantile(1.0 - eps),
                bound + blocking_allowance)
          << sched::to_string(test_case.spec) << " at eps " << eps;
    }
  }
}

// The curve-backed lowerings (DRR's deficit counters, SCED's deadline
// curves, SCFQ's virtual time) must keep the packet simulator's delay
// quantiles under the matching rate-latency analytic bound at several
// tail depths.  Quanta equal the packet size so the classic DRR
// guarantee (quantum >= max packet) applies to the packetized policy;
// loads are symmetric so SCED's load-proportional split is well-defined
// and comparable.
TEST(EvsimCurveQuantiles, CurveLoweringsStayBelowAnalyticBounds) {
  const int hops = 2;
  const double packet_kb = 1.5;
  struct Case {
    sched::SchedulerSpec spec;
    evsim::PolicyKind expected;
  };
  for (const Case& test_case :
       {Case{sched::SchedulerSpec::drr(1.5, 1.5), evsim::PolicyKind::kDrr},
        Case{sched::SchedulerSpec::sced(), evsim::PolicyKind::kSced},
        Case{sched::SchedulerSpec::gps(1.0, 1.0),
             evsim::PolicyKind::kScfq}}) {
    const e2e::Scenario sc = ScenarioBuilder()
                                 .hops(hops)
                                 .through_flows(200)
                                 .cross_flows(200)
                                 .scheduler(test_case.spec)
                                 .build();
    evsim::EvNetworkConfig c;
    c.hops = hops;
    c.n_through = sc.n_through;
    c.n_cross = sc.n_cross;
    c.packet_kb = packet_kb;
    c.slots = 150000;
    c.seed = 7;
    evsim::lower_scheduler(test_case.spec, 1.0, c);
    ASSERT_EQ(c.policy, test_case.expected)
        << sched::to_string(test_case.spec);
    ASSERT_EQ(evsim::scheduler_spec_of(c), test_case.spec);
    const evsim::EvNetworkResult r = evsim::run_event_network(c);
    ASSERT_GT(r.through_delay_ms.count(), 50000u);
    const double blocking_allowance = hops * packet_kb / sc.capacity;
    for (const double eps : {1e-2, 1e-3}) {
      e2e::Scenario at_eps = sc;
      at_eps.epsilon = eps;
      const double bound = deltanc::Solver().solve(at_eps).delay_ms;
      ASSERT_TRUE(std::isfinite(bound));
      EXPECT_LE(r.through_delay_ms.quantile(1.0 - eps),
                bound + blocking_allowance)
          << sched::to_string(test_case.spec) << " at eps " << eps;
    }
  }
}

}  // namespace
}  // namespace deltanc
