// Cross-model validation: the analytic end-to-end bounds (derived under
// the fluid assumption) must dominate the NON-PREEMPTIVE packet
// simulation's delay quantiles too, once the per-hop blocking allowance
// of one packet transmission (L / C per node) is added.  With the paper's
// 1.5 kb packets the allowance is 0.015 ms per hop -- the fluid bounds
// effectively hold as-is.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "evsim/network.h"

namespace deltanc {
namespace {

class EvsimBoundDomination : public ::testing::TestWithParam<e2e::Scheduler> {
};

TEST_P(EvsimBoundDomination, FluidBoundPlusBlockingDominatesPacketSim) {
  const int hops = 3;
  const double packet_kb = 1.5;
  const e2e::Scenario sc = ScenarioBuilder()
                               .hops(hops)
                               .through_flows(250)
                               .cross_flows(250)
                               .scheduler(GetParam())
                               .build();
  const PathAnalyzer analyzer(sc);

  evsim::EvNetworkConfig c;
  c.hops = hops;
  c.n_through = sc.n_through;
  c.n_cross = sc.n_cross;
  c.packet_kb = packet_kb;
  c.slots = 200000;
  c.seed = 41;
  switch (GetParam()) {
    case e2e::Scheduler::kFifo:
      c.policy = evsim::PolicyKind::kFifo;
      break;
    case e2e::Scheduler::kBmux:
      c.policy = evsim::PolicyKind::kSpThroughLow;
      break;
    case e2e::Scheduler::kSpHigh:
      c.policy = evsim::PolicyKind::kSpThroughHigh;
      break;
    case e2e::Scheduler::kEdf: {
      c.policy = evsim::PolicyKind::kEdf;
      const double d = analyzer.bound().delay_ms;
      c.edf_through_deadline_ms = sc.edf.own_factor * d / hops;
      c.edf_cross_deadline_ms = sc.edf.cross_factor * d / hops;
      break;
    }
  }
  const evsim::EvNetworkResult r = evsim::run_event_network(c);
  ASSERT_GT(r.through_delay_ms.count(), 100000u);

  const double eps_sim =
      std::max(100.0 / static_cast<double>(r.through_delay_ms.count()),
               1e-4);
  e2e::Scenario at_eps = sc;
  at_eps.epsilon = eps_sim;
  const double bound = e2e::best_delay_bound(at_eps).delay_ms;
  const double blocking_allowance =
      hops * packet_kb / sc.capacity;  // one packet transmission per hop
  EXPECT_LE(r.through_delay_ms.quantile(1.0 - eps_sim),
            bound + blocking_allowance)
      << "bound " << bound << " at eps " << eps_sim;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EvsimBoundDomination,
                         ::testing::Values(e2e::Scheduler::kFifo,
                                           e2e::Scheduler::kBmux,
                                           e2e::Scheduler::kSpHigh,
                                           e2e::Scheduler::kEdf));

}  // namespace
}  // namespace deltanc
