#include "sched/delta.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace deltanc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DeltaMatrix, FifoIsAllZero) {
  const DeltaMatrix d = DeltaMatrix::fifo(3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(d.at(j, k), 0.0);
    }
  }
  EXPECT_THROW((void)DeltaMatrix::fifo(0), std::invalid_argument);
}

TEST(DeltaMatrix, StaticPriorityEncoding) {
  // Flow 0 low, flow 1 high, flow 2 same as 0.
  const std::vector<int> prio{0, 1, 0};
  const DeltaMatrix d = DeltaMatrix::static_priority(prio);
  EXPECT_EQ(d.at(0, 1), kInf);    // high priority always precedes
  EXPECT_EQ(d.at(1, 0), -kInf);   // low priority never precedes
  EXPECT_DOUBLE_EQ(d.at(0, 2), 0.0);  // equal priority: FIFO among them
  EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
}

TEST(DeltaMatrix, BmuxTreatsAnalyzedFlowAsLowest) {
  const DeltaMatrix d = DeltaMatrix::bmux(3, 0);
  EXPECT_EQ(d.at(0, 1), kInf);
  EXPECT_EQ(d.at(0, 2), kInf);
  EXPECT_EQ(d.at(1, 0), -kInf);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 0.0);
  EXPECT_THROW((void)DeltaMatrix::bmux(3, 5), std::invalid_argument);
}

TEST(DeltaMatrix, EdfIsDeadlineDifference) {
  const std::vector<double> deadlines{2.0, 10.0, 5.0};
  const DeltaMatrix d = DeltaMatrix::edf(deadlines);
  EXPECT_DOUBLE_EQ(d.at(0, 1), -8.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
  EXPECT_THROW((void)DeltaMatrix::edf(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(DeltaMatrix, ConstructorEnforcesLocallyFifo) {
  using Rows = std::vector<std::vector<double>>;
  EXPECT_THROW(DeltaMatrix(Rows{{1.0}}), std::invalid_argument);  // diag != 0
  EXPECT_THROW(DeltaMatrix(Rows{{0.0, 1.0}}),
               std::invalid_argument);  // not square
  EXPECT_THROW(DeltaMatrix(Rows{}), std::invalid_argument);
  EXPECT_NO_THROW(DeltaMatrix(Rows{{0.0, 3.0}, {-3.0, 0.0}}));
}

TEST(DeltaMatrix, CappedImplementsEq7) {
  const DeltaMatrix d = DeltaMatrix::edf(std::vector<double>{1.0, 4.0});
  // Delta_{1,0} = 3: capped at y.
  EXPECT_DOUBLE_EQ(d.capped(1, 0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(d.capped(1, 0, 2.0), 2.0);
  // Delta_{0,1} = -3: min(-3, y) = -3 for y >= -3.
  EXPECT_DOUBLE_EQ(d.capped(0, 1, 5.0), -3.0);
  // BMUX: min(inf, y) = y.
  const DeltaMatrix b = DeltaMatrix::bmux(2, 0);
  EXPECT_DOUBLE_EQ(b.capped(0, 1, 7.0), 7.0);
}

TEST(DeltaMatrix, RelevantFlowsExcludesNeverPreceding) {
  const DeltaMatrix d = DeltaMatrix::static_priority(std::vector<int>{0, 1, 2});
  // Flow 2 (highest): flows 0 and 1 never precede it.
  const auto nj = d.relevant_flows(2);
  EXPECT_EQ(nj, (std::vector<std::size_t>{2}));
  const auto cross = d.relevant_cross_flows(2);
  EXPECT_TRUE(cross.empty());
  // Flow 0 (lowest): everything matters.
  EXPECT_EQ(d.relevant_flows(0).size(), 3u);
  EXPECT_EQ(d.relevant_cross_flows(0), (std::vector<std::size_t>{1, 2}));
}

TEST(DeltaMatrix, IndexChecks) {
  const DeltaMatrix d = DeltaMatrix::fifo(2);
  EXPECT_THROW((void)d.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)d.capped(0, 2, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace deltanc::sched
