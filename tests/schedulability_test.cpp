#include "sched/schedulability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "sched/tightness.h"

namespace deltanc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kC = 10.0;

std::vector<nc::Curve> leaky(std::initializer_list<std::pair<double, double>>
                                 rate_burst) {
  std::vector<nc::Curve> out;
  for (const auto& [r, b] : rate_burst) {
    out.push_back(nc::Curve::leaky_bucket(r, b));
  }
  return out;
}

TEST(Schedulability, FifoRecoversClassicBound) {
  // FIFO with leaky buckets: d_min = (sum of bursts) / C  [Cruz '91].
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}, {2.0, 1.5}});
  const double d = min_delay_bound(kC, DeltaMatrix::fifo(3), env, 0);
  EXPECT_NEAR(d, (2.0 + 4.0 + 1.5) / kC, 1e-6);
}

TEST(Schedulability, BmuxRecoversClassicBound) {
  // Blind multiplexing: d_min = (B_0 + B_c) / (C - rho_c).
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const double d = min_delay_bound(kC, DeltaMatrix::bmux(2, 0), env, 0);
  EXPECT_NEAR(d, (2.0 + 4.0) / (kC - 3.0), 1e-6);
}

TEST(Schedulability, HighPriorityFlowIgnoresLowPriority) {
  // The top-priority flow is only delayed by its own burst: d = B_j / C.
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const DeltaMatrix d = DeltaMatrix::static_priority(std::vector<int>{0, 1});
  EXPECT_NEAR(min_delay_bound(kC, d, env, 1), 4.0 / kC, 1e-6);
  // The low-priority flow sees the BMUX bound (B0 + Bc)/(C - rho_c).
  EXPECT_NEAR(min_delay_bound(kC, d, env, 0), (2.0 + 4.0) / (kC - 3.0), 1e-6);
}

TEST(Schedulability, EdfInterpolatesBetweenExtremes) {
  // FIFO = EDF with equal deadlines; BMUX ~ EDF with d*_0 >> d*_c.
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const double d_fifo = min_delay_bound(kC, DeltaMatrix::fifo(2), env, 0);
  const double d_bmux = min_delay_bound(kC, DeltaMatrix::bmux(2, 0), env, 0);
  const double d_edf_equal = min_delay_bound(
      kC, DeltaMatrix::edf(std::vector<double>{3.0, 3.0}), env, 0);
  EXPECT_NEAR(d_edf_equal, d_fifo, 1e-6);
  const double d_edf_late = min_delay_bound(
      kC, DeltaMatrix::edf(std::vector<double>{1000.0, 1.0}), env, 0);
  EXPECT_NEAR(d_edf_late, d_bmux, 1e-6);
  // A favoured through flow does better than FIFO, a penalized one worse.
  const double d_edf_fav = min_delay_bound(
      kC, DeltaMatrix::edf(std::vector<double>{1.0, 5.0}), env, 0);
  const double d_edf_pen = min_delay_bound(
      kC, DeltaMatrix::edf(std::vector<double>{5.0, 1.0}), env, 0);
  EXPECT_LT(d_edf_fav, d_fifo);
  EXPECT_GT(d_edf_pen, d_fifo);
  EXPECT_LE(d_edf_pen, d_bmux + 1e-9);
}

TEST(Schedulability, BmuxDominatesEveryDeltaScheduler) {
  // Section III: BMUX yields the highest delays of any work-conserving
  // locally-FIFO scheduler.
  const auto env = leaky({{2.0, 3.0}, {4.0, 2.0}});
  const double d_bmux = min_delay_bound(kC, DeltaMatrix::bmux(2, 0), env, 0);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dl(0.1, 20.0);
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<double> deadlines{dl(rng), dl(rng)};
    const double d =
        min_delay_bound(kC, DeltaMatrix::edf(deadlines), env, 0);
    EXPECT_LE(d, d_bmux + 1e-6) << "deadlines " << deadlines[0] << ","
                                << deadlines[1];
  }
}

TEST(Schedulability, UnstableConfigurationHasNoBound) {
  const auto env = leaky({{6.0, 1.0}, {5.0, 1.0}});  // 11 > C = 10
  EXPECT_EQ(min_delay_bound(kC, DeltaMatrix::fifo(2), env, 0), kInf);
}

TEST(Schedulability, LhsMonotoneInDeltaCap) {
  // Larger d weakly increases the LHS (more cross arrivals may precede).
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const DeltaMatrix d = DeltaMatrix::bmux(2, 0);
  double prev = 0.0;
  for (double dd : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double lhs = schedulability_lhs(kC, d, env, 0, dd);
    EXPECT_GE(lhs, prev - 1e-9);
    prev = lhs;
  }
}

TEST(Schedulability, MeetsBoundConsistentWithMinBound) {
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const DeltaMatrix d = DeltaMatrix::edf(std::vector<double>{2.0, 6.0});
  const double dmin = min_delay_bound(kC, d, env, 0);
  EXPECT_TRUE(meets_delay_bound(kC, d, env, 0, dmin + 1e-6));
  EXPECT_FALSE(meets_delay_bound(kC, d, env, 0, dmin - 1e-3));
}

TEST(Schedulability, ValidatesArguments) {
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_THROW((void)min_delay_bound(0.0, DeltaMatrix::fifo(2), env, 0),
               std::invalid_argument);
  EXPECT_THROW((void)min_delay_bound(kC, DeltaMatrix::fifo(3), env, 0),
               std::invalid_argument);
  EXPECT_THROW((void)schedulability_lhs(kC, DeltaMatrix::fifo(2), env, 0, -1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Theorem 2: for concave envelopes the greedy adversarial scenario
// realizes exactly the Eq. (24) bound (necessity + sufficiency).
// ---------------------------------------------------------------------

class TightnessProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TightnessProperty, GreedyScenarioMeetsEq24Bound) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> rate(0.5, 2.5);
  std::uniform_real_distribution<double> burst(0.5, 6.0);
  std::uniform_int_distribution<int> sched_pick(0, 3);
  std::uniform_real_distribution<double> dl(0.5, 8.0);

  const std::vector<nc::Curve> env{
      nc::Curve::leaky_bucket(rate(rng), burst(rng)),
      nc::Curve::leaky_bucket(rate(rng), burst(rng)),
      nc::Curve::leaky_bucket(rate(rng), burst(rng))};

  DeltaMatrix d = DeltaMatrix::fifo(3);
  switch (sched_pick(rng)) {
    case 0:
      break;  // FIFO
    case 1:
      d = DeltaMatrix::bmux(3, 0);
      break;
    case 2:
      d = DeltaMatrix::edf(std::vector<double>{dl(rng), dl(rng), dl(rng)});
      break;
    default:
      d = DeltaMatrix::static_priority(std::vector<int>{0, 1, 1});
      break;
  }

  const double dmin = min_delay_bound(kC, d, env, 0);
  ASSERT_TRUE(std::isfinite(dmin));
  const double greedy = greedy_worst_case_delay(kC, d, env, 0);
  // Sufficiency: greedy can never exceed the bound.  Necessity (concave
  // envelopes): the greedy scenario gets arbitrarily close to it.
  EXPECT_LE(greedy, dmin + 1e-4);
  EXPECT_NEAR(greedy, dmin, 2e-2 * (1.0 + dmin));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TightnessProperty,
                         ::testing::Range<std::uint32_t>(1, 40));

TEST(Tightness, GreedyDelayAtBasics) {
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const DeltaMatrix d = DeltaMatrix::fifo(2);
  // Just after the initial burst the backlog is B0 + Bc = 6, clearing in
  // 0.6 time units at C = 10 (minus what drains before t*).
  const double w = greedy_delay_at(kC, d, env, 0, 1e-9);
  EXPECT_NEAR(w, 0.6, 1e-3);
  EXPECT_THROW((void)greedy_delay_at(kC, d, env, 0, -1.0),
               std::invalid_argument);
}

TEST(Tightness, GreedyWorstCaseForFifoIsAtBurstInstant) {
  // For FIFO + leaky buckets the worst tagged arrival is right after the
  // simultaneous bursts: worst delay = (B0 + Bc)/C.
  const auto env = leaky({{1.0, 2.0}, {3.0, 4.0}});
  const double w = greedy_worst_case_delay(kC, DeltaMatrix::fifo(2), env, 0);
  EXPECT_NEAR(w, 0.6, 1e-3);
}

TEST(Tightness, GreedyUnstableReturnsInfinity) {
  const auto env = leaky({{6.0, 1.0}, {5.0, 1.0}});
  EXPECT_EQ(greedy_worst_case_delay(kC, DeltaMatrix::fifo(2), env, 0), kInf);
}

}  // namespace
}  // namespace deltanc::sched
