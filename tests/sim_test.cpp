#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/mmoo_source.h"
#include "sim/node.h"
#include "sim/rng.h"
#include "sim/scheduler_queue.h"
#include "sim/stats.h"
#include "sim/tandem.h"

namespace deltanc::sim {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
  Xoshiro256ss c(43);
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformInRangeWithSaneMean) {
  Xoshiro256ss rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256ss a(5);
  Xoshiro256ss b = a;
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (from_a.count(b())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256ss rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(MmooAggregate, StationaryOnFraction) {
  Xoshiro256ss rng(3);
  const auto model = traffic::MmooSource::paper_source();
  MmooAggregateSim agg(model, 200, rng);
  double on_sum = 0.0;
  const int slots = 100000;
  for (int t = 0; t < slots; ++t) {
    agg.step(rng);
    on_sum += agg.on_count();
  }
  EXPECT_NEAR(on_sum / slots / 200.0, model.stationary_on(),
              0.1 * model.stationary_on());
}

TEST(MmooAggregate, MeanRateMatchesAnalytic) {
  Xoshiro256ss rng(9);
  const auto model = traffic::MmooSource::paper_source();
  MmooAggregateSim agg(model, 100, rng);
  double kb = 0.0;
  const int slots = 200000;
  for (int t = 0; t < slots; ++t) kb += agg.step(rng);
  EXPECT_NEAR(kb / slots, 100.0 * model.mean_rate(),
              0.05 * 100.0 * model.mean_rate());
}

TEST(MmooAggregate, ZeroFlowsEmitNothing) {
  Xoshiro256ss rng(1);
  MmooAggregateSim agg(traffic::MmooSource::paper_source(), 0, rng);
  for (int t = 0; t < 10; ++t) {
    EXPECT_DOUBLE_EQ(agg.step(rng), 0.0);
  }
  EXPECT_THROW(
      MmooAggregateSim(traffic::MmooSource::paper_source(), -1, rng),
      std::invalid_argument);
}

Chunk chunk(int flow, double kb, std::int64_t slot, std::uint64_t seq) {
  return Chunk{flow, kb, kb, slot, slot, 0.0, seq};
}

TEST(FifoDiscipline, ServesInArrivalOrderWithPartialService) {
  auto q = make_fifo();
  q->enqueue(chunk(0, 5.0, 0, 0));
  q->enqueue(chunk(1, 5.0, 0, 1));
  EXPECT_DOUBLE_EQ(q->backlog(), 10.0);
  std::vector<Chunk> done;
  EXPECT_DOUBLE_EQ(q->serve(7.0, &done), 7.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].seq, 0u);
  EXPECT_DOUBLE_EQ(q->backlog(), 3.0);
  done.clear();
  EXPECT_DOUBLE_EQ(q->serve(10.0, &done), 3.0);  // work conserving
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].seq, 1u);
}

TEST(SpDiscipline, HighPriorityPreempts) {
  auto q = make_static_priority({0, 1});  // flow 1 is high priority
  q->enqueue(chunk(0, 4.0, 0, 0));
  q->enqueue(chunk(1, 4.0, 0, 1));
  std::vector<Chunk> done;
  q->serve(4.0, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 1);  // high priority served first
  EXPECT_THROW(q->enqueue(chunk(7, 1.0, 0, 2)), std::out_of_range);
}

TEST(EdfDiscipline, EarliestDeadlineFirst) {
  auto q = make_edf({10.0, 2.0});  // cross (flow 1) has the tight deadline
  q->enqueue(chunk(0, 4.0, 0, 0));
  q->enqueue(chunk(1, 4.0, 0, 1));
  std::vector<Chunk> done;
  q->serve(4.0, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 1);
}

TEST(EdfDiscipline, OlderArrivalWinsWithEqualDeadlineGap) {
  auto q = make_edf({5.0, 5.0});
  q->enqueue(chunk(0, 4.0, 3, 0));  // deadline 8
  q->enqueue(chunk(1, 4.0, 1, 1));  // deadline 6 -> earlier
  std::vector<Chunk> done;
  q->serve(4.0, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 1);
}

TEST(EdfDiscipline, PartiallyServedChunkKeepsItsDeadline) {
  auto q = make_edf({1.0, 100.0});
  q->enqueue(chunk(0, 10.0, 0, 0));
  q->enqueue(chunk(1, 10.0, 0, 1));
  std::vector<Chunk> done;
  q->serve(5.0, &done);  // half of chunk 0
  EXPECT_TRUE(done.empty());
  q->enqueue(chunk(1, 10.0, 1, 2));
  q->serve(5.0, &done);  // rest of chunk 0, still earliest
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 0);
}

TEST(GpsDiscipline, ProportionalSharing) {
  auto q = make_gps({3.0, 1.0});
  q->enqueue(chunk(0, 30.0, 0, 0));
  q->enqueue(chunk(1, 30.0, 0, 1));
  std::vector<Chunk> done;
  EXPECT_DOUBLE_EQ(q->serve(8.0, &done), 8.0);
  // 3:1 split of the 8 kb budget.
  EXPECT_NEAR(q->backlog(), 60.0 - 8.0, 1e-9);
  // Flow 0 got 6, flow 1 got 2: drain exactly the remainders to check.
  done.clear();
  q->serve(52.0, &done);
  ASSERT_EQ(done.size(), 2u);
}

TEST(GpsDiscipline, RedistributesWhenOneClassDrains) {
  auto q = make_gps({1.0, 1.0});
  q->enqueue(chunk(0, 2.0, 0, 0));
  q->enqueue(chunk(1, 10.0, 0, 1));
  std::vector<Chunk> done;
  // Equal split would give each 5, but flow 0 only has 2: the excess
  // goes to flow 1 (progressive filling), so all 10 kb are served.
  EXPECT_DOUBLE_EQ(q->serve(10.0, &done), 10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(q->backlog(), 2.0);
  EXPECT_THROW((void)make_gps({1.0, 0.0}), std::invalid_argument);
}

TEST(DrrDiscipline, QuantumGrantsAndDeficitCarryOver) {
  auto q = make_drr({3.0, 1.0});
  q->enqueue(chunk(0, 3.0, 0, 0));
  q->enqueue(chunk(1, 2.0, 0, 1));
  std::vector<Chunk> done;
  // Visit 0 grants 3 kb (completes flow 0), visit 1 grants 1 kb of the
  // 2 kb chunk -- the budget runs out mid-visit.
  EXPECT_DOUBLE_EQ(q->serve(4.0, &done), 4.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 0);
  EXPECT_DOUBLE_EQ(q->backlog(), 1.0);
  done.clear();
  // The next slot re-grants flow 1's quantum and finishes the chunk
  // (work conserving: only 1 kb of backlog remains).
  EXPECT_DOUBLE_EQ(q->serve(10.0, &done), 1.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 1);
  EXPECT_THROW((void)make_drr({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)make_drr({}), std::invalid_argument);
}

TEST(DrrDiscipline, RoundRobinSharesByQuanta) {
  auto q = make_drr({3.0, 1.0});
  q->enqueue(chunk(0, 30.0, 0, 0));
  q->enqueue(chunk(1, 30.0, 0, 1));
  std::vector<Chunk> done;
  EXPECT_DOUBLE_EQ(q->serve(8.0, &done), 8.0);  // two rounds of 3 + 1
  EXPECT_NEAR(q->backlog(), 52.0, 1e-9);
  done.clear();
  // 3:1 rounds drain flow 0's remaining 24 kb after exactly 8 more
  // rounds of 4 kb; flow 1 got 8 of those 32 kb, leaving 20.
  EXPECT_DOUBLE_EQ(q->serve(32.0, &done), 32.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 0);
  EXPECT_NEAR(q->backlog(), 20.0, 1e-9);
}

TEST(ScedDiscipline, DeadlineCurvesOrderService) {
  // Rates 2:1 -- flow 0's virtual server advances twice as fast, so its
  // 4 kb chunk (deadline 2) beats flow 1's 3 kb chunk (deadline 3).
  auto q = make_sced({2.0, 1.0});
  q->enqueue(chunk(0, 4.0, 0, 0));
  q->enqueue(chunk(1, 3.0, 0, 1));
  std::vector<Chunk> done;
  EXPECT_DOUBLE_EQ(q->serve(4.0, &done), 4.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 0);
  // Finish times accumulate: a second flow-0 chunk at slot 1 gets
  // deadline max(F_0, 1) + 2/2 = 3, tying flow 1's -- FIFO tie-break
  // puts flow 1's earlier arrival first.
  q->enqueue(chunk(0, 2.0, 1, 2));
  done.clear();
  EXPECT_DOUBLE_EQ(q->serve(5.0, &done), 5.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].flow, 1);
  EXPECT_EQ(done[1].flow, 0);
  EXPECT_THROW((void)make_sced({}), std::invalid_argument);
  EXPECT_THROW((void)make_sced({1.0, -1.0}), std::invalid_argument);
  // A zero rate is legal only for a class that never sends.
  auto z = make_sced({1.0, 0.0});
  z->enqueue(chunk(0, 1.0, 0, 0));
  EXPECT_THROW(z->enqueue(chunk(1, 1.0, 0, 1)), std::invalid_argument);
}

TEST(Tandem, DrrAndScedDisciplinesRunEndToEnd) {
  // The lowered disciplines must run the full tandem and land between
  // the two static-priority extremes, like GPS does.
  TandemConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 50000;
  TandemConfig hi = c;
  hi.discipline = DisciplineKind::kSpThroughHigh;
  TandemConfig lo = c;
  lo.discipline = DisciplineKind::kSpThroughLow;
  const double hi_tail = run_tandem(hi).through_delay.quantile(0.999);
  const double lo_tail = run_tandem(lo).through_delay.quantile(0.999);
  for (const DisciplineKind kind :
       {DisciplineKind::kDrr, DisciplineKind::kSced}) {
    TandemConfig cc = c;
    cc.discipline = kind;
    const TandemResult r = run_tandem(cc);
    ASSERT_GT(r.through_delay.count(), 0u);
    const double tail = r.through_delay.quantile(0.999);
    EXPECT_GE(tail, hi_tail - 1.0);
    EXPECT_LE(tail, lo_tail + 1.0);
  }
}

TEST(NodeBasics, WorkConservingBudget) {
  Node node(10.0, make_fifo());
  node.arrive(chunk(0, 25.0, 0, 0));
  std::vector<Chunk> done;
  EXPECT_DOUBLE_EQ(node.advance(&done), 10.0);
  EXPECT_DOUBLE_EQ(node.advance(&done), 10.0);
  EXPECT_DOUBLE_EQ(node.advance(&done), 5.0);
  EXPECT_DOUBLE_EQ(node.advance(&done), 0.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_THROW(Node(0.0, make_fifo()), std::invalid_argument);
  EXPECT_THROW(Node(1.0, nullptr), std::invalid_argument);
}

TEST(DelayRecorderStats, MomentsAndQuantiles) {
  DelayRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_NEAR(r.mean(), 50.5, 1e-9);
  EXPECT_NEAR(r.variance(), 841.66666, 1e-3);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
  EXPECT_NEAR(r.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 100.0);
  EXPECT_NEAR(r.exceed_fraction(90.0), 0.10, 1e-9);
  EXPECT_THROW((void)r.quantile(1.5), std::invalid_argument);
  DelayRecorder empty;
  EXPECT_THROW((void)empty.quantile(0.5), std::logic_error);
}

TEST(QuantileResolvability, TailSampleThreshold) {
  // The shared heuristic: the (1 - eps) quantile is trusted only when
  // eps * samples >= min_tail_samples (default 50).
  EXPECT_TRUE(quantile_resolvable(1e-3, 50000));     // 50 tail samples
  EXPECT_FALSE(quantile_resolvable(1e-3, 49999));    // 49.999
  EXPECT_TRUE(quantile_resolvable(1e-6, 100000000));
  EXPECT_FALSE(quantile_resolvable(1e-6, 1000000));  // only 1 tail sample
  // Custom tail requirement (PathAnalyzer::validate uses 100).
  EXPECT_TRUE(quantile_resolvable(1e-3, 100000, 100.0));
  EXPECT_FALSE(quantile_resolvable(1e-3, 99999, 100.0));
  // Degenerate inputs are never resolvable.
  EXPECT_FALSE(quantile_resolvable(0.0, 100000));
  EXPECT_FALSE(quantile_resolvable(-1e-3, 100000));
  EXPECT_FALSE(quantile_resolvable(1e-3, 0));
}

TEST(QuantileResolvability, DeepestEpsilonSelection) {
  // eps = min_tail / samples, clamped into [floor, 0.5]; consistent
  // with quantile_resolvable at the returned level.
  EXPECT_DOUBLE_EQ(deepest_resolvable_epsilon(100000, 100.0, 1e-9), 1e-3);
  EXPECT_TRUE(quantile_resolvable(
      deepest_resolvable_epsilon(100000, 100.0, 1e-9), 100000, 100.0));
  // The floor wins when the sample budget could resolve deeper.
  EXPECT_DOUBLE_EQ(deepest_resolvable_epsilon(1000000000, 50.0, 1e-6), 1e-6);
  // Tiny runs clamp to 0.5 (the median is the best one can do).
  EXPECT_DOUBLE_EQ(deepest_resolvable_epsilon(10, 50.0, 1e-9), 0.5);
  EXPECT_DOUBLE_EQ(deepest_resolvable_epsilon(0, 50.0, 1e-9), 0.5);
}

TEST(Tandem, LightLoadDelaysAreMinimal) {
  TandemConfig c;
  c.hops = 3;
  c.n_through = 5;
  c.n_cross = 5;
  c.slots = 20000;
  const TandemResult r = run_tandem(c);
  ASSERT_GT(r.through_delay.count(), 0u);
  // 5+5 flows of 1.5 Mbps peak on a 100 Mbps link: no queueing, every
  // chunk crosses each node in one slot.
  EXPECT_DOUBLE_EQ(r.through_delay.max(), 3.0);
}

TEST(Tandem, UtilizationMatchesOfferedLoad) {
  TandemConfig c;
  c.hops = 2;
  c.n_through = 100;
  c.n_cross = 100;
  c.slots = 100000;
  const TandemResult r = run_tandem(c);
  const double load =
      200.0 * c.source.mean_rate() / c.capacity_kb_per_slot;
  EXPECT_NEAR(r.mean_utilization, load, 0.1 * load);
}

TEST(Tandem, ReproducibleForFixedSeed) {
  TandemConfig c;
  c.hops = 2;
  c.n_through = 250;  // heavy enough that queueing noise is visible
  c.n_cross = 250;
  c.slots = 20000;
  c.seed = 77;
  const TandemResult a = run_tandem(c);
  const TandemResult b = run_tandem(c);
  EXPECT_EQ(a.through_delay.count(), b.through_delay.count());
  EXPECT_DOUBLE_EQ(a.through_delay.mean(), b.through_delay.mean());
  c.seed = 78;
  const TandemResult d = run_tandem(c);
  EXPECT_NE(a.through_delay.mean(), d.through_delay.mean());
}

TEST(Tandem, SchedulerOrderingUnderLoad) {
  // At high utilization the through traffic's tail delay must order as
  // SP-high <= EDF(favoured) <= FIFO <= SP-low (blind multiplexing).
  TandemConfig c;
  c.hops = 3;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 150000;
  c.edf_through_deadline = 5.0;
  c.edf_cross_deadline = 50.0;

  const auto tail = [&](DisciplineKind kind) {
    TandemConfig cc = c;
    cc.discipline = kind;
    return run_tandem(cc).through_delay.quantile(0.999);
  };
  const double sp_high = tail(DisciplineKind::kSpThroughHigh);
  const double edf = tail(DisciplineKind::kEdf);
  const double fifo = tail(DisciplineKind::kFifo);
  const double sp_low = tail(DisciplineKind::kSpThroughLow);
  EXPECT_LE(sp_high, edf + 1.0);
  EXPECT_LE(edf, fifo + 1.0);
  EXPECT_LE(fifo, sp_low + 1.0);
  EXPECT_LT(sp_high, sp_low);  // the spread is real, not noise
}

TEST(Tandem, GpsIsNotOrderedLikeADeltaScheduler) {
  // GPS's precedence depends on the backlog realization (the paper's
  // reason it is not a Delta-scheduler); with equal weights its through
  // delay falls strictly between SP-high and SP-low under load.
  TandemConfig c;
  c.hops = 2;
  c.n_through = 250;
  c.n_cross = 250;
  c.slots = 100000;
  c.discipline = DisciplineKind::kGps;
  const double gps = run_tandem(c).through_delay.quantile(0.999);
  TandemConfig hi = c;
  hi.discipline = DisciplineKind::kSpThroughHigh;
  TandemConfig lo = c;
  lo.discipline = DisciplineKind::kSpThroughLow;
  EXPECT_GE(gps, run_tandem(hi).through_delay.quantile(0.999) - 1.0);
  EXPECT_LE(gps, run_tandem(lo).through_delay.quantile(0.999) + 1.0);
}

TEST(Tandem, ValidatesConfig) {
  TandemConfig c;
  c.hops = 0;
  EXPECT_THROW((void)run_tandem(c), std::invalid_argument);
  c.hops = 1;
  c.slots = 0;
  EXPECT_THROW((void)run_tandem(c), std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::sim
