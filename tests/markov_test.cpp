#include "traffic/markov.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/markov_source.h"
#include "sim/mmoo_source.h"
#include "traffic/mmoo.h"

namespace deltanc::traffic {
namespace {

MarkovSource three_state_video() {
  // Idle / active / burst, sticky states -- a rough VBR video model.
  return MarkovSource({{0.95, 0.05, 0.00},
                       {0.02, 0.90, 0.08},
                       {0.00, 0.30, 0.70}},
                      {0.0, 2.0, 8.0});
}

TEST(MarkovSource, ConstructionValidates) {
  EXPECT_NO_THROW(three_state_video());
  EXPECT_THROW(MarkovSource({}, {}), std::invalid_argument);
  EXPECT_THROW(MarkovSource({{0.5, 0.4}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(MarkovSource({{0.5, 0.6}, {0.5, 0.5}}, {0.0, 1.0}),
               std::invalid_argument);  // row sums to 1.1
  EXPECT_THROW(MarkovSource({{1.0}}, {-1.0}), std::invalid_argument);
}

TEST(MarkovSource, TwoStateMatchesMmooModel) {
  // The on_off factory must agree with MmooSource on every statistic.
  const MarkovSource general = MarkovSource::on_off(1.5, 0.989, 0.9);
  const MmooSource specific = MmooSource::paper_source();
  EXPECT_NEAR(general.mean_rate(), specific.mean_rate(), 1e-9);
  EXPECT_DOUBLE_EQ(general.peak_rate(), specific.peak_rate());
  for (double s : {0.01, 0.1, 0.5, 2.0, 10.0}) {
    EXPECT_NEAR(general.effective_bandwidth(s),
                specific.effective_bandwidth(s),
                1e-6 * specific.effective_bandwidth(s))
        << "s = " << s;
  }
}

TEST(MarkovSource, StationarySumsToOneAndIsInvariant) {
  const MarkovSource src = three_state_video();
  const auto pi = src.stationary();
  double sum = 0.0;
  for (double x : pi) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // pi P = pi.
  for (std::size_t j = 0; j < src.states(); ++j) {
    double next = 0.0;
    for (std::size_t i = 0; i < src.states(); ++i) {
      next += pi[i] * src.transition()[i][j];
    }
    EXPECT_NEAR(next, pi[j], 1e-10) << "state " << j;
  }
}

TEST(MarkovSource, EffectiveBandwidthLimitsAndMonotonicity) {
  const MarkovSource src = three_state_video();
  EXPECT_NEAR(src.effective_bandwidth(1e-7), src.mean_rate(), 1e-3);
  EXPECT_NEAR(src.effective_bandwidth(100.0), src.peak_rate(), 0.2);
  double prev = 0.0;
  for (double s = 0.01; s <= 32.0; s *= 2.0) {
    const double eb = src.effective_bandwidth(s);
    EXPECT_GE(eb, prev - 1e-12);
    EXPECT_GE(eb, src.mean_rate() - 1e-9);
    EXPECT_LE(eb, src.peak_rate() + 1e-9);
    prev = eb;
  }
}

TEST(MarkovSource, LargeSIsNumericallyStable) {
  const MarkovSource src = three_state_video();
  EXPECT_TRUE(std::isfinite(src.effective_bandwidth(1e4)));
}

TEST(MarkovSource, EffectiveBandwidthBoundsMonteCarloMgf) {
  const MarkovSource src = three_state_video();
  const double s = 0.4;
  const int t_len = 50, trials = 20000;
  sim::Xoshiro256ss rng(12);
  double sum_exp = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    sim::MarkovAggregateSim one(src, 1, rng);
    double a = 0.0;
    for (int t = 0; t < t_len; ++t) a += one.step(rng);
    sum_exp += std::exp(s * a);
  }
  const double empirical = std::log(sum_exp / trials) / (s * t_len);
  EXPECT_LE(empirical, src.effective_bandwidth(s) + 0.05);
}

TEST(MarkovAggregateSim, CountsConserveFlows) {
  const MarkovSource src = three_state_video();
  sim::Xoshiro256ss rng(3);
  sim::MarkovAggregateSim agg(src, 120, rng);
  for (int t = 0; t < 2000; ++t) {
    agg.step(rng);
    int total = 0;
    for (int c : agg.counts()) total += c;
    ASSERT_EQ(total, 120);
  }
}

TEST(MarkovAggregateSim, MeanRateMatchesAnalytic) {
  const MarkovSource src = three_state_video();
  sim::Xoshiro256ss rng(9);
  sim::MarkovAggregateSim agg(src, 50, rng);
  double kb = 0.0;
  const int slots = 100000;
  for (int t = 0; t < slots; ++t) kb += agg.step(rng);
  EXPECT_NEAR(kb / slots, 50.0 * src.mean_rate(),
              0.05 * 50.0 * src.mean_rate());
}

TEST(MarkovAggregateSim, TwoStateAgreesWithBinomialSampler) {
  // Statistically: the general multinomial sampler and the dedicated
  // binomial MMOO sampler must produce the same mean emission.
  const MarkovSource general = MarkovSource::on_off(1.5, 0.989, 0.9);
  const MmooSource specific = MmooSource::paper_source();
  sim::Xoshiro256ss rng_a(7), rng_b(7);
  sim::MarkovAggregateSim a(general, 100, rng_a);
  sim::MmooAggregateSim b(specific, 100, rng_b);
  double ka = 0.0, kb = 0.0;
  for (int t = 0; t < 100000; ++t) {
    ka += a.step(rng_a);
    kb += b.step(rng_b);
  }
  EXPECT_NEAR(ka, kb, 0.05 * kb);
}

TEST(MarkovAggregateSim, ValidatesInput) {
  sim::Xoshiro256ss rng(1);
  EXPECT_THROW(sim::MarkovAggregateSim(three_state_video(), -1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace deltanc::traffic
