// Monte-Carlo validation of Theorem 1: the statistical service curve
// guarantee
//
//     P( D(t) < A * [S - sigma]_+ (t) )  <=  eps_s(sigma)
//
// is checked pathwise against a slot-level simulation of one node running
// the *actual* scheduling algorithm (FIFO / SP / EDF), with the cross
// traffic's sample-path envelope taken from its effective-bandwidth EBB
// description.  This ties the paper's central theorem directly to an
// executable system rather than only to its own algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sched/delta.h"
#include "sim/mmoo_source.h"
#include "sim/node.h"
#include "sim/rng.h"
#include "traffic/mmoo.h"

namespace deltanc {
namespace {

struct McConfig {
  double capacity = 100.0;
  int n_through = 150;
  int n_cross = 150;
  double theta = 5.0;    // slots
  double delta = 0.0;    // Delta_{0,c} of the scheduler under test
  double s = 0.3;        // Chernoff parameter for the cross envelope
  double gamma = 1.0;    // union-bound slack of the sample-path envelope
  int slots = 60000;
  std::uint64_t seed = 21;
};

/// Runs one node and returns the violation frequency of the Theorem-1
/// guarantee at the given sigma, together with the analytic eps_s(sigma).
std::pair<double, double> violation_frequency(
    const McConfig& cfg, std::unique_ptr<sim::Discipline> discipline,
    double sigma) {
  const auto model = traffic::MmooSource::paper_source();
  sim::Xoshiro256ss rng(cfg.seed);
  sim::MmooAggregateSim through(model, cfg.n_through, rng);
  sim::Xoshiro256ss cross_rng = rng;
  cross_rng.jump();
  sim::MmooAggregateSim cross(model, cfg.n_cross, cross_rng);

  sim::Node node(cfg.capacity, std::move(discipline));

  // The Theorem-1 curve for linear cross envelopes:
  //   S(t; theta) = [C t - (rho_c + gamma) (t - theta + Delta(theta))]_+
  //                 for t > theta,
  // where Delta(theta) = min(delta, theta) and the cross envelope rate is
  // rho_c = Nc * eb(s).
  const double rho_c = cfg.n_cross * model.effective_bandwidth(cfg.s);
  const double shift = cfg.theta - std::min(cfg.delta, cfg.theta);
  const auto service = [&](double t) {
    if (t <= cfg.theta) return 0.0;
    const double cross_term =
        std::max(0.0, (rho_c + cfg.gamma) * (t - shift));
    return std::max(0.0, cfg.capacity * t - cross_term);
  };
  // eps_s(sigma) = e^{-s sigma} / (1 - e^{-s gamma})  (M = 1 aggregate).
  const double eps = std::exp(-cfg.s * sigma) /
                     (1.0 - std::exp(-cfg.s * cfg.gamma));

  std::vector<double> a_cum{0.0};  // A(t): arrivals through end of slot t
  double d_cum = 0.0;
  std::vector<sim::Chunk> completed;
  std::uint64_t seq = 0;
  std::int64_t violations = 0;
  std::int64_t checks = 0;
  const int window = 2000;  // convolution lookback (busy periods are short)

  for (int t = 0; t < cfg.slots; ++t) {
    const double thr_kb = through.step(rng);
    if (thr_kb > 0.0) {
      node.arrive(sim::Chunk{0, thr_kb, thr_kb, t, t, 0.0, seq++});
    }
    const double cross_kb = cross.step(cross_rng);
    if (cross_kb > 0.0) {
      node.arrive(sim::Chunk{1, cross_kb, cross_kb, t, t, 0.0, seq++});
    }
    a_cum.push_back(a_cum.back() + thr_kb);

    completed.clear();
    node.advance(&completed);
    for (const auto& c : completed) {
      if (c.flow == 0) d_cum += c.total_kb;
    }

    if (t < 1000) continue;  // warmup
    // A * [S - sigma]_+ (t) = min_u A(u) + [S(t - u) - sigma]_+ .
    double conv = a_cum[static_cast<std::size_t>(t) + 1];  // u = t term
    const int u_lo = std::max(0, t - window);
    for (int u = u_lo; u <= t; ++u) {
      const double s_val =
          std::max(0.0, service(static_cast<double>(t - u)) - sigma);
      conv = std::min(conv, a_cum[static_cast<std::size_t>(u) + 1] + s_val);
    }
    ++checks;
    if (d_cum < conv - 1e-6) ++violations;
  }
  return {static_cast<double>(violations) / static_cast<double>(checks),
          eps};
}

TEST(Theorem1MonteCarlo, FifoGuaranteeHolds) {
  McConfig cfg;
  cfg.delta = 0.0;
  for (double sigma : {20.0, 40.0}) {
    const auto [freq, eps] =
        violation_frequency(cfg, sim::make_fifo(), sigma);
    EXPECT_LE(freq, eps) << "sigma = " << sigma << " (eps = " << eps << ")";
  }
}

TEST(Theorem1MonteCarlo, BmuxGuaranteeHolds) {
  // Through traffic as the lowest priority: Delta = +inf, so
  // Delta(theta) = theta and the cross envelope is unshifted.
  McConfig cfg;
  cfg.delta = std::numeric_limits<double>::infinity();
  const auto [freq, eps] = violation_frequency(
      cfg, sim::make_static_priority({0, 1}), 30.0);
  EXPECT_LE(freq, eps);
}

TEST(Theorem1MonteCarlo, EdfGuaranteeHolds) {
  // EDF with d*_0 = 4, d*_c = 12 slots: Delta = -8.
  McConfig cfg;
  cfg.delta = -8.0;
  cfg.theta = 6.0;
  const auto [freq, eps] =
      violation_frequency(cfg, sim::make_edf({4.0, 12.0}), 25.0);
  EXPECT_LE(freq, eps);
}

TEST(Theorem1MonteCarlo, SpHighGuaranteeHolds) {
  // Through traffic at top priority: cross traffic never precedes
  // (Delta = -inf); the guarantee is the full link, gated at theta.
  McConfig cfg;
  cfg.delta = -std::numeric_limits<double>::infinity();
  const auto [freq, eps] = violation_frequency(
      cfg, sim::make_static_priority({1, 0}), 15.0);
  EXPECT_LE(freq, eps);
}

TEST(Theorem1MonteCarlo, ViolationsAppearBeyondTheGuarantee) {
  // Sanity check that the experiment has teeth: an *invalid* "service
  // curve" that pretends the cross traffic does not exist (full link,
  // no gate, negative sigma margin) must be violated often under load.
  McConfig cfg;
  cfg.theta = 0.0;
  cfg.n_cross = 350;
  cfg.n_through = 350;
  const auto model = traffic::MmooSource::paper_source();
  sim::Xoshiro256ss rng(cfg.seed);
  sim::MmooAggregateSim through(model, cfg.n_through, rng);
  sim::Xoshiro256ss cross_rng = rng;
  cross_rng.jump();
  sim::MmooAggregateSim cross(model, cfg.n_cross, cross_rng);
  sim::Node node(cfg.capacity, sim::make_fifo());
  std::vector<double> a_cum{0.0};
  double d_cum = 0.0;
  std::vector<sim::Chunk> completed;
  std::uint64_t seq = 0;
  std::int64_t violations = 0, checks = 0;
  for (int t = 0; t < 20000; ++t) {
    const double thr = through.step(rng);
    if (thr > 0.0) node.arrive(sim::Chunk{0, thr, thr, t, t, 0.0, seq++});
    const double cr = cross.step(cross_rng);
    if (cr > 0.0) node.arrive(sim::Chunk{1, cr, cr, t, t, 0.0, seq++});
    a_cum.push_back(a_cum.back() + thr);
    completed.clear();
    node.advance(&completed);
    for (const auto& c : completed) {
      if (c.flow == 0) d_cum += c.total_kb;
    }
    if (t < 1000) continue;
    // Fake guarantee: full capacity, ignoring everything else.
    double conv = a_cum[static_cast<std::size_t>(t) + 1];
    for (int u = std::max(0, t - 400); u <= t; ++u) {
      conv = std::min(conv, a_cum[static_cast<std::size_t>(u) + 1] +
                                cfg.capacity * (t - u));
    }
    ++checks;
    if (d_cum < conv - 1e-6) ++violations;
  }
  EXPECT_GT(static_cast<double>(violations) / static_cast<double>(checks),
            0.05);
}

}  // namespace
}  // namespace deltanc
