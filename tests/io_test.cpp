// The serialization layer: the JSON document model/parser/writer
// (io/json.h) and the schema-versioned codec (io/codec.h).  The
// load-bearing properties are bit-exact double round-trips (including
// the non-finite encodings) and byte-stable canonical dumps -- the
// persistent result cache hashes them.
#include "e2e/solver.h"
#include "io/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/scenario.h"
#include "e2e/additive_baseline.h"

namespace deltanc::io {
namespace {

using json::Value;

constexpr double kInf = std::numeric_limits<double>::infinity();

e2e::Scenario fig2_scenario(int n_cross, sched::SchedulerKind sched) {
  e2e::Scenario sc;
  sc.hops = 5;
  sc.n_through = 100;
  sc.n_cross = n_cross;
  sc.epsilon = 1e-6;
  sc.scheduler = sched;
  return sc;
}

// ----- json::Value -------------------------------------------------------

TEST(Json, ParseAndDumpRoundTripPreservingOrder) {
  const std::string text =
      R"({"z":1,"a":[true,false,null,"x\n\"y\""],"nested":{"k":-2.5}})";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.dump(), text);  // insertion order preserved, compact form
  EXPECT_EQ(v.at("a").size(), 4u);
  EXPECT_TRUE(v.at("a").at(2).is_null());
  EXPECT_EQ(v.at("a").at(3).as_string(), "x\n\"y\"");
  EXPECT_EQ(v.at("nested").at("k").as_number(), -2.5);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const Value v = Value::parse(R"(["Aé€😀"])");
  EXPECT_EQ(v.at(std::size_t{0}).as_string(),
            "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)Value::parse("{\n  \"a\": 1,\n  12\n}");
    FAIL() << "expected ParseError";
  } catch (const json::ParseError& e) {
    EXPECT_EQ(e.line, 3u);
    EXPECT_GT(e.column, 0u);
  }
  EXPECT_THROW((void)Value::parse("{} trailing"), json::ParseError);
  EXPECT_THROW((void)Value::parse(""), json::ParseError);
  EXPECT_THROW((void)Value::parse("{\"a\":}"), json::ParseError);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Value v = Value::parse(R"({"n":1})");
  EXPECT_THROW((void)v.at("n").as_string(), json::TypeError);
  EXPECT_THROW((void)v.at("missing"), json::TypeError);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("n").items(), json::TypeError);
}

TEST(Json, NumbersRoundTripBitExactly) {
  const double cases[] = {0.0,         1.0 / 3.0, 0.1,
                          1e-300,      1e300,     -2.2250738585072014e-308,
                          6.02214e23,  -1.5,      123456789.123456789,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min()};
  for (const double d : cases) {
    const Value v = Value::parse(Value::number(d).dump());
    EXPECT_EQ(v.as_number(), d) << Value::number(d).dump();
    // Bitwise, not just ==, so -0.0 vs 0.0 style slips would show up.
    const double back = v.as_number();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0)
        << Value::number(d).dump();
  }
  // Integral doubles print as integers (stable canonical form).
  EXPECT_EQ(Value::number(100.0).dump(), "100");
  EXPECT_EQ(Value::number(-3.0).dump(), "-3");
}

TEST(Json, WriterRejectsNonFiniteNumbers) {
  EXPECT_THROW((void)Value::number(kInf).dump(), std::invalid_argument);
  EXPECT_THROW((void)Value::number(std::nan("")).dump(),
               std::invalid_argument);
}

// ----- codec doubles -----------------------------------------------------

TEST(Codec, NonFiniteDoublesEncodeAsStrings) {
  EXPECT_EQ(encode_double(kInf).dump(), "\"inf\"");
  EXPECT_EQ(encode_double(-kInf).dump(), "\"-inf\"");
  EXPECT_EQ(encode_double(std::nan("")).dump(), "\"nan\"");
  EXPECT_EQ(decode_double(encode_double(kInf)), kInf);
  EXPECT_EQ(decode_double(encode_double(-kInf)), -kInf);
  EXPECT_TRUE(std::isnan(decode_double(encode_double(std::nan("")))));
}

TEST(Codec, DecodeDoubleAcceptsHexfloatStrings) {
  // The PR 2 golden notation: hand-written documents can pin exact bits.
  EXPECT_EQ(decode_double(Value::string("0x1.6126458d64984p+4")),
            0x1.6126458d64984p+4);
  EXPECT_THROW((void)decode_double(Value::string("12 monkeys")), CodecError);
  EXPECT_THROW((void)decode_double(Value::boolean(true)), CodecError);
}

// ----- codec value types -------------------------------------------------

TEST(Codec, ScenarioRoundTripsExactly) {
  e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kEdf);
  sc.scheduler.set_edf_factors(sched::EdfFactors{1.0, 10.0});
  sc.capacity = 155.52;  // an OC-3, not representable in few digits
  const e2e::Scenario back = decode_scenario(encode_scenario(sc));
  EXPECT_EQ(back.capacity, sc.capacity);
  EXPECT_EQ(back.hops, sc.hops);
  EXPECT_EQ(back.source.peak_kb(), sc.source.peak_kb());
  EXPECT_EQ(back.source.p11(), sc.source.p11());
  EXPECT_EQ(back.source.p22(), sc.source.p22());
  EXPECT_EQ(back.n_through, sc.n_through);
  EXPECT_EQ(back.n_cross, sc.n_cross);
  EXPECT_EQ(back.epsilon, sc.epsilon);
  EXPECT_EQ(back.scheduler, sc.scheduler);
  EXPECT_EQ(back.scheduler.edf_factors(), sc.scheduler.edf_factors());
  // Canonical dump is byte-stable: encode twice, identical bytes.
  EXPECT_EQ(encode_scenario(sc).dump(), encode_scenario(back).dump());
}

TEST(Codec, ScenarioDecodeRejectsBadDocuments) {
  // An unknown scheduler name is specifically a SchemaError -- another
  // producer's vocabulary, which the result cache classifies kStale --
  // not a generic decode failure.
  Value v = encode_scenario(fig2_scenario(100, sched::SchedulerKind::kFifo));
  v.set("scheduler", Value::string("round-robin"));
  EXPECT_THROW((void)decode_scenario(v), SchemaError);
  Value obj = encode_scenario(fig2_scenario(100, sched::SchedulerKind::kFifo));
  Value bad_sched = Value::object();
  bad_sched.set("kind", Value::string("wfq"));
  obj.set("scheduler", std::move(bad_sched));
  EXPECT_THROW((void)decode_scenario(obj), SchemaError);
  EXPECT_THROW((void)decode_scenario(Value::number(3.0)), CodecError);
  Value hops = encode_scenario(fig2_scenario(100, sched::SchedulerKind::kFifo));
  hops.set("hops", Value::number(2.5));
  EXPECT_THROW((void)decode_scenario(hops), CodecError);
}

TEST(Codec, SchedulerSpecsRoundTripInAllForms) {
  // The full-object form round-trips every spec, including fixed-Delta
  // offsets (finite and infinite), EDF factors, and curve-backed class
  // weights.
  for (const sched::SchedulerSpec& spec :
       {sched::SchedulerSpec::fifo(), sched::SchedulerSpec::bmux(),
        sched::SchedulerSpec::sp_high(), sched::SchedulerSpec::edf(2.0, 5.0),
        sched::SchedulerSpec::fixed_delta(2.5),
        sched::SchedulerSpec::fixed_delta(kInf),
        sched::SchedulerSpec::fixed_delta(-kInf),
        sched::SchedulerSpec::gps(3.0, 1.0),
        sched::SchedulerSpec::drr(2.0, 0.5),
        sched::SchedulerSpec::gps(sched::ClassWeights::of({1.0, 2.0, 4.0})),
        sched::SchedulerSpec::sced()}) {
    const sched::SchedulerSpec back = decode_scheduler(encode_scheduler(spec));
    EXPECT_EQ(back, spec) << sched::to_string(spec);
  }
  // The codec also accepts the compact string form (bare names,
  // "delta:<value>", and weighted "gps:w,..." spellings) wherever a
  // scheduler is expected.
  sched::SchedulerSpec s = decode_scheduler(Value::string("delta:2.5"));
  EXPECT_EQ(s, sched::SchedulerSpec::fixed_delta(2.5));
  EXPECT_EQ(decode_scheduler(Value::string("bmux")),
            sched::SchedulerSpec::bmux());
  EXPECT_EQ(decode_scheduler(Value::string("gps:3,1")),
            sched::SchedulerSpec::gps(3.0, 1.0));
  EXPECT_EQ(decode_scheduler(Value::string("sced")),
            sched::SchedulerSpec::sced());
}

TEST(Codec, SchedulerParamsFieldIsValidatedAndDefaulted) {
  // A schema-2 object (no "params") decodes to the default equal split.
  Value v2 = encode_scheduler(sched::SchedulerSpec::gps(3.0, 1.0));
  v2.set("params", Value::null());
  EXPECT_EQ(decode_scheduler(v2), sched::SchedulerSpec::gps());
  // Malformed params are CodecErrors, not silent clamps.
  Value one = encode_scheduler(sched::SchedulerSpec::gps());
  Value short_list = Value::array();
  short_list.push_back(Value::number(1.0));
  one.set("params", std::move(short_list));
  EXPECT_THROW((void)decode_scheduler(one), CodecError);
  Value neg = encode_scheduler(sched::SchedulerSpec::gps());
  Value neg_list = Value::array();
  neg_list.push_back(Value::number(-1.0));
  neg_list.push_back(Value::number(1.0));
  neg.set("params", std::move(neg_list));
  EXPECT_THROW((void)decode_scheduler(neg), CodecError);
}

TEST(Codec, DiagnosticsAndStatsRoundTrip) {
  diag::Diagnostics d;
  d.fail(diag::SolveErrorKind::kUnstable, "load 1.2 >= 1");
  d.warn(diag::SolveErrorKind::kNoConvergence, "EDF hit iteration cap");
  d.warn(diag::SolveErrorKind::kCorruptCache, "entry re-solved");
  const diag::Diagnostics back = decode_diagnostics(encode_diagnostics(d));
  EXPECT_EQ(back.error, d.error);
  EXPECT_EQ(back.message, d.message);
  ASSERT_EQ(back.warnings.size(), 2u);
  EXPECT_EQ(back.warnings[1].kind, diag::SolveErrorKind::kCorruptCache);
  EXPECT_EQ(back.warnings[1].message, "entry re-solved");

  e2e::SolveStats stats;
  stats.optimize_evals = 123456;
  stats.eb_evals = 78;
  stats.sigma_evals = 123456;
  stats.edf_iterations = 17;
  stats.edf_converged = false;
  stats.retries = 2;
  stats.fallbacks = 1;
  stats.scan_ms = 1.25;
  stats.refine_ms = 0.75;
  stats.cache_hits = 1;
  const e2e::SolveStats sback = decode_solve_stats(encode_solve_stats(stats));
  EXPECT_EQ(sback.optimize_evals, stats.optimize_evals);
  EXPECT_EQ(sback.edf_converged, false);
  EXPECT_EQ(sback.retries, 2);
  EXPECT_EQ(sback.scan_ms, 1.25);
  EXPECT_EQ(sback.cache_hits, 1);
}

TEST(Codec, SolvedBoundResultsRoundTripBitExactly) {
  // Real Fig. 2 solves (the PR 2 golden operating points) through the
  // codec: every double must come back with identical bits, including
  // the +inf delay of an unstable point.
  const struct {
    int n_cross;
    sched::SchedulerKind sched;
  } cases[] = {{67, sched::SchedulerKind::kFifo},
               {268, sched::SchedulerKind::kBmux},
               {538, sched::SchedulerKind::kSpHigh},
               {168, sched::SchedulerKind::kEdf}};
  for (const auto& c : cases) {
    const e2e::BoundResult r =
        deltanc::Solver().solve(fig2_scenario(c.n_cross, c.sched));
    const e2e::BoundResult back = decode_bound_result(encode_bound_result(r));
    EXPECT_EQ(back.delay_ms, r.delay_ms);
    EXPECT_EQ(back.gamma, r.gamma);
    EXPECT_EQ(back.s, r.s);
    EXPECT_EQ(back.sigma, r.sigma);
    EXPECT_EQ(back.delta, r.delta);
    EXPECT_EQ(back.stats.optimize_evals, r.stats.optimize_evals);
    EXPECT_EQ(back.diagnostics.error, r.diagnostics.error);
  }
  // Unstable: +inf delay survives the string encoding.
  const e2e::BoundResult unstable =
      deltanc::Solver().solve(fig2_scenario(800, sched::SchedulerKind::kFifo));
  ASSERT_EQ(unstable.delay_ms, kInf);
  EXPECT_EQ(decode_bound_result(encode_bound_result(unstable)).delay_ms, kInf);
}

TEST(Codec, Fig3AndFig4BoundResultsRoundTripBitExactly) {
  // Representative operating points of the Fig. 3 (traffic mix at
  // constant U = 50%) and Fig. 4 (path-length scaling) grids at the
  // figures' eps = 1e-9, including both EDF deadline settings and the
  // additive BMUX baseline: every solved result must survive the codec
  // with identical bits, and its re-encoding must be byte-stable.
  std::vector<e2e::Scenario> scenarios;
  const struct {
    sched::SchedulerKind sched;
    double own, cross;
  } fig3_columns[] = {{sched::SchedulerKind::kEdf, 1.0, 2.0},
                      {sched::SchedulerKind::kFifo, 1.0, 1.0},
                      {sched::SchedulerKind::kEdf, 1.0, 0.5},
                      {sched::SchedulerKind::kBmux, 1.0, 1.0}};
  for (const int mix_pct : {10, 50, 90}) {
    const double uc = 0.50 * mix_pct / 100.0;
    for (const auto& col : fig3_columns) {
      scenarios.push_back(ScenarioBuilder()
                              .hops(5)
                              .through_utilization(0.50 - uc)
                              .cross_utilization(uc)
                              .violation_probability(1e-9)
                              .scheduler(col.sched)
                              .edf_deadlines(col.own, col.cross)
                              .build());
    }
  }
  for (const int hops : {1, 10, 25}) {
    for (const sched::SchedulerKind sched :
         {sched::SchedulerKind::kEdf, sched::SchedulerKind::kFifo,
          sched::SchedulerKind::kBmux}) {
      scenarios.push_back(ScenarioBuilder()
                              .hops(hops)
                              .through_utilization(0.45)
                              .cross_utilization(0.45)
                              .violation_probability(1e-9)
                              .scheduler(sched)
                              .edf_deadlines(1.0, 10.0)
                              .build());
    }
  }
  auto expect_bit_exact = [](const e2e::BoundResult& r) {
    const Value doc = encode_bound_result(r);
    const e2e::BoundResult back = decode_bound_result(doc);
    EXPECT_EQ(back.delay_ms, r.delay_ms);
    EXPECT_EQ(back.gamma, r.gamma);
    EXPECT_EQ(back.s, r.s);
    EXPECT_EQ(back.sigma, r.sigma);
    EXPECT_EQ(back.delta, r.delta);
    EXPECT_EQ(back.stats.scan_ms, r.stats.scan_ms);
    EXPECT_EQ(back.stats.refine_ms, r.stats.refine_ms);
    EXPECT_EQ(encode_bound_result(back).dump(), doc.dump());
  };
  for (const e2e::Scenario& sc : scenarios) {
    SCOPED_TRACE("hops=" + std::to_string(sc.hops) +
                 " n_cross=" + std::to_string(sc.n_cross));
    expect_bit_exact(deltanc::Solver().solve(sc));
  }
  // Fig. 4's fourth curve: the additive per-node baseline.
  expect_bit_exact(e2e::best_additive_bmux_bound(scenarios.back()));
}

TEST(Codec, SweepReportRoundTripsThroughTopLevelDocument) {
  SweepGrid grid(fig2_scenario(100, sched::SchedulerKind::kFifo));
  grid.cross_utilization_axis({0.2, 0.5})
      .scheduler_axis({sched::SchedulerKind::kFifo, sched::SchedulerKind::kEdf});
  SweepOptions options;
  options.threads = 2;
  const SweepReport report = SweepRunner(options).run(grid);

  const SweepReport back =
      decode_sweep_report(encode_sweep_report(report));
  ASSERT_EQ(back.points.size(), report.points.size());
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    EXPECT_EQ(back.points[i].bound.delay_ms, report.points[i].bound.delay_ms);
    EXPECT_EQ(back.points[i].bound.gamma, report.points[i].bound.gamma);
    EXPECT_EQ(back.points[i].scenario.n_cross,
              report.points[i].scenario.n_cross);
    EXPECT_EQ(back.points[i].ok, report.points[i].ok);
  }
  EXPECT_EQ(back.threads, report.threads);
  EXPECT_EQ(back.stats.optimize_evals, report.stats.optimize_evals);
  EXPECT_EQ(back.stats.cache_misses, report.stats.cache_misses);
}

TEST(Codec, SweepGridRoundTripReproducesEveryPoint) {
  SweepGrid grid(fig2_scenario(100, sched::SchedulerKind::kFifo));
  grid.hops_axis({2, 5, 10})
      .cross_utilization_axis(SweepGrid::linspace(0.10, 0.80, 8))
      .scheduler_axis({sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux,
                       sched::SchedulerKind::kEdf})
      .edf_axis({sched::EdfFactors{1.0, 10.0}, sched::EdfFactors{2.0, 4.0}});
  const SweepGrid back = decode_sweep_grid(encode_sweep_grid(grid));
  ASSERT_EQ(back.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const e2e::Scenario a = grid.scenario_at(i);
    const e2e::Scenario b = back.scenario_at(i);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.n_through, b.n_through);
    EXPECT_EQ(a.n_cross, b.n_cross);  // utilizations resolved identically
    EXPECT_EQ(a.scheduler, b.scheduler);
    EXPECT_EQ(a.capacity, b.capacity);
    EXPECT_EQ(a.epsilon, b.epsilon);
  }
  // And the re-encoded grid is byte-identical (canonical form).
  EXPECT_EQ(encode_sweep_grid(back).dump(), encode_sweep_grid(grid).dump());
}

TEST(Codec, SweepGridDeltaAndSpecAxesRoundTrip) {
  // The continuous Delta axis (with infinite endpoints) and a full-spec
  // scheduler axis (which *replaces* EDF factors instead of keeping the
  // base's) both survive the codec, reproducing every point and the
  // axis flavor: a replayed kind axis must still compose with the base
  // factors, a replayed spec axis must not.
  e2e::Scenario base = fig2_scenario(100, sched::SchedulerKind::kFifo);
  base.scheduler.set_edf_factors(sched::EdfFactors{3.0, 7.0});
  SweepGrid grid(base);
  grid.delta_axis({0.0, 2.5, kInf});
  const SweepGrid back = decode_sweep_grid(encode_sweep_grid(grid));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.scenario_at(1).scheduler,
            sched::SchedulerSpec::fixed_delta(2.5));
  EXPECT_EQ(back.scenario_at(2).scheduler,
            sched::SchedulerSpec::fixed_delta(kInf));
  EXPECT_EQ(encode_sweep_grid(back).dump(), encode_sweep_grid(grid).dump());

  SweepGrid specs(base);
  specs.scheduler_axis(std::vector<sched::SchedulerSpec>{
      sched::SchedulerSpec::edf(1.0, 2.0),
      sched::SchedulerSpec::fixed_delta(-kInf)});
  const SweepGrid specs_back = decode_sweep_grid(encode_sweep_grid(specs));
  ASSERT_EQ(specs_back.size(), 2u);
  // Full replacement: the axis's own factors win over the base's.
  EXPECT_EQ(specs_back.scenario_at(0).scheduler,
            sched::SchedulerSpec::edf(1.0, 2.0));
  EXPECT_EQ(specs_back.scenario_at(1).scheduler,
            sched::SchedulerSpec::fixed_delta(-kInf));
  EXPECT_EQ(encode_sweep_grid(specs_back).dump(),
            encode_sweep_grid(specs).dump());

  // Kind axis: replayed values keep the base's EDF factors.
  SweepGrid kinds(base);
  kinds.scheduler_axis({sched::SchedulerKind::kEdf, sched::SchedulerKind::kBmux});
  const SweepGrid kinds_back = decode_sweep_grid(encode_sweep_grid(kinds));
  EXPECT_EQ(kinds_back.scenario_at(0).scheduler,
            sched::SchedulerSpec::edf(3.0, 7.0));
}

TEST(Codec, SchemaIsRequiredAndChecked) {
  Value report = encode_sweep_report(SweepReport{});
  report.set("schema", Value::number(999.0));
  EXPECT_THROW((void)decode_sweep_report(report), SchemaError);
  EXPECT_THROW(require_schema(Value::object()), SchemaError);
  EXPECT_THROW(require_schema(Value::number(1.0)), SchemaError);
}

// ----- cache key ---------------------------------------------------------

TEST(Codec, CacheKeyIsStableAndFoldsSchedulerOverride) {
  const e2e::Scenario fifo = fig2_scenario(268, sched::SchedulerKind::kFifo);
  SolveOptions options;
  EXPECT_EQ(solve_cache_key(fifo, options), solve_cache_key(fifo, options));

  // Override folded in: "FIFO scenario forced to EDF" keys like the EDF
  // scenario -- they solve identically.
  e2e::Scenario edf = fifo;
  edf.scheduler = sched::SchedulerKind::kEdf;
  SolveOptions forced;
  forced.scheduler = sched::SchedulerKind::kEdf;
  EXPECT_EQ(solve_cache_key(fifo, forced), solve_cache_key(edf, options));
  EXPECT_NE(solve_cache_key(fifo, options), solve_cache_key(edf, options));

  // reuse_workspace cannot change result bits, so it must not fragment
  // the cache; method does change results, so it must.
  SolveOptions no_ws;
  no_ws.reuse_workspace = false;
  EXPECT_EQ(solve_cache_key(fifo, no_ws), solve_cache_key(fifo, options));
  SolveOptions paper;
  paper.method = e2e::Method::kPaperK;
  EXPECT_NE(solve_cache_key(fifo, paper), solve_cache_key(fifo, options));
}

// ----- delay profiles ----------------------------------------------------

TEST(Codec, DelayProfileRoundTripsBitExactly) {
  // A hand-built profile exercising the awkward encodings: hexfloat-
  // precision doubles, an unstable +inf level, and the NaN delta of a
  // curve-backed level.  Every bit must survive.
  e2e::DelayProfile p;
  p.epsilons = {1e-3, 0x1.0c6f7a0b5ed8dp-20, 1e-9};
  e2e::BoundResult a{59.721910890531532, 1.0068520595608295,
                     0.040782701620715671, 2067.7488029628475, 0.0};
  e2e::BoundResult b{kInf, 0.0, 0.0, 0.0, -kInf};
  b.diagnostics.fail(diag::SolveErrorKind::kUnstable, "load >= 1");
  e2e::BoundResult c{116.42524721307376, 0.51293544089305754,
                     0.040588408589369088, 4284.7910003396446,
                     std::numeric_limits<double>::quiet_NaN()};
  p.levels = {a, b, c};
  p.stats.optimize_evals = 23624;
  p.stats.profile_levels = 3;
  p.stats.profile_chain_hits = 2;

  const e2e::DelayProfile back = decode_delay_profile(encode_delay_profile(p));
  ASSERT_EQ(back.epsilons.size(), 3u);
  ASSERT_EQ(back.levels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.epsilons[i], p.epsilons[i]);
  }
  EXPECT_EQ(back.levels[0].delay_ms, a.delay_ms);
  EXPECT_EQ(back.levels[0].sigma, a.sigma);
  EXPECT_EQ(back.levels[1].delay_ms, kInf);
  EXPECT_EQ(back.levels[1].delta, -kInf);
  EXPECT_EQ(back.levels[1].diagnostics.error, diag::SolveErrorKind::kUnstable);
  EXPECT_EQ(back.levels[2].gamma, c.gamma);
  EXPECT_TRUE(std::isnan(back.levels[2].delta));
  EXPECT_EQ(back.stats.optimize_evals, 23624);
  EXPECT_EQ(back.stats.profile_levels, 3);
  EXPECT_EQ(back.stats.profile_chain_hits, 2);

  // Canonical dumps are byte-stable (the cache hashes them).
  EXPECT_EQ(encode_delay_profile(p).dump(), encode_delay_profile(back).dump());
}

TEST(Codec, DelayProfileDecodeRejectsMalformedDocuments) {
  e2e::DelayProfile p;
  p.epsilons = {1e-3, 1e-6};
  p.levels.resize(2);
  Value doc = encode_delay_profile(p);
  // A grid/levels length mismatch is corruption, not a valid profile.
  Value grid = doc.at("epsilons");
  grid.push_back(encode_double(1e-9));
  doc.set("epsilons", std::move(grid));
  EXPECT_THROW((void)decode_delay_profile(doc), CodecError);
  EXPECT_THROW((void)decode_delay_profile(Value::number(1.0)), CodecError);
}

TEST(Codec, ProfileCacheKeyIsKindTaggedAndEpsilonPinned) {
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kFifo);
  const std::vector<double> grid = {1e-3, 1e-6, 1e-9};
  SolveOptions options;
  const std::string key = profile_cache_key(sc, grid, options);
  // Kind-tagged: shares no keyspace with scalar solves of any epsilon.
  EXPECT_NE(key.find("\"kind\":\"profile\""), std::string::npos);
  EXPECT_NE(key, solve_cache_key(sc, options));
  // Pinned: the scenario's own scalar epsilon is not a profile input,
  // so it must not fragment the profile keyspace.
  e2e::Scenario other_eps = sc;
  other_eps.epsilon = 1e-12;
  EXPECT_EQ(profile_cache_key(other_eps, grid, options), key);
  // The grid itself is the identity.
  const std::vector<double> deeper = {1e-3, 1e-6, 1e-12};
  EXPECT_NE(profile_cache_key(sc, deeper, options), key);
}

TEST(Codec, LegacyV4KeyIsTheKindlessSpellingOfTheV5Key) {
  // Schema-4 keys were the same canonical dump without the leading
  // "kind" member; the legacy probe must reproduce them byte-exactly so
  // old cache entries classify kStale instead of vanishing silently.
  const e2e::Scenario sc = fig2_scenario(268, sched::SchedulerKind::kEdf);
  SolveOptions options;
  const std::optional<std::string> legacy =
      legacy_v4_solve_cache_key(sc, options);
  ASSERT_TRUE(legacy.has_value());
  std::string v5 = solve_cache_key(sc, options);
  const std::string tag = "\"kind\":\"solve\",";
  const std::size_t at = v5.find(tag);
  ASSERT_NE(at, std::string::npos);
  v5.erase(at, tag.size());
  EXPECT_EQ(*legacy, v5);
}

TEST(Codec, SolveOptionsRoundTrip) {
  SolveOptions options;
  options.method = e2e::Method::kPaperK;
  options.scheduler = sched::SchedulerKind::kBmux;
  options.delta = -kInf;
  options.max_edf_restarts = 2;
  const SolveOptions back =
      decode_solve_options(encode_solve_options(options));
  EXPECT_EQ(back.method, e2e::Method::kPaperK);
  ASSERT_TRUE(back.scheduler.has_value());
  EXPECT_EQ(*back.scheduler, sched::SchedulerKind::kBmux);
  ASSERT_TRUE(back.delta.has_value());
  EXPECT_EQ(*back.delta, -kInf);
  EXPECT_EQ(back.max_edf_restarts, 2);

  // Defaults survive an empty options object (batch requests may omit
  // everything).
  const SolveOptions defaults = decode_solve_options(Value::object());
  EXPECT_EQ(defaults.method, e2e::Method::kExactOpt);
  EXPECT_FALSE(defaults.scheduler.has_value());
  EXPECT_FALSE(defaults.delta.has_value());
  EXPECT_EQ(defaults.max_edf_restarts, -1);
}

}  // namespace
}  // namespace deltanc::io
