// Deeper algebraic property sweeps for the (min,plus) toolbox: the
// convolution/deconvolution adjunction, isotonicity, distribution over
// pointwise minima, and the sub-additive closure.
#include <gtest/gtest.h>

#include <cmath>

#include "nc/minplus_ops.h"
#include "test_util.h"

namespace deltanc::nc {
namespace {

double val(const Curve& c, double x) { return x <= 0.0 ? 0.0 : c.eval(x); }

class MinplusAlgebraProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MinplusAlgebraProperty, ConvolutionIsIsotone) {
  // f1 <= f2 pointwise implies f1 * g <= f2 * g.
  const auto f1 = deltanc::testing::random_monotone_curve(GetParam(), 4);
  const Curve f2 = f1.vshift(0.7);  // strictly above f1
  const auto g = deltanc::testing::random_monotone_curve(GetParam() + 77, 3);
  const Curve c1 = minplus_conv(f1, g);
  const Curve c2 = minplus_conv(f2, g);
  const double horizon = f1.last_knot_x() + g.last_knot_x() + 3.0;
  for (int i = 1; i <= 80; ++i) {
    const double t = horizon * static_cast<double>(i) / 80.0;
    ASSERT_LE(c1.eval(t), c2.eval(t) + 1e-9) << "t = " << t;
  }
}

TEST_P(MinplusAlgebraProperty, ConvolutionDistributesOverMin) {
  // (min(f, g)) * h == min(f * h, g * h).
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 3);
  const auto g = deltanc::testing::random_monotone_curve(GetParam() + 11, 3);
  const auto h = deltanc::testing::random_monotone_curve(GetParam() + 23, 3);
  const Curve left = minplus_conv(pointwise_min(f, g), h);
  const Curve right =
      pointwise_min(minplus_conv(f, h), minplus_conv(g, h));
  const double horizon =
      f.last_knot_x() + g.last_knot_x() + h.last_knot_x() + 3.0;
  for (int i = 1; i <= 80; ++i) {
    const double t = horizon * static_cast<double>(i) / 80.0 + 1e-7;
    ASSERT_NEAR(left.eval(t), right.eval(t), 1e-7) << "t = " << t;
  }
}

TEST_P(MinplusAlgebraProperty, DeconvolutionAdjunction) {
  // Galois connection: f <= (f o/ g) * g.  The deconvolution result is a
  // genuine function with out(0) > 0 (the backlog bound), so the
  // function-semantics convolution is the right composition here.
  const auto f = deltanc::testing::random_concave_curve(GetParam(), 3, 4.0);
  const Curve g = Curve::rate_latency(6.0, 0.5);
  const Curve out = minplus_deconv(f, g);
  const Curve back = minplus_conv_fn(out, g);
  const double horizon = f.last_knot_x() + 4.0;
  for (int i = 1; i <= 60; ++i) {
    const double t = horizon * static_cast<double>(i) / 60.0;
    ASSERT_LE(val(f, t), back.eval(t) + 1e-7) << "t = " << t;
  }
}

TEST_P(MinplusAlgebraProperty, ClosureIsSubadditiveAndBelow) {
  const auto f = deltanc::testing::random_monotone_curve(GetParam(), 4);
  const double horizon = 2.0 * f.last_knot_x() + 4.0;
  const Curve closure = subadditive_closure(f, horizon);
  EXPECT_TRUE(is_subadditive(closure, horizon, 1e-6));
  for (int i = 1; i <= 60; ++i) {
    const double t = horizon * static_cast<double>(i) / 60.0;
    ASSERT_LE(closure.eval(t), f.eval(t) + 1e-9) << "t = " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinplusAlgebraProperty,
                         ::testing::Range<std::uint32_t>(1, 16));

TEST(SubadditiveClosure, ConcaveEnvelopeIsItsOwnClosure) {
  const Curve e = Curve::leaky_bucket(2.0, 5.0);
  const Curve closure = subadditive_closure(e, 20.0);
  for (double t : {0.5, 1.0, 5.0, 15.0}) {
    EXPECT_NEAR(closure.eval(t), e.eval(t), 1e-9) << "t = " << t;
  }
}

TEST(SubadditiveClosure, TightensARateLatencyEnvelope) {
  // A rate-latency function is NOT subadditive (f(2T) > 2 f(T) fails the
  // other way: f(T)=0 twice vs f(2T)>0); its closure stays 0 forever.
  const Curve f = Curve::rate_latency(4.0, 1.0);
  EXPECT_FALSE(is_subadditive(f, 10.0));
  const Curve closure = subadditive_closure(f, 10.0);
  for (double t : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(closure.eval(t), 0.0, 1e-9) << "t = " << t;
  }
}

TEST(SubadditiveClosure, StaircaseExample) {
  // f jumps to 3 at 0+ and grows slowly, then steeply: the closure
  // replaces the steep part by repeated use of the cheap initial part.
  const Curve f({{0.0, 3.0, 0.5}, {2.0, 4.0, 6.0}});
  const double horizon = 12.0;
  const Curve closure = subadditive_closure(f, horizon);
  EXPECT_TRUE(is_subadditive(closure, horizon, 1e-6));
  // At t = 4: f = 16, but two copies of f(2) give 8.
  EXPECT_LE(closure.eval(4.0), 8.0 + 1e-9);
}

TEST(SubadditiveClosure, Validation) {
  EXPECT_THROW((void)subadditive_closure(Curve::rate(1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)subadditive_closure(Curve::delta(1.0), 5.0),
               std::invalid_argument);
}

TEST(ServiceDelayBoundProperty, AgreesWithHorizontalDeviationWhenMonotone) {
  // For monotone service curves the two delay computations coincide.
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const auto e = deltanc::testing::random_concave_curve(seed, 3, 3.0);
    const Curve s = Curve::rate_latency(8.0, 0.8);
    EXPECT_NEAR(service_delay_bound(e, s), horizontal_deviation(e, s), 1e-7)
        << "seed = " << seed;
  }
}

}  // namespace
}  // namespace deltanc::nc
