#include "sched/delta_service_curve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nc/minplus_ops.h"
#include "sched/schedulability.h"

namespace deltanc::sched {
namespace {

// Two flows: 0 = through, 1 = cross, at a link of capacity C.
constexpr double kC = 10.0;

std::vector<nc::Curve> leaky_envelopes(double r0, double b0, double r1,
                                       double b1) {
  return {nc::Curve::leaky_bucket(r0, b0), nc::Curve::leaky_bucket(r1, b1)};
}

TEST(DeterministicServiceCurve, FifoShapeEq19) {
  // FIFO: Delta = 0, so S(t; theta) = [C t - E_c(t - theta)]_+ 1{t>theta}.
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  const double theta = 2.0;
  const nc::Curve s = deterministic_service_curve(
      kC, DeltaMatrix::fifo(2), env, /*flow=*/0, theta);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 0.0);  // gated before theta
  // Just after theta: C t - E_c(0+) = 10 t - 4.
  EXPECT_NEAR(s.eval(2.5), 10.0 * 2.5 - (4.0 + 3.0 * 0.5), 1e-9);
  EXPECT_NEAR(s.eval(5.0), 10.0 * 5.0 - (4.0 + 3.0 * 3.0), 1e-9);
}

TEST(DeterministicServiceCurve, BmuxIsClassicLeftover) {
  // BMUX with theta = 0: S(t) = [C t - E_c(t)]_+ = [(C - rc) t - Bc]_+.
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  const nc::Curve s = deterministic_service_curve(
      kC, DeltaMatrix::bmux(2, 0), env, /*flow=*/0, /*theta=*/0.0);
  EXPECT_DOUBLE_EQ(s.eval(0.1), 0.0);  // still clamped at zero
  const double t_positive = 4.0 / (kC - 3.0);
  EXPECT_NEAR(s.eval(t_positive + 1.0), (kC - 3.0) * (t_positive + 1.0) - 4.0,
              1e-9);
}

TEST(DeterministicServiceCurve, BmuxThetaShiftsCrossEnvelopeCap) {
  // BMUX: Delta = +inf so Delta(theta) = theta and the cross envelope is
  // *not* shifted -- theta only gates the curve.
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  const nc::Curve s0 = deterministic_service_curve(
      kC, DeltaMatrix::bmux(2, 0), env, 0, 0.0);
  const nc::Curve s2 = deterministic_service_curve(
      kC, DeltaMatrix::bmux(2, 0), env, 0, 2.0);
  for (double t : {2.5, 4.0, 7.0}) {
    EXPECT_NEAR(s2.eval(t), s0.eval(t), 1e-9) << "t = " << t;
  }
  EXPECT_DOUBLE_EQ(s2.eval(1.5), 0.0);
}

TEST(DeterministicServiceCurve, HighPriorityGetsFullLink) {
  // Flow 1 is high priority: the low-priority flow never precedes it, so
  // its Theorem-1 curve is the full link (gated at theta).
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  const DeltaMatrix d = DeltaMatrix::static_priority(std::vector<int>{0, 1});
  const nc::Curve s = deterministic_service_curve(kC, d, env, /*flow=*/1, 0.0);
  EXPECT_DOUBLE_EQ(s.eval(3.0), kC * 3.0);
}

TEST(DeterministicServiceCurve, EdfShiftsByDeadlineGap) {
  // EDF with d*_0 = 1, d*_c = 5: Delta_{0,c} = -4, so for theta < 4 the
  // cross envelope is shifted right by theta + 4.
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  const DeltaMatrix d = DeltaMatrix::edf(std::vector<double>{1.0, 5.0});
  const double theta = 1.0;
  const nc::Curve s = deterministic_service_curve(kC, d, env, 0, theta);
  // Shift = theta - Delta(theta) = 1 - (-4) = 5.
  EXPECT_NEAR(s.eval(4.0), kC * 4.0, 1e-9);            // cross not yet counted
  EXPECT_NEAR(s.eval(6.0), kC * 6.0 - (4.0 + 3.0 * 1.0), 1e-9);
}

TEST(DeterministicServiceCurve, ValidatesArguments) {
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  EXPECT_THROW((void)deterministic_service_curve(0.0, DeltaMatrix::fifo(2), env,
                                                 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)deterministic_service_curve(kC, DeltaMatrix::fifo(3), env,
                                                 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)deterministic_service_curve(kC, DeltaMatrix::fifo(2), env,
                                                 7, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)deterministic_service_curve(kC, DeltaMatrix::fifo(2), env,
                                                 0, -1.0),
               std::invalid_argument);
}

TEST(StatServiceCurve, BoundingFunctionIsInfConvolution) {
  const std::vector<traffic::StatEnvelope> env{
      {nc::Curve::rate(1.0), nc::ExpBound(2.0, 1.0)},
      {nc::Curve::rate(3.0), nc::ExpBound(4.0, 0.5)},
      {nc::Curve::rate(2.0), nc::ExpBound(3.0, 2.0)}};
  const StatServiceCurve s = theorem1_service_curve(
      kC, DeltaMatrix::fifo(3), env, /*flow=*/0, /*theta=*/0.0);
  ASSERT_TRUE(s.eps.has_value());
  const nc::ExpBound expected =
      nc::inf_convolution(nc::ExpBound(4.0, 0.5), nc::ExpBound(3.0, 2.0));
  EXPECT_NEAR(s.eps->prefactor(), expected.prefactor(), 1e-12);
  EXPECT_NEAR(s.eps->decay(), expected.decay(), 1e-12);
}

TEST(StatServiceCurve, NoCrossTrafficIsDeterministic) {
  const std::vector<traffic::StatEnvelope> env{
      {nc::Curve::rate(1.0), nc::ExpBound(2.0, 1.0)},
      {nc::Curve::rate(3.0), nc::ExpBound(4.0, 0.5)}};
  // Flow 1 is the highest priority: no relevant cross flows.
  const DeltaMatrix d = DeltaMatrix::static_priority(std::vector<int>{0, 1});
  const StatServiceCurve s = theorem1_service_curve(kC, d, env, 1, 0.0);
  EXPECT_FALSE(s.eps.has_value());
  EXPECT_DOUBLE_EQ(s.s.eval(2.0), kC * 2.0);
}

TEST(StatServiceCurve, CurveMatchesDeterministicConstruction) {
  // With the same envelope curves the statistical and deterministic
  // constructions must produce the same shape.
  const std::vector<traffic::StatEnvelope> env{
      {nc::Curve::rate(1.5), nc::ExpBound(1.0, 1.0)},
      {nc::Curve::rate(2.5), nc::ExpBound(1.0, 1.0)}};
  const std::vector<nc::Curve> det_env{nc::Curve::rate(1.5),
                                       nc::Curve::rate(2.5)};
  const DeltaMatrix d = DeltaMatrix::edf(std::vector<double>{2.0, 3.0});
  for (double theta : {0.0, 0.5, 2.0}) {
    const StatServiceCurve stat = theorem1_service_curve(kC, d, env, 0, theta);
    const nc::Curve det = deterministic_service_curve(kC, d, det_env, 0, theta);
    for (double t : {0.5, 1.0, 2.5, 4.0, 8.0}) {
      EXPECT_NEAR(stat.s.eval(t), det.eval(t), 1e-9)
          << "theta = " << theta << ", t = " << t;
    }
  }
}

TEST(ServiceCurveDelayBound, MatchesSchedulabilityCondition) {
  // Section III-B: plugging theta = d into the Theorem-1 curve and asking
  // for horizontal deviation <= d reproduces the Eq. (24) bound.  So the
  // minimal d from Eq. (24), used as theta, must give a service curve
  // whose deterministic delay bound equals d itself.
  const auto env = leaky_envelopes(1.0, 2.0, 3.0, 4.0);
  for (const DeltaMatrix& d :
       {DeltaMatrix::fifo(2), DeltaMatrix::bmux(2, 0),
        DeltaMatrix::edf(std::vector<double>{2.0, 4.0}),
        DeltaMatrix::edf(std::vector<double>{4.0, 2.0})}) {
    const double dmin = min_delay_bound(kC, d, env, 0);
    ASSERT_TRUE(std::isfinite(dmin));
    const nc::Curve s = deterministic_service_curve(kC, d, env, 0, dmin);
    const double dev = nc::service_delay_bound(env[0], s);
    EXPECT_NEAR(dev, dmin, 1e-5);
  }
}

}  // namespace
}  // namespace deltanc::sched
