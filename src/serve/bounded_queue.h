// Bounded MPMC queue -- the backpressure primitive of the solve
// service.  Admission uses try_push (fails when the queue is full, so
// overload becomes an explicit response instead of unbounded memory
// growth); supervisor requeues of in-flight requests from a lost worker
// use push_front, which ignores the capacity bound: a request the
// service already accepted must never be bounced back as overload.
//
// close() wakes all poppers; pop() then drains what remains and returns
// nullopt, which is the workers' shutdown signal.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace deltanc::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission path: false when the queue is full or closed (the caller
  /// answers with an overload / drain error).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Requeue path: jumps the line and ignores the capacity bound (an
  /// accepted request is never re-bounced as overload).  False only
  /// after close().
  bool push_front(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_front(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained;
  /// nullopt is the shutdown signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace deltanc::serve
