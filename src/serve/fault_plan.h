// Deterministic fault injection for the persistent solve service.
//
// Every robustness path of serve::SolveService -- slow solves tripping
// the per-request deadline, a worker dying mid-request, cache stores
// failing on a full disk, cache loads reading corrupt bytes -- must be
// reachable on demand in CI, not only when the hardware misbehaves.  A
// FaultPlan is a small parsed script of such faults, armed from the
// `--fault-plan` CLI flag or the DELTANC_FAULT_PLAN environment
// variable and consumed exactly once per entry, so a test run replays
// the same failure sequence every time.
//
// Grammar (semicolon-separated entries):
//   delay:<id>:<ms>    solving the request whose numeric "id" equals
//                      <id> sleeps <ms> ms first (before the cache
//                      lookup, so even a warm hit can exceed a
//                      deadline)
//   kill:<w>:<k>       worker <w> crashes when it dequeues its <k>-th
//                      request (1-based, counted per incumbent: a
//                      respawned worker starts a fresh count); one-shot
//   store-fail:<n>     the next <n> disk-cache stores fail per shard
//                      (full-disk simulation via
//                      ResultCache::fail_next_stores)
//   load-corrupt:<n>   the next <n> disk-cache lookups classify their
//                      entry as corrupt (re-solve + recovery warning)
//
// Example: "kill:0:3;delay:7:2000;store-fail:1"
//
// The plan itself is immutable after parse; the consumed-state
// bookkeeping (which kills fired, how much budget remains) lives in
// serve::FaultClock, which is what the service threads share.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace deltanc::serve {

/// One parsed fault script (see file comment for the grammar).
struct FaultPlan {
  struct Delay {
    double id = 0.0;   ///< matches the request's numeric "id"
    double ms = 0.0;   ///< sleep duration
  };
  struct Kill {
    int worker = 0;        ///< worker (= cache shard) index
    std::uint64_t at = 0;  ///< 1-based dequeue count that triggers it
  };

  std::vector<Delay> delays;
  std::vector<Kill> kills;
  int store_failures = 0;  ///< per-shard budget of failing stores
  int load_corrupts = 0;   ///< budget of lookups forced to kCorrupt

  [[nodiscard]] bool empty() const noexcept {
    return delays.empty() && kills.empty() && store_failures == 0 &&
           load_corrupts == 0;
  }

  /// Parses the grammar above.  Returns false (with `error` naming the
  /// offending entry) on malformed specs; an empty spec parses to an
  /// empty plan.
  static bool parse(const std::string& spec, FaultPlan& out,
                    std::string& error);

  /// Canonical round-trip spelling of the plan ("" when empty).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe consumption of a FaultPlan: the service asks "does a
/// fault fire here?" and each armed entry fires at most once (kills) or
/// until its budget drains (store/load faults).
class FaultClock {
 public:
  FaultClock() = default;
  explicit FaultClock(FaultPlan plan) : plan_(std::move(plan)) {
    kill_fired_.assign(plan_.kills.size(), false);
    load_corrupt_budget_ = plan_.load_corrupts;
  }

  /// Sleep (ms) injected before handling the request with numeric id
  /// `id`; 0 when none.  Delays are not consumed: a requeued request is
  /// delayed again, which is what keeps retry tests deterministic.
  [[nodiscard]] double delay_ms_for(double id) const;

  /// True exactly once when worker `worker`'s `handled`-th dequeue
  /// matches an armed kill entry.
  [[nodiscard]] bool should_kill(int worker, std::uint64_t handled);

  /// True while the load-corrupt budget lasts (consumes one unit).
  [[nodiscard]] bool corrupt_next_load();

  /// The per-shard store-failure budget (applied by the service to each
  /// shard cache at open time via ResultCache::fail_next_stores).
  [[nodiscard]] int store_failure_budget() const noexcept {
    return plan_.store_failures;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::vector<bool> kill_fired_;
  int load_corrupt_budget_ = 0;
};

}  // namespace deltanc::serve
