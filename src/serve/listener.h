// Unix-domain-socket transport for the persistent solve service.
//
// A SocketServer binds a UDS path, accepts connections, and runs each
// one as a framed JSONL conversation against a shared SolveService:
// every newline-terminated request line (plus a non-empty final line
// without a trailing newline -- a truncated client write is still a
// request) is submitted, and each response line is written back under a
// per-connection mutex, so concurrent worker answers never interleave
// bytes.  Responses may arrive out of request order (workers race);
// clients correlate by the echoed "id".
//
// Shutdown contract: run() polls the `stop` flag (armed by the CLI's
// SIGTERM/SIGINT handler) between accepts; once it trips, the listener
// closes, open connections are shut down for reading (already-accepted
// requests still get their answers), and the service drains -- every
// accepted request answered exactly once, then rc 0.  The `reload` flag
// (SIGHUP) maps to SolveService::reload() between accepts.  Writes use
// MSG_NOSIGNAL: a client that hangs up mid-response costs a counted
// dropped response, never a SIGPIPE death.
#pragma once

#include <atomic>
#include <csignal>
#include <string>

#include "serve/service.h"

namespace deltanc::serve {

struct ListenerOptions {
  std::string socket_path;  ///< UDS path; a stale file is unlinked first
  /// SIGTERM/SIGINT flag: when *stop becomes nonzero, run() stops
  /// accepting, finishes open conversations, drains, and returns.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// SIGHUP flag: when *reload is nonzero it is reset and the service
  /// reloads (warm layer dropped, disk caches reopened).
  volatile std::sig_atomic_t* reload = nullptr;
};

/// Runs the accept loop until *options.stop trips (or the socket cannot
/// be bound).  Returns true on a clean drain; false (with a message on
/// `err`) when the socket could not be created/bound/listened.
bool run_socket_server(SolveService& service, const ListenerOptions& options,
                       std::ostream& err);

}  // namespace deltanc::serve
