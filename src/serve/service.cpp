#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "e2e/solver.h"
#include "serve/bounded_queue.h"

namespace deltanc::serve {

namespace {

using Clock = std::chrono::steady_clock;
using Value = io::json::Value;
using Sink = SolveService::Sink;

/// One accepted request travelling through a shard queue.
struct Job {
  io::ParsedRequestLine line;
  Sink sink;
  /// Numeric "id" (fault delays match on it); NaN when non-numeric.
  double numeric_id = std::numeric_limits<double>::quiet_NaN();
  /// Requeues consumed so far (crashed-worker recovery).
  int retries = 0;
};

std::string format_ms(double ms) {
  if (ms == static_cast<double>(static_cast<long long>(ms))) {
    return std::to_string(static_cast<long long>(ms));
  }
  return std::to_string(ms);
}

}  // namespace

struct SolveService::Impl {
  // ----- per-shard state ---------------------------------------------------
  // Exactly one worker thread serves a shard at any time, so the shard
  // mutex only mediates worker vs. supervisor/reload/stats -- never
  // worker vs. worker.
  enum class SlotState { kIdle, kBusy, kCrashed };

  // A queue element; wraps Job so the queue type stays a regular
  // movable struct.
  struct JobBox {
    Job job;
  };

  // A crashed worker's orphan parked until its requeue backoff elapses
  // (the supervisor must keep ticking for the other shards meanwhile).
  struct DelayedRequeue {
    Clock::time_point ready_at;
    int shard;
    Job job;
  };

  struct Shard {
    explicit Shard(std::size_t queue_depth) : queue(queue_depth) {}

    BoundedQueue<JobBox> queue;

    std::mutex mu;  // guards everything below
    SlotState state = SlotState::kIdle;
    std::uint64_t generation = 0;  ///< bumped to abandon the incumbent
    std::uint64_t handled = 0;     ///< dequeues of the incumbent (kill match)
    bool has_inflight = false;
    Job inflight;                  ///< valid while kBusy / kCrashed
    Clock::time_point busy_since{};
    std::thread thread;

    // The warm layers.  `memory` holds raw (outcome-free) results with
    // FIFO eviction; `disk` is this shard's handle on the shared cache
    // directory, swapped by reload() (retired stats accumulate the
    // traffic of replaced handles).  Profile entries live in their own
    // map (same keys cannot collide: the "kind" discriminator keeps the
    // key spaces disjoint) with the same eviction budget.
    std::map<std::string, e2e::BoundResult> memory;
    std::deque<std::string> memory_order;
    std::map<std::string, e2e::DelayProfile> profile_memory;
    std::deque<std::string> profile_memory_order;
    std::unique_ptr<io::ResultCache> disk;
    io::CacheStats retired{};
  };

  explicit Impl(const ServeOptions& opts)
      : options(opts),
        workers(opts.workers > 0
                    ? opts.workers
                    : static_cast<int>(ThreadPool::default_thread_count())),
        faults(opts.faults) {
    if (workers < 1) workers = 1;
    shards.reserve(static_cast<std::size_t>(workers));
    for (int s = 0; s < workers; ++s) {
      shards.push_back(std::make_unique<Shard>(
          options.queue_depth > 0 ? options.queue_depth : 1));
      open_disk(*shards.back(), s);
    }
    for (int s = 0; s < workers; ++s) {
      Shard& shard = *shards[s];
      shard.thread = std::thread([this, s, gen = shard.generation] {
        worker_loop(s, gen);
      });
    }
    supervisor = std::thread([this] { supervisor_loop(); });
  }

  ~Impl() { drain(); }

  void open_disk(Shard& shard, int index) {
    if (options.cache_dir.empty()) return;
    shard.disk = std::make_unique<io::ResultCache>(
        options.cache_dir, io::CacheShard{index, workers});
    // The full-disk simulation arms each shard's first stores; the
    // budget is a per-shard allowance so every worker exercises the
    // solve-through path, not just whichever shard stores first.
    if (faults.store_failure_budget() > 0) {
      shard.disk->fail_next_stores(faults.store_failure_budget());
    }
  }

  // ----- submission --------------------------------------------------------

  void submit(const std::string& line, Sink sink) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;
    bump(&ServeStats::received);
    Job job;
    try {
      job.line = io::parse_request_line(line, options.default_method);
    } catch (const io::PartialRequestError& e) {
      bump(&ServeStats::parse_errors);
      deliver(sink, io::make_error_response(e.id, e.what()));
      return;
    } catch (const std::exception& e) {
      bump(&ServeStats::parse_errors);
      deliver(sink, io::make_error_response(Value(), e.what()));
      return;
    }
    if (job.line.id.is_number()) job.numeric_id = job.line.id.as_number();
    job.sink = std::move(sink);
    if (draining.load(std::memory_order_acquire)) {
      reject_overload(job, "service is draining; request rejected");
      return;
    }
    const int shard =
        io::ResultCache::shard_of(job.line.key, workers);
    add_pending(1);
    Sink sink_copy = job.sink;       // survives the move into the queue
    const Value id_copy = job.line.id;
    if (!shards[static_cast<std::size_t>(shard)]->queue.try_push(
            JobBox{std::move(job)})) {
      add_pending(-1);
      Job rejected;
      rejected.line.id = id_copy;
      rejected.sink = std::move(sink_copy);
      reject_overload(rejected, "queue full; retry later");
    }
  }

  void reject_overload(const Job& job, const std::string& why) {
    bump(&ServeStats::overloads);
    deliver(job.sink, io::make_error_response(
                          job.line.id, why,
                          diag::SolveErrorKind::kOverload));
  }

  // ----- worker ------------------------------------------------------------

  void worker_loop(int index, std::uint64_t my_generation) {
    Shard& shard = *shards[static_cast<std::size_t>(index)];
    // Warm solver state: one Solver (workspace + eb-memo) per solve-
    // options flavor, owned by this thread.  A respawned worker starts
    // cold -- a crash loses its warm state by design.
    std::map<std::string, Solver> solvers;
    for (;;) {
      std::optional<JobBox> box = shard.queue.pop();
      if (!box.has_value()) return;  // queue closed and drained
      Job job = std::move(box->job);
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.generation != my_generation) {
          // Abandoned while blocked in pop(): hand the job back so the
          // replacement answers it, then retire.
          (void)shard.queue.push_front(JobBox{std::move(job)});
          return;
        }
        shard.state = SlotState::kBusy;
        shard.inflight = job;
        shard.has_inflight = true;
        shard.busy_since = Clock::now();
        ++shard.handled;
        if (faults.should_kill(index, shard.handled)) {
          // Simulated crash: die with the request in flight.  The
          // supervisor detects kCrashed, requeues, and respawns.
          shard.state = SlotState::kCrashed;
          return;
        }
      }
      const double delay = faults.delay_ms_for(job.numeric_id);
      if (delay > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
      }
      Value response = handle(shard, solvers, job);
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.generation != my_generation) {
          // The supervisor already answered kTimeout and moved on; this
          // thread is a zombie.  Discard the late result and exit.
          bump(&ServeStats::discarded);
          return;
        }
        shard.state = SlotState::kIdle;
        shard.has_inflight = false;
        shard.inflight = Job{};
      }
      deliver(job.sink, response);
      add_pending(-1);
    }
  }

  /// Answers one request: memory layer, then disk cache, then solve --
  /// producing exactly the response bytes run_batch would.
  Value handle(Shard& shard, std::map<std::string, Solver>& solvers,
               const Job& job) {
    if (job.line.is_profile()) return handle_profile(shard, solvers, job);
    const bool with_tag = !options.cache_dir.empty();
    // Memory layer: raw results keyed by the canonical cache key.  A
    // hit reports "hit" when a disk cache is attached (the batch
    // baseline would hit disk) and "miss" otherwise (the baseline
    // would re-solve; results are deterministic, so bytes still match).
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.memory.find(job.line.key);
      if (it != shard.memory.end()) {
        bump(&ServeStats::served);
        bump(&ServeStats::memory_hits);
        e2e::BoundResult result = it->second;
        const io::CacheLookup outcome =
            with_tag ? io::CacheLookup::kHit : io::CacheLookup::kMiss;
        io::apply_cache_outcome(result, outcome, job.line.key);
        return io::make_ok_response(job.line.id, with_tag, outcome, result);
      }
    }
    // Disk layer.
    io::CacheLookup outcome = io::CacheLookup::kMiss;
    if (with_tag) {
      e2e::BoundResult cached;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        outcome = shard.disk->lookup(job.line.scenario, job.line.options,
                                     cached);
      }
      if ((outcome == io::CacheLookup::kHit ||
           outcome == io::CacheLookup::kStale) &&
          faults.corrupt_next_load()) {
        // Injected corruption: pretend the entry's bytes were
        // unreadable so the kCorrupt recovery path (re-solve + warning
        // + overwrite) runs under load on demand.
        outcome = io::CacheLookup::kCorrupt;
      }
      if (outcome == io::CacheLookup::kHit) {
        bump(&ServeStats::served);
        memory_insert(shard, job.line.key, cached);
        io::apply_cache_outcome(cached, outcome, job.line.key);
        return io::make_ok_response(job.line.id, true, outcome, cached);
      }
    }
    // Solve, mirroring SweepRunner's classification exactly: validate
    // first (kInvalidScenario with every bad field named), then let a
    // throwing solve classify as kNumericalDomain.  Failures are still
    // ok=true responses carrying the +inf bound, like the batch path.
    bump(&ServeStats::solved);
    SweepPoint p;
    p.scenario = job.line.scenario;
    const diag::ValidationReport vr = p.scenario.validate();
    if (!vr.ok()) {
      p.ok = false;
      p.error = vr.message();
      p.bound = e2e::BoundResult{std::numeric_limits<double>::infinity(),
                                 0.0, 0.0, 0.0, 0.0};
      p.bound.diagnostics.fail(diag::SolveErrorKind::kInvalidScenario,
                               vr.message());
    } else {
      Solver& solver = solver_for(solvers, job.line.options);
      try {
        p.bound = solver.solve(p.scenario);
      } catch (const std::exception& e) {
        p.ok = false;
        p.error = e.what();
        p.bound = e2e::BoundResult{std::numeric_limits<double>::infinity(),
                                   0.0, 0.0, 0.0, 0.0};
        p.bound.diagnostics.fail(diag::SolveErrorKind::kNumericalDomain,
                                 e.what());
      }
    }
    if (!p.ok) bump(&ServeStats::failed);
    if (p.ok) {
      // Persist and warm with the counters still zeroed -- they
      // describe how *this* response was obtained, not the result.  A
      // failed store is a counted solve-through; the service keeps
      // answering (graceful degradation, satellite of ISSUE 8).
      bool stored = true;
      if (with_tag) {
        std::lock_guard<std::mutex> lock(shard.mu);
        stored = shard.disk->try_store(job.line.key, p.bound);
      }
      // After a failed store the memory layer must stay cold too: a
      // warm hit would report cache:"hit" for a key the disk never
      // recorded, diverging from a --batch run over the same directory
      // (which misses and re-solves).
      if (stored) memory_insert(shard, job.line.key, p.bound);
    }
    io::apply_cache_outcome(p.bound, outcome, job.line.key);
    return io::make_ok_response(job.line.id, with_tag, outcome, p.bound);
  }

  /// Profile twin of handle(): the same memory -> disk -> solve
  /// layering, with io::solve_profile_request supplying exactly
  /// run_batch's classification so the response bytes match a --batch
  /// run over the same cache directory.
  Value handle_profile(Shard& shard, std::map<std::string, Solver>& solvers,
                       const Job& job) {
    const bool with_tag = !options.cache_dir.empty();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.profile_memory.find(job.line.key);
      if (it != shard.profile_memory.end()) {
        bump(&ServeStats::served);
        bump(&ServeStats::memory_hits);
        e2e::DelayProfile profile = it->second;
        const io::CacheLookup outcome =
            with_tag ? io::CacheLookup::kHit : io::CacheLookup::kMiss;
        io::apply_cache_outcome(profile, outcome, job.line.key);
        return io::make_ok_profile_response(job.line.id, with_tag, outcome,
                                            profile);
      }
    }
    io::CacheLookup outcome = io::CacheLookup::kMiss;
    if (with_tag) {
      e2e::DelayProfile cached;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        outcome = shard.disk->lookup_profile(job.line.key, cached);
      }
      if ((outcome == io::CacheLookup::kHit ||
           outcome == io::CacheLookup::kStale) &&
          faults.corrupt_next_load()) {
        outcome = io::CacheLookup::kCorrupt;
      }
      if (outcome == io::CacheLookup::kHit) {
        bump(&ServeStats::served);
        profile_memory_insert(shard, job.line.key, cached);
        io::apply_cache_outcome(cached, outcome, job.line.key);
        return io::make_ok_profile_response(job.line.id, true, outcome,
                                            cached);
      }
    }
    bump(&ServeStats::solved);
    io::ProfileAnswer answer = io::solve_profile_request(
        solver_for(solvers, job.line.options), job.line.scenario,
        job.line.epsilons);
    if (!answer.ok) bump(&ServeStats::failed);
    if (answer.ok) {
      bool stored = true;
      if (with_tag) {
        std::lock_guard<std::mutex> lock(shard.mu);
        stored = shard.disk->try_store_profile(job.line.key, answer.profile);
      }
      if (stored) {
        profile_memory_insert(shard, job.line.key, answer.profile);
      }
    }
    io::apply_cache_outcome(answer.profile, outcome, job.line.key);
    return io::make_ok_profile_response(job.line.id, with_tag, outcome,
                                        answer.profile);
  }

  Solver& solver_for(std::map<std::string, Solver>& solvers,
                     const SolveOptions& options_in) {
    const std::string key = io::encode_solve_options(options_in).dump();
    const auto it = solvers.find(key);
    if (it != solvers.end()) return it->second;
    return solvers.emplace(key, Solver(options_in)).first->second;
  }

  void memory_insert(Shard& shard, const std::string& key,
                     const e2e::BoundResult& result) {
    if (options.memory_entries == 0) return;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.memory.emplace(key, result).second) {
      shard.memory_order.push_back(key);
      while (shard.memory.size() > options.memory_entries) {
        shard.memory.erase(shard.memory_order.front());
        shard.memory_order.pop_front();
      }
    }
  }

  void profile_memory_insert(Shard& shard, const std::string& key,
                             const e2e::DelayProfile& profile) {
    if (options.memory_entries == 0) return;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.profile_memory.emplace(key, profile).second) {
      shard.profile_memory_order.push_back(key);
      while (shard.profile_memory.size() > options.memory_entries) {
        shard.profile_memory.erase(shard.profile_memory_order.front());
        shard.profile_memory_order.pop_front();
      }
    }
  }

  // ----- supervisor --------------------------------------------------------

  void supervisor_loop() {
    // Tick fast enough to keep timeout error well under the deadline
    // itself, but never busier than 1 kHz.
    double tick_ms = 10.0;
    if (options.deadline_ms > 0) {
      tick_ms = std::min(tick_ms, options.deadline_ms / 4.0);
    }
    if (tick_ms < 1.0) tick_ms = 1.0;
    while (!supervisor_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(tick_ms));
      flush_delayed();
      for (int s = 0; s < workers; ++s) check_shard(s);
    }
  }

  void check_shard(int index) {
    Shard& shard = *shards[static_cast<std::size_t>(index)];
    Job orphan;
    bool crashed = false;
    bool timed_out = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.state == SlotState::kCrashed) {
        crashed = true;
        orphan = std::move(shard.inflight);
      } else if (shard.state == SlotState::kBusy &&
                 options.deadline_ms > 0 &&
                 std::chrono::duration<double, std::milli>(
                     Clock::now() - shard.busy_since)
                         .count() > options.deadline_ms) {
        timed_out = true;
        orphan = shard.inflight;  // the zombie still owns its copy
      } else {
        return;
      }
      // Either way the incumbent is done: bump the generation so a
      // late result (or a hung thread) can never race the replacement,
      // and reset the slot for it.
      ++shard.generation;
      shard.state = SlotState::kIdle;
      shard.has_inflight = false;
      shard.inflight = Job{};
      shard.handled = 0;
      if (crashed) {
        // A crashed worker's thread has returned; reap it here.  A
        // timed-out worker may still be running -- park it with the
        // zombies and join at drain.
        if (shard.thread.joinable()) shard.thread.join();
      } else {
        std::lock_guard<std::mutex> zlock(zombie_mu);
        zombies.push_back(std::move(shard.thread));
      }
      shard.thread = std::thread(
          [this, index, gen = shard.generation] { worker_loop(index, gen); });
      bump_respawns();
    }
    if (timed_out) {
      bump(&ServeStats::timeouts);
      deliver(orphan.sink,
              io::make_error_response(
                  orphan.line.id,
                  "request exceeded the " + format_ms(options.deadline_ms) +
                      " ms deadline",
                  diag::SolveErrorKind::kTimeout));
      add_pending(-1);
      return;
    }
    // Crashed: requeue with bounded retries, then classify.  Never a
    // silent drop -- the request is either retried or answered.
    bump(&ServeStats::worker_losses);
    if (orphan.retries < options.max_requeues) {
      const double backoff =
          options.requeue_backoff_ms *
          static_cast<double>(1 << std::min(orphan.retries, 3));
      ++orphan.retries;
      bump(&ServeStats::requeues);
      if (backoff > 0) {
        // Never sleep the backoff on this thread: the supervisor is
        // also every other shard's deadline/crash watchdog.  Park the
        // job with a not-before timestamp; supervisor_loop's next
        // ticks flush it once the backoff has elapsed.
        std::lock_guard<std::mutex> lock(delayed_mu);
        delayed.push_back(DelayedRequeue{
            Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(backoff)),
            index, std::move(orphan)});
        return;
      }
      if (requeue_now(index, std::move(orphan))) return;
      // Queue already closed (drain raced the respawn): requeue_now
      // answered the classified error; nothing left to do.
      return;
    }
    bump(&ServeStats::exhausted);
    deliver(orphan.sink,
            io::make_error_response(
                orphan.line.id,
                "worker crashed while handling this request; " +
                    std::to_string(orphan.retries) + " retries exhausted",
                diag::SolveErrorKind::kWorkerLost));
    add_pending(-1);
  }

  /// Pushes a requeued job back onto its shard.  When the queue is
  /// already closed (drain raced the respawn), answers the classified
  /// kWorkerLost error instead of dropping the request.  Returns true
  /// on a successful requeue.
  bool requeue_now(int index, Job job) {
    const Value id = job.line.id;
    const Sink sink = job.sink;  // survives the move into the queue
    const int retries = job.retries;
    if (shards[static_cast<std::size_t>(index)]->queue.push_front(
            JobBox{std::move(job)})) {
      return true;
    }
    bump(&ServeStats::exhausted);
    deliver(sink, io::make_error_response(
                      id,
                      "worker crashed while handling this request; " +
                          std::to_string(retries) + " retries exhausted",
                      diag::SolveErrorKind::kWorkerLost));
    add_pending(-1);
    return false;
  }

  /// Requeues every parked job whose backoff has elapsed.
  void flush_delayed() {
    std::vector<DelayedRequeue> ready;
    {
      std::lock_guard<std::mutex> lock(delayed_mu);
      const Clock::time_point now = Clock::now();
      for (auto it = delayed.begin(); it != delayed.end();) {
        if (it->ready_at <= now) {
          ready.push_back(std::move(*it));
          it = delayed.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (DelayedRequeue& d : ready) (void)requeue_now(d.shard, std::move(d.job));
  }

  // ----- lifecycle ---------------------------------------------------------

  void reload() {
    for (int s = 0; s < workers; ++s) {
      Shard& shard = *shards[static_cast<std::size_t>(s)];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.memory.clear();
      shard.memory_order.clear();
      shard.profile_memory.clear();
      shard.profile_memory_order.clear();
      if (shard.disk != nullptr) {
        shard.retired += shard.disk->stats();
        shard.disk.reset();  // release before reopening the same dir
      }
      if (!options.cache_dir.empty()) {
        shard.disk = std::make_unique<io::ResultCache>(
            options.cache_dir, io::CacheShard{s, workers});
        // Deliberately no fail_next_stores re-arm: the fault budget is
        // per service lifetime, not per reload.
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      ++totals.reloads;
    }
  }

  void drain() {
    bool expected = false;
    if (!drained.compare_exchange_strong(expected, true)) return;
    draining.store(true, std::memory_order_release);
    {
      // Every accepted request is either queued, in flight, or being
      // requeued by the supervisor; pending covers all three.
      std::unique_lock<std::mutex> lock(pending_mu);
      pending_cv.wait(lock, [this] { return pending == 0; });
    }
    for (auto& shard : shards) shard->queue.close();
    for (auto& shard : shards) {
      std::thread t;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        t = std::move(shard->thread);
      }
      if (t.joinable()) t.join();
    }
    supervisor_stop.store(true, std::memory_order_release);
    if (supervisor.joinable()) supervisor.join();
    std::lock_guard<std::mutex> zlock(zombie_mu);
    for (std::thread& z : zombies) {
      if (z.joinable()) z.join();
    }
    zombies.clear();
  }

  [[nodiscard]] ServeStats stats() const {
    ServeStats out;
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      out = totals;
    }
    for (const auto& shard : shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out.cache += shard->retired;
      if (shard->disk != nullptr) out.cache += shard->disk->stats();
    }
    return out;
  }

  // ----- plumbing ----------------------------------------------------------

  void deliver(const Sink& sink, const Value& response) {
    try {
      if (sink) sink(response.dump());
    } catch (...) {
      // The client hung up mid-response; the request still counts as
      // answered (we will never get another chance to answer it).
      bump(&ServeStats::dropped);
    }
    bump(&ServeStats::answered);
  }

  void bump(std::int64_t ServeStats::* counter) {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++(totals.*counter);
  }

  void bump_respawns() {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++totals.respawns;
  }

  void add_pending(std::int64_t delta) {
    std::lock_guard<std::mutex> lock(pending_mu);
    pending += delta;
    if (pending == 0) pending_cv.notify_all();
  }

  ServeOptions options;
  int workers;
  FaultClock faults;
  std::vector<std::unique_ptr<Shard>> shards;
  std::thread supervisor;
  std::atomic<bool> supervisor_stop{false};
  std::atomic<bool> draining{false};
  std::atomic<bool> drained{false};

  mutable std::mutex stats_mu;
  ServeStats totals;  // guarded by stats_mu (cache field unused here)

  std::mutex pending_mu;
  std::condition_variable pending_cv;
  std::int64_t pending = 0;  // accepted-but-unanswered, guarded above
  std::mutex zombie_mu;
  std::vector<std::thread> zombies;  // timed-out workers, joined at drain
  std::mutex delayed_mu;
  std::vector<DelayedRequeue> delayed;  // orphans waiting out their backoff
};

SolveService::SolveService(const ServeOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

SolveService::~SolveService() = default;

int SolveService::workers() const noexcept { return impl_->workers; }

void SolveService::submit(const std::string& line, Sink sink) {
  impl_->submit(line, std::move(sink));
}

void SolveService::reload() { impl_->reload(); }

void SolveService::drain() { impl_->drain(); }

ServeStats SolveService::stats() const { return impl_->stats(); }

}  // namespace deltanc::serve
