#include "serve/fault_plan.h"

#include <cmath>

#include "sched/scheduler_spec.h"

namespace deltanc::serve {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

bool parse_number(const std::string& text, double& out) {
  // The service shares the CLI's strict locale-independent grammar: no
  // whitespace, hexfloats, or leading '+' hiding in a fault spec.
  return sched::parse_strict_double(text, out);
}

bool parse_count(const std::string& text, double min, double& out) {
  return parse_number(text, out) && out >= min && out == std::floor(out) &&
         out <= 1e9;
}

std::string format_number(double v) {
  // Fault counts and ids are whole numbers in practice; print them
  // without a trailing ".000000".
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return std::to_string(v);
}

}  // namespace

bool FaultPlan::parse(const std::string& spec, FaultPlan& out,
                      std::string& error) {
  FaultPlan plan;
  if (spec.empty()) {
    out = plan;
    return true;
  }
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const std::vector<std::string> parts = split(entry, ':');
    const std::string& head = parts[0];
    double a = 0.0, b = 0.0;
    if (head == "delay" && parts.size() == 3 &&
        parse_number(parts[1], a) && parse_number(parts[2], b) && b >= 0) {
      plan.delays.push_back(Delay{a, b});
    } else if (head == "kill" && parts.size() == 3 &&
               parse_count(parts[1], 0, a) && parse_count(parts[2], 1, b)) {
      plan.kills.push_back(Kill{static_cast<int>(a),
                                static_cast<std::uint64_t>(b)});
    } else if (head == "store-fail" && parts.size() == 2 &&
               parse_count(parts[1], 0, a)) {
      plan.store_failures += static_cast<int>(a);
    } else if (head == "load-corrupt" && parts.size() == 2 &&
               parse_count(parts[1], 0, a)) {
      plan.load_corrupts += static_cast<int>(a);
    } else {
      error = "bad fault entry '" + entry +
              "' (want delay:<id>:<ms>, kill:<worker>:<k>, store-fail:<n>, "
              "or load-corrupt:<n>)";
      return false;
    }
  }
  out = plan;
  return true;
}

std::string FaultPlan::to_string() const {
  std::string out;
  const auto append = [&out](const std::string& entry) {
    if (!out.empty()) out += ';';
    out += entry;
  };
  for (const Kill& k : kills) {
    append("kill:" + std::to_string(k.worker) + ":" + std::to_string(k.at));
  }
  for (const Delay& d : delays) {
    append("delay:" + format_number(d.id) + ":" + format_number(d.ms));
  }
  if (store_failures > 0) {
    append("store-fail:" + std::to_string(store_failures));
  }
  if (load_corrupts > 0) {
    append("load-corrupt:" + std::to_string(load_corrupts));
  }
  return out;
}

double FaultClock::delay_ms_for(double id) const {
  double total = 0.0;
  for (const FaultPlan::Delay& d : plan_.delays) {
    if (d.id == id) total += d.ms;
  }
  return total;
}

bool FaultClock::should_kill(int worker, std::uint64_t handled) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.kills.size(); ++i) {
    const FaultPlan::Kill& k = plan_.kills[i];
    if (!kill_fired_[i] && k.worker == worker && k.at == handled) {
      kill_fired_[i] = true;
      return true;
    }
  }
  return false;
}

bool FaultClock::corrupt_next_load() {
  std::lock_guard<std::mutex> lock(mu_);
  if (load_corrupt_budget_ <= 0) return false;
  --load_corrupt_budget_;
  return true;
}

}  // namespace deltanc::serve
