#include "serve/listener.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace deltanc::serve {

namespace {

/// One accepted connection: a line-framed reader feeding the service,
/// answers written back under a mutex.  Lives on its own thread.
class Connection {
 public:
  Connection(int fd, SolveService& service) : fd_(fd), service_(service) {}

  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void run() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF or error: stop reading, answer what we have
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        submit(buffer.substr(start, nl - start));
        start = nl + 1;
      }
      buffer.erase(0, start);
    }
    // A truncated client write (no trailing newline before EOF) is
    // still a request -- same contract as --batch's final line.
    if (!buffer.empty()) submit(buffer);
    wait_answered();
    shutdown_write();
    done_.store(true, std::memory_order_release);
  }

  /// True once run() has returned: the accept loop joins and erases
  /// finished connections so a long-lived server stays bounded.
  [[nodiscard]] bool done() const {
    return done_.load(std::memory_order_acquire);
  }

  /// Stops further reads so run() unblocks; in-flight answers still
  /// arrive (SIGTERM drain path).
  void shutdown_read() { ::shutdown(fd_, SHUT_RD); }

 private:
  void submit(std::string line) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
    }
    service_.submit(line, [this](const std::string& response) {
      // Settle the count even when the client hung up and write_line
      // throws -- otherwise wait_answered() wedges this connection's
      // thread forever and the SIGTERM drain can never join it.  The
      // rethrow lets the service count the dropped response.
      try {
        write_line(response);
      } catch (...) {
        settle_one();
        throw;
      }
      settle_one();
    });
    // Blank lines get no sink call: settle the count we optimistically
    // took.  (Non-blank lines are answered exactly once, possibly
    // synchronously above, possibly later from a worker.)
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      settle_one();
    }
  }

  void settle_one() {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    if (outstanding_ == 0) idle_.notify_all();
  }

  void write_line(const std::string& response) {
    std::lock_guard<std::mutex> lock(write_mu_);
    std::string framed = response;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a hung-up client surfaces as EPIPE here (the
      // service counts the dropped response), never as a SIGPIPE kill.
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("client hung up");
      sent += static_cast<std::size_t>(n);
    }
  }

  void wait_answered() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  int fd_;
  SolveService& service_;
  std::mutex write_mu_;  // serializes response lines onto the socket
  std::mutex mu_;        // guards outstanding_
  std::condition_variable idle_;
  std::int64_t outstanding_ = 0;
  std::atomic<bool> done_{false};
};

}  // namespace

bool run_socket_server(SolveService& service, const ListenerOptions& options,
                       std::ostream& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    err << "serve: socket path too long: " << options.socket_path << "\n";
    return false;
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err << "serve: socket(): " << std::strerror(errno) << "\n";
    return false;
  }
  // Only steal the path when nobody answers on it: a stale socket from
  // a crash refuses the connect, a live server accepts it.  Unlinking
  // unconditionally would silently orphan a healthy instance even if
  // our own bind then failed.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool live = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr)) == 0;
    ::close(probe);
    if (live) {
      err << "serve: a live server already answers on " << options.socket_path
          << "; refusing to replace it\n";
      ::close(listen_fd);
      return false;
    }
  }
  ::unlink(options.socket_path.c_str());  // a stale path from a crash
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    err << "serve: cannot listen on " << options.socket_path << ": "
        << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return false;
  }

  struct Client {
    std::unique_ptr<Connection> conn;
    std::thread thread;
  };
  std::vector<Client> clients;

  const auto stopped = [&options] {
    return options.stop != nullptr && *options.stop != 0;
  };
  while (!stopped()) {
    if (options.reload != nullptr && *options.reload != 0) {
      *options.reload = 0;
      service.reload();
      err << "serve: reloaded (warm layer dropped, caches reopened)\n";
    }
    // Reap finished conversations every tick so a long-lived server
    // does not accumulate one Connection + exited thread per past
    // client; `clients` stays bounded by *live* connections.
    for (auto it = clients.begin(); it != clients.end();) {
      if (it->conn->done()) {
        it->thread.join();
        it = clients.erase(it);
      } else {
        ++it;
      }
    }
    // Poll with a short tick so signal flags are observed promptly even
    // when no client ever connects.
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200 /*ms*/);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    Client client;
    client.conn = std::make_unique<Connection>(fd, service);
    Connection* conn = client.conn.get();
    client.thread = std::thread([conn] { conn->run(); });
    clients.push_back(std::move(client));
  }

  // SIGTERM/SIGINT drain: no new connections, stop reading from the
  // open ones, answer everything already accepted, then tear down.
  ::close(listen_fd);
  for (Client& client : clients) client.conn->shutdown_read();
  for (Client& client : clients) {
    if (client.thread.joinable()) client.thread.join();
  }
  service.drain();
  ::unlink(options.socket_path.c_str());
  return true;
}

}  // namespace deltanc::serve
