// Persistent solve service -- the engine behind `deltanc_cli --serve`.
//
// A SolveService keeps everything a one-shot `--batch` run throws away
// warm across requests: per-worker SolveWorkspaces and eb-memos (one
// Solver per solve-options flavor per worker thread), a per-worker
// in-memory result map (the "warm cache"), and per-worker handles on
// the persistent disk ResultCache.  The keyspace is sharded across the
// N workers by the FNV prefix of the canonical cache key
// (io::ResultCache::shard_of), so exactly one worker ever touches a
// given key: warm state needs no cross-worker locks and disk entries
// stay compatible with unsharded `--batch` readers of the same
// directory.
//
// Robustness is the contract, not an afterthought.  Every accepted
// request line is answered exactly once -- with a solved/served
// response byte-identical to run_batch's, or with a *classified* error
// response -- never dropped silently:
//   * Bounded per-worker queues: when a shard's queue is full the
//     request is answered kOverload immediately (backpressure instead
//     of unbounded memory growth).
//   * Per-request deadline: a solve that overruns it is answered
//     kTimeout by the supervisor; the wedged worker is abandoned and a
//     fresh one spawned, so one slow request never stalls its shard.
//     The abandoned thread discards its late result and exits.
//   * Crashed workers (exercised deterministically via
//     serve::FaultPlan's kill entries): the supervisor detects the
//     death, requeues the in-flight request with bounded retries and
//     backoff, respawns the worker, and -- when retries are exhausted
//     -- answers kWorkerLost instead of dropping the request.
//   * Cache misbehavior degrades gracefully: a failed store (full
//     disk) is a counted solve-through (CacheStats::store_failures), a
//     corrupt entry re-solves with the same kCorruptCache recovery
//     warning the batch path emits.
//   * drain() (SIGTERM) stops intake, answers everything already
//     accepted, and joins all threads; reload() (SIGHUP) drops the
//     in-memory warm layer and reopens the disk caches for schema
//     bumps without restarting the process.
//
// The service is transport-free: submit() takes a raw JSONL request
// line plus a sink that receives exactly one JSONL response line
// (possibly from another thread).  serve/listener.h adapts it onto a
// Unix-domain socket.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "io/batch.h"
#include "serve/fault_plan.h"

namespace deltanc::serve {

struct ServeOptions {
  /// Worker (= cache shard) count; <= 0 resolves like the sweep
  /// engine: DELTANC_THREADS env, else hardware_concurrency().
  int workers = 0;
  /// Bounded per-worker queue depth; a full queue answers kOverload.
  std::size_t queue_depth = 512;
  /// Per-request deadline (ms); 0 disables timeouts.
  double deadline_ms = 0.0;
  /// Requeue budget for requests orphaned by a crashed worker; after
  /// this many retries the request is answered kWorkerLost.
  int max_requeues = 2;
  /// Base backoff before a requeue (doubles per retry, capped at 8x).
  double requeue_backoff_ms = 1.0;
  /// Per-worker in-memory warm-result cap (entries); 0 disables the
  /// memory layer (every warm hit re-reads the disk cache).
  std::size_t memory_entries = 1 << 16;
  /// Persistent cache directory; empty = no disk cache (solve-only,
  /// responses carry no "cache" tag, exactly like cache-less --batch).
  std::filesystem::path cache_dir;
  /// Method used when a request carries no "options" object.
  e2e::Method default_method = e2e::Method::kExactOpt;
  /// Deterministic fault injection (see serve/fault_plan.h).
  FaultPlan faults{};
};

/// Running totals of one service lifetime (summed over all workers).
struct ServeStats {
  std::int64_t received = 0;       ///< non-blank lines submitted
  std::int64_t answered = 0;       ///< sink calls that completed
  std::int64_t parse_errors = 0;   ///< answered with ok=false (no kind)
  std::int64_t solved = 0;         ///< answered by running the solver
  std::int64_t served = 0;         ///< answered from memory or disk cache
  std::int64_t memory_hits = 0;    ///< subset of `served`: memory layer
  std::int64_t failed = 0;         ///< solver failures (response ok=true,
                                   ///<   result carries the +inf bound)
  std::int64_t timeouts = 0;       ///< answered kTimeout by the supervisor
  std::int64_t overloads = 0;      ///< answered kOverload (full queue/drain)
  std::int64_t worker_losses = 0;  ///< worker crashes detected
  std::int64_t requeues = 0;       ///< orphaned requests re-queued
  std::int64_t exhausted = 0;      ///< answered kWorkerLost (retries spent)
  std::int64_t discarded = 0;      ///< late results of abandoned workers
  std::int64_t dropped = 0;        ///< sink threw (client hung up)
  int respawns = 0;                ///< replacement workers spawned
  int reloads = 0;                 ///< reload() calls
  io::CacheStats cache{};          ///< disk traffic summed over shards
};

/// The transport-free service core.  Construction spawns the worker
/// pool and the supervisor; destruction drains.  submit()/reload()/
/// drain()/stats() are thread-safe.
class SolveService {
 public:
  /// Receives exactly one JSONL response line per submitted request.
  /// May be invoked from any service thread; exceptions are swallowed
  /// and counted as `dropped`.
  using Sink = std::function<void(const std::string& line)>;

  /// @throws std::runtime_error when the cache directory cannot be
  /// opened.
  explicit SolveService(const ServeOptions& options);
  ~SolveService();
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Resolved worker/shard count.
  [[nodiscard]] int workers() const noexcept;

  /// Submits one raw JSONL request line.  Blank lines are ignored
  /// (no sink call); every other line gets exactly one response --
  /// parse errors, overload, and drain rejections synchronously from
  /// this thread, solved/served answers later from a worker thread.
  void submit(const std::string& line, Sink sink);

  /// SIGHUP handler: drops every worker's in-memory warm layer and
  /// reopens the disk caches (accumulated CacheStats survive), so a
  /// schema bump or an externally doctored cache directory takes
  /// effect without restarting the service.
  void reload();

  /// SIGTERM handler: stops intake (further submits answer kOverload
  /// "draining"), waits until every accepted request is answered, and
  /// joins all threads.  Idempotent.
  void drain();

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deltanc::serve
