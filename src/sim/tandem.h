// The multi-node network of Fig. 1, simulated slot by slot: a through
// aggregate traverses H identical nodes; at each node an independent
// cross aggregate joins, is served, and leaves.  Used to validate the
// analytic end-to-end bounds (the empirical delay quantile at level
// 1 - epsilon must lie below the bound) and to contrast scheduler
// behaviour empirically.
//
// Conventions: 1 slot = 1 ms (T = 1 ms in the paper).  Flow class 0 is
// the through aggregate, class 1 the cross aggregate at each node.  A
// chunk that completes service at node h in slot t enters node h+1 at
// slot t+1; the end-to-end delay of a chunk is
// (completion slot at node H) + 1 - (arrival slot at node 1), i.e. the
// number of slot boundaries from arrival to full delivery.
#pragma once

#include <cstdint>

#include "sched/scheduler_spec.h"
#include "sim/stats.h"
#include "traffic/mmoo.h"

namespace deltanc::sim {

/// Discipline selector for every node of the tandem.
enum class DisciplineKind {
  kFifo,
  kSpThroughLow,   ///< blind multiplexing: through class has low priority
  kSpThroughHigh,  ///< through class has high priority
  kEdf,            ///< per-class deadlines (edf_* fields)
  kGps,            ///< fluid fair sharing (class_weights as GPS weights)
  kDrr,            ///< deficit round robin (class_weights as quanta, kb)
  kSced,           ///< deadline curves, rates split by the offered load
};

struct TandemConfig {
  double capacity_kb_per_slot = 100.0;  ///< C = 100 Mbps at 1 ms slots
  int hops = 2;
  traffic::MmooSource source = traffic::MmooSource::paper_source();
  int n_through = 100;  ///< N_0 through flows (aggregated)
  int n_cross = 100;    ///< N_c cross flows per node (aggregated)
  DisciplineKind discipline = DisciplineKind::kFifo;
  double edf_through_deadline = 10.0;  ///< d*_0 in slots
  double edf_cross_deadline = 100.0;   ///< d*_c in slots
  /// GPS weights phi_i / DRR quanta Q_i (kb), class 0 = through.  The
  /// two-class simulation collapses the cross classes onto
  /// (through(), cross_total()), but the full list is kept so
  /// scheduler_spec_of() raises losslessly (>= 3-class specs included).
  sched::ClassWeights class_weights{};
  std::int64_t slots = 200000;
  std::int64_t warmup_slots = 2000;  ///< delays of chunks arriving before
                                     ///< this slot are discarded
  std::uint64_t seed = 1;
  /// Emission granularity in kb: 0 = one fluid chunk per aggregate per
  /// slot (the paper's fluid model); > 0 = whole packets of this size
  /// (remainders accumulate across slots).  Per-packet delays are then
  /// recorded individually -- used to probe the paper's "packet sizes
  /// are small relative to the rate" assumption.
  double packet_kb = 0.0;
  /// Record each node's total backlog every `backlog_stride` slots
  /// (0 disables backlog recording).
  std::int64_t backlog_stride = 0;
};

struct TandemResult {
  DelayRecorder through_delay;    ///< end-to-end delay per chunk, in slots
  double mean_utilization = 0.0;  ///< served / capacity averaged over nodes
  /// Per-node total backlog samples (kb), when backlog_stride > 0.
  std::vector<DelayRecorder> node_backlog;
};

/// Runs the tandem simulation.  @throws std::invalid_argument on
/// malformed configuration.
[[nodiscard]] TandemResult run_tandem(const TandemConfig& config);

/// Lowering adapter from the analytic scheduler identity: sets
/// `config.discipline` (and the EDF deadline fields where applicable)
/// to simulate `spec`.  kEdf deadlines resolve as factor * edf_unit
/// (callers supply edf_unit = d_e2e / H in slots; other kinds ignore
/// it).  A finite non-zero fixed-Delta spec lowers to per-class EDF
/// deadlines whose difference is exactly the offset -- by Def. 1 that
/// realizes the precedence constants; Delta = 0 / +inf / -inf lower to
/// the FIFO / SP-low / SP-high disciplines.  The curve-backed kinds
/// lower to their own disciplines: GPS and DRR carry their weight/
/// quantum lists into class_weights, SCED is parameterless (the
/// discipline splits capacity by the configured flow counts, the same
/// load-proportional rule as sched::ScedProvider).  Every registered
/// scheduler name is accepted.
/// @throws std::invalid_argument for kEdf without a positive finite
/// edf_unit.
void lower_scheduler(const sched::SchedulerSpec& spec, double edf_unit,
                     TandemConfig& config);

/// The analytic identity of `config`'s discipline (inverse adapter).
/// EDF raises to a fixed-Delta spec carrying the deadline difference:
/// absolute deadlines hold more information than Def. 1 keeps.  GPS and
/// DRR raise to the curve-backed specs carrying the full configured
/// class_weights; SCED raises to the parameterless spec (see
/// sched/service_curve_provider.h).
[[nodiscard]] sched::SchedulerSpec scheduler_spec_of(
    const TandemConfig& config);

}  // namespace deltanc::sim
