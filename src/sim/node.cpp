#include "sim/node.h"

#include <stdexcept>

namespace deltanc::sim {

Node::Node(double capacity_kb_per_slot,
           std::unique_ptr<Discipline> discipline)
    : capacity_(capacity_kb_per_slot), discipline_(std::move(discipline)) {
  if (!(capacity_ > 0.0)) {
    throw std::invalid_argument("Node: capacity must be > 0");
  }
  if (discipline_ == nullptr) {
    throw std::invalid_argument("Node: discipline must not be null");
  }
}

void Node::arrive(Chunk chunk) { discipline_->enqueue(chunk); }

double Node::advance(std::vector<Chunk>* completed) {
  return discipline_->serve(capacity_, completed);
}

}  // namespace deltanc::sim
