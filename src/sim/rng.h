// Small, fast, reproducible random number generation for the simulator:
// SplitMix64 for seeding and xoshiro256** (Blackman & Vigna) as the
// workhorse generator.  Both satisfy UniformRandomBitGenerator, so they
// compose with <random> distributions (the aggregate MMOO source uses
// std::binomial_distribution for its state transitions).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace deltanc::sim {

/// SplitMix64: a tiny PRNG whose primary job is turning one 64-bit seed
/// into well-distributed state words for xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: 256-bit state, period 2^256 - 1, excellent statistical
/// quality for simulation workloads.
class Xoshiro256ss {
 public:
  /// Seeds the four state words via SplitMix64.
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) using the top 53 bits.
  double uniform() noexcept;

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Jump function: advances the stream by 2^128 steps, for spawning
  /// non-overlapping substreams (one per node / traffic source).
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace deltanc::sim
