#include "sim/markov_source.h"

#include <random>
#include <stdexcept>

namespace deltanc::sim {

namespace {

/// Multinomial(n, probs) via the conditional-binomial method.
void multinomial(int n, const std::vector<double>& probs,
                 std::vector<int>* out, Xoshiro256ss& rng) {
  double remaining_p = 1.0;
  int remaining_n = n;
  for (std::size_t j = 0; j + 1 < probs.size(); ++j) {
    if (remaining_n == 0 || remaining_p <= 0.0) {
      (*out)[j] += 0;
      continue;
    }
    const double p = std::min(1.0, probs[j] / remaining_p);
    std::binomial_distribution<int> dist(remaining_n, p);
    const int k = dist(rng);
    (*out)[j] += k;
    remaining_n -= k;
    remaining_p -= probs[j];
  }
  (*out)[probs.size() - 1] += remaining_n;
}

}  // namespace

MarkovAggregateSim::MarkovAggregateSim(const traffic::MarkovSource& model,
                                       int n, Xoshiro256ss& rng)
    : model_(model), n_(n), counts_(model.states(), 0) {
  if (n < 0) {
    throw std::invalid_argument("MarkovAggregateSim: n must be >= 0");
  }
  multinomial(n, model_.stationary(), &counts_, rng);
}

double MarkovAggregateSim::step(Xoshiro256ss& rng) {
  std::vector<int> next(model_.states(), 0);
  for (std::size_t i = 0; i < model_.states(); ++i) {
    if (counts_[i] > 0) {
      multinomial(counts_[i], model_.transition()[i], &next, rng);
    }
  }
  counts_ = std::move(next);
  double kb = 0.0;
  for (std::size_t i = 0; i < model_.states(); ++i) {
    kb += counts_[i] * model_.rates()[i];
  }
  return kb;
}

}  // namespace deltanc::sim
