// One buffered link of the tandem: a per-slot service budget drained by a
// pluggable discipline (Fig. 1's "node").
#pragma once

#include <memory>
#include <vector>

#include "sim/scheduler_queue.h"

namespace deltanc::sim {

/// A work-conserving link with capacity `capacity_kb_per_slot` and a
/// scheduling discipline.
class Node {
 public:
  /// @throws std::invalid_argument unless capacity > 0 and the discipline
  ///   is non-null.
  Node(double capacity_kb_per_slot, std::unique_ptr<Discipline> discipline);

  /// Admits a chunk (arrivals of the current slot are eligible for
  /// service in the same slot).
  void arrive(Chunk chunk);

  /// Serves one slot's budget; chunks that finish are appended to
  /// `completed`.  Returns the kb actually transmitted.
  double advance(std::vector<Chunk>* completed);

  [[nodiscard]] double backlog() const { return discipline_->backlog(); }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }

 private:
  double capacity_;
  std::unique_ptr<Discipline> discipline_;
};

}  // namespace deltanc::sim
