// Work-conserving link disciplines for the slot-based simulator.
//
// The simulator moves fluid "chunks" (one per flow aggregate per slot).
// Each discipline decides the order in which backlogged chunks drain a
// per-slot service budget; partial service splits a chunk.  All four of
// the paper's reference points are implemented:
//
//   FIFO  -- global arrival order                  (Delta = 0)
//   SP    -- strict priority between flow classes  (Delta in {-inf,0,+inf})
//   EDF   -- per-class deadlines, earliest first   (Delta = d*_j - d*_k)
//   GPS   -- fluid weighted fair sharing.  GPS is deliberately included
//            as the paper's counterexample: its precedence structure
//            depends on the random backlog, so it is NOT a
//            Delta-scheduler (Section III).
//   DRR   -- deficit round robin (Shreedhar & Varghese): per-class
//            quanta and deficit counters, visited in round-robin order.
//            Like GPS it conditions on the backlog, so it is curve-backed
//            (sched/service_curve_provider.h), not a Delta-scheduler.
//   SCED  -- deadline-curve scheduling (arXiv:1804.08040): each class
//            runs a virtual server of rate R_f that stamps a deadline,
//            and chunks are served earliest-deadline-first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace deltanc::sim {

/// A fluid chunk of traffic from one flow class.
struct Chunk {
  int flow;                   ///< flow class index
  double size_kb;             ///< remaining (unserved) size
  double total_kb;            ///< original size -- restored when the chunk
                              ///< is forwarded to the next node
  std::int64_t arrival_slot;  ///< arrival at the *current* node
  std::int64_t origin_slot;   ///< arrival into the network (end-to-end delay)
  double deadline;            ///< EDF service deadline (set at enqueue)
  std::uint64_t seq;          ///< global tie-breaker (arrival order)
};

/// Interface: a work-conserving scheduling discipline over flow classes.
class Discipline {
 public:
  virtual ~Discipline() = default;

  /// Admits a chunk to the queue (the discipline may stamp metadata such
  /// as the EDF deadline).
  virtual void enqueue(Chunk chunk) = 0;

  /// Serves up to `budget` kb.  Fully-served chunks are appended to
  /// `completed`; a partially-served head chunk stays queued with its
  /// size reduced.  Returns the amount actually served (work conserving:
  /// min(budget, backlog)).
  virtual double serve(double budget, std::vector<Chunk>* completed) = 0;

  /// Total backlogged kb.
  [[nodiscard]] virtual double backlog() const = 0;
};

/// FIFO across all classes (global arrival order, seq as tie-breaker).
[[nodiscard]] std::unique_ptr<Discipline> make_fifo();

/// Static priority: `flow_priority[f]` is class f's priority, larger =
/// served first; FIFO within a priority level.
[[nodiscard]] std::unique_ptr<Discipline> make_static_priority(
    std::vector<int> flow_priority);

/// EDF: class f's chunks get deadline arrival_slot + flow_deadline[f];
/// earliest deadline served first (FIFO tie-break).
[[nodiscard]] std::unique_ptr<Discipline> make_edf(
    std::vector<double> flow_deadline);

/// Fluid GPS with per-class weights: every backlogged class drains
/// simultaneously in proportion to its weight (progressive filling
/// within each slot).
[[nodiscard]] std::unique_ptr<Discipline> make_gps(
    std::vector<double> weights);

/// Deficit round robin with per-class quanta (kb).  Each round-robin
/// visit to a backlogged class charges its quantum onto a deficit
/// counter and serves at most that much; a visit interrupted by budget
/// exhaustion resumes next slot without re-charging, and the deficit of
/// a class that drains empty is forfeited (Shreedhar & Varghese).
[[nodiscard]] std::unique_ptr<Discipline> make_drr(
    std::vector<double> quanta);

/// SCED with rate service curves: class f's chunks are stamped with the
/// deadline max(F_f, arrival) + size / rate_f, where F_f is the class's
/// virtual finish time, and served earliest-deadline-first.  Rates are
/// in kb per slot; a zero rate is allowed only for classes that never
/// receive traffic (enqueue throws otherwise).
[[nodiscard]] std::unique_ptr<Discipline> make_sced(
    std::vector<double> rates);

}  // namespace deltanc::sim
