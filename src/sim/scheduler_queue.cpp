#include "sim/scheduler_queue.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <stdexcept>

namespace deltanc::sim {

namespace {

constexpr double kSizeEps = 1e-12;

/// FIFO: one global queue in arrival order.
class FifoDiscipline final : public Discipline {
 public:
  void enqueue(Chunk chunk) override {
    backlog_ += chunk.size_kb;
    queue_.push_back(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    while (budget > kSizeEps && !queue_.empty()) {
      Chunk& head = queue_.front();
      const double amount = std::min(budget, head.size_kb);
      head.size_kb -= amount;
      budget -= amount;
      served += amount;
      backlog_ -= amount;
      if (head.size_kb <= kSizeEps) {
        completed->push_back(head);
        queue_.pop_front();
      }
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  std::deque<Chunk> queue_;
  double backlog_ = 0.0;
};

/// Static priority: a FIFO queue per priority level, highest level first.
class SpDiscipline final : public Discipline {
 public:
  explicit SpDiscipline(std::vector<int> priority)
      : priority_(std::move(priority)) {
    if (priority_.empty()) {
      throw std::invalid_argument("static priority: need flow priorities");
    }
  }

  void enqueue(Chunk chunk) override {
    if (chunk.flow < 0 || chunk.flow >= static_cast<int>(priority_.size())) {
      throw std::out_of_range("static priority: unknown flow class");
    }
    backlog_ += chunk.size_kb;
    levels_[priority_[chunk.flow]].push_back(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    // std::map iterates ascending; serve from the highest priority down.
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
      auto& queue = it->second;
      while (budget > kSizeEps && !queue.empty()) {
        Chunk& head = queue.front();
        const double amount = std::min(budget, head.size_kb);
        head.size_kb -= amount;
        budget -= amount;
        served += amount;
        backlog_ -= amount;
        if (head.size_kb <= kSizeEps) {
          completed->push_back(head);
          queue.pop_front();
        }
      }
      if (budget <= kSizeEps) break;
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  std::vector<int> priority_;
  std::map<int, std::deque<Chunk>> levels_;
  double backlog_ = 0.0;
};

/// EDF: min-heap on (deadline, seq).
class EdfDiscipline final : public Discipline {
 public:
  explicit EdfDiscipline(std::vector<double> deadline)
      : deadline_(std::move(deadline)) {
    if (deadline_.empty()) {
      throw std::invalid_argument("edf: need flow deadlines");
    }
  }

  void enqueue(Chunk chunk) override {
    if (chunk.flow < 0 || chunk.flow >= static_cast<int>(deadline_.size())) {
      throw std::out_of_range("edf: unknown flow class");
    }
    chunk.deadline =
        static_cast<double>(chunk.arrival_slot) + deadline_[chunk.flow];
    backlog_ += chunk.size_kb;
    heap_.push(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    while (budget > kSizeEps && !heap_.empty()) {
      Chunk head = heap_.top();
      heap_.pop();
      const double amount = std::min(budget, head.size_kb);
      head.size_kb -= amount;
      budget -= amount;
      served += amount;
      backlog_ -= amount;
      if (head.size_kb <= kSizeEps) {
        completed->push_back(head);
      } else {
        heap_.push(head);  // partially served head keeps its deadline
      }
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Chunk& a, const Chunk& b) const noexcept {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;  // FIFO among equal deadlines
    }
  };
  std::vector<double> deadline_;
  std::priority_queue<Chunk, std::vector<Chunk>, Later> heap_;
  double backlog_ = 0.0;
};

/// Fluid GPS: progressive filling across backlogged classes per slot.
class GpsDiscipline final : public Discipline {
 public:
  explicit GpsDiscipline(std::vector<double> weights)
      : weights_(std::move(weights)), queues_(weights_.size()) {
    if (weights_.empty()) {
      throw std::invalid_argument("gps: need flow weights");
    }
    for (double w : weights_) {
      if (!(w > 0.0)) throw std::invalid_argument("gps: weights must be > 0");
    }
  }

  void enqueue(Chunk chunk) override {
    if (chunk.flow < 0 || chunk.flow >= static_cast<int>(queues_.size())) {
      throw std::out_of_range("gps: unknown flow class");
    }
    backlog_ += chunk.size_kb;
    queues_[chunk.flow].push_back(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    // Progressive filling: split the remaining budget among backlogged
    // classes by weight; classes that drain early release their share.
    while (budget > kSizeEps) {
      double active_weight = 0.0;
      double active_backlog = 0.0;
      for (std::size_t f = 0; f < queues_.size(); ++f) {
        if (!queues_[f].empty()) {
          active_weight += weights_[f];
          active_backlog += class_backlog(f);
        }
      }
      if (active_weight == 0.0) break;
      // The filling step: the round ends when either the budget is spent
      // or the first class drains completely.
      double round = std::min(budget, active_backlog);
      for (std::size_t f = 0; f < queues_.size(); ++f) {
        if (queues_[f].empty()) continue;
        const double share = weights_[f] / active_weight;
        round = std::min(round, class_backlog(f) / share);
      }
      if (round <= kSizeEps) round = budget;  // numerical guard
      double spent = 0.0;
      for (std::size_t f = 0; f < queues_.size(); ++f) {
        if (queues_[f].empty()) continue;
        const double share = weights_[f] / active_weight;
        spent += drain_class(f, round * share, completed);
      }
      if (spent <= kSizeEps) break;
      budget -= spent;
      served += spent;
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  [[nodiscard]] double class_backlog(std::size_t f) const {
    double sum = 0.0;
    for (const Chunk& c : queues_[f]) sum += c.size_kb;
    return sum;
  }

  double drain_class(std::size_t f, double amount,
                     std::vector<Chunk>* completed) {
    double drained = 0.0;
    auto& queue = queues_[f];
    while (amount > kSizeEps && !queue.empty()) {
      Chunk& head = queue.front();
      const double step = std::min(amount, head.size_kb);
      head.size_kb -= step;
      amount -= step;
      drained += step;
      backlog_ -= step;
      if (head.size_kb <= kSizeEps) {
        completed->push_back(head);
        queue.pop_front();
      }
    }
    return drained;
  }

  std::vector<double> weights_;
  std::vector<std::deque<Chunk>> queues_;
  double backlog_ = 0.0;
};

/// Deficit round robin: per-class deques, persistent deficit counters,
/// and a round-robin cursor.  The charged_ flag makes the quantum a
/// once-per-visit grant even when a visit spans several serve() calls.
class DrrDiscipline final : public Discipline {
 public:
  explicit DrrDiscipline(std::vector<double> quanta)
      : quanta_(std::move(quanta)),
        queues_(quanta_.size()),
        deficit_(quanta_.size(), 0.0),
        charged_(quanta_.size(), false) {
    if (quanta_.empty()) {
      throw std::invalid_argument("drr: need flow quanta");
    }
    for (double q : quanta_) {
      if (!(q > 0.0)) throw std::invalid_argument("drr: quanta must be > 0");
    }
  }

  void enqueue(Chunk chunk) override {
    if (chunk.flow < 0 || chunk.flow >= static_cast<int>(queues_.size())) {
      throw std::out_of_range("drr: unknown flow class");
    }
    backlog_ += chunk.size_kb;
    queues_[static_cast<std::size_t>(chunk.flow)].push_back(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    // Guards against sub-epsilon quanta that could never drain anything:
    // a full cursor lap with no service ends the slot.
    std::size_t idle_visits = 0;
    while (budget > kSizeEps && backlog_ > kSizeEps &&
           idle_visits <= queues_.size()) {
      auto& queue = queues_[cursor_];
      if (queue.empty()) {
        // An empty class holds no deficit and no pending charge.
        deficit_[cursor_] = 0.0;
        charged_[cursor_] = false;
        advance();
        ++idle_visits;
        continue;
      }
      if (!charged_[cursor_]) {
        deficit_[cursor_] += quanta_[cursor_];
        charged_[cursor_] = true;
      }
      const double drained =
          drain_class(cursor_, std::min(budget, deficit_[cursor_]), completed);
      deficit_[cursor_] -= drained;
      budget -= drained;
      served += drained;
      idle_visits = drained > kSizeEps ? 0 : idle_visits + 1;
      if (queue.empty()) {
        deficit_[cursor_] = 0.0;  // deficit does not survive an empty queue
        charged_[cursor_] = false;
        advance();
      } else if (budget <= kSizeEps) {
        break;  // mid-visit budget exhaustion: resume here, still charged
      } else {
        charged_[cursor_] = false;  // deficit spent; the visit is over
        advance();
      }
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  void advance() noexcept { cursor_ = (cursor_ + 1) % queues_.size(); }

  double drain_class(std::size_t f, double amount,
                     std::vector<Chunk>* completed) {
    double drained = 0.0;
    auto& queue = queues_[f];
    while (amount > kSizeEps && !queue.empty()) {
      Chunk& head = queue.front();
      const double step = std::min(amount, head.size_kb);
      head.size_kb -= step;
      amount -= step;
      drained += step;
      backlog_ -= step;
      if (head.size_kb <= kSizeEps) {
        completed->push_back(head);
        queue.pop_front();
      }
    }
    return drained;
  }

  std::vector<double> quanta_;
  std::vector<std::deque<Chunk>> queues_;
  std::vector<double> deficit_;
  std::vector<bool> charged_;
  std::size_t cursor_ = 0;
  double backlog_ = 0.0;
};

/// SCED: a per-class virtual server of rate rate_[f] stamps deadlines
/// (max(F_f, arrival) + size / rate), then EDF on the stamps.
class ScedDiscipline final : public Discipline {
 public:
  explicit ScedDiscipline(std::vector<double> rates)
      : rates_(std::move(rates)), finish_(rates_.size(), 0.0) {
    if (rates_.empty()) {
      throw std::invalid_argument("sced: need flow rates");
    }
    for (double r : rates_) {
      if (!(r >= 0.0)) throw std::invalid_argument("sced: rates must be >= 0");
    }
  }

  void enqueue(Chunk chunk) override {
    if (chunk.flow < 0 || chunk.flow >= static_cast<int>(rates_.size())) {
      throw std::out_of_range("sced: unknown flow class");
    }
    const auto f = static_cast<std::size_t>(chunk.flow);
    if (!(rates_[f] > 0.0)) {
      throw std::invalid_argument(
          "sced: arrival on a class with no guaranteed rate");
    }
    finish_[f] = std::max(finish_[f], static_cast<double>(chunk.arrival_slot)) +
                 chunk.size_kb / rates_[f];
    chunk.deadline = finish_[f];
    backlog_ += chunk.size_kb;
    heap_.push(chunk);
  }

  double serve(double budget, std::vector<Chunk>* completed) override {
    double served = 0.0;
    while (budget > kSizeEps && !heap_.empty()) {
      Chunk head = heap_.top();
      heap_.pop();
      const double amount = std::min(budget, head.size_kb);
      head.size_kb -= amount;
      budget -= amount;
      served += amount;
      backlog_ -= amount;
      if (head.size_kb <= kSizeEps) {
        completed->push_back(head);
      } else {
        heap_.push(head);  // partially served head keeps its deadline
      }
    }
    return served;
  }

  [[nodiscard]] double backlog() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Chunk& a, const Chunk& b) const noexcept {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;  // FIFO among equal deadlines
    }
  };
  std::vector<double> rates_;
  std::vector<double> finish_;
  std::priority_queue<Chunk, std::vector<Chunk>, Later> heap_;
  double backlog_ = 0.0;
};

}  // namespace

std::unique_ptr<Discipline> make_fifo() {
  return std::make_unique<FifoDiscipline>();
}

std::unique_ptr<Discipline> make_static_priority(
    std::vector<int> flow_priority) {
  return std::make_unique<SpDiscipline>(std::move(flow_priority));
}

std::unique_ptr<Discipline> make_edf(std::vector<double> flow_deadline) {
  return std::make_unique<EdfDiscipline>(std::move(flow_deadline));
}

std::unique_ptr<Discipline> make_gps(std::vector<double> weights) {
  return std::make_unique<GpsDiscipline>(std::move(weights));
}

std::unique_ptr<Discipline> make_drr(std::vector<double> quanta) {
  return std::make_unique<DrrDiscipline>(std::move(quanta));
}

std::unique_ptr<Discipline> make_sced(std::vector<double> rates) {
  return std::make_unique<ScedDiscipline>(std::move(rates));
}

}  // namespace deltanc::sim
