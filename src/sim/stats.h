// Delay statistics for simulator runs: exact empirical quantiles (the
// sample vector is kept -- a few million doubles at most) plus running
// mean/variance via Welford's algorithm.
#pragma once

#include <cstddef>
#include <vector>

namespace deltanc::sim {

/// Empirical-quantile resolvability heuristic, shared by the validation
/// benches and PathAnalyzer::validate: the (1 - epsilon) sample quantile
/// of `samples` data points is only trusted when the tail beyond it
/// holds at least `min_tail_samples` samples, i.e. epsilon * samples >=
/// min_tail_samples.  Anything deeper is extrapolation from a handful of
/// order statistics and must not be compared against an analytic bound.
[[nodiscard]] bool quantile_resolvable(double epsilon, std::size_t samples,
                                       double min_tail_samples = 50.0);

/// The deepest violation probability whose quantile is still resolvable
/// from `samples` (min_tail_samples tail samples), clamped into
/// [floor_epsilon, 0.5].  This is the epsilon-selection rule of
/// PathAnalyzer::validate (min_tail_samples = 100 there); exposed so
/// benches pick their simulation epsilon by the same arithmetic.
[[nodiscard]] double deepest_resolvable_epsilon(std::size_t samples,
                                                double min_tail_samples,
                                                double floor_epsilon);

/// Collects scalar samples and answers quantile / moment queries.
class DelayRecorder {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Exact empirical q-quantile, q in [0, 1].
  /// @throws std::logic_error when empty, std::invalid_argument for bad q.
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of samples strictly greater than the threshold (empirical
  /// violation probability of a delay bound).
  [[nodiscard]] double exceed_fraction(double threshold) const;

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double max_ = 0.0;
};

}  // namespace deltanc::sim
