// Delay statistics for simulator runs: exact empirical quantiles (the
// sample vector is kept -- a few million doubles at most) plus running
// mean/variance via Welford's algorithm.
#pragma once

#include <cstddef>
#include <vector>

namespace deltanc::sim {

/// Collects scalar samples and answers quantile / moment queries.
class DelayRecorder {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Exact empirical q-quantile, q in [0, 1].
  /// @throws std::logic_error when empty, std::invalid_argument for bad q.
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of samples strictly greater than the threshold (empirical
  /// violation probability of a delay bound).
  [[nodiscard]] double exceed_fraction(double threshold) const;

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double max_ = 0.0;
};

}  // namespace deltanc::sim
