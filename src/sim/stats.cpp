#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deltanc::sim {

bool quantile_resolvable(double epsilon, std::size_t samples,
                         double min_tail_samples) {
  if (!(epsilon > 0.0) || samples == 0) return false;
  return epsilon * static_cast<double>(samples) >= min_tail_samples;
}

double deepest_resolvable_epsilon(std::size_t samples,
                                  double min_tail_samples,
                                  double floor_epsilon) {
  if (samples == 0) return 0.5;
  double eps = min_tail_samples / static_cast<double>(samples);
  eps = std::max(eps, floor_epsilon);
  return std::min(eps, 0.5);
}

void DelayRecorder::add(double value) {
  samples_.push_back(value);
  max_ = std::max(max_, value);
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (value - mean_);
}

double DelayRecorder::variance() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double DelayRecorder::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("DelayRecorder::quantile: no samples");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("DelayRecorder::quantile: q must be in [0,1]");
  }
  std::vector<double> sorted = samples_;
  const double last = static_cast<double>(sorted.size() - 1);
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(std::floor(q * last + 0.5)));
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

double DelayRecorder::exceed_fraction(double threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t over = 0;
  for (double v : samples_) {
    if (v > threshold) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(samples_.size());
}

}  // namespace deltanc::sim
