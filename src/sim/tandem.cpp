#include "sim/tandem.h"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/mmoo_source.h"
#include "sim/node.h"

namespace deltanc::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::unique_ptr<Discipline> make_discipline(const TandemConfig& c) {
  switch (c.discipline) {
    case DisciplineKind::kFifo:
      return make_fifo();
    case DisciplineKind::kSpThroughLow:
      return make_static_priority({0, 1});
    case DisciplineKind::kSpThroughHigh:
      return make_static_priority({1, 0});
    case DisciplineKind::kEdf:
      return make_edf({c.edf_through_deadline, c.edf_cross_deadline});
    case DisciplineKind::kGps:
      return make_gps({c.class_weights.through(),
                       c.class_weights.cross_total()});
    case DisciplineKind::kDrr:
      // The DRR guarantee depends only on Q_0 and the sum (quantum share
      // and round latency), so the cross quanta collapse onto their sum.
      return make_drr({c.class_weights.through(),
                       c.class_weights.cross_total()});
    case DisciplineKind::kSced: {
      // Load-proportional rate split: every flow is an i.i.d. copy of
      // the same source, so the class loads are proportional to the flow
      // counts (the rule sched::ScedProvider applies analytically).
      const double total = static_cast<double>(c.n_through + c.n_cross);
      return make_sced({c.capacity_kb_per_slot * c.n_through / total,
                        c.capacity_kb_per_slot * c.n_cross / total});
    }
  }
  throw std::invalid_argument("run_tandem: unknown discipline");
}

}  // namespace

void lower_scheduler(const sched::SchedulerSpec& spec, double edf_unit,
                     TandemConfig& config) {
  switch (spec.kind()) {
    case sched::SchedulerKind::kFifo:
      config.discipline = DisciplineKind::kFifo;
      return;
    case sched::SchedulerKind::kBmux:
      config.discipline = DisciplineKind::kSpThroughLow;
      return;
    case sched::SchedulerKind::kSpHigh:
      config.discipline = DisciplineKind::kSpThroughHigh;
      return;
    case sched::SchedulerKind::kEdf:
      if (!(edf_unit > 0.0) || !std::isfinite(edf_unit)) {
        throw std::invalid_argument(
            "lower_scheduler: EDF deadlines need a positive finite "
            "edf_unit (= d_e2e / H)");
      }
      config.discipline = DisciplineKind::kEdf;
      config.edf_through_deadline = spec.edf_factors().own_factor * edf_unit;
      config.edf_cross_deadline = spec.edf_factors().cross_factor * edf_unit;
      return;
    case sched::SchedulerKind::kDelta: {
      const double d = spec.delta();
      if (d == 0.0) {
        config.discipline = DisciplineKind::kFifo;
      } else if (d == kInf) {
        config.discipline = DisciplineKind::kSpThroughLow;
      } else if (d == -kInf) {
        config.discipline = DisciplineKind::kSpThroughHigh;
      } else {
        // Per-class deadlines whose difference is exactly the offset:
        // by Def. 1 the scheduler only sees d*_0 - d*_c.
        config.discipline = DisciplineKind::kEdf;
        config.edf_through_deadline = d > 0.0 ? d : 0.0;
        config.edf_cross_deadline = d > 0.0 ? 0.0 : -d;
      }
      return;
    }
    case sched::SchedulerKind::kGps:
      // The full weight list is kept; make_discipline collapses the
      // cross classes onto one weight for the two-class simulation.
      config.discipline = DisciplineKind::kGps;
      config.class_weights = spec.weights();
      return;
    case sched::SchedulerKind::kDrr:
      config.discipline = DisciplineKind::kDrr;
      config.class_weights = spec.weights();
      return;
    case sched::SchedulerKind::kSced:
      // Parameterless: the discipline derives its load-proportional
      // rates from the configured flow counts and capacity.
      config.discipline = DisciplineKind::kSced;
      return;
  }
  throw std::invalid_argument("lower_scheduler: unknown scheduler kind");
}

sched::SchedulerSpec scheduler_spec_of(const TandemConfig& config) {
  switch (config.discipline) {
    case DisciplineKind::kFifo:
      return sched::SchedulerSpec::fifo();
    case DisciplineKind::kSpThroughLow:
      return sched::SchedulerSpec::bmux();
    case DisciplineKind::kSpThroughHigh:
      return sched::SchedulerSpec::sp_high();
    case DisciplineKind::kEdf:
      return sched::SchedulerSpec::fixed_delta(config.edf_through_deadline -
                                               config.edf_cross_deadline);
    case DisciplineKind::kGps:
      // GPS is not a Delta-scheduler, but since the curve-backed kinds it
      // raises to the spec carrying the configured weights -- the full
      // list, so lower_scheduler round-trips losslessly.
      return sched::SchedulerSpec::gps(config.class_weights);
    case DisciplineKind::kDrr:
      return sched::SchedulerSpec::drr(config.class_weights);
    case DisciplineKind::kSced:
      return sched::SchedulerSpec::sced();
  }
  throw std::invalid_argument("scheduler_spec_of: unknown discipline");
}

TandemResult run_tandem(const TandemConfig& config) {
  if (config.hops < 1 || config.n_through < 1 || config.n_cross < 0 ||
      config.slots < 1 || config.warmup_slots < 0 ||
      !(config.capacity_kb_per_slot > 0.0) || config.packet_kb < 0.0 ||
      config.backlog_stride < 0) {
    throw std::invalid_argument("run_tandem: malformed configuration");
  }

  // Independent random substreams: one for the through source, one per
  // node's cross source.
  Xoshiro256ss rng(config.seed);
  MmooAggregateSim through_src(config.source, config.n_through, rng);
  std::vector<Xoshiro256ss> cross_rngs;
  std::vector<MmooAggregateSim> cross_srcs;
  cross_rngs.reserve(static_cast<std::size_t>(config.hops));
  cross_srcs.reserve(static_cast<std::size_t>(config.hops));
  for (int h = 0; h < config.hops; ++h) {
    rng.jump();
    cross_rngs.push_back(rng);
    cross_srcs.emplace_back(config.source, config.n_cross, cross_rngs.back());
  }

  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(config.hops));
  for (int h = 0; h < config.hops; ++h) {
    nodes.emplace_back(config.capacity_kb_per_slot, make_discipline(config));
  }

  TandemResult result;
  if (config.backlog_stride > 0) {
    result.node_backlog.resize(static_cast<std::size_t>(config.hops));
  }
  std::uint64_t seq = 0;
  double served_total = 0.0;
  std::vector<Chunk> completed;
  // Chunks finishing at node h in slot t enter node h+1 at slot t+1.
  std::vector<std::vector<Chunk>> in_flight(
      static_cast<std::size_t>(config.hops));
  // Fractional-packet accumulators: index 0 = through source, 1..H = the
  // per-node cross sources.
  std::vector<double> leftover(static_cast<std::size_t>(config.hops) + 1, 0.0);

  // Emits the slot's arrivals, either as one fluid chunk or quantized
  // into whole packets of packet_kb.
  const auto emit = [&](int node, int flow, double kb, std::size_t acc,
                        std::int64_t slot) {
    if (config.packet_kb <= 0.0) {
      if (kb > 0.0) {
        nodes[node].arrive(Chunk{flow, kb, kb, slot, slot, 0.0, seq++});
      }
      return;
    }
    leftover[acc] += kb;
    while (leftover[acc] >= config.packet_kb) {
      leftover[acc] -= config.packet_kb;
      nodes[node].arrive(Chunk{flow, config.packet_kb, config.packet_kb,
                               slot, slot, 0.0, seq++});
    }
  };

  for (std::int64_t slot = 0; slot < config.slots; ++slot) {
    // Arrivals carried over from the previous slot's completions.
    for (int h = 1; h < config.hops; ++h) {
      for (Chunk& chunk : in_flight[h]) {
        chunk.arrival_slot = slot;
        chunk.size_kb = chunk.total_kb;  // full size re-transmits downstream
        nodes[h].arrive(chunk);
      }
      in_flight[h].clear();
    }
    // Fresh through arrivals at node 1.
    emit(0, 0, through_src.step(rng), 0, slot);
    // Fresh cross arrivals at every node.
    for (int h = 0; h < config.hops; ++h) {
      emit(h, 1, cross_srcs[h].step(cross_rngs[h]),
           static_cast<std::size_t>(h) + 1, slot);
    }
    // Serve one slot everywhere.
    for (int h = 0; h < config.hops; ++h) {
      completed.clear();
      served_total += nodes[h].advance(&completed);
      for (const Chunk& chunk : completed) {
        if (chunk.flow != 0) continue;  // cross traffic leaves the network
        if (h + 1 < config.hops) {
          in_flight[h + 1].push_back(chunk);
        } else if (chunk.origin_slot >= config.warmup_slots) {
          result.through_delay.add(
              static_cast<double>(slot + 1 - chunk.origin_slot));
        }
      }
    }
    if (config.backlog_stride > 0 && slot >= config.warmup_slots &&
        slot % config.backlog_stride == 0) {
      for (int h = 0; h < config.hops; ++h) {
        result.node_backlog[static_cast<std::size_t>(h)].add(
            nodes[h].backlog());
      }
    }
  }

  result.mean_utilization =
      served_total / (config.capacity_kb_per_slot *
                      static_cast<double>(config.slots) * config.hops);
  return result;
}

}  // namespace deltanc::sim
