// Simulation-side Markov-modulated on-off traffic.
//
// `MmooAggregateSim` samples the slot-by-slot arrivals of N independent
// copies of a two-state MMOO chain (the paper's Section-V workload)
// WITHOUT stepping N chains individually: conditioned on k chains being
// ON, the next slot's ON-count is Binomial(k, p22) + Binomial(N-k, p12).
// This makes a 300-flow aggregate as cheap as a single chain and is an
// exact sampling of the aggregate process.
#pragma once

#include "sim/rng.h"
#include "traffic/mmoo.h"

namespace deltanc::sim {

/// Exact sampler for the superposition of `n` i.i.d. MMOO sources.
class MmooAggregateSim {
 public:
  /// Initializes the ON-count from the stationary distribution
  /// (Binomial(n, pi_on)).
  /// @throws std::invalid_argument unless n >= 0.
  MmooAggregateSim(const traffic::MmooSource& model, int n,
                   Xoshiro256ss& rng);

  /// Advances one slot and returns the kilobits emitted in it
  /// (on_count * P).  The returned arrivals belong to the *new* slot.
  double step(Xoshiro256ss& rng);

  /// Chains currently in the ON state.
  [[nodiscard]] int on_count() const noexcept { return on_; }
  [[nodiscard]] int flows() const noexcept { return n_; }
  [[nodiscard]] const traffic::MmooSource& model() const noexcept {
    return model_;
  }

 private:
  traffic::MmooSource model_;
  int n_;
  int on_;
};

}  // namespace deltanc::sim
