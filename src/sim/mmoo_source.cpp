#include "sim/mmoo_source.h"

#include <random>
#include <stdexcept>

namespace deltanc::sim {

namespace {

int binomial(int n, double p, Xoshiro256ss& rng) {
  if (n <= 0) return 0;
  std::binomial_distribution<int> dist(n, p);
  return dist(rng);
}

}  // namespace

MmooAggregateSim::MmooAggregateSim(const traffic::MmooSource& model, int n,
                                   Xoshiro256ss& rng)
    : model_(model), n_(n), on_(0) {
  if (n < 0) {
    throw std::invalid_argument("MmooAggregateSim: n must be >= 0");
  }
  on_ = binomial(n_, model_.stationary_on(), rng);
}

double MmooAggregateSim::step(Xoshiro256ss& rng) {
  const int stay_on = binomial(on_, model_.p22(), rng);
  const int switch_on = binomial(n_ - on_, model_.p12(), rng);
  on_ = stay_on + switch_on;
  return static_cast<double>(on_) * model_.peak_kb();
}

}  // namespace deltanc::sim
