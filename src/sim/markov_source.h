// Exact aggregate sampler for N i.i.d. copies of a general finite-state
// Markov-modulated source (traffic::MarkovSource): instead of stepping N
// chains, the per-state occupancy counts evolve by multinomial sampling
// -- conditioned on c_i chains in state i, their destinations are
// Multinomial(c_i, P[i][.]).  Cost per slot is O(S^2) regardless of N.
#pragma once

#include <vector>

#include "sim/rng.h"
#include "traffic/markov.h"

namespace deltanc::sim {

class MarkovAggregateSim {
 public:
  /// Initializes the occupancy from the stationary distribution.
  /// @throws std::invalid_argument unless n >= 0.
  MarkovAggregateSim(const traffic::MarkovSource& model, int n,
                     Xoshiro256ss& rng);

  /// Advances one slot and returns the kilobits emitted in the new slot:
  /// sum_i count_i * r_i.
  double step(Xoshiro256ss& rng);

  [[nodiscard]] const std::vector<int>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] int flows() const noexcept { return n_; }

 private:
  traffic::MarkovSource model_;
  int n_;
  std::vector<int> counts_;
};

}  // namespace deltanc::sim
