// The Fig.-1 tandem at packet granularity: MMOO aggregates are quantized
// into fixed-size packets at every slot boundary and travel through H
// non-preemptive servers.  Complements the slotted fluid simulator
// (src/sim) -- here a large packet in service genuinely blocks later
// higher-precedence packets, so the cost of the paper's fluid assumption
// can be measured directly.
#pragma once

#include <cstdint>

#include "sched/scheduler_spec.h"
#include "sim/stats.h"
#include "traffic/mmoo.h"

namespace deltanc::evsim {

enum class PolicyKind {
  kFifo,
  kSpThroughLow,
  kSpThroughHigh,
  kEdf,
  kScfq,  ///< packetized GPS (class_weights as SCFQ weights)
  kDrr,   ///< deficit round robin (class_weights as quanta, kb)
  kSced,  ///< deadline curves, rates split by the offered load
};

struct EvNetworkConfig {
  double capacity_kb_per_ms = 100.0;
  int hops = 2;
  traffic::MmooSource source = traffic::MmooSource::paper_source();
  int n_through = 100;
  int n_cross = 100;
  double packet_kb = 1.5;  ///< quantization of the per-slot emissions
  PolicyKind policy = PolicyKind::kFifo;
  double edf_through_deadline_ms = 10.0;
  double edf_cross_deadline_ms = 100.0;
  /// SCFQ/GPS weights phi_i / DRR quanta Q_i (kb), class 0 = through.
  /// The two-class simulation collapses the cross classes onto
  /// (through(), cross_total()); the full list is kept so
  /// scheduler_spec_of() raises losslessly.
  sched::ClassWeights class_weights{};
  std::int64_t slots = 100000;
  std::int64_t warmup_slots = 1000;
  std::uint64_t seed = 1;
};

struct EvNetworkResult {
  sim::DelayRecorder through_delay_ms;  ///< per-packet end-to-end delay
  double mean_utilization = 0.0;
};

/// Runs the event-driven tandem.  @throws std::invalid_argument on
/// malformed configuration.
[[nodiscard]] EvNetworkResult run_event_network(const EvNetworkConfig& cfg);

/// Lowering adapter from the analytic scheduler identity: sets
/// `cfg.policy` (and the EDF deadline fields where applicable) to
/// simulate `spec`.  Mirrors sim::lower_scheduler: kEdf deadlines
/// resolve as factor * edf_unit (ms), a finite non-zero fixed-Delta spec
/// lowers to per-class EDF deadlines differing by exactly the offset,
/// and Delta = 0 / +inf / -inf lower to FIFO / SP-low / SP-high.  The
/// curve-backed kinds lower to their packetized counterparts: GPS to
/// SCFQ, DRR to the deficit-round-robin policy (weights/quanta into
/// class_weights), and SCED to the deadline-curve policy (parameterless;
/// rates split by the configured flow counts).  Every registered
/// scheduler name is accepted.
/// @throws std::invalid_argument for kEdf without a positive finite
/// edf_unit.
void lower_scheduler(const sched::SchedulerSpec& spec, double edf_unit,
                     EvNetworkConfig& cfg);

/// The analytic identity of `cfg`'s policy (inverse adapter).  EDF
/// raises to a fixed-Delta spec carrying the deadline difference.  SCFQ
/// approximates GPS and raises to the curve-backed SchedulerSpec::gps
/// with the full configured class_weights; DRR and SCED raise to their
/// own curve-backed specs (see sched/service_curve_provider.h).
[[nodiscard]] sched::SchedulerSpec scheduler_spec_of(
    const EvNetworkConfig& cfg);

}  // namespace deltanc::evsim
