// Non-preemptive packet scheduling policies for the event-driven
// simulator.  Unlike the slotted fluid simulator (src/sim), packets here
// are indivisible: once transmission starts it runs to completion, which
// exposes the blocking effects the paper's fluid model deliberately
// ignores ("we ignore that packet transmissions cannot be interrupted").
//
// Policies:
//   FIFO  -- global arrival order;
//   SP    -- strict priority, non-preemptive (a packet in service blocks
//            higher priorities for up to L/C -- priority inversion);
//   EDF   -- earliest deadline (deadline = node arrival + d*_flow);
//   SCFQ  -- self-clocked fair queueing (Golestani), the standard
//            packetized approximation of GPS via virtual finish tags;
//   DRR   -- deficit round robin (Shreedhar & Varghese): per-class
//            quanta and deficit counters, one whole packet per grant;
//   SCED  -- deadline-curve scheduling (arXiv:1804.08040): a per-class
//            virtual server of rate R_f stamps each packet's deadline,
//            and the earliest deadline transmits next.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace deltanc::evsim {

/// One indivisible packet.
struct Packet {
  int flow;                 ///< flow class
  double size_kb;           ///< transmission size
  double node_arrival;      ///< arrival time at the current node (ms)
  double network_arrival;   ///< arrival into the network (ms)
  double tag;               ///< policy metadata (EDF deadline / SCFQ tag)
  std::uint64_t seq;        ///< global arrival order tie-breaker
};

/// Packet selection policy (the queue of one server).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Admits a packet (stamping `tag` as the policy requires).
  virtual void enqueue(Packet packet) = 0;
  /// Removes and returns the next packet to transmit; nullopt when empty.
  virtual std::optional<Packet> dequeue() = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual double backlog_kb() const = 0;
};

/// FIFO over all classes.
[[nodiscard]] std::unique_ptr<Policy> make_fifo_policy();

/// Strict priority; `priority[f]` with larger = served first.
[[nodiscard]] std::unique_ptr<Policy> make_sp_policy(
    std::vector<int> priority);

/// EDF with per-class relative deadlines (ms).
[[nodiscard]] std::unique_ptr<Policy> make_edf_policy(
    std::vector<double> deadline);

/// Self-clocked fair queueing with per-class weights.
[[nodiscard]] std::unique_ptr<Policy> make_scfq_policy(
    std::vector<double> weights);

/// Deficit round robin with per-class quanta (kb).  dequeue() walks the
/// round-robin order, charging each backlogged class's quantum once per
/// visit, until some class's deficit covers its head packet; quanta
/// smaller than a packet simply take several rounds to accumulate.  The
/// deficit of a class that drains empty is forfeited.
[[nodiscard]] std::unique_ptr<Policy> make_drr_policy(
    std::vector<double> quanta);

/// SCED with rate service curves: flow f's packets get the deadline
/// max(F_f, node_arrival) + size / rate_f (F_f = the class's virtual
/// finish time, rates in kb/ms) and transmit earliest-deadline-first.
/// A zero rate is allowed only for classes that never receive traffic
/// (enqueue throws otherwise).
[[nodiscard]] std::unique_ptr<Policy> make_sced_policy(
    std::vector<double> rates);

}  // namespace deltanc::evsim
