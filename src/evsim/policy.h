// Non-preemptive packet scheduling policies for the event-driven
// simulator.  Unlike the slotted fluid simulator (src/sim), packets here
// are indivisible: once transmission starts it runs to completion, which
// exposes the blocking effects the paper's fluid model deliberately
// ignores ("we ignore that packet transmissions cannot be interrupted").
//
// Policies:
//   FIFO  -- global arrival order;
//   SP    -- strict priority, non-preemptive (a packet in service blocks
//            higher priorities for up to L/C -- priority inversion);
//   EDF   -- earliest deadline (deadline = node arrival + d*_flow);
//   SCFQ  -- self-clocked fair queueing (Golestani), the standard
//            packetized approximation of GPS via virtual finish tags.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace deltanc::evsim {

/// One indivisible packet.
struct Packet {
  int flow;                 ///< flow class
  double size_kb;           ///< transmission size
  double node_arrival;      ///< arrival time at the current node (ms)
  double network_arrival;   ///< arrival into the network (ms)
  double tag;               ///< policy metadata (EDF deadline / SCFQ tag)
  std::uint64_t seq;        ///< global arrival order tie-breaker
};

/// Packet selection policy (the queue of one server).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Admits a packet (stamping `tag` as the policy requires).
  virtual void enqueue(Packet packet) = 0;
  /// Removes and returns the next packet to transmit; nullopt when empty.
  virtual std::optional<Packet> dequeue() = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual double backlog_kb() const = 0;
};

/// FIFO over all classes.
[[nodiscard]] std::unique_ptr<Policy> make_fifo_policy();

/// Strict priority; `priority[f]` with larger = served first.
[[nodiscard]] std::unique_ptr<Policy> make_sp_policy(
    std::vector<int> priority);

/// EDF with per-class relative deadlines (ms).
[[nodiscard]] std::unique_ptr<Policy> make_edf_policy(
    std::vector<double> deadline);

/// Self-clocked fair queueing with per-class weights.
[[nodiscard]] std::unique_ptr<Policy> make_scfq_policy(
    std::vector<double> weights);

}  // namespace deltanc::evsim
