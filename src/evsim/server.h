// A non-preemptive work-conserving server: transmits one packet at a time
// at a fixed rate; when a transmission finishes, the policy picks the
// next packet.  Drives the event-driven tandem of evsim/network.h and is
// directly usable in tests for crafted scenarios (priority inversion,
// fairness, ...).
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "evsim/policy.h"

namespace deltanc::evsim {

/// A completed transmission.
struct Departure {
  Packet packet;
  double time;  ///< transmission end time (ms)
};

class Server {
 public:
  /// @throws std::invalid_argument unless rate > 0 and policy non-null.
  Server(double rate_kb_per_ms, std::unique_ptr<Policy> policy);

  /// Packet arrival at `time`.  Times passed to the server must be
  /// non-decreasing across calls (checked).  If the server is idle the
  /// packet enters service immediately.
  void arrive(Packet packet, double time);

  /// Time at which the in-service packet completes; +infinity when idle.
  [[nodiscard]] double next_completion() const noexcept;

  /// Completes the in-service packet (requires one in service), starts
  /// the next queued packet, and returns the departure.
  /// @throws std::logic_error when idle.
  Departure complete_one();

  /// Queued + in-service data (kb).
  [[nodiscard]] double backlog_kb() const;
  [[nodiscard]] bool busy() const noexcept { return in_service_.has_value(); }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  /// Total kb fully transmitted so far.
  [[nodiscard]] double transmitted_kb() const noexcept { return done_kb_; }

 private:
  double rate_;
  std::unique_ptr<Policy> policy_;
  std::optional<Packet> in_service_;
  double completion_time_ = std::numeric_limits<double>::infinity();
  double last_event_time_ = 0.0;
  double done_kb_ = 0.0;

  void start_next(double now);
};

}  // namespace deltanc::evsim
