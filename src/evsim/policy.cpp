#include "evsim/policy.h"

#include <deque>
#include <map>
#include <queue>
#include <stdexcept>
#include <vector>

namespace deltanc::evsim {

namespace {

class FifoPolicy final : public Policy {
 public:
  void enqueue(Packet packet) override {
    backlog_ += packet.size_kb;
    queue_.push_back(packet);
  }
  std::optional<Packet> dequeue() override {
    if (queue_.empty()) return std::nullopt;
    Packet p = queue_.front();
    queue_.pop_front();
    backlog_ -= p.size_kb;
    return p;
  }
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  std::deque<Packet> queue_;
  double backlog_ = 0.0;
};

class SpPolicy final : public Policy {
 public:
  explicit SpPolicy(std::vector<int> priority)
      : priority_(std::move(priority)) {
    if (priority_.empty()) {
      throw std::invalid_argument("sp policy: need priorities");
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(priority_.size())) {
      throw std::out_of_range("sp policy: unknown flow");
    }
    backlog_ += packet.size_kb;
    levels_[priority_[packet.flow]].push_back(packet);
  }
  std::optional<Packet> dequeue() override {
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
      if (!it->second.empty()) {
        Packet p = it->second.front();
        it->second.pop_front();
        backlog_ -= p.size_kb;
        return p;
      }
    }
    return std::nullopt;
  }
  [[nodiscard]] bool empty() const override {
    for (const auto& [prio, queue] : levels_) {
      if (!queue.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  std::vector<int> priority_;
  std::map<int, std::deque<Packet>> levels_;
  double backlog_ = 0.0;
};

class EdfPolicy final : public Policy {
 public:
  explicit EdfPolicy(std::vector<double> deadline)
      : deadline_(std::move(deadline)) {
    if (deadline_.empty()) {
      throw std::invalid_argument("edf policy: need deadlines");
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(deadline_.size())) {
      throw std::out_of_range("edf policy: unknown flow");
    }
    packet.tag = packet.node_arrival + deadline_[packet.flow];
    backlog_ += packet.size_kb;
    heap_.push(packet);
  }
  std::optional<Packet> dequeue() override {
    if (heap_.empty()) return std::nullopt;
    Packet p = heap_.top();
    heap_.pop();
    backlog_ -= p.size_kb;
    return p;
  }
  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.seq > b.seq;
    }
  };
  std::vector<double> deadline_;
  std::priority_queue<Packet, std::vector<Packet>, Later> heap_;
  double backlog_ = 0.0;
};

/// SCFQ: virtual time = the finish tag of the most recently dequeued
/// packet; a packet of flow i gets tag max(F_i, v) + L / w_i.
class ScfqPolicy final : public Policy {
 public:
  explicit ScfqPolicy(std::vector<double> weights)
      : weights_(std::move(weights)), finish_(weights_.size(), 0.0) {
    if (weights_.empty()) {
      throw std::invalid_argument("scfq policy: need weights");
    }
    for (double w : weights_) {
      if (!(w > 0.0)) {
        throw std::invalid_argument("scfq policy: weights must be > 0");
      }
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(weights_.size())) {
      throw std::out_of_range("scfq policy: unknown flow");
    }
    const auto f = static_cast<std::size_t>(packet.flow);
    finish_[f] = std::max(finish_[f], virtual_time_) +
                 packet.size_kb / weights_[f];
    packet.tag = finish_[f];
    backlog_ += packet.size_kb;
    heap_.push(packet);
  }
  std::optional<Packet> dequeue() override {
    if (heap_.empty()) return std::nullopt;
    Packet p = heap_.top();
    heap_.pop();
    backlog_ -= p.size_kb;
    virtual_time_ = p.tag;
    return p;
  }
  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.seq > b.seq;
    }
  };
  std::vector<double> weights_;
  std::vector<double> finish_;
  double virtual_time_ = 0.0;
  std::priority_queue<Packet, std::vector<Packet>, Later> heap_;
  double backlog_ = 0.0;
};

}  // namespace

std::unique_ptr<Policy> make_fifo_policy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<Policy> make_sp_policy(std::vector<int> priority) {
  return std::make_unique<SpPolicy>(std::move(priority));
}

std::unique_ptr<Policy> make_edf_policy(std::vector<double> deadline) {
  return std::make_unique<EdfPolicy>(std::move(deadline));
}

std::unique_ptr<Policy> make_scfq_policy(std::vector<double> weights) {
  return std::make_unique<ScfqPolicy>(std::move(weights));
}

}  // namespace deltanc::evsim
