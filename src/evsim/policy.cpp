#include "evsim/policy.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <stdexcept>
#include <vector>

namespace deltanc::evsim {

namespace {

class FifoPolicy final : public Policy {
 public:
  void enqueue(Packet packet) override {
    backlog_ += packet.size_kb;
    queue_.push_back(packet);
  }
  std::optional<Packet> dequeue() override {
    if (queue_.empty()) return std::nullopt;
    Packet p = queue_.front();
    queue_.pop_front();
    backlog_ -= p.size_kb;
    return p;
  }
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  std::deque<Packet> queue_;
  double backlog_ = 0.0;
};

class SpPolicy final : public Policy {
 public:
  explicit SpPolicy(std::vector<int> priority)
      : priority_(std::move(priority)) {
    if (priority_.empty()) {
      throw std::invalid_argument("sp policy: need priorities");
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(priority_.size())) {
      throw std::out_of_range("sp policy: unknown flow");
    }
    backlog_ += packet.size_kb;
    levels_[priority_[packet.flow]].push_back(packet);
  }
  std::optional<Packet> dequeue() override {
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
      if (!it->second.empty()) {
        Packet p = it->second.front();
        it->second.pop_front();
        backlog_ -= p.size_kb;
        return p;
      }
    }
    return std::nullopt;
  }
  [[nodiscard]] bool empty() const override {
    for (const auto& [prio, queue] : levels_) {
      if (!queue.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  std::vector<int> priority_;
  std::map<int, std::deque<Packet>> levels_;
  double backlog_ = 0.0;
};

class EdfPolicy final : public Policy {
 public:
  explicit EdfPolicy(std::vector<double> deadline)
      : deadline_(std::move(deadline)) {
    if (deadline_.empty()) {
      throw std::invalid_argument("edf policy: need deadlines");
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(deadline_.size())) {
      throw std::out_of_range("edf policy: unknown flow");
    }
    packet.tag = packet.node_arrival + deadline_[packet.flow];
    backlog_ += packet.size_kb;
    heap_.push(packet);
  }
  std::optional<Packet> dequeue() override {
    if (heap_.empty()) return std::nullopt;
    Packet p = heap_.top();
    heap_.pop();
    backlog_ -= p.size_kb;
    return p;
  }
  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.seq > b.seq;
    }
  };
  std::vector<double> deadline_;
  std::priority_queue<Packet, std::vector<Packet>, Later> heap_;
  double backlog_ = 0.0;
};

/// SCFQ: virtual time = the finish tag of the most recently dequeued
/// packet; a packet of flow i gets tag max(F_i, v) + L / w_i.
class ScfqPolicy final : public Policy {
 public:
  explicit ScfqPolicy(std::vector<double> weights)
      : weights_(std::move(weights)), finish_(weights_.size(), 0.0) {
    if (weights_.empty()) {
      throw std::invalid_argument("scfq policy: need weights");
    }
    for (double w : weights_) {
      if (!(w > 0.0)) {
        throw std::invalid_argument("scfq policy: weights must be > 0");
      }
    }
  }
  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(weights_.size())) {
      throw std::out_of_range("scfq policy: unknown flow");
    }
    const auto f = static_cast<std::size_t>(packet.flow);
    finish_[f] = std::max(finish_[f], virtual_time_) +
                 packet.size_kb / weights_[f];
    packet.tag = finish_[f];
    backlog_ += packet.size_kb;
    heap_.push(packet);
  }
  std::optional<Packet> dequeue() override {
    if (heap_.empty()) return std::nullopt;
    Packet p = heap_.top();
    heap_.pop();
    backlog_ -= p.size_kb;
    virtual_time_ = p.tag;
    return p;
  }
  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.seq > b.seq;
    }
  };
  std::vector<double> weights_;
  std::vector<double> finish_;
  double virtual_time_ = 0.0;
  std::priority_queue<Packet, std::vector<Packet>, Later> heap_;
  double backlog_ = 0.0;
};

/// Deficit round robin, packetized: the classic Shreedhar-Varghese
/// algorithm.  A grant is one whole packet; the deficit carries across
/// rounds while the class stays backlogged.
class DrrPolicy final : public Policy {
 public:
  explicit DrrPolicy(std::vector<double> quanta)
      : quanta_(std::move(quanta)),
        queues_(quanta_.size()),
        deficit_(quanta_.size(), 0.0),
        charged_(quanta_.size(), false) {
    if (quanta_.empty()) {
      throw std::invalid_argument("drr policy: need quanta");
    }
    for (double q : quanta_) {
      if (!(q > 0.0)) {
        throw std::invalid_argument("drr policy: quanta must be > 0");
      }
    }
  }

  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(queues_.size())) {
      throw std::out_of_range("drr policy: unknown flow");
    }
    backlog_ += packet.size_kb;
    queues_[static_cast<std::size_t>(packet.flow)].push_back(packet);
  }

  std::optional<Packet> dequeue() override {
    if (empty()) return std::nullopt;
    // Terminates: some class is backlogged, and every full lap of the
    // cursor grows each backlogged class's deficit by its quantum, so
    // eventually a head packet fits.
    for (;;) {
      auto& queue = queues_[cursor_];
      if (queue.empty()) {
        deficit_[cursor_] = 0.0;
        charged_[cursor_] = false;
        advance();
        continue;
      }
      if (!charged_[cursor_]) {
        deficit_[cursor_] += quanta_[cursor_];
        charged_[cursor_] = true;
      }
      if (queue.front().size_kb <= deficit_[cursor_]) {
        Packet p = queue.front();
        queue.pop_front();
        deficit_[cursor_] -= p.size_kb;
        backlog_ -= p.size_kb;
        if (queue.empty()) {
          deficit_[cursor_] = 0.0;  // forfeited on emptying
          charged_[cursor_] = false;
          advance();
        }
        return p;
      }
      charged_[cursor_] = false;  // head does not fit; visit over
      advance();
    }
  }

  [[nodiscard]] bool empty() const override {
    for (const auto& queue : queues_) {
      if (!queue.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  void advance() noexcept { cursor_ = (cursor_ + 1) % queues_.size(); }

  std::vector<double> quanta_;
  std::vector<std::deque<Packet>> queues_;
  std::vector<double> deficit_;
  std::vector<bool> charged_;
  std::size_t cursor_ = 0;
  double backlog_ = 0.0;
};

/// SCED: per-class virtual server of rate rate_[f]; a packet of flow f
/// gets tag max(F_f, arrival) + L / rate_f and the earliest tag wins.
class ScedPolicy final : public Policy {
 public:
  explicit ScedPolicy(std::vector<double> rates)
      : rates_(std::move(rates)), finish_(rates_.size(), 0.0) {
    if (rates_.empty()) {
      throw std::invalid_argument("sced policy: need rates");
    }
    for (double r : rates_) {
      if (!(r >= 0.0)) {
        throw std::invalid_argument("sced policy: rates must be >= 0");
      }
    }
  }

  void enqueue(Packet packet) override {
    if (packet.flow < 0 ||
        packet.flow >= static_cast<int>(rates_.size())) {
      throw std::out_of_range("sced policy: unknown flow");
    }
    const auto f = static_cast<std::size_t>(packet.flow);
    if (!(rates_[f] > 0.0)) {
      throw std::invalid_argument(
          "sced policy: arrival on a class with no guaranteed rate");
    }
    finish_[f] = std::max(finish_[f], packet.node_arrival) +
                 packet.size_kb / rates_[f];
    packet.tag = finish_[f];
    backlog_ += packet.size_kb;
    heap_.push(packet);
  }
  std::optional<Packet> dequeue() override {
    if (heap_.empty()) return std::nullopt;
    Packet p = heap_.top();
    heap_.pop();
    backlog_ -= p.size_kb;
    return p;
  }
  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] double backlog_kb() const override { return backlog_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.seq > b.seq;
    }
  };
  std::vector<double> rates_;
  std::vector<double> finish_;
  std::priority_queue<Packet, std::vector<Packet>, Later> heap_;
  double backlog_ = 0.0;
};

}  // namespace

std::unique_ptr<Policy> make_fifo_policy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<Policy> make_sp_policy(std::vector<int> priority) {
  return std::make_unique<SpPolicy>(std::move(priority));
}

std::unique_ptr<Policy> make_edf_policy(std::vector<double> deadline) {
  return std::make_unique<EdfPolicy>(std::move(deadline));
}

std::unique_ptr<Policy> make_scfq_policy(std::vector<double> weights) {
  return std::make_unique<ScfqPolicy>(std::move(weights));
}

std::unique_ptr<Policy> make_drr_policy(std::vector<double> quanta) {
  return std::make_unique<DrrPolicy>(std::move(quanta));
}

std::unique_ptr<Policy> make_sced_policy(std::vector<double> rates) {
  return std::make_unique<ScedPolicy>(std::move(rates));
}

}  // namespace deltanc::evsim
