#include "evsim/server.h"

#include <stdexcept>

namespace deltanc::evsim {

Server::Server(double rate_kb_per_ms, std::unique_ptr<Policy> policy)
    : rate_(rate_kb_per_ms), policy_(std::move(policy)) {
  if (!(rate_ > 0.0)) {
    throw std::invalid_argument("Server: rate must be > 0");
  }
  if (policy_ == nullptr) {
    throw std::invalid_argument("Server: policy must not be null");
  }
}

void Server::arrive(Packet packet, double time) {
  if (time < last_event_time_ - 1e-9) {
    throw std::logic_error("Server::arrive: time went backwards");
  }
  last_event_time_ = time;
  packet.node_arrival = time;
  policy_->enqueue(packet);
  if (!in_service_.has_value()) {
    start_next(time);
  }
}

double Server::next_completion() const noexcept { return completion_time_; }

Departure Server::complete_one() {
  if (!in_service_.has_value()) {
    throw std::logic_error("Server::complete_one: server is idle");
  }
  Departure dep{*in_service_, completion_time_};
  done_kb_ += dep.packet.size_kb;
  last_event_time_ = completion_time_;
  in_service_.reset();
  completion_time_ = std::numeric_limits<double>::infinity();
  start_next(dep.time);
  return dep;
}

double Server::backlog_kb() const {
  return policy_->backlog_kb() +
         (in_service_.has_value() ? in_service_->size_kb : 0.0);
}

void Server::start_next(double now) {
  std::optional<Packet> next = policy_->dequeue();
  if (!next.has_value()) return;
  completion_time_ = now + next->size_kb / rate_;
  in_service_ = std::move(next);
}

}  // namespace deltanc::evsim
