#include "evsim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "evsim/server.h"
#include "sim/mmoo_source.h"
#include "sim/rng.h"

namespace deltanc::evsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::unique_ptr<Policy> make_policy(const EvNetworkConfig& c) {
  switch (c.policy) {
    case PolicyKind::kFifo:
      return make_fifo_policy();
    case PolicyKind::kSpThroughLow:
      return make_sp_policy({0, 1});
    case PolicyKind::kSpThroughHigh:
      return make_sp_policy({1, 0});
    case PolicyKind::kEdf:
      return make_edf_policy(
          {c.edf_through_deadline_ms, c.edf_cross_deadline_ms});
    case PolicyKind::kScfq:
      return make_scfq_policy({c.class_weights.through(),
                               c.class_weights.cross_total()});
    case PolicyKind::kDrr:
      // The DRR guarantee depends only on Q_0 and the sum, so the cross
      // quanta collapse onto their sum (mirrors sim::make_discipline).
      return make_drr_policy({c.class_weights.through(),
                              c.class_weights.cross_total()});
    case PolicyKind::kSced: {
      // Load-proportional rate split from the configured flow counts,
      // the same rule sched::ScedProvider applies analytically.
      const double total = static_cast<double>(c.n_through + c.n_cross);
      return make_sced_policy({c.capacity_kb_per_ms * c.n_through / total,
                               c.capacity_kb_per_ms * c.n_cross / total});
    }
  }
  throw std::invalid_argument("run_event_network: unknown policy");
}

}  // namespace

void lower_scheduler(const sched::SchedulerSpec& spec, double edf_unit,
                     EvNetworkConfig& cfg) {
  switch (spec.kind()) {
    case sched::SchedulerKind::kFifo:
      cfg.policy = PolicyKind::kFifo;
      return;
    case sched::SchedulerKind::kBmux:
      cfg.policy = PolicyKind::kSpThroughLow;
      return;
    case sched::SchedulerKind::kSpHigh:
      cfg.policy = PolicyKind::kSpThroughHigh;
      return;
    case sched::SchedulerKind::kEdf:
      if (!(edf_unit > 0.0) || !std::isfinite(edf_unit)) {
        throw std::invalid_argument(
            "lower_scheduler: EDF deadlines need a positive finite "
            "edf_unit (= d_e2e / H)");
      }
      cfg.policy = PolicyKind::kEdf;
      cfg.edf_through_deadline_ms = spec.edf_factors().own_factor * edf_unit;
      cfg.edf_cross_deadline_ms = spec.edf_factors().cross_factor * edf_unit;
      return;
    case sched::SchedulerKind::kDelta: {
      const double d = spec.delta();
      if (d == 0.0) {
        cfg.policy = PolicyKind::kFifo;
      } else if (d == kInf) {
        cfg.policy = PolicyKind::kSpThroughLow;
      } else if (d == -kInf) {
        cfg.policy = PolicyKind::kSpThroughHigh;
      } else {
        cfg.policy = PolicyKind::kEdf;
        cfg.edf_through_deadline_ms = d > 0.0 ? d : 0.0;
        cfg.edf_cross_deadline_ms = d > 0.0 ? 0.0 : -d;
      }
      return;
    }
    case sched::SchedulerKind::kGps:
      // SCFQ is the packetized approximation of GPS this simulator has.
      // The full weight list is kept; make_policy collapses the cross
      // classes onto one weight for the two-class simulation.
      cfg.policy = PolicyKind::kScfq;
      cfg.class_weights = spec.weights();
      return;
    case sched::SchedulerKind::kDrr:
      cfg.policy = PolicyKind::kDrr;
      cfg.class_weights = spec.weights();
      return;
    case sched::SchedulerKind::kSced:
      // Parameterless: the policy derives its load-proportional rates
      // from the configured flow counts and capacity.
      cfg.policy = PolicyKind::kSced;
      return;
  }
  throw std::invalid_argument("lower_scheduler: unknown scheduler kind");
}

sched::SchedulerSpec scheduler_spec_of(const EvNetworkConfig& cfg) {
  switch (cfg.policy) {
    case PolicyKind::kFifo:
      return sched::SchedulerSpec::fifo();
    case PolicyKind::kSpThroughLow:
      return sched::SchedulerSpec::bmux();
    case PolicyKind::kSpThroughHigh:
      return sched::SchedulerSpec::sp_high();
    case PolicyKind::kEdf:
      return sched::SchedulerSpec::fixed_delta(cfg.edf_through_deadline_ms -
                                               cfg.edf_cross_deadline_ms);
    case PolicyKind::kScfq:
      // SCFQ approximates GPS; it raises to the curve-backed GPS spec
      // carrying the full configured weights (lossless round-trip).
      return sched::SchedulerSpec::gps(cfg.class_weights);
    case PolicyKind::kDrr:
      return sched::SchedulerSpec::drr(cfg.class_weights);
    case PolicyKind::kSced:
      return sched::SchedulerSpec::sced();
  }
  throw std::invalid_argument("scheduler_spec_of: unknown policy");
}

EvNetworkResult run_event_network(const EvNetworkConfig& cfg) {
  if (cfg.hops < 1 || cfg.n_through < 1 || cfg.n_cross < 0 ||
      cfg.slots < 1 || cfg.warmup_slots < 0 || !(cfg.packet_kb > 0.0) ||
      !(cfg.capacity_kb_per_ms > 0.0)) {
    throw std::invalid_argument("run_event_network: malformed configuration");
  }

  sim::Xoshiro256ss rng(cfg.seed);
  sim::MmooAggregateSim through_src(cfg.source, cfg.n_through, rng);
  std::vector<sim::Xoshiro256ss> cross_rngs;
  std::vector<sim::MmooAggregateSim> cross_srcs;
  cross_rngs.reserve(static_cast<std::size_t>(cfg.hops));
  cross_srcs.reserve(static_cast<std::size_t>(cfg.hops));
  for (int h = 0; h < cfg.hops; ++h) {
    rng.jump();
    cross_rngs.push_back(rng);
    cross_srcs.emplace_back(cfg.source, cfg.n_cross, cross_rngs.back());
  }

  std::vector<Server> servers;
  servers.reserve(static_cast<std::size_t>(cfg.hops));
  for (int h = 0; h < cfg.hops; ++h) {
    servers.emplace_back(cfg.capacity_kb_per_ms, make_policy(cfg));
  }

  EvNetworkResult result;
  std::uint64_t seq = 0;
  std::vector<double> leftover(static_cast<std::size_t>(cfg.hops) + 1, 0.0);

  // Drains all transmissions completing strictly before `horizon`,
  // forwarding through packets to the next hop at their completion time.
  const auto drain_until = [&](double horizon) {
    while (true) {
      int earliest = -1;
      double t_min = horizon;
      for (int h = 0; h < cfg.hops; ++h) {
        const double t = servers[h].next_completion();
        if (t < t_min) {
          t_min = t;
          earliest = h;
        }
      }
      if (earliest < 0) break;
      const Departure dep = servers[earliest].complete_one();
      if (dep.packet.flow != 0) continue;  // cross traffic exits
      if (earliest + 1 < cfg.hops) {
        servers[earliest + 1].arrive(dep.packet, dep.time);
      } else if (dep.packet.network_arrival >=
                 static_cast<double>(cfg.warmup_slots)) {
        result.through_delay_ms.add(dep.time - dep.packet.network_arrival);
      }
    }
  };

  const auto emit = [&](int node, int flow, double kb, std::size_t acc,
                        double now) {
    leftover[acc] += kb;
    while (leftover[acc] >= cfg.packet_kb) {
      leftover[acc] -= cfg.packet_kb;
      servers[node].arrive(
          Packet{flow, cfg.packet_kb, now, now, 0.0, seq++}, now);
    }
  };

  for (std::int64_t slot = 0; slot < cfg.slots; ++slot) {
    const double now = static_cast<double>(slot);
    drain_until(now);
    emit(0, 0, through_src.step(rng), 0, now);
    for (int h = 0; h < cfg.hops; ++h) {
      emit(h, 1, cross_srcs[h].step(cross_rngs[h]),
           static_cast<std::size_t>(h) + 1, now);
    }
  }
  drain_until(static_cast<double>(cfg.slots));

  double transmitted = 0.0;
  for (const Server& s : servers) transmitted += s.transmitted_kb();
  result.mean_utilization =
      transmitted / (cfg.capacity_kb_per_ms * static_cast<double>(cfg.slots) *
                     cfg.hops);
  return result;
}

}  // namespace deltanc::evsim
