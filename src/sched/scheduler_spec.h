// First-class scheduler identity.
//
// The paper's Definition 1 says a link scheduler *is* its precedence
// constants Delta_{j,k}: FIFO is Delta = 0, blind multiplexing (the
// analyzed flow treated as lowest priority) is Delta = +inf, static
// priority with the analyzed flow on the high side is Delta = -inf, and
// EDF is the deadline difference d*_0 - d*_c.  SchedulerSpec is the one
// tagged, parameterized descriptor of that identity used across every
// layer of this codebase:
//
//   solver       e2e::Scenario::scheduler (param_search / Solver facade)
//   Theorem 1    to_delta_matrix() lowers to a sched::DeltaMatrix
//   hetero path  delta_term() yields the per-node Delta(theta) term
//   sweep        SweepGrid scheduler/edf/delta axes (core/sweep.h)
//   wire + cache io/codec.{h,cpp} encode/decode + cache keys
//   CLI          --scheduler / --sweep parsing (parse_scheduler)
//   simulators   sim::lower_scheduler / evsim::lower_scheduler
//
// The name registry at the bottom of this header is the ONLY place the
// canonical scheduler name strings ("fifo", "bmux", "sp-high", "edf",
// "delta:<value>") are spelled; scripts/check.sh greps that no other
// src/ or tools/ file hard-codes them.  Policies that are not
// Delta-schedulers (GPS, SCFQ) deliberately have no SchedulerKind: they
// exist only at the simulator layer, and the reverse adapters there
// throw "not lowerable" for them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sched/delta.h"

namespace deltanc::sched {

/// EDF deadline factors: the per-class a-priori delay constraints are
/// d*_0 = own_factor * u and d*_c = cross_factor * u for a deadline unit
/// u (the solver uses u = d_e2e / H, making the deadlines self-referential
/// and the solve a fixed point).
struct EdfFactors {
  double own_factor = 1.0;     ///< through (analyzed) class, in units
  double cross_factor = 10.0;  ///< cross class, in units

  friend constexpr bool operator==(const EdfFactors&,
                                   const EdfFactors&) = default;
};

/// The registered Delta-scheduler families.
enum class SchedulerKind : std::uint8_t {
  kFifo,    ///< Delta = 0
  kBmux,    ///< blind multiplexing / SP with through low: Delta = +inf
  kSpHigh,  ///< static priority, through high: Delta = -inf
  kEdf,     ///< earliest deadline first: Delta = d*_0 - d*_c (fixed point)
  kDelta,   ///< explicit fixed Delta offset (continuous FIFO<->BMUX axis)
};

/// Tagged, parameterized scheduler descriptor.  Only the parameters of
/// the active kind are meaningful, but all are carried (and compared, and
/// serialized) so that switching kinds back and forth is lossless -- e.g.
/// a sweep's scheduler axis can toggle kEdf <-> kFifo without forgetting
/// the EDF factors configured on the base scenario.
class SchedulerSpec {
 public:
  constexpr SchedulerSpec() = default;

  /// Implicit by design: this conversion is what keeps the deprecated
  /// e2e::Scheduler enum shim (an alias of SchedulerKind) source
  /// compatible -- `scenario.scheduler = e2e::Scheduler::kBmux` still
  /// compiles and constructs the equivalent spec.
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr SchedulerSpec(SchedulerKind kind) : kind_(kind) {}

  /// Kind re-assignment keeps the stored EDF factors (see class comment)
  /// but resets the fixed-Delta value: a bare kind never means "whatever
  /// Delta was left behind".
  constexpr SchedulerSpec& operator=(SchedulerKind kind) noexcept {
    kind_ = kind;
    delta_ = 0.0;
    return *this;
  }

  // ----- factories --------------------------------------------------------
  [[nodiscard]] static constexpr SchedulerSpec fifo() noexcept {
    return SchedulerSpec(SchedulerKind::kFifo);
  }
  [[nodiscard]] static constexpr SchedulerSpec bmux() noexcept {
    return SchedulerSpec(SchedulerKind::kBmux);
  }
  [[nodiscard]] static constexpr SchedulerSpec sp_high() noexcept {
    return SchedulerSpec(SchedulerKind::kSpHigh);
  }
  /// Static priority by side of the analyzed (through) class.  SP with
  /// the through class low *is* blind multiplexing (Sec. III), so
  /// sp(false) == bmux().
  [[nodiscard]] static constexpr SchedulerSpec sp(bool through_high) noexcept {
    return through_high ? sp_high() : bmux();
  }
  [[nodiscard]] static constexpr SchedulerSpec edf(
      double own_factor = 1.0, double cross_factor = 10.0) noexcept {
    SchedulerSpec s(SchedulerKind::kEdf);
    s.edf_ = EdfFactors{own_factor, cross_factor};
    return s;
  }
  [[nodiscard]] static constexpr SchedulerSpec edf(EdfFactors factors) noexcept {
    SchedulerSpec s(SchedulerKind::kEdf);
    s.edf_ = factors;
    return s;
  }
  /// Explicit Delta-scheduler with fixed offset `delta` (may be +/-inf:
  /// fixed_delta(+inf) solves identically to bmux(), fixed_delta(-inf) to
  /// sp_high(), fixed_delta(0) to fifo()).
  [[nodiscard]] static constexpr SchedulerSpec fixed_delta(
      double delta) noexcept {
    SchedulerSpec s(SchedulerKind::kDelta);
    s.delta_ = delta;
    return s;
  }

  // ----- observers --------------------------------------------------------
  [[nodiscard]] constexpr SchedulerKind kind() const noexcept { return kind_; }
  /// The fixed offset (meaningful for kDelta; 0 otherwise).
  [[nodiscard]] constexpr double delta() const noexcept { return delta_; }
  [[nodiscard]] constexpr const EdfFactors& edf_factors() const noexcept {
    return edf_;
  }
  constexpr void set_edf_factors(EdfFactors factors) noexcept {
    edf_ = factors;
  }

  /// True when the scheduler's Delta depends on the (unknown) delay bound
  /// itself and the solver must run the EDF fixed point.
  [[nodiscard]] constexpr bool needs_fixed_point() const noexcept {
    return kind_ == SchedulerKind::kEdf;
  }

  /// The scheduler's Delta(theta) term when it does not depend on the
  /// solve (every kind but kEdf); nullopt for kEdf.
  [[nodiscard]] std::optional<double> static_delta() const noexcept;

  /// The through-vs-cross Delta term, resolving EDF deadlines against the
  /// unit `edf_unit` (= d_e2e / H at the solver layer): this is the value
  /// fed to the homogeneous solver and to e2e::NodeParams::delta on a
  /// HeteroPath node.
  [[nodiscard]] double delta_term(double edf_unit) const noexcept;

  /// Lowers the spec onto the Theorem-1 layer: the DeltaMatrix over
  /// `flows` flows with `analyzed` as the through flow.  EDF deadlines
  /// are factor * edf_unit (must come out finite and non-negative).
  /// @throws std::invalid_argument on bad sizes/deadlines (DeltaMatrix).
  [[nodiscard]] DeltaMatrix to_delta_matrix(std::size_t flows,
                                            std::size_t analyzed,
                                            double edf_unit = 1.0) const;

  /// Full identity comparison (kind and all carried parameters; see the
  /// class comment for why inactive parameters participate).
  friend constexpr bool operator==(const SchedulerSpec&,
                                   const SchedulerSpec&) = default;
  /// Kind-only comparison, so `sc.scheduler == SchedulerKind::kEdf` (and
  /// the deprecated e2e::Scheduler spelling of it) keeps working.
  friend constexpr bool operator==(const SchedulerSpec& s,
                                   SchedulerKind kind) noexcept {
    return s.kind_ == kind;
  }

 private:
  SchedulerKind kind_ = SchedulerKind::kFifo;
  double delta_ = 0.0;
  EdfFactors edf_{};
};

// ----- canonical name/params registry -------------------------------------
// The single source of scheduler name strings shared by sweep axes, the
// JSON codec, cache keys, CLI parsing, and report rendering.

/// Canonical short name of a kind ("fifo", "bmux", "sp-high", "edf",
/// "delta").
[[nodiscard]] std::string_view scheduler_kind_name(SchedulerKind kind) noexcept;

/// Inverse of scheduler_kind_name; returns false on unknown names.
[[nodiscard]] bool scheduler_kind_from_name(std::string_view name,
                                            SchedulerKind& out) noexcept;

/// Canonical display/parse form of a spec: the kind name, except kDelta
/// renders as "delta:<value>" (e.g. "delta:2.5", "delta:inf").
[[nodiscard]] std::string to_string(const SchedulerSpec& spec);

/// Parses the forms produced by to_string(): a registered kind name, or
/// "delta:<value>" with a finite or infinite value.  Returns false
/// (leaving `out` untouched) on anything else.  Parsed kEdf/kDelta specs
/// carry default EDF factors; callers wanting non-default factors set
/// them afterwards.
[[nodiscard]] bool parse_scheduler(std::string_view text, SchedulerSpec& out);

/// Usage string for CLIs: "fifo | bmux | sp-high | edf | delta:<Delta>".
[[nodiscard]] std::string scheduler_usage_names();

/// Long human-readable description, for reports.
[[nodiscard]] std::string scheduler_description(const SchedulerSpec& spec);

}  // namespace deltanc::sched
