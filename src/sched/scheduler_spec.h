// First-class scheduler identity.
//
// The paper's Definition 1 says a link scheduler *is* its precedence
// constants Delta_{j,k}: FIFO is Delta = 0, blind multiplexing (the
// analyzed flow treated as lowest priority) is Delta = +inf, static
// priority with the analyzed flow on the high side is Delta = -inf, and
// EDF is the deadline difference d*_0 - d*_c.  SchedulerSpec is the one
// tagged, parameterized descriptor of that identity used across every
// layer of this codebase:
//
//   solver       e2e::Scenario::scheduler (param_search / Solver facade)
//   Theorem 1    to_delta_matrix() lowers to a sched::DeltaMatrix
//   hetero path  delta_term() yields the per-node Delta(theta) term
//   sweep        SweepGrid scheduler/edf/delta axes (core/sweep.h)
//   wire + cache io/codec.{h,cpp} encode/decode + cache keys
//   CLI          --scheduler / --sweep parsing (parse_scheduler)
//   simulators   sim::lower_scheduler / evsim::lower_scheduler
//
// Not every scheduler admits constants Delta_{j,k} -- GPS, DRR, and
// SCED condition on the backlog process, so Definition 1 does not apply
// to them.  Those kinds are *curve-backed* instead: they lower through
// sched::ServiceCurveProvider (service_curve_provider.h) to a per-flow
// leftover service curve built from published constructions (GPS:
// arXiv:1804.08034; DRR: arXiv:2503.23366; fluid SCED: arXiv:1804.08040)
// rather than through the Theorem-1 Delta path.  is_curve_backed()
// distinguishes the two lowering routes; static_delta() is nullopt and
// to_delta_matrix() throws for curve-backed kinds.
//
// The name registry at the bottom of this header is the ONLY place the
// canonical scheduler name strings ("fifo", "bmux", "sp-high", "edf",
// "delta:<value>", "gps:<w,...>", "drr:<q,...>", "sced") are spelled;
// scripts/check.sh greps that no other src/ or tools/ file hard-codes
// them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/delta.h"

namespace deltanc::sched {

/// EDF deadline factors: the per-class a-priori delay constraints are
/// d*_0 = own_factor * u and d*_c = cross_factor * u for a deadline unit
/// u (the solver uses u = d_e2e / H, making the deadlines self-referential
/// and the solve a fixed point).
struct EdfFactors {
  double own_factor = 1.0;     ///< through (analyzed) class, in units
  double cross_factor = 10.0;  ///< cross class, in units

  friend constexpr bool operator==(const EdfFactors&,
                                   const EdfFactors&) = default;
};

/// Per-class share parameters for the curve-backed kinds: GPS weights
/// phi_i, DRR quanta Q_i (kb).  Class 0 is the analyzed (through) class;
/// classes 1.. are cross classes.  Fixed capacity keeps SchedulerSpec
/// trivially copyable and constexpr-constructible (a sweep axis literal
/// of specs must still be a constant expression).
struct ClassWeights {
  static constexpr std::size_t kMaxClasses = 8;

  std::array<double, kMaxClasses> values{1.0, 1.0};  ///< unused slots stay 0
  std::size_t count = 2;

  /// Builds from an explicit list (2..kMaxClasses entries).  Lists
  /// outside that range, or non-positive / non-finite entries, yield the
  /// default equal two-class split; parse_scheduler() rejects such input
  /// before it gets here, and the factories document the clamp.
  [[nodiscard]] static constexpr ClassWeights of(
      std::initializer_list<double> list) noexcept {
    if (list.size() < 2 || list.size() > kMaxClasses) return ClassWeights{};
    ClassWeights w{};
    w.values = {};
    w.count = list.size();
    std::size_t i = 0;
    for (const double v : list) {
      // Reject <= 0, NaN, and inf (v - v is NaN for the non-finite ones).
      if (!(v > 0.0) || !(v - v == 0.0)) return ClassWeights{};
      w.values[i++] = v;
    }
    return w;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return count; }
  [[nodiscard]] constexpr double operator[](std::size_t i) const noexcept {
    return values[i];
  }
  /// Share parameter of the analyzed (through) class.
  [[nodiscard]] constexpr double through() const noexcept { return values[0]; }
  [[nodiscard]] constexpr double total() const noexcept {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += values[i];
    return sum;
  }
  /// Sum over the cross classes (everything but class 0).
  [[nodiscard]] constexpr double cross_total() const noexcept {
    return total() - through();
  }
  /// Guaranteed fraction of the link for the through class, phi_0 / sum.
  [[nodiscard]] constexpr double through_share() const noexcept {
    return through() / total();
  }

  friend constexpr bool operator==(const ClassWeights&,
                                   const ClassWeights&) = default;
};

/// The registered scheduler families.  The first five are
/// Delta-schedulers (Definition 1); the last three are curve-backed (see
/// the header comment and service_curve_provider.h).
enum class SchedulerKind : std::uint8_t {
  kFifo,    ///< Delta = 0
  kBmux,    ///< blind multiplexing / SP with through low: Delta = +inf
  kSpHigh,  ///< static priority, through high: Delta = -inf
  kEdf,     ///< earliest deadline first: Delta = d*_0 - d*_c (fixed point)
  kDelta,   ///< explicit fixed Delta offset (continuous FIFO<->BMUX axis)
  kGps,     ///< generalized processor sharing, per-class weights phi_i
  kDrr,     ///< deficit round robin (fluid), per-class quanta Q_i
  kSced,    ///< fluid SCED: capacity split proportional to class load
};

/// Tagged, parameterized scheduler descriptor.  Only the parameters of
/// the active kind are meaningful, but all are carried (and compared, and
/// serialized) so that switching kinds back and forth is lossless -- e.g.
/// a sweep's scheduler axis can toggle kEdf <-> kFifo without forgetting
/// the EDF factors configured on the base scenario.
class SchedulerSpec {
 public:
  constexpr SchedulerSpec() = default;

  /// Implicit by design: `scenario.scheduler = SchedulerKind::kBmux`
  /// compiles and constructs the equivalent spec.
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr SchedulerSpec(SchedulerKind kind) : kind_(kind) {}

  /// Kind re-assignment keeps the stored EDF factors (see class comment)
  /// but resets the fixed-Delta value: a bare kind never means "whatever
  /// Delta was left behind".
  constexpr SchedulerSpec& operator=(SchedulerKind kind) noexcept {
    kind_ = kind;
    delta_ = 0.0;
    return *this;
  }

  // ----- factories --------------------------------------------------------
  [[nodiscard]] static constexpr SchedulerSpec fifo() noexcept {
    return SchedulerSpec(SchedulerKind::kFifo);
  }
  [[nodiscard]] static constexpr SchedulerSpec bmux() noexcept {
    return SchedulerSpec(SchedulerKind::kBmux);
  }
  [[nodiscard]] static constexpr SchedulerSpec sp_high() noexcept {
    return SchedulerSpec(SchedulerKind::kSpHigh);
  }
  /// Static priority by side of the analyzed (through) class.  SP with
  /// the through class low *is* blind multiplexing (Sec. III), so
  /// sp(false) == bmux().
  [[nodiscard]] static constexpr SchedulerSpec sp(bool through_high) noexcept {
    return through_high ? sp_high() : bmux();
  }
  [[nodiscard]] static constexpr SchedulerSpec edf(
      double own_factor = 1.0, double cross_factor = 10.0) noexcept {
    SchedulerSpec s(SchedulerKind::kEdf);
    s.edf_ = EdfFactors{own_factor, cross_factor};
    return s;
  }
  [[nodiscard]] static constexpr SchedulerSpec edf(EdfFactors factors) noexcept {
    SchedulerSpec s(SchedulerKind::kEdf);
    s.edf_ = factors;
    return s;
  }
  /// Explicit Delta-scheduler with fixed offset `delta` (may be +/-inf:
  /// fixed_delta(+inf) solves identically to bmux(), fixed_delta(-inf) to
  /// sp_high(), fixed_delta(0) to fifo()).
  [[nodiscard]] static constexpr SchedulerSpec fixed_delta(
      double delta) noexcept {
    SchedulerSpec s(SchedulerKind::kDelta);
    s.delta_ = delta;
    return s;
  }
  /// GPS with per-class weights phi_i (class 0 = through).  Invalid
  /// weight lists fall back to the equal two-class split {1, 1} (see
  /// ClassWeights::of); parse_scheduler() rejects them outright.
  [[nodiscard]] static constexpr SchedulerSpec gps(
      ClassWeights weights = {}) noexcept {
    SchedulerSpec s(SchedulerKind::kGps);
    s.weights_ = weights;
    return s;
  }
  [[nodiscard]] static constexpr SchedulerSpec gps(
      double through_weight, double cross_weight) noexcept {
    return gps(ClassWeights::of({through_weight, cross_weight}));
  }
  /// DRR (fluid model) with per-class quanta Q_i in kb (class 0 =
  /// through).  Same clamping rules as gps().
  [[nodiscard]] static constexpr SchedulerSpec drr(
      ClassWeights quanta = {}) noexcept {
    SchedulerSpec s(SchedulerKind::kDrr);
    s.weights_ = quanta;
    return s;
  }
  [[nodiscard]] static constexpr SchedulerSpec drr(
      double through_quantum, double cross_quantum) noexcept {
    return drr(ClassWeights::of({through_quantum, cross_quantum}));
  }
  /// Fluid SCED: the provider splits capacity proportionally to the
  /// per-class offered load, so it carries no parameters of its own.
  [[nodiscard]] static constexpr SchedulerSpec sced() noexcept {
    return SchedulerSpec(SchedulerKind::kSced);
  }

  // ----- observers --------------------------------------------------------
  [[nodiscard]] constexpr SchedulerKind kind() const noexcept { return kind_; }
  /// The fixed offset (meaningful for kDelta; 0 otherwise).
  [[nodiscard]] constexpr double delta() const noexcept { return delta_; }
  [[nodiscard]] constexpr const EdfFactors& edf_factors() const noexcept {
    return edf_;
  }
  constexpr void set_edf_factors(EdfFactors factors) noexcept {
    edf_ = factors;
  }
  /// Class weights/quanta (meaningful for kGps/kDrr; default {1, 1}
  /// otherwise, carried and compared like the EDF factors).
  [[nodiscard]] constexpr const ClassWeights& weights() const noexcept {
    return weights_;
  }
  constexpr void set_weights(ClassWeights weights) noexcept {
    weights_ = weights;
  }

  /// True when the scheduler's Delta depends on the (unknown) delay bound
  /// itself and the solver must run the EDF fixed point.
  [[nodiscard]] constexpr bool needs_fixed_point() const noexcept {
    return kind_ == SchedulerKind::kEdf;
  }

  /// True for the kinds that are not Delta-schedulers and lower via
  /// sched::ServiceCurveProvider instead of the Theorem-1 Delta path
  /// (kGps, kDrr, kSced).  For these, static_delta() is nullopt,
  /// delta_term() is NaN, and to_delta_matrix() throws.
  [[nodiscard]] constexpr bool is_curve_backed() const noexcept {
    return kind_ == SchedulerKind::kGps || kind_ == SchedulerKind::kDrr ||
           kind_ == SchedulerKind::kSced;
  }

  /// The scheduler's Delta(theta) term when it does not depend on the
  /// solve; nullopt for kEdf (fixed point) and for the curve-backed kinds
  /// (no Delta exists at all).
  [[nodiscard]] std::optional<double> static_delta() const noexcept;

  /// The through-vs-cross Delta term, resolving EDF deadlines against the
  /// unit `edf_unit` (= d_e2e / H at the solver layer): this is the value
  /// fed to the homogeneous solver and to e2e::NodeParams::delta on a
  /// HeteroPath node.  Quiet NaN for curve-backed kinds -- callers on the
  /// Delta path must check is_curve_backed() first.
  [[nodiscard]] double delta_term(double edf_unit) const noexcept;

  /// Lowers the spec onto the Theorem-1 layer: the DeltaMatrix over
  /// `flows` flows with `analyzed` as the through flow.  EDF deadlines
  /// are factor * edf_unit (must come out finite and non-negative).
  /// @throws std::invalid_argument on bad sizes/deadlines (DeltaMatrix),
  /// and for curve-backed kinds (use make_service_curve_provider).
  [[nodiscard]] DeltaMatrix to_delta_matrix(std::size_t flows,
                                            std::size_t analyzed,
                                            double edf_unit = 1.0) const;

  /// Full identity comparison (kind and all carried parameters; see the
  /// class comment for why inactive parameters participate).
  friend constexpr bool operator==(const SchedulerSpec&,
                                   const SchedulerSpec&) = default;
  /// Kind-only comparison, so `sc.scheduler == SchedulerKind::kEdf`
  /// keeps working.
  friend constexpr bool operator==(const SchedulerSpec& s,
                                   SchedulerKind kind) noexcept {
    return s.kind_ == kind;
  }

 private:
  SchedulerKind kind_ = SchedulerKind::kFifo;
  double delta_ = 0.0;
  EdfFactors edf_{};
  ClassWeights weights_{};
};

// ----- canonical name/params registry -------------------------------------
// The single source of scheduler name strings shared by sweep axes, the
// JSON codec, cache keys, CLI parsing, and report rendering.

/// Canonical short name of a kind ("fifo", "bmux", "sp-high", "edf",
/// "delta", "gps", "drr", "sced").
[[nodiscard]] std::string_view scheduler_kind_name(SchedulerKind kind) noexcept;

/// Inverse of scheduler_kind_name; returns false on unknown names.
[[nodiscard]] bool scheduler_kind_from_name(std::string_view name,
                                            SchedulerKind& out) noexcept;

/// Canonical display/parse form of a spec: the kind name, except kDelta
/// renders as "delta:<value>" (e.g. "delta:2.5", "delta:inf") and
/// kGps/kDrr render their weight lists ("gps:1,1", "drr:2,1").
[[nodiscard]] std::string to_string(const SchedulerSpec& spec);

/// Parses the forms produced by to_string(): a registered kind name,
/// "delta:<value>" with a finite or infinite value, or
/// "gps:<w1,w2,...>" / "drr:<q1,q2,...>" with 2..ClassWeights::kMaxClasses
/// positive finite entries.  Bare "gps"/"drr" mean the equal two-class
/// split {1, 1}; bare "delta" is rejected (no default offset exists).
/// Returns false (leaving `out` untouched) on anything else.  Parsed
/// specs carry default EDF factors; callers wanting non-default factors
/// set them afterwards.
[[nodiscard]] bool parse_scheduler(std::string_view text, SchedulerSpec& out);

/// Locale-independent strict double parse (std::from_chars), the same
/// grammar the JSON layer emits: an optional '-', decimal digits with an
/// optional fraction and exponent, or the words "inf" / "-inf" / "nan".
/// Rejects everything std::strtod would silently tolerate on top of
/// that -- leading whitespace, a '+' sign, hexfloat ("0x2"), trailing
/// garbage -- and never consults the C locale's decimal point.  Returns
/// false (leaving `out` untouched) on any rejected form.
[[nodiscard]] bool parse_strict_double(std::string_view text,
                                       double& out) noexcept;

/// Parses a comma-separated list of scheduler names into specs.  Because
/// "gps:1,2" itself contains commas, tokens are joined by maximal munch:
/// at each position the longest comma-joined run of tokens that
/// parse_scheduler() accepts wins ("fifo,gps:1,2,edf" -> fifo, gps:1,2,
/// edf).  Returns false (leaving `out` untouched) if any position has no
/// parse.
[[nodiscard]] bool parse_scheduler_list(std::string_view text,
                                        std::vector<SchedulerSpec>& out);

/// Usage string for CLIs:
/// "fifo | bmux | sp-high | edf | delta:<Delta> | gps[:<w,...>] |
///  drr[:<q,...>] | sced".
[[nodiscard]] std::string scheduler_usage_names();

/// Long human-readable description, for reports.
[[nodiscard]] std::string scheduler_description(const SchedulerSpec& spec);

}  // namespace deltanc::sched
