#include "sched/schedulability.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "nc/minplus_ops.h"

namespace deltanc::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate(double capacity, const DeltaMatrix& delta, std::size_t n_env,
              std::size_t flow) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("schedulability: capacity must be > 0");
  }
  if (n_env != delta.size()) {
    throw std::invalid_argument("schedulability: one envelope per flow");
  }
  if (flow >= delta.size()) {
    throw std::invalid_argument("schedulability: flow index out of range");
  }
}

/// E_k(t + c) as a curve in t >= 0: a left shift for c >= 0, a right
/// shift for c < 0.
nc::Curve shifted(const nc::Curve& e, double c) {
  return c >= 0.0 ? e.advanced(c) : e.hshift(-c);
}

}  // namespace

double schedulability_lhs(double capacity, const DeltaMatrix& delta,
                          std::span<const nc::Curve> envelopes,
                          std::size_t flow, double d) {
  validate(capacity, delta, envelopes.size(), flow);
  if (!(d >= 0.0)) {
    throw std::invalid_argument("schedulability: d must be >= 0");
  }
  nc::Curve sum = nc::Curve::zero();
  for (std::size_t k : delta.relevant_flows(flow)) {
    sum = nc::pointwise_add(sum, shifted(envelopes[k], delta.capped(flow, k, d)));
  }
  return nc::vertical_deviation(sum, nc::Curve::rate(capacity));
}

bool meets_delay_bound(double capacity, const DeltaMatrix& delta,
                       std::span<const nc::Curve> envelopes, std::size_t flow,
                       double d) {
  const double lhs = schedulability_lhs(capacity, delta, envelopes, flow, d);
  return lhs <= capacity * d + 1e-9 * capacity;
}

double min_delay_bound(double capacity, const DeltaMatrix& delta,
                       std::span<const nc::Curve> envelopes,
                       std::size_t flow) {
  validate(capacity, delta, envelopes.size(), flow);
  // Expand an upper bracket, then bisect.  Stability check: the relevant
  // flows' long-run rates must fit into the capacity, otherwise no finite
  // delay bound exists.
  double total_rate = 0.0;
  for (std::size_t k : delta.relevant_flows(flow)) {
    if (envelopes[k].has_infinite_tail()) {
      throw std::invalid_argument("min_delay_bound: envelopes must be finite");
    }
    total_rate += envelopes[k].final_slope();
  }
  if (total_rate > capacity + 1e-12) return kInf;

  double hi = 1.0;
  int guard = 0;
  while (!meets_delay_bound(capacity, delta, envelopes, flow, hi)) {
    hi *= 2.0;
    if (++guard > 80) return kInf;
  }
  double lo = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (meets_delay_bound(capacity, delta, envelopes, flow, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace deltanc::sched
