// The deterministic schedulability condition for Delta-schedulers,
// Eq. (24) of the paper:
//
//   sup_{t>0} [ sum_{k in N_j} E_k(t + Delta_{j,k}(d)) - C t ]  <=  C d .
//
// By Theorem 2 this condition is *sufficient* for every set of envelopes
// and *necessary* when the envelopes are concave -- i.e. it exactly
// characterizes the worst-case delay.  It recovers the classical tight
// conditions for FIFO, SP, and EDF (Cruz '91, Liebeherr/Wrege/Ferrari '96).
#pragma once

#include <span>

#include "nc/curve.h"
#include "sched/delta.h"

namespace deltanc::sched {

/// The left-hand side of Eq. (24):
/// sup_{t>0} [ sum_{k in N_j} E_k(t + Delta_{j,k}(d)) - C t ].
/// Returns +infinity if the link is overloaded by the relevant flows.
[[nodiscard]] double schedulability_lhs(double capacity,
                                        const DeltaMatrix& delta,
                                        std::span<const nc::Curve> envelopes,
                                        std::size_t flow, double d);

/// True if flow `flow` meets the worst-case delay bound `d` under the
/// given Delta-scheduler (Eq. (24) holds).
[[nodiscard]] bool meets_delay_bound(double capacity, const DeltaMatrix& delta,
                                     std::span<const nc::Curve> envelopes,
                                     std::size_t flow, double d);

/// The smallest delay bound d for which Eq. (24) holds, found by
/// bisection (the condition is monotone in d whenever the aggregate rate
/// of the relevant flows is below the capacity).  Returns +infinity when
/// no finite bound exists (unstable configuration).
[[nodiscard]] double min_delay_bound(double capacity, const DeltaMatrix& delta,
                                     std::span<const nc::Curve> envelopes,
                                     std::size_t flow);

}  // namespace deltanc::sched
