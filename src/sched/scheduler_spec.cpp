#include "sched/scheduler_spec.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <vector>

namespace deltanc::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// THE scheduler name table.  Everything else (sweep axes, codec, cache
// keys, CLI, reports) goes through the functions below; scripts/check.sh
// fails if any other src/ or tools/ file spells these strings.
struct KindRow {
  SchedulerKind kind;
  std::string_view name;
  std::string_view description;
};

constexpr KindRow kKinds[] = {
    {SchedulerKind::kFifo, "fifo", "FIFO"},
    {SchedulerKind::kBmux, "bmux", "blind multiplexing (SP, through low)"},
    {SchedulerKind::kSpHigh, "sp-high", "static priority (through high)"},
    {SchedulerKind::kEdf, "edf", "EDF"},
    {SchedulerKind::kDelta, "delta", "fixed Delta offset"},
    {SchedulerKind::kGps, "gps", "generalized processor sharing"},
    {SchedulerKind::kDrr, "drr", "deficit round robin (fluid)"},
    {SchedulerKind::kSced, "sced", "fluid SCED (load-proportional)"},
};

/// "%g" of a double (enough for display and CLI round-trips; the JSON
/// codec uses its own bit-exact encoding).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// "w1,w2,..." for the weight list of a curve-backed spec.
std::string format_weights(const ClassWeights& w) {
  std::string out;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) out += ',';
    out += format_double(w[i]);
  }
  return out;
}

/// Parses "w1,w2,..." into ClassWeights; false on count or value rules
/// (2..kMaxClasses positive finite entries -- the same rules
/// ClassWeights::of clamps on).
bool parse_weights(std::string_view text, ClassWeights& out) {
  ClassWeights w{};
  w.values = {};
  w.count = 0;
  while (!text.empty()) {
    if (w.count == ClassWeights::kMaxClasses) return false;
    const std::size_t comma = text.find(',');
    const std::string_view token = text.substr(0, comma);
    double v = 0.0;
    if (!parse_strict_double(token, v)) return false;
    if (!(v > 0.0) || !std::isfinite(v)) return false;
    w.values[w.count++] = v;
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
    if (text.empty()) return false;  // trailing comma
  }
  if (w.count < 2) return false;
  out = w;
  return true;
}

}  // namespace

bool parse_strict_double(std::string_view text, double& out) noexcept {
  if (text.empty()) return false;
  double v = 0.0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  // std::chars_format::general already rejects leading whitespace and
  // '+', and stops at the 'x' of a hexfloat token; requiring the whole
  // input to be consumed turns both into hard parse failures.
  const auto [ptr, ec] = std::from_chars(first, last, v,
                                         std::chars_format::general);
  if (ec != std::errc{} || ptr != last) return false;
  out = v;
  return true;
}

std::optional<double> SchedulerSpec::static_delta() const noexcept {
  switch (kind()) {
    case SchedulerKind::kFifo:
      return 0.0;
    case SchedulerKind::kBmux:
      return kInf;
    case SchedulerKind::kSpHigh:
      return -kInf;
    case SchedulerKind::kDelta:
      return delta();
    case SchedulerKind::kEdf:
      return std::nullopt;
    case SchedulerKind::kGps:
    case SchedulerKind::kDrr:
    case SchedulerKind::kSced:
      // Curve-backed: no constants Delta_{j,k} exist (Definition 1 does
      // not apply); the solver routes these through
      // sched::make_service_curve_provider instead.
      return std::nullopt;
  }
  return std::nullopt;
}

double SchedulerSpec::delta_term(double edf_unit) const noexcept {
  if (is_curve_backed()) {
    // Documented sentinel: curve-backed kinds have no Delta term.
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (const std::optional<double> d = static_delta()) return *d;
  // EDF: Delta = d*_0 - d*_c = (own - cross) * unit.
  return (edf_factors().own_factor - edf_factors().cross_factor) * edf_unit;
}

DeltaMatrix SchedulerSpec::to_delta_matrix(std::size_t flows,
                                           std::size_t analyzed,
                                           double edf_unit) const {
  if (analyzed >= flows) {
    throw std::invalid_argument(
        "SchedulerSpec::to_delta_matrix: analyzed flow out of range");
  }
  switch (kind()) {
    case SchedulerKind::kFifo:
      return DeltaMatrix::fifo(flows);
    case SchedulerKind::kBmux:
      return DeltaMatrix::bmux(flows, analyzed);
    case SchedulerKind::kSpHigh: {
      std::vector<int> priority(flows, 0);
      priority[analyzed] = 1;
      return DeltaMatrix::static_priority(priority);
    }
    case SchedulerKind::kEdf: {
      std::vector<double> deadlines(flows,
                                    edf_factors().cross_factor * edf_unit);
      deadlines[analyzed] = edf_factors().own_factor * edf_unit;
      return DeltaMatrix::edf(deadlines);
    }
    case SchedulerKind::kDelta: {
      // +/-inf offsets coincide with the BMUX / SP-high matrices; finite
      // offsets are deadline differences (analyzed - other = delta).
      if (delta() == kInf) return DeltaMatrix::bmux(flows, analyzed);
      if (delta() == -kInf) {
        std::vector<int> priority(flows, 0);
        priority[analyzed] = 1;
        return DeltaMatrix::static_priority(priority);
      }
      std::vector<double> deadlines(flows, delta() < 0.0 ? -delta() : 0.0);
      deadlines[analyzed] = delta() > 0.0 ? delta() : 0.0;
      return DeltaMatrix::edf(deadlines);
    }
    case SchedulerKind::kGps:
    case SchedulerKind::kDrr:
    case SchedulerKind::kSced:
      throw std::invalid_argument(
          "SchedulerSpec::to_delta_matrix: '" + to_string(*this) +
          "' is curve-backed, not a Delta-scheduler; lower it via "
          "sched::make_service_curve_provider instead");
  }
  throw std::invalid_argument("SchedulerSpec::to_delta_matrix: unknown kind");
}

std::string_view scheduler_kind_name(SchedulerKind kind) noexcept {
  for (const KindRow& row : kKinds) {
    if (row.kind == kind) return row.name;
  }
  return "?";
}

bool scheduler_kind_from_name(std::string_view name,
                              SchedulerKind& out) noexcept {
  for (const KindRow& row : kKinds) {
    if (row.name == name) {
      out = row.kind;
      return true;
    }
  }
  return false;
}

std::string to_string(const SchedulerSpec& spec) {
  switch (spec.kind()) {
    case SchedulerKind::kDelta:
      return std::string(scheduler_kind_name(SchedulerKind::kDelta)) + ":" +
             format_double(spec.delta());
    case SchedulerKind::kGps:
    case SchedulerKind::kDrr:
      return std::string(scheduler_kind_name(spec.kind())) + ":" +
             format_weights(spec.weights());
    case SchedulerKind::kFifo:
    case SchedulerKind::kBmux:
    case SchedulerKind::kSpHigh:
    case SchedulerKind::kEdf:
    case SchedulerKind::kSced:
      break;
  }
  return std::string(scheduler_kind_name(spec.kind()));
}

bool parse_scheduler(std::string_view text, SchedulerSpec& out) {
  SchedulerKind kind;
  if (scheduler_kind_from_name(text, kind)) {
    // A bare kind name; "delta" without a value is not a scheduler, but
    // bare "gps"/"drr" mean the default equal two-class split.
    if (kind == SchedulerKind::kDelta) return false;
    out = SchedulerSpec(kind);
    return true;
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  if (!scheduler_kind_from_name(text.substr(0, colon), kind)) return false;
  const std::string_view args = text.substr(colon + 1);
  switch (kind) {
    case SchedulerKind::kDelta: {
      double v = 0.0;
      if (!parse_strict_double(args, v) || v != v) return false;
      out = SchedulerSpec::fixed_delta(v);
      return true;
    }
    case SchedulerKind::kGps:
    case SchedulerKind::kDrr: {
      ClassWeights w;
      if (!parse_weights(args, w)) return false;
      out = kind == SchedulerKind::kGps ? SchedulerSpec::gps(w)
                                        : SchedulerSpec::drr(w);
      return true;
    }
    case SchedulerKind::kFifo:
    case SchedulerKind::kBmux:
    case SchedulerKind::kSpHigh:
    case SchedulerKind::kEdf:
    case SchedulerKind::kSced:
      return false;  // these kinds take no ":<args>" suffix
  }
  return false;
}

bool parse_scheduler_list(std::string_view text,
                          std::vector<SchedulerSpec>& out) {
  std::vector<std::string> tokens;
  while (true) {
    const std::size_t comma = text.find(',');
    tokens.emplace_back(text.substr(0, comma));
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  std::vector<SchedulerSpec> parsed;
  std::size_t i = 0;
  while (i < tokens.size()) {
    // Maximal munch: the longest comma-joined run starting at i that
    // parses wins, so "gps:1,2" beats stopping at the invalid "gps:1".
    bool matched = false;
    for (std::size_t j = tokens.size(); j > i; --j) {
      std::string joined = tokens[i];
      for (std::size_t k = i + 1; k < j; ++k) joined += ',' + tokens[k];
      SchedulerSpec spec;
      if (parse_scheduler(joined, spec)) {
        parsed.push_back(spec);
        i = j;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  if (parsed.empty()) return false;
  out = std::move(parsed);
  return true;
}

std::string scheduler_usage_names() {
  std::string out;
  for (const KindRow& row : kKinds) {
    if (!out.empty()) out += " | ";
    out += row.name;
    if (row.kind == SchedulerKind::kDelta) out += ":<Delta>";
    if (row.kind == SchedulerKind::kGps) out += "[:<w,...>]";
    if (row.kind == SchedulerKind::kDrr) out += "[:<q,...>]";
  }
  return out;
}

std::string scheduler_description(const SchedulerSpec& spec) {
  for (const KindRow& row : kKinds) {
    if (row.kind == spec.kind()) {
      std::string out(row.description);
      if (spec.kind() == SchedulerKind::kDelta) {
        out += " (Delta = " + format_double(spec.delta()) + ")";
      }
      if (spec.kind() == SchedulerKind::kGps) {
        out += " (weights " + format_weights(spec.weights()) + ")";
      }
      if (spec.kind() == SchedulerKind::kDrr) {
        out += " (quanta " + format_weights(spec.weights()) + ")";
      }
      return out;
    }
  }
  return "?";
}

}  // namespace deltanc::sched
