#include "sched/scheduler_spec.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

namespace deltanc::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// THE scheduler name table.  Everything else (sweep axes, codec, cache
// keys, CLI, reports) goes through the functions below; scripts/check.sh
// fails if any other src/ or tools/ file spells these strings.
struct KindRow {
  SchedulerKind kind;
  std::string_view name;
  std::string_view description;
};

constexpr KindRow kKinds[] = {
    {SchedulerKind::kFifo, "fifo", "FIFO"},
    {SchedulerKind::kBmux, "bmux", "blind multiplexing (SP, through low)"},
    {SchedulerKind::kSpHigh, "sp-high", "static priority (through high)"},
    {SchedulerKind::kEdf, "edf", "EDF"},
    {SchedulerKind::kDelta, "delta", "fixed Delta offset"},
};

/// "%g" of a double (enough for display and CLI round-trips; the JSON
/// codec uses its own bit-exact encoding).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::optional<double> SchedulerSpec::static_delta() const noexcept {
  switch (kind()) {
    case SchedulerKind::kFifo:
      return 0.0;
    case SchedulerKind::kBmux:
      return kInf;
    case SchedulerKind::kSpHigh:
      return -kInf;
    case SchedulerKind::kDelta:
      return delta();
    case SchedulerKind::kEdf:
      return std::nullopt;
  }
  return std::nullopt;
}

double SchedulerSpec::delta_term(double edf_unit) const noexcept {
  if (const std::optional<double> d = static_delta()) return *d;
  // EDF: Delta = d*_0 - d*_c = (own - cross) * unit.
  return (edf_factors().own_factor - edf_factors().cross_factor) * edf_unit;
}

DeltaMatrix SchedulerSpec::to_delta_matrix(std::size_t flows,
                                           std::size_t analyzed,
                                           double edf_unit) const {
  if (analyzed >= flows) {
    throw std::invalid_argument(
        "SchedulerSpec::to_delta_matrix: analyzed flow out of range");
  }
  switch (kind()) {
    case SchedulerKind::kFifo:
      return DeltaMatrix::fifo(flows);
    case SchedulerKind::kBmux:
      return DeltaMatrix::bmux(flows, analyzed);
    case SchedulerKind::kSpHigh: {
      std::vector<int> priority(flows, 0);
      priority[analyzed] = 1;
      return DeltaMatrix::static_priority(priority);
    }
    case SchedulerKind::kEdf: {
      std::vector<double> deadlines(flows,
                                    edf_factors().cross_factor * edf_unit);
      deadlines[analyzed] = edf_factors().own_factor * edf_unit;
      return DeltaMatrix::edf(deadlines);
    }
    case SchedulerKind::kDelta: {
      // +/-inf offsets coincide with the BMUX / SP-high matrices; finite
      // offsets are deadline differences (analyzed - other = delta).
      if (delta() == kInf) return DeltaMatrix::bmux(flows, analyzed);
      if (delta() == -kInf) {
        std::vector<int> priority(flows, 0);
        priority[analyzed] = 1;
        return DeltaMatrix::static_priority(priority);
      }
      std::vector<double> deadlines(flows, delta() < 0.0 ? -delta() : 0.0);
      deadlines[analyzed] = delta() > 0.0 ? delta() : 0.0;
      return DeltaMatrix::edf(deadlines);
    }
  }
  throw std::invalid_argument("SchedulerSpec::to_delta_matrix: unknown kind");
}

std::string_view scheduler_kind_name(SchedulerKind kind) noexcept {
  for (const KindRow& row : kKinds) {
    if (row.kind == kind) return row.name;
  }
  return "?";
}

bool scheduler_kind_from_name(std::string_view name,
                              SchedulerKind& out) noexcept {
  for (const KindRow& row : kKinds) {
    if (row.name == name) {
      out = row.kind;
      return true;
    }
  }
  return false;
}

std::string to_string(const SchedulerSpec& spec) {
  if (spec.kind() == SchedulerKind::kDelta) {
    return std::string(scheduler_kind_name(SchedulerKind::kDelta)) + ":" +
           format_double(spec.delta());
  }
  return std::string(scheduler_kind_name(spec.kind()));
}

bool parse_scheduler(std::string_view text, SchedulerSpec& out) {
  SchedulerKind kind;
  if (scheduler_kind_from_name(text, kind)) {
    // A bare kind name; "delta" without a value is not a scheduler.
    if (kind == SchedulerKind::kDelta) return false;
    out = SchedulerSpec(kind);
    return true;
  }
  const std::string_view delta_name = scheduler_kind_name(SchedulerKind::kDelta);
  if (text.size() > delta_name.size() + 1 &&
      text.substr(0, delta_name.size()) == delta_name &&
      text[delta_name.size()] == ':') {
    const std::string value(text.substr(delta_name.size() + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || v != v) return false;
    out = SchedulerSpec::fixed_delta(v);
    return true;
  }
  return false;
}

std::string scheduler_usage_names() {
  std::string out;
  for (const KindRow& row : kKinds) {
    if (!out.empty()) out += " | ";
    out += row.name;
    if (row.kind == SchedulerKind::kDelta) out += ":<Delta>";
  }
  return out;
}

std::string scheduler_description(const SchedulerSpec& spec) {
  for (const KindRow& row : kKinds) {
    if (row.kind == spec.kind()) {
      std::string out(row.description);
      if (spec.kind() == SchedulerKind::kDelta) {
        out += " (Delta = " + format_double(spec.delta()) + ")";
      }
      return out;
    }
  }
  return "?";
}

}  // namespace deltanc::sched
