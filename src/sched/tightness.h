// Theorem 2 (necessity): for concave envelopes, the schedulability
// condition Eq. (24) is tight.  The proof constructs an adversarial
// ("greedy") arrival scenario in which every flow k sends exactly
// A_k(t) = E_k(t) from time 0, plus a tagged flow-j arrival at time t*.
// The tagged arrival cannot leave before all higher-or-equal-precedence
// backlog
//
//   B_j^{t*}(s) = sum_{k in N_j} E_k(t* + Delta_{j,k}(s - t*)) - C s
//
// has drained (Eq. (26)).  This module computes the delay realized by
// that scenario; `greedy_worst_case_delay` maximizes it over t*.  For
// concave envelopes it coincides with `min_delay_bound` (sufficiency +
// necessity), which the test suite verifies; for non-concave envelopes
// it can be strictly smaller (the condition is only sufficient).
#pragma once

#include <span>

#include "nc/curve.h"
#include "sched/delta.h"

namespace deltanc::sched {

/// Delay of a tagged flow-`flow` arrival at time `t_star` under the
/// greedy scenario: the smallest w >= 0 with
/// sum_{k in N_j} E_k(t* + Delta_{j,k}(w)) <= C (t* + w).
/// Returns +infinity if the backlog never drains (overload).
[[nodiscard]] double greedy_delay_at(double capacity, const DeltaMatrix& delta,
                                     std::span<const nc::Curve> envelopes,
                                     std::size_t flow, double t_star);

/// The worst-case delay realized by the greedy scenario:
/// sup_{t* >= 0} greedy_delay_at(t*).  For concave envelopes this equals
/// the minimal d satisfying Eq. (24) -- the Theorem-2 tightness result.
[[nodiscard]] double greedy_worst_case_delay(
    double capacity, const DeltaMatrix& delta,
    std::span<const nc::Curve> envelopes, std::size_t flow);

}  // namespace deltanc::sched
