// Theorem 1: leftover service curves for Delta-schedulers.
//
// For a flow j sharing a link of capacity C with cross flows whose
// arrivals satisfy (statistical or deterministic) sample-path envelopes
// G_k, the function
//
//   S_j(t; theta) = [ C t - sum_{k in N_{-j}} G_k(t - theta + Delta_{j,k}(theta)) ]_+
//                   * 1{t > theta}
//
// is a statistical service curve (Eq. (8)) with bounding function
// eps_s(sigma) = inf over splits of sum_k eps_k(sigma_k) (computed in
// closed form via Eq. (33)).  The deterministic version (Eq. (19)) uses
// deterministic envelopes E_k and is never violated.
//
// Each choice of the free parameter theta >= 0 gives a valid curve; the
// end-to-end analysis (src/e2e) optimizes over one theta per node.
#pragma once

#include <optional>
#include <span>

#include "nc/bounding_function.h"
#include "nc/curve.h"
#include "sched/delta.h"
#include "traffic/ebb.h"

namespace deltanc::sched {

/// A statistical service curve in the sense of Eq. (5).  `eps` is absent
/// when the guarantee is deterministic (no cross traffic contributes a
/// probabilistic envelope, so the curve is never violated).
struct StatServiceCurve {
  nc::Curve s;
  std::optional<nc::ExpBound> eps;
};

/// Builds the Theorem-1 statistical service curve for `flow` at a link of
/// rate `capacity` under the scheduler described by `delta`.
///
/// `envelopes[k]` is the statistical sample-path envelope of flow k;
/// the entry for `flow` itself is ignored (only cross traffic enters the
/// leftover description).
///
/// @throws std::invalid_argument if sizes disagree, capacity <= 0, or
///   theta < 0.
[[nodiscard]] StatServiceCurve theorem1_service_curve(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double theta);

/// Deterministic version, Eq. (19): same construction with deterministic
/// sample-path envelopes.  The returned curve is a (deterministic)
/// service curve in the sense of Eq. (3).
[[nodiscard]] nc::Curve deterministic_service_curve(
    double capacity, const DeltaMatrix& delta,
    std::span<const nc::Curve> envelopes, std::size_t flow, double theta);

}  // namespace deltanc::sched
