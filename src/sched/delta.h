// Delta-schedulers (Definition 1 of the paper).
//
// A Delta-scheduler is a work-conserving, locally-FIFO link scheduling
// algorithm whose precedence order is completely described by constants
// Delta_{j,k}: an arrival of flow j at time t has precedence over every
// arrival of flow k occurring after t + Delta_{j,k}.  The constants may
// be +infinity (flow k *always* has precedence over flow j, as higher
// priority traffic does) or -infinity (flow k *never* has precedence, as
// lower-priority traffic).  Locally-FIFO forces Delta_{j,j} = 0.
//
// Members of the class (Section III):
//   FIFO     Delta_{j,k} = 0
//   SP       Delta_{j,k} in {-inf, 0, +inf} by priority comparison
//   BMUX     blind multiplexing: the analyzed flow is treated as lowest
//            priority (Delta_{j,k} = +inf for all k != j)
//   EDF      Delta_{j,k} = d*_j - d*_k (per-flow deadline differences)
//
// GPS is *not* a Delta-scheduler: the time limit up to which another
// flow's arrivals take precedence depends on the random backlog process,
// so no constants Delta_{j,k} exist (see the GPS discussion in Sec. III
// and the simulator-based demonstration in tests/sim_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace deltanc::sched {

/// The precedence matrix {Delta_{j,k}} of a Delta-scheduler over a fixed
/// set of flows 0..n-1.  Entries may be +/-infinity.
class DeltaMatrix {
 public:
  /// Builds a matrix from explicit entries.  `delta[j][k]` is
  /// Delta_{j,k}.  @throws std::invalid_argument unless the matrix is
  /// square, non-empty, and has an all-zero diagonal (locally FIFO).
  explicit DeltaMatrix(std::vector<std::vector<double>> delta);

  /// FIFO over n flows: all entries zero.
  static DeltaMatrix fifo(std::size_t n);

  /// Static priority: `priority[k]` is flow k's priority level, larger
  /// value = higher priority.  Delta_{j,k} = -inf when k has lower
  /// priority than j, 0 when equal, +inf when higher.
  static DeltaMatrix static_priority(std::span<const int> priority);

  /// Blind multiplexing with respect to `low_flow`: the analyzed flow has
  /// lower priority than everything else (Delta_{low,k} = +inf for all
  /// k != low).  The other rows treat `low_flow` as never-preceding.
  static DeltaMatrix bmux(std::size_t n, std::size_t low_flow);

  /// EDF with per-flow a-priori delay constraints d*: Delta_{j,k} =
  /// deadlines[j] - deadlines[k].
  static DeltaMatrix edf(std::span<const double> deadlines);

  [[nodiscard]] std::size_t size() const noexcept { return delta_.size(); }

  /// Delta_{j,k} (may be +/-infinity).
  [[nodiscard]] double at(std::size_t j, std::size_t k) const;

  /// The capped value Delta_{j,k}(y) = min(Delta_{j,k}, y) of Eq. (7):
  /// for an arrival of flow j still in the scheduler y time units after
  /// arrival, flow-k traffic served before it arrived at most
  /// Delta_{j,k}(y) after it.
  [[nodiscard]] double capped(std::size_t j, std::size_t k, double y) const;

  /// N_j = flows k with Delta_{j,k} > -inf (those that can delay flow j;
  /// includes j itself).
  [[nodiscard]] std::vector<std::size_t> relevant_flows(std::size_t j) const;

  /// N_{-j} = N_j minus flow j itself: the cross traffic that matters.
  [[nodiscard]] std::vector<std::size_t> relevant_cross_flows(
      std::size_t j) const;

 private:
  std::vector<std::vector<double>> delta_;

  void check_index(std::size_t j, std::size_t k) const;
};

}  // namespace deltanc::sched
