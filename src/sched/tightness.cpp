#include "sched/tightness.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deltanc::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True envelope value with E(x) = 0 for x <= 0 (the curve representation
/// shows the 0+ jump at x = 0).
double env_value(const nc::Curve& e, double x) {
  return x <= 0.0 ? 0.0 : e.eval(x);
}

}  // namespace

double greedy_delay_at(double capacity, const DeltaMatrix& delta,
                       std::span<const nc::Curve> envelopes, std::size_t flow,
                       double t_star) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("greedy_delay_at: capacity must be > 0");
  }
  if (envelopes.size() != delta.size() || flow >= delta.size()) {
    throw std::invalid_argument("greedy_delay_at: size mismatch");
  }
  if (!(t_star >= 0.0)) {
    throw std::invalid_argument("greedy_delay_at: t_star must be >= 0");
  }
  const auto relevant = delta.relevant_flows(flow);
  const auto pressure = [&](double w) {
    double sum = 0.0;
    for (std::size_t k : relevant) {
      sum += env_value(envelopes[k], t_star + delta.capped(flow, k, w));
    }
    return sum - capacity * (t_star + w);
  };
  if (pressure(0.0) <= 0.0) return 0.0;
  // Bracket the draining time.  Stability: the capped deltas saturate at
  // finite w only if all Delta < inf; with Delta = +inf the pressure
  // grows with the cross rate, so rely on total rate < C for drainage.
  double hi = 1.0;
  int guard = 0;
  while (pressure(hi) > 0.0) {
    hi *= 2.0;
    if (++guard > 80) return kInf;
  }
  double lo = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (pressure(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double greedy_worst_case_delay(double capacity, const DeltaMatrix& delta,
                               std::span<const nc::Curve> envelopes,
                               std::size_t flow) {
  // The maximizing t* lies within the aggregate busy period started at 0:
  // beyond the time where sum_k E_k(t) - C t turns negative, arrivals no
  // longer queue behind each other.  Bracket that horizon first.
  const auto relevant = delta.relevant_flows(flow);
  double total_rate = 0.0;
  double horizon = 1.0;
  for (std::size_t k : relevant) {
    if (envelopes[k].has_infinite_tail()) {
      throw std::invalid_argument(
          "greedy_worst_case_delay: envelopes must be finite");
    }
    total_rate += envelopes[k].final_slope();
    horizon = std::max(horizon, envelopes[k].last_knot_x());
  }
  if (total_rate > capacity + 1e-12) return kInf;
  const auto busy_excess = [&](double t) {
    double sum = 0.0;
    for (std::size_t k : relevant) sum += env_value(envelopes[k], t);
    return sum - capacity * t;
  };
  int guard = 0;
  while (busy_excess(horizon) > 0.0 && guard++ < 80) horizon *= 2.0;
  horizon *= 1.05;

  // Coarse scan + local refinement around the best t*.
  const int kCoarse = 512;
  double best_t = 0.0;
  double best_delay = 0.0;
  for (int i = 0; i <= kCoarse; ++i) {
    const double t = horizon * static_cast<double>(i) / kCoarse;
    const double w = greedy_delay_at(capacity, delta, envelopes, flow, t);
    if (w > best_delay) {
      best_delay = w;
      best_t = t;
    }
  }
  double lo = std::max(0.0, best_t - horizon / kCoarse);
  double hi = std::min(horizon, best_t + horizon / kCoarse);
  for (int round = 0; round < 40; ++round) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = lo + 2.0 * (hi - lo) / 3.0;
    const double w1 = greedy_delay_at(capacity, delta, envelopes, flow, m1);
    const double w2 = greedy_delay_at(capacity, delta, envelopes, flow, m2);
    if (w1 < w2) {
      lo = m1;
    } else {
      hi = m2;
    }
    best_delay = std::max(best_delay, std::max(w1, w2));
  }
  return best_delay;
}

}  // namespace deltanc::sched
