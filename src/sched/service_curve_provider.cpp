#include "sched/service_curve_provider.h"

#include <cmath>
#include <stdexcept>

namespace deltanc::sched {

namespace {

void require_capacity(double capacity) {
  if (!(capacity > 0.0) || !std::isfinite(capacity)) {
    throw std::invalid_argument(
        "ServiceCurveProvider: capacity must be positive and finite");
  }
}

/// Delta-backed lowering: SchedulerSpec -> DeltaMatrix -> Theorem 1.
class DeltaProvider final : public ServiceCurveProvider {
 public:
  explicit DeltaProvider(const SchedulerSpec& spec) : spec_(spec) {}

  [[nodiscard]] StatServiceCurve leftover(
      const NodeContext& context) const override {
    const DeltaMatrix delta = spec_.to_delta_matrix(
        context.envelopes.size(), context.flow, context.edf_unit);
    return theorem1_service_curve(context.capacity, delta, context.envelopes,
                                  context.flow, context.theta);
  }

 private:
  SchedulerSpec spec_;
};

/// Shared shape of the curve-backed providers: a deterministic
/// rate-latency guarantee beta_{R,T} that depends only on capacity (and,
/// for SCED, the class loads).
class RateLatencyProvider : public ServiceCurveProvider {
 public:
  [[nodiscard]] StatServiceCurve leftover(
      const NodeContext& context) const final {
    require_capacity(context.capacity);
    const std::optional<RateLatency> rl =
        rate_latency(context.capacity, context.loads);
    // Curve-backed providers always return a value (see rate_latency
    // overrides below); the optional exists for the Delta-backed side.
    return StatServiceCurve{
        nc::Curve::rate_latency(rl->rate, rl->latency), std::nullopt};
  }
};

/// GPS: the analyzed class is guaranteed its weight share of the link at
/// all times the class is backlogged, so the per-flow service curve is
/// the pure rate beta_{(phi_0/sum phi) C, 0} (arXiv:1804.08034; see
/// docs/THEORY.md#leftover-service-curves-beyond-delta).
class GpsProvider final : public RateLatencyProvider {
 public:
  explicit GpsProvider(const ClassWeights& weights) : weights_(weights) {}

  [[nodiscard]] std::optional<RateLatency> rate_latency(
      double capacity, const ClassLoads&) const override {
    require_capacity(capacity);
    return RateLatency{weights_.through_share() * capacity, 0.0};
  }

 private:
  ClassWeights weights_;
};

/// DRR (fluid): rate share Q_0 / sum Q like GPS, plus a latency of one
/// full round of the *other* quanta -- in the worst case class 0 arrives
/// just after its turn and waits while sum Q - Q_0 kb of cross quanta
/// drain at rate C (arXiv:2503.23366; see docs/THEORY.md).
class DrrProvider final : public RateLatencyProvider {
 public:
  explicit DrrProvider(const ClassWeights& quanta) : quanta_(quanta) {}

  [[nodiscard]] std::optional<RateLatency> rate_latency(
      double capacity, const ClassLoads&) const override {
    require_capacity(capacity);
    return RateLatency{quanta_.through_share() * capacity,
                       quanta_.cross_total() / capacity};
  }

 private:
  ClassWeights quanta_;
};

/// Fluid SCED with load-proportional deadlines: each class receives
/// capacity in proportion to its offered load, beta_{C rho_0/(rho_0 +
/// rho_c), 0} (arXiv:1804.08040).  With no load information the whole
/// link is the guarantee (nothing competes).
class ScedProvider final : public RateLatencyProvider {
 public:
  [[nodiscard]] std::optional<RateLatency> rate_latency(
      double capacity, const ClassLoads& loads) const override {
    require_capacity(capacity);
    if (loads.through < 0.0 || loads.cross < 0.0 ||
        !std::isfinite(loads.through) || !std::isfinite(loads.cross)) {
      throw std::invalid_argument(
          "ScedProvider: class loads must be finite and non-negative");
    }
    const double total = loads.through + loads.cross;
    if (total <= 0.0) return RateLatency{capacity, 0.0};
    return RateLatency{capacity * loads.through / total, 0.0};
  }
};

}  // namespace

std::unique_ptr<ServiceCurveProvider> make_service_curve_provider(
    const SchedulerSpec& spec) {
  switch (spec.kind()) {
    case SchedulerKind::kFifo:
    case SchedulerKind::kBmux:
    case SchedulerKind::kSpHigh:
    case SchedulerKind::kEdf:
    case SchedulerKind::kDelta:
      return std::make_unique<DeltaProvider>(spec);
    case SchedulerKind::kGps:
      return std::make_unique<GpsProvider>(spec.weights());
    case SchedulerKind::kDrr:
      return std::make_unique<DrrProvider>(spec.weights());
    case SchedulerKind::kSced:
      return std::make_unique<ScedProvider>();
  }
  throw std::invalid_argument("make_service_curve_provider: unknown kind");
}

}  // namespace deltanc::sched
