// The service-curve-provider interface: one lowering contract for every
// registered scheduler kind.
//
// A SchedulerSpec describes *what* a scheduler is; a ServiceCurveProvider
// says what service the analyzed flow is left with.  Two families
// implement the contract:
//
//   Delta-backed   FIFO / BMUX / SP-high / EDF / fixed-Delta lower through
//                  Theorem 1 (delta_service_curve.h): the spec's
//                  DeltaMatrix plus the cross-flow envelopes yield the
//                  statistical leftover curve of Eq. (8).
//
//   curve-backed   GPS / DRR / SCED have no constants Delta_{j,k}
//                  (their precedence horizon conditions on the backlog
//                  process), but publish *deterministic* per-flow
//                  leftover curves of rate-latency form beta_{R,T}:
//
//                    GPS   R = (phi_0 / sum_i phi_i) C,        T = 0
//                          (per-flow GPS service curve, arXiv:1804.08034)
//                    DRR   R = (Q_0 / sum_i Q_i) C,
//                          T = (sum_i Q_i - Q_0) / C
//                          (fluid DRR latency-rate server, arXiv:2503.23366;
//                          one full round of the other quanta can pass
//                          before class 0 is served)
//                    SCED  R = C rho_0 / (rho_0 + rho_c),      T = 0
//                          (fluid SCED with load-proportional deadlines,
//                          arXiv:1804.08040)
//
// Because the curve-backed guarantees are deterministic (they hold
// regardless of cross-traffic behavior), their StatServiceCurve carries
// no bounding function, and rate_latency() exposes the (R, T) pair in
// closed form so the end-to-end solver (e2e/param_search.cpp) can
// convolve H hops into beta_{R, H T} without touching the curve algebra.
//
// docs/SCHEDULERS.md is the authoring guide for adding a kind end to
// end; docs/THEORY.md#leftover-service-curves-beyond-delta derives the
// three constructions above.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "sched/delta_service_curve.h"
#include "sched/scheduler_spec.h"
#include "traffic/ebb.h"

namespace deltanc::sched {

/// Per-class long-run offered load (kb/ms = Mbps) at a node: the analyzed
/// (through) aggregate and the total cross aggregate.  Only the
/// load-proportional kinds (SCED) read it; zero-initialized is fine for
/// the others.
struct ClassLoads {
  double through = 0.0;
  double cross = 0.0;

  friend constexpr bool operator==(const ClassLoads&,
                                   const ClassLoads&) = default;
};

/// A rate-latency description beta_{R,T}(t) = R [t - T]_+ of a
/// deterministic per-node leftover guarantee.
struct RateLatency {
  double rate = 0.0;     ///< R, kb/ms = Mbps
  double latency = 0.0;  ///< T, ms

  friend constexpr bool operator==(const RateLatency&,
                                   const RateLatency&) = default;
};

/// Everything a provider may need to build the leftover curve at one
/// node.  Delta-backed providers read envelopes/flow/theta/edf_unit;
/// curve-backed providers read capacity (and loads, for SCED).
struct NodeContext {
  double capacity = 0.0;  ///< link rate C, kb/ms = Mbps
  std::span<const traffic::StatEnvelope> envelopes;  ///< one per flow
  std::size_t flow = 0;   ///< index of the analyzed flow in `envelopes`
  double theta = 0.0;     ///< Theorem-1 free parameter (Delta-backed only)
  double edf_unit = 1.0;  ///< EDF deadline unit d_e2e / H (kEdf only)
  ClassLoads loads;       ///< per-class offered load (kSced only)
};

/// The lowering contract.  Obtain one via make_service_curve_provider().
class ServiceCurveProvider {
 public:
  virtual ~ServiceCurveProvider() = default;

  /// The per-node leftover service curve for the analyzed flow.  `eps`
  /// is absent when the guarantee is deterministic (all curve-backed
  /// kinds; Delta-backed kinds inherit it from Theorem 1).
  /// @throws std::invalid_argument on a malformed context.
  [[nodiscard]] virtual StatServiceCurve leftover(
      const NodeContext& context) const = 0;

  /// Closed-form (R, T) when the per-node guarantee is exactly a
  /// deterministic rate-latency curve -- every curve-backed kind.
  /// nullopt for Delta-backed kinds (their leftover depends on the cross
  /// envelopes and theta, not just C).
  [[nodiscard]] virtual std::optional<RateLatency> rate_latency(
      double capacity, const ClassLoads& loads) const {
    (void)capacity;
    (void)loads;
    return std::nullopt;
  }
};

/// Factory: the provider implementing `spec`'s lowering.  Never null.
/// Delta-backed specs get the Theorem-1 provider; curve-backed specs get
/// their published rate-latency construction (see the header comment).
[[nodiscard]] std::unique_ptr<ServiceCurveProvider> make_service_curve_provider(
    const SchedulerSpec& spec);

}  // namespace deltanc::sched
