// Single-node probabilistic delay bounds (Section III-B).
//
// Combining the Theorem-1 statistical service curve (with theta = d) and
// the through flow's statistical sample-path envelope yields the
// schedulability-style condition Eq. (23):
//
//   sup_{t>0} [ sum_{k in N_j} G_k(t + Delta_{j,k}(d)) + sigma - C t ] <= C d ,
//
// and the violation probability Eq. (21):
//
//   P( W_j > d(sigma) ) <= inf_{sigma_1+sigma_2=sigma} eps_g(sigma_1) + eps_s(sigma_2).
//
// This module solves the condition for the smallest d at a target
// violation probability.  It recovers the "direct" analysis of
// Boorstyn/Burchard/Liebeherr/Oottamakorn (reference [3] of the paper)
// and is the H = 1 anchor of the end-to-end machinery.
#pragma once

#include <span>

#include "sched/delta.h"
#include "traffic/ebb.h"

namespace deltanc::sched {

/// The smallest d satisfying Eq. (23) at margin sigma, for arbitrary
/// (curve-valued) statistical sample-path envelopes.  Returns +infinity
/// when the relevant flows overload the link.
[[nodiscard]] double single_node_delay_for_sigma(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double sigma);

/// Full probabilistic bound: picks sigma from the target violation
/// probability via the inf-convolution of the flow's envelope bound with
/// the cross-traffic bounds (Eq. 21 / Eq. 33), then solves Eq. (23).
/// @throws std::invalid_argument on malformed input.
[[nodiscard]] double single_node_delay_bound(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double epsilon);

}  // namespace deltanc::sched
