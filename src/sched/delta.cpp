#include "sched/delta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deltanc::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DeltaMatrix::DeltaMatrix(std::vector<std::vector<double>> delta)
    : delta_(std::move(delta)) {
  if (delta_.empty()) {
    throw std::invalid_argument("DeltaMatrix: need at least one flow");
  }
  for (std::size_t j = 0; j < delta_.size(); ++j) {
    if (delta_[j].size() != delta_.size()) {
      throw std::invalid_argument("DeltaMatrix: matrix must be square");
    }
    if (delta_[j][j] != 0.0) {
      throw std::invalid_argument(
          "DeltaMatrix: diagonal must be zero (locally FIFO)");
    }
    for (double v : delta_[j]) {
      if (std::isnan(v)) {
        throw std::invalid_argument("DeltaMatrix: NaN entry");
      }
    }
  }
}

DeltaMatrix DeltaMatrix::fifo(std::size_t n) {
  if (n == 0) throw std::invalid_argument("DeltaMatrix::fifo: n must be > 0");
  return DeltaMatrix(
      std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)));
}

DeltaMatrix DeltaMatrix::static_priority(std::span<const int> priority) {
  const std::size_t n = priority.size();
  if (n == 0) {
    throw std::invalid_argument("DeltaMatrix::static_priority: empty");
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (priority[k] < priority[j]) {
        d[j][k] = -kInf;
      } else if (priority[k] > priority[j]) {
        d[j][k] = kInf;
      }
    }
  }
  return DeltaMatrix(std::move(d));
}

DeltaMatrix DeltaMatrix::bmux(std::size_t n, std::size_t low_flow) {
  if (low_flow >= n) {
    throw std::invalid_argument("DeltaMatrix::bmux: low_flow out of range");
  }
  std::vector<int> priority(n, 1);
  priority[low_flow] = 0;
  return static_priority(priority);
}

DeltaMatrix DeltaMatrix::edf(std::span<const double> deadlines) {
  const std::size_t n = deadlines.size();
  if (n == 0) throw std::invalid_argument("DeltaMatrix::edf: empty");
  for (double d : deadlines) {
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw std::invalid_argument(
          "DeltaMatrix::edf: deadlines must be finite and non-negative");
    }
  }
  std::vector<std::vector<double>> delta(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      delta[j][k] = deadlines[j] - deadlines[k];
    }
  }
  return DeltaMatrix(std::move(delta));
}

void DeltaMatrix::check_index(std::size_t j, std::size_t k) const {
  if (j >= size() || k >= size()) {
    throw std::out_of_range("DeltaMatrix: flow index out of range");
  }
}

double DeltaMatrix::at(std::size_t j, std::size_t k) const {
  check_index(j, k);
  return delta_[j][k];
}

double DeltaMatrix::capped(std::size_t j, std::size_t k, double y) const {
  check_index(j, k);
  return std::min(delta_[j][k], y);
}

std::vector<std::size_t> DeltaMatrix::relevant_flows(std::size_t j) const {
  check_index(j, j);
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < size(); ++k) {
    if (delta_[j][k] > -kInf) out.push_back(k);
  }
  return out;
}

std::vector<std::size_t> DeltaMatrix::relevant_cross_flows(
    std::size_t j) const {
  auto out = relevant_flows(j);
  out.erase(std::remove(out.begin(), out.end(), j), out.end());
  return out;
}

}  // namespace deltanc::sched
