#include "sched/delta_service_curve.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace deltanc::sched {

namespace {

void validate(double capacity, const DeltaMatrix& delta, std::size_t n_env,
              std::size_t flow, double theta) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("service curve: capacity must be > 0");
  }
  if (n_env != delta.size()) {
    throw std::invalid_argument(
        "service curve: one envelope per flow required");
  }
  if (flow >= delta.size()) {
    throw std::invalid_argument("service curve: flow index out of range");
  }
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("service curve: theta must be >= 0");
  }
}

/// The shifted cross-traffic term G_k(t - theta + Delta_{j,k}(theta)).
/// Since Delta_{j,k}(theta) = min(Delta_{j,k}, theta) <= theta, the shift
/// a_k = theta - Delta_{j,k}(theta) is >= 0, i.e. a plain right shift.
nc::Curve shifted_envelope(const nc::Curve& g, double delta_capped,
                           double theta) {
  const double shift = theta - delta_capped;
  return g.hshift(shift);
}

}  // namespace

StatServiceCurve theorem1_service_curve(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double theta) {
  validate(capacity, delta, envelopes.size(), flow, theta);

  nc::Curve cross_sum = nc::Curve::zero();
  std::vector<nc::ExpBound> bounds;
  for (std::size_t k : delta.relevant_cross_flows(flow)) {
    const double capped = delta.capped(flow, k, theta);
    cross_sum = nc::pointwise_add(
        cross_sum, shifted_envelope(envelopes[k].g, capped, theta));
    bounds.push_back(envelopes[k].eps);
  }
  nc::Curve s = pointwise_sub(nc::Curve::rate(capacity), cross_sum)
                    .clamp_nonnegative()
                    .gated(theta);
  if (bounds.empty()) {
    return StatServiceCurve{std::move(s), std::nullopt};
  }
  return StatServiceCurve{std::move(s), nc::inf_convolution(bounds)};
}

nc::Curve deterministic_service_curve(double capacity,
                                      const DeltaMatrix& delta,
                                      std::span<const nc::Curve> envelopes,
                                      std::size_t flow, double theta) {
  validate(capacity, delta, envelopes.size(), flow, theta);

  nc::Curve cross_sum = nc::Curve::zero();
  for (std::size_t k : delta.relevant_cross_flows(flow)) {
    const double capped = delta.capped(flow, k, theta);
    cross_sum =
        nc::pointwise_add(cross_sum, shifted_envelope(envelopes[k], capped, theta));
  }
  return pointwise_sub(nc::Curve::rate(capacity), cross_sum)
      .clamp_nonnegative()
      .gated(theta);
}

}  // namespace deltanc::sched
