#include "sched/single_node_bound.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "nc/minplus_ops.h"

namespace deltanc::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate(double capacity, const DeltaMatrix& delta, std::size_t n_env,
              std::size_t flow) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("single_node_bound: capacity must be > 0");
  }
  if (n_env != delta.size()) {
    throw std::invalid_argument("single_node_bound: one envelope per flow");
  }
  if (flow >= delta.size()) {
    throw std::invalid_argument("single_node_bound: flow index out of range");
  }
}

nc::Curve shifted(const nc::Curve& g, double c) {
  return c >= 0.0 ? g.advanced(c) : g.hshift(-c);
}

}  // namespace

double single_node_delay_for_sigma(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double sigma) {
  validate(capacity, delta, envelopes.size(), flow);
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("single_node_bound: sigma must be >= 0");
  }
  const auto relevant = delta.relevant_flows(flow);
  double total_rate = 0.0;
  for (std::size_t k : relevant) {
    if (envelopes[k].g.has_infinite_tail()) {
      throw std::invalid_argument("single_node_bound: envelope must be finite");
    }
    total_rate += envelopes[k].g.final_slope();
  }
  if (total_rate > capacity + 1e-12) return kInf;

  const auto meets = [&](double d) {
    nc::Curve sum = nc::Curve::zero();
    for (std::size_t k : relevant) {
      sum = nc::pointwise_add(sum,
                              shifted(envelopes[k].g, delta.capped(flow, k, d)));
    }
    const double lhs =
        nc::vertical_deviation(sum, nc::Curve::rate(capacity)) + sigma;
    return lhs <= capacity * d + 1e-9 * capacity;
  };

  double hi = 1.0;
  int guard = 0;
  while (!meets(hi)) {
    hi *= 2.0;
    if (++guard > 80) return kInf;
  }
  double lo = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (meets(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double single_node_delay_bound(
    double capacity, const DeltaMatrix& delta,
    std::span<const traffic::StatEnvelope> envelopes, std::size_t flow,
    double epsilon) {
  validate(capacity, delta, envelopes.size(), flow);
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("single_node_bound: need 0 < epsilon < 1");
  }
  // Eq. (21): the total bounding function combines the flow's own
  // envelope bound (eps_g) with the cross-traffic bounds entering the
  // Theorem-1 service curve (eps_s), all via Eq. (33).
  std::vector<nc::ExpBound> terms{envelopes[flow].eps};
  for (std::size_t k : delta.relevant_cross_flows(flow)) {
    terms.push_back(envelopes[k].eps);
  }
  const double sigma = nc::inf_convolution(terms).sigma_for(epsilon);
  return single_node_delay_for_sigma(capacity, delta, envelopes, flow, sigma);
}

}  // namespace deltanc::sched
