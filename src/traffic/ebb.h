// The Exponentially Bounded Burstiness (EBB) traffic model of Eq. (27):
//
//   P( A(s,t) > rho (t-s) + sigma ) <= M exp(-alpha sigma),
//
// written A ~ (M, rho, alpha) [Yaron & Sidi 1993].  EBB is the arrival
// model of the paper's end-to-end analysis (Section IV); it is expressive
// enough to capture Markov-modulated sources (src/traffic/mmoo.h maps a
// Markov-modulated on-off aggregate onto EBB parameters via its effective
// bandwidth).
//
// From an EBB description the paper builds a *statistical sample-path
// envelope* (Eq. (2)) using the union bound:
//
//   G(t) = (rho + gamma) t,   eps(sigma) = M exp(-alpha sigma) / (1 - exp(-alpha gamma)),
//
// for any slack rate gamma > 0.  `StatEnvelope` carries that pair.
#pragma once

#include "nc/bounding_function.h"
#include "nc/curve.h"

namespace deltanc::traffic {

/// A statistical sample-path envelope in the sense of Eq. (2): the curve
/// `g` together with the bounding function `eps`, guaranteeing
/// `P(sup_{s<=t} { A(s,t) - g(t-s) } > sigma) <= eps(sigma)`.
struct StatEnvelope {
  nc::Curve g;
  nc::ExpBound eps;
};

/// EBB parameters (M, rho, alpha) for an arrival process per Eq. (27).
/// Units in this library: time in milliseconds, data in kilobits, so
/// rates are numerically megabits per second.
class EbbTraffic {
 public:
  /// @param m       prefactor M >= 1
  /// @param rho     long-run rate bound (kb/ms = Mbps)
  /// @param alpha   exponential decay of the burst tail (1/kb)
  /// @throws std::invalid_argument for m < 1, rho < 0, or alpha <= 0.
  EbbTraffic(double m, double rho, double alpha);

  [[nodiscard]] double m() const noexcept { return m_; }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Tail bound P(A(s,t) > rho (t-s) + sigma) for a single interval.
  [[nodiscard]] double interval_tail(double sigma) const noexcept;

  /// The union-bound statistical sample-path envelope for slack rate
  /// gamma > 0 (discrete time, unit steps):
  /// G(t) = (rho + gamma) t with eps = M e^{-alpha sigma}/(1 - e^{-alpha gamma}).
  /// @throws std::invalid_argument unless gamma > 0.
  [[nodiscard]] StatEnvelope sample_path_envelope(double gamma) const;

  /// Superposition with an independent EBB flow bounded by the same
  /// Chernoff parameter: rates add, prefactors multiply (the MGF bound of
  /// the sum is the product of MGF bounds).  Requires equal alpha.
  /// @throws std::invalid_argument if the decay parameters differ.
  [[nodiscard]] EbbTraffic aggregate_with(const EbbTraffic& other) const;

  /// The deterministic leaky-bucket limit of the EBB model: setting
  /// M = e^{B alpha} and letting alpha -> infinity recovers
  /// E(t) = rho t + B (Section IV, gamma = 0 discussion).  Returns the
  /// leaky-bucket envelope for burst B = log(M)/alpha.
  [[nodiscard]] nc::Curve deterministic_envelope() const;

 private:
  double m_;
  double rho_;
  double alpha_;
};

}  // namespace deltanc::traffic
