// The IETF T-SPEC traffic descriptor (peak rate p, maximum packet size M,
// sustained rate r, burst b), whose deterministic arrival envelope is the
// concave dual-bucket curve
//
//   E(t) = min( M + p t,  b + r t )        for t > 0.
//
// T-SPECs are the practical way deterministic contracts are written for
// the admission-control use cases of sched/schedulability.h and
// e2e/deterministic_e2e.h; Theorem 2 applies because the envelope is
// concave.
#pragma once

#include "nc/curve.h"

namespace deltanc::traffic {

/// An IETF-style T-SPEC contract.  Units follow the library convention:
/// rates in kb/ms (= Mbps), sizes in kb.
class TSpec {
 public:
  /// @throws std::invalid_argument unless 0 <= r <= p, M >= 0, b >= M.
  TSpec(double peak_rate, double max_packet_kb, double sustained_rate,
        double burst_kb);

  [[nodiscard]] double peak_rate() const noexcept { return p_; }
  [[nodiscard]] double max_packet_kb() const noexcept { return m_; }
  [[nodiscard]] double sustained_rate() const noexcept { return r_; }
  [[nodiscard]] double burst_kb() const noexcept { return b_; }

  /// The concave dual-bucket envelope min(M + p t, b + r t).
  [[nodiscard]] nc::Curve envelope() const;

  /// Time at which the envelope switches from the peak-rate to the
  /// sustained-rate segment: (b - M) / (p - r); +infinity when p == r.
  [[nodiscard]] double crossover_time() const noexcept;

  /// Aggregates n i.i.d. contracts (parameters scale linearly).
  /// @throws std::invalid_argument unless n >= 1.
  [[nodiscard]] TSpec aggregate(int n) const;

  /// The worst-case backlog this contract can build against a constant
  /// service rate R >= r (vertical deviation of the envelope).
  [[nodiscard]] double max_backlog_against(double service_rate) const;

 private:
  double p_;
  double m_;
  double r_;
  double b_;
};

}  // namespace deltanc::traffic
