#include "traffic/eb_memo.h"

#include <algorithm>

namespace deltanc::traffic {

double EffectiveBandwidthMemo::operator()(double s) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), s,
      [](const std::pair<double, double>& e, double key) {
        return e.first < key;
      });
  if (it != entries_.end() && it->first == s) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const double value = source_.effective_bandwidth(s);
  if (entries_.size() < kMaxEntries) {
    entries_.insert(it, {s, value});
  }
  return value;
}

}  // namespace deltanc::traffic
