#include "traffic/eb_memo.h"

#include <algorithm>

namespace deltanc::traffic {

double EffectiveBandwidthMemo::operator()(double s) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), s,
      [](const std::pair<double, double>& e, double key) {
        return e.first < key;
      });
  if (it != entries_.end() && it->first == s) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const double value = source_.effective_bandwidth(s);
  if (entries_.size() < kMaxEntries) {
    entries_.insert(it, {s, value});
  }
  return value;
}

std::size_t EffectiveBandwidthMemo::gather(std::span<const double> s,
                                           std::span<double> out,
                                           bool use_simd) {
  if (s.size() != out.size()) {
    throw std::invalid_argument("EffectiveBandwidthMemo: s/out size mismatch");
  }
  // Pass 1: serve hits, collect the misses as a compact SoA batch.
  std::vector<double> miss_s;
  std::vector<std::size_t> miss_idx;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), s[i],
        [](const std::pair<double, double>& e, double key) {
          return e.first < key;
        });
    if (it != entries_.end() && it->first == s[i]) {
      ++hits_;
      out[i] = it->second;
    } else {
      miss_s.push_back(s[i]);
      miss_idx.push_back(i);
    }
  }
  if (miss_s.empty()) return 0;
  // Pass 2: one batched evaluation over the misses, then scatter back and
  // memoize (re-probing per insert keeps duplicate keys within one batch
  // correct).
  std::vector<double> miss_eb(miss_s.size());
  source_.effective_bandwidth_batch(miss_s, miss_eb, use_simd);
  misses_ += static_cast<std::int64_t>(miss_s.size());
  for (std::size_t m = 0; m < miss_s.size(); ++m) {
    out[miss_idx[m]] = miss_eb[m];
    if (entries_.size() < kMaxEntries) {
      const auto it = std::lower_bound(
          entries_.begin(), entries_.end(), miss_s[m],
          [](const std::pair<double, double>& e, double key) {
            return e.first < key;
          });
      if (it == entries_.end() || it->first != miss_s[m]) {
        entries_.insert(it, {miss_s[m], miss_eb[m]});
      }
    }
  }
  return miss_s.size();
}

}  // namespace deltanc::traffic
