#include "traffic/mmoo.h"

#include <cmath>
#include <stdexcept>

namespace deltanc::traffic {

MmooSource::MmooSource(double peak_kb, double p11, double p22)
    : peak_(peak_kb), p11_(p11), p22_(p22) {
  if (!(peak_kb > 0.0) || !std::isfinite(peak_kb)) {
    throw std::invalid_argument("MmooSource: peak must be > 0");
  }
  if (!(p11 > 0.0 && p11 < 1.0) || !(p22 > 0.0 && p22 < 1.0)) {
    throw std::invalid_argument("MmooSource: p11, p22 must lie in (0,1)");
  }
  if ((1.0 - p11) + (1.0 - p22) > 1.0 + 1e-12) {
    throw std::invalid_argument(
        "MmooSource: requires p12 + p21 <= 1 (paper's assumption)");
  }
}

MmooSource MmooSource::paper_source() {
  return MmooSource(1.5, 0.989, 0.9);
}

double MmooSource::stationary_on() const noexcept {
  const double p12 = 1.0 - p11_;
  const double p21 = 1.0 - p22_;
  return p12 / (p12 + p21);
}

double MmooSource::mean_rate() const noexcept {
  return peak_ * stationary_on();
}

double MmooSource::effective_bandwidth(double s) const {
  if (!(s > 0.0) || !std::isfinite(s)) {
    throw std::invalid_argument("effective_bandwidth: s must be > 0 finite");
  }
  // Spectral radius of [[p11, p12 e^{sP}], [p21, p22 e^{sP}]]; computed in
  // log space to stay stable for large s (e^{sP} can overflow).
  //   lambda = (b + sqrt(b^2 - 4 c e)) / 2,  b = p11 + p22 e,  c = p11+p22-1,
  // with e = e^{sP}.  Factor out e: b = e (p22 + p11/e) so for large s we
  // evaluate lambda/e and add sP back in log space.
  const double sp = s * peak_;
  const double c = p11_ + p22_ - 1.0;
  if (sp < 30.0) {
    const double e = std::exp(sp);
    const double b = p11_ + p22_ * e;
    const double disc = b * b - 4.0 * c * e;
    const double lambda = 0.5 * (b + std::sqrt(disc));
    return std::log(lambda) / s;
  }
  // lambda / e = (b/e + sqrt((b/e)^2 - 4 c / e)) / 2 with b/e = p22 + p11 e^{-sp}.
  const double inv_e = std::exp(-sp);
  const double b_over_e = p22_ + p11_ * inv_e;
  const double disc = b_over_e * b_over_e - 4.0 * c * inv_e;
  const double lambda_over_e = 0.5 * (b_over_e + std::sqrt(disc));
  return (sp + std::log(lambda_over_e)) / s;
}

EbbTraffic MmooSource::aggregate_ebb(int n, double s) const {
  if (n < 1) {
    throw std::invalid_argument("aggregate_ebb: need at least one flow");
  }
  return EbbTraffic(1.0, static_cast<double>(n) * effective_bandwidth(s), s);
}

}  // namespace deltanc::traffic
