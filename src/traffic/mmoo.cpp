#include "traffic/mmoo.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace deltanc::traffic {

MmooSource::MmooSource(double peak_kb, double p11, double p22)
    : peak_(peak_kb), p11_(p11), p22_(p22) {
  if (!(peak_kb > 0.0) || !std::isfinite(peak_kb)) {
    throw std::invalid_argument("MmooSource: peak must be > 0");
  }
  if (!(p11 > 0.0 && p11 < 1.0) || !(p22 > 0.0 && p22 < 1.0)) {
    throw std::invalid_argument("MmooSource: p11, p22 must lie in (0,1)");
  }
  if ((1.0 - p11) + (1.0 - p22) > 1.0 + 1e-12) {
    throw std::invalid_argument(
        "MmooSource: requires p12 + p21 <= 1 (paper's assumption)");
  }
}

MmooSource MmooSource::paper_source() {
  return MmooSource(1.5, 0.989, 0.9);
}

double MmooSource::stationary_on() const noexcept {
  const double p12 = 1.0 - p11_;
  const double p21 = 1.0 - p22_;
  return p12 / (p12 + p21);
}

double MmooSource::mean_rate() const noexcept {
  return peak_ * stationary_on();
}

double MmooSource::effective_bandwidth(double s) const {
  if (!(s > 0.0) || !std::isfinite(s)) {
    throw std::invalid_argument("effective_bandwidth: s must be > 0 finite");
  }
  // Spectral radius of [[p11, p12 e^{sP}], [p21, p22 e^{sP}]]; computed in
  // log space to stay stable for large s (e^{sP} can overflow).
  //   lambda = (b + sqrt(b^2 - 4 c e)) / 2,  b = p11 + p22 e,  c = p11+p22-1,
  // with e = e^{sP}.  Factor out e: b = e (p22 + p11/e) so for large s we
  // evaluate lambda/e and add sP back in log space.
  const double sp = s * peak_;
  const double c = p11_ + p22_ - 1.0;
  if (sp < 30.0) {
    const double e = std::exp(sp);
    const double b = p11_ + p22_ * e;
    const double disc = b * b - 4.0 * c * e;
    const double lambda = 0.5 * (b + std::sqrt(disc));
    return std::log(lambda) / s;
  }
  // lambda / e = (b/e + sqrt((b/e)^2 - 4 c / e)) / 2 with b/e = p22 + p11 e^{-sp}.
  const double inv_e = std::exp(-sp);
  const double b_over_e = p22_ + p11_ * inv_e;
  const double disc = b_over_e * b_over_e - 4.0 * c * inv_e;
  const double lambda_over_e = 0.5 * (b_over_e + std::sqrt(disc));
  return (sp + std::log(lambda_over_e)) / s;
}

void MmooSource::effective_bandwidth_batch(std::span<const double> s,
                                           std::span<double> out,
                                           bool use_simd) const {
  if (s.size() != out.size()) {
    throw std::invalid_argument(
        "effective_bandwidth_batch: s/out size mismatch");
  }
  const std::size_t n = s.size();
  if (n == 0) return;
  if (!use_simd) {
    // Scalar reference path (DELTANC_SIMD=off): the historical per-call
    // code, lane by lane.  The SoA path below must match it bit for bit.
    for (std::size_t i = 0; i < n; ++i) out[i] = effective_bandwidth(s[i]);
    return;
  }
  const double c = p11_ + p22_ - 1.0;
  // SoA staging: the per-lane regime split and its exp() stay scalar
  // (lane-vectorized exp is not bit-identical to libm), leaving the
  // spectral-radius algebra -- the same formula A + B e with the
  // coefficients swapped between regimes -- as one branch-free simd loop.
  std::vector<double> sp(n), e(n), coef_a(n), coef_b(n), lam(n);
  std::vector<unsigned char> direct(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(s[i] > 0.0) || !std::isfinite(s[i])) {
      throw std::invalid_argument(
          "effective_bandwidth: s must be > 0 finite");
    }
    sp[i] = s[i] * peak_;
    direct[i] = sp[i] < 30.0 ? 1 : 0;
    if (direct[i]) {
      e[i] = std::exp(sp[i]);
      coef_a[i] = p11_;
      coef_b[i] = p22_;
    } else {
      e[i] = std::exp(-sp[i]);  // inv_e of the log-space regime
      coef_a[i] = p22_;
      coef_b[i] = p11_;
    }
  }
  double* const sp_p = sp.data();
  double* const e_p = e.data();
  double* const a_p = coef_a.data();
  double* const b_p = coef_b.data();
  double* const lam_p = lam.data();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const double b = a_p[i] + b_p[i] * e_p[i];
    const double disc = b * b - 4.0 * c * e_p[i];
    lam_p[i] = 0.5 * (b + std::sqrt(disc));
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = direct[i] ? std::log(lam[i]) / s[i]
                       : (sp_p[i] + std::log(lam[i])) / s[i];
  }
}

EbbTraffic MmooSource::aggregate_ebb(int n, double s) const {
  if (n < 1) {
    throw std::invalid_argument("aggregate_ebb: need at least one flow");
  }
  return EbbTraffic(1.0, static_cast<double>(n) * effective_bandwidth(s), s);
}

}  // namespace deltanc::traffic
