#include "traffic/markov.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace deltanc::traffic {

namespace {

/// Spectral radius of a non-negative square matrix via power iteration.
double spectral_radius(const std::vector<std::vector<double>>& m) {
  const std::size_t n = m.size();
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  double lambda = 0.0;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<double> w(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        w[i] += m[i][j] * v[j];
      }
    }
    const double norm = std::accumulate(w.begin(), w.end(), 0.0);
    if (!(norm > 0.0)) return 0.0;
    for (double& x : w) x /= norm;
    if (iter > 10 && std::abs(norm - lambda) <= 1e-14 * norm) {
      return norm;
    }
    lambda = norm;
    v = std::move(w);
  }
  return lambda;
}

}  // namespace

MarkovSource::MarkovSource(std::vector<std::vector<double>> transition,
                           std::vector<double> rates)
    : p_(std::move(transition)), rates_(std::move(rates)) {
  const std::size_t n = rates_.size();
  if (n == 0 || p_.size() != n) {
    throw std::invalid_argument("MarkovSource: empty or non-square matrix");
  }
  for (const auto& row : p_) {
    if (row.size() != n) {
      throw std::invalid_argument("MarkovSource: non-square matrix");
    }
    double sum = 0.0;
    for (double x : row) {
      if (!(x >= 0.0) || !(x <= 1.0)) {
        throw std::invalid_argument(
            "MarkovSource: transition probabilities must lie in [0,1]");
      }
      sum += x;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("MarkovSource: rows must sum to 1");
    }
  }
  for (double r : rates_) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      throw std::invalid_argument("MarkovSource: rates must be >= 0, finite");
    }
  }
}

MarkovSource MarkovSource::on_off(double peak_kb, double p11, double p22) {
  return MarkovSource({{p11, 1.0 - p11}, {1.0 - p22, p22}}, {0.0, peak_kb});
}

std::vector<double> MarkovSource::stationary() const {
  const std::size_t n = states();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<double> next(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        next[j] += pi[i] * p_[i][j];
      }
    }
    double diff = 0.0;
    for (std::size_t j = 0; j < n; ++j) diff += std::abs(next[j] - pi[j]);
    pi = std::move(next);
    if (diff < 1e-14) break;
  }
  return pi;
}

double MarkovSource::mean_rate() const {
  const auto pi = stationary();
  double mean = 0.0;
  for (std::size_t i = 0; i < states(); ++i) mean += pi[i] * rates_[i];
  return mean;
}

double MarkovSource::peak_rate() const noexcept {
  return *std::max_element(rates_.begin(), rates_.end());
}

double MarkovSource::effective_bandwidth(double s) const {
  if (!(s > 0.0) || !std::isfinite(s)) {
    throw std::invalid_argument("effective_bandwidth: s must be > 0 finite");
  }
  // Factor out the largest reward to keep e^{s r_j} representable:
  // sprad(P diag(e^{s r})) = e^{s r_max} sprad(P diag(e^{s (r - r_max)})).
  const double r_max = peak_rate();
  std::vector<std::vector<double>> m(states(),
                                     std::vector<double>(states(), 0.0));
  for (std::size_t i = 0; i < states(); ++i) {
    for (std::size_t j = 0; j < states(); ++j) {
      m[i][j] = p_[i][j] * std::exp(s * (rates_[j] - r_max));
    }
  }
  const double lambda_scaled = spectral_radius(m);
  return (s * r_max + std::log(lambda_scaled)) / s;
}

EbbTraffic MarkovSource::aggregate_ebb(int n, double s) const {
  if (n < 1) {
    throw std::invalid_argument("aggregate_ebb: need at least one flow");
  }
  return EbbTraffic(1.0, static_cast<double>(n) * effective_bandwidth(s), s);
}

}  // namespace deltanc::traffic
