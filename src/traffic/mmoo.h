// Discrete-time Markov-modulated on-off (MMOO) traffic, the workload of
// the paper's numerical examples (Section V).
//
// The source is a two-state Markov chain (OFF = 1, ON = 2) observed once
// per time slot; in an ON slot it emits a fixed burst of P kilobits.
// Transition probabilities: p12 = P(OFF -> ON), p21 = P(ON -> OFF); the
// paper parameterizes by the self-loop probabilities p11 and p22 and
// assumes p12 + p21 <= 1 (positively correlated states).
//
// Its effective bandwidth  eb(s) = (1/(s t)) log E[e^{s A(t)}]  is bounded
// by the log of the spectral radius of the rate-weighted transition
// kernel (Chang, "Performance Guarantees in Communication Networks"):
//
//   eb(s) <= (1/s) log( [ p11 + p22 e^{sP}
//            + sqrt( (p11 + p22 e^{sP})^2 - 4 (p11 + p22 - 1) e^{sP} ) ] / 2 )
//
// An aggregate of N independent such flows then satisfies the EBB model
// of Eq. (27) with  A ~ (1, N * eb(s), s)  by the Chernoff bound.
//
// Units: time in milliseconds (1 slot = 1 ms), data in kilobits, so rates
// are numerically in Mbps.
#pragma once

#include <span>

#include "traffic/ebb.h"

namespace deltanc::traffic {

/// Analytical model of one discrete-time MMOO source.
class MmooSource {
 public:
  /// @param peak_kb   data emitted per ON slot (P), in kilobits
  /// @param p11       P(stay OFF)
  /// @param p22       P(stay ON)
  /// @throws std::invalid_argument unless peak_kb > 0, p11 and p22 lie in
  ///   (0,1), and p12 + p21 <= 1 (the paper's standing assumption).
  MmooSource(double peak_kb, double p11, double p22);

  /// The traffic used in all of the paper's numerical examples:
  /// P = 1.5 kb, p11 = 0.989, p22 = 0.9 -- peak rate 1.5 Mbps, average
  /// rate ~0.15 Mbps.
  static MmooSource paper_source();

  [[nodiscard]] double peak_kb() const noexcept { return peak_; }
  [[nodiscard]] double p11() const noexcept { return p11_; }
  [[nodiscard]] double p22() const noexcept { return p22_; }
  [[nodiscard]] double p12() const noexcept { return 1.0 - p11_; }
  [[nodiscard]] double p21() const noexcept { return 1.0 - p22_; }

  /// Stationary probability of the ON state: p12 / (p12 + p21).
  [[nodiscard]] double stationary_on() const noexcept;
  /// Long-run average rate (kb per slot = Mbps): P * stationary_on().
  [[nodiscard]] double mean_rate() const noexcept;
  /// Peak rate (kb per slot = Mbps).
  [[nodiscard]] double peak_rate() const noexcept { return peak_; }

  /// Effective-bandwidth bound eb(s) (kb per slot) via the spectral
  /// radius of the rate-weighted kernel.  Monotone non-decreasing in s,
  /// with eb(0+) = mean_rate() and eb(inf) = peak_rate().
  /// @throws std::invalid_argument unless s > 0.
  [[nodiscard]] double effective_bandwidth(double s) const;

  /// Structure-of-arrays batch form of effective_bandwidth: evaluates
  /// eb at every s[i] into out[i].  The transcendentals (exp, log) stay
  /// scalar per lane -- vectorized libm variants are not bit-identical --
  /// while the connecting spectral-radius algebra (+, *, /, sqrt, IEEE
  /// exact) runs under `#pragma omp simd` when `use_simd`.  Either way
  /// every out[i] is bit-identical to effective_bandwidth(s[i]).
  /// @throws std::invalid_argument unless sizes match and every s > 0.
  void effective_bandwidth_batch(std::span<const double> s,
                                 std::span<double> out,
                                 bool use_simd = true) const;

  /// EBB description (Eq. (27)) of an aggregate of `n` i.i.d. copies of
  /// this source, for Chernoff parameter s:  A ~ (1, n * eb(s), s).
  /// @throws std::invalid_argument unless n >= 1 and s > 0.
  [[nodiscard]] EbbTraffic aggregate_ebb(int n, double s) const;

 private:
  double peak_;
  double p11_;
  double p22_;
};

}  // namespace deltanc::traffic
