// Memoized effective-bandwidth evaluation for the parameter search.
//
// The nested search of e2e/param_search re-evaluates eb(s) many times at
// the *same* s values: every gamma evaluation inside best_over_gamma uses
// the PathParams built from one s, and the EDF fixed point revisits the
// same coarse-scan s grid on every iteration.  eb(s) itself costs an
// exp/log/sqrt chain per call, so caching exact-key repeats removes the
// bulk of the traffic-model work without perturbing any value: a hit
// returns the identical double that the miss computed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "traffic/mmoo.h"

namespace deltanc::traffic {

/// Exact-match memo over MmooSource::effective_bandwidth.  Keys are the
/// raw double s values (no rounding, no tolerance), so memoized results
/// are bit-identical to direct evaluation.  Not thread-safe; intended as
/// a per-search scratch object.
class EffectiveBandwidthMemo {
 public:
  explicit EffectiveBandwidthMemo(const MmooSource& source)
      : source_(source) {}

  /// eb(s), from the cache when s has been seen before.
  /// @throws std::invalid_argument unless s > 0 (as effective_bandwidth).
  double operator()(double s);

  /// Batch lookup (structure of arrays): fills out[i] = eb(s[i]) for the
  /// whole span, serving repeats from the cache and evaluating the misses
  /// together through MmooSource::effective_bandwidth_batch (SIMD algebra
  /// when `use_simd`; the scalar reference path otherwise).  Every out[i]
  /// is bit-identical to operator()(s[i]) in either mode.
  /// @returns the number of cache misses in this call.
  std::size_t gather(std::span<const double> s, std::span<double> out,
                     bool use_simd = true);

  /// Number of cache misses == distinct s values actually evaluated.
  [[nodiscard]] std::int64_t misses() const noexcept { return misses_; }
  /// Number of cache hits (evaluations saved).
  [[nodiscard]] std::int64_t hits() const noexcept { return hits_; }

  /// The memoized (s, eb(s)) pairs, sorted by s.  Exposed so a warm-start
  /// state can carry the memo across solves of scenarios that share a
  /// source (the values depend only on the source, so re-adopting them is
  /// bit-exact).
  [[nodiscard]] const std::vector<std::pair<double, double>>& entries()
      const noexcept {
    return entries_;
  }

  /// Seeds the memo from a previously exported entries() snapshot.  The
  /// caller asserts the snapshot was produced for an identical source;
  /// adopted pairs behave exactly like locally computed ones (hits on
  /// adopted keys return the identical double a miss would compute).
  void adopt(std::vector<std::pair<double, double>> entries) {
    entries_ = std::move(entries);
  }

 private:
  // A sorted vector beats a hash map at the sizes seen here (tens to a
  // few hundred distinct keys): lookups are a branch-light binary search
  // and the storage is two contiguous allocations.
  static constexpr std::size_t kMaxEntries = 4096;

  const MmooSource& source_;
  std::vector<std::pair<double, double>> entries_;  ///< sorted by s
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace deltanc::traffic
