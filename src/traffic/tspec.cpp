#include "traffic/tspec.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "nc/minplus_ops.h"

namespace deltanc::traffic {

TSpec::TSpec(double peak_rate, double max_packet_kb, double sustained_rate,
             double burst_kb)
    : p_(peak_rate), m_(max_packet_kb), r_(sustained_rate), b_(burst_kb) {
  if (!(sustained_rate >= 0.0) || !(peak_rate >= sustained_rate)) {
    throw std::invalid_argument("TSpec: need 0 <= r <= p");
  }
  if (!(max_packet_kb >= 0.0) || !(burst_kb >= max_packet_kb)) {
    throw std::invalid_argument("TSpec: need 0 <= M <= b");
  }
}

nc::Curve TSpec::envelope() const {
  const std::vector<std::pair<double, double>> buckets{{p_, m_}, {r_, b_}};
  return nc::Curve::multi_leaky_bucket(buckets);
}

double TSpec::crossover_time() const noexcept {
  if (p_ <= r_) return std::numeric_limits<double>::infinity();
  return (b_ - m_) / (p_ - r_);
}

TSpec TSpec::aggregate(int n) const {
  if (n < 1) throw std::invalid_argument("TSpec::aggregate: n must be >= 1");
  return TSpec(n * p_, n * m_, n * r_, n * b_);
}

double TSpec::max_backlog_against(double service_rate) const {
  if (!(service_rate > 0.0)) {
    throw std::invalid_argument("TSpec: service rate must be > 0");
  }
  return nc::vertical_deviation(envelope(), nc::Curve::rate(service_rate));
}

}  // namespace deltanc::traffic
