// General finite-state Markov-modulated traffic.
//
// The paper's numerical examples use a 2-state on-off chain; the EBB
// machinery only needs an effective-bandwidth bound, which exists for any
// finite Markov-modulated source (Chang):
//
//   eb(s) = (1/s) log sprad( P * diag(e^{s r}) ),
//
// where P is the transition matrix and r the per-state emission vector.
// This module provides that bound (via power iteration on the positive
// matrix), stationary statistics, and the EBB description of an i.i.d.
// aggregate -- so richer workloads (e.g. 3-state voice/video models) can
// be pushed through the Section-IV analysis unchanged.
#pragma once

#include <vector>

#include "traffic/ebb.h"

namespace deltanc::traffic {

/// A discrete-time Markov-modulated source over a finite state space:
/// while in state i the source emits `rates[i]` kb per slot.
class MarkovSource {
 public:
  /// @param transition  row-stochastic matrix P (P[i][j] = P(i -> j))
  /// @param rates       per-state emission (kb per slot), all >= 0
  /// @throws std::invalid_argument for malformed matrices (non-square,
  ///   rows not summing to 1, negative entries) or rate vectors.
  MarkovSource(std::vector<std::vector<double>> transition,
               std::vector<double> rates);

  /// The paper's on-off source as the 2-state special case
  /// (state 0 = OFF, state 1 = ON emitting peak_kb).
  static MarkovSource on_off(double peak_kb, double p11, double p22);

  [[nodiscard]] std::size_t states() const noexcept { return rates_.size(); }
  [[nodiscard]] const std::vector<std::vector<double>>& transition()
      const noexcept {
    return p_;
  }
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }

  /// Stationary distribution (power iteration; the chain is assumed
  /// irreducible -- a standing assumption for traffic models).
  [[nodiscard]] std::vector<double> stationary() const;

  /// Long-run mean rate sum_i pi_i r_i (kb per slot).
  [[nodiscard]] double mean_rate() const;
  /// Largest per-state rate.
  [[nodiscard]] double peak_rate() const noexcept;

  /// Effective-bandwidth bound eb(s) = (1/s) log sprad(P diag(e^{s r})),
  /// computed stably in log space.  Monotone non-decreasing in s with
  /// eb(0+) = mean_rate() and eb(inf) -> peak-rate-recurrent-class rate.
  /// @throws std::invalid_argument unless s > 0.
  [[nodiscard]] double effective_bandwidth(double s) const;

  /// EBB description of `n` i.i.d. copies: A ~ (1, n * eb(s), s).
  [[nodiscard]] EbbTraffic aggregate_ebb(int n, double s) const;

 private:
  std::vector<std::vector<double>> p_;
  std::vector<double> rates_;
};

}  // namespace deltanc::traffic
