#include "traffic/ebb.h"

#include <cmath>
#include <stdexcept>

namespace deltanc::traffic {

EbbTraffic::EbbTraffic(double m, double rho, double alpha)
    : m_(m), rho_(rho), alpha_(alpha) {
  if (!(m >= 1.0) || !std::isfinite(m)) {
    throw std::invalid_argument("EbbTraffic: M must be >= 1 and finite");
  }
  if (!(rho >= 0.0) || !std::isfinite(rho)) {
    throw std::invalid_argument("EbbTraffic: rho must be >= 0 and finite");
  }
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument("EbbTraffic: alpha must be > 0 and finite");
  }
}

double EbbTraffic::interval_tail(double sigma) const noexcept {
  return nc::ExpBound(m_, alpha_).eval(sigma);
}

StatEnvelope EbbTraffic::sample_path_envelope(double gamma) const {
  if (!(gamma > 0.0)) {
    throw std::invalid_argument(
        "EbbTraffic::sample_path_envelope: gamma must be > 0");
  }
  return StatEnvelope{
      nc::Curve::rate(rho_ + gamma),
      nc::geometric_tail(nc::ExpBound(m_, alpha_), gamma)};
}

EbbTraffic EbbTraffic::aggregate_with(const EbbTraffic& other) const {
  if (std::abs(alpha_ - other.alpha_) > 1e-12 * alpha_) {
    throw std::invalid_argument(
        "EbbTraffic::aggregate_with: decay parameters must match");
  }
  return EbbTraffic(m_ * other.m_, rho_ + other.rho_, alpha_);
}

nc::Curve EbbTraffic::deterministic_envelope() const {
  return nc::Curve::leaky_bucket(rho_, std::log(m_) / alpha_);
}

}  // namespace deltanc::traffic
