// Schema-versioned JSON codec for the library's value types: scenarios,
// sweep grids, solve results (with their stats and diagnostics), and
// whole sweep reports round-trip through io::json::Value losslessly --
// doubles bit-exactly (including +/-inf and NaN), enums by their stable
// string names.
//
// Versioning: every top-level document (scenario file, grid file, report
// file, cache entry, batch request/response) carries a "schema" field
// equal to kSchemaVersion.  Decoders reject documents with a different
// schema (SchemaError), which is what lets the persistent cache
// invalidate itself automatically when the wire format changes; nested
// values (a scenario inside a report) carry no redundant schema field.
//
// Canonicalization: encoders emit fields in a fixed documented order and
// the compact dump() is byte-stable for a given input, so
// solve_cache_key() -- the compact dump of (schema, scenario, solve
// options) -- is a canonical content hash input.  The library version is
// deliberately NOT part of the key: the cache stores it per entry and
// classifies version mismatches as *stale* (observable, re-solved,
// overwritten) rather than burying them as silent misses.
#pragma once

#include <optional>
#include <span>

#include "core/sweep.h"
#include "e2e/solver.h"
#include "io/json.h"

namespace deltanc::io {

/// Version of the wire format produced by the encoders below.  Bump on
/// any change that alters the meaning or layout of encoded documents;
/// cached results from other schema versions are re-solved.
/// History: 1 = scheduler as bare kind name + top-level scenario "edf"
/// object; 2 = scheduler as a full SchedulerSpec object {kind, delta,
/// edf} (the "edf" factors moved inside it); 3 = scheduler object gains
/// the "params" class-weight array (curve-backed kinds gps/drr/sced);
/// 4 = solve options gain "warm_start"; 5 = cache keys gain a "kind"
/// discriminator ("solve" / "profile") and delay-profile documents
/// (epsilons, levels, stats with the profile_* counters) join the wire
/// format.
inline constexpr int kSchemaVersion = 5;

/// A structurally valid JSON document that does not decode as the
/// requested type (missing/mistyped fields, unknown enum names, bad
/// schema).  SchemaError is the "wrong schema version" special case.
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct SchemaError : CodecError {
  using CodecError::CodecError;
};

// ----- doubles (bit-exact, non-finite-safe) ------------------------------

/// Finite doubles encode as JSON numbers (17 significant digits: parses
/// back to the identical bits); +/-inf and NaN encode as the strings
/// "inf" / "-inf" / "nan".
[[nodiscard]] json::Value encode_double(double v);
/// Accepts numbers plus the non-finite strings above; also accepts any
/// strtod-parseable string (e.g. C99 hexfloat "0x1.6p+4") so hand-written
/// documents can pin exact bits.  @throws CodecError otherwise.
[[nodiscard]] double decode_double(const json::Value& v);

// ----- value types -------------------------------------------------------

// Field orders (canonical):
//   Scenario:   capacity, hops, source{peak_kb, p11, p22}, n_through,
//               n_cross, epsilon,
//               scheduler{kind, delta, edf{own_factor, cross_factor}}
//   SolveStats: optimize_evals, eb_evals, sigma_evals, edf_iterations,
//               edf_converged, retries, fallbacks, scan_ms, refine_ms,
//               cache_hits, cache_misses, cache_stale, batched_evals,
//               warm_start_hits, brackets_reused, profile_levels,
//               profile_chain_hits
//   Diagnostics: error, message, warnings[{kind, message}]
//   BoundResult: delay_ms, gamma, s, sigma, delta, stats, diagnostics
//   SweepPoint:  scenario, bound, solve_ms, ok, error
// Decoders tolerate *absent* optional fields (stats/diagnostics default)
// but reject mistyped or unknown-enum values.

[[nodiscard]] json::Value encode_scenario(const e2e::Scenario& sc);
[[nodiscard]] e2e::Scenario decode_scenario(const json::Value& v);

[[nodiscard]] json::Value encode_solve_stats(const e2e::SolveStats& stats);
[[nodiscard]] e2e::SolveStats decode_solve_stats(const json::Value& v);

[[nodiscard]] json::Value encode_diagnostics(const diag::Diagnostics& d);
[[nodiscard]] diag::Diagnostics decode_diagnostics(const json::Value& v);

[[nodiscard]] json::Value encode_bound_result(const e2e::BoundResult& r);
[[nodiscard]] e2e::BoundResult decode_bound_result(const json::Value& v);

/// Delay profile d(epsilon): canonical fields "epsilons" (array of
/// bit-exact doubles), "levels" (array of BoundResult objects, same
/// length, levels[i] solves epsilons[i]) and "stats" (the aggregate,
/// including profile_levels / profile_chain_hits).  The decoder rejects
/// mismatched epsilons/levels lengths.
[[nodiscard]] json::Value encode_delay_profile(const e2e::DelayProfile& p);
[[nodiscard]] e2e::DelayProfile decode_delay_profile(const json::Value& v);

[[nodiscard]] json::Value encode_sweep_point(const SweepPoint& p);
[[nodiscard]] SweepPoint decode_sweep_point(const json::Value& v);

/// Top-level document ("schema", "threads", "wall_ms", "solve_ms",
/// "stats", "points").
[[nodiscard]] json::Value encode_sweep_report(const SweepReport& report);
[[nodiscard]] SweepReport decode_sweep_report(const json::Value& v);

/// Top-level document ("schema", "base", "axes": [{name, values}]).
/// Axis values are the raw ones given to the *_axis calls (utilization
/// axes keep their fractions), so decoding replays the same calls on the
/// same base and reproduces every grid point bit-for-bit.
[[nodiscard]] json::Value encode_sweep_grid(const SweepGrid& grid);
[[nodiscard]] SweepGrid decode_sweep_grid(const json::Value& v);

// ----- solve options and the cache key -----------------------------------

/// Canonical fields: method, scheduler (or null), delta (or null),
/// max_edf_restarts.  reuse_workspace is intentionally excluded: it
/// cannot change any result bit, so it must not fragment the cache.
[[nodiscard]] json::Value encode_solve_options(const SolveOptions& options);
[[nodiscard]] SolveOptions decode_solve_options(const json::Value& v);

/// The canonical cache key for "this scenario solved with these
/// options": the compact dump of {"kind": "solve", "scenario",
/// "options"} with the scheduler override already folded into the
/// scenario.  Two solves get the same key iff the codec cannot
/// distinguish their inputs.  The "kind" discriminator (since v5) keeps
/// scalar and profile entries in disjoint key spaces.  The schema
/// version is deliberately NOT part of the key (since v2): the cache
/// stores it per entry and classifies mismatches as *stale*; a schema
/// inside the key would silently change every file name on a bump and
/// bury old entries as misses.
[[nodiscard]] std::string solve_cache_key(const e2e::Scenario& sc,
                                          const SolveOptions& options);

/// The canonical cache key for "this scenario's delay profile over this
/// epsilon grid under these options": the compact dump of {"kind":
/// "profile", "scenario", "options", "epsilons"} with the scenario's own
/// epsilon canonicalized to the first grid level (a profile solves the
/// grid, never the scenario's scalar epsilon, so two scenarios differing
/// only there must share the entry).  Epsilons keep their order: the
/// levels are positional.
[[nodiscard]] std::string profile_cache_key(const e2e::Scenario& sc,
                                            std::span<const double> epsilons,
                                            const SolveOptions& options);

/// The byte-exact schema-1 cache key the pre-SchedulerSpec codec would
/// have produced for the same solve ({"schema":1, "scenario":{...,
/// "scheduler":"<kind name>", "edf":{...}}, "options":{...}}), used by
/// ResultCache to classify pre-refactor entries as stale instead of
/// missing them.  nullopt when the solve has no schema-1 spelling (an
/// explicit fixed-Delta scheduler, or any curve-backed kind).
[[nodiscard]] std::optional<std::string> legacy_v1_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options);

/// The byte-exact schema-2 cache key for the same solve: identical to
/// solve_cache_key() except the scheduler objects carry no "params"
/// array.  Probed by ResultCache so schema-2 entries classify as stale
/// (observable, re-solved, overwritten) rather than as misses.  nullopt
/// when the solve has no schema-2 spelling (a curve-backed scheduler --
/// gps/drr/sced did not exist before schema 3).
[[nodiscard]] std::optional<std::string> legacy_v2_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options);

/// The byte-exact schema-3 cache key for the same solve: identical to
/// solve_cache_key() but without the "warm_start" options field (which
/// did not exist before schema 4).  Probed by ResultCache so schema-3
/// entries classify as stale (kStale) instead of invisibly missing.
/// nullopt when the solve has no schema-3 spelling (a warm-started
/// solve -- warm-starting did not exist before schema 4, and its result
/// need not be bit-identical to the cold entry's).
[[nodiscard]] std::optional<std::string> legacy_v3_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options);

/// The byte-exact schema-4 cache key for the same solve: identical to
/// solve_cache_key() but without the "kind" discriminator (which did not
/// exist before schema 5).  Probed first in ResultCache's legacy chain
/// so schema-4 entries classify as stale (kStale) instead of invisibly
/// missing.  Every scalar solve had a schema-4 spelling, so this never
/// returns nullopt; the optional return keeps the legacy-probe API
/// uniform.  Profiles have no legacy spelling at all (they are new in
/// schema 5), so no profile counterpart exists.
[[nodiscard]] std::optional<std::string> legacy_v4_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options);

// ----- helpers shared by the cache / batch layers ------------------------

/// @throws SchemaError unless v is an object whose "schema" equals
/// kSchemaVersion.
void require_schema(const json::Value& v);

/// Scheduler identity <-> JSON.  Encodes the full spec as an object
/// {"kind": "<name>", "delta": <double>, "edf": {"own_factor",
/// "cross_factor"}, "params": [<w>, ...]}; every field is always emitted
/// so the compact dump is byte-stable.  The decoder also accepts the
/// canonical name strings ("fifo", ..., "delta:<value>", "gps:1,2") for
/// hand-written documents and the schema-1/2 object forms (absent
/// "params" means the default equal two-class split).  An unknown kind
/// name throws SchemaError -- a newer producer's registry, not
/// corruption -- so the cache classifies such entries as stale.
[[nodiscard]] json::Value encode_scheduler(const sched::SchedulerSpec& s);
[[nodiscard]] sched::SchedulerSpec decode_scheduler(const json::Value& v);

[[nodiscard]] json::Value encode_method(e2e::Method m);
[[nodiscard]] e2e::Method decode_method(const json::Value& v);

}  // namespace deltanc::io
