#include "io/result_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "deltanc/version.h"

namespace deltanc::io {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

CacheStats& CacheStats::operator+=(const CacheStats& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  stale += other.stale;
  corrupt += other.corrupt;
  stores += other.stores;
  store_failures += other.store_failures;
  return *this;
}

ResultCache::ResultCache(std::filesystem::path dir)
    : ResultCache(std::move(dir), CacheShard{}) {}

ResultCache::ResultCache(std::filesystem::path dir, CacheShard shard)
    : dir_(std::move(dir)), shard_(shard) {
  if (shard_.count < 1 || shard_.index < 0 || shard_.index >= shard_.count) {
    throw std::invalid_argument("result cache: malformed shard " +
                                std::to_string(shard_.index) + " of " +
                                std::to_string(shard_.count));
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("result cache: cannot create directory " +
                             dir_.string() +
                             (ec ? ": " + ec.message() : std::string()));
  }
}

int ResultCache::shard_of(std::string_view key, int shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // Top byte of the hash = the first two hex digits of the entry file
  // name, so each shard owns a contiguous *prefix* range of the
  // directory listing.
  const std::uint64_t prefix = fnv1a64(key) >> 56;
  return static_cast<int>(prefix * static_cast<std::uint64_t>(shard_count) /
                          256);
}

std::filesystem::path ResultCache::directory_from_env(
    std::filesystem::path fallback) {
  const char* env = std::getenv("DELTANC_CACHE_DIR");
  if (env != nullptr && *env != '\0') return std::filesystem::path(env);
  return fallback;
}

std::filesystem::path ResultCache::entry_path(std::string_view key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.json",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ / name;
}

namespace {

/// Shared classification body of the scalar and profile entry readers:
/// `decode_payload` pulls the type-specific payload out of a structurally
/// valid, schema-current, key-matching entry.
template <typename DecodePayload>
CacheLookup classify_entry(const std::filesystem::path& path,
                           const std::string& key,
                           DecodePayload&& decode_payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CacheLookup::kMiss;
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) return CacheLookup::kCorrupt;
  try {
    const json::Value entry = json::Value::parse(text.str());
    // Schema or library version drift makes the entry stale, not corrupt:
    // the bytes are fine, the producer was just a different build.
    const json::Value* schema = entry.is_object() ? entry.find("schema") : nullptr;
    if (schema == nullptr || !schema->is_number() ||
        schema->as_number() != kSchemaVersion ||
        entry.at("version").as_string() != DELTANC_VERSION_STRING) {
      return CacheLookup::kStale;
    }
    // The stored full key disambiguates FNV collisions: a different key
    // in the same slot is somebody else's entry, i.e. a miss.
    if (entry.at("key").as_string() != key) return CacheLookup::kMiss;
    decode_payload(entry);
  } catch (const json::ParseError&) {
    return CacheLookup::kCorrupt;
  } catch (const json::TypeError&) {
    return CacheLookup::kCorrupt;
  } catch (const SchemaError&) {
    // A decoder rejected an enum name or layout this build does not know
    // -- a different producer, not bit rot.
    return CacheLookup::kStale;
  } catch (const CodecError&) {
    return CacheLookup::kCorrupt;
  }
  return CacheLookup::kHit;
}

}  // namespace

CacheLookup ResultCache::read_entry(const std::filesystem::path& path,
                                    const std::string& key,
                                    e2e::BoundResult& result) const {
  return classify_entry(path, key, [&](const json::Value& entry) {
    result = decode_bound_result(entry.at("result"));
  });
}

CacheLookup ResultCache::read_profile_entry(const std::filesystem::path& path,
                                            const std::string& key,
                                            e2e::DelayProfile& profile) const {
  return classify_entry(path, key, [&](const json::Value& entry) {
    profile = decode_delay_profile(entry.at("profile"));
  });
}

void ResultCache::count(CacheLookup outcome) noexcept {
  switch (outcome) {
    case CacheLookup::kHit:
      ++stats_.hits;
      return;
    case CacheLookup::kMiss:
      ++stats_.misses;
      return;
    case CacheLookup::kStale:
      ++stats_.stale;
      return;
    case CacheLookup::kCorrupt:
      ++stats_.corrupt;
      return;
  }
}

CacheLookup ResultCache::lookup(const std::string& key,
                                e2e::BoundResult& result) {
  const CacheLookup outcome = read_entry(entry_path(key), key, result);
  count(outcome);
  return outcome;
}

CacheLookup ResultCache::lookup(const e2e::Scenario& sc,
                                const SolveOptions& options,
                                e2e::BoundResult& result) {
  const std::string key = solve_cache_key(sc, options);
  CacheLookup outcome = read_entry(entry_path(key), key, result);
  if (outcome == CacheLookup::kMiss) {
    // Nothing under the current key: probe the byte-exact schema-4,
    // schema-3, schema-2, and schema-1 slots of the same solve (their
    // keys hash to different file names).  Any entry there -- whatever
    // its state -- is a pre-refactor artifact of this exact solve:
    // classify it stale so the re-solve is observable, never serve bits
    // from it.
    for (const std::optional<std::string>& legacy :
         {legacy_v4_solve_cache_key(sc, options),
          legacy_v3_solve_cache_key(sc, options),
          legacy_v2_solve_cache_key(sc, options),
          legacy_v1_solve_cache_key(sc, options)}) {
      if (legacy.has_value() &&
          std::filesystem::exists(entry_path(*legacy))) {
        outcome = CacheLookup::kStale;
        break;
      }
    }
  }
  count(outcome);
  return outcome;
}

CacheLookup ResultCache::lookup_profile(const std::string& key,
                                        e2e::DelayProfile& profile) {
  const CacheLookup outcome =
      read_profile_entry(entry_path(key), key, profile);
  count(outcome);
  return outcome;
}

CacheLookup ResultCache::lookup_profile(const e2e::Scenario& sc,
                                        std::span<const double> epsilons,
                                        const SolveOptions& options,
                                        e2e::DelayProfile& profile) {
  // Profiles are new in schema 5: no legacy slots to probe.
  return lookup_profile(profile_cache_key(sc, epsilons, options), profile);
}

void ResultCache::store(const std::string& key,
                        const e2e::BoundResult& result) {
  write_entry(key, "result", encode_bound_result(result));
}

void ResultCache::store_profile(const std::string& key,
                                const e2e::DelayProfile& profile) {
  write_entry(key, "profile", encode_delay_profile(profile));
}

void ResultCache::write_entry(const std::string& key,
                              const char* payload_field,
                              json::Value payload) {
  json::Value entry = json::Value::object();
  entry.set("schema", json::Value::number(kSchemaVersion))
      .set("version", json::Value::string(DELTANC_VERSION_STRING))
      .set("key", json::Value::string(key))
      .set(payload_field, std::move(payload));

  const std::filesystem::path path = entry_path(key);
  std::filesystem::path tmp = path;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << entry.dump() << '\n';
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("result cache: cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("result cache: cannot publish " + path.string());
  }
  ++stats_.stores;
}

bool ResultCache::try_store(const std::string& key,
                            const e2e::BoundResult& result) noexcept {
  if (injected_store_failures_ > 0) {
    --injected_store_failures_;
    ++stats_.store_failures;
    return false;
  }
  try {
    store(key, result);
    return true;
  } catch (...) {
    ++stats_.store_failures;
    return false;
  }
}

bool ResultCache::try_store_profile(const std::string& key,
                                    const e2e::DelayProfile& profile) noexcept {
  if (injected_store_failures_ > 0) {
    --injected_store_failures_;
    ++stats_.store_failures;
    return false;
  }
  try {
    store_profile(key, profile);
    return true;
  } catch (...) {
    ++stats_.store_failures;
    return false;
  }
}

}  // namespace deltanc::io
