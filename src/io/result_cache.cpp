#include "io/result_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "deltanc/version.h"

namespace deltanc::io {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

CacheStats& CacheStats::operator+=(const CacheStats& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  stale += other.stale;
  corrupt += other.corrupt;
  stores += other.stores;
  return *this;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("result cache: cannot create directory " +
                             dir_.string() +
                             (ec ? ": " + ec.message() : std::string()));
  }
}

std::filesystem::path ResultCache::directory_from_env(
    std::filesystem::path fallback) {
  const char* env = std::getenv("DELTANC_CACHE_DIR");
  if (env != nullptr && *env != '\0') return std::filesystem::path(env);
  return fallback;
}

std::filesystem::path ResultCache::entry_path(std::string_view key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.json",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ / name;
}

CacheLookup ResultCache::lookup(const std::string& key,
                                e2e::BoundResult& result) {
  const std::filesystem::path path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++stats_.misses;
    return CacheLookup::kMiss;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    ++stats_.corrupt;
    return CacheLookup::kCorrupt;
  }
  try {
    const json::Value entry = json::Value::parse(text.str());
    // Schema or library version drift makes the entry stale, not corrupt:
    // the bytes are fine, the producer was just a different build.
    const json::Value* schema = entry.is_object() ? entry.find("schema") : nullptr;
    if (schema == nullptr || !schema->is_number() ||
        schema->as_number() != kSchemaVersion ||
        entry.at("version").as_string() != DELTANC_VERSION_STRING) {
      ++stats_.stale;
      return CacheLookup::kStale;
    }
    // The stored full key disambiguates FNV collisions: a different key
    // in the same slot is somebody else's entry, i.e. a miss.
    if (entry.at("key").as_string() != key) {
      ++stats_.misses;
      return CacheLookup::kMiss;
    }
    result = decode_bound_result(entry.at("result"));
  } catch (const json::ParseError&) {
    ++stats_.corrupt;
    return CacheLookup::kCorrupt;
  } catch (const json::TypeError&) {
    ++stats_.corrupt;
    return CacheLookup::kCorrupt;
  } catch (const CodecError&) {
    ++stats_.corrupt;
    return CacheLookup::kCorrupt;
  }
  ++stats_.hits;
  return CacheLookup::kHit;
}

void ResultCache::store(const std::string& key,
                        const e2e::BoundResult& result) {
  json::Value entry = json::Value::object();
  entry.set("schema", json::Value::number(kSchemaVersion))
      .set("version", json::Value::string(DELTANC_VERSION_STRING))
      .set("key", json::Value::string(key))
      .set("result", encode_bound_result(result));

  const std::filesystem::path path = entry_path(key);
  std::filesystem::path tmp = path;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << entry.dump() << '\n';
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("result cache: cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("result cache: cannot publish " + path.string());
  }
  ++stats_.stores;
}

}  // namespace deltanc::io
