#include "io/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace deltanc::io::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw TypeError(std::string("json: expected ") + want + ", got " +
                  kNames[static_cast<std::size_t>(got)]);
}

/// Shortest-faithful number rendering: integers up to 2^53 print without
/// an exponent or trailing ".0" (so counts look like counts), everything
/// else prints with max_digits10 = 17 significant digits, which strtod
/// parses back to the identical double.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(
        "json: cannot serialize a non-finite number; encode it as a string "
        "(\"inf\"/\"-inf\"/\"nan\") at the codec layer");
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const Value& v, int indent, int depth);

void append_newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void append_array(std::string& out, const std::vector<Value>& items,
                  int indent, int depth) {
  if (items.empty()) {
    out += "[]";
    return;
  }
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    append_newline(out, indent, depth + 1);
    append_value(out, items[i], indent, depth + 1);
  }
  append_newline(out, indent, depth);
  out += ']';
}

void append_object(std::string& out, const Members& members, int indent,
                   int depth) {
  if (members.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += ',';
    append_newline(out, indent, depth + 1);
    append_quoted(out, members[i].first);
    out += ':';
    if (indent >= 0) out += ' ';
    append_value(out, members[i].second, indent, depth + 1);
  }
  append_newline(out, indent, depth);
  out += '}';
}

void append_value(std::string& out, const Value& v, int indent, int depth) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      return;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Value::Type::kNumber:
      append_number(out, v.as_number());
      return;
    case Value::Type::kString:
      append_quoted(out, v.as_string());
      return;
    case Value::Type::kArray:
      append_array(out, v.items(), indent, depth);
      return;
    case Value::Type::kObject:
      append_object(out, v.members(), indent, depth);
      return;
  }
}

/// Recursive-descent parser over a string_view, tracking line/column for
/// error messages.  Depth-limited so adversarial input (the cache reads
/// files an operator may hand-edit) cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what, line_, pos_ - line_start_ + 1);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      take();
    }
  }

  void expect_literal(std::string_view literal) {
    for (const char c : literal) {
      if (eof() || take() != c) {
        fail("invalid literal (expected '" + std::string(literal) + "')");
      }
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 128 levels");
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return Value::null();
      case 't':
        expect_literal("true");
        return Value::boolean(true);
      case 'f':
        expect_literal("false");
        return Value::boolean(false);
      case '"':
        return Value::string(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    if (eof() || !(peek() >= '0' && peek() <= '9')) fail("invalid number");
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-')) {
      take();
    }
    // std::from_chars never consults the C locale's decimal point, so
    // documents parse identically under any LC_NUMERIC setting.
    const std::string_view token = text_.substr(start, pos_ - start);
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(
        token.data(), token.data() + token.size(), v,
        std::chars_format::general);
    if (ec == std::errc::result_out_of_range) fail("number out of double range");
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    if (!std::isfinite(v)) fail("number out of double range");
    return Value::number(v);
  }

  std::string parse_string() {
    take();  // opening quote
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  /// Encodes one BMP code point (surrogate pairs are combined when the
  /// low half follows immediately; a lone surrogate becomes U+FFFD).
  void append_utf8(std::string& out, unsigned code) {
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: look for \uDC00..\uDFFF right after.
      if (pos_ + 1 < text_.size() && peek() == '\\' &&
          text_[pos_ + 1] == 'u') {
        const std::size_t save = pos_;
        take();
        take();
        const unsigned low = parse_hex4();
        if (low >= 0xDC00 && low <= 0xDFFF) {
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else {
          pos_ = save;
          code = 0xFFFD;
        }
      } else {
        code = 0xFFFD;
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      code = 0xFFFD;  // lone low surrogate
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_array(int depth) {
    take();  // '['
    Value out = Value::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      take();
      return out;
    }
    for (;;) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated array");
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Value parse_object(int depth) {
    take();  // '{'
    Value out = Value::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      take();
      return out;
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_whitespace();
      if (eof() || take() != ':') fail("expected ':' after object key");
      out.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated object");
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&storage_)) return *b;
  type_error("bool", type());
}

double Value::as_number() const {
  if (const double* d = std::get_if<double>(&storage_)) return *d;
  type_error("number", type());
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&storage_)) return *s;
  type_error("string", type());
}

Value& Value::push_back(Value element) {
  if (is_null()) storage_ = std::vector<Value>();
  if (auto* a = std::get_if<std::vector<Value>>(&storage_)) {
    a->push_back(std::move(element));
    return *this;
  }
  type_error("array", type());
}

const std::vector<Value>& Value::items() const {
  if (const auto* a = std::get_if<std::vector<Value>>(&storage_)) return *a;
  type_error("array", type());
}

std::size_t Value::size() const {
  if (const auto* a = std::get_if<std::vector<Value>>(&storage_)) {
    return a->size();
  }
  if (const auto* o = std::get_if<Members>(&storage_)) return o->size();
  type_error("array or object", type());
}

const Value& Value::at(std::size_t index) const { return items().at(index); }

Value& Value::set(std::string key, Value element) {
  if (is_null()) storage_ = Members();
  if (auto* o = std::get_if<Members>(&storage_)) {
    for (auto& [k, v] : *o) {
      if (k == key) {
        v = std::move(element);
        return *this;
      }
    }
    o->emplace_back(std::move(key), std::move(element));
    return *this;
  }
  type_error("object", type());
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw TypeError("json: missing key \"" + std::string(key) + "\"");
}

const Members& Value::members() const {
  if (const auto* o = std::get_if<Members>(&storage_)) return *o;
  type_error("object", type());
}

std::string Value::dump(int indent) const {
  std::string out;
  append_value(out, *this, indent, 0);
  return out;
}

Value Value::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace deltanc::io::json
