// Content-addressed persistent result cache for solved delay bounds.
//
// Keying: entries are addressed by the canonical cache key of
// io::solve_cache_key (the compact JSON dump of the effective scenario +
// solve options) hashed with 64-bit FNV-1a into the file name
// `<16 hex digits>.json` under the cache directory.  The full key string
// is stored *inside* each entry and compared on lookup, so a hash
// collision degrades to a miss, never to a wrong answer.
//
// Versioning: each entry records the library version
// (DELTANC_VERSION_STRING) and the wire schema it was written with.
// Neither is hashed into the key: a lookup that finds an entry from
// another library or schema version classifies it as *stale* --
// observable in CacheStats and in the per-result
// SolveStats::cache_stale counter -- re-solves, and overwrites, instead
// of silently missing and leaving dead files behind.  Older schemas
// keyed differently (schema 4 lacked the "kind" discriminator; schema 1
// hashed the schema version itself; schema 2 lacked the scheduler
// "params" array), so their file names differ from today's for the same
// solve; the (scenario, options) lookup overload probes the byte-exact
// schema-4 / -3 / -2 / -1 keys (io::legacy_v4_solve_cache_key and
// friends) when the primary slot is empty and classifies pre-refactor
// entries as stale too, never as wrong hits.
//
// Profiles: delay profiles (e2e::DelayProfile) are first-class entries
// addressed by io::profile_cache_key -- a disjoint key space thanks to
// the "kind" discriminator -- with the same staleness, doctoring, and
// atomic-store semantics as scalar entries.  Profiles are new in schema
// 5, so their lookups have no legacy chain to probe.
//
// Durability: stores write to `<name>.tmp.<pid>` in the cache directory
// and rename(2) into place, so concurrent writers and crashes can leave
// at worst a stray tmp file, never a torn entry.  An entry that fails to
// read or decode is classified kCorrupt (surfaced by the batch layer as
// a diag::kCorruptCache warning) and is overwritten by the re-solve.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>

#include "io/codec.h"

namespace deltanc::io {

/// 64-bit FNV-1a of `text` -- the content address behind entry file
/// names.  Stable across platforms and runs (unlike std::hash).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Outcome of one ResultCache::lookup.
enum class CacheLookup {
  kHit,      ///< entry present, same key, same schema + library version
  kMiss,     ///< no entry (or a hash collision with a different key)
  kStale,    ///< entry from another schema or library version
  kCorrupt,  ///< entry file exists but is unreadable or undecodable
};

/// Running totals of one ResultCache's traffic.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stale = 0;
  std::int64_t corrupt = 0;
  std::int64_t stores = 0;
  /// Stores that could not be written (read-only directory, full disk,
  /// or an injected fault): the caller solved through and kept serving.
  std::int64_t store_failures = 0;

  [[nodiscard]] std::int64_t lookups() const noexcept {
    return hits + misses + stale + corrupt;
  }
  CacheStats& operator+=(const CacheStats& other) noexcept;
};

/// One slice of the cache keyspace: shard `index` of `count` owns the
/// keys whose FNV file-name prefix falls in its contiguous range (see
/// ResultCache::shard_of).  The default (0 of 1) owns everything.
struct CacheShard {
  int index = 0;
  int count = 1;
};

/// Filesystem-backed store of BoundResults addressed by canonical solve
/// key.  Lookup/store are safe to call from one thread at a time per
/// ResultCache object; distinct processes sharing a directory are safe
/// against each other thanks to the atomic rename stores.
class ResultCache {
 public:
  /// Opens (and creates if needed) the cache directory.
  /// @throws std::runtime_error when the directory cannot be created.
  explicit ResultCache(std::filesystem::path dir);

  /// Shard-aware open: same directory layout (shards share one
  /// directory -- entries stay compatible with unsharded readers), but
  /// this handle records which contiguous slice of the FNV keyspace it
  /// serves.  Routing keys with shard_of() so that exactly one handle
  /// ever touches a given key is what makes per-worker caches safe to
  /// run lock-free against each other.
  /// @throws std::invalid_argument on a malformed shard (count < 1 or
  /// index outside [0, count)).
  ResultCache(std::filesystem::path dir, CacheShard shard);

  /// The shard owning `key` when the keyspace is split `shard_count`
  /// ways: contiguous ranges of the top byte of the FNV-1a hash (the
  /// first two hex digits of the entry file name), so shard i owns a
  /// prefix range of the directory listing.
  [[nodiscard]] static int shard_of(std::string_view key,
                                    int shard_count) noexcept;

  [[nodiscard]] const CacheShard& shard() const noexcept { return shard_; }

  /// True when `key` falls in this handle's shard.
  [[nodiscard]] bool owns(std::string_view key) const noexcept {
    return shard_of(key, shard_.count) == shard_.index;
  }

  /// The directory from DELTANC_CACHE_DIR, or `fallback` when the
  /// variable is unset or empty.
  [[nodiscard]] static std::filesystem::path directory_from_env(
      std::filesystem::path fallback);

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return dir_;
  }

  /// Entry file path for a canonical key (exposed for tests that doctor
  /// entries on disk).
  [[nodiscard]] std::filesystem::path entry_path(std::string_view key) const;

  /// Looks up `key`; fills `result` only on kHit.  Every outcome bumps
  /// the matching CacheStats counter.
  [[nodiscard]] CacheLookup lookup(const std::string& key,
                                   e2e::BoundResult& result);

  /// Looks up the solve described by (scenario, options) -- the
  /// preferred entry point: on a primary miss it additionally probes the
  /// schema-4 / -3 / -2 / -1 slots of the same solve and classifies a
  /// pre-refactor entry found there as kStale (re-solve and overwrite at
  /// the current key) instead of a silent miss.  Fills `result` only on
  /// kHit.
  [[nodiscard]] CacheLookup lookup(const e2e::Scenario& sc,
                                   const SolveOptions& options,
                                   e2e::BoundResult& result);

  /// Looks up a delay-profile entry by canonical profile key; fills
  /// `profile` only on kHit.  Profiles are new in schema 5: there is no
  /// legacy chain, so the two profile-lookup flavors classify
  /// identically.
  [[nodiscard]] CacheLookup lookup_profile(const std::string& key,
                                           e2e::DelayProfile& profile);

  /// Looks up the profile described by (scenario, epsilons, options).
  [[nodiscard]] CacheLookup lookup_profile(const e2e::Scenario& sc,
                                           std::span<const double> epsilons,
                                           const SolveOptions& options,
                                           e2e::DelayProfile& profile);

  /// Stores (overwriting any previous entry -- including stale and
  /// corrupt ones) via atomic tmp + rename.
  /// @throws std::runtime_error when the entry cannot be written.
  void store(const std::string& key, const e2e::BoundResult& result);

  /// Non-throwing store: a failed write (read-only directory, full
  /// disk, or a fail_next_stores fault) bumps
  /// CacheStats::store_failures and returns false so callers degrade to
  /// solve-through instead of aborting mid-batch.
  bool try_store(const std::string& key,
                 const e2e::BoundResult& result) noexcept;

  /// Profile counterparts of store/try_store: same atomic tmp + rename,
  /// same fault injection, entry payload under "profile" instead of
  /// "result".
  void store_profile(const std::string& key, const e2e::DelayProfile& profile);
  bool try_store_profile(const std::string& key,
                         const e2e::DelayProfile& profile) noexcept;

  /// Deterministic fault injection: the next `n` try_store calls fail
  /// (counted as store_failures) without touching the disk -- a
  /// full-disk simulation for tests and serve::FaultPlan.
  void fail_next_stores(int n) noexcept { injected_store_failures_ += n; }

  /// Convenience: lookup by (scenario, options); on anything but a hit,
  /// solves via `solve` and stores the result.  The returned result's
  /// stats carry exactly one of cache_hits/cache_misses/cache_stale = 1
  /// (kCorrupt counts as a miss there; the distinct outcome is reported
  /// through `outcome` and CacheStats).
  template <typename Solve>
  e2e::BoundResult solve_through(const e2e::Scenario& sc,
                                 const SolveOptions& options, Solve&& solve,
                                 CacheLookup* outcome = nullptr) {
    const std::string key = solve_cache_key(sc, options);
    e2e::BoundResult result;
    const CacheLookup found = lookup(sc, options, result);
    if (outcome != nullptr) *outcome = found;
    if (found == CacheLookup::kHit) {
      result.stats.cache_hits = 1;
      result.stats.cache_misses = 0;
      result.stats.cache_stale = 0;
      return result;
    }
    result = solve();
    // Persist with the outcome counters zeroed: they describe how one
    // particular answer was obtained, not the result itself.
    result.stats.cache_hits = 0;
    result.stats.cache_misses = 0;
    result.stats.cache_stale = 0;
    store(key, result);
    if (found == CacheLookup::kStale) {
      result.stats.cache_stale = 1;
    } else {
      result.stats.cache_misses = 1;
    }
    return result;
  }

  /// Profile counterpart of solve_through: lookup by (scenario,
  /// epsilons, options); on anything but a hit, solves the whole profile
  /// via `solve` and stores it.  The returned profile's aggregate stats
  /// carry exactly one of cache_hits/cache_misses/cache_stale = 1, same
  /// contract as the scalar flavor.
  template <typename Solve>
  e2e::DelayProfile solve_profile_through(const e2e::Scenario& sc,
                                          std::span<const double> epsilons,
                                          const SolveOptions& options,
                                          Solve&& solve,
                                          CacheLookup* outcome = nullptr) {
    const std::string key = profile_cache_key(sc, epsilons, options);
    e2e::DelayProfile profile;
    const CacheLookup found = lookup_profile(key, profile);
    if (outcome != nullptr) *outcome = found;
    if (found == CacheLookup::kHit) {
      profile.stats.cache_hits = 1;
      profile.stats.cache_misses = 0;
      profile.stats.cache_stale = 0;
      return profile;
    }
    profile = solve();
    profile.stats.cache_hits = 0;
    profile.stats.cache_misses = 0;
    profile.stats.cache_stale = 0;
    store_profile(key, profile);
    if (found == CacheLookup::kStale) {
      profile.stats.cache_stale = 1;
    } else {
      profile.stats.cache_misses = 1;
    }
    return profile;
  }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

 private:
  /// Classifies the entry at `path` against `key` without touching
  /// CacheStats (shared by both lookup flavors).
  [[nodiscard]] CacheLookup read_entry(const std::filesystem::path& path,
                                       const std::string& key,
                                       e2e::BoundResult& result) const;
  [[nodiscard]] CacheLookup read_profile_entry(
      const std::filesystem::path& path, const std::string& key,
      e2e::DelayProfile& profile) const;
  /// Shared store body: writes {"schema", "version", "key",
  /// <payload_field>: payload} via atomic tmp + rename.
  void write_entry(const std::string& key, const char* payload_field,
                   json::Value payload);
  void count(CacheLookup outcome) noexcept;

  std::filesystem::path dir_;
  CacheShard shard_{};
  CacheStats stats_;
  int injected_store_failures_ = 0;
};

}  // namespace deltanc::io
