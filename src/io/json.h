// Minimal self-contained JSON document model, parser, and writer -- the
// wire format of the serialization layer (io/codec.h), the persistent
// result cache (io/result_cache.h), and the batch service (io/batch.h).
// No third-party dependency: the container bakes in only the C++
// toolchain, and the subset of JSON we need (RFC 8259 documents with
// insertion-ordered objects) is small.
//
// Number fidelity: finite doubles are written with enough significant
// digits (max_digits10) to round-trip bit-exactly through the parser.
// JSON itself cannot represent +/-inf or NaN; the codec layer encodes
// those as the strings "inf" / "-inf" / "nan" (see io::decode_double,
// which also accepts C99 hexfloat strings for hand-written documents).
//
// Error handling: parse() throws ParseError with 1-based line/column;
// typed accessors (as_number() on a string, at() on a missing key) throw
// TypeError.  Both derive from std::runtime_error.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace deltanc::io::json {

class Value;

/// Object storage: insertion-ordered key/value pairs.  Order is
/// significant for canonicalization (the cache key hashes the dump), so
/// encoders must emit fields in a fixed order -- which insertion order
/// gives them for free.
using Members = std::vector<std::pair<std::string, Value>>;

/// Malformed JSON text.
struct ParseError : std::runtime_error {
  ParseError(const std::string& what, std::size_t line_in,
             std::size_t column_in)
      : std::runtime_error(what), line(line_in), column(column_in) {}
  std::size_t line;    ///< 1-based
  std::size_t column;  ///< 1-based
};

/// A well-formed document queried with the wrong type (or missing key).
struct TypeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One JSON value: null, bool, number (double), string, array, object.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  Value() = default;

  static Value null() { return Value(); }
  static Value boolean(bool b) { return Value(std::in_place_type<bool>, b); }
  static Value number(double v) { return Value(std::in_place_type<double>, v); }
  static Value string(std::string s) {
    return Value(std::in_place_type<std::string>, std::move(s));
  }
  static Value array() { return Value(std::in_place_type<std::vector<Value>>); }
  static Value object() { return Value(std::in_place_type<Members>); }

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(storage_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type() == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::kObject;
  }

  /// @throws TypeError unless the value holds the requested type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // ----- arrays ----------------------------------------------------------
  /// Appends to an array (converts a null value into an empty array
  /// first, so building `v.push_back(...)` on a fresh Value just works).
  /// @throws TypeError when the value holds a non-array, non-null type.
  Value& push_back(Value element);
  /// @throws TypeError unless array.
  [[nodiscard]] const std::vector<Value>& items() const;
  /// Element count (array) or member count (object).
  /// @throws TypeError otherwise.
  [[nodiscard]] std::size_t size() const;
  /// @throws TypeError unless array; std::out_of_range on bad index.
  [[nodiscard]] const Value& at(std::size_t index) const;

  // ----- objects ---------------------------------------------------------
  /// Sets `key` (replacing an existing member in place, else appending);
  /// converts a null value into an empty object first.  Returns *this so
  /// encoders can chain.  @throws TypeError on non-object, non-null.
  Value& set(std::string key, Value element);
  /// Member pointer, or nullptr when absent.  @throws TypeError unless
  /// object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// @throws TypeError when absent (message names the key) or non-object.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// @throws TypeError unless object.
  [[nodiscard]] const Members& members() const;

  // ----- text ------------------------------------------------------------
  /// Serializes the value.  indent < 0: compact one-line form (the
  /// canonical form hashed by the result cache); indent >= 0: pretty,
  /// with that many spaces per nesting level.
  /// @throws std::invalid_argument on a non-finite number (the codec is
  /// responsible for string-encoding those before they reach the writer).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses one JSON document; the whole input must be consumed (trailing
  /// whitespace allowed).  @throws ParseError.
  static Value parse(std::string_view text);

 private:
  using Storage = std::variant<std::monostate, bool, double, std::string,
                               std::vector<Value>, Members>;

  // The factories construct the alternative in place: moving a whole
  // Storage through the converting constructor trips GCC 12's
  // -Wmaybe-uninitialized on the variant's visit-based move under
  // ASan at -O2.
  template <typename T, typename... Args>
  explicit Value(std::in_place_type_t<T> alt, Args&&... args)
      : storage_(alt, std::forward<Args>(args)...) {}

  Storage storage_;
};

}  // namespace deltanc::io::json
