#include "io/codec.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>

namespace deltanc::io {

namespace {

using json::Value;

/// Rounds a JSON number to the nearest integer, rejecting values that
/// are not integral (counts must not silently truncate).
long long decode_integer(const Value& v, const char* what) {
  const double d = v.as_number();
  if (d != std::floor(d) || std::fabs(d) > 9.007199254740992e15) {
    throw CodecError(std::string("codec: ") + what +
                     " must be an integer (got " + v.dump() + ")");
  }
  return static_cast<long long>(d);
}

int decode_int(const Value& v, const char* what) {
  const long long n = decode_integer(v, what);
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    throw CodecError(std::string("codec: ") + what + " out of int range");
  }
  return static_cast<int>(n);
}

/// Optional-field lookup: returns nullptr when the key is absent OR
/// explicitly null (both mean "use the default").
const Value* find_optional(const Value& obj, std::string_view key) {
  const Value* v = obj.find(key);
  return (v == nullptr || v->is_null()) ? nullptr : v;
}

}  // namespace

// ----- doubles -----------------------------------------------------------

Value encode_double(double v) {
  if (std::isfinite(v)) return Value::number(v);
  if (std::isnan(v)) return Value::string("nan");
  return Value::string(v > 0 ? "inf" : "-inf");
}

double decode_double(const Value& v) {
  if (v.is_number()) return v.as_number();
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s.empty()) throw CodecError("codec: empty string where double expected");
    // Locale-independent (std::from_chars): decimal, inf/-inf/nan...
    double parsed = 0.0;
    if (sched::parse_strict_double(s, parsed)) return parsed;
    // ...plus C99 hexfloat ("0x1.6p+4"), so hand-written goldens keep
    // decoding.  from_chars hex format takes no 0x prefix of its own.
    std::string_view body = s;
    const bool negative = body.front() == '-';
    if (negative) body.remove_prefix(1);
    if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
      body.remove_prefix(2);
      const auto [ptr, ec] = std::from_chars(
          body.data(), body.data() + body.size(), parsed,
          std::chars_format::hex);
      if (ec == std::errc{} && ptr == body.data() + body.size()) {
        return negative ? -parsed : parsed;
      }
    }
    throw CodecError("codec: unparseable double \"" + s + "\"");
  }
  throw CodecError("codec: expected a number or numeric string, got " +
                   v.dump());
}

// ----- enums -------------------------------------------------------------

namespace {

/// The schema-2 scheduler object {kind, delta, edf} -- shared by
/// encode_scheduler (which appends "params") and the legacy-v2 cache key
/// (which must stay byte-exactly params-free).
Value encode_scheduler_v2(const sched::SchedulerSpec& s) {
  Value edf = Value::object();
  edf.set("own_factor", encode_double(s.edf_factors().own_factor))
      .set("cross_factor", encode_double(s.edf_factors().cross_factor));
  Value out = Value::object();
  out.set("kind", Value::string(std::string(
              sched::scheduler_kind_name(s.kind()))))
      .set("delta", encode_double(s.delta()))
      .set("edf", std::move(edf));
  return out;
}

}  // namespace

Value encode_scheduler(const sched::SchedulerSpec& s) {
  Value params = Value::array();
  for (std::size_t i = 0; i < s.weights().size(); ++i) {
    params.push_back(encode_double(s.weights()[i]));
  }
  Value out = encode_scheduler_v2(s);
  out.set("params", std::move(params));
  return out;
}

sched::SchedulerSpec decode_scheduler(const Value& v) {
  if (v.is_string()) {
    sched::SchedulerSpec spec;
    if (!sched::parse_scheduler(v.as_string(), spec)) {
      throw SchemaError("codec: unknown scheduler \"" + v.as_string() +
                        "\"");
    }
    return spec;
  }
  if (!v.is_object()) {
    throw CodecError("codec: scheduler must be an object or name string, "
                     "got " + v.dump());
  }
  sched::SchedulerKind kind{};
  const std::string& name = v.at("kind").as_string();
  if (!sched::scheduler_kind_from_name(name, kind)) {
    throw SchemaError("codec: unknown scheduler kind \"" + name + "\"");
  }
  sched::SchedulerSpec spec(kind);
  if (kind == sched::SchedulerKind::kDelta) {
    const Value* delta = find_optional(v, "delta");
    spec = sched::SchedulerSpec::fixed_delta(
        delta != nullptr ? decode_double(*delta) : 0.0);
  }
  if (const Value* edf = find_optional(v, "edf")) {
    spec.set_edf_factors(
        sched::EdfFactors{decode_double(edf->at("own_factor")),
                          decode_double(edf->at("cross_factor"))});
  }
  // Absent in schema-1/2 documents: the default equal two-class split.
  if (const Value* params = find_optional(v, "params")) {
    const std::vector<Value>& items = params->items();
    if (items.size() < 2 || items.size() > sched::ClassWeights::kMaxClasses) {
      throw CodecError("codec: scheduler params need 2.." +
                       std::to_string(sched::ClassWeights::kMaxClasses) +
                       " entries (got " + std::to_string(items.size()) + ")");
    }
    sched::ClassWeights weights{};
    weights.values = {};
    weights.count = items.size();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const double w = decode_double(items[i]);
      if (!(w > 0.0) || !std::isfinite(w)) {
        throw CodecError("codec: scheduler params must be positive finite "
                         "(got " + items[i].dump() + ")");
      }
      weights.values[i] = w;
    }
    spec.set_weights(weights);
  }
  return spec;
}

Value encode_method(e2e::Method m) {
  return Value::string(m == e2e::Method::kPaperK ? "paper-k" : "exact");
}

e2e::Method decode_method(const Value& v) {
  const std::string& name = v.as_string();
  if (name == "exact") return e2e::Method::kExactOpt;
  if (name == "paper-k") return e2e::Method::kPaperK;
  throw CodecError("codec: unknown method \"" + name + "\"");
}

void require_schema(const Value& v) {
  const Value* schema = v.is_object() ? v.find("schema") : nullptr;
  if (schema == nullptr) {
    throw SchemaError("codec: document carries no \"schema\" field");
  }
  const long long got = decode_integer(*schema, "schema");
  if (got != kSchemaVersion) {
    throw SchemaError("codec: schema " + std::to_string(got) +
                      " != supported " + std::to_string(kSchemaVersion));
  }
}

// ----- Scenario ----------------------------------------------------------

Value encode_scenario(const e2e::Scenario& sc) {
  Value source = Value::object();
  source.set("peak_kb", encode_double(sc.source.peak_kb()))
      .set("p11", encode_double(sc.source.p11()))
      .set("p22", encode_double(sc.source.p22()));
  Value out = Value::object();
  out.set("capacity", encode_double(sc.capacity))
      .set("hops", Value::number(sc.hops))
      .set("source", std::move(source))
      .set("n_through", Value::number(sc.n_through))
      .set("n_cross", Value::number(sc.n_cross))
      .set("epsilon", encode_double(sc.epsilon))
      .set("scheduler", encode_scheduler(sc.scheduler));
  return out;
}

e2e::Scenario decode_scenario(const Value& v) {
  if (!v.is_object()) {
    throw CodecError("codec: scenario must be an object, got " + v.dump());
  }
  e2e::Scenario sc;
  sc.capacity = decode_double(v.at("capacity"));
  sc.hops = decode_int(v.at("hops"), "hops");
  if (const Value* source = find_optional(v, "source")) {
    // The MmooSource constructor re-validates the probabilities, so a
    // corrupted document cannot produce an inconsistent source object.
    sc.source = traffic::MmooSource(decode_double(source->at("peak_kb")),
                                    decode_double(source->at("p11")),
                                    decode_double(source->at("p22")));
  }
  sc.n_through = decode_int(v.at("n_through"), "n_through");
  sc.n_cross = decode_int(v.at("n_cross"), "n_cross");
  sc.epsilon = decode_double(v.at("epsilon"));
  sc.scheduler = decode_scheduler(v.at("scheduler"));
  // Schema-1 documents (and hand-written ones using name strings) carry
  // the EDF factors in a sibling "edf" object; fold them into the spec.
  if (const Value* edf = find_optional(v, "edf")) {
    sc.scheduler.set_edf_factors(
        sched::EdfFactors{decode_double(edf->at("own_factor")),
                          decode_double(edf->at("cross_factor"))});
  }
  return sc;
}

// ----- SolveStats --------------------------------------------------------

Value encode_solve_stats(const e2e::SolveStats& stats) {
  Value out = Value::object();
  out.set("optimize_evals",
          Value::number(static_cast<double>(stats.optimize_evals)))
      .set("eb_evals", Value::number(static_cast<double>(stats.eb_evals)))
      .set("sigma_evals",
           Value::number(static_cast<double>(stats.sigma_evals)))
      .set("edf_iterations", Value::number(stats.edf_iterations))
      .set("edf_converged", Value::boolean(stats.edf_converged))
      .set("retries", Value::number(stats.retries))
      .set("fallbacks", Value::number(stats.fallbacks))
      .set("scan_ms", encode_double(stats.scan_ms))
      .set("refine_ms", encode_double(stats.refine_ms))
      .set("cache_hits", Value::number(static_cast<double>(stats.cache_hits)))
      .set("cache_misses",
           Value::number(static_cast<double>(stats.cache_misses)))
      .set("cache_stale",
           Value::number(static_cast<double>(stats.cache_stale)))
      .set("batched_evals",
           Value::number(static_cast<double>(stats.batched_evals)))
      .set("warm_start_hits",
           Value::number(static_cast<double>(stats.warm_start_hits)))
      .set("brackets_reused",
           Value::number(static_cast<double>(stats.brackets_reused)))
      .set("profile_levels",
           Value::number(static_cast<double>(stats.profile_levels)))
      .set("profile_chain_hits",
           Value::number(static_cast<double>(stats.profile_chain_hits)));
  return out;
}

e2e::SolveStats decode_solve_stats(const Value& v) {
  e2e::SolveStats stats;
  stats.optimize_evals = decode_integer(v.at("optimize_evals"), "stats");
  stats.eb_evals = decode_integer(v.at("eb_evals"), "stats");
  stats.sigma_evals = decode_integer(v.at("sigma_evals"), "stats");
  stats.edf_iterations = decode_int(v.at("edf_iterations"), "stats");
  stats.edf_converged = v.at("edf_converged").as_bool();
  stats.retries = decode_int(v.at("retries"), "stats");
  stats.fallbacks = decode_int(v.at("fallbacks"), "stats");
  stats.scan_ms = decode_double(v.at("scan_ms"));
  stats.refine_ms = decode_double(v.at("refine_ms"));
  if (const Value* f = find_optional(v, "cache_hits")) {
    stats.cache_hits = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "cache_misses")) {
    stats.cache_misses = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "cache_stale")) {
    stats.cache_stale = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "batched_evals")) {
    stats.batched_evals = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "warm_start_hits")) {
    stats.warm_start_hits = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "brackets_reused")) {
    stats.brackets_reused = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "profile_levels")) {
    stats.profile_levels = decode_integer(*f, "stats");
  }
  if (const Value* f = find_optional(v, "profile_chain_hits")) {
    stats.profile_chain_hits = decode_integer(*f, "stats");
  }
  return stats;
}

// ----- Diagnostics -------------------------------------------------------

namespace {

diag::SolveErrorKind decode_kind(const Value& v) {
  diag::SolveErrorKind kind{};
  if (!diag::solve_error_from_name(v.as_string(), kind)) {
    throw CodecError("codec: unknown error kind \"" + v.as_string() + "\"");
  }
  return kind;
}

}  // namespace

Value encode_diagnostics(const diag::Diagnostics& d) {
  Value warnings = Value::array();
  for (const diag::Warning& w : d.warnings) {
    Value entry = Value::object();
    entry.set("kind", Value::string(diag::solve_error_name(w.kind)))
        .set("message", Value::string(w.message));
    warnings.push_back(std::move(entry));
  }
  Value out = Value::object();
  out.set("error", Value::string(diag::solve_error_name(d.error)))
      .set("message", Value::string(d.message))
      .set("warnings", std::move(warnings));
  return out;
}

diag::Diagnostics decode_diagnostics(const Value& v) {
  diag::Diagnostics d;
  d.error = decode_kind(v.at("error"));
  d.message = v.at("message").as_string();
  for (const Value& w : v.at("warnings").items()) {
    d.warnings.push_back(
        diag::Warning{decode_kind(w.at("kind")), w.at("message").as_string()});
  }
  return d;
}

// ----- BoundResult -------------------------------------------------------

Value encode_bound_result(const e2e::BoundResult& r) {
  Value out = Value::object();
  out.set("delay_ms", encode_double(r.delay_ms))
      .set("gamma", encode_double(r.gamma))
      .set("s", encode_double(r.s))
      .set("sigma", encode_double(r.sigma))
      .set("delta", encode_double(r.delta))
      .set("stats", encode_solve_stats(r.stats))
      .set("diagnostics", encode_diagnostics(r.diagnostics));
  return out;
}

e2e::BoundResult decode_bound_result(const Value& v) {
  e2e::BoundResult r{};
  r.delay_ms = decode_double(v.at("delay_ms"));
  r.gamma = decode_double(v.at("gamma"));
  r.s = decode_double(v.at("s"));
  r.sigma = decode_double(v.at("sigma"));
  r.delta = decode_double(v.at("delta"));
  if (const Value* stats = find_optional(v, "stats")) {
    r.stats = decode_solve_stats(*stats);
  }
  if (const Value* d = find_optional(v, "diagnostics")) {
    r.diagnostics = decode_diagnostics(*d);
  }
  return r;
}

// ----- DelayProfile ------------------------------------------------------

Value encode_delay_profile(const e2e::DelayProfile& p) {
  Value epsilons = Value::array();
  for (double eps : p.epsilons) epsilons.push_back(encode_double(eps));
  Value levels = Value::array();
  for (const e2e::BoundResult& r : p.levels) {
    levels.push_back(encode_bound_result(r));
  }
  Value out = Value::object();
  out.set("epsilons", std::move(epsilons))
      .set("levels", std::move(levels))
      .set("stats", encode_solve_stats(p.stats));
  return out;
}

e2e::DelayProfile decode_delay_profile(const Value& v) {
  if (!v.is_object()) {
    throw CodecError("codec: delay profile must be an object, got " +
                     v.dump());
  }
  e2e::DelayProfile p;
  for (const Value& eps : v.at("epsilons").items()) {
    p.epsilons.push_back(decode_double(eps));
  }
  for (const Value& r : v.at("levels").items()) {
    p.levels.push_back(decode_bound_result(r));
  }
  if (p.epsilons.size() != p.levels.size()) {
    throw CodecError("codec: delay profile has " +
                     std::to_string(p.epsilons.size()) + " epsilons but " +
                     std::to_string(p.levels.size()) + " levels");
  }
  if (const Value* stats = find_optional(v, "stats")) {
    p.stats = decode_solve_stats(*stats);
  }
  return p;
}

// ----- SweepPoint / SweepReport ------------------------------------------

Value encode_sweep_point(const SweepPoint& p) {
  Value out = Value::object();
  out.set("scenario", encode_scenario(p.scenario))
      .set("bound", encode_bound_result(p.bound))
      .set("profile", p.profile.has_value() ? encode_delay_profile(*p.profile)
                                            : Value::null())
      .set("solve_ms", encode_double(p.solve_ms))
      .set("ok", Value::boolean(p.ok))
      .set("error", Value::string(p.error));
  return out;
}

SweepPoint decode_sweep_point(const Value& v) {
  SweepPoint p;
  p.scenario = decode_scenario(v.at("scenario"));
  p.bound = decode_bound_result(v.at("bound"));
  if (const Value* profile = find_optional(v, "profile")) {
    p.profile = decode_delay_profile(*profile);
  }
  p.solve_ms = decode_double(v.at("solve_ms"));
  p.ok = v.at("ok").as_bool();
  p.error = v.at("error").as_string();
  return p;
}

Value encode_sweep_report(const SweepReport& report) {
  Value points = Value::array();
  for (const SweepPoint& p : report.points) {
    points.push_back(encode_sweep_point(p));
  }
  Value out = Value::object();
  out.set("schema", Value::number(kSchemaVersion))
      .set("threads", Value::number(report.threads))
      .set("wall_ms", encode_double(report.wall_ms))
      .set("solve_ms", encode_double(report.solve_ms))
      .set("stats", encode_solve_stats(report.stats))
      .set("points", std::move(points));
  return out;
}

SweepReport decode_sweep_report(const Value& v) {
  require_schema(v);
  SweepReport report;
  report.threads = decode_int(v.at("threads"), "threads");
  report.wall_ms = decode_double(v.at("wall_ms"));
  report.solve_ms = decode_double(v.at("solve_ms"));
  report.stats = decode_solve_stats(v.at("stats"));
  for (const Value& p : v.at("points").items()) {
    report.points.push_back(decode_sweep_point(p));
  }
  return report;
}

// ----- SweepGrid ---------------------------------------------------------

Value encode_sweep_grid(const SweepGrid& grid) {
  Value axes = Value::array();
  for (std::size_t a = 0; a < grid.axes(); ++a) {
    const SweepGrid::AxisSpec& spec = grid.axis_spec(a);
    Value values = Value::array();
    if (spec.name == "scheduler") {
      for (const sched::SchedulerSpec& s : spec.schedulers) {
        // A kinds-only axis re-assigns kinds over the base's EDF factors,
        // so it serializes as bare names and must replay through the kind
        // overload; a spec axis replaces schedulers wholesale and
        // serializes the full objects.
        if (spec.scheduler_kinds_only) {
          values.push_back(Value::string(
              std::string(sched::scheduler_kind_name(s.kind()))));
        } else {
          values.push_back(encode_scheduler(s));
        }
      }
    } else if (spec.name == "edf") {
      for (const sched::EdfFactors& e : spec.edf) {
        Value entry = Value::object();
        entry.set("own_factor", encode_double(e.own_factor))
            .set("cross_factor", encode_double(e.cross_factor));
        values.push_back(std::move(entry));
      }
    } else {
      for (double d : spec.numeric) values.push_back(encode_double(d));
    }
    Value axis = Value::object();
    axis.set("name", Value::string(spec.name)).set("values", std::move(values));
    axes.push_back(std::move(axis));
  }
  Value out = Value::object();
  out.set("schema", Value::number(kSchemaVersion))
      .set("base", encode_scenario(grid.base()))
      .set("axes", std::move(axes));
  return out;
}

SweepGrid decode_sweep_grid(const Value& v) {
  require_schema(v);
  SweepGrid grid(decode_scenario(v.at("base")));
  for (const Value& axis : v.at("axes").items()) {
    const std::string& name = axis.at("name").as_string();
    const std::vector<Value>& values = axis.at("values").items();
    if (name == "scheduler") {
      // Bare kind names replay through the kind overload (keeps the
      // base's EDF factors); anything else decodes as full specs and
      // replays through the replacement overload.  See encode above.
      std::vector<sched::SchedulerKind> kinds;
      bool kinds_only = true;
      for (const Value& s : values) {
        sched::SchedulerKind k{};
        if (!s.is_string() ||
            !sched::scheduler_kind_from_name(s.as_string(), k) ||
            k == sched::SchedulerKind::kDelta) {
          kinds_only = false;
          break;
        }
        kinds.push_back(k);
      }
      if (kinds_only) {
        grid.scheduler_axis(std::move(kinds));
      } else {
        std::vector<sched::SchedulerSpec> schedulers;
        for (const Value& s : values) {
          schedulers.push_back(decode_scheduler(s));
        }
        grid.scheduler_axis(std::move(schedulers));
      }
      continue;
    }
    if (name == "edf") {
      std::vector<sched::EdfFactors> edf;
      for (const Value& e : values) {
        edf.push_back(sched::EdfFactors{decode_double(e.at("own_factor")),
                                        decode_double(e.at("cross_factor"))});
      }
      grid.edf_axis(std::move(edf));
      continue;
    }
    std::vector<double> numeric;
    for (const Value& d : values) numeric.push_back(decode_double(d));
    if (name == "hops" || name == "n0" || name == "nc") {
      std::vector<int> ints;
      for (double d : numeric) {
        ints.push_back(decode_int(Value::number(d), name.c_str()));
      }
      if (name == "hops") {
        grid.hops_axis(std::move(ints));
      } else if (name == "n0") {
        grid.through_flows_axis(std::move(ints));
      } else {
        grid.cross_flows_axis(std::move(ints));
      }
    } else if (name == "u0") {
      grid.through_utilization_axis(std::move(numeric));
    } else if (name == "uc") {
      grid.cross_utilization_axis(std::move(numeric));
    } else if (name == "epsilon") {
      grid.epsilon_axis(std::move(numeric));
    } else if (name == "capacity") {
      grid.capacity_axis(std::move(numeric));
    } else if (name == "delta") {
      grid.delta_axis(std::move(numeric));
    } else {
      throw CodecError("codec: unknown sweep axis \"" + name + "\"");
    }
  }
  return grid;
}

// ----- SolveOptions / cache key ------------------------------------------

Value encode_solve_options(const SolveOptions& options) {
  Value out = Value::object();
  out.set("method", encode_method(options.method))
      .set("scheduler", options.scheduler.has_value()
                            ? encode_scheduler(*options.scheduler)
                            : Value::null())
      .set("delta", options.delta.has_value() ? encode_double(*options.delta)
                                              : Value::null())
      .set("max_edf_restarts", Value::number(options.max_edf_restarts))
      .set("warm_start",
           Value::string(options.warm_start == e2e::WarmStart::kWarm
                             ? "warm"
                             : "cold"));
  return out;
}

SolveOptions decode_solve_options(const Value& v) {
  SolveOptions options;
  if (const Value* m = find_optional(v, "method")) {
    options.method = decode_method(*m);
  }
  if (const Value* s = find_optional(v, "scheduler")) {
    options.scheduler = decode_scheduler(*s);
  }
  if (const Value* d = find_optional(v, "delta")) {
    options.delta = decode_double(*d);
  }
  if (const Value* r = find_optional(v, "max_edf_restarts")) {
    options.max_edf_restarts = decode_int(*r, "max_edf_restarts");
  }
  if (const Value* w = find_optional(v, "warm_start")) {
    const std::string& name = w->as_string();
    if (name == "warm") {
      options.warm_start = e2e::WarmStart::kWarm;
    } else if (name == "cold") {
      options.warm_start = e2e::WarmStart::kCold;
    } else {
      throw CodecError("codec: unknown warm_start \"" + name + "\"");
    }
  }
  return options;
}

namespace {

/// Folds the scheduler override into the scenario so "FIFO scenario
/// overridden to EDF" and "EDF scenario" key identically -- they solve
/// identically -- and canonicalizes the options (reuse_workspace is
/// excluded from keys by contract: it cannot change any result bit).
void canonicalize_solve(e2e::Scenario& sc, SolveOptions& options) {
  if (options.scheduler.has_value()) {
    sc.scheduler = *options.scheduler;
    options.scheduler.reset();
  }
  options.reuse_workspace = true;
}

}  // namespace

std::string solve_cache_key(const e2e::Scenario& sc,
                            const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  Value key = Value::object();
  key.set("kind", Value::string("solve"))
      .set("scenario", encode_scenario(effective))
      .set("options", encode_solve_options(canonical));
  return key.dump();
}

std::string profile_cache_key(const e2e::Scenario& sc,
                              std::span<const double> epsilons,
                              const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  // A profile solves the grid, never the scenario's scalar epsilon, so
  // two requests differing only there must share the entry: pin the
  // scenario epsilon to the first grid level.
  if (!epsilons.empty()) effective.epsilon = epsilons.front();
  Value eps = Value::array();
  for (double e : epsilons) eps.push_back(encode_double(e));
  Value key = Value::object();
  key.set("kind", Value::string("profile"))
      .set("scenario", encode_scenario(effective))
      .set("options", encode_solve_options(canonical))
      .set("epsilons", std::move(eps));
  return key.dump();
}

std::optional<std::string> legacy_v1_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  const sched::SchedulerSpec& spec = effective.scheduler;
  // Schema 1 spelled schedulers as bare kind names; an explicit
  // fixed-Delta spec has no schema-1 key, and neither does any
  // curve-backed kind (they did not exist before schema 3).
  if (spec.kind() == sched::SchedulerKind::kDelta || spec.is_curve_backed()) {
    return std::nullopt;
  }

  // Byte-exact reproduction of the schema-1 encoders: scenario with a
  // name-string scheduler and a sibling top-level "edf" object, options
  // with the (always folded-away, hence null) scheduler slot.
  Value source = Value::object();
  source.set("peak_kb", encode_double(effective.source.peak_kb()))
      .set("p11", encode_double(effective.source.p11()))
      .set("p22", encode_double(effective.source.p22()));
  Value edf = Value::object();
  edf.set("own_factor", encode_double(spec.edf_factors().own_factor))
      .set("cross_factor", encode_double(spec.edf_factors().cross_factor));
  Value scenario = Value::object();
  scenario.set("capacity", encode_double(effective.capacity))
      .set("hops", Value::number(effective.hops))
      .set("source", std::move(source))
      .set("n_through", Value::number(effective.n_through))
      .set("n_cross", Value::number(effective.n_cross))
      .set("epsilon", encode_double(effective.epsilon))
      .set("scheduler", Value::string(std::string(
               sched::scheduler_kind_name(spec.kind()))))
      .set("edf", std::move(edf));
  Value opts = Value::object();
  opts.set("method", encode_method(canonical.method))
      .set("scheduler", Value::null())
      .set("delta", canonical.delta.has_value()
                        ? encode_double(*canonical.delta)
                        : Value::null())
      .set("max_edf_restarts", Value::number(canonical.max_edf_restarts));
  Value key = Value::object();
  key.set("schema", Value::number(1))
      .set("scenario", std::move(scenario))
      .set("options", std::move(opts));
  return key.dump();
}

std::optional<std::string> legacy_v2_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  // Curve-backed kinds did not exist before schema 3: no v2 spelling.
  if (effective.scheduler.is_curve_backed()) return std::nullopt;

  // Byte-exact reproduction of the schema-2 key: same document as
  // solve_cache_key() but with params-free scheduler objects (the
  // options scheduler is always folded away, hence null, so only the
  // scenario's encoding differs).
  Value source = Value::object();
  source.set("peak_kb", encode_double(effective.source.peak_kb()))
      .set("p11", encode_double(effective.source.p11()))
      .set("p22", encode_double(effective.source.p22()));
  Value scenario = Value::object();
  scenario.set("capacity", encode_double(effective.capacity))
      .set("hops", Value::number(effective.hops))
      .set("source", std::move(source))
      .set("n_through", Value::number(effective.n_through))
      .set("n_cross", Value::number(effective.n_cross))
      .set("epsilon", encode_double(effective.epsilon))
      .set("scheduler", encode_scheduler_v2(effective.scheduler));
  Value key = Value::object();
  key.set("scenario", std::move(scenario))
      .set("options", encode_solve_options(canonical));
  return key.dump();
}

std::optional<std::string> legacy_v3_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  // Warm-starting did not exist before schema 4: a warm-keyed solve has
  // no schema-3 spelling (and its result need not be bit-identical to
  // whatever a cold schema-3 entry holds, so it must not claim one).
  if (canonical.warm_start != e2e::WarmStart::kCold) return std::nullopt;

  // Byte-exact reproduction of the schema-3 key: same document as
  // solve_cache_key() but with the pre-warm-start options encoding
  // (method, scheduler, delta, max_edf_restarts -- no "warm_start").
  Value opts = Value::object();
  opts.set("method", encode_method(canonical.method))
      .set("scheduler", Value::null())
      .set("delta", canonical.delta.has_value()
                        ? encode_double(*canonical.delta)
                        : Value::null())
      .set("max_edf_restarts", Value::number(canonical.max_edf_restarts));
  Value key = Value::object();
  key.set("scenario", encode_scenario(effective))
      .set("options", std::move(opts));
  return key.dump();
}

std::optional<std::string> legacy_v4_solve_cache_key(
    const e2e::Scenario& sc, const SolveOptions& options) {
  SolveOptions canonical = options;
  e2e::Scenario effective = sc;
  canonicalize_solve(effective, canonical);
  // Byte-exact reproduction of the schema-4 key: same document as
  // solve_cache_key() minus the "kind" discriminator (new in schema 5).
  // The scenario and options encoders are unchanged since schema 4, so
  // every scalar solve has a v4 spelling.
  Value key = Value::object();
  key.set("scenario", encode_scenario(effective))
      .set("options", encode_solve_options(canonical));
  return key.dump();
}

}  // namespace deltanc::io
