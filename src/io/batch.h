// JSONL batch solve service -- the engine behind `deltanc_cli --batch`.
//
// Input: one JSON request object per line:
//   {"schema": N, "scenario": {...}, "options": {...}, "id": <any>}
//   {"schema": N, "scenario": {...}, "epsilons": [...], ...}
// "options" (see io::decode_solve_options) and "id" are optional; blank
// lines are skipped.  A non-empty "epsilons" array makes the line a
// *profile* request: the whole d(epsilon) grid is solved (or served from
// the cache) as one artifact.  Output: one JSON response per request,
// streamed in *input order*:
//   {"schema": N, "id": <echoed>, "ok": true,  "cache": "hit"|"miss"|
//    "stale"|"corrupt", "result": {...}}            -- solved/served
//     (the "cache" field appears only when a ResultCache is attached)
//   {"schema": N, "id": <echoed>, "ok": true,  ["cache"], "profile":
//    {...}}                                         -- profile request
//   {"schema": N, "id": <echoed>, "ok": false, "error": "..."}
//                                                    -- unparseable line
//
// Caching: with a ResultCache attached, every request is looked up
// first; hits are answered without solving, and every solved result is
// stored back.  A stale entry (other schema or library version) and a
// corrupt entry (unreadable bytes) both re-solve and overwrite; a
// corrupt one additionally tags the result with a diag::kCorruptCache
// warning so the recovery is visible downstream.  Each response's
// result.stats carries exactly one of cache_hits / cache_misses /
// cache_stale = 1, so summing stats over responses (as SweepReport
// already does) yields the hit ratio.
//
// Parallelism: cache misses are grouped by solve options and fanned out
// through SweepRunner, so a cold batch gets the same thread scaling as a
// sweep while responses stay deterministically ordered.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/sweep.h"
#include "io/result_cache.h"

namespace deltanc {
class Solver;  // e2e/solver.h
}

namespace deltanc::io {

struct BatchOptions {
  /// Worker count for the solve fan-out; 0 = DELTANC_THREADS env or
  /// hardware_concurrency() (SweepRunner's resolution).
  int threads = 0;
  /// Method used when a request carries no "options" object.
  e2e::Method default_method = e2e::Method::kExactOpt;
  /// Optional persistent cache; nullptr = solve everything.
  ResultCache* cache = nullptr;
  /// Called after each solved (not cached) point, with (done, total)
  /// over the miss set; serialized, `done` strictly increasing.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Totals of one run_batch call.
struct BatchSummary {
  std::int64_t requests = 0;      ///< non-blank input lines
  std::int64_t responses = 0;     ///< response lines written (== requests)
  std::int64_t parse_errors = 0;  ///< lines answered with ok=false
  std::int64_t solved = 0;        ///< answered by running the solver
  std::int64_t cached = 0;        ///< answered from the cache
  std::int64_t failed = 0;        ///< solver threw (response ok=true,
                                  ///<   result carries the +inf bound)
  /// The output stream went bad mid-emission (e.g. the consumer of a
  /// `--batch | head` pipe hung up); remaining responses were not
  /// written.  The CLI turns this into a classified exit code instead
  /// of dying on SIGPIPE.
  bool output_failed = false;
  double wall_ms = 0.0;           ///< end-to-end wall clock
  e2e::SolveStats stats{};        ///< summed over all ok responses
  CacheStats cache_stats{};       ///< cache traffic of this run
};

/// Reads JSONL requests from `in`, writes JSONL responses to `out`
/// (nothing else -- `out` stays machine-parseable), returns the totals.
/// A final line without a trailing newline is a request like any other.
BatchSummary run_batch(std::istream& in, std::ostream& out,
                       const BatchOptions& options = {});

// ----- pieces shared with the persistent solve service (src/serve) -------
// The serve workers must answer with responses *byte-identical* to
// run_batch's (scripts/check_serve.sh diffs them), so the request
// grammar, the cache-outcome bookkeeping, and the response layout live
// here once and are consumed by both paths.

/// One parsed request line: the effective scenario (scheduler override
/// folded in), canonical options, and the cache key they hash to.
struct ParsedRequestLine {
  json::Value id;          ///< echoed verbatim (null when absent)
  e2e::Scenario scenario;  ///< effective (scheduler override folded in)
  SolveOptions options;    ///< canonical (scheduler cleared)
  /// Non-empty for profile requests: the d(epsilon) grid to solve,
  /// validated at parse time (each level in (0, 1)).
  std::vector<double> epsilons;
  std::string key;  ///< io::solve_cache_key / profile_cache_key

  [[nodiscard]] bool is_profile() const noexcept { return !epsilons.empty(); }
};

/// Parses one JSONL request line ({"schema", "scenario", "options"?,
/// "id"?}).  @throws on malformed JSON / wrong schema / undecodable
/// payloads; when the document carried a readable "id", the exception
/// is PartialRequestError so error responses can still echo it.
[[nodiscard]] ParsedRequestLine parse_request_line(
    const std::string& line, e2e::Method default_method);

/// A request that failed to parse *after* its "id" was read: carries
/// the id so the error response can echo it.
struct PartialRequestError : std::runtime_error {
  PartialRequestError(const std::string& what, json::Value id_in)
      : std::runtime_error(what), id(std::move(id_in)) {}
  json::Value id;
};

/// Stable wire name of a lookup outcome ("hit"/"miss"/"stale"/"corrupt").
[[nodiscard]] const char* cache_lookup_name(CacheLookup outcome);

/// Applies the cache-outcome bookkeeping run_batch performs on a result
/// before emission: exactly one of stats.cache_hits / cache_misses /
/// cache_stale is set to 1 (kCorrupt counts as a miss) and a kCorrupt
/// outcome appends the kCorruptCache recovery warning.
void apply_cache_outcome(e2e::BoundResult& result, CacheLookup outcome,
                         const std::string& key);

/// Profile flavor: the counters land on the profile's aggregate stats;
/// the kCorrupt recovery warning lands on the first level's diagnostics
/// (the profile itself carries none).
void apply_cache_outcome(e2e::DelayProfile& profile, CacheLookup outcome,
                         const std::string& key);

/// Outcome of solving one profile request (solve_profile_request).
struct ProfileAnswer {
  bool ok = true;     ///< false when the scenario failed to validate or
                      ///< the solve threw
  std::string error;  ///< the failure message when !ok
  e2e::DelayProfile profile;  ///< on failure: every level is the
                              ///< classified +inf bound
};

/// Solves one profile request with exactly SweepRunner's classification
/// discipline (validate first -> kInvalidScenario naming every bad
/// field; a throwing solve -> kNumericalDomain), shared by run_batch and
/// the serve workers so both paths answer byte-identically.  Failures
/// still produce a full K-level profile of classified +inf bounds, so a
/// profile response is always ok=true with per-level diagnostics, like
/// the scalar path.
[[nodiscard]] ProfileAnswer solve_profile_request(
    const deltanc::Solver& solver, const e2e::Scenario& sc,
    std::span<const double> epsilons);

/// The solved/served response document ({"schema", "id", "ok": true,
/// ["cache"], "result"}); `with_cache_tag` mirrors "a ResultCache is
/// attached".
[[nodiscard]] json::Value make_ok_response(const json::Value& id,
                                           bool with_cache_tag,
                                           CacheLookup outcome,
                                           const e2e::BoundResult& result);

/// The profile response document ({"schema", "id", "ok": true,
/// ["cache"], "profile"}) -- same layout discipline as make_ok_response
/// with the payload under "profile".
[[nodiscard]] json::Value make_ok_profile_response(
    const json::Value& id, bool with_cache_tag, CacheLookup outcome,
    const e2e::DelayProfile& profile);

/// The error response document ({"schema", "id", "ok": false, "error",
/// ["kind"]}); `kind` (diag::solve_error_name) is emitted by the serve
/// layer for classified service failures (timeout/overload/worker-lost)
/// and omitted (kNone) for plain parse errors, matching run_batch.
[[nodiscard]] json::Value make_error_response(
    const json::Value& id, const std::string& error,
    diag::SolveErrorKind kind = diag::SolveErrorKind::kNone);

}  // namespace deltanc::io
