// JSONL batch solve service -- the engine behind `deltanc_cli --batch`.
//
// Input: one JSON request object per line:
//   {"schema": 1, "scenario": {...}, "options": {...}, "id": <any>}
// "options" (see io::decode_solve_options) and "id" are optional; blank
// lines are skipped.  Output: one JSON response per request, streamed in
// *input order*:
//   {"schema": 1, "id": <echoed>, "ok": true,  "cache": "hit"|"miss"|
//    "stale"|"corrupt", "result": {...}}            -- solved/served
//     (the "cache" field appears only when a ResultCache is attached)
//   {"schema": 1, "id": <echoed>, "ok": false, "error": "..."}
//                                                    -- unparseable line
//
// Caching: with a ResultCache attached, every request is looked up
// first; hits are answered without solving, and every solved result is
// stored back.  A stale entry (other schema or library version) and a
// corrupt entry (unreadable bytes) both re-solve and overwrite; a
// corrupt one additionally tags the result with a diag::kCorruptCache
// warning so the recovery is visible downstream.  Each response's
// result.stats carries exactly one of cache_hits / cache_misses /
// cache_stale = 1, so summing stats over responses (as SweepReport
// already does) yields the hit ratio.
//
// Parallelism: cache misses are grouped by solve options and fanned out
// through SweepRunner, so a cold batch gets the same thread scaling as a
// sweep while responses stay deterministically ordered.
#pragma once

#include <iosfwd>

#include "core/sweep.h"
#include "io/result_cache.h"

namespace deltanc::io {

struct BatchOptions {
  /// Worker count for the solve fan-out; 0 = DELTANC_THREADS env or
  /// hardware_concurrency() (SweepRunner's resolution).
  int threads = 0;
  /// Method used when a request carries no "options" object.
  e2e::Method default_method = e2e::Method::kExactOpt;
  /// Optional persistent cache; nullptr = solve everything.
  ResultCache* cache = nullptr;
  /// Called after each solved (not cached) point, with (done, total)
  /// over the miss set; serialized, `done` strictly increasing.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Totals of one run_batch call.
struct BatchSummary {
  std::int64_t requests = 0;      ///< non-blank input lines
  std::int64_t responses = 0;     ///< response lines written (== requests)
  std::int64_t parse_errors = 0;  ///< lines answered with ok=false
  std::int64_t solved = 0;        ///< answered by running the solver
  std::int64_t cached = 0;        ///< answered from the cache
  std::int64_t failed = 0;        ///< solver threw (response ok=true,
                                  ///<   result carries the +inf bound)
  double wall_ms = 0.0;           ///< end-to-end wall clock
  e2e::SolveStats stats{};        ///< summed over all ok responses
  CacheStats cache_stats{};       ///< cache traffic of this run
};

/// Reads JSONL requests from `in`, writes JSONL responses to `out`
/// (nothing else -- `out` stays machine-parseable), returns the totals.
BatchSummary run_batch(std::istream& in, std::ostream& out,
                       const BatchOptions& options = {});

}  // namespace deltanc::io
