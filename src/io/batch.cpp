#include "io/batch.h"

#include <chrono>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "e2e/solver.h"

namespace deltanc::io {

namespace {

using Clock = std::chrono::steady_clock;
using json::Value;

const char* lookup_name(CacheLookup outcome) {
  switch (outcome) {
    case CacheLookup::kHit:
      return "hit";
    case CacheLookup::kMiss:
      return "miss";
    case CacheLookup::kStale:
      return "stale";
    case CacheLookup::kCorrupt:
      return "corrupt";
  }
  return "?";
}

/// One input line's lifecycle through the batch.
struct Request {
  bool parsed = false;
  std::string error;         ///< parse/decode failure when !parsed
  Value id;                  ///< echoed verbatim (null when absent)
  e2e::Scenario scenario;    ///< effective (scheduler override folded in)
  SolveOptions options;      ///< canonical (scheduler cleared)
  std::string key;           ///< io::solve_cache_key
  CacheLookup outcome = CacheLookup::kMiss;
  SweepPoint point;          ///< the answer (cache hit or solve)
};

void parse_request(const std::string& line, e2e::Method default_method,
                   Request& req) {
  const Value doc = Value::parse(line);
  require_schema(doc);
  if (const Value* id = doc.find("id")) req.id = *id;
  e2e::Scenario sc = decode_scenario(doc.at("scenario"));
  SolveOptions options;
  options.method = default_method;
  if (const Value* o = doc.find("options"); o != nullptr && !o->is_null()) {
    options = decode_solve_options(*o);
  }
  // Fold the scheduler override into the scenario here (not just inside
  // solve_cache_key) so grouping by options groups by what actually
  // varies the solve.
  if (options.scheduler.has_value()) {
    sc.scheduler = *options.scheduler;
    options.scheduler.reset();
  }
  options.reuse_workspace = true;
  req.scenario = sc;
  req.options = options;
  req.key = solve_cache_key(sc, options);
  req.parsed = true;
}

}  // namespace

BatchSummary run_batch(std::istream& in, std::ostream& out,
                       const BatchOptions& options) {
  const auto t0 = Clock::now();
  BatchSummary summary;
  const CacheStats cache_before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  // ----- ingest ----------------------------------------------------------
  std::vector<Request> requests;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Request req;
    try {
      parse_request(line, options.default_method, req);
    } catch (const std::exception& e) {
      req.parsed = false;
      req.error = e.what();
    }
    requests.push_back(std::move(req));
  }
  summary.requests = static_cast<std::int64_t>(requests.size());

  // ----- cache pass ------------------------------------------------------
  std::vector<std::size_t> pending;  // request indices still to solve
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request& req = requests[i];
    if (!req.parsed) continue;
    if (options.cache == nullptr) {
      pending.push_back(i);
      continue;
    }
    e2e::BoundResult cached;
    // Scenario-level lookup: also classifies pre-refactor (schema-1)
    // entries of the same solve as stale instead of missing them.
    req.outcome = options.cache->lookup(req.scenario, req.options, cached);
    if (req.outcome == CacheLookup::kHit) {
      req.point.scenario = req.scenario;
      req.point.bound = std::move(cached);
      req.point.bound.stats.cache_hits = 1;
      req.point.bound.stats.cache_misses = 0;
      req.point.bound.stats.cache_stale = 0;
      ++summary.cached;
    } else {
      pending.push_back(i);
    }
  }

  // ----- solve pass: group misses by options, fan out per group ----------
  std::map<std::string, std::vector<std::size_t>> groups;
  for (const std::size_t i : pending) {
    groups[encode_solve_options(requests[i].options).dump()].push_back(i);
  }
  const std::size_t total_pending = pending.size();
  std::size_t done_offset = 0;
  for (const auto& [options_key, members] : groups) {
    (void)options_key;
    const Solver solver(requests[members.front()].options);
    std::vector<e2e::Scenario> scenarios;
    scenarios.reserve(members.size());
    for (const std::size_t i : members) {
      scenarios.push_back(requests[i].scenario);
    }
    SweepOptions sweep;
    sweep.threads = options.threads;
    sweep.method = solver.options().method;
    sweep.solver = [&solver](const e2e::Scenario& sc, e2e::Method) {
      return solver.solve(sc);
    };
    if (options.progress) {
      sweep.progress = [&options, done_offset,
                        total_pending](std::size_t done, std::size_t) {
        options.progress(done_offset + done, total_pending);
      };
    }
    const SweepReport report = SweepRunner(sweep).run(
        std::span<const e2e::Scenario>(scenarios));
    for (std::size_t j = 0; j < members.size(); ++j) {
      Request& req = requests[members[j]];
      req.point = report.points[j];
      if (req.point.ok && options.cache != nullptr) {
        // Persist with the cache counters zeroed: they describe how a
        // particular response was obtained, not the result itself.
        options.cache->store(req.key, req.point.bound);
      }
      if (req.outcome == CacheLookup::kStale) {
        req.point.bound.stats.cache_stale = 1;
      } else {
        req.point.bound.stats.cache_misses = 1;
      }
      if (req.outcome == CacheLookup::kCorrupt) {
        req.point.bound.diagnostics.warn(
            diag::SolveErrorKind::kCorruptCache,
            "cache entry " + req.key + " was unreadable; re-solved");
      }
      ++summary.solved;
      if (!req.point.ok) ++summary.failed;
    }
    done_offset += members.size();
  }

  // ----- emit (input order) ----------------------------------------------
  for (const Request& req : requests) {
    Value response = Value::object();
    response.set("schema", Value::number(kSchemaVersion)).set("id", req.id);
    if (!req.parsed) {
      response.set("ok", Value::boolean(false))
          .set("error", Value::string(req.error));
      ++summary.parse_errors;
    } else {
      response.set("ok", Value::boolean(true));
      if (options.cache != nullptr) {
        response.set("cache", Value::string(lookup_name(req.outcome)));
      }
      response.set("result", encode_bound_result(req.point.bound));
      summary.stats += req.point.bound.stats;
    }
    out << response.dump() << '\n';
    ++summary.responses;
  }

  if (options.cache != nullptr) {
    const CacheStats& after = options.cache->stats();
    summary.cache_stats.hits = after.hits - cache_before.hits;
    summary.cache_stats.misses = after.misses - cache_before.misses;
    summary.cache_stats.stale = after.stale - cache_before.stale;
    summary.cache_stats.corrupt = after.corrupt - cache_before.corrupt;
    summary.cache_stats.stores = after.stores - cache_before.stores;
  }
  summary.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return summary;
}

}  // namespace deltanc::io
