#include "io/batch.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "e2e/solver.h"

namespace deltanc::io {

namespace {

using Clock = std::chrono::steady_clock;
using json::Value;

/// One input line's lifecycle through the batch.
struct Request {
  bool parsed = false;
  std::string error;       ///< parse/decode failure when !parsed
  ParsedRequestLine line;  ///< valid when parsed
  CacheLookup outcome = CacheLookup::kMiss;
  SweepPoint point;            ///< the scalar answer (cache hit or solve)
  e2e::DelayProfile profile;  ///< the answer when line.is_profile()
};

}  // namespace

const char* cache_lookup_name(CacheLookup outcome) {
  switch (outcome) {
    case CacheLookup::kHit:
      return "hit";
    case CacheLookup::kMiss:
      return "miss";
    case CacheLookup::kStale:
      return "stale";
    case CacheLookup::kCorrupt:
      return "corrupt";
  }
  return "?";
}

ParsedRequestLine parse_request_line(const std::string& line,
                                     e2e::Method default_method) {
  const Value doc = Value::parse(line);
  ParsedRequestLine req;
  try {
    // Capture the id before any validation so even a wrong-schema or
    // undecodable request gets its error echoed back under its own id.
    if (const Value* id = doc.find("id")) req.id = *id;
    require_schema(doc);
    e2e::Scenario sc = decode_scenario(doc.at("scenario"));
    SolveOptions options;
    options.method = default_method;
    if (const Value* o = doc.find("options"); o != nullptr && !o->is_null()) {
      options = decode_solve_options(*o);
    }
    // Fold the scheduler override into the scenario here (not just inside
    // solve_cache_key) so grouping by options groups by what actually
    // varies the solve.
    if (options.scheduler.has_value()) {
      sc.scheduler = *options.scheduler;
      options.scheduler.reset();
    }
    options.reuse_workspace = true;
    // A non-null "epsilons" array makes this a profile request.  The
    // grid is validated here so a malformed one is a parse error (the
    // engine would throw the same complaint mid-solve otherwise).
    if (const Value* eps = doc.find("epsilons");
        eps != nullptr && !eps->is_null()) {
      for (const Value& e : eps->items()) {
        const double epsilon = decode_double(e);
        if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
          throw CodecError("batch: profile epsilons must be in (0, 1), got " +
                           e.dump());
        }
        req.epsilons.push_back(epsilon);
      }
      if (req.epsilons.empty()) {
        throw CodecError("batch: profile request with an empty epsilons "
                         "array");
      }
    }
    req.scenario = sc;
    req.options = options;
    req.key = req.is_profile()
                  ? profile_cache_key(sc, req.epsilons, options)
                  : solve_cache_key(sc, options);
  } catch (const PartialRequestError&) {
    throw;
  } catch (const std::exception& e) {
    // The id (when readable) survives into the error response.
    throw PartialRequestError(e.what(), req.id);
  }
  return req;
}

void apply_cache_outcome(e2e::BoundResult& result, CacheLookup outcome,
                         const std::string& key) {
  result.stats.cache_hits = 0;
  result.stats.cache_misses = 0;
  result.stats.cache_stale = 0;
  switch (outcome) {
    case CacheLookup::kHit:
      result.stats.cache_hits = 1;
      return;
    case CacheLookup::kStale:
      result.stats.cache_stale = 1;
      return;
    case CacheLookup::kMiss:
      result.stats.cache_misses = 1;
      return;
    case CacheLookup::kCorrupt:
      result.stats.cache_misses = 1;
      result.diagnostics.warn(
          diag::SolveErrorKind::kCorruptCache,
          "cache entry " + key + " was unreadable; re-solved");
      return;
  }
}

void apply_cache_outcome(e2e::DelayProfile& profile, CacheLookup outcome,
                         const std::string& key) {
  profile.stats.cache_hits = 0;
  profile.stats.cache_misses = 0;
  profile.stats.cache_stale = 0;
  switch (outcome) {
    case CacheLookup::kHit:
      profile.stats.cache_hits = 1;
      return;
    case CacheLookup::kStale:
      profile.stats.cache_stale = 1;
      return;
    case CacheLookup::kMiss:
      profile.stats.cache_misses = 1;
      return;
    case CacheLookup::kCorrupt:
      profile.stats.cache_misses = 1;
      // The profile carries no diagnostics of its own: the recovery
      // warning lands on the first level so it stays downstream-visible.
      if (!profile.levels.empty()) {
        profile.levels.front().diagnostics.warn(
            diag::SolveErrorKind::kCorruptCache,
            "cache entry " + key + " was unreadable; re-solved");
      }
      return;
  }
}

ProfileAnswer solve_profile_request(const deltanc::Solver& solver,
                                    const e2e::Scenario& sc,
                                    std::span<const double> epsilons) {
  ProfileAnswer out;
  const diag::ValidationReport vr = sc.validate();
  diag::SolveErrorKind fail_kind = diag::SolveErrorKind::kNumericalDomain;
  try {
    if (!vr.ok()) {
      fail_kind = diag::SolveErrorKind::kInvalidScenario;
      throw std::invalid_argument(vr.message());
    }
    out.profile = solver.solve_profile(sc, epsilons);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
    e2e::BoundResult failed{std::numeric_limits<double>::infinity(), 0.0, 0.0,
                            0.0, 0.0};
    failed.diagnostics.fail(fail_kind, e.what());
    out.profile = e2e::DelayProfile{};
    out.profile.epsilons.assign(epsilons.begin(), epsilons.end());
    out.profile.levels.assign(epsilons.size(), failed);
  }
  return out;
}

json::Value make_ok_response(const json::Value& id, bool with_cache_tag,
                             CacheLookup outcome,
                             const e2e::BoundResult& result) {
  Value response = Value::object();
  response.set("schema", Value::number(kSchemaVersion)).set("id", id);
  response.set("ok", Value::boolean(true));
  if (with_cache_tag) {
    response.set("cache", Value::string(cache_lookup_name(outcome)));
  }
  response.set("result", encode_bound_result(result));
  return response;
}

json::Value make_ok_profile_response(const json::Value& id,
                                     bool with_cache_tag, CacheLookup outcome,
                                     const e2e::DelayProfile& profile) {
  Value response = Value::object();
  response.set("schema", Value::number(kSchemaVersion)).set("id", id);
  response.set("ok", Value::boolean(true));
  if (with_cache_tag) {
    response.set("cache", Value::string(cache_lookup_name(outcome)));
  }
  response.set("profile", encode_delay_profile(profile));
  return response;
}

json::Value make_error_response(const json::Value& id,
                                const std::string& error,
                                diag::SolveErrorKind kind) {
  Value response = Value::object();
  response.set("schema", Value::number(kSchemaVersion)).set("id", id);
  response.set("ok", Value::boolean(false))
      .set("error", Value::string(error));
  if (kind != diag::SolveErrorKind::kNone) {
    response.set("kind", Value::string(diag::solve_error_name(kind)));
  }
  return response;
}

BatchSummary run_batch(std::istream& in, std::ostream& out,
                       const BatchOptions& options) {
  const auto t0 = Clock::now();
  BatchSummary summary;
  const CacheStats cache_before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  // ----- ingest ----------------------------------------------------------
  // std::getline delivers a final line without a trailing newline like
  // any other (it extracts up to EOF), so "emit-batch | head -c" style
  // truncated tails are answered, not dropped.
  std::vector<Request> requests;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Request req;
    try {
      req.line = parse_request_line(line, options.default_method);
      req.parsed = true;
    } catch (const PartialRequestError& e) {
      req.line.id = e.id;
      req.error = e.what();
    } catch (const std::exception& e) {
      req.error = e.what();
    }
    requests.push_back(std::move(req));
  }
  summary.requests = static_cast<std::int64_t>(requests.size());

  // ----- cache pass ------------------------------------------------------
  std::vector<std::size_t> pending;  // request indices still to solve
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request& req = requests[i];
    if (!req.parsed) continue;
    if (options.cache == nullptr) {
      pending.push_back(i);
      continue;
    }
    if (req.line.is_profile()) {
      // Profile entries are new in schema 5: key-level lookup, no
      // legacy chain to probe.
      e2e::DelayProfile cached;
      req.outcome = options.cache->lookup_profile(req.line.key, cached);
      if (req.outcome == CacheLookup::kHit) {
        req.profile = std::move(cached);
        apply_cache_outcome(req.profile, req.outcome, req.line.key);
        ++summary.cached;
      } else {
        pending.push_back(i);
      }
      continue;
    }
    e2e::BoundResult cached;
    // Scenario-level lookup: also classifies pre-refactor (schema-1)
    // entries of the same solve as stale instead of missing them.
    req.outcome =
        options.cache->lookup(req.line.scenario, req.line.options, cached);
    if (req.outcome == CacheLookup::kHit) {
      req.point.scenario = req.line.scenario;
      req.point.bound = std::move(cached);
      apply_cache_outcome(req.point.bound, req.outcome, req.line.key);
      ++summary.cached;
    } else {
      pending.push_back(i);
    }
  }

  // ----- solve pass: group misses by options, fan out per group ----------
  // Profile requests fan out separately (their unit of work is a whole
  // d(epsilon) grid, not one BoundResult) but share the progress stream.
  std::map<std::string, std::vector<std::size_t>> groups;
  std::map<std::string, std::vector<std::size_t>> profile_groups;
  for (const std::size_t i : pending) {
    auto& bucket =
        requests[i].line.is_profile() ? profile_groups : groups;
    bucket[encode_solve_options(requests[i].line.options).dump()].push_back(i);
  }
  const std::size_t total_pending = pending.size();
  std::size_t done_offset = 0;
  for (const auto& [options_key, members] : groups) {
    (void)options_key;
    const Solver solver(requests[members.front()].line.options);
    std::vector<e2e::Scenario> scenarios;
    scenarios.reserve(members.size());
    for (const std::size_t i : members) {
      scenarios.push_back(requests[i].line.scenario);
    }
    SweepOptions sweep;
    sweep.threads = options.threads;
    sweep.method = solver.options().method;
    sweep.solver = [&solver](const e2e::Scenario& sc, e2e::Method) {
      return solver.solve(sc);
    };
    if (options.progress) {
      sweep.progress = [&options, done_offset,
                        total_pending](std::size_t done, std::size_t) {
        options.progress(done_offset + done, total_pending);
      };
    }
    const SweepReport report = SweepRunner(sweep).run(
        std::span<const e2e::Scenario>(scenarios));
    for (std::size_t j = 0; j < members.size(); ++j) {
      Request& req = requests[members[j]];
      req.point = report.points[j];
      if (req.point.ok && options.cache != nullptr) {
        // Persist with the cache counters zeroed: they describe how a
        // particular response was obtained, not the result itself.  A
        // failed store (full disk, read-only directory) degrades to a
        // counted solve-through -- the batch keeps answering.
        (void)options.cache->try_store(req.line.key, req.point.bound);
      }
      apply_cache_outcome(req.point.bound, req.outcome, req.line.key);
      ++summary.solved;
      if (!req.point.ok) ++summary.failed;
    }
    done_offset += members.size();
  }

  // ----- profile solve pass ----------------------------------------------
  for (const auto& [options_key, members] : profile_groups) {
    (void)options_key;
    const Solver solver(requests[members.front()].line.options);
    const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
        members.size(), options.threads > 0
                            ? static_cast<unsigned>(options.threads)
                            : ThreadPool::default_thread_count()));
    std::atomic<std::size_t> cursor{0};
    std::mutex progress_mu;
    std::size_t group_done = 0;
    const auto worker = [&] {
      for (;;) {
        const std::size_t j = cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= members.size()) return;
        Request& req = requests[members[j]];
        ProfileAnswer answer = solve_profile_request(
            solver, req.line.scenario, req.line.epsilons);
        req.point.ok = answer.ok;
        req.point.error = answer.error;
        req.profile = std::move(answer.profile);
        if (options.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          options.progress(done_offset + ++group_done, total_pending);
        }
      }
    };
    {
      ThreadPool pool(threads);
      for (unsigned t = 0; t < threads; ++t) pool.submit(worker);
      pool.wait_idle();
    }
    for (const std::size_t i : members) {
      Request& req = requests[i];
      if (req.point.ok && options.cache != nullptr) {
        // Same persistence discipline as the scalar pass: counters
        // zeroed, failed stores degrade to counted solve-through.
        (void)options.cache->try_store_profile(req.line.key, req.profile);
      }
      apply_cache_outcome(req.profile, req.outcome, req.line.key);
      ++summary.solved;
      if (!req.point.ok) ++summary.failed;
    }
    done_offset += members.size();
  }

  // ----- emit (input order) ----------------------------------------------
  for (const Request& req : requests) {
    Value response;
    if (!req.parsed) {
      response = make_error_response(req.line.id, req.error);
      ++summary.parse_errors;
    } else if (req.line.is_profile()) {
      response = make_ok_profile_response(
          req.line.id, options.cache != nullptr, req.outcome, req.profile);
      summary.stats += req.profile.stats;
    } else {
      response = make_ok_response(req.line.id, options.cache != nullptr,
                                  req.outcome, req.point.bound);
      summary.stats += req.point.bound.stats;
    }
    out << response.dump() << '\n';
    if (!out.good()) {
      // The consumer hung up (e.g. `--batch | head`): stop emitting,
      // report the truncation instead of dying on SIGPIPE (the CLI
      // ignores the signal; the stream just goes bad).
      summary.output_failed = true;
      break;
    }
    ++summary.responses;
  }

  if (options.cache != nullptr) {
    const CacheStats& after = options.cache->stats();
    summary.cache_stats.hits = after.hits - cache_before.hits;
    summary.cache_stats.misses = after.misses - cache_before.misses;
    summary.cache_stats.stale = after.stale - cache_before.stale;
    summary.cache_stats.corrupt = after.corrupt - cache_before.corrupt;
    summary.cache_stats.stores = after.stores - cache_before.stores;
    summary.cache_stats.store_failures =
        after.store_failures - cache_before.store_failures;
  }
  summary.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return summary;
}

}  // namespace deltanc::io
