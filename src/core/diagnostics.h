// Structured solver diagnostics: every solve is classifiable instead of
// failing through ad-hoc exception strings or silently-accepted flags.
//
// Three pieces, shared by the whole stack:
//   * SolveErrorKind -- the closed taxonomy of ways a solve can go wrong
//     (malformed input, unstable load, fixed point stalled, numerics left
//     their domain), carried in e2e::BoundResult::diagnostics and
//     aggregated per kind by SweepReport::counts_by_kind().
//   * Diagnostics -- the per-solve channel: at most one fatal error plus
//     any number of warnings (a warning means the result is usable but a
//     recovery or concession happened, e.g. an EDF fixed point that ran
//     out of iterations).
//   * ValidationReport -- scenario validation that collects *all*
//     violations in one pass (Scenario::validate()), so error messages
//     name every bad field instead of the first one found.
//
// Everything needed by the solver layer (src/e2e) is defined inline so
// this header creates no link-time dependency on deltanc_core; only the
// aggregation/rendering helpers live in diagnostics.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace deltanc::diag {

/// Closed classification of solve failures and concessions.
enum class SolveErrorKind {
  kNone = 0,          ///< no classification (healthy solve)
  kInvalidScenario,   ///< malformed input (caught by validation)
  kUnstable,          ///< offered load >= capacity; bound is +inf by theory
  kNoConvergence,     ///< an iteration (EDF fixed point) exhausted its budget
  kNumericalDomain,   ///< numerics left their domain (overflow, empty bracket)
  kCorruptCache,      ///< a persistent cache entry was unreadable; re-solved
  // Service-level kinds (src/serve): ways a *request* can fail even
  // though the solver itself is healthy.
  kTimeout,           ///< a per-request deadline expired before the answer
  kOverload,          ///< rejected by backpressure (bounded queue was full)
  kWorkerLost,        ///< the worker died mid-request; retries exhausted
  kCacheStoreFailed,  ///< a cache store failed (full disk); solved through
};

/// Number of distinct SolveErrorKind values (for per-kind count arrays).
inline constexpr std::size_t kSolveErrorKinds = 10;

/// Stable machine-friendly name ("invalid-scenario", "unstable", ...).
[[nodiscard]] constexpr const char* solve_error_name(SolveErrorKind kind) {
  switch (kind) {
    case SolveErrorKind::kNone:
      return "none";
    case SolveErrorKind::kInvalidScenario:
      return "invalid-scenario";
    case SolveErrorKind::kUnstable:
      return "unstable";
    case SolveErrorKind::kNoConvergence:
      return "no-convergence";
    case SolveErrorKind::kNumericalDomain:
      return "numerical-domain";
    case SolveErrorKind::kCorruptCache:
      return "corrupt-cache";
    case SolveErrorKind::kTimeout:
      return "timeout";
    case SolveErrorKind::kOverload:
      return "overload";
    case SolveErrorKind::kWorkerLost:
      return "worker-lost";
    case SolveErrorKind::kCacheStoreFailed:
      return "cache-store-failed";
  }
  return "?";
}

/// Inverse of solve_error_name; returns false on unknown names.  Used by
/// the JSON codec (src/io/codec.h) to decode persisted diagnostics.
[[nodiscard]] constexpr bool solve_error_from_name(std::string_view name,
                                                   SolveErrorKind& out) {
  for (std::size_t i = 0; i < kSolveErrorKinds; ++i) {
    const auto kind = static_cast<SolveErrorKind>(i);
    if (name == solve_error_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

/// One non-fatal diagnostic attached to an otherwise usable result.
struct Warning {
  SolveErrorKind kind = SolveErrorKind::kNone;
  std::string message;
};

/// Per-solve diagnostics channel, carried in e2e::BoundResult.
struct Diagnostics {
  SolveErrorKind error = SolveErrorKind::kNone;  ///< fatal classification
  std::string message;                           ///< human detail for `error`
  std::vector<Warning> warnings;                 ///< non-fatal concessions

  /// No fatal error (warnings may still be present).
  [[nodiscard]] bool ok() const noexcept {
    return error == SolveErrorKind::kNone;
  }
  /// No fatal error and no warnings.
  [[nodiscard]] bool clean() const noexcept { return ok() && warnings.empty(); }

  void fail(SolveErrorKind kind, std::string detail) {
    error = kind;
    message = std::move(detail);
  }
  void warn(SolveErrorKind kind, std::string detail) {
    warnings.push_back(Warning{kind, std::move(detail)});
  }
};

/// One violated constraint of a scenario: which field, what is wrong.
struct Violation {
  SolveErrorKind kind = SolveErrorKind::kInvalidScenario;
  std::string field;    ///< "capacity", "hops", "epsilon", ...
  std::string message;  ///< "must be > 0 (got -3)"
};

/// Result of Scenario::validate(): every violation, not just the first.
/// kInvalidScenario / kNumericalDomain entries make the scenario
/// unsolvable (ok() == false); kUnstable entries mark a well-formed but
/// overloaded scenario whose bound is +inf (ok() stays true so the solver
/// can still classify it).
class ValidationReport {
 public:
  void add(SolveErrorKind kind, std::string field, std::string message) {
    violations_.push_back(
        Violation{kind, std::move(field), std::move(message)});
  }

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// Count of violations that make the scenario unsolvable.
  [[nodiscard]] std::size_t error_count() const noexcept {
    std::size_t n = 0;
    for (const Violation& v : violations_) {
      n += (v.kind != SolveErrorKind::kUnstable) ? 1 : 0;
    }
    return n;
  }

  /// True when the scenario is well-formed (it may still be unstable).
  [[nodiscard]] bool ok() const noexcept { return error_count() == 0; }
  /// True when no kUnstable violation was recorded.
  [[nodiscard]] bool stable() const noexcept {
    for (const Violation& v : violations_) {
      if (v.kind == SolveErrorKind::kUnstable) return false;
    }
    return true;
  }

  /// All violations joined as "field: message; field: message; ...".
  [[nodiscard]] std::string message() const {
    std::string out;
    for (const Violation& v : violations_) {
      if (!out.empty()) out += "; ";
      out += v.field;
      out += ": ";
      out += v.message;
    }
    return out;
  }

  /// @throws std::invalid_argument naming every unsolvable violation in
  /// one message ("who: field: msg; field: msg").  No-op when ok().
  void throw_if_invalid(const char* who) const {
    if (ok()) return;
    std::string out;
    for (const Violation& v : violations_) {
      if (v.kind == SolveErrorKind::kUnstable) continue;
      if (!out.empty()) out += "; ";
      out += v.field;
      out += ": ";
      out += v.message;
    }
    throw std::invalid_argument(std::string(who) + ": " + out);
  }

 private:
  std::vector<Violation> violations_;
};

/// Per-kind tallies of errors and warnings across a sweep -- the
/// aggregation behind SweepReport::counts_by_kind().
struct ErrorCounts {
  std::array<std::size_t, kSolveErrorKinds> errors{};
  std::array<std::size_t, kSolveErrorKinds> warnings{};

  /// Tallies one solve's diagnostics (its error kind and every warning).
  void record(const Diagnostics& d);
  void record_error(SolveErrorKind kind);

  [[nodiscard]] std::size_t total_errors() const noexcept;
  [[nodiscard]] std::size_t total_warnings() const noexcept;

  /// Nonzero kinds as "unstable=2 no-convergence(warn)=1"; "" when clean.
  [[nodiscard]] std::string summary() const;

  ErrorCounts& operator+=(const ErrorCounts& other) noexcept;
};

}  // namespace deltanc::diag
