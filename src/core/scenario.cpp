#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deltanc {

int flows_for_utilization(const e2e::Scenario& sc, double u) {
  if (!(u >= 0.0)) {
    throw std::invalid_argument("flows_for_utilization: utilization >= 0");
  }
  return static_cast<int>(std::lround(u * sc.capacity / sc.source.mean_rate()));
}

ScenarioBuilder& ScenarioBuilder::capacity_mbps(double c) {
  if (!(c > 0.0)) {
    throw std::invalid_argument("ScenarioBuilder: capacity must be > 0");
  }
  sc_.capacity = c;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::hops(int h) {
  if (h < 1) throw std::invalid_argument("ScenarioBuilder: hops must be >= 1");
  sc_.hops = h;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::source(const traffic::MmooSource& src) {
  sc_.source = src;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::through_flows(int n) {
  if (n < 1) {
    throw std::invalid_argument("ScenarioBuilder: need >= 1 through flow");
  }
  sc_.n_through = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cross_flows(int n) {
  if (n < 0) {
    throw std::invalid_argument("ScenarioBuilder: cross flows must be >= 0");
  }
  sc_.n_cross = n;
  return *this;
}

int ScenarioBuilder::flows_for_utilization(double u) const {
  return deltanc::flows_for_utilization(sc_, u);
}

ScenarioBuilder& ScenarioBuilder::through_utilization(double u) {
  sc_.n_through = std::max(1, flows_for_utilization(u));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cross_utilization(double u) {
  sc_.n_cross = flows_for_utilization(u);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::violation_probability(double eps) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("ScenarioBuilder: need 0 < epsilon < 1");
  }
  sc_.epsilon = eps;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::scheduler(e2e::Scheduler s) {
  sc_.scheduler = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::edf_deadlines(double own_factor,
                                                double cross_factor) {
  if (!(own_factor > 0.0) || !(cross_factor > 0.0)) {
    throw std::invalid_argument(
        "ScenarioBuilder: EDF deadline factors must be > 0");
  }
  sc_.edf.own_factor = own_factor;
  sc_.edf.cross_factor = cross_factor;
  return *this;
}

e2e::Scenario ScenarioBuilder::build() const { return sc_; }

}  // namespace deltanc
