#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deltanc {

int flows_for_utilization(const e2e::Scenario& sc, double u) {
  if (!std::isfinite(u) || !(u >= 0.0)) {
    throw std::invalid_argument(
        "flows_for_utilization: utilization must be finite and >= 0");
  }
  const double flows = std::round(u * sc.capacity / sc.source.mean_rate());
  if (!(flows <= static_cast<double>(std::numeric_limits<int>::max()))) {
    throw std::invalid_argument(
        "flows_for_utilization: utilization resolves to more flows than "
        "an int can hold");
  }
  return static_cast<int>(flows);
}

ScenarioBuilder& ScenarioBuilder::capacity_mbps(double c) {
  sc_.capacity = c;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::hops(int h) {
  sc_.hops = h;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::source(const traffic::MmooSource& src) {
  sc_.source = src;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::through_flows(int n) {
  sc_.n_through = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cross_flows(int n) {
  sc_.n_cross = n;
  return *this;
}

int ScenarioBuilder::flows_for_utilization(double u) const {
  return deltanc::flows_for_utilization(sc_, u);
}

ScenarioBuilder& ScenarioBuilder::through_utilization(double u) {
  sc_.n_through = std::max(1, flows_for_utilization(u));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cross_utilization(double u) {
  sc_.n_cross = flows_for_utilization(u);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::violation_probability(double eps) {
  sc_.epsilon = eps;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::scheduler(const sched::SchedulerSpec& spec) {
  sc_.scheduler = spec;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::scheduler(sched::SchedulerKind kind) {
  sc_.scheduler = kind;  // kind assignment keeps the stored EDF factors
  return *this;
}

ScenarioBuilder& ScenarioBuilder::edf_deadlines(double own_factor,
                                                double cross_factor) {
  sc_.scheduler.set_edf_factors({own_factor, cross_factor});
  return *this;
}

diag::ValidationReport ScenarioBuilder::validate() const {
  return sc_.validate();
}

e2e::Scenario ScenarioBuilder::build() const {
  sc_.validate().throw_if_invalid("ScenarioBuilder");
  return sc_;
}

}  // namespace deltanc
