#include "core/selfcheck.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "core/analyzer.h"
#include "core/scenario.h"
#include "e2e/solver.h"

namespace deltanc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Short human-readable identification of a scenario for issue messages.
std::string describe(const e2e::Scenario& sc) {
  std::string out = "H=" + std::to_string(sc.hops) +
                    " sched=" + scheduler_name(sc.scheduler);
  if (sc.scheduler == sched::SchedulerKind::kEdf) {
    const sched::EdfFactors& edf = sc.scheduler.edf_factors();
    out += "(" + fmt(edf.own_factor) + "," + fmt(edf.cross_factor) + ")";
  }
  out += " N0=" + std::to_string(sc.n_through) +
         " Nc=" + std::to_string(sc.n_cross) + " C=" + fmt(sc.capacity) +
         " eps=" + fmt(sc.epsilon) + " U=" + fmt(100.0 * sc.utilization()) +
         "%";
  return out;
}

/// Key of everything *except* the scheduler and deadlines: scenarios
/// sharing a key differ only in Delta, so their bounds must be ordered.
std::string group_key(const e2e::Scenario& sc) {
  char buf[200];
  std::snprintf(buf, sizeof buf, "%a|%d|%d|%d|%a|%a|%a", sc.capacity, sc.hops,
                sc.n_through, sc.n_cross, sc.epsilon, sc.source.mean_rate(),
                sc.source.peak_rate());
  return buf;
}

/// Direction of the delay bound along a sweep axis: +1 = non-decreasing,
/// -1 = non-increasing, 0 = no theory-known direction (scheduler, edf).
int axis_direction(const std::string& name) {
  if (name == "hops" || name == "n0" || name == "nc" || name == "u0" ||
      name == "uc") {
    return +1;
  }
  // Theorem 1's bound is monotone non-decreasing in the scheduler offset
  // Delta, so the continuous delta axis has a known direction too.
  if (name == "delta") return +1;
  if (name == "epsilon" || name == "capacity") return -1;
  return 0;
}

struct Checker {
  const SelfCheckOptions& opt;
  SelfCheckReport report;

  void issue(const char* check, std::string detail) {
    report.issues.push_back(SelfCheckIssue{check, std::move(detail)});
  }

  /// `lo` must not exceed `hi` by more than the relative tolerance; +inf
  /// on the `hi` side always passes, +inf on the `lo` side only against
  /// +inf.  Returns false on violation.
  [[nodiscard]] static bool ordered(double lo, double hi, double tol) {
    if (lo == kInf) return hi == kInf;
    if (hi == kInf) return true;
    return hi >= lo - tol * std::max(lo, 1.0);
  }

  void check_point(const SweepPoint& p, bool default_solver) {
    const double delay = p.bound.delay_ms;
    ++report.checks;
    if (!p.ok) {
      issue("solve", "solver failed (" + p.error + ") for " +
                         describe(p.scenario));
      return;
    }
    // Curve-backed schedulers have no Delta coordinate: their delta is
    // NaN by contract, and GPS-style isolation legitimately keeps the
    // bound finite at total utilization >= 1 as long as the provider's
    // guaranteed rate exceeds the through load (the solver's own
    // validation enforces that per-class stability condition).
    const bool curve_backed = p.scenario.scheduler.is_curve_backed();
    if (std::isnan(delay) || std::isnan(p.bound.gamma) ||
        std::isnan(p.bound.s) || std::isnan(p.bound.sigma) ||
        (!curve_backed && std::isnan(p.bound.delta))) {
      issue("finiteness", "NaN in result tuple for " + describe(p.scenario));
      return;
    }
    const double u = p.scenario.utilization();
    if (!curve_backed) {
      ++report.checks;
      if (u >= 1.0 && delay != kInf) {
        issue("finiteness", "finite bound " + fmt(delay) +
                                " ms despite utilization >= 1 for " +
                                describe(p.scenario));
      }
    }
    if (std::isfinite(delay)) {
      ++report.checks;
      if (!(delay >= 0.0) || !(p.bound.s > 0.0) ||
          !std::isfinite(p.bound.gamma) || !std::isfinite(p.bound.sigma)) {
        issue("finiteness",
              "malformed optimum (delay=" + fmt(delay) +
                  ", gamma=" + fmt(p.bound.gamma) + ", s=" + fmt(p.bound.s) +
                  ", sigma=" + fmt(p.bound.sigma) + ") for " +
                  describe(p.scenario));
      }
    } else if (default_solver) {
      // Every +inf from the built-in solver must be classified: unstable
      // load or an (explicitly recorded) empty numerical domain.
      ++report.checks;
      if (p.bound.diagnostics.ok()) {
        issue("classification", "unclassified +inf bound for " +
                                    describe(p.scenario));
      }
    }
  }

  /// Delta-ordering within groups of points differing only in
  /// scheduler/deadlines: delays sorted by resolved Delta must be
  /// non-decreasing (SP-high <= EDF <= FIFO <= BMUX and the Fig. 3 EDF
  /// variants in deadline order).
  void check_ordering(const std::vector<SweepPoint>& points) {
    struct Entry {
      double delta, delay;
      const e2e::Scenario* sc;
    };
    std::map<std::string, std::vector<Entry>> groups;
    for (const SweepPoint& p : points) {
      if (!p.ok || std::isnan(p.bound.delay_ms)) continue;
      // Curve-backed points have no Delta coordinate to sort by (their
      // delta is NaN, which would poison the strict weak ordering);
      // their orderings are self_check_curve_backed()'s job.
      if (p.scenario.scheduler.is_curve_backed()) continue;
      groups[group_key(p.scenario)].push_back(
          Entry{p.bound.delta, p.bound.delay_ms, &p.scenario});
    }
    for (auto& [key, entries] : groups) {
      (void)key;
      if (entries.size() < 2) continue;
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.delta != b.delta) return a.delta < b.delta;
                  return a.delay < b.delay;
                });
      for (std::size_t i = 1; i < entries.size(); ++i) {
        const Entry& lo = entries[i - 1];
        const Entry& hi = entries[i];
        ++report.checks;
        if (!ordered(lo.delay, hi.delay, opt.ordering_tol)) {
          issue("ordering",
                describe(*hi.sc) + " (Delta=" + fmt(hi.delta) + ") bound " +
                    fmt(hi.delay) + " ms undercuts " + describe(*lo.sc) +
                    " (Delta=" + fmt(lo.delta) + ") bound " + fmt(lo.delay) +
                    " ms");
        }
      }
    }
  }

  /// Monotonicity along every grid axis with a known direction, walking
  /// each grid line via the row-major strides of SweepGrid.
  void check_monotonicity(const SweepGrid& grid,
                          const std::vector<SweepPoint>& points) {
    const std::size_t n = points.size();
    for (std::size_t a = 0; a < grid.axes(); ++a) {
      const int dir = axis_direction(grid.axis_name(a));
      const std::size_t m = grid.axis_size(a);
      if (dir == 0 || m < 2) continue;
      std::size_t stride = 1;
      for (std::size_t b = a + 1; b < grid.axes(); ++b) {
        stride *= grid.axis_size(b);
      }
      for (std::size_t i = 0; i < n; ++i) {
        if ((i / stride) % m != 0) continue;  // not the start of a line
        for (std::size_t j = 1; j < m; ++j) {
          const SweepPoint& prev = points[i + (j - 1) * stride];
          const SweepPoint& cur = points[i + j * stride];
          if (!prev.ok || !cur.ok) continue;
          const double lo =
              dir > 0 ? prev.bound.delay_ms : cur.bound.delay_ms;
          const double hi =
              dir > 0 ? cur.bound.delay_ms : prev.bound.delay_ms;
          ++report.checks;
          if (!ordered(lo, hi, opt.monotonicity_tol)) {
            issue("monotonicity",
                  "delay not " +
                      std::string(dir > 0 ? "non-decreasing"
                                          : "non-increasing") +
                      " along axis '" + grid.axis_name(a) + "': " +
                      fmt(prev.bound.delay_ms) + " ms at " +
                      describe(prev.scenario) + " vs " +
                      fmt(cur.bound.delay_ms) + " ms at " +
                      describe(cur.scenario));
          }
        }
      }
    }
  }

  /// kExactOpt <= kPaperK (the K-procedure restricts the search) and
  /// kPaperK within method_tol of kExactOpt; finiteness must agree.
  void check_methods(const std::vector<SweepPoint>& exact,
                     const std::vector<SweepPoint>& paperk) {
    for (std::size_t i = 0; i < exact.size() && i < paperk.size(); ++i) {
      if (!exact[i].ok || !paperk[i].ok) continue;
      const double de = exact[i].bound.delay_ms;
      const double dk = paperk[i].bound.delay_ms;
      if (std::isnan(de) || std::isnan(dk)) continue;  // flagged already
      ++report.checks;
      if ((de == kInf) != (dk == kInf)) {
        issue("method-agreement",
              "finiteness mismatch (exact=" + fmt(de) + " ms, paper-K=" +
                  fmt(dk) + " ms) for " + describe(exact[i].scenario));
        continue;
      }
      if (de == kInf) continue;
      if (!ordered(de, dk, opt.ordering_tol)) {
        issue("method-agreement",
              "paper-K bound " + fmt(dk) + " ms undercuts exact bound " +
                  fmt(de) + " ms for " + describe(exact[i].scenario));
      } else if (exact[i].bound.delta >= 0.0 &&
                 !(exact[i].scenario.scheduler ==
                       sched::SchedulerKind::kDelta &&
                   std::isfinite(exact[i].scenario.scheduler.delta()) &&
                   exact[i].scenario.scheduler.delta() != 0.0) &&
                 dk > de * (1.0 + opt.method_tol)) {
        // The two-sided agreement only holds where the K-procedure is
        // near-optimal.  For Delta < 0 the paper's K = 0 rule (Eq. 42)
        // overshoots by design (see bench/ablation_k_procedure.cpp), so
        // only the one-sided exact <= paper-K invariant applies there.
        // Intermediate explicit fixed-Delta points are exempt too: K's
        // integer quantization error scales with Delta / d_e2e, which
        // the named schedulers (Delta = 0 / +-inf) and the EDF fixed
        // point keep small but an arbitrary finite offset does not.
        issue("method-agreement",
              "paper-K bound " + fmt(dk) + " ms exceeds exact bound " +
                  fmt(de) + " ms by more than " +
                  fmt(100.0 * opt.method_tol) + "% for " +
                  describe(exact[i].scenario));
      }
    }
  }
};

SweepReport solve_all(std::span<const e2e::Scenario> scenarios,
                      const SelfCheckOptions& options, e2e::Method method) {
  SweepOptions so;
  so.threads = options.threads;
  so.method = method;
  so.solver = options.solver;
  return SweepRunner(so).run(scenarios);
}

/// Delta-endpoint pinning (the satellite invariant of the continuous
/// axis): for every base scenario, the bound at an explicit Delta = 0
/// must equal the FIFO bound and the bound at Delta = +inf the BMUX
/// bound, *bit-identically* -- the solver routes all four through the
/// same fixed-Delta path, so any difference is a routing bug.
SelfCheckReport check_delta_endpoints(std::span<const e2e::Scenario> bases,
                                      const SelfCheckOptions& options) {
  Checker checker{options, {}};
  std::vector<e2e::Scenario> scenarios;
  scenarios.reserve(bases.size() * 4);
  for (const e2e::Scenario& base : bases) {
    e2e::Scenario sc = base;
    sc.scheduler = sched::SchedulerSpec::fixed_delta(0.0);
    scenarios.push_back(sc);
    sc.scheduler = sched::SchedulerKind::kFifo;
    scenarios.push_back(sc);
    sc.scheduler = sched::SchedulerSpec::fixed_delta(kInf);
    scenarios.push_back(sc);
    sc.scheduler = sched::SchedulerKind::kBmux;
    scenarios.push_back(sc);
  }
  const SweepReport r = solve_all(scenarios, options, options.method);
  checker.report.points = r.points.size();
  for (std::size_t i = 0; i + 3 < r.points.size(); i += 4) {
    for (std::size_t pair = 0; pair < 2; ++pair) {
      const SweepPoint& at_delta = r.points[i + 2 * pair];
      const SweepPoint& named = r.points[i + 2 * pair + 1];
      ++checker.report.checks;
      if (!at_delta.ok || !named.ok) {
        checker.issue("delta-endpoint",
                      "endpoint solve failed for " +
                          describe(at_delta.scenario));
        continue;
      }
      if (at_delta.bound.delay_ms != named.bound.delay_ms) {
        checker.issue(
            "delta-endpoint",
            describe(at_delta.scenario) + " bound " +
                fmt(at_delta.bound.delay_ms) + " ms != " +
                describe(named.scenario) + " bound " +
                fmt(named.bound.delay_ms) + " ms (must pin bit-identically)");
      }
    }
  }
  return std::move(checker.report);
}

/// Shared backend of all self_check overloads: solve once, run the point
/// and ordering checks, then the grid-only and method checks.
SelfCheckReport run_checks(std::span<const e2e::Scenario> scenarios,
                           const SelfCheckOptions& options,
                           const SweepGrid* grid) {
  Checker checker{options, {}};
  const SweepReport primary = solve_all(scenarios, options, options.method);
  checker.report.points = primary.points.size();
  for (const SweepPoint& p : primary.points) {
    checker.check_point(p, !options.solver);
  }
  checker.check_ordering(primary.points);
  if (grid != nullptr) checker.check_monotonicity(*grid, primary.points);
  if (options.check_methods && !options.solver) {
    const e2e::Method other = options.method == e2e::Method::kExactOpt
                                  ? e2e::Method::kPaperK
                                  : e2e::Method::kExactOpt;
    const SweepReport secondary = solve_all(scenarios, options, other);
    checker.report.points += secondary.points.size();
    const bool primary_is_exact = options.method == e2e::Method::kExactOpt;
    checker.check_methods(
        primary_is_exact ? primary.points : secondary.points,
        primary_is_exact ? secondary.points : primary.points);
  }
  return std::move(checker.report);
}

}  // namespace

std::string SelfCheckReport::summary() const {
  return std::to_string(points) + " points, " + std::to_string(checks) +
         " checks, " + std::to_string(issues.size()) + " issue(s)";
}

SelfCheckReport& SelfCheckReport::operator+=(const SelfCheckReport& other) {
  points += other.points;
  checks += other.checks;
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
  return *this;
}

SelfCheckReport self_check(std::span<const e2e::Scenario> scenarios,
                           const SelfCheckOptions& options) {
  return run_checks(scenarios, options, nullptr);
}

SelfCheckReport self_check_warm_start(const SweepGrid& grid,
                                      const SelfCheckOptions& options) {
  Checker checker{options, {}};
  SweepOptions so;
  so.threads = options.threads;
  so.method = options.method;
  so.solver = options.solver;
  so.warm_start = e2e::WarmStart::kCold;
  const SweepReport cold = SweepRunner(so).run(grid);
  so.warm_start = e2e::WarmStart::kWarm;
  const SweepReport warm = SweepRunner(so).run(grid);
  checker.report.points = cold.points.size() + warm.points.size();
  for (std::size_t i = 0;
       i < cold.points.size() && i < warm.points.size(); ++i) {
    const SweepPoint& c = cold.points[i];
    const SweepPoint& w = warm.points[i];
    ++checker.report.checks;
    if (c.ok != w.ok) {
      checker.issue("warm-start",
                    std::string("cold/warm solve outcome mismatch (cold ") +
                        (c.ok ? "ok" : "failed") + ", warm " +
                        (w.ok ? "ok" : "failed") + ") for " +
                        describe(c.scenario));
      continue;
    }
    if (!c.ok) continue;  // both failed identically; flagged elsewhere
    const double dc = c.bound.delay_ms;
    const double dw = w.bound.delay_ms;
    if ((dc == kInf) != (dw == kInf)) {
      checker.issue("warm-start",
                    "finiteness mismatch (cold=" + fmt(dc) + " ms, warm=" +
                        fmt(dw) + " ms) for " + describe(c.scenario));
      continue;
    }
    if (dc == kInf) continue;
    const double dev = std::abs(dw - dc) / std::max(dc, 1.0);
    if (!(dev <= kWarmStartRelTol)) {
      checker.issue("warm-start",
                    "warm bound " + fmt(dw) + " ms deviates from cold " +
                        fmt(dc) + " ms by " + fmt(dev) +
                        " relative (tolerance " + fmt(kWarmStartRelTol) +
                        ") for " + describe(c.scenario));
    }
  }
  return std::move(checker.report);
}

SelfCheckReport self_check_profile(std::span<const e2e::Scenario> scenarios,
                                   std::span<const double> epsilons,
                                   const SelfCheckOptions& options) {
  Checker checker{options, {}};
  // Bitwise-identical up to NaN (curve-backed results carry a NaN delta
  // by contract, and NaN != NaN would flag a correct pin).
  const auto identical = [](double a, double b) {
    return a == b || (std::isnan(a) && std::isnan(b));
  };
  SolveOptions cold_options;
  cold_options.method = options.method;
  const Solver cold_solver(cold_options);
  SolveOptions warm_options = cold_options;
  warm_options.warm_start = e2e::WarmStart::kWarm;
  const Solver warm_solver(warm_options);

  for (const e2e::Scenario& sc : scenarios) {
    const e2e::DelayProfile cold = cold_solver.solve_profile(sc, epsilons);
    const e2e::DelayProfile warm = warm_solver.solve_profile(sc, epsilons);
    checker.report.points += cold.levels.size() + warm.levels.size();
    for (std::size_t i = 0; i < cold.levels.size(); ++i) {
      const e2e::BoundResult& c = cold.levels[i];
      const e2e::BoundResult& w = warm.levels[i];
      // Pinning: the cold profile level must be bit-identical to an
      // independent scalar solve of the same scenario at this epsilon.
      e2e::Scenario at_eps = sc;
      at_eps.epsilon = cold.epsilons[i];
      const e2e::BoundResult scalar = cold_solver.solve(at_eps);
      ++checker.report.points;
      ++checker.report.checks;
      if (!identical(c.delay_ms, scalar.delay_ms) ||
          !identical(c.gamma, scalar.gamma) || !identical(c.s, scalar.s) ||
          !identical(c.sigma, scalar.sigma) ||
          !identical(c.delta, scalar.delta)) {
        checker.issue("profile-pinning",
                      "cold profile level at eps=" + fmt(cold.epsilons[i]) +
                          " (" + fmt(c.delay_ms) +
                          " ms) differs from the scalar solve (" +
                          fmt(scalar.delay_ms) + " ms) for " + describe(sc));
      }
      // Classification: a non-finite level must say why.
      ++checker.report.checks;
      if (!std::isfinite(c.delay_ms) && c.diagnostics.ok()) {
        checker.issue("profile-classification",
                      "unclassified non-finite profile level at eps=" +
                          fmt(cold.epsilons[i]) + " for " + describe(sc));
      }
      // Warm tolerance: finiteness must agree; finite levels within
      // kWarmStartRelTol.
      ++checker.report.checks;
      if (std::isfinite(c.delay_ms) != std::isfinite(w.delay_ms)) {
        checker.issue("profile-warm",
                      "finiteness mismatch (cold=" + fmt(c.delay_ms) +
                          " ms, warm=" + fmt(w.delay_ms) + " ms) at eps=" +
                          fmt(cold.epsilons[i]) + " for " + describe(sc));
      } else if (std::isfinite(c.delay_ms)) {
        const double dev =
            std::abs(w.delay_ms - c.delay_ms) / std::max(c.delay_ms, 1.0);
        if (!(dev <= kWarmStartRelTol)) {
          checker.issue("profile-warm",
                        "warm profile level " + fmt(w.delay_ms) +
                            " ms deviates from cold " + fmt(c.delay_ms) +
                            " ms by " + fmt(dev) + " relative (tolerance " +
                            fmt(kWarmStartRelTol) + ") at eps=" +
                            fmt(cold.epsilons[i]) + " for " + describe(sc));
        }
      }
    }
    // Monotonicity: d(epsilon) non-increasing in epsilon, for both the
    // cold and the warm profile, walking the levels in ascending-epsilon
    // order whatever order the caller's grid uses.
    std::vector<std::size_t> order(cold.epsilons.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return cold.epsilons[a] < cold.epsilons[b];
    });
    const auto check_monotone = [&](const e2e::DelayProfile& profile,
                                    const char* label) {
      for (std::size_t k = 1; k < order.size(); ++k) {
        const double tighter = profile.levels[order[k - 1]].delay_ms;
        const double looser = profile.levels[order[k]].delay_ms;
        if (std::isnan(tighter) || std::isnan(looser)) continue;  // flagged
        ++checker.report.checks;
        // Larger epsilon must not yield the larger bound.
        if (!Checker::ordered(looser, tighter, options.monotonicity_tol)) {
          checker.issue("profile-monotonicity",
                        std::string(label) + " profile not non-increasing "
                            "in epsilon: d(" +
                            fmt(profile.epsilons[order[k]]) + ") = " +
                            fmt(looser) + " ms exceeds d(" +
                            fmt(profile.epsilons[order[k - 1]]) + ") = " +
                            fmt(tighter) + " ms for " + describe(sc));
        }
      }
    };
    check_monotone(cold, "cold");
    check_monotone(warm, "warm");
  }
  return std::move(checker.report);
}

SelfCheckReport self_check(const SweepGrid& grid,
                           const SelfCheckOptions& options) {
  const std::vector<e2e::Scenario> scenarios = grid.scenarios();
  return run_checks(std::span<const e2e::Scenario>(scenarios), options,
                    &grid);
}

SelfCheckReport self_check(const e2e::Scenario& scenario,
                           const SelfCheckOptions& options) {
  std::vector<e2e::Scenario> variants;
  for (sched::SchedulerKind s :
       {sched::SchedulerKind::kSpHigh, sched::SchedulerKind::kEdf,
        sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux}) {
    e2e::Scenario sc = scenario;
    sc.scheduler = s;  // kind re-assignment keeps the EDF factors
    variants.push_back(sc);
  }
  return self_check(std::span<const e2e::Scenario>(variants), options);
}

SelfCheckReport self_check_figures(const SelfCheckOptions& options) {
  SelfCheckReport report;
  const std::vector<sched::SchedulerKind> all_scheds = {
      sched::SchedulerKind::kSpHigh, sched::SchedulerKind::kEdf,
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux};

  // Fig. 2 (Example 1): utilization sweep at U0 = 15%, H = 2, 5, 10,
  // extended with SP-high so the full scheduler ordering is exercised.
  std::vector<double> cross_utils;
  for (int u_pct = 20; u_pct <= 95; u_pct += 5) {
    cross_utils.push_back(u_pct / 100.0 - 0.15);
  }
  for (int hops : {2, 5, 10}) {
    SweepGrid grid(ScenarioBuilder()
                       .hops(hops)
                       .through_flows(100)
                       .violation_probability(1e-9)
                       .edf_deadlines(1.0, 10.0)
                       .build());
    grid.cross_utilization_axis(cross_utils).scheduler_axis(all_scheds);
    report += self_check(grid, options);
    // Warm-start tolerance contract on the same grid: cold vs. chained
    // warm bounds must agree within kWarmStartRelTol (see selfcheck.h).
    report += self_check_warm_start(grid, options);
  }

  // Delay-profile battery on representative Fig. 2 operating points:
  // pinning (cold profile == scalar solves, bit-identical), warm
  // tolerance, d(epsilon) monotonicity, classification -- across the
  // Delta-backed schedulers and one curve-backed kind.
  {
    const std::vector<double> profile_eps = {1e-3, 1e-6, 1e-9, 1e-12};
    std::vector<e2e::Scenario> profile_bases;
    for (int hops : {2, 5, 10}) {
      const e2e::Scenario base = ScenarioBuilder()
                                     .hops(hops)
                                     .through_flows(100)
                                     .cross_utilization(0.50)
                                     .violation_probability(1e-9)
                                     .edf_deadlines(1.0, 10.0)
                                     .build();
      for (sched::SchedulerKind kind :
           {sched::SchedulerKind::kFifo, sched::SchedulerKind::kEdf,
            sched::SchedulerKind::kBmux}) {
        e2e::Scenario sc = base;
        sc.scheduler = kind;  // kind re-assignment keeps the EDF factors
        profile_bases.push_back(sc);
      }
      e2e::Scenario gps = base;
      gps.scheduler = sched::SchedulerSpec::gps(1.0, 1.0);
      profile_bases.push_back(gps);
    }
    report += self_check_profile(
        std::span<const e2e::Scenario>(profile_bases),
        std::span<const double>(profile_eps), options);
  }

  // Delta interpolation (the journal version's continuous sweep between
  // FIFO and BMUX) on the Fig. 2 grid: for fixed traffic the bound must
  // be non-decreasing in Delta (the "delta" axis has direction +1, so
  // the grid monotonicity check covers it; the within-group ordering
  // check re-verifies via the resolved Delta values), and the endpoints
  // Delta = 0 / Delta = +inf must pin bit-identically to the fifo/bmux
  // bounds (check_delta_endpoints).
  const std::vector<double> deltas = {0.0, 0.5, 1.0, 2.0,
                                      5.0, 10.0, 50.0, kInf};
  for (int hops : {2, 5, 10}) {
    const e2e::Scenario base = ScenarioBuilder()
                                   .hops(hops)
                                   .through_flows(100)
                                   .violation_probability(1e-9)
                                   .build();
    SweepGrid grid(base);
    grid.cross_utilization_axis(cross_utils).delta_axis(deltas);
    report += self_check(grid, options);
    std::vector<e2e::Scenario> bases;
    for (double u : cross_utils) {
      e2e::Scenario sc = base;
      sc.n_cross = flows_for_utilization(base, u);
      bases.push_back(sc);
    }
    report += check_delta_endpoints(
        std::span<const e2e::Scenario>(bases), options);
  }

  // Fig. 3 (Example 2): traffic-mix lists at constant U = 50% with both
  // EDF deadline settings; the mix co-varies U0 and Uc, so this is an
  // explicit list (ordering groups form per mix point).
  for (int hops : {2, 5, 10}) {
    std::vector<e2e::Scenario> scenarios;
    for (int mix_pct = 10; mix_pct <= 90; mix_pct += 10) {
      const double uc = 0.50 * mix_pct / 100.0;
      const double u0 = 0.50 - uc;
      struct Column {
        sched::SchedulerKind sched;
        double own, cross;
      };
      for (const Column& col :
           {Column{sched::SchedulerKind::kEdf, 1.0, 2.0},
            Column{sched::SchedulerKind::kFifo, 1.0, 1.0},
            Column{sched::SchedulerKind::kEdf, 1.0, 0.5},
            Column{sched::SchedulerKind::kBmux, 1.0, 1.0},
            Column{sched::SchedulerKind::kSpHigh, 1.0, 1.0}}) {
        scenarios.push_back(ScenarioBuilder()
                                .hops(hops)
                                .through_utilization(u0)
                                .cross_utilization(uc)
                                .violation_probability(1e-9)
                                .scheduler(col.sched)
                                .edf_deadlines(col.own, col.cross)
                                .build());
      }
    }
    report += self_check(std::span<const e2e::Scenario>(scenarios), options);
  }

  // Fig. 4 (Example 3): path-length sweep at U = 10, 50, 90% with
  // N0 = Nc, again with the full scheduler set.
  for (double u : {0.10, 0.50, 0.90}) {
    SweepGrid grid(ScenarioBuilder()
                       .through_utilization(u / 2.0)
                       .cross_utilization(u / 2.0)
                       .violation_probability(1e-9)
                       .edf_deadlines(1.0, 10.0)
                       .build());
    grid.hops_axis({1, 2, 4, 6, 8, 10, 13, 16, 20, 25})
        .scheduler_axis(all_scheds);
    report += self_check(grid, options);
  }

  return report;
}

SelfCheckReport self_check_curve_backed(const SelfCheckOptions& options) {
  Checker checker{options, {}};
  using sched::SchedulerSpec;

  // One variant list per operating point; the comparisons below index
  // into it, so order matters.
  const std::vector<SchedulerSpec> variants = {
      SchedulerSpec(sched::SchedulerKind::kSpHigh),  // 0: full priority
      SchedulerSpec::gps(1.0, 1.0),                  // 1: half the link
      SchedulerSpec::gps(2.0, 1.0),                  // 2: 2/3 share
      SchedulerSpec::gps(4.0, 1.0),                  // 3: 4/5 share
      SchedulerSpec::drr(1.0, 1.0),                  // 4: gps(1,1) + round
      SchedulerSpec::drr(2.0, 1.0),                  // 5
      SchedulerSpec::drr(4.0, 1.0),                  // 6
      SchedulerSpec::sced(),                         // 7: load-proportional
  };
  // lo's bound must not exceed hi's (within ordering_tol).
  struct Ordering {
    std::size_t lo, hi;
    const char* why;
  };
  constexpr Ordering orderings[] = {
      // GPS guarantees only half the link but its deterministic curve
      // pays the through burst once end-to-end, while SP-high's
      // Theorem-1 bound accumulates burstiness per hop -- so on these
      // multi-hop grids GPS(1,1) bounds below even full priority.
      {1, 0, "GPS(1,1) (pay-bursts-once) must bound the per-hop SP-high "
             "analysis from below on multi-hop paths"},
      {2, 1, "GPS bound must be non-increasing in the through share"},
      {3, 2, "GPS bound must be non-increasing in the through share"},
      {1, 4, "GPS(1,1) must bound DRR(1,1) from below (same rate, DRR "
             "adds a round-robin latency)"},
      {5, 4, "DRR bound must be non-increasing in the through quantum"},
      {6, 5, "DRR bound must be non-increasing in the through quantum"},
      // Symmetric loads: load-proportional sharing == equal weights, so
      // sced and gps(1,1) must agree (both directions, within tol).
      {1, 7, "sced must not undercut gps(1,1) on symmetric loads"},
      {7, 1, "gps(1,1) must not undercut sced on symmetric loads"},
  };

  std::vector<e2e::Scenario> scenarios;
  for (int hops : {2, 5, 10}) {
    for (double u : {0.30, 0.50, 0.90}) {
      // N0 = Nc (symmetric loads) so the sced row is comparable.
      const e2e::Scenario base = ScenarioBuilder()
                                     .hops(hops)
                                     .through_utilization(u / 2.0)
                                     .cross_utilization(u / 2.0)
                                     .violation_probability(1e-9)
                                     .build();
      for (const SchedulerSpec& spec : variants) {
        e2e::Scenario sc = base;
        sc.scheduler = spec;
        scenarios.push_back(sc);
      }
    }
  }
  const SweepReport r = solve_all(scenarios, options, options.method);
  checker.report.points = r.points.size();
  for (const SweepPoint& p : r.points) {
    checker.check_point(p, !options.solver);
  }
  for (std::size_t base = 0; base + variants.size() <= r.points.size();
       base += variants.size()) {
    for (const Ordering& o : orderings) {
      const SweepPoint& lo = r.points[base + o.lo];
      const SweepPoint& hi = r.points[base + o.hi];
      if (!lo.ok || !hi.ok) continue;  // flagged by check_point already
      ++checker.report.checks;
      if (!Checker::ordered(lo.bound.delay_ms, hi.bound.delay_ms,
                            options.ordering_tol)) {
        checker.issue("curve-ordering",
                      std::string(o.why) + ": " + describe(hi.scenario) +
                          " bound " + fmt(hi.bound.delay_ms) +
                          " ms undercuts " + describe(lo.scenario) +
                          " bound " + fmt(lo.bound.delay_ms) + " ms");
      }
    }
  }

  // GPS isolation: overload the link (total utilization >= 1) while the
  // through class's guaranteed share 0.75 C still exceeds its load
  // 0.45 C.  GPS must keep a finite bound; BMUX (which sees the
  // aggregate) must diverge.
  std::vector<e2e::Scenario> overload;
  for (int hops : {2, 5, 10}) {
    e2e::Scenario sc = ScenarioBuilder()
                           .hops(hops)
                           .through_utilization(0.45)
                           .cross_utilization(0.60)
                           .violation_probability(1e-9)
                           .build();
    sc.scheduler = SchedulerSpec::gps(3.0, 1.0);
    overload.push_back(sc);
    sc.scheduler = sched::SchedulerKind::kBmux;
    overload.push_back(sc);
  }
  const SweepReport iso = solve_all(overload, options, options.method);
  checker.report.points += iso.points.size();
  for (std::size_t i = 0; i + 1 < iso.points.size(); i += 2) {
    const SweepPoint& gps = iso.points[i];
    const SweepPoint& bmux = iso.points[i + 1];
    checker.check_point(gps, !options.solver);
    checker.check_point(bmux, !options.solver);
    if (gps.ok) {
      ++checker.report.checks;
      if (!std::isfinite(gps.bound.delay_ms)) {
        checker.issue("isolation",
                      "GPS isolation lost: infinite bound despite "
                      "guaranteed rate > through load for " +
                          describe(gps.scenario));
      }
    }
    if (bmux.ok) {
      ++checker.report.checks;
      if (bmux.bound.delay_ms != kInf) {
        checker.issue("isolation",
                      "BMUX bound " + fmt(bmux.bound.delay_ms) +
                          " ms finite despite total utilization >= 1 for " +
                          describe(bmux.scenario));
      }
    }
  }

  // Simulation cross-check: the slot-level simulator runs the *actual*
  // disciplines (deficit counters for DRR, deadline curves for SCED),
  // so its empirical delay quantiles must stay below the analytic
  // bounds.  Skipped when a test injects a custom solver -- injected
  // bounds have no relation to the simulated network.
  if (!options.solver) {
    constexpr std::int64_t kSimSlots = 40000;
    for (const SchedulerSpec& spec :
         {SchedulerSpec::gps(1.0, 1.0), SchedulerSpec::drr(1.0, 1.0),
          SchedulerSpec::sced()}) {
      e2e::Scenario sc = ScenarioBuilder()
                             .hops(2)
                             .through_utilization(0.25)
                             .cross_utilization(0.25)
                             .violation_probability(1e-9)
                             .build();
      sc.scheduler = spec;
      const ValidationReport v = PathAnalyzer(sc).validate(kSimSlots, 42);
      ++checker.report.points;
      ++checker.report.checks;
      if (!v.bound_holds) {
        checker.issue("simulation",
                      "simulated " + fmt(100.0 * (1.0 - v.epsilon_sim)) +
                          "% delay quantile " + fmt(v.empirical_quantile) +
                          " ms exceeds the analytic bound " +
                          fmt(v.bound.delay_ms) + " ms for " + describe(sc));
      }
    }
  }
  return std::move(checker.report);
}

}  // namespace deltanc
