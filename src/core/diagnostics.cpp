#include "core/diagnostics.h"

namespace deltanc::diag {

namespace {

std::size_t kind_index(SolveErrorKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

void ErrorCounts::record(const Diagnostics& d) {
  if (d.error != SolveErrorKind::kNone) ++errors[kind_index(d.error)];
  for (const Warning& w : d.warnings) ++warnings[kind_index(w.kind)];
}

void ErrorCounts::record_error(SolveErrorKind kind) {
  if (kind != SolveErrorKind::kNone) ++errors[kind_index(kind)];
}

std::size_t ErrorCounts::total_errors() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 1; i < kSolveErrorKinds; ++i) n += errors[i];
  return n;
}

std::size_t ErrorCounts::total_warnings() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 1; i < kSolveErrorKinds; ++i) n += warnings[i];
  return n;
}

std::string ErrorCounts::summary() const {
  std::string out;
  const auto append = [&out](const char* name, const char* tag,
                             std::size_t count) {
    if (count == 0) return;
    if (!out.empty()) out += ' ';
    out += name;
    out += tag;
    out += '=';
    out += std::to_string(count);
  };
  for (std::size_t i = 1; i < kSolveErrorKinds; ++i) {
    append(solve_error_name(static_cast<SolveErrorKind>(i)), "", errors[i]);
  }
  for (std::size_t i = 1; i < kSolveErrorKinds; ++i) {
    append(solve_error_name(static_cast<SolveErrorKind>(i)), "(warn)",
           warnings[i]);
  }
  return out;
}

ErrorCounts& ErrorCounts::operator+=(const ErrorCounts& other) noexcept {
  for (std::size_t i = 0; i < kSolveErrorKinds; ++i) {
    errors[i] += other.errors[i];
    warnings[i] += other.warnings[i];
  }
  return *this;
}

}  // namespace deltanc::diag
