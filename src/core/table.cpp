#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace deltanc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width must match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::format(double value, int precision) {
  // NaN fails every comparison, so the sign test below would mislabel it
  // as "-inf"; name it explicitly.
  if (std::isnan(value)) return "nan";
  if (!std::isfinite(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> row{label};
  for (double v : values) row.push_back(format(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "-+-") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {

// RFC 4180: cells containing the separator, quotes or line breaks are
// double-quoted, with embedded quotes doubled.  Numeric cells pass
// through untouched, but free-text cells (e.g. sweep "error: ..." status
// messages carrying an exception what()) must not corrupt the record.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted.push_back('"');
  for (char ch : cell) {
    if (ch == '"') quoted.push_back('"');
    quoted.push_back(ch);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace deltanc
