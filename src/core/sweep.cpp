#include "core/sweep.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/scenario.h"
#include "core/thread_pool.h"
#include "e2e/solver.h"

namespace deltanc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Validate-then-solve of one point, shared by the cold and chained
/// executors: a malformed point is classified (with a message naming
/// every bad field) instead of surfacing as whichever exception the
/// solver happens to hit first; a solve that still throws is captured
/// and never aborts the sweep.
template <typename SolveFn>
void solve_point(SweepPoint& p, const e2e::Scenario& sc, SolveFn&& solve) {
  p.scenario = sc;
  const auto task_t0 = Clock::now();
  const diag::ValidationReport vr = p.scenario.validate();
  if (!vr.ok()) {
    p.ok = false;
    p.error = vr.message();
    p.bound = e2e::BoundResult{std::numeric_limits<double>::infinity(), 0.0,
                               0.0, 0.0, 0.0};
    p.bound.diagnostics.fail(diag::SolveErrorKind::kInvalidScenario,
                             vr.message());
  } else {
    try {
      p.bound = solve(p.scenario);
    } catch (const std::exception& e) {
      p.ok = false;
      p.error = e.what();
      p.bound = e2e::BoundResult{std::numeric_limits<double>::infinity(), 0.0,
                                 0.0, 0.0, 0.0};
      p.bound.diagnostics.fail(diag::SolveErrorKind::kNumericalDomain,
                               e.what());
    }
  }
  p.solve_ms = ms_since(task_t0);
}

/// Profile companion of solve_point: attaches the d(epsilon) artifact to
/// an already-solved point.  Runs only for points whose scenario
/// validated (an unstable-but-well-formed point still profiles: every
/// level classifies its +inf); a profile solve that throws fails the
/// point like a scalar throw would.
template <typename ProfileFn>
void attach_profile(SweepPoint& p, ProfileFn&& solve_profile) {
  if (!p.ok) return;
  const auto task_t0 = Clock::now();
  try {
    p.profile = solve_profile(p.scenario);
  } catch (const std::exception& e) {
    p.ok = false;
    p.error = e.what();
  }
  p.solve_ms += ms_since(task_t0);
}

}  // namespace

std::string scheduler_name(const sched::SchedulerSpec& s) {
  return sched::to_string(s);
}

bool scheduler_from_name(const std::string& name, sched::SchedulerSpec& out) {
  return sched::parse_scheduler(name, out);
}

bool scheduler_from_name(const std::string& name, sched::SchedulerKind& out) {
  return sched::scheduler_kind_from_name(name, out) &&
         out != sched::SchedulerKind::kDelta;
}

// ---------------------------------------------------------------- SweepGrid

SweepGrid::SweepGrid(e2e::Scenario base) : base_(std::move(base)) {}

SweepGrid& SweepGrid::add_axis(Axis axis) {
  axes_.push_back(std::move(axis));
  return *this;
}

SweepGrid& SweepGrid::hops_axis(std::vector<int> values) {
  Axis a{"hops", {}, {}};
  a.spec.name = "hops";
  for (int h : values) {
    a.spec.numeric.push_back(h);
    if (h < 1) throw std::invalid_argument("SweepGrid: hops must be >= 1");
    a.values.emplace_back([h](e2e::Scenario& sc) { sc.hops = h; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::scheduler_axis(std::vector<sched::SchedulerSpec> values) {
  Axis a{"scheduler", {}, {}};
  a.spec.name = "scheduler";
  a.spec.schedulers = values;
  for (const sched::SchedulerSpec& s : values) {
    // Full identity replacement (factors and fixed offsets included).
    a.values.emplace_back([s](e2e::Scenario& sc) { sc.scheduler = s; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::scheduler_axis(std::vector<sched::SchedulerKind> values) {
  Axis a{"scheduler", {}, {}};
  a.spec.name = "scheduler";
  a.spec.scheduler_kinds_only = true;
  for (sched::SchedulerKind k : values) {
    a.spec.schedulers.emplace_back(k);
    // Kind re-assignment: keeps the base scenario's EDF factors, so this
    // axis composes with edf_axis / edf_deadlines in either order.
    a.values.emplace_back([k](e2e::Scenario& sc) { sc.scheduler = k; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::edf_axis(std::vector<sched::EdfFactors> values) {
  Axis a{"edf", {}, {}};
  a.spec.name = "edf";
  a.spec.edf = values;
  for (const sched::EdfFactors& e : values) {
    if (!(e.own_factor > 0.0) || !(e.cross_factor > 0.0)) {
      throw std::invalid_argument("SweepGrid: EDF factors must be > 0");
    }
    a.values.emplace_back(
        [e](e2e::Scenario& sc) { sc.scheduler.set_edf_factors(e); });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::delta_axis(std::vector<double> values) {
  Axis a{"delta", {}, {}};
  a.spec.name = "delta";
  a.spec.numeric = values;
  for (double d : values) {
    if (d != d) throw std::invalid_argument("SweepGrid: delta must not be NaN");
    a.values.emplace_back([d](e2e::Scenario& sc) {
      sc.scheduler = sched::SchedulerSpec::fixed_delta(d);
    });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::through_flows_axis(std::vector<int> values) {
  Axis a{"n0", {}, {}};
  a.spec.name = "n0";
  for (int n : values) {
    if (n < 1) throw std::invalid_argument("SweepGrid: need >= 1 through flow");
    a.spec.numeric.push_back(n);
    a.values.emplace_back([n](e2e::Scenario& sc) { sc.n_through = n; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::cross_flows_axis(std::vector<int> values) {
  Axis a{"nc", {}, {}};
  a.spec.name = "nc";
  for (int n : values) {
    if (n < 0) throw std::invalid_argument("SweepGrid: cross flows >= 0");
    a.spec.numeric.push_back(n);
    a.values.emplace_back([n](e2e::Scenario& sc) { sc.n_cross = n; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::through_utilization_axis(std::vector<double> values) {
  Axis a{"u0", {}, {}};
  a.spec.name = "u0";
  a.spec.numeric = values;
  for (double u : values) {
    // Conversion against the *base* capacity/source, exactly like
    // ScenarioBuilder::through_utilization.
    const int n = std::max(1, flows_for_utilization(base_, u));
    a.values.emplace_back([n](e2e::Scenario& sc) { sc.n_through = n; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::cross_utilization_axis(std::vector<double> values) {
  Axis a{"uc", {}, {}};
  a.spec.name = "uc";
  a.spec.numeric = values;
  for (double u : values) {
    const int n = flows_for_utilization(base_, u);
    a.values.emplace_back([n](e2e::Scenario& sc) { sc.n_cross = n; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::epsilon_axis(std::vector<double> values) {
  Axis a{"epsilon", {}, {}};
  a.spec.name = "epsilon";
  a.spec.numeric = values;
  for (double eps : values) {
    if (!(eps > 0.0 && eps < 1.0)) {
      throw std::invalid_argument("SweepGrid: need 0 < epsilon < 1");
    }
    a.values.emplace_back([eps](e2e::Scenario& sc) { sc.epsilon = eps; });
  }
  return add_axis(std::move(a));
}

SweepGrid& SweepGrid::capacity_axis(std::vector<double> values) {
  Axis a{"capacity", {}, {}};
  a.spec.name = "capacity";
  a.spec.numeric = values;
  for (double c : values) {
    if (!(c > 0.0)) throw std::invalid_argument("SweepGrid: capacity > 0");
    a.values.emplace_back([c](e2e::Scenario& sc) { sc.capacity = c; });
  }
  return add_axis(std::move(a));
}

std::vector<double> SweepGrid::linspace(double lo, double hi, int steps) {
  if (steps < 1) throw std::invalid_argument("linspace: steps must be >= 1");
  if (steps == 1) return {lo};
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    v.push_back(lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(steps - 1));
  }
  return v;
}

std::size_t SweepGrid::axis_size(std::size_t a) const {
  return axes_.at(a).values.size();
}

const std::string& SweepGrid::axis_name(std::size_t a) const {
  return axes_.at(a).name;
}

const SweepGrid::AxisSpec& SweepGrid::axis_spec(std::size_t a) const {
  return axes_.at(a).spec;
}

std::size_t SweepGrid::size() const noexcept {
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

e2e::Scenario SweepGrid::scenario_at(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("SweepGrid: index out of range");
  e2e::Scenario sc = base_;
  // Row-major decode, last axis fastest: peel digits from the innermost
  // axis, then apply mutators outermost-first.  Most axes touch disjoint
  // fields; where they overlap (a full-spec scheduler axis and an edf
  // axis both carry EDF factors) the later-added axis wins.
  std::vector<std::size_t> digit(axes_.size());
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const std::size_t m = axes_[a].values.size();
    digit[a] = i % m;
    i /= m;
  }
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    axes_[a].values[digit[a]](sc);
  }
  return sc;
}

std::vector<e2e::Scenario> SweepGrid::scenarios() const {
  std::vector<e2e::Scenario> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(scenario_at(i));
  return out;
}

// -------------------------------------------------------------- SweepReport

std::size_t SweepReport::failures() const {
  std::size_t n = 0;
  for (const SweepPoint& p : points) n += p.ok ? 0 : 1;
  return n;
}

std::size_t SweepReport::unstable() const {
  std::size_t n = 0;
  for (const SweepPoint& p : points) {
    n += (p.ok && !std::isfinite(p.bound.delay_ms)) ? 1 : 0;
  }
  return n;
}

std::size_t SweepReport::warned() const {
  std::size_t n = 0;
  for (const SweepPoint& p : points) {
    n += (p.ok && !p.bound.diagnostics.warnings.empty()) ? 1 : 0;
  }
  return n;
}

std::size_t SweepReport::recovered() const {
  std::size_t n = 0;
  for (const SweepPoint& p : points) {
    n += (p.ok && p.bound.stats.retries + p.bound.stats.fallbacks > 0) ? 1 : 0;
  }
  return n;
}

diag::ErrorCounts SweepReport::counts_by_kind() const {
  diag::ErrorCounts counts;
  for (const SweepPoint& p : points) {
    if (!p.ok) {
      // A failed point always counts as an error, even when a custom
      // solver threw without classifying itself first.
      counts.record_error(p.bound.diagnostics.ok()
                              ? diag::SolveErrorKind::kNumericalDomain
                              : p.bound.diagnostics.error);
      continue;
    }
    counts.record(p.bound.diagnostics);
    if (!std::isfinite(p.bound.delay_ms) && p.bound.diagnostics.ok()) {
      // +inf from a solver that did not classify it (e.g. the additive
      // baseline): the only theory-sanctioned +inf is an unstable load.
      counts.record_error(diag::SolveErrorKind::kUnstable);
    }
  }
  return counts;
}

Table SweepReport::to_table(int precision) const {
  Table table({"#", "H", "sched", "N0", "Nc", "U [%]", "eps", "delay [ms]",
               "gamma", "s", "Delta", "solve [ms]", "status"});
  const auto format_eps = [](double eps) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", eps);
    return std::string(buf);
  };
  const auto status_of = [](const SweepPoint& p) -> std::string {
    if (!p.ok) return "error: " + p.error;
    if (!std::isfinite(p.bound.delay_ms)) return "unstable";
    if (!p.bound.diagnostics.warnings.empty()) {
      return std::string("warn: ") +
             diag::solve_error_name(p.bound.diagnostics.warnings.front().kind);
    }
    return "ok";
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const e2e::Scenario& sc = p.scenario;
    table.add_row({std::to_string(i), std::to_string(sc.hops),
                   scheduler_name(sc.scheduler), std::to_string(sc.n_through),
                   std::to_string(sc.n_cross),
                   Table::format(100.0 * sc.utilization(), 1),
                   format_eps(sc.epsilon),
                   Table::format(p.bound.delay_ms, precision),
                   Table::format(p.bound.gamma, precision),
                   Table::format(p.bound.s, precision),
                   Table::format(p.bound.delta, precision),
                   Table::format(p.solve_ms, 2), status_of(p)});
  }
  return table;
}

void SweepReport::write_csv(std::ostream& os, int precision) const {
  to_table(precision).print_csv(os);
}

void SweepReport::write_profile_csv(std::ostream& os) const {
  os << "point,hops,scheduler,n0,nc,u_pct,epsilon,delay_ms,gamma,s,sigma,"
        "delta\n";
  // Scheduler names can carry commas ("gps:1,2"); everything else in a
  // row is numeric, so only that cell needs RFC-4180 quoting.
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted.push_back('"');
      quoted.push_back(ch);
    }
    quoted.push_back('"');
    return quoted;
  };
  char buf[320];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (!p.profile.has_value()) continue;
    const e2e::Scenario& sc = p.scenario;
    const std::string sched = escape(scheduler_name(sc.scheduler));
    for (std::size_t k = 0; k < p.profile->levels.size(); ++k) {
      const e2e::BoundResult& b = p.profile->levels[k];
      std::snprintf(buf, sizeof buf,
                    "%zu,%d,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
                    "%.17g\n",
                    i, sc.hops, sched.c_str(), sc.n_through, sc.n_cross,
                    100.0 * sc.utilization(), p.profile->epsilons[k],
                    b.delay_ms, b.gamma, b.s, b.sigma, b.delta);
      os << buf;
    }
  }
}

// -------------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

int SweepRunner::resolved_threads(std::size_t n_tasks) const {
  unsigned n = options_.threads > 0
                   ? static_cast<unsigned>(options_.threads)
                   : ThreadPool::default_thread_count();
  if (n > n_tasks) n = static_cast<unsigned>(n_tasks);  // never idle workers
  return static_cast<int>(n > 0 ? n : 1);
}

SweepReport SweepRunner::run(const SweepGrid& grid) const {
  const std::vector<e2e::Scenario> scenarios = grid.scenarios();
  // Warm-start chaining decomposes the grid along its innermost numeric
  // axis (the last-added one with more than one value): consecutive
  // values of that axis differ in a single parameter, which is exactly
  // what the Solver::State hints survive.  Non-numeric axes (scheduler,
  // edf) are excluded -- chaining across them would seed e.g. an EDF
  // fixed point from a FIFO optimum.  A grid with no such axis (or a
  // custom per-point solver, or warm_start = kCold) runs the historical
  // cold path.
  if (options_.warm_start == e2e::WarmStart::kWarm && !options_.solver) {
    std::size_t stride = 1;
    for (std::size_t a = grid.axes(); a-- > 0;) {
      const std::size_t len = grid.axis_size(a);
      if (!grid.axis_spec(a).numeric.empty() && len > 1) {
        return run_chained(std::span<const e2e::Scenario>(scenarios), len,
                           stride);
      }
      stride *= len;
    }
  }
  return run(std::span<const e2e::Scenario>(scenarios));
}

SweepReport SweepRunner::run_chained(std::span<const e2e::Scenario> scenarios,
                                     std::size_t chain_len,
                                     std::size_t stride) const {
  const std::size_t n = scenarios.size();
  const std::size_t n_chains = n / chain_len;
  SweepReport report;
  report.points.resize(n);
  report.threads = resolved_threads(n_chains);
  const auto t0 = Clock::now();

  SolveOptions solve_options;
  solve_options.method = options_.method;
  solve_options.warm_start = e2e::WarmStart::kWarm;
  const Solver solver(solve_options);

  // Chains are claimed from a shared atomic cursor, but every chain is
  // solved sequentially by whichever worker claimed it, threading one
  // Solver::State from each point to its successor.  The chain results
  // therefore depend only on the grid, never on the worker count.
  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mu;
  std::size_t done = 0;  // guarded by progress_mu

  const auto worker = [&] {
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chains) return;
      // Chain c fixes every axis except the chain axis: outer axes at
      // digit c / stride, inner axes at digit c % stride.
      const std::size_t base =
          (c / stride) * (chain_len * stride) + (c % stride);
      Solver::State state;
      for (std::size_t k = 0; k < chain_len; ++k) {
        const std::size_t i = base + k * stride;
        solve_point(report.points[i], scenarios[i],
                    [&](const e2e::Scenario& sc) {
                      return solver.solve(sc, state);
                    });
        if (!options_.profile_epsilons.empty()) {
          // The profile shares the chain state: its first level warms
          // from the scalar solve above, and the state then carries the
          // last level's context to the next chain point (legal hints --
          // the warm fingerprints exclude epsilon).
          attach_profile(report.points[i], [&](const e2e::Scenario& sc) {
            return solver.solve_profile(sc, options_.profile_epsilons,
                                        state);
          });
        }
        if (options_.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          options_.progress(++done, n);
        }
      }
    }
  };

  if (n > 0) {
    ThreadPool pool(static_cast<unsigned>(report.threads));
    for (int t = 0; t < report.threads; ++t) pool.submit(worker);
    pool.wait_idle();
  }

  report.wall_ms = ms_since(t0);
  for (const SweepPoint& p : report.points) {
    report.solve_ms += p.solve_ms;
    report.stats += p.bound.stats;
    if (p.profile.has_value()) report.stats += p.profile->stats;
  }
  return report;
}

SweepReport SweepRunner::run(std::span<const e2e::Scenario> scenarios) const {
  const std::size_t n = scenarios.size();
  SweepReport report;
  report.points.resize(n);
  report.threads = resolved_threads(n);
  const auto t0 = Clock::now();

  SolveOptions solve_options;
  solve_options.method = options_.method;
  const Solver default_solver(solve_options);
  const auto solve = [&](const e2e::Scenario& sc) {
    return options_.solver ? options_.solver(sc, options_.method)
                           : default_solver.solve(sc);
  };

  // Work distribution: a shared atomic cursor; each worker claims the
  // next unsolved index and writes into its own slot, so the output
  // order is the input order no matter which worker finishes when.
  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mu;
  std::size_t done = 0;  // guarded by progress_mu

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      solve_point(report.points[i], scenarios[i], solve);
      if (!options_.profile_epsilons.empty() && !options_.solver) {
        // Cold path: each profile is pinned -- bit-identical to the K
        // scalar solves of the same scenario at each level's epsilon.
        attach_profile(report.points[i], [&](const e2e::Scenario& sc) {
          return default_solver.solve_profile(sc, options_.profile_epsilons);
        });
      }
      if (options_.progress) {
        // Increment under the same lock as the callback so `done` values
        // arrive strictly increasing 1..n.
        std::lock_guard<std::mutex> lock(progress_mu);
        options_.progress(++done, n);
      }
    }
  };

  if (n > 0) {
    ThreadPool pool(static_cast<unsigned>(report.threads));
    for (int t = 0; t < report.threads; ++t) pool.submit(worker);
    pool.wait_idle();
  }

  report.wall_ms = ms_since(t0);
  for (const SweepPoint& p : report.points) {
    report.solve_ms += p.solve_ms;
    report.stats += p.bound.stats;
    if (p.profile.has_value()) report.stats += p.profile->stats;
  }
  return report;
}

}  // namespace deltanc
