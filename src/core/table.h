// Minimal table formatting for benches and examples: aligned console
// output plus CSV emission, so every figure-reproduction binary prints
// both a human-readable table and a machine-readable series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deltanc {

/// A rectangular table of strings with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header width.
  /// @throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision ("inf" for
  /// non-finite values) after a leading label column.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Space-aligned, pipe-separated rendering.
  void print(std::ostream& os) const;
  /// RFC-4180 CSV: cells containing commas, quotes or newlines (e.g.
  /// error messages) are quoted with embedded quotes doubled.
  void print_csv(std::ostream& os) const;

  /// Formats one double the same way add_row(label, values) does
  /// ("inf"/"-inf"/"nan" for non-finite values).
  static std::string format(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deltanc
