// A small, reusable fixed-size thread pool -- the execution substrate of
// the sweep engine (core/sweep.h) and of any future batch workload.
//
// Design: a single locked FIFO queue of type-erased tasks, a fixed set of
// worker threads created in the constructor and joined in the destructor,
// and a `wait_idle()` barrier that blocks until every task submitted so
// far has *finished* (not merely been dequeued).  Tasks must not throw;
// wrap fallible work in try/catch and record the failure in the result
// slot instead (SweepRunner does exactly that).
#pragma once

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace deltanc {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `default_thread_count()`.
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  /// Enqueues one task.  Safe to call from any thread, including from
  /// inside a running task.
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    cv_work_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.  The pool
  /// stays usable afterwards (submit/wait cycles can repeat).
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return unfinished_ == 0; });
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// The pool size used when none is requested: the DELTANC_THREADS
  /// environment variable if set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (minimum 1).  The override must
  /// be the *entire* value -- trailing garbage ("2x", "4 threads") is
  /// rejected rather than silently parsed as its numeric prefix.
  static unsigned default_thread_count() {
    if (const char* env = std::getenv("DELTANC_THREADS")) {
      char* end = nullptr;
      const long n = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && n > 0) {
        return static_cast<unsigned>(n);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--unfinished_ == 0) cv_idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t unfinished_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deltanc
