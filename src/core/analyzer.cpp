#include "core/analyzer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "e2e/solver.h"
#include "sim/stats.h"

namespace deltanc {

PathAnalyzer::PathAnalyzer(e2e::Scenario scenario)
    : scenario_(std::move(scenario)) {
  if (scenario_.hops < 1 || scenario_.n_through < 1 ||
      scenario_.n_cross < 0 ||
      !(scenario_.epsilon > 0.0 && scenario_.epsilon < 1.0)) {
    throw std::invalid_argument("PathAnalyzer: malformed scenario");
  }
}

e2e::BoundResult PathAnalyzer::bound(e2e::Method method) const {
  SolveOptions options;
  options.method = method;
  return Solver(options).solve(scenario_);
}

e2e::BoundResult PathAnalyzer::additive_bound() const {
  return e2e::best_additive_bmux_bound(scenario_);
}

sim::TandemConfig PathAnalyzer::tandem_config(std::int64_t slots,
                                              std::uint64_t seed) const {
  sim::TandemConfig c;
  c.capacity_kb_per_slot = scenario_.capacity;
  c.hops = scenario_.hops;
  c.source = scenario_.source;
  c.n_through = scenario_.n_through;
  c.n_cross = scenario_.n_cross;
  c.slots = slots;
  c.seed = seed;
  // EDF deadlines are self-referential (multiples of d_e2e / H); resolve
  // the unit from the analytic bound before lowering.  Every other kind
  // ignores the unit.
  double edf_unit = 1.0;
  if (scenario_.scheduler.needs_fixed_point()) {
    const e2e::BoundResult b = bound();
    if (!std::isfinite(b.delay_ms)) {
      throw std::invalid_argument(
          "PathAnalyzer::simulate: EDF deadlines need a finite bound");
    }
    edf_unit = b.delay_ms / scenario_.hops;
  }
  sim::lower_scheduler(scenario_.scheduler, edf_unit, c);
  return c;
}

sim::TandemResult PathAnalyzer::simulate(std::int64_t slots,
                                         std::uint64_t seed) const {
  return sim::run_tandem(tandem_config(slots, seed));
}

ValidationReport PathAnalyzer::validate(std::int64_t slots,
                                        std::uint64_t seed) const {
  ValidationReport report{};
  report.bound = bound();

  const sim::TandemResult sim_result = simulate(slots, seed);
  report.samples = sim_result.through_delay.count();
  if (report.samples == 0) {
    throw std::logic_error("PathAnalyzer::validate: no through samples");
  }
  // Pick the deepest quantile still resolvable with >= 100 tail samples,
  // no deeper than the scenario's epsilon (shared rule in sim/stats.h).
  const double eps_sim = sim::deepest_resolvable_epsilon(
      static_cast<std::size_t>(report.samples), 100.0, scenario_.epsilon);
  report.epsilon_sim = eps_sim;
  report.empirical_quantile = sim_result.through_delay.quantile(1.0 - eps_sim);
  report.empirical_max = sim_result.through_delay.max();

  // The analytic bound at the simulation's epsilon level.
  e2e::Scenario at_sim_eps = scenario_;
  at_sim_eps.epsilon = eps_sim;
  const e2e::BoundResult bound_sim = Solver().solve(at_sim_eps);
  report.bound_holds =
      report.empirical_quantile <= bound_sim.delay_ms + 1e-9;
  return report;
}

}  // namespace deltanc
