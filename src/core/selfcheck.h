// Invariant self-checks: machine-checkable consequences of the paper's
// theory, used as a correctness oracle for the numeric solver.
//
// The delay bound of Theorem 1 is monotone non-decreasing in the
// scheduler offset Delta, so for any fixed scenario the resolved bounds
// must order as SP-high (Delta = -inf) <= EDF <= FIFO (Delta = 0) <=
// BMUX (Delta = +inf) -- more precisely, delays sorted by resolved Delta
// must be non-decreasing, which also orders the two EDF variants of
// Fig. 3 correctly.  The bound is likewise monotone in the workload:
// non-decreasing in hops, flow counts, and utilization; non-increasing
// in epsilon and capacity.  Finally, the paper's K-procedure
// (Method::kPaperK) is a restricted version of the exact optimization
// (Method::kExactOpt), so kExactOpt <= kPaperK always, and the two agree
// within a modest factor on the operating ranges of the figures.
//
// Curve-backed schedulers (gps/drr/sced) carry no Delta coordinate --
// their bounds come from a deterministic rate-latency leftover curve
// (sched::make_service_curve_provider) -- so the Delta-specific checks
// skip them, and the finiteness check accepts finite bounds at total
// utilization >= 1 when the provider's guaranteed rate still exceeds
// the through load (GPS isolation).  Their own invariants live in
// self_check_curve_backed(): share/quantum monotonicity, GPS(1,1) as a
// lower envelope of the per-hop SP-high analysis, GPS as a lower
// envelope of DRR with the same split, sced == gps on symmetric loads,
// and the isolation property itself.
//
// self_check() solves a scenario, list, or grid and verifies every
// invariant that applies; self_check_figures() runs the full Fig. 2-4
// operating grids (what `deltanc_cli --selfcheck` executes).  Violations
// come back as structured SelfCheckIssue records, never as exceptions.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace deltanc {

/// Warm-start tolerance contract: a warm-chained sweep
/// (SweepOptions::warm_start = kWarm, the default of run(grid)) may
/// deviate from the cold solve of the same grid by at most this relative
/// amount per point, and must agree exactly on finiteness.  Warm starts
/// reuse bit-exact ingredients (the eb(s) memo and the stable-s bracket)
/// but seed the s probe and the EDF fixed point from the neighboring
/// optimum, so the golden refinement and the damped iteration can stop
/// at a slightly different -- equally valid -- optimum; the EDF fixed
/// point's own 1e-7 relative stopping tolerance dominates the deviation,
/// and 1e-4 gives it two orders of headroom.  Enforced by
/// self_check_warm_start() (part of self_check_figures(), i.e. of
/// `deltanc_cli --selfcheck` and check.sh); documented in
/// docs/API.md#warm-starts.
inline constexpr double kWarmStartRelTol = 1e-4;

/// Tuning knobs for self_check().  The defaults match the numerical
/// headroom of the Fig. 2-4 operating points.
struct SelfCheckOptions {
  /// Primary solve method (the method-agreement check always compares
  /// kExactOpt against kPaperK regardless).
  e2e::Method method = e2e::Method::kExactOpt;
  /// Worker threads for the underlying sweeps; 0 = DELTANC_THREADS env
  /// or hardware concurrency.
  int threads = 0;
  /// Relative slack for the Delta-ordering check: a bound may undercut
  /// its predecessor by at most this fraction.
  double ordering_tol = 1e-4;
  /// Relative slack for axis monotonicity (hops, load, epsilon, ...).
  double monotonicity_tol = 1e-4;
  /// kPaperK may exceed kExactOpt by at most this fraction -- enforced
  /// only where the resolved Delta is >= 0: for negative Delta the
  /// paper's K = 0 rule overshoots by design (its own caveat; see
  /// bench/ablation_k_procedure.cpp), so only the one-sided
  /// kExactOpt <= kPaperK invariant is checked there.
  double method_tol = 0.20;
  /// Run the kExactOpt vs kPaperK agreement check (doubles the solves).
  bool check_methods = true;
  /// Per-point solver override, mirroring SweepOptions::solver (used by
  /// tests to inject broken solvers).  When set, the unclassified-+inf
  /// check and the method-agreement check are skipped.
  std::function<e2e::BoundResult(const e2e::Scenario&, e2e::Method)> solver;
};

/// One violated invariant.
struct SelfCheckIssue {
  std::string check;   ///< "finiteness", "ordering", "monotonicity", ...
  std::string detail;  ///< human-readable description with the operands
};

/// Outcome of one self_check() run; merge runs with operator+=.
struct SelfCheckReport {
  std::size_t points = 0;  ///< scenarios solved
  std::size_t checks = 0;  ///< individual invariant comparisons performed
  std::vector<SelfCheckIssue> issues;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
  /// "N points, M checks, K issue(s)".
  [[nodiscard]] std::string summary() const;

  SelfCheckReport& operator+=(const SelfCheckReport& other);
};

/// Checks an explicit scenario list: finiteness/NaN-freedom and
/// classification of every solve, Delta-ordering within groups of
/// scenarios that differ only in scheduler/deadlines, and kExactOpt vs
/// kPaperK agreement.
[[nodiscard]] SelfCheckReport self_check(
    std::span<const e2e::Scenario> scenarios,
    const SelfCheckOptions& options = {});

/// Checks a grid: everything the list overload checks, plus monotonicity
/// along every axis with a theory-known direction (hops, n0, nc, u0, uc
/// up => delay up; epsilon, capacity up => delay down).
[[nodiscard]] SelfCheckReport self_check(const SweepGrid& grid,
                                         const SelfCheckOptions& options = {});

/// Checks one scenario by expanding it into all four schedulers (the
/// scenario's own EDF deadlines are kept for the EDF variant).
[[nodiscard]] SelfCheckReport self_check(const e2e::Scenario& scenario,
                                         const SelfCheckOptions& options = {});

/// The full battery over the paper's Fig. 2-4 operating grids, extended
/// with SP-high: what `deltanc_cli --selfcheck` runs.  Includes the
/// warm-start agreement battery (self_check_warm_start) on the Fig. 2
/// grids.
[[nodiscard]] SelfCheckReport self_check_figures(
    const SelfCheckOptions& options = {});

/// Warm-start agreement battery: solves `grid` twice -- cold
/// (warm_start = kCold, every point from scratch) and warm (kWarm, the
/// chained default) -- and checks that each point agrees on finiteness
/// and, where finite, deviates by at most kWarmStartRelTol relative.
/// This is the enforcement of the warm-start tolerance contract.
[[nodiscard]] SelfCheckReport self_check_warm_start(
    const SweepGrid& grid, const SelfCheckOptions& options = {});

/// Delay-profile battery (part of self_check_figures, i.e. of
/// `deltanc_cli --selfcheck`): for every scenario the epsilon grid is
/// solved three ways -- independent cold scalar solves, a cold profile
/// (Solver::solve_profile at warm_start = kCold), and a warm chained
/// profile -- and four invariants are enforced:
///   - pinning: every cold-profile level is *bit-identical* to the
///     scalar solve of the same scenario at that epsilon (the profile
///     engine must not perturb the cold path);
///   - warm tolerance: every warm level agrees with its cold value on
///     finiteness and deviates by at most kWarmStartRelTol relative;
///   - monotonicity: d(epsilon) is non-increasing in epsilon for both
///     profiles (a looser violation probability cannot raise the bound);
///   - classification: every non-finite level carries a diagnostic.
[[nodiscard]] SelfCheckReport self_check_profile(
    std::span<const e2e::Scenario> scenarios,
    std::span<const double> epsilons, const SelfCheckOptions& options = {});

/// The curve-backed scheduler battery (what `deltanc_cli --selfcheck`
/// runs when --scheduler names a gps/drr/sced spec), over H = 2, 5, 10
/// and symmetric loads U = 30, 50, 90%:
///   - GPS bounds are non-increasing in the through weight share;
///   - GPS(1,1) (half the link, but its deterministic curve pays the
///     through burst once end-to-end) bounds the per-hop SP-high
///     Theorem-1 analysis from below;
///   - DRR bounds are non-increasing in the through quantum, and
///     GPS(phi, phi) bounds DRR(phi, phi) from below (same rate, DRR
///     adds a round-robin latency);
///   - sced agrees with gps(1,1) on symmetric loads (load-proportional
///     == equal-weight sharing when the loads are equal);
///   - GPS isolation: at total utilization >= 1 a gps(3,1) through
///     class with guaranteed rate above its load keeps a finite bound
///     while BMUX diverges;
///   - simulation cross-check: the slot-level simulator (which runs the
///     actual deficit-counter / deadline-curve disciplines) must keep
///     its empirical delay quantiles below the analytic bounds for
///     gps(1,1), drr(1,1), and sced on a symmetric two-hop scenario.
[[nodiscard]] SelfCheckReport self_check_curve_backed(
    const SelfCheckOptions& options = {});

}  // namespace deltanc
