// PathAnalyzer: the one-stop facade of the library.  From a scenario it
// produces (a) the paper's probabilistic end-to-end delay bound
// (Section IV, optimized over its free parameters), (b) the additive
// per-node baseline of Example 3, and (c) a discrete-time simulation of
// the same network running the *actual* scheduling algorithm, so that
// analytic bounds can be checked against empirical delay quantiles.
#pragma once

#include "e2e/additive_baseline.h"
#include "e2e/param_search.h"
#include "sim/tandem.h"

namespace deltanc {

/// Side-by-side analytic and empirical results for one scenario.
struct ValidationReport {
  e2e::BoundResult bound;        ///< analytic end-to-end bound
  double empirical_quantile;     ///< simulated delay at level 1 - epsilon_sim
  double empirical_max;          ///< largest simulated delay
  double epsilon_sim;            ///< quantile level used for the simulation
  std::size_t samples;           ///< number of simulated through chunks
  bool bound_holds;              ///< empirical quantile <= analytic bound
};

/// Facade over the analysis (src/e2e) and simulation (src/sim) layers.
class PathAnalyzer {
 public:
  explicit PathAnalyzer(e2e::Scenario scenario);

  [[nodiscard]] const e2e::Scenario& scenario() const noexcept {
    return scenario_;
  }

  /// The paper's end-to-end delay bound (Section IV), optimized over
  /// gamma and the Chernoff parameter; EDF deadlines resolved by fixed
  /// point.
  [[nodiscard]] e2e::BoundResult bound(
      e2e::Method method = e2e::Method::kExactOpt) const;

  /// The node-by-node additive BMUX baseline (Fig. 4's loose curve).
  [[nodiscard]] e2e::BoundResult additive_bound() const;

  /// Simulates the tandem with the scenario's scheduler.  EDF deadlines
  /// are the resolved analytic ones.  Delays are in slots (= ms).
  [[nodiscard]] sim::TandemResult simulate(std::int64_t slots,
                                           std::uint64_t seed = 1) const;

  /// Runs both: computes the bound at the scenario's epsilon, simulates,
  /// and compares the bound against the empirical (1 - epsilon_sim)
  /// delay quantile.  epsilon_sim is chosen so the quantile is resolvable
  /// from the sample count (>= 100 tail samples).
  [[nodiscard]] ValidationReport validate(std::int64_t slots,
                                          std::uint64_t seed = 1) const;

 private:
  e2e::Scenario scenario_;

  [[nodiscard]] sim::TandemConfig tandem_config(std::int64_t slots,
                                                std::uint64_t seed) const;
};

}  // namespace deltanc
