// Fluent builder for end-to-end scenarios -- the entry point of the
// public API.  Wraps e2e::Scenario with convenience conversions (e.g.
// specifying load as a utilization fraction instead of a flow count, as
// the paper's examples do).
#pragma once

#include "e2e/param_search.h"

namespace deltanc {

/// Flow count whose aggregate mean rate is the fraction `u` of the
/// scenario's capacity (rounded to whole flows; may be 0).  Shared by
/// ScenarioBuilder and the sweep axes (core/sweep.h) so both resolve
/// utilizations identically.
/// @throws std::invalid_argument unless u is finite, >= 0, and resolves
/// to a flow count an int can represent.
[[nodiscard]] int flows_for_utilization(const e2e::Scenario& sc, double u);

/// Builds an e2e::Scenario step by step.  All setters return *this.
/// Setters only store; validation happens in one pass at build() (or on
/// demand via validate()), so an error message names *every* bad field
/// rather than the first one touched.
///
/// Example (the paper's Fig. 2 operating point at U = 50%, H = 5):
///
///   auto scenario = ScenarioBuilder()
///                       .hops(5)
///                       .through_flows(100)
///                       .cross_utilization(0.35)
///                       .scheduler(sched::SchedulerKind::kFifo)
///                       .build();
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  ScenarioBuilder& capacity_mbps(double c);
  ScenarioBuilder& hops(int h);
  ScenarioBuilder& source(const traffic::MmooSource& src);
  ScenarioBuilder& through_flows(int n);
  ScenarioBuilder& cross_flows(int n);
  /// Sets the through flow count from a utilization fraction of the link
  /// (rounded to whole flows, minimum 1).
  ScenarioBuilder& through_utilization(double u);
  /// Sets the per-node cross flow count from a utilization fraction.
  ScenarioBuilder& cross_utilization(double u);
  ScenarioBuilder& violation_probability(double eps);
  /// Full scheduler identity (kind + parameters); replaces everything
  /// previously set, including EDF deadline factors.
  ScenarioBuilder& scheduler(const sched::SchedulerSpec& spec);
  /// Scheduler kind only (also matches a bare sched::SchedulerKind
  /// enum): keeps EDF deadline factors already set via edf_deadlines(),
  /// so the two setters compose in either order.
  ScenarioBuilder& scheduler(sched::SchedulerKind kind);
  /// EDF deadline factors: d*_0 = own * d_e2e/H, d*_c = cross * d_e2e/H.
  /// Stored on the scheduler spec; the kind is left untouched.
  ScenarioBuilder& edf_deadlines(double own_factor, double cross_factor);

  /// All violations of the current configuration (none when valid).
  [[nodiscard]] diag::ValidationReport validate() const;

  /// @throws std::invalid_argument if the configuration is malformed; the
  /// message names every violated field, not just the first.
  [[nodiscard]] e2e::Scenario build() const;

 private:
  e2e::Scenario sc_{};

  [[nodiscard]] int flows_for_utilization(double u) const;
};

}  // namespace deltanc
