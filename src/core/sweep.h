// Parallel scenario-sweep engine.  Every figure of the paper and every
// study in EXPERIMENTS.md is a *grid* of scenario solves -- over
// utilization, path length, traffic mix, scheduler, deadlines, and
// epsilon.  SweepRunner fans such a grid out across a ThreadPool
// (core/thread_pool.h) and returns the results in deterministic input
// order regardless of completion order.
//
// Warm-started grids (SweepOptions::warm_start = kWarm, the default):
// neighboring points along the innermost numeric axis differ in one
// parameter, so each point seeds its neighbor with a Solver::State (the
// eb(s) memo, the stable-s bracket, the previous optimum, and the
// resolved EDF fixed point).  The grid decomposes into independent
// chains along that axis; every chain is solved sequentially by one
// worker while distinct chains run in parallel, so the results are a
// function of the grid alone -- a 1-thread and an N-thread run produce
// bit-identical reports.  Warm results may differ from cold ones within
// the documented warm-start tolerance (docs/API.md#warm-starts); kCold
// reproduces the historical every-point-from-scratch behavior, where
// each point is a pure function of its scenario.
//
// Grids are described by SweepGrid: a base e2e::Scenario plus axes.  The
// cross product enumerates axes in the order they were added, first axis
// outermost (row-major): for axes A, B with |B| = m, point i varies B
// fastest, i.e. i = a * m + b.  Non-gridded workloads (e.g. Fig. 3's
// traffic mix, where U0 and Uc co-vary) pass an explicit scenario list to
// SweepRunner::run instead.
//
// Failure policy: every resolved scenario is validated before it is
// solved (Scenario::validate()), so a malformed point is classified as
// kInvalidScenario with a message naming every bad field; a point whose
// solve still throws is captured (ok = false, error = what(), classified
// kNumericalDomain) and never aborts the sweep; an unstable configuration
// simply reports its +inf bound.  Either way the remaining points are
// unaffected, and SweepReport::counts_by_kind() tallies outcomes per
// diag::SolveErrorKind.
#pragma once

#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/table.h"
#include "e2e/param_search.h"

namespace deltanc {

/// Canonical scheduler name ("fifo", "bmux", "sp-high", "edf",
/// "delta:<value>").  Thin forwarder to the one registry in
/// sched/scheduler_spec.h; a bare sched::SchedulerKind converts
/// implicitly.
[[nodiscard]] std::string scheduler_name(const sched::SchedulerSpec& s);
/// Inverse of scheduler_name (accepts every form sched::parse_scheduler
/// does, including "delta:<value>"); returns false on unknown names.
[[nodiscard]] bool scheduler_from_name(const std::string& name,
                                       sched::SchedulerSpec& out);
/// Kind-level inverse for call sites holding a bare SchedulerKind;
/// rejects "delta:<value>" (no bare kind carries the offset).
[[nodiscard]] bool scheduler_from_name(const std::string& name,
                                       sched::SchedulerKind& out);

/// A base scenario plus sweep axes; enumerates the cross product in
/// deterministic row-major order (first-added axis outermost).
class SweepGrid {
 public:
  explicit SweepGrid(e2e::Scenario base = {});

  // Each *_axis call appends one axis.  Values are applied to the base
  // scenario exactly like the corresponding ScenarioBuilder setter
  // (utilizations are converted to whole flow counts against the base
  // capacity and source).  An axis with no values makes the grid empty.
  SweepGrid& hops_axis(std::vector<int> values);
  /// Full scheduler identities: each value *replaces* the scenario's
  /// scheduler spec wholesale (including EDF factors / fixed offsets).
  SweepGrid& scheduler_axis(std::vector<sched::SchedulerSpec> values);
  /// Scheduler kinds only: each value re-assigns the kind but keeps the
  /// EDF factors of the base scenario, so it composes with edf_axis and
  /// edf_deadlines in either order -- the historical behavior.
  SweepGrid& scheduler_axis(std::vector<sched::SchedulerKind> values);
  /// Disambiguates brace-enclosed kind lists (kinds convert implicitly
  /// to specs, so `{kFifo, kBmux}` would otherwise match both vector
  /// overloads); routes to the kinds-only overload above.
  SweepGrid& scheduler_axis(std::initializer_list<sched::SchedulerKind> values) {
    return scheduler_axis(std::vector<sched::SchedulerKind>(values));
  }
  SweepGrid& edf_axis(std::vector<sched::EdfFactors> values);
  /// Continuous Delta axis: each value makes the scheduler an explicit
  /// fixed-Delta spec (sched::SchedulerSpec::fixed_delta).  Values may be
  /// +/-inf -- Delta=0 solves identically to fifo, Delta=+inf to bmux --
  /// which is the paper's FIFO<->BMUX interpolation experiment.
  SweepGrid& delta_axis(std::vector<double> values);
  SweepGrid& through_flows_axis(std::vector<int> values);
  SweepGrid& cross_flows_axis(std::vector<int> values);
  SweepGrid& through_utilization_axis(std::vector<double> values);
  SweepGrid& cross_utilization_axis(std::vector<double> values);
  SweepGrid& epsilon_axis(std::vector<double> values);
  SweepGrid& capacity_axis(std::vector<double> values);

  /// `steps` evenly spaced values from lo to hi inclusive (steps >= 2);
  /// steps == 1 yields {lo}.  @throws std::invalid_argument if steps < 1.
  static std::vector<double> linspace(double lo, double hi, int steps);

  /// The raw values one *_axis call recorded, exactly as given (numeric
  /// axes keep their doubles even for integer axes like hops; u0/uc keep
  /// the utilization fractions, not the resolved flow counts).  Replaying
  /// them through the same-named *_axis call on the same base scenario
  /// reproduces the grid bit-for-bit -- this is what the JSON codec
  /// (io/codec.h) serializes.
  struct AxisSpec {
    std::string name;             ///< "hops", "uc", "scheduler", "delta", ...
    std::vector<double> numeric;  ///< numeric axes (incl. "delta")
    /// "scheduler" axis values.  When `scheduler_kinds_only` the axis was
    /// added via the kind overload (values re-assign the kind, keeping
    /// base EDF factors) and the codec serializes bare names; otherwise
    /// values are full replacement specs serialized as objects.
    std::vector<sched::SchedulerSpec> schedulers;
    bool scheduler_kinds_only = false;
    std::vector<sched::EdfFactors> edf;  ///< "edf" axis
  };

  [[nodiscard]] const e2e::Scenario& base() const noexcept { return base_; }
  /// Number of axes added so far.
  [[nodiscard]] std::size_t axes() const noexcept { return axes_.size(); }
  /// Value count of axis `a`.
  [[nodiscard]] std::size_t axis_size(std::size_t a) const;
  /// Name of axis `a` ("hops", "scheduler", ...), for logs.
  [[nodiscard]] const std::string& axis_name(std::size_t a) const;
  /// Serializable description of axis `a` (see AxisSpec).
  /// @throws std::out_of_range if a >= axes().
  [[nodiscard]] const AxisSpec& axis_spec(std::size_t a) const;
  /// Total number of grid points (1 for a grid with no axes: the base).
  [[nodiscard]] std::size_t size() const noexcept;

  /// The fully resolved scenario of point `i` (row-major decode).
  /// @throws std::out_of_range if i >= size().
  [[nodiscard]] e2e::Scenario scenario_at(std::size_t i) const;
  /// All scenarios, in input order.
  [[nodiscard]] std::vector<e2e::Scenario> scenarios() const;

 private:
  struct Axis {
    std::string name;
    // One mutator per axis value; applied to a copy of the base.
    std::vector<std::function<void(e2e::Scenario&)>> values;
    // The raw values behind the mutators, for serialization.
    AxisSpec spec;
  };

  SweepGrid& add_axis(Axis axis);

  e2e::Scenario base_;
  std::vector<Axis> axes_;
};

/// One solved grid point.
struct SweepPoint {
  e2e::Scenario scenario;   ///< the fully resolved input scenario
  e2e::BoundResult bound;   ///< delay_ms = +inf when unstable or failed
  /// Full d(epsilon) artifact of this point, filled only when
  /// SweepOptions::profile_epsilons is non-empty (and distinct from the
  /// grid's `epsilon` *axis*, which still varies the scenario's own
  /// target level).  `bound` stays the scalar solve at the scenario's
  /// epsilon either way.
  std::optional<e2e::DelayProfile> profile;
  double solve_ms = 0.0;    ///< wall-clock of this solve (informational)
  bool ok = true;           ///< false when the solve threw
  std::string error;        ///< exception message when !ok
};

/// Results of one sweep, in input order.
struct SweepReport {
  std::vector<SweepPoint> points;
  int threads = 1;          ///< worker count actually used
  double wall_ms = 0.0;     ///< end-to-end wall clock of the sweep
  double solve_ms = 0.0;    ///< sum of per-point solve times (~CPU time)
  e2e::SolveStats stats{};  ///< solver instrumentation summed over points

  [[nodiscard]] std::size_t failures() const;    ///< points with !ok
  [[nodiscard]] std::size_t unstable() const;    ///< ok but +inf bound
  /// Points that solved ok but carry at least one diagnostics warning
  /// (e.g. an EDF fixed point that exhausted its retries).
  [[nodiscard]] std::size_t warned() const;
  /// Points that solved ok only after a recovery (EDF damping restarts
  /// or dense-scan fallbacks; see SolveStats::retries / fallbacks).
  [[nodiscard]] std::size_t recovered() const;
  /// Per-kind tallies across all points: each failed point's error class,
  /// every warning of ok points, and ok-but-+inf points as kUnstable when
  /// a custom solver left them unclassified.
  [[nodiscard]] diag::ErrorCounts counts_by_kind() const;

  /// One row per point: index, H, scheduler, N0, Nc, U[%], eps,
  /// delay[ms], gamma, s, delta, solve[ms], status.
  [[nodiscard]] Table to_table(int precision = 3) const;
  /// to_table() rendered as CSV.
  void write_csv(std::ostream& os, int precision = 6) const;
  /// Long-format CSV of the per-point delay profiles: header
  /// `point,hops,scheduler,n0,nc,u_pct,epsilon,delay_ms,gamma,s,sigma,delta`
  /// then one row per (point, epsilon level), full `%.17g` precision so
  /// the emission is byte-deterministic and round-trips exactly.  Points
  /// without a profile are skipped.
  void write_profile_csv(std::ostream& os) const;
};

/// Options for SweepRunner.
struct SweepOptions {
  /// Worker count; 0 = DELTANC_THREADS env or hardware_concurrency().
  int threads = 0;
  /// Solver method passed through to deltanc::Solver.
  e2e::Method method = e2e::Method::kExactOpt;
  /// Grid warm-start policy (see the header comment): kWarm chains a
  /// Solver::State along the innermost numeric axis of run(grid); kCold
  /// solves every point from scratch.  Ignored (always cold) for the
  /// explicit-list overload and when `solver` is set.
  e2e::WarmStart warm_start = e2e::WarmStart::kWarm;
  /// Per-point solver override (default: deltanc::Solver::solve).  Used
  /// e.g. for the additive baseline (e2e::best_additive_bmux_bound).
  /// A custom solver disables warm-start chaining (and profiles: a
  /// scalar override cannot produce d(epsilon) artifacts).
  std::function<e2e::BoundResult(const e2e::Scenario&, e2e::Method)> solver;
  /// When non-empty, every point additionally solves this d(epsilon)
  /// grid via Solver::solve_profile into SweepPoint::profile (each level
  /// in (0, 1)).  Under kWarm the profile shares the chain state with
  /// the scalar solve; under kCold the levels are independent cold
  /// solves (the pinning contract).  Ignored when `solver` is set.
  std::vector<double> profile_epsilons;
  /// Called after each point completes with (done, total).  Invocations
  /// are serialized under a mutex, so the callback need not be
  /// thread-safe; `done` is strictly increasing from 1 to total.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Thread-pool-backed executor for scenario grids.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Solves every point of the grid; results in grid order.
  [[nodiscard]] SweepReport run(const SweepGrid& grid) const;
  /// Solves an explicit scenario list; results in list order.
  [[nodiscard]] SweepReport run(std::span<const e2e::Scenario> scenarios) const;

  /// The worker count run() will use for `n_tasks` tasks (never more
  /// threads than tasks, never fewer than 1).
  [[nodiscard]] int resolved_threads(std::size_t n_tasks) const;

 private:
  /// Warm-chained grid execution: scenarios decomposed into
  /// `n / chain_len` chains along the chain axis (consecutive chain
  /// members are `stride` apart in the flat enumeration), each solved
  /// sequentially under one threaded Solver::State.
  [[nodiscard]] SweepReport run_chained(std::span<const e2e::Scenario> scenarios,
                                        std::size_t chain_len,
                                        std::size_t stride) const;

  SweepOptions options_;
};

}  // namespace deltanc
