// Markdown report generation: one call turns a scenario into a
// self-contained analysis document (configuration, bounds for all
// schedulers, the delay-CCDF bound, and optionally a simulation
// cross-check) -- the artifact an operator would attach to a capacity
// review.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.h"

namespace deltanc {

struct ReportOptions {
  /// Violation probabilities for the delay-CCDF table.
  std::vector<double> ccdf_epsilons{1e-3, 1e-6, 1e-9, 1e-12};
  /// Simulation length in slots; 0 disables the empirical cross-check.
  std::int64_t simulate_slots = 0;
  std::uint64_t seed = 1;
};

/// The analytic delay-CCDF bound: d(eps) for each requested epsilon,
/// using the scenario's scheduler.  Entries are +infinity when unstable.
[[nodiscard]] std::vector<double> delay_ccdf_bound(
    const e2e::Scenario& scenario, std::span<const double> epsilons,
    e2e::Method method = e2e::Method::kExactOpt);

/// Renders the full markdown report.
[[nodiscard]] std::string render_report(const e2e::Scenario& scenario,
                                        const ReportOptions& options = {});

}  // namespace deltanc
