// Markdown report generation: one call turns a scenario into a
// self-contained analysis document (configuration, bounds for all
// schedulers, the delay-CCDF bound, and optionally a simulation
// cross-check) -- the artifact an operator would attach to a capacity
// review.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.h"

namespace deltanc {

struct ReportOptions {
  /// Violation probabilities for the delay-CCDF table.
  std::vector<double> ccdf_epsilons{1e-3, 1e-6, 1e-9, 1e-12};
  /// Simulation length in slots; 0 disables the empirical cross-check.
  std::int64_t simulate_slots = 0;
  std::uint64_t seed = 1;
};

/// Renders the full markdown report.  The delay-CCDF table is produced
/// by Solver::solve_profile over `ccdf_epsilons` (the profile API
/// replaced the historical per-epsilon re-solve free function).
[[nodiscard]] std::string render_report(const e2e::Scenario& scenario,
                                        const ReportOptions& options = {});

}  // namespace deltanc
