#include "core/report.h"

#include <cmath>
#include <sstream>

#include "core/table.h"
#include "e2e/solver.h"
#include "sched/scheduler_spec.h"

namespace deltanc {

std::string render_report(const e2e::Scenario& scenario,
                          const ReportOptions& options) {
  std::ostringstream os;
  const PathAnalyzer analyzer(scenario);

  os << "# deltanc path analysis\n\n";
  os << "## Scenario\n\n";
  os << "| parameter | value |\n|---|---|\n";
  os << "| link rate per node | " << Table::format(scenario.capacity, 1)
     << " Mbps |\n";
  os << "| path length | " << scenario.hops << " hops |\n";
  os << "| through flows | " << scenario.n_through << " |\n";
  os << "| cross flows per node | " << scenario.n_cross << " |\n";
  os << "| total utilization | "
     << Table::format(100.0 * scenario.utilization(), 1) << " % |\n";
  os << "| scheduler | " << sched::scheduler_description(scenario.scheduler)
     << " |\n";
  os << "| target violation probability | " << scenario.epsilon << " |\n\n";

  os << "## End-to-end delay bound\n\n";
  const e2e::BoundResult bound = analyzer.bound();
  if (!std::isfinite(bound.delay_ms)) {
    os << "The configuration is **unstable** (offered load reaches the "
          "link capacity); no finite bound exists.\n";
    return os.str();
  }
  os << "P(W > **" << Table::format(bound.delay_ms) << " ms**) <= "
     << scenario.epsilon << "  (optimized: gamma = "
     << Table::format(bound.gamma, 4) << ", s = "
     << Table::format(bound.s, 4) << ", Delta = " << bound.delta << ")\n\n";

  os << "## Scheduler comparison (same scenario)\n\n";
  os << "| scheduler | bound [ms] |\n|---|---|\n";
  for (sched::SchedulerKind s :
       {sched::SchedulerKind::kSpHigh, sched::SchedulerKind::kEdf,
        sched::SchedulerKind::kFifo, sched::SchedulerKind::kBmux}) {
    e2e::Scenario alt = scenario;
    alt.scheduler = s;  // kind re-assignment keeps the EDF factors
    os << "| " << sched::scheduler_description(alt.scheduler) << " | "
       << Table::format(Solver().solve(alt).delay_ms) << " |\n";
  }
  os << "\n## Delay CCDF bound\n\n| epsilon | d(epsilon) [ms] |\n|---|---|\n";
  // One chained profile solve instead of the historical per-epsilon
  // re-solve loop: the levels share the eb memo / bracket / optimum probe.
  SolveOptions profile_options;
  profile_options.warm_start = e2e::WarmStart::kWarm;
  const e2e::DelayProfile ccdf =
      Solver(profile_options).solve_profile(scenario, options.ccdf_epsilons);
  for (std::size_t i = 0; i < ccdf.levels.size(); ++i) {
    os << "| " << ccdf.epsilons[i] << " | "
       << Table::format(ccdf.levels[i].delay_ms) << " |\n";
  }

  if (options.simulate_slots > 0) {
    const ValidationReport v =
        analyzer.validate(options.simulate_slots, options.seed);
    os << "\n## Simulation cross-check\n\n";
    os << "| metric | value |\n|---|---|\n";
    os << "| simulated slots | " << options.simulate_slots << " |\n";
    os << "| through samples | " << v.samples << " |\n";
    os << "| empirical quantile (eps = " << v.epsilon_sim << ") | "
       << Table::format(v.empirical_quantile) << " ms |\n";
    os << "| empirical max | " << Table::format(v.empirical_max)
       << " ms |\n";
    os << "| bound dominates | " << (v.bound_holds ? "yes" : "**NO**")
       << " |\n";
  }
  return os.str();
}

}  // namespace deltanc
