// Piecewise-linear curves for the (min,plus) network calculus.
//
// Arrival envelopes E(t), service curves S(t) and their compositions are
// represented as right-continuous piecewise-linear functions on [0, inf)
// with the network-calculus convention f(t) = 0 for t < 0.  A curve may be
// +infinity beyond a finite point (`inf_from`), which represents the
// burst-delay curve delta_d of Eq. (4): delta_d(t) = 0 for t <= d and
// +infinity for t > d.
//
// Values at individual breakpoints follow the right-continuous convention.
// All quantities derived from curves in this library (delay bounds and
// backlog bounds via horizontal/vertical deviations, schedulability
// conditions) are suprema/infima over time and are therefore insensitive
// to the value a curve takes at isolated points.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace deltanc::nc {

/// One linear segment of a curve: for `t in [x, next.x)` the value is
/// `y + slope * (t - x)`.
struct Knot {
  double x;      ///< segment start (>= 0)
  double y;      ///< value at the segment start
  double slope;  ///< segment slope
};

/// Right-continuous piecewise-linear function on [0, inf), zero on
/// (-inf, 0), optionally +infinity after `inf_from()`.
class Curve {
 public:
  /// The zero curve.
  Curve();

  /// Builds a curve from explicit knots.  Knots must start at x = 0 and
  /// have strictly increasing x.  `inf_from` (if given) marks the point
  /// after which the value is +infinity; it must be >= the last knot's x.
  /// @throws std::invalid_argument on malformed input.
  explicit Curve(std::vector<Knot> knots,
                 std::optional<double> inf_from = std::nullopt);

  // -- factories ------------------------------------------------------

  /// f(t) = 0.
  static Curve zero();
  /// Constant-rate service curve f(t) = rate * t (rate >= 0).
  static Curve rate(double rate);
  /// Affine curve f(t) = value0 + slope * t for t >= 0.
  static Curve affine(double value0, double slope);
  /// Rate-latency service curve f(t) = rate * max(0, t - latency).
  static Curve rate_latency(double rate, double latency);
  /// Leaky-bucket envelope E(t) = burst + rate * t for t > 0 (E(0+)).
  static Curve leaky_bucket(double rate, double burst);
  /// Burst-delay curve delta_d of Eq. (4): 0 for t <= d, +infinity after.
  static Curve delta(double d);
  /// Concave piecewise-linear envelope given as the pointwise minimum of
  /// leaky buckets (rate_i, burst_i) -- the standard multi-leaky-bucket
  /// traffic descriptor.  @throws std::invalid_argument if empty.
  static Curve multi_leaky_bucket(std::span<const std::pair<double, double>>
                                      rate_burst_pairs);

  // -- observers ------------------------------------------------------

  /// Value at time t (0 for t < 0, +infinity past `inf_from`).
  [[nodiscard]] double eval(double t) const noexcept;
  /// The knot sequence (non-empty; first knot has x = 0).
  [[nodiscard]] const std::vector<Knot>& knots() const noexcept {
    return knots_;
  }
  /// Point after which the curve is +infinity, if any.
  [[nodiscard]] std::optional<double> inf_from() const noexcept;
  /// True if the curve is +infinity somewhere.
  [[nodiscard]] bool has_infinite_tail() const noexcept;
  /// Slope of the final (unbounded) segment; meaningless if the curve has
  /// an infinite tail (throws in that case).
  [[nodiscard]] double final_slope() const;
  /// Largest finite breakpoint coordinate.
  [[nodiscard]] double last_knot_x() const noexcept;

  /// True if the finite part is non-decreasing (within tolerance).
  [[nodiscard]] bool is_nondecreasing(double tol = 1e-9) const noexcept;
  /// True if the finite part is convex (within tolerance).  A finite
  /// inf_from tail is treated as convex continuation.
  [[nodiscard]] bool is_convex(double tol = 1e-9) const noexcept;
  /// True if the finite part is concave (within tolerance) and the curve
  /// has no infinite tail.
  [[nodiscard]] bool is_concave(double tol = 1e-9) const noexcept;

  /// Human-readable dump (for diagnostics and test failure messages).
  [[nodiscard]] std::string to_string() const;

  // -- transforms (all return new curves) -----------------------------

  /// Pointwise max(f, 0).  (Curves are usually already non-negative; this
  /// implements the [.]_+ clamp of the paper's service-curve formulas.)
  [[nodiscard]] Curve clamp_nonnegative() const;
  /// f scaled vertically: c * f  (c >= 0).
  [[nodiscard]] Curve scaled(double c) const;
  /// f shifted up: f + c.
  [[nodiscard]] Curve vshift(double c) const;
  /// Right shift by d >= 0:  g(t) = f(t - d) (g = f convolved with
  /// delta_d when f is non-negative and non-decreasing with f(0) >= 0).
  [[nodiscard]] Curve hshift(double d) const;
  /// Left shift by a >= 0:  g(t) = f(t + a) for t >= 0 (used in the
  /// schedulability condition Eq. (24), where envelopes are evaluated at
  /// t + Delta_{j,k}(d)).  @throws std::invalid_argument if the shift
  /// reaches into an infinite tail at t = 0 (f(a) must be finite).
  [[nodiscard]] Curve advanced(double a) const;
  /// Multiplies by the indicator 1{t > cut}: value 0 for t <= cut.
  [[nodiscard]] Curve gated(double cut) const;

  /// Removes redundant knots (collinear merges, zero-length artifacts).
  void simplify(double tol = 1e-12);

 private:
  std::vector<Knot> knots_;
  double inf_from_;  // +infinity if no infinite tail

  friend Curve pointwise_binary(const Curve& f, const Curve& g, bool take_min,
                                bool add);
};

/// Pointwise minimum.  Curves with infinite tails are supported (the min
/// follows the finite curve wherever exactly one operand is infinite).
[[nodiscard]] Curve pointwise_min(const Curve& f, const Curve& g);
/// Pointwise maximum.
[[nodiscard]] Curve pointwise_max(const Curve& f, const Curve& g);
/// Pointwise sum.
[[nodiscard]] Curve pointwise_add(const Curve& f, const Curve& g);
/// Pointwise difference f - g restricted to where both are finite;
/// @throws std::invalid_argument if g has an infinite tail.
[[nodiscard]] Curve pointwise_sub(const Curve& f, const Curve& g);

}  // namespace deltanc::nc
