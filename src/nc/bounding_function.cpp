#include "nc/bounding_function.h"

#include <algorithm>
#include <cmath>

namespace deltanc::nc {

ExpBound::ExpBound(double prefactor, double decay)
    : m_(prefactor), alpha_(decay) {
  if (!(prefactor > 0.0) || !std::isfinite(prefactor)) {
    throw std::invalid_argument("ExpBound: prefactor must be positive and finite");
  }
  if (!(decay > 0.0) || !std::isfinite(decay)) {
    throw std::invalid_argument("ExpBound: decay must be positive and finite");
  }
}

double ExpBound::eval(double sigma) const noexcept {
  return std::min(1.0, m_ * std::exp(-alpha_ * sigma));
}

double ExpBound::sigma_for(double epsilon) const {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("ExpBound::sigma_for: epsilon must be positive");
  }
  return std::max(0.0, std::log(m_ / epsilon) / alpha_);
}

ExpBound ExpBound::scaled(double factor) const {
  return ExpBound(m_ * factor, alpha_);
}

ExpBound inf_convolution(std::span<const ExpBound> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("inf_convolution: need at least one term");
  }
  if (terms.size() == 1) {
    return terms.front();
  }
  // w = sum 1/alpha_j;  log M' = sum (1/(alpha_j w)) log(M_j alpha_j w).
  double w = 0.0;
  for (const auto& t : terms) {
    w += 1.0 / t.decay();
  }
  double log_m = 0.0;
  for (const auto& t : terms) {
    log_m += std::log(t.prefactor() * t.decay() * w) / (t.decay() * w);
  }
  return ExpBound(std::exp(log_m), 1.0 / w);
}

ExpBound inf_convolution(const ExpBound& a, const ExpBound& b) {
  const ExpBound terms[] = {a, b};
  return inf_convolution(std::span<const ExpBound>(terms));
}

ExpBound geometric_tail(const ExpBound& term, double gamma) {
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("geometric_tail: gamma must be positive");
  }
  const double q = std::exp(-term.decay() * gamma);
  return ExpBound(term.prefactor() / (1.0 - q), term.decay());
}

double constrained_split_minimum(std::span<const ExpBound> terms,
                                 double sigma) {
  if (terms.empty()) {
    throw std::invalid_argument("constrained_split_minimum: need terms");
  }
  if (sigma <= 0.0) {
    double total = 0.0;
    for (const auto& t : terms) total += t.prefactor();
    return total;
  }
  // KKT conditions: sigma_j = max(0, log(M_j alpha_j / lambda) / alpha_j).
  // sum_j sigma_j(lambda) is decreasing in lambda; bisect on log(lambda).
  const auto total_sigma = [&](double log_lambda) {
    double s = 0.0;
    for (const auto& t : terms) {
      const double sj =
          (std::log(t.prefactor() * t.decay()) - log_lambda) / t.decay();
      s += std::max(0.0, sj);
    }
    return s;
  };
  double lo = -800.0;  // lambda ~ exp(-800): sigma very large
  double hi = 800.0;   // lambda huge: all sigma_j = 0
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_sigma(mid) > sigma) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double log_lambda = 0.5 * (lo + hi);
  // Recover the split and evaluate.
  double value = 0.0;
  double assigned = 0.0;
  std::vector<double> split(terms.size(), 0.0);
  for (std::size_t j = 0; j < terms.size(); ++j) {
    const auto& t = terms[j];
    const double sj =
        (std::log(t.prefactor() * t.decay()) - log_lambda) / t.decay();
    split[j] = std::max(0.0, sj);
    assigned += split[j];
  }
  // Distribute any bisection residue onto the term with the largest decay
  // (cheapest place to park extra slack); the residue is O(1e-12) so this
  // only guards against returning a value above the true minimum.
  if (assigned < sigma) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < terms.size(); ++j) {
      if (terms[j].decay() > terms[best].decay()) best = j;
    }
    split[best] += sigma - assigned;
  }
  for (std::size_t j = 0; j < terms.size(); ++j) {
    value += terms[j].prefactor() * std::exp(-terms[j].decay() * split[j]);
  }
  return value;
}

}  // namespace deltanc::nc
