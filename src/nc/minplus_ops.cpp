#include "nc/minplus_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace deltanc::nc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Maximal affine piece of a curve: value `y + slope * (t - a)` on the
/// closed interval [a, b] (b may be +infinity).
struct Piece {
  double a;
  double b;
  double y;
  double slope;

  [[nodiscard]] double value_at(double t) const noexcept {
    return y + slope * (t - a);
  }
  [[nodiscard]] bool covers(double t) const noexcept {
    return t >= a && t <= b;
  }
  [[nodiscard]] double length() const noexcept { return b - a; }
};

std::vector<Piece> decompose(const Curve& c) {
  std::vector<Piece> pieces;
  const auto& ks = c.knots();
  const double tail_end =
      c.inf_from().has_value() ? *c.inf_from() : kInf;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const double a = ks[i].x;
    const double b = (i + 1 < ks.size()) ? ks[i + 1].x : tail_end;
    pieces.push_back({a, b, ks[i].y, ks[i].slope});
  }
  return pieces;
}

/// Exact min-plus convolution of two affine pieces.  The optimal split of
/// t = u + v spends budget on the smaller slope first, giving at most two
/// affine segments starting at a1 + a2.
void conv_pieces(const Piece& p, const Piece& q, std::vector<Piece>* out) {
  const double start = p.a + q.a;
  const double v0 = p.y + q.y;
  const Piece* lo = &p;
  const Piece* hi = &q;
  if (q.slope < p.slope) std::swap(lo, hi);
  const double len_lo = lo->length();
  const double len_hi = hi->length();
  if (len_lo == kInf || len_hi == kInf) {
    if (len_lo > 0.0) {
      out->push_back({start, len_lo == kInf ? kInf : start + len_lo, v0,
                      lo->slope});
    }
    if (len_lo < kInf && len_hi > 0.0) {
      const double mid = start + len_lo;
      out->push_back({mid, kInf, v0 + lo->slope * len_lo, hi->slope});
    }
    if (len_lo == 0.0 && len_hi == 0.0) {
      out->push_back({start, start, v0, 0.0});
    }
    return;
  }
  const double mid = start + len_lo;
  const double end = mid + len_hi;
  if (len_lo > 0.0) out->push_back({start, mid, v0, lo->slope});
  if (len_hi > 0.0) {
    out->push_back({mid, end, v0 + lo->slope * len_lo, hi->slope});
  }
  if (len_lo == 0.0 && len_hi == 0.0) out->push_back({start, start, v0, 0.0});
}

/// Exact lower envelope of a set of affine pieces, returned as a Curve
/// that is +infinity past `result_inf` (if finite).  Pieces of zero
/// length affect only isolated points and are ignored.
Curve lower_envelope(std::vector<Piece> pieces, double result_inf) {
  std::vector<double> xs{0.0};
  for (const auto& p : pieces) {
    if (p.length() <= 0.0) continue;
    xs.push_back(p.a);
    if (std::isfinite(p.b)) xs.push_back(p.b);
  }
  // Pairwise crossings inside overlapping ranges.  Near-parallel pieces
  // are skipped and crossings far beyond the finite coordinate scale are
  // capped (see the matching guard in curve.cpp).
  double scale = 1.0;
  for (const auto& p : pieces) {
    scale = std::max(scale, p.a);
    if (std::isfinite(p.b)) scale = std::max(scale, p.b);
  }
  const double far_cap = 1e6 * scale;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i].length() <= 0.0) continue;
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      if (pieces[j].length() <= 0.0) continue;
      const Piece& p = pieces[i];
      const Piece& q = pieces[j];
      const double lo = std::max(p.a, q.a);
      const double hi = std::min(p.b, q.b);
      if (!(hi > lo)) continue;
      const double ds = p.slope - q.slope;
      if (std::abs(ds) <
          1e-9 * (1.0 + std::abs(p.slope) + std::abs(q.slope))) {
        continue;
      }
      const double tc = (q.value_at(lo) - p.value_at(lo)) / ds + lo;
      if (tc > far_cap) continue;
      if (tc > lo + 1e-12 && tc < hi - 1e-12) xs.push_back(tc);
    }
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double a, double b) { return std::abs(a - b) < 1e-12; }),
           xs.end());
  if (std::isfinite(result_inf)) {
    while (!xs.empty() && xs.back() > result_inf) xs.pop_back();
  }

  const bool unbounded =
      std::any_of(pieces.begin(), pieces.end(),
                  [](const Piece& p) { return p.b == kInf; });

  std::vector<Knot> knots;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double a = xs[i];
    if (std::isfinite(result_inf) && a >= result_inf && a > 0.0) break;
    double b;
    if (i + 1 < xs.size()) {
      b = xs[i + 1];
    } else if (unbounded) {
      b = a + 2.0;
    } else {
      break;  // nothing is defined past the last breakpoint
    }
    const double mid = 0.5 * (a + b);
    const Piece* best = nullptr;
    double best_v = kInf;
    for (const auto& p : pieces) {
      if (p.length() <= 0.0 || !p.covers(mid)) continue;
      const double v = p.value_at(mid);
      if (v < best_v) {
        best_v = v;
        best = &p;
      }
    }
    if (best == nullptr) {
      throw std::logic_error(
          "lower_envelope: coverage gap inside the finite domain");
    }
    knots.push_back({a, best->value_at(a), best->slope});
  }
  if (knots.empty()) knots.push_back({0.0, 0.0, 0.0});
  Curve out(std::move(knots), std::isfinite(result_inf)
                                  ? std::optional<double>(result_inf)
                                  : std::nullopt);
  out.simplify();
  return out;
}

bool is_pure_delta(const Curve& c) {
  return c.inf_from().has_value() && c.knots().size() == 1 &&
         c.knots().front().y == 0.0 && c.knots().front().slope == 0.0;
}

void require_nondecreasing(const Curve& c, const char* who) {
  if (!c.is_nondecreasing()) {
    throw std::invalid_argument(std::string(who) +
                                ": operand must be non-decreasing");
  }
}

double eval_left_limit(const Curve& c, double x) {
  if (x <= 0.0) return 0.0;
  const auto& ks = c.knots();
  // Last knot strictly before x.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i].x < x) idx = i;
  }
  return ks[idx].y + ks[idx].slope * (x - ks[idx].x);
}

}  // namespace

namespace {

Curve minplus_conv_impl(const Curve& f, const Curve& g, bool origin_is_zero) {
  // The piece-decomposition algorithm below is exact for arbitrary
  // (possibly non-monotone) piecewise-linear operands -- Theorem-1
  // leftover curves jump downward where bursty cross envelopes kick in.
  // Only the delta fast path (a pure right-shift) needs monotonicity.
  if (is_pure_delta(f) && g.is_nondecreasing()) {
    return g.hshift(*f.inf_from());
  }
  if (is_pure_delta(g) && f.is_nondecreasing()) {
    return f.hshift(*g.inf_from());
  }

  const double inf_f = f.inf_from().value_or(kInf);
  const double inf_g = g.inf_from().value_or(kInf);
  const double result_inf = inf_f + inf_g;  // inf + x = inf

  auto pf = decompose(f);
  auto pg = decompose(g);
  // Under the envelope convention curves represent functions with
  // f(0) = 0; a first knot with y > 0 is a jump immediately after 0
  // (e.g. a leaky bucket's burst).  The infimum in the convolution may
  // place u = 0 and collect the true origin value 0, so an explicit
  // origin point is added.  Function semantics (origin_is_zero = false)
  // keep the knot value instead.
  if (origin_is_zero) {
    if (f.knots().front().y > 0.0) pf.push_back({0.0, 0.0, 0.0, 0.0});
    if (g.knots().front().y > 0.0) pg.push_back({0.0, 0.0, 0.0, 0.0});
  }
  std::vector<Piece> pieces;
  pieces.reserve(pf.size() * pg.size() * 2);
  for (const auto& p : pf) {
    for (const auto& q : pg) {
      conv_pieces(p, q, &pieces);
    }
  }
  return lower_envelope(std::move(pieces), result_inf);
}

}  // namespace

Curve minplus_conv(const Curve& f, const Curve& g) {
  return minplus_conv_impl(f, g, /*origin_is_zero=*/true);
}

Curve minplus_conv_fn(const Curve& f, const Curve& g) {
  return minplus_conv_impl(f, g, /*origin_is_zero=*/false);
}

Curve minplus_conv(std::span<const Curve> curves) {
  if (curves.empty()) {
    throw std::invalid_argument("minplus_conv: need at least one curve");
  }
  Curve acc = curves.front();
  for (std::size_t i = 1; i < curves.size(); ++i) {
    acc = minplus_conv(acc, curves[i]);
  }
  return acc;
}

double minplus_conv_numeric_at(const Curve& f, const Curve& g, double t,
                               int steps) {
  if (t < 0.0) return 0.0;
  // True curve values: f(x) = 0 for x <= 0 (a positive knot value at x = 0
  // is a jump just after 0), f(x) = eval(x) for x > 0.
  const auto val = [](const Curve& c, double x) {
    return x <= 0.0 ? 0.0 : c.eval(x);
  };
  // Endpoints evaluated exactly (u = t*i/steps does not reproduce u = t
  // bit-exactly, which would miss a jump of g at 0+).
  double best = std::min(val(f, t), val(g, t));
  for (int i = 1; i < steps; ++i) {
    const double u = t * static_cast<double>(i) / static_cast<double>(steps);
    best = std::min(best, val(f, u) + val(g, t - u));
  }
  return best;
}

double pseudo_inverse_at(const Curve& s, double y) {
  const auto& ks = s.knots();
  const double tail_end = s.inf_from().value_or(kInf);
  if (ks.front().y >= y) return 0.0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i].y >= y) return ks[i].x;  // reached at (or jumped over) a knot
    const double seg_end = (i + 1 < ks.size()) ? ks[i + 1].x : tail_end;
    if (ks[i].slope > 0.0) {
      const double t = ks[i].x + (y - ks[i].y) / ks[i].slope;
      if (t <= seg_end) return t;
    }
  }
  // Never reached within the finite part; the infinite tail (if any)
  // exceeds every level immediately after tail_end.
  return tail_end;
}

double horizontal_deviation(const Curve& envelope, const Curve& service) {
  if (envelope.has_infinite_tail()) {
    throw std::invalid_argument(
        "horizontal_deviation: envelope must be finite");
  }
  require_nondecreasing(envelope, "horizontal_deviation");
  require_nondecreasing(service, "horizontal_deviation");
  if (!service.has_infinite_tail() &&
      envelope.final_slope() > service.final_slope() + 1e-12) {
    return kInf;
  }
  std::vector<double> candidates{0.0};
  for (const auto& k : envelope.knots()) candidates.push_back(k.x);
  // Preimages under the envelope of the service curve's knot levels.
  std::vector<double> levels;
  for (const auto& k : service.knots()) levels.push_back(k.y);
  for (double level : levels) {
    const auto& ks = envelope.knots();
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (ks[i].slope <= 0.0) continue;
      const double t = ks[i].x + (level - ks[i].y) / ks[i].slope;
      const double seg_end = (i + 1 < ks.size()) ? ks[i + 1].x : kInf;
      if (t >= ks[i].x && t <= seg_end) candidates.push_back(t);
    }
  }
  const double far = 2.0 * (envelope.last_knot_x() + service.last_knot_x() +
                            service.inf_from().value_or(0.0)) +
                     10.0;
  candidates.push_back(far);

  double dev = 0.0;
  for (double t : candidates) {
    const double needed = pseudo_inverse_at(service, envelope.eval(t));
    if (needed == kInf) return kInf;
    dev = std::max(dev, needed - t);
  }
  return std::max(0.0, dev);
}

double vertical_deviation(const Curve& envelope, const Curve& service) {
  if (envelope.has_infinite_tail()) {
    throw std::invalid_argument("vertical_deviation: envelope must be finite");
  }
  if (!service.has_infinite_tail() &&
      envelope.final_slope() > service.final_slope() + 1e-12) {
    return kInf;
  }
  std::vector<double> xs{0.0};
  for (const auto& k : envelope.knots()) xs.push_back(k.x);
  for (const auto& k : service.knots()) xs.push_back(k.x);
  if (service.inf_from().has_value()) xs.push_back(*service.inf_from());
  const double far = 2.0 * (envelope.last_knot_x() + service.last_knot_x() +
                            service.inf_from().value_or(0.0)) +
                     10.0;
  xs.push_back(far);
  double dev = 0.0;
  for (double x : xs) {
    const double right = envelope.eval(x) - service.eval(x);
    if (std::isfinite(right)) dev = std::max(dev, right);
    const double left =
        eval_left_limit(envelope, x) - eval_left_limit(service, x);
    if (std::isfinite(left)) dev = std::max(dev, left);
  }
  return dev;
}

double service_delay_bound(const Curve& envelope, const Curve& service) {
  if (envelope.has_infinite_tail()) {
    throw std::invalid_argument("service_delay_bound: envelope must be finite");
  }
  require_nondecreasing(envelope, "service_delay_bound");
  if (!service.has_infinite_tail() &&
      envelope.final_slope() > service.final_slope() + 1e-12) {
    return kInf;
  }
  // Exact feasibility test for a given shift d: sup_t (E(t) - S(t+d)) <= 0.
  const auto feasible = [&](double d) {
    return vertical_deviation(envelope, service.advanced(
                                            std::min(d, service.inf_from().value_or(kInf)))) <=
           1e-9;
  };
  // Lower bound: every t individually needs at least the first-passage
  // delay (the horizontal-deviation quantity, valid as a *lower* bound
  // even for non-monotone service curves).
  double d0 = 0.0;
  {
    std::vector<double> candidates{0.0};
    for (const auto& k : envelope.knots()) candidates.push_back(k.x);
    for (const auto& ks : service.knots()) {
      // Preimages under the envelope of the service knot levels.
      const auto& ke = envelope.knots();
      for (std::size_t i = 0; i < ke.size(); ++i) {
        if (ke[i].slope <= 0.0) continue;
        const double t = ke[i].x + (ks.y - ke[i].y) / ke[i].slope;
        const double seg_end = (i + 1 < ke.size()) ? ke[i + 1].x : kInf;
        if (t >= ke[i].x && t <= seg_end) candidates.push_back(t);
      }
    }
    candidates.push_back(2.0 * (envelope.last_knot_x() +
                                service.last_knot_x() +
                                service.inf_from().value_or(0.0)) +
                         10.0);
    for (double t : candidates) {
      const double needed = pseudo_inverse_at(service, envelope.eval(t));
      if (needed == kInf) return kInf;
      d0 = std::max(d0, needed - t);
    }
    d0 = std::max(0.0, d0);
  }
  if (feasible(d0)) return d0;
  // The binding constraint at the optimum pairs a knot of E with a knot
  // of S; collect those shift candidates above d0 and take the smallest
  // feasible one.
  std::vector<double> shifts;
  for (const auto& ks : service.knots()) {
    for (const auto& ke : envelope.knots()) {
      const double d = ks.x - ke.x;
      if (d > d0 + 1e-12) shifts.push_back(d);
    }
    if (ks.x > d0 + 1e-12) shifts.push_back(ks.x);
  }
  std::sort(shifts.begin(), shifts.end());
  double lo = d0;
  for (double d : shifts) {
    if (feasible(d)) {
      // Refine between the last infeasible point and this candidate.
      double hi = d;
      for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (feasible(mid)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return hi;
    }
    lo = d;
  }
  return kInf;
}

double minplus_deconv_at(const Curve& envelope, const Curve& service,
                         double t) {
  if (envelope.has_infinite_tail()) {
    throw std::invalid_argument("minplus_deconv: envelope must be finite");
  }
  const bool service_caps =
      service.has_infinite_tail();  // u restricted to [0, inf_from]
  if (!service_caps &&
      envelope.final_slope() > service.final_slope() + 1e-12) {
    return kInf;
  }
  std::vector<double> us{0.0};
  for (const auto& k : service.knots()) us.push_back(k.x);
  for (const auto& k : envelope.knots()) {
    const double u = k.x - t;
    if (u > 0.0) us.push_back(u);
  }
  double u_cap = kInf;
  if (service_caps) {
    u_cap = *service.inf_from();
    us.push_back(u_cap);
  } else {
    us.push_back(2.0 * (envelope.last_knot_x() + service.last_knot_x() + t) +
                 10.0);
  }
  double best = -kInf;
  for (double u : us) {
    if (u > u_cap) continue;
    const double v = envelope.eval(t + u) - service.eval(u);
    if (std::isfinite(v)) best = std::max(best, v);
  }
  return best;
}

Curve minplus_deconv(const Curve& envelope, const Curve& service) {
  if (!service.has_infinite_tail() &&
      envelope.final_slope() > service.final_slope() + 1e-12) {
    throw std::domain_error(
        "minplus_deconv: envelope rate exceeds service rate (unstable)");
  }
  std::vector<double> ts{0.0};
  for (const auto& ke : envelope.knots()) {
    ts.push_back(ke.x);
    for (const auto& ks : service.knots()) {
      const double t = ke.x - ks.x;
      if (t > 0.0) ts.push_back(t);
    }
    if (service.inf_from().has_value()) {
      const double t = ke.x - *service.inf_from();
      if (t > 0.0) ts.push_back(t);
    }
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [](double a, double b) { return std::abs(a - b) < 1e-12; }),
           ts.end());

  std::vector<Knot> knots;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double a = ts[i];
    const double b = (i + 1 < ts.size()) ? ts[i + 1] : a + 2.0;
    const double m1 = a + (b - a) / 3.0;
    const double m2 = a + 2.0 * (b - a) / 3.0;
    const double v1 = minplus_deconv_at(envelope, service, m1);
    const double v2 = minplus_deconv_at(envelope, service, m2);
    const double slope = (v2 - v1) / (m2 - m1);
    knots.push_back({a, v1 - slope * (m1 - a), slope});
  }
  Curve out(std::move(knots));
  out.simplify();
  return out;
}

Curve subadditive_closure(const Curve& f, double horizon) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("subadditive_closure: horizon must be > 0");
  }
  if (f.has_infinite_tail() || !f.is_nondecreasing()) {
    throw std::invalid_argument(
        "subadditive_closure: need a finite non-decreasing curve");
  }
  // Keeps the iterates small: knots beyond the horizon are irrelevant to
  // the result (and would otherwise accumulate across rounds, eventually
  // overflowing coordinate arithmetic).
  const auto truncate = [&](const Curve& c) {
    std::vector<Knot> ks;
    for (const Knot& k : c.knots()) {
      if (k.x <= horizon + 1.0) {
        ks.push_back(k);
      }
    }
    if (ks.empty()) ks.push_back({0.0, c.eval(0.0), 0.0});
    return Curve(std::move(ks));
  };

  Curve closure = truncate(f);
  const Curve base = closure;
  for (int round = 0; round < 64; ++round) {
    const Curve next =
        truncate(pointwise_min(closure, minplus_conv(closure, base)));
    // Fixpoint test on a grid of the horizon.
    bool changed = false;
    for (int i = 0; i <= 256; ++i) {
      const double t = horizon * static_cast<double>(i) / 256.0;
      if (next.eval(t) < closure.eval(t) - 1e-12) {
        changed = true;
        break;
      }
    }
    closure = next;
    if (!changed) break;
  }
  return closure;
}

bool is_subadditive(const Curve& f, double horizon, double tol) {
  const auto val = [&](double x) { return x <= 0.0 ? 0.0 : f.eval(x); };
  const int n = 96;
  for (int i = 1; i <= n; ++i) {
    for (int j = i; i + j <= n; ++j) {
      const double s = horizon * static_cast<double>(i) / n;
      const double t = horizon * static_cast<double>(j) / n;
      if (val(s + t) > val(s) + val(t) + tol) return false;
    }
  }
  return true;
}

}  // namespace deltanc::nc
