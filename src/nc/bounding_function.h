// Exponential bounding functions for the stochastic network calculus.
//
// A bounding function eps(sigma) bounds the probability that a statistical
// envelope (Eq. (2) of the paper) or a statistical service curve (Eq. (5))
// is violated by more than sigma.  Throughout the paper -- and throughout
// this library -- bounding functions have the exponential form
//
//     eps(sigma) = min(1, M * exp(-alpha * sigma)),   M >= 1, alpha > 0,
//
// which is closed under the three operations the end-to-end analysis needs:
//
//  * inf-convolution over an additive split of sigma (Eq. (33) of the
//    paper, originally Lemma 2 of Ciucu/Burchard/Liebeherr 2006),
//  * geometric tail sums  sum_{j>=0} eps(sigma + j*gamma)  arising from
//    the discrete-time network service curve (Eq. (31)),
//  * plain addition (union bound), which keeps the exponential form only
//    when the decay rates agree; otherwise we keep a sum-of-exponentials.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace deltanc::nc {

/// One exponential bounding term `eps(sigma) = min(1, M exp(-alpha sigma))`.
///
/// Invariants: `M > 0` and `alpha > 0`.  (The paper requires M >= 1 for the
/// EBB model; intermediate computations may produce smaller prefactors, so
/// only positivity is enforced here.)
class ExpBound {
 public:
  /// Constructs the bound `min(1, prefactor * exp(-decay * sigma))`.
  /// @throws std::invalid_argument unless prefactor > 0 and decay > 0.
  ExpBound(double prefactor, double decay);

  /// Prefactor M.
  [[nodiscard]] double prefactor() const noexcept { return m_; }
  /// Decay rate alpha.
  [[nodiscard]] double decay() const noexcept { return alpha_; }

  /// Evaluates `min(1, M exp(-alpha sigma))`; sigma may be any real
  /// (negative sigma saturates at 1).
  [[nodiscard]] double eval(double sigma) const noexcept;

  /// Smallest sigma such that `M exp(-alpha sigma) <= epsilon`, i.e.
  /// `sigma(eps) = log(M / eps) / alpha` clamped at 0.
  /// @throws std::invalid_argument unless 0 < epsilon.
  [[nodiscard]] double sigma_for(double epsilon) const;

  /// Returns the bound scaled by a positive factor c: `c * M exp(-alpha s)`.
  [[nodiscard]] ExpBound scaled(double factor) const;

 private:
  double m_;
  double alpha_;
};

/// Closed form of the inf-convolution identity, Eq. (33) of the paper:
///
///   inf_{sum sigma_j = sigma} sum_j M_j exp(-alpha_j sigma_j)
///       = prod_j (M_j alpha_j w)^{1/(alpha_j w)} * exp(-sigma / w),
///
/// with `w = sum_j 1/alpha_j`.  The result is again an ExpBound with
/// decay `1/w`.  This is how per-node violation probabilities are combined
/// into the network-wide bounding function.
///
/// @throws std::invalid_argument if `terms` is empty.
[[nodiscard]] ExpBound inf_convolution(std::span<const ExpBound> terms);

/// Convenience overload for two terms (the split between arrival envelope
/// and service curve in the single-node delay bound, Eq. (21)).
[[nodiscard]] ExpBound inf_convolution(const ExpBound& a, const ExpBound& b);

/// Geometric tail sum `sum_{j>=0} M exp(-alpha (sigma + j gamma))
///   = (M / (1 - exp(-alpha gamma))) exp(-alpha sigma)`,
/// the per-node slack sum in the network service curve bound (Eq. (31)).
/// @throws std::invalid_argument unless gamma > 0.
[[nodiscard]] ExpBound geometric_tail(const ExpBound& term, double gamma);

/// Numerically minimizes `sum_j M_j exp(-alpha_j sigma_j)` over all
/// non-negative splits `sum sigma_j = sigma` by solving the Lagrange
/// conditions with a bisection on the multiplier.  Used by property tests
/// to validate `inf_convolution` and exposed publicly because it also
/// handles the case where some optimal sigma_j would be negative (the
/// closed form of Eq. (33) allows negative splits; the constrained
/// optimum can only be larger).
///
/// @returns the constrained minimum value at the given total sigma.
[[nodiscard]] double constrained_split_minimum(std::span<const ExpBound> terms,
                                               double sigma);

}  // namespace deltanc::nc
