// (min,plus) operations on piecewise-linear curves.
//
// These implement the operator toolbox of the deterministic network
// calculus used throughout the paper:
//
//  * min-plus convolution  (f * g)(t) = inf_{0<=u<=t} f(u) + g(t-u)
//    -- composes per-node service curves into a network service curve
//    (Eq. (30) uses its statistical counterpart);
//  * min-plus deconvolution (f o/ g)(t) = sup_{u>=0} f(t+u) - g(u)
//    -- yields output envelopes;
//  * horizontal deviation  h(E,S) = sup_t inf{d>=0 : E(t) <= S(t+d)}
//    -- the delay bound of Eq. (20) in its deterministic form;
//  * vertical deviation    v(E,S) = sup_t (E(t) - S(t))
//    -- the backlog bound;
//  * lower pseudo-inverse  S^{-1}(y) = inf{t>=0 : S(t) >= y}.
//
// The convolution here is exact for arbitrary piecewise-linear operands:
// each operand is decomposed into affine pieces, pieces are convolved
// pairwise in closed form, and the result is the lower envelope of all
// piece convolutions (computed exactly by inserting all pairwise
// intersection points).  `minplus_conv_numeric_at` provides a brute-force
// grid evaluation used by the property tests to validate the exact
// algorithm.
#pragma once

#include <span>

#include "nc/curve.h"

namespace deltanc::nc {

/// Exact min-plus convolution of two curves.  Operands must be
/// non-negative and non-decreasing (all envelopes/service curves are).
/// Infinite tails (delta_d factors) are supported; the result's infinite
/// tail starts at the sum of the operands' tails.
/// @throws std::invalid_argument if an operand is decreasing somewhere.
[[nodiscard]] Curve minplus_conv(const Curve& f, const Curve& g);

/// Folds `minplus_conv` over a sequence (the network service curve of a
/// path, S_1 * S_2 * ... * S_H).  @throws std::invalid_argument if empty.
[[nodiscard]] Curve minplus_conv(std::span<const Curve> curves);

/// Function-semantics convolution: identical to `minplus_conv` except the
/// operands' values AT t = 0 are taken from the representation (the knot
/// value) instead of the envelope convention f(0) = 0.  Needed when the
/// operand is a genuine function with f(0) > 0 -- e.g. a deconvolution
/// result, whose value at 0 is the backlog bound.  With this variant the
/// adjunction  f <= (f o/ g) * g  holds exactly.
[[nodiscard]] Curve minplus_conv_fn(const Curve& f, const Curve& g);

/// Brute-force evaluation of (f * g)(t) on a grid of `steps` points,
/// for testing:  min_{u in grid of [0,t]} f(u) + g(t-u).
[[nodiscard]] double minplus_conv_numeric_at(const Curve& f, const Curve& g,
                                             double t, int steps = 4096);

/// Lower pseudo-inverse `inf{t >= 0 : s(t) >= y}` for a non-decreasing
/// curve; returns +infinity if the level is never reached.
[[nodiscard]] double pseudo_inverse_at(const Curve& s, double y);

/// Horizontal deviation between a (finite, non-decreasing) envelope and a
/// non-decreasing service curve: the deterministic delay bound.  Returns
/// +infinity when the envelope's long-run rate exceeds the service rate.
[[nodiscard]] double horizontal_deviation(const Curve& envelope,
                                          const Curve& service);

/// Vertical deviation sup_t (envelope(t) - service(t)): the deterministic
/// backlog bound.  Returns +infinity when unstable.
[[nodiscard]] double vertical_deviation(const Curve& envelope,
                                        const Curve& service);

/// The deterministic delay bound min{ d >= 0 : E(t) <= S(t+d) for all t },
/// i.e. the smallest right-shift of the service curve that dominates the
/// envelope (Eq. (20) with sigma = 0).  Unlike `horizontal_deviation`
/// this handles service curves that are *not* non-decreasing -- the
/// Theorem-1 leftover curves jump downward wherever a bursty cross
/// envelope kicks in.  Returns +infinity when no finite shift works.
[[nodiscard]] double service_delay_bound(const Curve& envelope,
                                         const Curve& service);

/// Exact min-plus deconvolution (envelope o/ service)(t) for t >= 0,
/// valid when the long-run envelope rate is at most the long-run service
/// rate (otherwise the deconvolution is +infinity everywhere and this
/// throws std::domain_error).  The result is the tightest envelope of the
/// departure process in the deterministic calculus.
[[nodiscard]] Curve minplus_deconv(const Curve& envelope,
                                   const Curve& service);

/// Point evaluation of the deconvolution sup_{u>=0} envelope(t+u) -
/// service(u); may return +infinity.
[[nodiscard]] double minplus_deconv_at(const Curve& envelope,
                                       const Curve& service, double t);

/// Sub-additive closure  f* = min_{n >= 1} f^{(n)}  (f convolved with
/// itself n times), computed exactly on [0, horizon] by iterating
/// g <- min(g, g * f) to a fixpoint.  The closure is the tightest
/// envelope implied by f: any arrival process bounded by f on all
/// intervals is also bounded by f*.  The result agrees with the true
/// closure on [0, horizon] and extends linearly beyond it.
/// @throws std::invalid_argument unless horizon > 0 and f is a finite
///   non-negative non-decreasing curve.
[[nodiscard]] Curve subadditive_closure(const Curve& f, double horizon);

/// Checks f(s + t) <= f(s) + f(t) + tol on a sample grid of [0, horizon].
[[nodiscard]] bool is_subadditive(const Curve& f, double horizon,
                                  double tol = 1e-9);

}  // namespace deltanc::nc
