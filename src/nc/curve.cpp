#include "nc/curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace deltanc::nc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Curve::Curve() : knots_{{0.0, 0.0, 0.0}}, inf_from_(kInf) {}

Curve::Curve(std::vector<Knot> knots, std::optional<double> inf_from)
    : knots_(std::move(knots)), inf_from_(inf_from.value_or(kInf)) {
  if (knots_.empty()) {
    throw std::invalid_argument("Curve: knot list must not be empty");
  }
  if (knots_.front().x != 0.0) {
    throw std::invalid_argument("Curve: first knot must be at x = 0");
  }
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (!(knots_[i].x > knots_[i - 1].x)) {
      throw std::invalid_argument("Curve: knot x must be strictly increasing");
    }
  }
  for (const auto& k : knots_) {
    if (!std::isfinite(k.x) || !std::isfinite(k.y) || !std::isfinite(k.slope)) {
      throw std::invalid_argument("Curve: knots must be finite");
    }
  }
  if (inf_from_ < knots_.back().x) {
    throw std::invalid_argument("Curve: inf_from must be >= last knot x");
  }
}

Curve Curve::zero() { return Curve(); }

Curve Curve::rate(double rate) {
  if (rate < 0.0) throw std::invalid_argument("Curve::rate: negative rate");
  return Curve({{0.0, 0.0, rate}});
}

Curve Curve::affine(double value0, double slope) {
  return Curve({{0.0, value0, slope}});
}

Curve Curve::rate_latency(double rate, double latency) {
  if (rate < 0.0 || latency < 0.0) {
    throw std::invalid_argument("Curve::rate_latency: negative parameter");
  }
  if (latency == 0.0) return Curve::rate(rate);
  return Curve({{0.0, 0.0, 0.0}, {latency, 0.0, rate}});
}

Curve Curve::leaky_bucket(double rate, double burst) {
  if (rate < 0.0 || burst < 0.0) {
    throw std::invalid_argument("Curve::leaky_bucket: negative parameter");
  }
  return Curve({{0.0, burst, rate}});
}

Curve Curve::delta(double d) {
  if (d < 0.0) throw std::invalid_argument("Curve::delta: negative delay");
  return Curve({{0.0, 0.0, 0.0}}, d);
}

Curve Curve::multi_leaky_bucket(
    std::span<const std::pair<double, double>> rate_burst_pairs) {
  if (rate_burst_pairs.empty()) {
    throw std::invalid_argument("multi_leaky_bucket: need at least one pair");
  }
  Curve result = Curve::leaky_bucket(rate_burst_pairs.front().first,
                                     rate_burst_pairs.front().second);
  for (std::size_t i = 1; i < rate_burst_pairs.size(); ++i) {
    result = pointwise_min(result,
                           Curve::leaky_bucket(rate_burst_pairs[i].first,
                                               rate_burst_pairs[i].second));
  }
  return result;
}

double Curve::eval(double t) const noexcept {
  if (t < 0.0) return 0.0;
  if (t > inf_from_) return kInf;
  // Find the last knot with x <= t.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), t,
      [](double value, const Knot& k) { return value < k.x; });
  const Knot& k = *(it - 1);
  return k.y + k.slope * (t - k.x);
}

std::optional<double> Curve::inf_from() const noexcept {
  if (std::isfinite(inf_from_)) return inf_from_;
  return std::nullopt;
}

bool Curve::has_infinite_tail() const noexcept {
  return std::isfinite(inf_from_);
}

double Curve::final_slope() const {
  if (has_infinite_tail()) {
    throw std::logic_error("Curve::final_slope: curve has an infinite tail");
  }
  return knots_.back().slope;
}

double Curve::last_knot_x() const noexcept { return knots_.back().x; }

bool Curve::is_nondecreasing(double tol) const noexcept {
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (knots_[i].slope < -tol) return false;
    if (i + 1 < knots_.size()) {
      const double end =
          knots_[i].y + knots_[i].slope * (knots_[i + 1].x - knots_[i].x);
      if (knots_[i + 1].y < end - tol) return false;  // downward jump
    }
  }
  return true;
}

bool Curve::is_convex(double tol) const noexcept {
  for (std::size_t i = 0; i + 1 < knots_.size(); ++i) {
    const double end =
        knots_[i].y + knots_[i].slope * (knots_[i + 1].x - knots_[i].x);
    if (std::abs(knots_[i + 1].y - end) > tol) return false;  // jump
    if (knots_[i + 1].slope < knots_[i].slope - tol) return false;
  }
  return true;
}

bool Curve::is_concave(double tol) const noexcept {
  if (has_infinite_tail()) return false;
  for (std::size_t i = 0; i + 1 < knots_.size(); ++i) {
    const double end =
        knots_[i].y + knots_[i].slope * (knots_[i + 1].x - knots_[i].x);
    if (std::abs(knots_[i + 1].y - end) > tol) return false;  // jump
    if (knots_[i + 1].slope > knots_[i].slope + tol) return false;
  }
  return true;
}

std::string Curve::to_string() const {
  std::ostringstream os;
  os << "Curve{";
  for (const auto& k : knots_) {
    os << "(" << k.x << "," << k.y << ",s=" << k.slope << ") ";
  }
  if (has_infinite_tail()) os << "inf after " << inf_from_;
  os << "}";
  return os.str();
}

Curve Curve::clamp_nonnegative() const {
  return pointwise_max(*this, Curve::zero());
}

Curve Curve::scaled(double c) const {
  if (c < 0.0) throw std::invalid_argument("Curve::scaled: negative factor");
  std::vector<Knot> ks = knots_;
  for (auto& k : ks) {
    k.y *= c;
    k.slope *= c;
  }
  Curve out(std::move(ks), has_infinite_tail()
                               ? std::optional<double>(inf_from_)
                               : std::nullopt);
  return out;
}

Curve Curve::vshift(double c) const {
  std::vector<Knot> ks = knots_;
  for (auto& k : ks) k.y += c;
  return Curve(std::move(ks), has_infinite_tail()
                                  ? std::optional<double>(inf_from_)
                                  : std::nullopt);
}

Curve Curve::hshift(double d) const {
  if (d < 0.0) throw std::invalid_argument("Curve::hshift: negative shift");
  if (d == 0.0) return *this;
  std::vector<Knot> ks;
  ks.reserve(knots_.size() + 1);
  ks.push_back({0.0, 0.0, 0.0});
  for (const auto& k : knots_) {
    ks.push_back({k.x + d, k.y, k.slope});
  }
  Curve out(std::move(ks), has_infinite_tail()
                               ? std::optional<double>(inf_from_ + d)
                               : std::nullopt);
  out.simplify();
  return out;
}

Curve Curve::advanced(double a) const {
  if (a < 0.0) throw std::invalid_argument("Curve::advanced: negative shift");
  if (a == 0.0) return *this;
  if (a > inf_from_) {
    throw std::invalid_argument(
        "Curve::advanced: shift reaches into the infinite tail");
  }
  // Value and slope at a, then all later knots moved left by a.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), a,
      [](double value, const Knot& k) { return value < k.x; });
  const Knot& active = *(it - 1);
  std::vector<Knot> ks;
  ks.push_back({0.0, active.y + active.slope * (a - active.x), active.slope});
  for (auto j = it; j != knots_.end(); ++j) {
    if (j->x > a) ks.push_back({j->x - a, j->y, j->slope});
  }
  Curve out(std::move(ks), has_infinite_tail()
                               ? std::optional<double>(inf_from_ - a)
                               : std::nullopt);
  out.simplify();
  return out;
}

Curve Curve::gated(double cut) const {
  if (cut < 0.0) throw std::invalid_argument("Curve::gated: negative cut");
  if (cut == 0.0) return *this;
  std::vector<Knot> ks;
  ks.push_back({0.0, 0.0, 0.0});
  if (cut > inf_from_) {
    // The whole finite part is gated away and the infinite tail starts
    // before the gate opens; the result is delta_cut.
    return Curve::delta(cut);
  }
  // Value and slope at the gate, then all later knots.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), cut,
      [](double value, const Knot& k) { return value < k.x; });
  const Knot& active = *(it - 1);
  ks.push_back({cut, active.y + active.slope * (cut - active.x), active.slope});
  for (auto j = it; j != knots_.end(); ++j) {
    if (j->x > cut) ks.push_back(*j);
  }
  Curve out(std::move(ks), has_infinite_tail()
                               ? std::optional<double>(inf_from_)
                               : std::nullopt);
  out.simplify();
  return out;
}

void Curve::simplify(double tol) {
  std::vector<Knot> out;
  out.reserve(knots_.size());
  for (const auto& k : knots_) {
    if (!out.empty()) {
      const Knot& p = out.back();
      const double extrapolated = p.y + p.slope * (k.x - p.x);
      if (std::abs(extrapolated - k.y) <= tol &&
          std::abs(p.slope - k.slope) <= tol) {
        continue;  // collinear continuation
      }
    }
    out.push_back(k);
  }
  knots_ = std::move(out);
}

// ---------------------------------------------------------------------
// Pointwise binary operations.
//
// Strategy: collect the elementary breakpoints of both operands (knot
// positions and finite inf_from points), insert pairwise intersection
// points for min/max, then sample each elementary interval at two interior
// points to recover the (exact) affine piece of the result.  Sampling is
// exact because both operands are affine inside every elementary interval.
// ---------------------------------------------------------------------

Curve pointwise_binary(const Curve& f, const Curve& g, bool take_min,
                       bool add) {
  const double inf_f = f.inf_from_;
  const double inf_g = g.inf_from_;
  double result_inf;
  if (add) {
    result_inf = std::min(inf_f, inf_g);
  } else if (take_min) {
    result_inf = std::max(inf_f, inf_g);
  } else {
    result_inf = std::min(inf_f, inf_g);
  }

  std::vector<double> xs;
  for (const auto& k : f.knots()) xs.push_back(k.x);
  for (const auto& k : g.knots()) xs.push_back(k.x);
  if (std::isfinite(inf_f)) xs.push_back(inf_f);
  if (std::isfinite(inf_g)) xs.push_back(inf_g);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double a, double b) { return std::abs(a - b) < 1e-15; }),
           xs.end());
  // Drop breakpoints beyond the result's infinite region.
  if (std::isfinite(result_inf)) {
    while (!xs.empty() && xs.back() > result_inf + 1e-15) xs.pop_back();
  }

  // For min/max, add intersection points of the two affine pieces inside
  // every elementary interval (including the final unbounded one).
  // Near-parallel segments are skipped (relative slope guard) and
  // crossings absurdly far beyond the curves' own coordinate scale are
  // capped -- they would only distinguish the operands astronomically far
  // out while polluting the representation with huge breakpoints.
  if (!add) {
    const double far_cap =
        1e6 * (1.0 + std::max(f.last_knot_x(), g.last_knot_x()));
    std::vector<double> extra;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double a = xs[i];
      const bool last = (i + 1 == xs.size());
      const double b = last ? a + 2.0 : xs[i + 1];
      if (!(b > a)) continue;
      const double t1 = a + (b - a) / 3.0;
      const double t2 = a + 2.0 * (b - a) / 3.0;
      const double f1 = f.eval(t1), f2 = f.eval(t2);
      const double g1 = g.eval(t1), g2 = g.eval(t2);
      if (!std::isfinite(f1) || !std::isfinite(g1) || !std::isfinite(f2) ||
          !std::isfinite(g2)) {
        continue;  // one operand infinite: no crossing to find
      }
      const double fs = (f2 - f1) / (t2 - t1);
      const double gs = (g2 - g1) / (t2 - t1);
      if (std::abs(fs - gs) < 1e-9 * (1.0 + std::abs(fs) + std::abs(gs))) {
        continue;  // effectively parallel
      }
      // f(a) + fs (t - a) == g(a) + gs (t - a)
      const double fa = f1 - fs * (t1 - a);
      const double ga = g1 - gs * (t1 - a);
      const double tc = a + (ga - fa) / (fs - gs);
      if (tc > far_cap) continue;
      const bool inside = last ? (tc > a + 1e-12)
                               : (tc > a + 1e-12 && tc < b - 1e-12);
      if (inside) extra.push_back(tc);
    }
    xs.insert(xs.end(), extra.begin(), extra.end());
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end(),
                         [](double a, double b) {
                           return std::abs(a - b) < 1e-12;
                         }),
             xs.end());
  }

  const auto combine = [&](double t) {
    const double fv = f.eval(t);
    const double gv = g.eval(t);
    if (add) return fv + gv;
    return take_min ? std::min(fv, gv) : std::max(fv, gv);
  };

  std::vector<Knot> knots;
  knots.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double a = xs[i];
    if (std::isfinite(result_inf) && a >= result_inf && a > 0.0) {
      break;  // remaining intervals lie in the result's infinite region
    }
    const bool last = (i + 1 == xs.size());
    double b = last ? a + 2.0 : xs[i + 1];
    if (std::isfinite(result_inf)) b = std::min(b, result_inf);
    if (!(b > a)) b = a + 1.0;
    const double t1 = a + (b - a) / 3.0;
    const double t2 = a + 2.0 * (b - a) / 3.0;
    const double v1 = combine(t1);
    const double v2 = combine(t2);
    if (!std::isfinite(v1) || !std::isfinite(v2)) {
      continue;  // inside the result's infinite region
    }
    const double slope = (v2 - v1) / (t2 - t1);
    const double ya = v1 - slope * (t1 - a);
    knots.push_back({a, ya, slope});
  }
  if (knots.empty() || knots.front().x != 0.0) {
    knots.insert(knots.begin(), {0.0, combine(0.0), 0.0});
    if (knots.size() > 1 && knots[1].x == 0.0) knots.erase(knots.begin());
  }
  Curve out(std::move(knots), std::isfinite(result_inf)
                                  ? std::optional<double>(result_inf)
                                  : std::nullopt);
  out.simplify();
  return out;
}

Curve pointwise_min(const Curve& f, const Curve& g) {
  return pointwise_binary(f, g, /*take_min=*/true, /*add=*/false);
}

Curve pointwise_max(const Curve& f, const Curve& g) {
  return pointwise_binary(f, g, /*take_min=*/false, /*add=*/false);
}

Curve pointwise_add(const Curve& f, const Curve& g) {
  return pointwise_binary(f, g, /*take_min=*/true, /*add=*/true);
}

Curve pointwise_sub(const Curve& f, const Curve& g) {
  if (g.has_infinite_tail()) {
    throw std::invalid_argument(
        "pointwise_sub: subtrahend must be finite everywhere");
  }
  std::vector<Knot> negated = g.knots();
  for (auto& k : negated) {
    k.y = -k.y;
    k.slope = -k.slope;
  }
  return pointwise_add(f, Curve(std::move(negated)));
}

}  // namespace deltanc::nc
