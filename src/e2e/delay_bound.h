// The end-to-end delay bound d(sigma) of Eq. (39):
//
//     d(sigma) = min_{X >= 0}  X + sum_{h=1}^H theta_h(X) .
//
// Each theta_h(X) is piecewise affine in X, so the objective is piecewise
// affine and its global minimum is attained at one of finitely many
// breakpoints -- `optimize_delay` enumerates them exactly (this also
// covers the non-convex Delta > 0 case the paper points out).  The
// paper's explicit (near-optimal) K-procedure is implemented separately
// in e2e/k_procedure.h; closed forms for BMUX (Eq. 43), FIFO (Eq. 44),
// and SP-high are provided for cross-validation.
#pragma once

#include "e2e/path_params.h"

namespace deltanc::e2e {

/// Exact minimization of Eq. (39) by breakpoint enumeration,
/// allocation-free for hot paths: all buffers (breakpoint
/// candidates, per-node constants, the theta vector of the result) live
/// in `ws` and are reused across calls.  The returned reference points
/// into `ws` and is valid until the next call with the same workspace.
/// (deltanc::Solver::optimize wraps this with method dispatch and an
/// owned workspace; the old workspace-less shim was removed in PR 9.)
const DelayResult& optimize_delay(const PathParams& p, double gamma,
                                  double sigma, SolveWorkspace& ws);

/// Blind multiplexing closed form (Eq. 43): d = sigma / (C - rho_c - H gamma).
/// Requires p.delta = +infinity.
[[nodiscard]] double bmux_delay(const PathParams& p, double gamma,
                                double sigma);

/// FIFO closed form (Eq. 44).  Requires p.delta = 0.
[[nodiscard]] double fifo_delay(const PathParams& p, double gamma,
                                double sigma);

/// SP-high closed form (cross traffic never precedes, Delta = -infinity):
/// d = sigma / (C - (H-1) gamma).
[[nodiscard]] double sp_high_delay(const PathParams& p, double gamma,
                                   double sigma);

}  // namespace deltanc::e2e
