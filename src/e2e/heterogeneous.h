// Heterogeneous networks -- the closing remark of Section IV: per-node
// link rates C^h, scheduler constants Delta_{0,h}, cross-traffic rates
// rho_c^h and bounding functions.  The delay-bound machinery carries
// over: theta_h(X) becomes the smallest non-negative solution of
//
//   (C^h - (h-1) gamma)(X + theta_h)
//        - (rho_c^h + gamma) [X + Delta_{0,h}(theta_h)]_+  >=  sigma ,
//
// the bounding function of the network service curve is assembled from
// the per-node bounds via Eq. (31) (network_service_bound_generic), and
// the minimization over X is again a breakpoint enumeration.
#pragma once

#include <vector>

#include "e2e/path_params.h"
#include "nc/bounding_function.h"
#include "sched/scheduler_spec.h"

namespace deltanc::e2e {

/// Per-node description of a heterogeneous path.
struct NodeParams {
  double capacity;    ///< C^h
  double rho_cross;   ///< EBB rate of the cross aggregate at this node
  double m_cross;     ///< EBB prefactor of that aggregate (usually 1)
  double delta;       ///< Delta_{0,h}; +/-inf allowed
};

/// Lowers a scheduler spec onto one heterogeneous node: the node's
/// Delta_{0,h} is the spec's through-vs-cross Delta term, with EDF
/// deadlines resolved against `edf_unit` (callers supply d_e2e / H from
/// an outer fixed point; non-EDF kinds ignore it).  This is how per-node
/// scheduler mixes are built without bypassing the SchedulerSpec
/// pipeline.
[[nodiscard]] NodeParams node_params_for(const sched::SchedulerSpec& scheduler,
                                         double capacity, double rho_cross,
                                         double m_cross, double edf_unit = 1.0);

/// A through flow (EBB (m, rho, alpha)) crossing heterogeneous nodes.
/// All flows share the Chernoff parameter alpha (as in the paper).
struct HeteroPath {
  std::vector<NodeParams> nodes;
  double rho;    ///< through EBB rate
  double alpha;  ///< common EBB decay
  double m;      ///< through EBB prefactor

  [[nodiscard]] int hops() const noexcept {
    return static_cast<int>(nodes.size());
  }
  /// @throws std::invalid_argument on malformed values.
  void validate() const;
  /// Strict upper limit on gamma: min_h (C^h - rho_c^h - rho) / (H+1).
  [[nodiscard]] double gamma_limit() const;
};

/// End-to-end delay violation bound: the inf-convolution of the through
/// envelope bound with the generic Eq. (31) network bound.
[[nodiscard]] nc::ExpBound hetero_delay_violation_bound(const HeteroPath& p,
                                                        double gamma);

/// sigma achieving the target violation probability.
[[nodiscard]] double hetero_sigma_for_epsilon(const HeteroPath& p,
                                              double gamma, double epsilon);

/// theta_h(X) for node h (1-based).
[[nodiscard]] double hetero_theta_h(const HeteroPath& p, double gamma,
                                    double sigma, int h, double x);

/// Exact minimization of X + sum_h theta_h(X) (breakpoint enumeration).
[[nodiscard]] DelayResult hetero_optimize_delay(const HeteroPath& p,
                                                double gamma, double sigma);

/// Full bound at a target epsilon, optimized over gamma.
/// Returns +infinity delay when the path is unstable.
[[nodiscard]] double hetero_best_delay_bound(const HeteroPath& p,
                                             double epsilon,
                                             double* best_gamma = nullptr);

}  // namespace deltanc::e2e
