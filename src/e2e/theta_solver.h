// The per-node free parameter theta_h(X) of the delay optimization,
// Eq. (38): the smallest theta >= 0 with
//
//   (C - (h-1) gamma)(X + theta) - (rho_c + gamma)[X + Delta(theta)]_+ >= sigma,
//
// where Delta(theta) = min(Delta_{0,c}, theta).  Solved in closed form by
// a case split on the sign of Delta and on which regime the constraint
// binds in; `theta_h` handles Delta = +/-infinity (BMUX / SP-high) as
// limiting cases.
#pragma once

#include <span>

#include "e2e/path_params.h"

namespace deltanc::e2e {

/// theta_h(X) for node h (1-based) at candidate X >= 0.
/// @throws std::invalid_argument if h is out of 1..H, X < 0, sigma < 0,
///   or the stability condition C - rho_c - h*gamma > 0 fails.
[[nodiscard]] double theta_h(const PathParams& p, double gamma, double sigma,
                             int h, double x);

/// The objective of Eq. (39) at X: f(X) = X + sum_h theta_h(X).
[[nodiscard]] double objective(const PathParams& p, double gamma, double sigma,
                               double x);

/// Verifies that (X, theta_1..theta_H) satisfies every constraint of
/// Eq. (38) (used by tests and by the optimizer's post-check).
[[nodiscard]] bool feasible(const PathParams& p, double gamma, double sigma,
                            double x, std::span<const double> theta,
                            double tol = 1e-7);

}  // namespace deltanc::e2e
