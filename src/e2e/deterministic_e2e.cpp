#include "e2e/deterministic_e2e.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "nc/minplus_ops.h"
#include "sched/delta.h"
#include "sched/delta_service_curve.h"

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void DetPath::validate() const {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("DetPath: capacity must be > 0");
  }
  if (hops < 1) throw std::invalid_argument("DetPath: hops must be >= 1");
  if (through_envelope.has_infinite_tail() ||
      cross_envelope.has_infinite_tail()) {
    throw std::invalid_argument("DetPath: envelopes must be finite");
  }
  if (!through_envelope.is_nondecreasing() ||
      !cross_envelope.is_nondecreasing()) {
    throw std::invalid_argument("DetPath: envelopes must be non-decreasing");
  }
  if (delta != delta) throw std::invalid_argument("DetPath: NaN delta");
}

nc::Curve det_network_service_curve(const DetPath& p, double theta) {
  p.validate();
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("det_network_service_curve: theta >= 0");
  }
  // Two-flow Delta matrix: flow 0 = through, flow 1 = cross, with
  // Delta_{0,1} = p.delta (the reverse direction does not matter here).
  const double back = std::isfinite(p.delta) ? -p.delta : (p.delta > 0 ? -kInf : kInf);
  sched::DeltaMatrix delta({{0.0, p.delta}, {back, 0.0}});
  const std::vector<nc::Curve> envelopes{p.through_envelope,
                                         p.cross_envelope};
  const nc::Curve per_node = sched::deterministic_service_curve(
      p.capacity, delta, envelopes, /*flow=*/0, theta);
  nc::Curve net = per_node;
  for (int h = 1; h < p.hops; ++h) {
    net = nc::minplus_conv(net, per_node);
  }
  return net;
}

double det_e2e_delay(const DetPath& p, double theta) {
  const nc::Curve net = det_network_service_curve(p, theta);
  // The convolution of gated curves is not monotone in general (the
  // gates introduce plateaus); service_delay_bound handles that.
  return nc::service_delay_bound(p.through_envelope, net);
}

double det_e2e_best_delay(const DetPath& p, double* best_theta) {
  p.validate();
  // Stability: aggregate long-run rate below capacity.
  const double rate = p.through_envelope.final_slope() +
                      p.cross_envelope.final_slope();
  if (rate > p.capacity + 1e-12) return kInf;

  // theta = 0 corresponds to the BMUX-style bound; larger theta trades
  // gate delay against a larger leftover.  Bracket by the theta-0 delay.
  const double d0 = det_e2e_delay(p, 0.0);
  if (!std::isfinite(d0)) return d0;
  const double hi = 2.0 * d0 + 1.0;

  double best = d0;
  double best_t = 0.0;
  const int kScan = 40;
  for (int i = 1; i <= kScan; ++i) {
    const double theta = hi * static_cast<double>(i) / kScan;
    const double d = det_e2e_delay(p, theta);
    if (d < best) {
      best = d;
      best_t = theta;
    }
  }
  // Golden refinement around the best scan point.
  double lo = std::max(0.0, best_t - hi / kScan);
  double up = std::min(hi, best_t + hi / kScan);
  const double inv_phi = 0.6180339887498949;
  for (int iter = 0; iter < 40; ++iter) {
    const double x1 = up - inv_phi * (up - lo);
    const double x2 = lo + inv_phi * (up - lo);
    if (det_e2e_delay(p, x1) < det_e2e_delay(p, x2)) {
      up = x2;
    } else {
      lo = x1;
    }
  }
  const double refined = det_e2e_delay(p, 0.5 * (lo + up));
  if (refined < best) {
    best = refined;
    best_t = 0.5 * (lo + up);
  }
  if (best_theta != nullptr) *best_theta = best_t;
  return best;
}

}  // namespace deltanc::e2e
