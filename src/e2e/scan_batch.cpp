// SoA gamma-scan kernel (see e2e/scan_batch.h for the contract).  This
// translation unit is compiled with -fopenmp-simd (activates the simd
// pragmas, no OpenMP runtime) and -ffp-contract=off (no FMA contraction:
// lanes must stay bit-identical to the scalar reference path).
#include "e2e/scan_batch.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace deltanc::e2e {

bool simd_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("DELTANC_SIMD");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

namespace detail {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void gamma_scan_exact_batch(const PathParams& p,
                            const SigmaForEpsilon& sigma_of,
                            std::span<const double> gammas,
                            std::span<double> delays, GammaScanBatch& batch) {
  assert(gammas.size() == delays.size());
  const std::size_t lanes = gammas.size();
  if (lanes == 0) return;
  const std::size_t hops = static_cast<std::size_t>(p.hops);
  const double* const g_p = gammas.data();

  // --- Scalar per-lane stage: the transcendental sigma(epsilon) chain
  // (exp/pow/log inside SigmaForEpsilon) must go through libm one lane
  // at a time to stay bit-identical.
  batch.sigma.resize(lanes);
  batch.rc.resize(lanes);
  for (std::size_t g = 0; g < lanes; ++g) {
    batch.sigma[g] = sigma_of(gammas[g]);
    batch.rc[g] = p.rho_cross + gammas[g];
  }
  double* const sig_p = batch.sigma.data();
  double* const rc_p = batch.rc.data();

  // --- Per-node constants, hop-major SoA.  Same formulas (and the same
  // int-to-double promotions) as the hoisting loop of optimize_delay.
  batch.node_cap.resize(hops * lanes);
  batch.node_slack.resize(hops * lanes);
  for (std::size_t h0 = 0; h0 < hops; ++h0) {
    const int h = static_cast<int>(h0) + 1;
    double* const cap = batch.node_cap.data() + h0 * lanes;
    double* const slk = batch.node_slack.data() + h0 * lanes;
#pragma omp simd
    for (std::size_t g = 0; g < lanes; ++g) {
      slk[g] = p.capacity - p.rho_cross - h * g_p[g];
      cap[g] = p.capacity - (h - 1) * g_p[g];
      // Eq. (32) holds across the scan range (caller precondition), so
      // the scalar path's slack > 0 throw cannot trigger here.
      assert(slk[g] > 0.0);
    }
  }

  // --- Breakpoint candidates, candidate-major SoA, in the exact push
  // order of optimize_delay.  Note the candidate formulas use
  // slack = node_cap - rc (a different float expression from node_slack,
  // though mathematically equal) -- replicated verbatim.
  const bool positive_delta = p.delta > 0.0;
  const bool finite_delta = std::isfinite(p.delta);
  const std::size_t per_hop = finite_delta ? 3 : 1;
  const std::size_t n_cand = 1 + hops * per_hop;
  batch.cand.resize(n_cand * lanes);
  double* const cand = batch.cand.data();
#pragma omp simd
  for (std::size_t g = 0; g < lanes; ++g) cand[g] = 0.0;
  for (std::size_t h0 = 0; h0 < hops; ++h0) {
    const double* const cap = batch.node_cap.data() + h0 * lanes;
    double* const row = cand + (1 + h0 * per_hop) * lanes;
    if (positive_delta) {
#pragma omp simd
      for (std::size_t g = 0; g < lanes; ++g) {
        const double cslack = cap[g] - rc_p[g];
        row[g] = sig_p[g] / cslack;  // theta_a = 0
        if (finite_delta) {
          row[lanes + g] = sig_p[g] / cslack - p.delta;  // theta_a = Delta
          row[2 * lanes + g] =
              (sig_p[g] + rc_p[g] * p.delta) / cslack;  // theta_b = 0
        }
      }
    } else {
#pragma omp simd
      for (std::size_t g = 0; g < lanes; ++g) {
        row[g] = sig_p[g] / cap[g];  // bracket empty
        if (finite_delta) {
          const double cslack = cap[g] - rc_p[g];
          row[lanes + g] = -p.delta;  // bracket kink
          row[2 * lanes + g] =
              (sig_p[g] + rc_p[g] * p.delta) / cslack;  // theta = 0
        }
      }
    }
  }

  // --- Candidate sweep: for each candidate, accumulate the objective
  // x + sum_h theta_h(x) hop by hop (the scalar accumulation order),
  // then fold into the per-lane running argmin with the scalar path's
  // exact tie-break (toward larger X within 1e-12).
  batch.obj.resize(lanes);
  batch.best_f.resize(lanes);
  batch.best_x.resize(lanes);
  double* const obj = batch.obj.data();
  double* const best_f = batch.best_f.data();
  double* const best_x = batch.best_x.data();
#pragma omp simd
  for (std::size_t g = 0; g < lanes; ++g) {
    best_f[g] = kInf;
    best_x[g] = 0.0;
  }
  const bool minus_inf_delta = p.delta == -kInf;
  for (std::size_t j = 0; j < n_cand; ++j) {
    const double* const x_row = cand + j * lanes;
#pragma omp simd
    for (std::size_t g = 0; g < lanes; ++g) obj[g] = x_row[g];
    for (std::size_t h0 = 0; h0 < hops; ++h0) {
      const double* const cap = batch.node_cap.data() + h0 * lanes;
      const double* const slk = batch.node_slack.data() + h0 * lanes;
      if (positive_delta) {
#pragma omp simd
        for (std::size_t g = 0; g < lanes; ++g) {
          const double x = x_row[g];
          const double theta_a = sig_p[g] / slk[g] - x;
          const double theta_b =
              (sig_p[g] + rc_p[g] * (x + p.delta)) / cap[g] - x;
          obj[g] += theta_a <= 0.0 ? 0.0
                                   : (theta_a <= p.delta ? theta_a : theta_b);
        }
      } else {
#pragma omp simd
        for (std::size_t g = 0; g < lanes; ++g) {
          const double x = x_row[g];
          const double bracket =
              minus_inf_delta ? 0.0 : std::max(0.0, x + p.delta);
          const double t = (sig_p[g] + rc_p[g] * bracket) / cap[g] - x;
          obj[g] += std::max(0.0, t);
        }
      }
    }
#pragma omp simd
    for (std::size_t g = 0; g < lanes; ++g) {
      const double x = x_row[g];
      const double f = obj[g];
      const bool better =
          x >= 0.0 && (f < best_f[g] - 1e-12 ||
                       (f < best_f[g] + 1e-12 && x > best_x[g]));
      const double folded = f < best_f[g] ? f : best_f[g];
      best_x[g] = better ? x : best_x[g];
      best_f[g] = better ? folded : best_f[g];
    }
  }
  for (std::size_t g = 0; g < lanes; ++g) delays[g] = best_f[g];
}

}  // namespace detail

}  // namespace deltanc::e2e
