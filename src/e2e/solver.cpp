#include "e2e/solver.h"

#include <stdexcept>

namespace deltanc {

e2e::Scenario Solver::effective_scenario(const e2e::Scenario& sc) const {
  e2e::Scenario out = sc;
  if (options_.scheduler.has_value()) out.scheduler = *options_.scheduler;
  return out;
}

e2e::detail::EngineRequest Solver::engine_request() const {
  e2e::detail::EngineRequest req;
  req.method = options_.method;
  req.max_edf_restarts = options_.max_edf_restarts;
  req.delta = options_.delta;
  return req;
}

e2e::BoundResult Solver::solve(const e2e::Scenario& sc) const {
  return e2e::detail::solve_scenario(effective_scenario(sc), engine_request(),
                                     nullptr);
}

e2e::BoundResult Solver::solve(const e2e::Scenario& sc, State& state) const {
  e2e::detail::EngineRequest req = engine_request();
  req.use_warm = options_.warm_start == e2e::WarmStart::kWarm;
  return e2e::detail::solve_scenario(effective_scenario(sc), req, &state);
}

e2e::DelayProfile Solver::solve_profile(
    const e2e::Scenario& sc, std::span<const double> epsilons) const {
  e2e::detail::EngineRequest req = engine_request();
  req.use_warm = options_.warm_start == e2e::WarmStart::kWarm;
  return e2e::detail::solve_profile_scenario(effective_scenario(sc), epsilons,
                                             req, nullptr);
}

e2e::DelayProfile Solver::solve_profile(const e2e::Scenario& sc,
                                        std::span<const double> epsilons,
                                        State& state) const {
  e2e::detail::EngineRequest req = engine_request();
  req.use_warm = options_.warm_start == e2e::WarmStart::kWarm;
  return e2e::detail::solve_profile_scenario(effective_scenario(sc), epsilons,
                                             req, &state);
}

e2e::BoundResult Solver::solve_at(const e2e::Scenario& sc,
                                  double delta) const {
  e2e::detail::EngineRequest req = engine_request();
  req.delta = delta;
  return e2e::detail::solve_scenario(effective_scenario(sc), req, nullptr);
}

e2e::DelayResult Solver::optimize(const e2e::PathParams& p, double gamma,
                                  double sigma) const {
  if (options_.reuse_workspace) {
    switch (options_.method) {
      case e2e::Method::kExactOpt:
        return e2e::optimize_delay(p, gamma, sigma, workspace_);
      case e2e::Method::kPaperK:
        return e2e::k_procedure_delay(p, gamma, sigma, workspace_);
    }
  }
  e2e::SolveWorkspace ws;
  switch (options_.method) {
    case e2e::Method::kExactOpt:
      return e2e::optimize_delay(p, gamma, sigma, ws);
    case e2e::Method::kPaperK:
      return e2e::k_procedure_delay(p, gamma, sigma, ws);
  }
  throw std::invalid_argument("Solver: unknown method");
}

}  // namespace deltanc
