#include "e2e/solver.h"

namespace deltanc {

e2e::Scenario Solver::effective_scenario(const e2e::Scenario& sc) const {
  e2e::Scenario out = sc;
  if (options_.scheduler.has_value()) out.scheduler = *options_.scheduler;
  return out;
}

e2e::BoundResult Solver::solve(const e2e::Scenario& sc) const {
  const e2e::Scenario effective = effective_scenario(sc);
  if (options_.delta.has_value()) {
    return e2e::best_delay_bound_for_delta(effective, *options_.delta,
                                           options_.method);
  }
  return e2e::best_delay_bound(effective, options_.method,
                               options_.max_edf_restarts);
}

e2e::BoundResult Solver::solve_at(const e2e::Scenario& sc,
                                  double delta) const {
  return e2e::best_delay_bound_for_delta(effective_scenario(sc), delta,
                                         options_.method);
}

e2e::DelayResult Solver::optimize(const e2e::PathParams& p, double gamma,
                                  double sigma) const {
  if (options_.reuse_workspace) {
    switch (options_.method) {
      case e2e::Method::kExactOpt:
        return e2e::optimize_delay(p, gamma, sigma, workspace_);
      case e2e::Method::kPaperK:
        return e2e::k_procedure_delay(p, gamma, sigma, workspace_);
    }
  }
  switch (options_.method) {
    case e2e::Method::kExactOpt:
      return e2e::optimize_delay(p, gamma, sigma);
    case e2e::Method::kPaperK:
      return e2e::k_procedure_delay(p, gamma, sigma);
  }
  throw std::invalid_argument("Solver: unknown method");
}

}  // namespace deltanc
