#include "e2e/heterogeneous.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "e2e/network_epsilon.h"

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

NodeParams node_params_for(const sched::SchedulerSpec& scheduler,
                           double capacity, double rho_cross, double m_cross,
                           double edf_unit) {
  if (scheduler.is_curve_backed()) {
    // delta_term() would be NaN and fail HeteroPath::validate with an
    // unhelpful message; name the real limitation instead.
    throw std::invalid_argument(
        "node_params_for: '" + sched::to_string(scheduler) +
        "' is curve-backed and has no per-node Delta term; the "
        "heterogeneous Delta path does not support it (use "
        "sched::make_service_curve_provider)");
  }
  return NodeParams{capacity, rho_cross, m_cross,
                    scheduler.delta_term(edf_unit)};
}

void HeteroPath::validate() const {
  if (nodes.empty()) {
    throw std::invalid_argument("HeteroPath: need at least one node");
  }
  if (!(rho >= 0.0) || !(alpha > 0.0) || !(m >= 1.0)) {
    throw std::invalid_argument("HeteroPath: malformed through traffic");
  }
  for (const NodeParams& n : nodes) {
    if (!(n.capacity > 0.0) || !(n.rho_cross >= 0.0) || !(n.m_cross >= 1.0)) {
      throw std::invalid_argument("HeteroPath: malformed node");
    }
    if (n.delta != n.delta) {
      throw std::invalid_argument("HeteroPath: NaN delta");
    }
  }
}

double HeteroPath::gamma_limit() const {
  double limit = kInf;
  for (const NodeParams& n : nodes) {
    limit = std::min(limit, n.capacity - n.rho_cross - rho);
  }
  return limit / (hops() + 1);
}

nc::ExpBound hetero_delay_violation_bound(const HeteroPath& p, double gamma) {
  p.validate();
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("hetero bound: gamma must be > 0");
  }
  // Per-node Theorem-1 bounds: the cross aggregate's sample-path bound.
  std::vector<nc::ExpBound> node_bounds;
  node_bounds.reserve(p.nodes.size());
  for (const NodeParams& n : p.nodes) {
    node_bounds.push_back(
        nc::geometric_tail(nc::ExpBound(n.m_cross, p.alpha), gamma));
  }
  const nc::ExpBound net = network_service_bound_generic(node_bounds, gamma);
  const nc::ExpBound envelope =
      nc::geometric_tail(nc::ExpBound(p.m, p.alpha), gamma);
  return nc::inf_convolution(envelope, net);
}

double hetero_sigma_for_epsilon(const HeteroPath& p, double gamma,
                                double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("hetero bound: need 0 < epsilon < 1");
  }
  return hetero_delay_violation_bound(p, gamma).sigma_for(epsilon);
}

double hetero_theta_h(const HeteroPath& p, double gamma, double sigma, int h,
                      double x) {
  p.validate();
  if (h < 1 || h > p.hops()) {
    throw std::invalid_argument("hetero_theta_h: node index out of range");
  }
  if (!(x >= 0.0) || !(sigma >= 0.0) || !(gamma > 0.0)) {
    throw std::invalid_argument("hetero_theta_h: bad arguments");
  }
  const NodeParams& n = p.nodes[static_cast<std::size_t>(h - 1)];
  const double ch = n.capacity - (h - 1) * gamma;
  const double rc = n.rho_cross + gamma;
  const double slack = ch - rc;
  if (!(slack > 0.0)) {
    throw std::invalid_argument("hetero_theta_h: node unstable (Eq. 32)");
  }
  if (n.delta > 0.0) {
    const double theta_a = sigma / slack - x;
    if (theta_a <= 0.0) return 0.0;
    if (theta_a <= n.delta) return theta_a;
    return (sigma + rc * (x + n.delta)) / ch - x;
  }
  const double bracket = n.delta == -kInf ? 0.0 : std::max(0.0, x + n.delta);
  return std::max(0.0, (sigma + rc * bracket) / ch - x);
}

DelayResult hetero_optimize_delay(const HeteroPath& p, double gamma,
                                  double sigma) {
  p.validate();
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) {
    throw std::invalid_argument("hetero_optimize_delay: gamma violates Eq. 32");
  }
  std::vector<double> candidates{0.0};
  for (int h = 1; h <= p.hops(); ++h) {
    const NodeParams& n = p.nodes[static_cast<std::size_t>(h - 1)];
    const double ch = n.capacity - (h - 1) * gamma;
    const double rc = n.rho_cross + gamma;
    const double slack = ch - rc;
    if (n.delta > 0.0) {
      candidates.push_back(sigma / slack);
      if (std::isfinite(n.delta)) {
        candidates.push_back(sigma / slack - n.delta);
        candidates.push_back((sigma + rc * n.delta) / slack);
      }
    } else {
      candidates.push_back(sigma / ch);
      if (std::isfinite(n.delta)) {
        candidates.push_back(-n.delta);
        candidates.push_back((sigma + rc * n.delta) / slack);
      }
    }
  }
  const auto objective_at = [&](double x) {
    double f = x;
    for (int h = 1; h <= p.hops(); ++h) {
      f += hetero_theta_h(p, gamma, sigma, h, x);
    }
    return f;
  };
  double best_x = 0.0;
  double best_f = kInf;
  for (double x : candidates) {
    if (!(x >= 0.0)) continue;
    const double f = objective_at(x);
    if (f < best_f - 1e-12 || (f < best_f + 1e-12 && x > best_x)) {
      best_f = std::min(best_f, f);
      best_x = x;
    }
  }
  DelayResult result;
  result.delay = best_f;
  result.x = best_x;
  for (int h = 1; h <= p.hops(); ++h) {
    result.theta.push_back(hetero_theta_h(p, gamma, sigma, h, best_x));
  }
  return result;
}

double hetero_best_delay_bound(const HeteroPath& p, double epsilon,
                               double* best_gamma) {
  p.validate();
  const double glim = p.gamma_limit();
  if (!(glim > 0.0)) return kInf;
  double best = kInf;
  double best_g = 0.0;
  const int kScan = 48;
  for (int i = 1; i <= kScan; ++i) {
    const double gamma = glim * static_cast<double>(i) / (kScan + 1);
    const double sigma = hetero_sigma_for_epsilon(p, gamma, epsilon);
    const double d = hetero_optimize_delay(p, gamma, sigma).delay;
    if (d < best) {
      best = d;
      best_g = gamma;
    }
  }
  if (best_gamma != nullptr) *best_gamma = best_g;
  return best;
}

}  // namespace deltanc::e2e
