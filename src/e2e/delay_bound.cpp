#include "e2e/delay_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const DelayResult& optimize_delay(const PathParams& p, double gamma,
                                  double sigma, SolveWorkspace& ws) {
  p.validate();
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) {
    throw std::invalid_argument(
        "optimize_delay: gamma must satisfy Eq. (32): 0 < (H+1) gamma < "
        "C - rho_c - rho");
  }
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("optimize_delay: sigma must be >= 0");
  }

  // Per-node constants of theta_h, computed once instead of inside every
  // objective evaluation (theta_h re-derives and re-validates them per
  // call; the expressions here are the same, so values are bit-identical).
  const double rc = p.rho_cross + gamma;
  const std::size_t hops = static_cast<std::size_t>(p.hops);
  ws.node_cap.clear();
  ws.node_slack.clear();
  ws.node_cap.reserve(hops);
  ws.node_slack.reserve(hops);
  for (int h = 1; h <= p.hops; ++h) {
    const double slack = p.capacity - p.rho_cross - h * gamma;
    if (!(slack > 0.0)) {
      throw std::invalid_argument(
          "theta_h: stability requires C - rho_c - h*gamma > 0 (Eq. 32)");
    }
    ws.node_cap.push_back(p.capacity - (h - 1) * gamma);
    ws.node_slack.push_back(slack);
  }

  // theta_h(X) from the cached constants -- the same case split, in the
  // same arithmetic order, as theta_h in e2e/theta_solver.cpp.
  const auto theta_at = [&](std::size_t h0, double x) -> double {
    const double ch = ws.node_cap[h0];
    if (p.delta > 0.0) {
      const double theta_a = sigma / ws.node_slack[h0] - x;
      if (theta_a <= 0.0) return 0.0;
      if (theta_a <= p.delta) return theta_a;  // handles Delta = +inf (BMUX)
      return (sigma + rc * (x + p.delta)) / ch - x;
    }
    const double bracket =
        p.delta == -kInf ? 0.0 : std::max(0.0, x + p.delta);
    return std::max(0.0, (sigma + rc * bracket) / ch - x);
  };

  // Breakpoints of X -> theta_h(X): regime switches and zeros of each
  // theta_h.  Between consecutive candidates the objective is affine, so
  // the global optimum sits on a candidate.
  std::vector<double>& candidates = ws.candidates;
  candidates.clear();
  candidates.push_back(0.0);
  for (std::size_t h0 = 0; h0 < hops; ++h0) {
    const double ch = ws.node_cap[h0];
    const double slack = ch - rc;
    if (p.delta > 0.0) {
      candidates.push_back(sigma / slack);                    // theta_a = 0
      if (std::isfinite(p.delta)) {
        candidates.push_back(sigma / slack - p.delta);        // theta_a = Delta
        candidates.push_back((sigma + rc * p.delta) / slack); // theta_b = 0
      }
    } else {
      candidates.push_back(sigma / ch);                       // bracket empty
      if (std::isfinite(p.delta)) {
        candidates.push_back(-p.delta);                       // bracket kink
        candidates.push_back((sigma + rc * p.delta) / slack); // theta = 0
      }
    }
  }

  double best_x = 0.0;
  double best_f = kInf;
  for (double x : candidates) {
    if (!(x >= 0.0)) continue;
    double f = x;
    for (std::size_t h0 = 0; h0 < hops; ++h0) f += theta_at(h0, x);
    // Ties are broken toward larger X: the objective has flat stretches
    // (e.g. BMUX), and the all-theta-zero corner is the canonical optimum
    // the paper reports (Eq. 43).
    if (f < best_f - 1e-12 || (f < best_f + 1e-12 && x > best_x)) {
      best_f = std::min(best_f, f);
      best_x = x;
    }
  }

  DelayResult& result = ws.result;
  result.delay = best_f;
  result.x = best_x;
  result.theta.clear();
  result.theta.reserve(hops);
  for (std::size_t h0 = 0; h0 < hops; ++h0) {
    result.theta.push_back(theta_at(h0, best_x));
  }
  return result;
}

double bmux_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != kInf) {
    throw std::invalid_argument("bmux_delay: requires Delta = +infinity");
  }
  const double slack = p.capacity - p.rho_cross - p.hops * gamma;
  if (!(slack > 0.0)) {
    throw std::invalid_argument("bmux_delay: unstable (Eq. 32 violated)");
  }
  return sigma / slack;
}

double fifo_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != 0.0) {
    throw std::invalid_argument("fifo_delay: requires Delta = 0");
  }
  // Eq. (40): smallest K with sum_{h>K} (C - rho_c - h gamma)/(C - (h-1) gamma) < 1.
  int k = p.hops;
  double tail = 0.0;
  for (int h = p.hops; h >= 1; --h) {
    const double term = (p.capacity - p.rho_cross - h * gamma) /
                        (p.capacity - (h - 1) * gamma);
    if (tail + term >= 1.0) break;
    tail += term;
    k = h - 1;
  }
  if (k == 0) {
    // Eq. (41) sets X = 0 for K = 0; then theta_h = sigma / (C - (h-1) gamma).
    double d = 0.0;
    for (int h = 1; h <= p.hops; ++h) {
      d += sigma / (p.capacity - (h - 1) * gamma);
    }
    return d;
  }
  const double slack_k = p.capacity - p.rho_cross - k * gamma;
  if (!(slack_k > 0.0)) {
    throw std::invalid_argument("fifo_delay: unstable configuration");
  }
  // Eq. (44).
  double factor = 1.0;
  for (int h = k + 1; h <= p.hops; ++h) {
    factor += (h - k) * gamma / (p.capacity - (h - 1) * gamma);
  }
  return sigma / slack_k * factor;
}

double sp_high_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != -kInf) {
    throw std::invalid_argument("sp_high_delay: requires Delta = -infinity");
  }
  const double slack = p.capacity - (p.hops - 1) * gamma;
  if (!(slack > 0.0)) {
    throw std::invalid_argument("sp_high_delay: unstable configuration");
  }
  return sigma / slack;
}

}  // namespace deltanc::e2e
