#include "e2e/delay_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "e2e/theta_solver.h"

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DelayResult optimize_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) {
    throw std::invalid_argument(
        "optimize_delay: gamma must satisfy Eq. (32): 0 < (H+1) gamma < "
        "C - rho_c - rho");
  }
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("optimize_delay: sigma must be >= 0");
  }

  // Breakpoints of X -> theta_h(X): regime switches and zeros of each
  // theta_h.  Between consecutive candidates the objective is affine, so
  // the global optimum sits on a candidate.
  std::vector<double> candidates{0.0};
  for (int h = 1; h <= p.hops; ++h) {
    const double ch = p.capacity - (h - 1) * gamma;
    const double rc = p.rho_cross + gamma;
    const double slack = ch - rc;
    if (p.delta > 0.0) {
      candidates.push_back(sigma / slack);                    // theta_a = 0
      if (std::isfinite(p.delta)) {
        candidates.push_back(sigma / slack - p.delta);        // theta_a = Delta
        candidates.push_back((sigma + rc * p.delta) / slack); // theta_b = 0
      }
    } else {
      candidates.push_back(sigma / ch);                       // bracket empty
      if (std::isfinite(p.delta)) {
        candidates.push_back(-p.delta);                       // bracket kink
        candidates.push_back((sigma + rc * p.delta) / slack); // theta = 0
      }
    }
  }

  double best_x = 0.0;
  double best_f = kInf;
  for (double x : candidates) {
    if (!(x >= 0.0)) continue;
    const double f = objective(p, gamma, sigma, x);
    // Ties are broken toward larger X: the objective has flat stretches
    // (e.g. BMUX), and the all-theta-zero corner is the canonical optimum
    // the paper reports (Eq. 43).
    if (f < best_f - 1e-12 || (f < best_f + 1e-12 && x > best_x)) {
      best_f = std::min(best_f, f);
      best_x = x;
    }
  }

  DelayResult result;
  result.delay = best_f;
  result.x = best_x;
  result.theta.reserve(static_cast<std::size_t>(p.hops));
  for (int h = 1; h <= p.hops; ++h) {
    result.theta.push_back(theta_h(p, gamma, sigma, h, best_x));
  }
  return result;
}

double bmux_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != kInf) {
    throw std::invalid_argument("bmux_delay: requires Delta = +infinity");
  }
  const double slack = p.capacity - p.rho_cross - p.hops * gamma;
  if (!(slack > 0.0)) {
    throw std::invalid_argument("bmux_delay: unstable (Eq. 32 violated)");
  }
  return sigma / slack;
}

double fifo_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != 0.0) {
    throw std::invalid_argument("fifo_delay: requires Delta = 0");
  }
  // Eq. (40): smallest K with sum_{h>K} (C - rho_c - h gamma)/(C - (h-1) gamma) < 1.
  int k = p.hops;
  double tail = 0.0;
  for (int h = p.hops; h >= 1; --h) {
    const double term = (p.capacity - p.rho_cross - h * gamma) /
                        (p.capacity - (h - 1) * gamma);
    if (tail + term >= 1.0) break;
    tail += term;
    k = h - 1;
  }
  if (k == 0) {
    // Eq. (41) sets X = 0 for K = 0; then theta_h = sigma / (C - (h-1) gamma).
    double d = 0.0;
    for (int h = 1; h <= p.hops; ++h) {
      d += sigma / (p.capacity - (h - 1) * gamma);
    }
    return d;
  }
  const double slack_k = p.capacity - p.rho_cross - k * gamma;
  if (!(slack_k > 0.0)) {
    throw std::invalid_argument("fifo_delay: unstable configuration");
  }
  // Eq. (44).
  double factor = 1.0;
  for (int h = k + 1; h <= p.hops; ++h) {
    factor += (h - k) * gamma / (p.capacity - (h - 1) * gamma);
  }
  return sigma / slack_k * factor;
}

double sp_high_delay(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (p.delta != -kInf) {
    throw std::invalid_argument("sp_high_delay: requires Delta = -infinity");
  }
  const double slack = p.capacity - (p.hops - 1) * gamma;
  if (!(slack > 0.0)) {
    throw std::invalid_argument("sp_high_delay: unstable configuration");
  }
  return sigma / slack;
}

}  // namespace deltanc::e2e
