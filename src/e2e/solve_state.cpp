#include "e2e/solve_state.h"

#include "e2e/warm_state.h"

namespace deltanc::e2e {

SolveState::SolveState() = default;
SolveState::SolveState(SolveState&&) noexcept = default;
SolveState& SolveState::operator=(SolveState&&) noexcept = default;
SolveState::~SolveState() = default;

bool SolveState::has_value() const noexcept {
  return impl_ != nullptr && impl_->valid;
}

void SolveState::reset() noexcept {
  if (impl_ != nullptr) *impl_ = detail::WarmState{};
}

namespace detail {

WarmState& warm(SolveState& state) {
  if (state.impl_ == nullptr) state.impl_ = std::make_unique<WarmState>();
  return *state.impl_;
}

}  // namespace detail

}  // namespace deltanc::e2e
