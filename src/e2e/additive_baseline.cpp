#include "e2e/additive_baseline.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "nc/bounding_function.h"

namespace deltanc::e2e {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> additive_bmux_per_node(const PathParams& p, double gamma,
                                           double epsilon) {
  p.validate();
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("additive_bmux: gamma must be > 0");
  }
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("additive_bmux: need 0 < epsilon < 1");
  }
  std::vector<double> delays;
  delays.reserve(static_cast<std::size_t>(p.hops));

  const double service_rate = p.capacity - p.rho_cross - gamma;
  const nc::ExpBound cross_bound =
      nc::geometric_tail(nc::ExpBound(p.m, p.alpha), gamma);
  const double eps_per_node = epsilon / p.hops;

  double rho_h = p.rho;
  nc::ExpBound through_bound(p.m, p.alpha);
  for (int h = 1; h <= p.hops; ++h) {
    if (!(service_rate > rho_h + gamma)) {
      return std::vector<double>(static_cast<std::size_t>(p.hops), kInf);
    }
    // Sample-path envelope of the node-h input: rate rho_h + gamma,
    // bound = geometric gamma-tail of the interval bound.
    const nc::ExpBound env_bound = nc::geometric_tail(through_bound, gamma);
    // Delay bound Eq. (20): G(t) + sigma <= S(t + d) with both linear,
    // worst at t = 0: d = sigma / service_rate.
    const nc::ExpBound delay_bound =
        nc::inf_convolution(env_bound, cross_bound);
    delays.push_back(delay_bound.sigma_for(eps_per_node) / service_rate);
    // Output characterization feeding node h+1: the same combined bound,
    // with the envelope rate advanced by gamma.
    through_bound = delay_bound;
    rho_h += gamma;
  }
  return delays;
}

double additive_bmux_delay(const PathParams& p, double gamma, double epsilon) {
  double total = 0.0;
  for (double d : additive_bmux_per_node(p, gamma, epsilon)) {
    total += d;
    if (!std::isfinite(total)) return kInf;
  }
  return total;
}

BoundResult best_additive_bmux_bound(const Scenario& sc) {
  BoundResult result{kInf, 0.0, 0.0, 0.0, kInf};
  double s_hi = max_stable_s(sc);
  if (s_hi == 0.0) return result;
  if (s_hi == kInf) s_hi = 64.0;
  s_hi *= 0.999;
  const double s_lo = 1e-4;

  const auto bound_at = [&](double s, double gamma) {
    const double eb = sc.source.effective_bandwidth(s);
    const PathParams p{sc.capacity, sc.hops,  sc.n_through * eb,
                       sc.n_cross * eb, s, 1.0, kInf};
    if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) return kInf;
    return additive_bmux_delay(p, gamma, sc.epsilon);
  };
  const auto best_over_gamma = [&](double s, double* best_gamma) {
    const double eb = sc.source.effective_bandwidth(s);
    const double glim =
        (sc.capacity - (sc.n_through + sc.n_cross) * eb) / (sc.hops + 1);
    if (!(glim > 0.0)) return kInf;
    double best_v = kInf;
    double best_g = 0.0;
    const int kScan = 48;
    for (int i = 1; i <= kScan; ++i) {
      const double g = glim * static_cast<double>(i) / (kScan + 1);
      const double v = bound_at(s, g);
      if (v < best_v) {
        best_v = v;
        best_g = g;
      }
    }
    if (best_gamma != nullptr) *best_gamma = best_g;
    return best_v;
  };

  const int kScan = 24;
  for (int i = 0; i <= kScan; ++i) {
    const double s =
        s_lo * std::pow(s_hi / s_lo, static_cast<double>(i) / kScan);
    double gamma = 0.0;
    const double v = best_over_gamma(s, &gamma);
    if (v < result.delay_ms) {
      result.delay_ms = v;
      result.s = s;
      result.gamma = gamma;
    }
  }
  return result;
}

}  // namespace deltanc::e2e
