// Node-by-node additive delay bounds for blind multiplexing -- the
// baseline of Example 3 / Fig. 4 ("adding per-node delay bounds", the
// discrete-time analysis of Ciucu/Burchard/Liebeherr 2006 sketched in the
// paper's introduction).
//
// At each node h the through traffic is described by an EBB bound
// (M_h, rho_h, alpha_h); the node offers the BMUX leftover service
// (C - rho_c - gamma) t with bounding function M e^{-alpha sigma}/(1-q).
// The per-node delay bound follows from the single-node result Eq. (20)
// with an even epsilon/H split across the nodes, and the *output* of the
// node (which feeds node h+1) is again EBB with
//
//   rho_{h+1}   = rho_h + gamma,
//   eps_{h+1}   = inf-convolution of the input sample-path bound and the
//                 service bound  (decay shrinks roughly like alpha / 2h),
//
// so the per-node sigma -- and hence the per-node delay -- grows with h.
// Summing yields the O(H^3 log H) growth the paper quotes, in contrast to
// the Theta(H log H) growth of the network-service-curve bound.
#pragma once

#include "e2e/param_search.h"
#include "e2e/path_params.h"

namespace deltanc::e2e {

/// The additive end-to-end bound for fixed EBB parameters, slack gamma,
/// and target violation probability epsilon.  Returns +infinity when the
/// configuration is unstable (needs rho + H gamma + rho_c + gamma < C).
/// `p.delta` is ignored (the analysis is BMUX by construction).
[[nodiscard]] double additive_bmux_delay(const PathParams& p, double gamma,
                                         double epsilon);

/// Per-node breakdown of the same bound (diagnostics / tests): element h
/// is the delay bound at node h+1.
[[nodiscard]] std::vector<double> additive_bmux_per_node(const PathParams& p,
                                                         double gamma,
                                                         double epsilon);

/// Scenario-level wrapper optimizing (gamma, s), mirroring
/// `Solver::solve_at` for the additive method.
[[nodiscard]] BoundResult best_additive_bmux_bound(const Scenario& sc);

}  // namespace deltanc::e2e
