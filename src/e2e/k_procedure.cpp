#include "e2e/k_procedure.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "e2e/theta_solver.h"

namespace deltanc::e2e {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool eq40_holds(const PathParams& p, double gamma, int k) {
  double sum = 0.0;
  for (int h = k + 1; h <= p.hops; ++h) {
    sum += (p.capacity - p.rho_cross - h * gamma) /
           (p.capacity - (h - 1) * gamma);
  }
  return sum < 1.0;
}

double x_for_k(const PathParams& p, double gamma, double sigma, int k) {
  if (p.delta >= 0.0) {
    if (k == 0) return 0.0;
    return sigma / (p.capacity - p.rho_cross - k * gamma);  // Eq. (41)
  }
  if (k == 0) return std::isfinite(p.delta) ? -p.delta : 0.0;
  const double a = sigma / (p.capacity - (k - 1) * gamma);
  const double b = std::isfinite(p.delta)
                       ? (sigma + (p.rho_cross + gamma) * p.delta) /
                             (p.capacity - p.rho_cross - k * gamma)
                       : -kInf;
  return std::max(a, b);  // Eq. (42)
}

bool thetas_exceed_delta(const PathParams& p, double gamma, double sigma,
                         int k, double x) {
  if (!(p.delta >= 0.0) || !std::isfinite(p.delta)) return true;
  for (int h = k + 1; h <= p.hops; ++h) {
    if (theta_h(p, gamma, sigma, h, x) <= p.delta) return false;
  }
  return true;
}

}  // namespace

int k_procedure_index(const PathParams& p, double gamma, double sigma) {
  p.validate();
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) {
    throw std::invalid_argument("k_procedure: gamma violates Eq. (32)");
  }
  // Delta = +inf is the paper's explicit BMUX special case (Eq. 43):
  // theta_h never exceeds Delta, so the regime-B derivative analysis
  // behind Eq. (40) does not apply; the optimum is K = H, all theta = 0.
  if (p.delta == kInf) return p.hops;
  for (int k = 0; k <= p.hops; ++k) {
    if (!eq40_holds(p, gamma, k)) continue;
    const double x = std::max(0.0, x_for_k(p, gamma, sigma, k));
    if (!thetas_exceed_delta(p, gamma, sigma, k, x)) continue;
    return k;
  }
  return p.hops;  // Eq. (40) always holds at K = H (empty sum)
}

const DelayResult& k_procedure_delay(const PathParams& p, double gamma,
                                     double sigma, SolveWorkspace& ws) {
  const int k = k_procedure_index(p, gamma, sigma);
  const double x = std::max(0.0, x_for_k(p, gamma, sigma, k));
  DelayResult& result = ws.result;
  result.x = x;
  result.delay = x;
  result.theta.clear();
  result.theta.reserve(static_cast<std::size_t>(p.hops));
  for (int h = 1; h <= p.hops; ++h) {
    const double th = theta_h(p, gamma, sigma, h, x);
    result.theta.push_back(th);
    result.delay += th;
  }
  return result;
}

}  // namespace deltanc::e2e
