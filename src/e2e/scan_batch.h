// Batched (structure-of-arrays) evaluation of the inner gamma scan of
// the Chernoff parameter search, plus the runtime SIMD dispatch toggle.
//
// The scan phase of best-over-gamma evaluates the Eq. (39) objective at
// a fixed grid of gamma probes that share everything except gamma
// itself.  Restructured as SoA -- parallel arrays of per-lane sigma,
// rho_cross + gamma, per-node constants and breakpoint candidates
// (e2e::GammaScanBatch) -- the enumeration becomes branch-free
// arithmetic that `#pragma omp simd` vectorizes across lanes.
//
// Bit-identity discipline: the kernel vectorizes ONLY IEEE-exact
// operations (+, -, *, /, comparisons/blends); the transcendentals
// behind sigma(epsilon) stay scalar per lane (vectorized libm variants
// are not bit-identical), and the kernel translation unit is compiled
// with -ffp-contract=off so no FMA contraction can perturb a lane.
// Every lane therefore reproduces, bit for bit, the exact arithmetic of
// the scalar path sigma_of(gamma) followed by optimize_delay(p, gamma,
// sigma, ws) -- which is what DELTANC_SIMD=off runs, and what the
// bit-identity tests compare against.
#pragma once

#include <span>

#include "e2e/network_epsilon.h"
#include "e2e/path_params.h"

namespace deltanc::e2e {

/// Runtime SIMD dispatch: true unless the environment variable
/// DELTANC_SIMD is set to "off" or "0" (read once, at first use).  With
/// SIMD off the solver runs the scalar reference path; results are
/// bit-identical either way -- the toggle exists so tests and CI can
/// *verify* that, and as an escape hatch.
[[nodiscard]] bool simd_enabled();

namespace detail {

/// Fills delays[i] with the Eq. (39) exact-optimization objective at
/// gammas[i] for fixed (p, sigma_of): bit-identical, lane for lane, to
/// the scalar sequence  sigma = sigma_of(gamma);
/// optimize_delay(p, gamma, sigma, ws).delay .
///
/// Preconditions (enforced by the caller, the scan of best-over-gamma):
/// every gamma lies strictly inside (0, p.gamma_limit()), so Eq. (32)
/// holds at every node and the scalar path would not throw.
void gamma_scan_exact_batch(const PathParams& p,
                            const SigmaForEpsilon& sigma_of,
                            std::span<const double> gammas,
                            std::span<double> delays, GammaScanBatch& batch);

}  // namespace detail

}  // namespace deltanc::e2e
