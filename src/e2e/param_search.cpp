#include "e2e/param_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "e2e/delay_bound.h"
#include "e2e/k_procedure.h"
#include "e2e/network_epsilon.h"
#include "traffic/eb_memo.h"

namespace deltanc::e2e {

SolveStats& SolveStats::operator+=(const SolveStats& other) {
  optimize_evals += other.optimize_evals;
  eb_evals += other.eb_evals;
  sigma_evals += other.sigma_evals;
  edf_iterations += other.edf_iterations;
  edf_converged = edf_converged && other.edf_converged;
  scan_ms += other.scan_ms;
  refine_ms += other.refine_ms;
  return *this;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void validate_scenario(const Scenario& sc) {
  if (sc.hops < 1 || sc.n_through < 1 || sc.n_cross < 0 ||
      !(sc.epsilon > 0.0 && sc.epsilon < 1.0)) {
    throw std::invalid_argument("best_delay_bound: malformed scenario");
  }
}

/// Largest s keeping n * eb(s) < C (the bisection behind max_stable_s),
/// parameterized on the eb evaluator so the per-scenario SearchContext
/// can route it through its memo.
template <typename EbFn>
double stable_s_limit(double n, double capacity, double mean_rate,
                      double peak_rate, EbFn&& eb) {
  if (n * mean_rate >= capacity) return 0.0;
  if (n * peak_rate < capacity) return kInf;
  double lo = 1e-9, hi = 1.0;
  while (n * eb(hi) < capacity) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (n * eb(mid) < capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Per-scenario state of the nested search, built once per solve instead
/// of once per (s, gamma) evaluation: the effective-bandwidth memo, the
/// reusable theta-solver workspace, the stability-limited s bracket, and
/// the instrumentation counters.
struct SearchContext {
  SearchContext(const Scenario& sc_in, Method method_in)
      : sc(sc_in), method(method_in), eb(sc_in.source) {
    const double n = sc.n_through + sc.n_cross;
    const double limit =
        stable_s_limit(n, sc.capacity, sc.source.mean_rate(),
                       sc.source.peak_rate(), [this](double s) { return eb(s); });
    unstable = (limit == 0.0);
    s_hi = (limit == kInf ? 64.0 : limit) * 0.999;
  }

  const Scenario& sc;
  Method method;
  traffic::EffectiveBandwidthMemo eb;
  SolveWorkspace ws;
  SolveStats stats;
  double s_lo = 1e-4;
  double s_hi = 0.0;
  bool unstable = false;
};

PathParams params_at(SearchContext& ctx, double s, double delta) {
  const double eb = ctx.eb(s);
  return PathParams{ctx.sc.capacity,
                    ctx.sc.hops,
                    ctx.sc.n_through * eb,
                    ctx.sc.n_cross * eb,
                    s,
                    1.0,
                    delta};
}

/// Delay at one gamma for hoisted per-s invariants (p, sigma_of).
double delay_at(SearchContext& ctx, const PathParams& p,
                const SigmaForEpsilon& sigma_of, double gamma) {
  if (!(gamma > 0.0) || !(gamma < p.gamma_limit())) return kInf;
  ++ctx.stats.sigma_evals;
  const double sigma = sigma_of(gamma);
  ++ctx.stats.optimize_evals;
  switch (ctx.method) {
    case Method::kExactOpt:
      return optimize_delay(p, gamma, sigma, ctx.ws).delay;
    case Method::kPaperK:
      return k_procedure_delay(p, gamma, sigma, ctx.ws).delay;
  }
  return kInf;
}

/// Golden-section minimization of a continuous function on [lo, hi],
/// seeded by a coarse scan so that a locally non-unimodal objective still
/// lands in the right valley.
template <typename F>
double minimize_scalar(F f, double lo, double hi, int scan_points,
                       int golden_iters, double* best_arg) {
  double best_x = lo;
  double best_v = kInf;
  for (int i = 0; i <= scan_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / scan_points;
    const double v = f(x);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  const double step = (hi - lo) / scan_points;
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  const double inv_phi = 0.6180339887498949;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int iter = 0; iter < golden_iters; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  const double xm = 0.5 * (a + b);
  const double vm = f(xm);
  if (vm < best_v) {
    best_v = vm;
    best_x = xm;
  }
  if (best_arg != nullptr) *best_arg = best_x;
  return best_v;
}

/// Best delay over gamma for fixed s; returns +inf when unstable.  The
/// gamma-independent invariants (PathParams from one eb(s) evaluation and
/// the sigma(epsilon) prefactors) are computed here, once per s, instead
/// of inside every evaluation of the inner golden-section search.
double best_over_gamma(SearchContext& ctx, double delta, double s,
                       double* best_gamma) {
  const PathParams p = params_at(ctx, s, delta);
  const double glim = p.gamma_limit();
  if (!(glim > 0.0)) return kInf;
  const SigmaForEpsilon sigma_of(p, ctx.sc.epsilon);
  return minimize_scalar(
      [&](double gamma) { return delay_at(ctx, p, sigma_of, gamma); },
      1e-4 * glim, 0.9999 * glim, 24, 48, best_gamma);
}

/// One full (s, gamma) optimization at fixed delta.  When `warm` carries
/// a finite previous optimum (EDF fixed point), the 29-point coarse scan
/// over s is replaced by a single probe at the warm-started s; the golden
/// refinement then re-localizes the optimum from there.
BoundResult solve_for_delta(SearchContext& ctx, double delta,
                            const BoundResult* warm) {
  BoundResult result{kInf, 0.0, 0.0, 0.0, delta};
  if (ctx.unstable) return result;  // unstable at any s
  const double s_lo = ctx.s_lo;
  const double s_hi = ctx.s_hi;

  const int kScan = 28;
  const double ratio = std::pow(s_hi / s_lo, 1.0 / kScan);
  double best_s = s_lo;
  double best_v = kInf;
  const auto scan_t0 = Clock::now();
  if (warm != nullptr && std::isfinite(warm->delay_ms) && warm->s > 0.0) {
    const double s = std::clamp(warm->s, s_lo, s_hi);
    best_v = best_over_gamma(ctx, delta, s, nullptr);
    best_s = s;
  }
  if (best_v == kInf) {
    // Coarse logarithmic scan over s (cold start, or warm probe missed).
    for (int i = 0; i <= kScan; ++i) {
      const double s = s_lo * std::pow(s_hi / s_lo,
                                       static_cast<double>(i) / kScan);
      const double v = best_over_gamma(ctx, delta, s, nullptr);
      if (v < best_v) {
        best_v = v;
        best_s = s;
      }
    }
  }
  ctx.stats.scan_ms += ms_since(scan_t0);
  if (best_v == kInf) return result;

  const auto refine_t0 = Clock::now();
  double refined_s = best_s;
  const double refined_v = minimize_scalar(
      [&](double s) { return best_over_gamma(ctx, delta, s, nullptr); },
      std::max(s_lo, best_s / ratio), std::min(s_hi, best_s * ratio), 8, 32,
      &refined_s);
  // Keep the argmin over everything seen: the refinement's arithmetic
  // grid need not revisit best_s exactly, so its optimum can come out
  // worse than the scan's already-found value.
  const double final_s = refined_v < best_v ? refined_s : best_s;

  double gamma = 0.0;
  result.delay_ms = best_over_gamma(ctx, delta, final_s, &gamma);
  result.gamma = gamma;
  result.s = final_s;
  const PathParams p = params_at(ctx, final_s, delta);
  result.sigma = SigmaForEpsilon(p, ctx.sc.epsilon)(gamma);
  ctx.stats.refine_ms += ms_since(refine_t0);
  return result;
}

/// Folds the context's counters into the outgoing result.
BoundResult finish(SearchContext& ctx, BoundResult result) {
  ctx.stats.eb_evals = ctx.eb.misses();
  result.stats = ctx.stats;
  return result;
}

}  // namespace

double max_stable_s(const Scenario& sc) {
  const double n = sc.n_through + sc.n_cross;
  return stable_s_limit(
      n, sc.capacity, sc.source.mean_rate(), sc.source.peak_rate(),
      [&](double s) { return sc.source.effective_bandwidth(s); });
}

BoundResult best_delay_bound_for_delta(const Scenario& sc, double delta,
                                       Method method) {
  validate_scenario(sc);
  SearchContext ctx(sc, method);
  return finish(ctx, solve_for_delta(ctx, delta, nullptr));
}

BoundResult best_delay_bound(const Scenario& sc, Method method) {
  switch (sc.scheduler) {
    case Scheduler::kFifo:
      return best_delay_bound_for_delta(sc, 0.0, method);
    case Scheduler::kBmux:
      return best_delay_bound_for_delta(sc, kInf, method);
    case Scheduler::kSpHigh:
      return best_delay_bound_for_delta(sc, -kInf, method);
    case Scheduler::kEdf:
      break;
  }
  // EDF: deadlines are multiples of d_e2e/H, so Delta = (own - cross) *
  // d_e2e / H depends on the bound itself.  Damped fixed point, seeded
  // with the FIFO bound; one shared context memoizes eb(s) across
  // iterations and warm-starts each s scan from the previous iterate.
  validate_scenario(sc);
  SearchContext ctx(sc, method);
  const double factor_gap = sc.edf.own_factor - sc.edf.cross_factor;
  BoundResult prev = solve_for_delta(ctx, 0.0, nullptr);
  if (!std::isfinite(prev.delay_ms)) return finish(ctx, prev);
  double d = prev.delay_ms;
  bool converged = false;
  for (int iter = 0; iter < 60; ++iter) {
    ++ctx.stats.edf_iterations;
    const double delta = factor_gap * d / sc.hops;
    BoundResult cur = solve_for_delta(ctx, delta, &prev);
    prev = cur;
    if (!std::isfinite(prev.delay_ms)) return finish(ctx, prev);
    const double d_next = 0.5 * (d + prev.delay_ms);
    if (std::abs(d_next - d) <= 1e-7 * std::max(1.0, d)) {
      d = d_next;
      converged = true;
      break;
    }
    d = d_next;
  }
  ctx.stats.edf_converged = converged;
  // Re-solve once at the resolved Delta so the returned tuple (delay,
  // gamma, s, sigma, delta) is self-consistent instead of mixing the
  // damped average with parameters from an earlier iterate.
  return finish(ctx, solve_for_delta(ctx, factor_gap * d / sc.hops, &prev));
}

}  // namespace deltanc::e2e
